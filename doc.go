// Package multinet is a full reproduction of "WiFi, LTE, or Both?
// Measuring Multi-Homed Wireless Internet Performance" (Deng,
// Netravali, Sivaraman, Balakrishnan — IMC 2014) as a Go library.
//
// The paper's physical measurement infrastructure (Android phones, a
// WiFi+LTE testbed at 20 US locations, a Monsoon power monitor, and
// the Linux MPTCP v0.88 kernel) is substituted by deterministic
// simulation substrates built from scratch in this module:
//
//   - internal/simnet: a discrete-event simulation kernel
//   - internal/netem: links, queues, loss, interface failure semantics
//   - internal/phy: calibrated WiFi/LTE radio models and the paper's
//     20 measurement locations
//   - internal/tcp: a userspace TCP (NewReno + SACK + RFC 6298)
//   - internal/mptcp: Multipath TCP (MP_CAPABLE/MP_JOIN, DSS, min-SRTT
//     scheduler, LIA coupled congestion control, backup mode)
//   - internal/capture: tcpdump-equivalent tracing and analysis
//   - internal/energy: the radio power model of the paper's Fig. 16
//   - internal/dataset: the synthetic crowd-sourced campaign
//   - internal/apps + internal/replay: the Mahimahi-style record and
//     replay harness and the app traffic models
//   - internal/oracle: the Section 5 oracle schemes
//   - internal/experiments: one harness per table/figure
//   - internal/experiments/engine: the experiment registry and the
//     deterministic parallel trial-sweep runner
//   - internal/core: the public Session/Selector API
//
// See DESIGN.md for the system inventory and per-experiment index, and
// EXPERIMENTS.md for paper-vs-measured results. The benchmarks in
// bench_test.go regenerate every table and figure.
package multinet
