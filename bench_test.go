package multinet_test

// Registry-driven benchmarks: one sub-benchmark per registered
// experiment (the same engine.All() set cmd/report iterates — see
// EXPERIMENTS.md for the per-experiment index), so
//
//	go test -bench=. -benchmem
//
// regenerates the full evaluation with no hand-maintained list. Run
// with -v to see the rendered tables and figure data; for
// machine-readable headline quantities use `go run ./cmd/report -json`
// (the registry replaces the old per-benchmark ReportMetric tables).
//
// BenchmarkParallelSpeedup measures the engine sweep runner's
// parallel-vs-sequential wall-time ratio on a multi-trial experiment;
// on an N-core machine it should approach N for sweep-heavy harnesses.

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"multinet/internal/experiments"
	"multinet/internal/experiments/engine"
)

// benchOpts keeps bench runtime moderate while exercising the full
// pipeline; cmd/report runs the same harnesses with full options.
func benchOpts() engine.Options {
	return engine.Options{Trials: 1}
}

func BenchmarkExperiments(b *testing.B) {
	for _, e := range engine.All() {
		b.Run(e.Meta.Name, func(b *testing.B) {
			var out fmt.Stringer
			for i := 0; i < b.N; i++ {
				out = e.Run(benchOpts())
			}
			b.Log("\n" + out.String())
		})
	}
}

// BenchmarkParallelSpeedup runs a sweep-heavy experiment (Figure 8:
// locations × trials × two MPTCP configurations) once sequentially and
// once on the full worker pool per iteration, and reports the wall-time
// ratio as the "speedup-x" metric. The outputs are verified identical,
// so the metric measures pure scheduling gain; expect ≥2x on 4+ cores
// (and ~1x on a single-core machine, where there is nothing to gain).
func BenchmarkParallelSpeedup(b *testing.B) {
	o := engine.Options{Trials: 2}
	var seqTotal, parTotal time.Duration
	for i := 0; i < b.N; i++ {
		start := time.Now()
		seq := experiments.Figure8(o.Serial())
		seqTotal += time.Since(start)

		start = time.Now()
		par := experiments.Figure8(o)
		parTotal += time.Since(start)

		if seq.String() != par.String() {
			b.Fatal("parallel output differs from sequential")
		}
	}
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "cores")
	b.ReportMetric(seqTotal.Seconds()/float64(b.N), "seq-s/op")
	b.ReportMetric(parTotal.Seconds()/float64(b.N), "par-s/op")
	b.ReportMetric(seqTotal.Seconds()/parTotal.Seconds(), "speedup-x")
}
