package multinet_test

// One benchmark per table and figure of the paper (see DESIGN.md's
// per-experiment index), plus the ablation benches. Each benchmark
// executes the same experiments.* harness that cmd/report uses and
// reports the experiment's headline quantities as custom metrics, so
//
//	go test -bench=. -benchmem
//
// regenerates the full evaluation. Run with -v to see the rendered
// tables and figure data.

import (
	"testing"

	"multinet/internal/experiments"
)

// benchOpts keeps bench runtime moderate while exercising the full
// pipeline; cmd/report runs the same harnesses with full options.
func benchOpts() experiments.Options {
	return experiments.Options{Trials: 1}
}

func BenchmarkTable1Campaign(b *testing.B) {
	var r experiments.Table1Result
	for i := 0; i < b.N; i++ {
		r = experiments.Table1(benchOpts())
	}
	b.ReportMetric(float64(len(r.Rows)), "clusters")
	b.ReportMetric(float64(r.TotalRuns), "runs")
	b.Log("\n" + r.String())
}

func BenchmarkTable2Locations(b *testing.B) {
	var r experiments.Table2Result
	for i := 0; i < b.N; i++ {
		r = experiments.Table2(benchOpts())
	}
	b.ReportMetric(float64(len(r.Locations)), "locations")
	b.Log("\n" + r.String())
}

func BenchmarkFigure3ThroughputCDF(b *testing.B) {
	var r experiments.Figure3Result
	for i := 0; i < b.N; i++ {
		r = experiments.Figure3(benchOpts())
	}
	b.ReportMetric(r.LTEWinUp*100, "uplink-win-%")
	b.ReportMetric(r.LTEWinDown*100, "downlink-win-%")
	b.ReportMetric(r.Combined*100, "combined-win-%")
	b.Log("\n" + r.String())
}

func BenchmarkFigure4RTTCDF(b *testing.B) {
	var r experiments.Figure4Result
	for i := 0; i < b.N; i++ {
		r = experiments.Figure4(benchOpts())
	}
	b.ReportMetric(r.LTELowerRTT*100, "lte-lower-rtt-%")
	b.Log("\n" + r.String())
}

func BenchmarkFigure6TwentyLocationCDF(b *testing.B) {
	var r experiments.Figure6Result
	for i := 0; i < b.N; i++ {
		r = experiments.Figure6(benchOpts())
	}
	b.ReportMetric(r.MedianGapDown, "median-gap-down-mbps")
	b.Log("\n" + r.String())
}

func BenchmarkFigure7ThroughputVsFlowSize(b *testing.B) {
	var r experiments.Figure7Result
	for i := 0; i < b.N; i++ {
		r = experiments.Figure7(benchOpts())
	}
	b.ReportMetric(float64(len(r.SeriesA)+len(r.SeriesB)), "series")
	b.Log("\n" + r.String())
}

func BenchmarkFigure8PrimaryFlowCDF(b *testing.B) {
	var r experiments.Figure8Result
	for i := 0; i < b.N; i++ {
		r = experiments.Figure8(benchOpts())
	}
	b.ReportMetric(r.MedianPct["10KB"], "median-10KB-%")
	b.ReportMetric(r.MedianPct["100KB"], "median-100KB-%")
	b.ReportMetric(r.MedianPct["1MB"], "median-1MB-%")
	b.Log("\n" + r.String())
}

func BenchmarkFigure9EvolutionLTEBetter(b *testing.B) {
	var r experiments.Figure9Result
	for i := 0; i < b.N; i++ {
		r = experiments.Figure9(benchOpts())
	}
	b.ReportMetric(r.LTEPrimary.FinalMbps, "lte-primary-mbps")
	b.ReportMetric(r.WiFiPrimary.FinalMbps, "wifi-primary-mbps")
	b.Log("\n" + r.String())
}

func BenchmarkFigure10EvolutionWiFiBetter(b *testing.B) {
	var r experiments.Figure10Result
	for i := 0; i < b.N; i++ {
		r = experiments.Figure10(benchOpts())
	}
	b.ReportMetric(r.WiFiPrimary.FinalMbps, "wifi-primary-mbps")
	b.ReportMetric(r.LTEPrimary.FinalMbps, "lte-primary-mbps")
	b.Log("\n" + r.String())
}

func BenchmarkFigure11FlowSizeLTEBetter(b *testing.B) {
	var r experiments.FlowSizeSweepResult
	for i := 0; i < b.N; i++ {
		r = experiments.Figure11(benchOpts())
	}
	b.ReportMetric(r.Ratio[0], "ratio-100KB")
	b.ReportMetric(r.Ratio[len(r.Ratio)-1], "ratio-1MB")
	b.Log("\n" + r.String())
}

func BenchmarkFigure12FlowSizeWiFiBetter(b *testing.B) {
	var r experiments.FlowSizeSweepResult
	for i := 0; i < b.N; i++ {
		r = experiments.Figure12(benchOpts())
	}
	b.ReportMetric(r.Ratio[0], "ratio-100KB")
	b.ReportMetric(r.Ratio[len(r.Ratio)-1], "ratio-1MB")
	b.Log("\n" + r.String())
}

func BenchmarkFigure13CongestionControlCDF(b *testing.B) {
	var r experiments.CouplingResult
	for i := 0; i < b.N; i++ {
		r = experiments.Coupling(benchOpts())
	}
	b.ReportMetric(r.CCMedianPct["10KB"], "cc-median-10KB-%")
	b.ReportMetric(r.CCMedianPct["1MB"], "cc-median-1MB-%")
	b.Log("\n" + r.String())
}

func BenchmarkFigure14NetworkVsCC(b *testing.B) {
	var r experiments.CouplingResult
	for i := 0; i < b.N; i++ {
		r = experiments.Coupling(benchOpts())
	}
	b.ReportMetric(r.NetworkMedianPct["10KB"], "net-median-10KB-%")
	b.ReportMetric(r.NetworkMedianPct["1MB"], "net-median-1MB-%")
	b.Log("\n" + r.String())
}

func BenchmarkFigure15BackupPatterns(b *testing.B) {
	var r experiments.Figure15Result
	for i := 0; i < b.N; i++ {
		r = experiments.Figure15(benchOpts())
	}
	completed := 0
	for _, p := range r.Panels {
		if p.Completed {
			completed++
		}
	}
	b.ReportMetric(float64(completed), "panels-completed")
	b.Log("\n" + r.String())
}

func BenchmarkFigure16PowerTraces(b *testing.B) {
	var r experiments.Figure16Result
	for i := 0; i < b.N; i++ {
		r = experiments.Figure16(benchOpts())
	}
	b.ReportMetric(r.Panels[0].PeakWatts, "lte-active-peak-W")
	b.ReportMetric(r.Panels[2].TailSecs, "lte-backup-tail-s")
	b.Log("\n" + r.String())
}

func BenchmarkEnergyBackupSavings(b *testing.B) {
	var r experiments.EnergyBackupResult
	for i := 0; i < b.N; i++ {
		r = experiments.EnergyBackup(benchOpts())
	}
	b.ReportMetric(r.BreakEvenSecs, "breakeven-s")
	b.Log("\n" + r.String())
}

func BenchmarkFigure17TrafficPatterns(b *testing.B) {
	var r experiments.Figure17Result
	for i := 0; i < b.N; i++ {
		r = experiments.Figure17(benchOpts())
	}
	b.ReportMetric(float64(len(r.Rows)), "patterns")
	b.Log("\n" + r.String())
}

func BenchmarkFigure18CNNResponse(b *testing.B) {
	var r experiments.ResponseTimeResult
	for i := 0; i < b.N; i++ {
		r = experiments.Figure18(benchOpts())
	}
	b.ReportMetric(r.Secs[0][0], "nc1-wifi-tcp-s")
	b.ReportMetric(r.Secs[0][1], "nc1-lte-tcp-s")
	b.Log("\n" + r.String())
}

func BenchmarkFigure19CNNOracles(b *testing.B) {
	var r experiments.OracleResult
	for i := 0; i < b.N; i++ {
		r = experiments.Figure19(benchOpts())
	}
	b.ReportMetric(r.Normalized["Single-Path-TCP Oracle"], "single-path-norm")
	b.ReportMetric(r.Normalized["Decoupled-MPTCP Oracle"], "decoupled-norm")
	b.Log("\n" + r.String())
}

func BenchmarkFigure20DropboxResponse(b *testing.B) {
	var r experiments.ResponseTimeResult
	for i := 0; i < b.N; i++ {
		r = experiments.Figure20(benchOpts())
	}
	b.ReportMetric(r.Secs[0][0], "nc1-wifi-tcp-s")
	b.Log("\n" + r.String())
}

func BenchmarkFigure21DropboxOracles(b *testing.B) {
	var r experiments.OracleResult
	for i := 0; i < b.N; i++ {
		r = experiments.Figure21(benchOpts())
	}
	b.ReportMetric(r.Normalized["Single-Path-TCP Oracle"], "single-path-norm")
	b.ReportMetric(r.Normalized["Decoupled-MPTCP Oracle"], "decoupled-norm")
	b.Log("\n" + r.String())
}

func BenchmarkAblationJoinDelay(b *testing.B) {
	var r experiments.AblationJoinResult
	for i := 0; i < b.N; i++ {
		r = experiments.AblationJoinDelay(benchOpts())
	}
	b.ReportMetric(r.MedianPctSequential, "sequential-%")
	b.ReportMetric(r.MedianPctSimultaneous, "simultaneous-%")
	b.Log("\n" + r.String())
}

func BenchmarkAblationScheduler(b *testing.B) {
	var r experiments.AblationSchedulerResult
	for i := 0; i < b.N; i++ {
		r = experiments.AblationScheduler(benchOpts())
	}
	b.ReportMetric(r.MinRTTMbps, "min-srtt-mbps")
	b.ReportMetric(r.RoundRobinMbps, "round-robin-mbps")
	b.Log("\n" + r.String())
}

func BenchmarkAblationTailTime(b *testing.B) {
	var r experiments.AblationTailResult
	for i := 0; i < b.N; i++ {
		r = experiments.AblationTailTime(benchOpts())
	}
	b.ReportMetric(r.SavingPct[0], "zero-tail-saving-%")
	b.ReportMetric(r.SavingPct[2], "15s-tail-saving-%")
	b.Log("\n" + r.String())
}

func BenchmarkAblationSelector(b *testing.B) {
	var r experiments.AblationSelectorResult
	for i := 0; i < b.N; i++ {
		r = experiments.AblationSelector(benchOpts())
	}
	b.ReportMetric(r.MeanFCT["adaptive-selector"], "adaptive-fct-s")
	b.ReportMetric(r.MeanFCT["always-wifi"], "always-wifi-fct-s")
	b.Log("\n" + r.String())
}
