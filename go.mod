module multinet

go 1.24
