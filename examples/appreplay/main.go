// Appreplay records two of the paper's app traffic patterns — the
// short-flow-dominated CNN launch and the long-flow-dominated Dropbox
// click — and replays them under two network conditions with all six
// Section 5 transport configurations, printing the app response times
// (the paper's Figs. 18 and 20 in miniature).
package main

import (
	"fmt"

	"multinet/internal/apps"
	"multinet/internal/phy"
	"multinet/internal/replay"
)

func main() {
	conditions := []phy.Condition{
		phy.LocationByID(10).Condition(), // WiFi much better
		phy.LocationByID(16).Condition(), // LTE much better
	}
	workloads := []apps.App{apps.CNNLaunch, apps.DropboxClick}

	for _, app := range workloads {
		rec := replay.Record(app)
		fmt.Printf("%s %s — %s, %d connections, %d KB total\n",
			app.Name, app.Interaction, app.Label(), len(app.Flows), app.TotalBytes()>>10)
		for ci, cond := range conditions {
			fmt.Printf("  condition %s (WiFi %.1f / LTE %.1f Mbit/s):\n",
				cond.Name, cond.WiFi.DownMbps, cond.LTE.DownMbps)
			for _, tc := range replay.StandardConfigs() {
				r := replay.Run(int64(1000+ci), cond, rec, tc)
				if !r.Completed {
					fmt.Printf("    %-22s did not complete\n", tc.Name)
					continue
				}
				fmt.Printf("    %-22s %6.2fs\n", tc.Name, r.ResponseTime.Seconds())
			}
		}
		fmt.Println()
	}
}
