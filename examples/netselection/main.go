// Netselection demonstrates the adaptive network selector — the policy
// the paper's conclusion asks for ("how can we automatically decide
// when to use single path TCP and when to use MPTCP?").
//
// At each of three very different locations it probes both networks,
// asks the Selector for a configuration per flow size, and compares
// the result with the static always-WiFi policy (the Android default
// the paper critiques).
package main

import (
	"fmt"

	"multinet/internal/core"
	"multinet/internal/phy"
)

func main() {
	locs := []phy.Location{
		phy.LocationByID(10), // apartment: WiFi much better
		phy.LocationByID(16), // conference room: LTE much better
		phy.LocationByID(11), // cafe: comparable paths
	}
	sizes := []int{10 << 10, 1 << 20, 8 << 20}

	for _, loc := range locs {
		fmt.Printf("location %d (%s, %s): WiFi %.1f Mbit/s, LTE %.1f Mbit/s\n",
			loc.ID, loc.City, loc.Desc, loc.WiFi.DownMbps, loc.LTE.DownMbps)

		probe := core.NewSession(int64(loc.ID), loc.Condition())
		est := probe.Probe()
		fmt.Printf("  probe: wifi %.2f Mbit/s, lte %.2f Mbit/s -> best=%s disparity=%.1fx\n",
			est.Mbps("wifi"), est.Mbps("lte"), est.Best(), est.Disparity())

		for _, size := range sizes {
			d := core.Selector{}.Decide(est, size)
			cfg := core.ConfigFor(d)
			chosen := core.NewSession(int64(loc.ID*100), loc.Condition()).Run(cfg, core.Download, size)
			static := core.NewSession(int64(loc.ID*100), loc.Condition()).
				Run(core.Config{Transport: core.TCP, Iface: "wifi"}, core.Download, size)
			speedup := float64(static.FCT) / float64(chosen.FCT)
			fmt.Printf("  %7dKB -> %-22s FCT %8v (always-wifi %8v, %.1fx)\n",
				size>>10, cfg.Name(), chosen.FCT.Round(1e6), static.FCT.Round(1e6), speedup)
		}
		fmt.Println()
	}
}
