// Quickstart: build a simulated multi-homed client (WiFi + LTE), run a
// 1 MB download over single-path TCP on each network and over the four
// MPTCP variants, and print the measured throughputs — the paper's
// basic measurement unit (Section 3.2) in ~40 lines.
package main

import (
	"fmt"

	"multinet/internal/core"
	"multinet/internal/mptcp"
	"multinet/internal/phy"
)

func main() {
	// A location where WiFi and LTE are comparable: MPTCP should
	// aggregate (paper Fig. 7b).
	cond := phy.Condition{
		Name: "quickstart",
		WiFi: phy.PathProfile{DownMbps: 8, UpMbps: 3, RTTms: 40, LossPct: 0.5, Variability: 0.2},
		LTE:  phy.PathProfile{DownMbps: 6, UpMbps: 2.5, RTTms: 70, LossPct: 0.2, Variability: 0.2},
	}
	const size = 1 << 20

	configs := []core.Config{
		{Transport: core.TCP, Iface: "wifi"},
		{Transport: core.TCP, Iface: "lte"},
		{Transport: core.MPTCP, Primary: "wifi", CC: mptcp.Decoupled},
		{Transport: core.MPTCP, Primary: "lte", CC: mptcp.Decoupled},
		{Transport: core.MPTCP, Primary: "wifi", CC: mptcp.Coupled},
		{Transport: core.MPTCP, Primary: "lte", CC: mptcp.Coupled},
	}

	fmt.Printf("1 MB download at %q (WiFi %.0f Mbit/s / LTE %.0f Mbit/s):\n\n",
		cond.Name, cond.WiFi.DownMbps, cond.LTE.DownMbps)
	fmt.Printf("%-24s %10s %12s\n", "config", "FCT", "throughput")
	for i, cfg := range configs {
		// A fresh session per measurement, as the paper measures
		// back-to-back transfers.
		s := core.NewSession(int64(100+i), cond)
		r := s.Run(cfg, core.Download, size)
		if !r.Completed {
			fmt.Printf("%-24s %10s %12s\n", cfg.Name(), "-", "did not finish")
			continue
		}
		fmt.Printf("%-24s %10v %9.2f Mb/s\n", cfg.Name(), r.FCT.Round(1e6), r.Mbps)
	}
}
