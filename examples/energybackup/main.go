// Energybackup demonstrates the paper's Section 3.6 energy paradox:
// putting LTE in MPTCP backup mode saves almost no energy for flows
// shorter than the LTE radio's 15-second tail, because even the lone
// SYN and FIN keep the radio's high-power tail alive.
//
// It prints the LTE radio's power trace in both roles and the energy
// saved by backup mode as the flow duration grows.
package main

import (
	"fmt"
	"time"

	"multinet/internal/energy"
	"multinet/internal/simnet"
)

func main() {
	fmt.Println("LTE radio power traces (base 1 W; '#' active 3.2 W, '~' tail 2.0 W, '.' idle):")
	fmt.Println()

	const flow = 10 * time.Second
	horizon := flow + 16*time.Second

	// Backup role: the radio sees only the SYN at t=0 and FIN at t=10s.
	simB := simnet.New(1)
	backup := energy.NewMeter(simB, energy.LTE)
	backup.OnPacket()
	simB.Schedule(flow, backup.OnPacket)
	simB.RunUntil(horizon)

	// Active role: packets throughout the 10 s flow.
	simA := simnet.New(2)
	active := energy.NewMeter(simA, energy.LTE)
	for t := time.Duration(0); t <= flow; t += 25 * time.Millisecond {
		tt := t
		simA.Schedule(tt, active.OnPacket)
	}
	simA.RunUntil(horizon)

	fmt.Printf("  active (carries data): %s  %6.1f J\n", active.TraceString(horizon, 64), active.RadioJoules())
	fmt.Printf("  backup (SYN/FIN only): %s  %6.1f J\n", backup.TraceString(horizon, 64), backup.RadioJoules())
	fmt.Printf("\n  10 s flow: backup mode saves only %.0f%% of LTE radio energy\n\n",
		(1-backup.RadioJoules()/active.RadioJoules())*100)

	fmt.Println("energy saved by LTE-backup vs flow duration:")
	for _, secs := range []int{2, 5, 10, 15, 30, 60} {
		d := time.Duration(secs) * time.Second
		h := d + 16*time.Second

		s1 := simnet.New(3)
		b := energy.NewMeter(s1, energy.LTE)
		b.OnPacket()
		s1.Schedule(d, b.OnPacket)
		s1.RunUntil(h)

		s2 := simnet.New(4)
		a := energy.NewMeter(s2, energy.LTE)
		for t := time.Duration(0); t <= d; t += 25 * time.Millisecond {
			tt := t
			s2.Schedule(tt, a.OnPacket)
		}
		s2.RunUntil(h)

		fmt.Printf("  %3ds flow: %3.0f%% saved\n", secs, (1-b.RadioJoules()/a.RadioJoules())*100)
	}
	fmt.Println("\n(the paper's fix suggestions: fast dormancy, or break-before-make backup)")
}
