// Package mahitrace reads and writes Mahimahi packet-delivery traces —
// the file format of the record-and-replay tool the paper's Sections
// 4-5 build on (mahimahi.mit.edu). A trace is a text file with one
// integer per line: the millisecond timestamp of a delivery
// opportunity for one MTU-sized packet. Repeated timestamps mean
// several opportunities in the same millisecond; when the trace ends
// it loops, shifted by its final timestamp (Mahimahi's semantics).
//
// This lets the reproduction exchange link models with real Mahimahi
// deployments: synthetic radio processes can be exported for use with
// mm-link, and recorded cellular traces can drive netem.VarLink.
package mahitrace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"

	"multinet/internal/netem"
)

// Trace is an ordered list of delivery-opportunity instants.
type Trace struct {
	// Opportunities are the delivery instants, non-decreasing.
	Opportunities []time.Duration
	// Period is the loop length; Mahimahi uses the last timestamp.
	Period time.Duration
}

// Parse reads a Mahimahi trace. Lines hold non-negative millisecond
// integers in non-decreasing order; blank lines and '#' comments are
// ignored (a common extension).
func Parse(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	t := &Trace{}
	line := 0
	var prev int64 = -1
	for sc.Scan() {
		line++
		s := strings.TrimSpace(sc.Text())
		if s == "" || strings.HasPrefix(s, "#") {
			continue
		}
		ms, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("mahitrace: line %d: %q is not a millisecond timestamp", line, s)
		}
		if ms < 0 {
			return nil, fmt.Errorf("mahitrace: line %d: negative timestamp %d", line, ms)
		}
		if ms < prev {
			return nil, fmt.Errorf("mahitrace: line %d: timestamps must be non-decreasing (%d after %d)", line, ms, prev)
		}
		prev = ms
		t.Opportunities = append(t.Opportunities, time.Duration(ms)*time.Millisecond)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("mahitrace: %w", err)
	}
	if len(t.Opportunities) == 0 {
		return nil, fmt.Errorf("mahitrace: empty trace")
	}
	t.Period = t.Opportunities[len(t.Opportunities)-1]
	if t.Period == 0 {
		// All opportunities at t=0: degenerate but loopable at 1 ms.
		t.Period = time.Millisecond
	}
	return t, nil
}

// Write emits the trace in Mahimahi format (millisecond lines).
func Write(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	for _, op := range t.Opportunities {
		if _, err := fmt.Fprintln(bw, op.Milliseconds()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// MeanMbps returns the trace's average rate for MTU-sized packets.
func (t *Trace) MeanMbps() float64 {
	if t.Period <= 0 {
		return 0
	}
	bits := float64(len(t.Opportunities)) * netem.MTU * 8
	return bits / t.Period.Seconds() / 1e6
}

// Source returns a looping netem.OpportunitySource over the trace,
// with Mahimahi's wraparound semantics.
func (t *Trace) Source() netem.OpportunitySource {
	return &loopSource{t: t}
}

type loopSource struct {
	t *Trace
}

// Next returns the first opportunity strictly after `after`.
func (l *loopSource) Next(after time.Duration) time.Duration {
	period := l.t.Period
	cycle := after / period
	base := cycle * period
	within := after - base
	ops := l.t.Opportunities
	// First opportunity strictly greater than `within` in this cycle.
	i := sort.Search(len(ops), func(i int) bool { return ops[i] > within })
	for {
		if i < len(ops) {
			return base + ops[i]
		}
		// Wrap into the next cycle.
		base += period
		i = sort.Search(len(ops), func(i int) bool { return ops[i] > 0 })
		if i == len(ops) {
			// Trace has only t=0 entries; deliver at cycle boundaries.
			return base
		}
		if ops[i] > 0 {
			return base + ops[i]
		}
	}
}

// FromSource samples any OpportunitySource for the given duration and
// returns it as a writable Trace — e.g. to export a synthetic phy
// radio process for use with real Mahimahi.
func FromSource(src netem.OpportunitySource, dur time.Duration) *Trace {
	t := &Trace{}
	at := time.Duration(0)
	for {
		at = src.Next(at)
		if at > dur {
			break
		}
		t.Opportunities = append(t.Opportunities, at)
	}
	if len(t.Opportunities) == 0 {
		t.Opportunities = []time.Duration{dur}
	}
	t.Period = t.Opportunities[len(t.Opportunities)-1]
	if t.Period == 0 {
		t.Period = time.Millisecond
	}
	return t
}
