package mahitrace

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"multinet/internal/netem"
	"multinet/internal/phy"
	"multinet/internal/simnet"
)

func TestParseBasic(t *testing.T) {
	tr, err := Parse(strings.NewReader("0\n1\n1\n3\n5\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Opportunities) != 5 {
		t.Fatalf("ops = %d, want 5", len(tr.Opportunities))
	}
	if tr.Period != 5*time.Millisecond {
		t.Fatalf("period = %v, want 5ms", tr.Period)
	}
}

func TestParseCommentsAndBlanks(t *testing.T) {
	tr, err := Parse(strings.NewReader("# a comment\n\n2\n4\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Opportunities) != 2 {
		t.Fatalf("ops = %d, want 2", len(tr.Opportunities))
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",       // empty
		"abc\n",  // not an int
		"-1\n",   // negative
		"5\n3\n", // decreasing
	}
	for _, c := range cases {
		if _, err := Parse(strings.NewReader(c)); err == nil {
			t.Errorf("Parse(%q) should fail", c)
		}
	}
}

func TestWriteRoundTrip(t *testing.T) {
	orig, err := Parse(strings.NewReader("0\n2\n2\n7\n10\n"))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Opportunities) != len(orig.Opportunities) || back.Period != orig.Period {
		t.Fatalf("round trip mismatch: %v vs %v", back, orig)
	}
	for i := range back.Opportunities {
		if back.Opportunities[i] != orig.Opportunities[i] {
			t.Fatalf("op %d differs", i)
		}
	}
}

func TestMeanMbps(t *testing.T) {
	// 10 opportunities in 10 ms = 1000 MTU/s = 12 Mbit/s.
	var lines []string
	for i := 1; i <= 10; i++ {
		lines = append(lines, "1")
	}
	lines[9] = "10"
	tr, err := Parse(strings.NewReader(strings.Join(lines, "\n")))
	if err != nil {
		t.Fatal(err)
	}
	got := tr.MeanMbps()
	if got < 11 || got > 13 {
		t.Fatalf("mean = %.2f Mbit/s, want ~12", got)
	}
}

func TestSourceLoops(t *testing.T) {
	tr, err := Parse(strings.NewReader("2\n4\n"))
	if err != nil {
		t.Fatal(err)
	}
	src := tr.Source()
	var got []time.Duration
	at := time.Duration(0)
	for i := 0; i < 6; i++ {
		at = src.Next(at)
		got = append(got, at)
	}
	// Period 4 ms: opportunities at 2,4, 6,8, 10,12 ms.
	want := []time.Duration{2, 4, 6, 8, 10, 12}
	for i := range want {
		if got[i] != want[i]*time.Millisecond {
			t.Fatalf("op %d = %v, want %vms (all: %v)", i, got[i], want[i], got)
		}
	}
}

func TestSourceMonotoneProperty(t *testing.T) {
	tr, err := Parse(strings.NewReader("0\n1\n1\n5\n9\n"))
	if err != nil {
		t.Fatal(err)
	}
	src := tr.Source()
	f := func(steps uint8) bool {
		at := time.Duration(0)
		for i := 0; i < int(steps)+1; i++ {
			next := src.Next(at)
			if next <= at {
				return false
			}
			at = next
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestTraceDrivesVarLink(t *testing.T) {
	// End-to-end: a parsed trace (one opportunity per ms for 1 s, i.e.
	// 12 Mbit/s of MTU slots) drives a netem link at its mean rate.
	var sb strings.Builder
	for ms := 1; ms <= 1000; ms++ {
		fmt.Fprintln(&sb, ms)
	}
	tr, err := Parse(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	sim := simnet.New(1)
	l := netem.NewVarLink(sim, tr.Source(), netem.LinkConfig{QueueLimit: 1 << 20})
	var bytes int64
	l.SetReceiver(func(p *netem.Packet) { bytes += int64(p.Size) })
	for i := 0; i < 3000; i++ {
		l.Send(&netem.Packet{Size: netem.MTU})
	}
	sim.Run()
	mbps := float64(bytes) * 8 / sim.Now().Seconds() / 1e6
	if mbps < 11 || mbps > 13 {
		t.Fatalf("trace-driven link carried %.2f Mbit/s, want ~12", mbps)
	}
}

func TestExportSyntheticRadio(t *testing.T) {
	// Export a phy AR rate process as a Mahimahi trace and check the
	// written file parses back with a similar mean rate.
	sim := simnet.New(7)
	src := phy.NewARRateSource(sim, "x", 8, 0.3)
	tr := FromSource(src, 30*time.Second)
	if got := tr.MeanMbps(); got < 6 || got > 10 {
		t.Fatalf("exported trace mean %.2f Mbit/s, want ~8", got)
	}
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	back, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Opportunities) != len(tr.Opportunities) {
		t.Fatalf("round trip lost opportunities: %d vs %d",
			len(back.Opportunities), len(tr.Opportunities))
	}
}
