// Package dataset synthesises the paper's crowd-sourced "Cell vs WiFi"
// measurement campaign (Section 2): 22 location clusters in 16
// countries, each contributing the run counts of the paper's Table 1.
//
// The real dataset is 10 GB of user-contributed tcpdump traces that we
// cannot obtain, so each cluster is a calibrated generative model:
// per-direction WiFi/LTE throughputs are lognormal with a common shape
// and a mean offset chosen analytically so that
//
//	P(LTE > WiFi) = Phi( (muL - muW) / (s*sqrt(2)) )
//
// matches the cluster's Table 1 "LTE %" column. RTTs are lognormal,
// calibrated so LTE has the lower ping RTT in 20% of runs (Fig. 4).
// The analysis pipeline (k-means grouping, paired-difference CDFs) then
// runs unchanged against the synthetic runs, exactly as the paper ran
// it against real ones.
package dataset

import (
	"math"
	"math/rand"

	"multinet/internal/simnet"
	"multinet/internal/stats"
)

// Cluster is one Table 1 location cluster with its generative
// parameters.
type Cluster struct {
	// Name is the paper's location label.
	Name string
	// Lat, Lon is the cluster centre.
	Lat, Lon float64
	// Runs is the number of complete measurement runs (paper Table 1).
	Runs int
	// LTEWinPct is the paper's Table 1 "LTE %" column: the percentage
	// of runs where LTE downlink throughput beats WiFi.
	LTEWinPct int
	// WiFiDownMedian is the cluster's median WiFi downlink in Mbit/s.
	WiFiDownMedian float64
}

// Table1 lists the paper's Table 1 clusters verbatim (name, location,
// run count, LTE win percentage). WiFi medians are our calibration —
// chosen to span the throughput ranges of the paper's Fig. 3.
var Table1 = []Cluster{
	{"US (Boston, MA)", 42.4, -71.1, 884, 10, 9.0},
	{"Israel", 31.8, 35.0, 276, 55, 5.0},
	{"US (Portland)", 45.6, -122.7, 164, 45, 6.0},
	{"Estonia", 59.4, 27.4, 124, 71, 4.0},
	{"South Korea", 37.5, 126.9, 108, 66, 7.0},
	{"US (Orlando)", 28.4, -81.4, 92, 35, 6.5},
	{"US (Miami)", 26.0, -80.2, 84, 52, 5.5},
	{"Malaysia", 4.24, 103.4, 76, 68, 3.0},
	{"Brazil", -23.6, -46.8, 56, 4, 8.0},
	{"Germany", 52.5, 13.3, 40, 20, 8.5},
	{"Spain", 28.0, -16.7, 40, 80, 3.5},
	{"Thailand (Phichit)", 16.1, 100.2, 40, 80, 2.5},
	{"US (New York)", 40.9, -73.8, 24, 33, 7.0},
	{"Japan", 36.4, 139.3, 16, 25, 9.0},
	{"Sweden", 59.6, 18.6, 16, 0, 12.0},
	{"Thailand (Chiang Mai)", 18.8, 99.0, 16, 75, 3.0},
	{"US (Chicago)", 42.0, -88.2, 16, 25, 8.0},
	{"Hungary", 47.4, 16.8, 8, 0, 10.0},
	{"Italy", 44.2, 8.3, 8, 0, 9.0},
	{"US (Salt Lake City)", 40.8, -111.9, 8, 0, 11.0},
	{"Colombia", 7.1, -70.7, 4, 0, 7.0},
	{"US (Santa Fe)", 35.9, -106.3, 4, 0, 6.0},
}

// Generative shape parameters (log-space standard deviations).
const (
	tputSigma = 0.75 // within-cluster throughput spread
	rttSigmaW = 0.50 // WiFi ping RTT spread
	rttSigmaL = 0.40 // LTE ping RTT spread

	// uplinkWinBoost raises the LTE uplink win probability over the
	// downlink one: the paper sees 42% uplink vs 35% downlink wins
	// (LTE uplink scheduling beats contention-based WiFi uplinks).
	uplinkWinBoost = 0.07

	// upFactor scales downlink medians to uplink medians.
	upFactorWiFi = 0.40
	upFactorLTE  = 0.35

	// rttLTEWinTarget is the fraction of runs where LTE ping RTT is
	// lower than WiFi (paper Fig. 4 grey region).
	rttLTEWinTarget = 0.20

	wifiRTTMedian = 45.0 // ms

	// incompleteFrac is the fraction of collected runs that measured
	// only one network (paper Section 2.2 discards them).
	incompleteFrac = 0.20
)

// Run is one measurement-collection run (paper Fig. 2): a 1 MB TCP
// upload+download on WiFi, then on LTE, plus 10 averaged pings each.
type Run struct {
	Cluster  string
	Lat, Lon float64
	Complete bool
	// Throughputs in Mbit/s (zero when not measured).
	WiFiDown, WiFiUp, LTEDown, LTEUp float64
	// Average ping RTTs in milliseconds.
	WiFiRTT, LTERTT float64
}

// Campaign is a full synthetic dataset.
type Campaign struct {
	Runs []Run
}

// lteMedianFor solves the calibration identity for the LTE median given
// the WiFi median, shared sigma and target win probability.
func lteMedianFor(wifiMedian, sigma, winProb float64) float64 {
	if winProb <= 0 {
		winProb = 0.02 // "0%" cells still need a (losing) distribution
	}
	if winProb >= 1 {
		winProb = 0.98
	}
	offset := stats.NormQuantile(winProb) * sigma * math.Sqrt2
	return wifiMedian * math.Exp(offset)
}

func lognormal(rng *rand.Rand, median, sigma float64) float64 {
	return median * math.Exp(rng.NormFloat64()*sigma)
}

// Generate synthesises the campaign. The same (sim seed) always yields
// the same dataset.
func Generate(sim *simnet.Sim) *Campaign {
	rng := sim.RNG("dataset/campaign")
	c := &Campaign{}
	for _, cl := range Table1 {
		pDown := float64(cl.LTEWinPct) / 100
		pUp := pDown + uplinkWinBoost
		lteDownMed := lteMedianFor(cl.WiFiDownMedian, tputSigma, pDown)
		wifiUpMed := cl.WiFiDownMedian * upFactorWiFi
		lteUpMed := lteMedianFor(wifiUpMed, tputSigma, pUp)
		lteRTTMed := wifiRTTMedian * math.Exp(stats.NormQuantile(1-rttLTEWinTarget)*
			math.Sqrt(rttSigmaW*rttSigmaW+rttSigmaL*rttSigmaL))

		// Complete runs per Table 1, plus a proportional number of
		// incomplete ones that the analysis will filter out.
		incomplete := int(math.Round(float64(cl.Runs) * incompleteFrac))
		for i := 0; i < cl.Runs+incomplete; i++ {
			r := Run{
				Cluster: cl.Name,
				// Jitter within ~0.2 degrees (~22 km) of the centre.
				Lat:      cl.Lat + rng.NormFloat64()*0.1,
				Lon:      cl.Lon + rng.NormFloat64()*0.1,
				Complete: i < cl.Runs,
			}
			r.WiFiDown = lognormal(rng, cl.WiFiDownMedian, tputSigma)
			r.WiFiUp = lognormal(rng, wifiUpMed, tputSigma)
			r.WiFiRTT = avgPings(rng, wifiRTTMedian, rttSigmaW)
			if r.Complete {
				r.LTEDown = lognormal(rng, lteDownMed, tputSigma)
				r.LTEUp = lognormal(rng, lteUpMed, tputSigma)
				r.LTERTT = avgPings(rng, lteRTTMed, rttSigmaL)
			}
			c.Runs = append(c.Runs, r)
		}
	}
	return c
}

// avgPings draws 10 ping RTTs around the median and averages them, as
// the app does (paper Section 2.2).
func avgPings(rng *rand.Rand, median, sigma float64) float64 {
	// The run's base RTT; individual pings jitter mildly around it.
	base := lognormal(rng, median, sigma)
	sum := 0.0
	for i := 0; i < 10; i++ {
		sum += base * math.Exp(rng.NormFloat64()*0.08)
	}
	return sum / 10
}

// CompleteRuns returns the runs that measured both networks — the
// paper's filtering step.
func (c *Campaign) CompleteRuns() []Run {
	var out []Run
	for _, r := range c.Runs {
		if r.Complete {
			out = append(out, r)
		}
	}
	return out
}

// WinFractions returns the fraction of complete runs where LTE beats
// WiFi on the uplink, downlink, and over both directions pooled —
// the paper's "LTE outperforms WiFi 40% of the time" metric.
func (c *Campaign) WinFractions() (up, down, combined float64) {
	var u, d, n int
	for _, r := range c.CompleteRuns() {
		if r.LTEUp > r.WiFiUp {
			u++
		}
		if r.LTEDown > r.WiFiDown {
			d++
		}
		n++
	}
	if n == 0 {
		return 0, 0, 0
	}
	up = float64(u) / float64(n)
	down = float64(d) / float64(n)
	combined = float64(u+d) / float64(2*n)
	return
}

// DiffCDFs returns the CDFs of Tput(WiFi) - Tput(LTE) for the uplink
// and downlink (paper Fig. 3).
func (c *Campaign) DiffCDFs() (up, down *stats.ECDF) {
	var us, ds []float64
	for _, r := range c.CompleteRuns() {
		us = append(us, r.WiFiUp-r.LTEUp)
		ds = append(ds, r.WiFiDown-r.LTEDown)
	}
	return stats.NewECDF(us), stats.NewECDF(ds)
}

// RTTDiffCDF returns the CDF of RTT(WiFi) - RTT(LTE) in milliseconds
// (paper Fig. 4).
func (c *Campaign) RTTDiffCDF() *stats.ECDF {
	var xs []float64
	for _, r := range c.CompleteRuns() {
		xs = append(xs, r.WiFiRTT-r.LTERTT)
	}
	return stats.NewECDF(xs)
}

// TableRow is one row of the regenerated Table 1.
type TableRow struct {
	Name      string
	Lat, Lon  float64
	Runs      int
	LTEWinPct float64
}

// RegenerateTable1 groups complete runs with the paper's method
// (radius clustering, r = 100 km) and recomputes each group's size and
// downlink LTE-win percentage. Rows come back ordered by run count.
func (c *Campaign) RegenerateTable1() []TableRow {
	runs := c.CompleteRuns()
	pts := make([]stats.GeoPoint, len(runs))
	for i, r := range runs {
		pts[i] = stats.GeoPoint{Lat: r.Lat, Lon: r.Lon}
	}
	clusters := stats.ClusterByRadius(pts, 100)
	rows := make([]TableRow, 0, len(clusters))
	for _, cl := range clusters {
		row := TableRow{Lat: cl.Centroid.Lat, Lon: cl.Centroid.Lon, Runs: len(cl.Members)}
		wins := 0
		names := map[string]int{}
		for _, idx := range cl.Members {
			if runs[idx].LTEDown > runs[idx].WiFiDown {
				wins++
			}
			names[runs[idx].Cluster]++
		}
		// Label with the dominant source cluster name.
		best, bestN := "", 0
		for n, cnt := range names {
			if cnt > bestN {
				best, bestN = n, cnt
			}
		}
		row.Name = best
		row.LTEWinPct = 100 * float64(wins) / float64(len(cl.Members))
		rows = append(rows, row)
	}
	return rows
}
