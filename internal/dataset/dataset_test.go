package dataset

import (
	"math"
	"testing"

	"multinet/internal/simnet"
)

func gen(t *testing.T) *Campaign {
	t.Helper()
	return Generate(simnet.New(2014))
}

func TestCampaignSize(t *testing.T) {
	c := gen(t)
	complete := len(c.CompleteRuns())
	want := 0
	for _, cl := range Table1 {
		want += cl.Runs
	}
	if complete != want {
		t.Fatalf("complete runs = %d, want %d (Table 1 total)", complete, want)
	}
	if len(c.Runs) <= complete {
		t.Fatal("expected incomplete runs in the raw data (the filter must have work to do)")
	}
}

func TestIncompleteRunsLackLTE(t *testing.T) {
	c := gen(t)
	for _, r := range c.Runs {
		if !r.Complete && (r.LTEDown != 0 || r.LTERTT != 0) {
			t.Fatal("incomplete run has LTE measurements")
		}
		if r.Complete && (r.LTEDown == 0 || r.WiFiDown == 0) {
			t.Fatal("complete run missing measurements")
		}
	}
}

func TestHeadlineWinFractions(t *testing.T) {
	// Paper Section 2.2: LTE beats WiFi in 42% of uplink samples, 35%
	// of downlink samples, 40% combined.
	up, down, combined := gen(t).WinFractions()
	if math.Abs(up-0.42) > 0.05 {
		t.Fatalf("uplink LTE win fraction = %.3f, want 0.42±0.05", up)
	}
	if math.Abs(down-0.35) > 0.05 {
		t.Fatalf("downlink LTE win fraction = %.3f, want 0.35±0.05", down)
	}
	if math.Abs(combined-0.40) > 0.05 {
		t.Fatalf("combined LTE win fraction = %.3f, want 0.40±0.05", combined)
	}
}

func TestRTTWinFraction(t *testing.T) {
	// Paper Fig. 4: LTE has lower ping RTT in 20% of runs.
	cdf := gen(t).RTTDiffCDF()
	// P(WiFi - LTE > 0) = 1 - CDF(0) is the LTE-win fraction.
	lteWins := 1 - cdf.At(0)
	if math.Abs(lteWins-0.20) > 0.04 {
		t.Fatalf("LTE RTT win fraction = %.3f, want 0.20±0.04", lteWins)
	}
}

func TestDiffCDFSupportSpansPaperRange(t *testing.T) {
	// Paper Fig. 3 shows differences reaching beyond ±10 Mbit/s.
	up, down := gen(t).DiffCDFs()
	if down.Quantile(0.99) < 10 {
		t.Fatalf("99th pct downlink diff = %.1f, want > 10 Mbit/s", down.Quantile(0.99))
	}
	if down.Quantile(0.01) > -5 {
		t.Fatalf("1st pct downlink diff = %.1f, want < -5 Mbit/s", down.Quantile(0.01))
	}
	if up.N() != down.N() {
		t.Fatal("uplink and downlink sample counts differ")
	}
}

func TestPerClusterWinCalibration(t *testing.T) {
	// Each big cluster's downlink win rate should track its Table 1
	// percentage.
	c := gen(t)
	byCluster := map[string][]Run{}
	for _, r := range c.CompleteRuns() {
		byCluster[r.Cluster] = append(byCluster[r.Cluster], r)
	}
	for _, cl := range Table1 {
		if cl.Runs < 100 {
			continue // small clusters are statistically noisy
		}
		runs := byCluster[cl.Name]
		wins := 0
		for _, r := range runs {
			if r.LTEDown > r.WiFiDown {
				wins++
			}
		}
		got := 100 * float64(wins) / float64(len(runs))
		if math.Abs(got-float64(cl.LTEWinPct)) > 12 {
			t.Errorf("%s: LTE win %.0f%%, want %d%%±12", cl.Name, got, cl.LTEWinPct)
		}
	}
}

func TestRegenerateTable1(t *testing.T) {
	rows := gen(t).RegenerateTable1()
	// The paper's Table 1 has 22 clusters; jittered coordinates should
	// regroup into a similar number (US East Coast clusters can merge).
	if len(rows) < 18 || len(rows) > 26 {
		t.Fatalf("regenerated %d clusters, want ~22", len(rows))
	}
	// Ordered by size, Boston first.
	if rows[0].Name != "US (Boston, MA)" {
		t.Fatalf("largest cluster = %s, want Boston", rows[0].Name)
	}
	if rows[0].Runs < 800 {
		t.Fatalf("Boston cluster has %d runs, want ~884", rows[0].Runs)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Runs > rows[i-1].Runs {
			t.Fatal("rows not ordered by run count")
		}
	}
}

func TestDeterministicGeneration(t *testing.T) {
	a := Generate(simnet.New(7))
	b := Generate(simnet.New(7))
	if len(a.Runs) != len(b.Runs) {
		t.Fatal("run counts differ")
	}
	for i := range a.Runs {
		if a.Runs[i] != b.Runs[i] {
			t.Fatalf("run %d differs", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := Generate(simnet.New(1))
	b := Generate(simnet.New(2))
	same := true
	for i := range a.Runs {
		if a.Runs[i] != b.Runs[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical campaigns")
	}
}

func TestAllThroughputsPositive(t *testing.T) {
	for _, r := range gen(t).CompleteRuns() {
		if r.WiFiDown <= 0 || r.WiFiUp <= 0 || r.LTEDown <= 0 || r.LTEUp <= 0 {
			t.Fatal("non-positive throughput")
		}
		if r.WiFiRTT <= 0 || r.LTERTT <= 0 {
			t.Fatal("non-positive RTT")
		}
	}
}
