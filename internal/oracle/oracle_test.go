package oracle

import (
	"math"
	"testing"
	"time"
)

func cond(wifi, lte, cw, cl, dw, dl float64) map[string]time.Duration {
	sec := func(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }
	return map[string]time.Duration{
		"WiFi-TCP":             sec(wifi),
		"LTE-TCP":              sec(lte),
		"MPTCP-Coupled-WiFi":   sec(cw),
		"MPTCP-Coupled-LTE":    sec(cl),
		"MPTCP-Decoupled-WiFi": sec(dw),
		"MPTCP-Decoupled-LTE":  sec(dl),
	}
}

func TestPickMinimum(t *testing.T) {
	c := cond(2.7, 5.5, 5.3, 4.0, 4.5, 4.2)
	cases := []struct {
		s    Scheme
		want time.Duration
	}{
		{WiFiTCPBaseline, 2700 * time.Millisecond},
		{SinglePathTCP, 2700 * time.Millisecond},
		{CoupledMPTCP, 4 * time.Second},
		{DecoupledMPTCP, 4200 * time.Millisecond},
		{MPTCPWiFiPrimary, 4500 * time.Millisecond},
		{MPTCPLTEPrimary, 4 * time.Second},
	}
	for _, tc := range cases {
		got, ok := Pick(c, tc.s)
		if !ok || got != tc.want {
			t.Errorf("%v: got %v ok=%v, want %v", tc.s, got, ok, tc.want)
		}
	}
}

func TestPickMissingConfig(t *testing.T) {
	c := map[string]time.Duration{"WiFi-TCP": time.Second}
	if _, ok := Pick(c, SinglePathTCP); ok {
		t.Fatal("Pick should fail with missing configs")
	}
}

func TestNormalizedBaselineIsOne(t *testing.T) {
	conds := []map[string]time.Duration{
		cond(2, 4, 3, 3.5, 3.2, 3.1),
		cond(7, 3, 6, 4, 5.5, 3.8),
	}
	norm := Normalized(conds)
	if math.Abs(norm[WiFiTCPBaseline]-1) > 1e-9 {
		t.Fatalf("baseline = %v, want 1", norm[WiFiTCPBaseline])
	}
	// Every oracle is at most its baseline's superset minimum, so the
	// single-path oracle must be <= 1.
	if norm[SinglePathTCP] > 1 {
		t.Fatalf("single-path oracle %v > 1", norm[SinglePathTCP])
	}
}

func TestNormalizedAveragesAcrossConditions(t *testing.T) {
	conds := []map[string]time.Duration{
		cond(4, 2, 9, 9, 9, 9), // LTE halves the time: ratio 0.5
		cond(4, 4, 9, 9, 9, 9), // tie: ratio 1.0
	}
	norm := Normalized(conds)
	if math.Abs(norm[SinglePathTCP]-0.75) > 1e-9 {
		t.Fatalf("single-path oracle = %v, want 0.75", norm[SinglePathTCP])
	}
}

func TestNormalizedSkipsIncomplete(t *testing.T) {
	conds := []map[string]time.Duration{
		cond(4, 2, 3, 3, 3, 3),
		{"WiFi-TCP": time.Second}, // incomplete
	}
	norm := Normalized(conds)
	if math.Abs(norm[SinglePathTCP]-0.5) > 1e-9 {
		t.Fatalf("incomplete condition not skipped: %v", norm[SinglePathTCP])
	}
}

func TestNormalizedEmpty(t *testing.T) {
	if n := Normalized(nil); len(n) != 0 {
		t.Fatal("empty input should give empty output")
	}
}

func TestSchemeStrings(t *testing.T) {
	for _, s := range Schemes {
		if s.String() == "unknown" {
			t.Fatalf("scheme %d has no name", s)
		}
	}
}

func TestForSchedulers(t *testing.T) {
	scheds := []string{"minsrtt", "roundrobin", "redundant", "holaware"}
	schemes, baseline := ForSchedulers([]string{"WiFi", "LTE"}, scheds)
	if baseline != "WiFi-TCP" {
		t.Fatalf("baseline = %q, want WiFi-TCP", baseline)
	}
	if len(schemes) != 2+len(scheds) {
		t.Fatalf("schemes = %d, want baseline + single-path + %d scheduler oracles",
			len(schemes), len(scheds))
	}
	if schemes[1].Name != "Single-Path-TCP Oracle" || len(schemes[1].Configs) != 2 {
		t.Fatalf("second scheme = %+v, want the N-path single-path oracle", schemes[1])
	}
	for i, s := range scheds {
		got := schemes[2+i]
		if got.Name != "MPTCP-"+s+" Oracle" {
			t.Errorf("scheme %d name = %q, want MPTCP-%s Oracle", 2+i, got.Name, s)
		}
		want := []string{"MPTCP-" + s + "-WiFi", "MPTCP-" + s + "-LTE"}
		if len(got.Configs) != 2 || got.Configs[0] != want[0] || got.Configs[1] != want[1] {
			t.Errorf("scheme %q configs = %v, want %v", got.Name, got.Configs, want)
		}
	}
	if s, b := ForSchedulers(nil, scheds); s != nil || b != "" {
		t.Fatal("empty labels should give no schemes")
	}
}
