package oracle

import (
	"math"
	"testing"
	"time"
)

func cond(wifi, lte, cw, cl, dw, dl float64) map[string]time.Duration {
	sec := func(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }
	return map[string]time.Duration{
		"WiFi-TCP":             sec(wifi),
		"LTE-TCP":              sec(lte),
		"MPTCP-Coupled-WiFi":   sec(cw),
		"MPTCP-Coupled-LTE":    sec(cl),
		"MPTCP-Decoupled-WiFi": sec(dw),
		"MPTCP-Decoupled-LTE":  sec(dl),
	}
}

func TestPickMinimum(t *testing.T) {
	c := cond(2.7, 5.5, 5.3, 4.0, 4.5, 4.2)
	cases := []struct {
		s    Scheme
		want time.Duration
	}{
		{WiFiTCPBaseline, 2700 * time.Millisecond},
		{SinglePathTCP, 2700 * time.Millisecond},
		{CoupledMPTCP, 4 * time.Second},
		{DecoupledMPTCP, 4200 * time.Millisecond},
		{MPTCPWiFiPrimary, 4500 * time.Millisecond},
		{MPTCPLTEPrimary, 4 * time.Second},
	}
	for _, tc := range cases {
		got, ok := Pick(c, tc.s)
		if !ok || got != tc.want {
			t.Errorf("%v: got %v ok=%v, want %v", tc.s, got, ok, tc.want)
		}
	}
}

func TestPickMissingConfig(t *testing.T) {
	c := map[string]time.Duration{"WiFi-TCP": time.Second}
	if _, ok := Pick(c, SinglePathTCP); ok {
		t.Fatal("Pick should fail with missing configs")
	}
}

func TestNormalizedBaselineIsOne(t *testing.T) {
	conds := []map[string]time.Duration{
		cond(2, 4, 3, 3.5, 3.2, 3.1),
		cond(7, 3, 6, 4, 5.5, 3.8),
	}
	norm := Normalized(conds)
	if math.Abs(norm[WiFiTCPBaseline]-1) > 1e-9 {
		t.Fatalf("baseline = %v, want 1", norm[WiFiTCPBaseline])
	}
	// Every oracle is at most its baseline's superset minimum, so the
	// single-path oracle must be <= 1.
	if norm[SinglePathTCP] > 1 {
		t.Fatalf("single-path oracle %v > 1", norm[SinglePathTCP])
	}
}

func TestNormalizedAveragesAcrossConditions(t *testing.T) {
	conds := []map[string]time.Duration{
		cond(4, 2, 9, 9, 9, 9), // LTE halves the time: ratio 0.5
		cond(4, 4, 9, 9, 9, 9), // tie: ratio 1.0
	}
	norm := Normalized(conds)
	if math.Abs(norm[SinglePathTCP]-0.75) > 1e-9 {
		t.Fatalf("single-path oracle = %v, want 0.75", norm[SinglePathTCP])
	}
}

func TestNormalizedSkipsIncomplete(t *testing.T) {
	conds := []map[string]time.Duration{
		cond(4, 2, 3, 3, 3, 3),
		{"WiFi-TCP": time.Second}, // incomplete
	}
	norm := Normalized(conds)
	if math.Abs(norm[SinglePathTCP]-0.5) > 1e-9 {
		t.Fatalf("incomplete condition not skipped: %v", norm[SinglePathTCP])
	}
}

func TestNormalizedEmpty(t *testing.T) {
	if n := Normalized(nil); len(n) != 0 {
		t.Fatal("empty input should give empty output")
	}
}

func TestSchemeStrings(t *testing.T) {
	for _, s := range Schemes {
		if s.String() == "unknown" {
			t.Fatalf("scheme %d has no name", s)
		}
	}
}
