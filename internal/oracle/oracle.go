// Package oracle implements the paper's Section 5 oracle schemes: for
// each network condition, an oracle picks the best configuration from
// the subset it controls (the network for single-path TCP, the primary
// subflow given a congestion controller, or the congestion controller
// given a primary). Figures 19 and 21 report each oracle's app
// response time averaged over the 20 conditions and normalised by
// single-path TCP over WiFi — the Android default the paper compares
// everything against.
package oracle

import (
	"math"
	"time"
)

// Scheme is one oracle policy.
type Scheme int

// The paper's five oracle schemes plus the WiFi-TCP baseline.
const (
	// WiFiTCPBaseline is plain TCP over WiFi (normalisation reference).
	WiFiTCPBaseline Scheme = iota
	// SinglePathTCP knows which network minimises response time.
	SinglePathTCP
	// DecoupledMPTCP uses decoupled CC and knows the best primary.
	DecoupledMPTCP
	// CoupledMPTCP uses coupled CC and knows the best primary.
	CoupledMPTCP
	// MPTCPWiFiPrimary uses WiFi primary and knows the best CC.
	MPTCPWiFiPrimary
	// MPTCPLTEPrimary uses LTE primary and knows the best CC.
	MPTCPLTEPrimary
)

// String names the scheme as in the paper's figure legends.
func (s Scheme) String() string {
	switch s {
	case WiFiTCPBaseline:
		return "WiFi-TCP"
	case SinglePathTCP:
		return "Single-Path-TCP Oracle"
	case DecoupledMPTCP:
		return "Decoupled-MPTCP Oracle"
	case CoupledMPTCP:
		return "Coupled-MPTCP Oracle"
	case MPTCPWiFiPrimary:
		return "MPTCP-WiFi-Primary Oracle"
	case MPTCPLTEPrimary:
		return "MPTCP-LTE-Primary Oracle"
	}
	return "unknown"
}

// Schemes lists all schemes in the paper's legend order.
var Schemes = []Scheme{
	WiFiTCPBaseline, SinglePathTCP, DecoupledMPTCP, CoupledMPTCP,
	MPTCPWiFiPrimary, MPTCPLTEPrimary,
}

// configs maps each scheme to the replay configuration names it may
// choose between (names from replay.StandardConfigs).
var configs = map[Scheme][]string{
	WiFiTCPBaseline:  {"WiFi-TCP"},
	SinglePathTCP:    {"WiFi-TCP", "LTE-TCP"},
	DecoupledMPTCP:   {"MPTCP-Decoupled-WiFi", "MPTCP-Decoupled-LTE"},
	CoupledMPTCP:     {"MPTCP-Coupled-WiFi", "MPTCP-Coupled-LTE"},
	MPTCPWiFiPrimary: {"MPTCP-Coupled-WiFi", "MPTCP-Decoupled-WiFi"},
	MPTCPLTEPrimary:  {"MPTCP-Coupled-LTE", "MPTCP-Decoupled-LTE"},
}

// PathScheme is an oracle over an explicit candidate set: it knows
// which of its Configs minimises response time for each condition.
// The enumerated two-path Schemes above are the paper's instances;
// ForPaths generates the same family for any path set.
type PathScheme struct {
	Name    string
	Configs []string
}

// ForPaths generates the paper's oracle family for an arbitrary path
// set, given the display labels used in the replay configuration
// names (e.g. {"WiFi", "LTE"} or {"LTE-A", "LTE-B"}): the
// first-label TCP baseline, the single-path oracle over all N
// alternatives, one per-CC MPTCP oracle choosing among N primaries,
// and one per-primary oracle choosing the CC. With labels
// {"WiFi", "LTE"} this reproduces the enumerated Schemes exactly.
func ForPaths(labels []string) (schemes []PathScheme, baseline string) {
	if len(labels) == 0 {
		return nil, ""
	}
	baseline = labels[0] + "-TCP"
	tcp := make([]string, len(labels))
	coupled := make([]string, len(labels))
	decoupled := make([]string, len(labels))
	for i, l := range labels {
		tcp[i] = l + "-TCP"
		coupled[i] = "MPTCP-Coupled-" + l
		decoupled[i] = "MPTCP-Decoupled-" + l
	}
	schemes = []PathScheme{
		{Name: baseline, Configs: []string{baseline}},
		{Name: "Single-Path-TCP Oracle", Configs: tcp},
		{Name: "Decoupled-MPTCP Oracle", Configs: decoupled},
		{Name: "Coupled-MPTCP Oracle", Configs: coupled},
	}
	for i, l := range labels {
		schemes = append(schemes, PathScheme{
			Name:    "MPTCP-" + l + "-Primary Oracle",
			Configs: []string{coupled[i], decoupled[i]},
		})
	}
	return schemes, baseline
}

// ForSchedulers generates the scheduler-comparison oracle family over
// the configuration names of replay.SchedulerConfigsFor: the
// first-label TCP baseline, the single-path oracle over all N
// alternatives (the N-path oracle every scheduler is normalised
// against), and one oracle per scheduler that knows the best primary
// for it ("MPTCP-<scheduler> Oracle" choosing among
// "MPTCP-<scheduler>-<Label>").
func ForSchedulers(labels, schedulers []string) (schemes []PathScheme, baseline string) {
	if len(labels) == 0 {
		return nil, ""
	}
	baseline = labels[0] + "-TCP"
	tcp := make([]string, len(labels))
	for i, l := range labels {
		tcp[i] = l + "-TCP"
	}
	schemes = []PathScheme{
		{Name: baseline, Configs: []string{baseline}},
		{Name: "Single-Path-TCP Oracle", Configs: tcp},
	}
	for _, s := range schedulers {
		cfgs := make([]string, len(labels))
		for i, l := range labels {
			cfgs[i] = "MPTCP-" + s + "-" + l
		}
		schemes = append(schemes, PathScheme{Name: "MPTCP-" + s + " Oracle", Configs: cfgs})
	}
	return schemes, baseline
}

// PickBest returns the minimum response time over the candidate
// configurations. ok is false if any candidate is missing.
func PickBest(perConfig map[string]time.Duration, candidates []string) (time.Duration, bool) {
	best := time.Duration(math.MaxInt64)
	for _, n := range candidates {
		d, ok := perConfig[n]
		if !ok {
			return 0, false
		}
		if d < best {
			best = d
		}
	}
	return best, true
}

// Pick returns the scheme's oracle response time for one condition:
// the minimum over the configurations it controls. ok is false if any
// needed configuration is missing.
func Pick(perConfig map[string]time.Duration, s Scheme) (time.Duration, bool) {
	return PickBest(perConfig, configs[s])
}

// NormalizedBy computes each scheme's mean response time across
// conditions, normalised by the named baseline configuration.
// Conditions missing the baseline or any scheme's configuration are
// skipped, so every scheme averages over the same condition set. The
// second return is how many conditions contributed.
func NormalizedBy(conditions []map[string]time.Duration, schemes []PathScheme, baseline string) (map[string]float64, int) {
	sums := map[string]float64{}
	n := 0
	for _, cond := range conditions {
		base, ok := cond[baseline]
		if !ok || base <= 0 {
			continue
		}
		complete := true
		vals := map[string]float64{}
		for _, s := range schemes {
			d, ok := PickBest(cond, s.Configs)
			if !ok {
				complete = false
				break
			}
			vals[s.Name] = float64(d) / float64(base)
		}
		if !complete {
			continue
		}
		for s, v := range vals {
			sums[s] += v
		}
		n++
	}
	out := map[string]float64{}
	if n == 0 {
		return out, 0
	}
	for s, v := range sums {
		out[s] = v / float64(n)
	}
	return out, n
}

// Normalized computes each scheme's mean response time across
// conditions, normalised by the WiFi-TCP baseline — the bars of the
// paper's Figs. 19 and 21. Conditions missing any configuration are
// skipped.
func Normalized(conditions []map[string]time.Duration) map[Scheme]float64 {
	named := make([]PathScheme, len(Schemes))
	for i, s := range Schemes {
		named[i] = PathScheme{Name: s.String(), Configs: configs[s]}
	}
	byName, _ := NormalizedBy(conditions, named, "WiFi-TCP")
	out := map[Scheme]float64{}
	for _, s := range Schemes {
		if v, ok := byName[s.String()]; ok {
			out[s] = v
		}
	}
	return out
}
