// Package oracle implements the paper's Section 5 oracle schemes: for
// each network condition, an oracle picks the best configuration from
// the subset it controls (the network for single-path TCP, the primary
// subflow given a congestion controller, or the congestion controller
// given a primary). Figures 19 and 21 report each oracle's app
// response time averaged over the 20 conditions and normalised by
// single-path TCP over WiFi — the Android default the paper compares
// everything against.
package oracle

import (
	"math"
	"time"
)

// Scheme is one oracle policy.
type Scheme int

// The paper's five oracle schemes plus the WiFi-TCP baseline.
const (
	// WiFiTCPBaseline is plain TCP over WiFi (normalisation reference).
	WiFiTCPBaseline Scheme = iota
	// SinglePathTCP knows which network minimises response time.
	SinglePathTCP
	// DecoupledMPTCP uses decoupled CC and knows the best primary.
	DecoupledMPTCP
	// CoupledMPTCP uses coupled CC and knows the best primary.
	CoupledMPTCP
	// MPTCPWiFiPrimary uses WiFi primary and knows the best CC.
	MPTCPWiFiPrimary
	// MPTCPLTEPrimary uses LTE primary and knows the best CC.
	MPTCPLTEPrimary
)

// String names the scheme as in the paper's figure legends.
func (s Scheme) String() string {
	switch s {
	case WiFiTCPBaseline:
		return "WiFi-TCP"
	case SinglePathTCP:
		return "Single-Path-TCP Oracle"
	case DecoupledMPTCP:
		return "Decoupled-MPTCP Oracle"
	case CoupledMPTCP:
		return "Coupled-MPTCP Oracle"
	case MPTCPWiFiPrimary:
		return "MPTCP-WiFi-Primary Oracle"
	case MPTCPLTEPrimary:
		return "MPTCP-LTE-Primary Oracle"
	}
	return "unknown"
}

// Schemes lists all schemes in the paper's legend order.
var Schemes = []Scheme{
	WiFiTCPBaseline, SinglePathTCP, DecoupledMPTCP, CoupledMPTCP,
	MPTCPWiFiPrimary, MPTCPLTEPrimary,
}

// configs maps each scheme to the replay configuration names it may
// choose between (names from replay.StandardConfigs).
var configs = map[Scheme][]string{
	WiFiTCPBaseline:  {"WiFi-TCP"},
	SinglePathTCP:    {"WiFi-TCP", "LTE-TCP"},
	DecoupledMPTCP:   {"MPTCP-Decoupled-WiFi", "MPTCP-Decoupled-LTE"},
	CoupledMPTCP:     {"MPTCP-Coupled-WiFi", "MPTCP-Coupled-LTE"},
	MPTCPWiFiPrimary: {"MPTCP-Coupled-WiFi", "MPTCP-Decoupled-WiFi"},
	MPTCPLTEPrimary:  {"MPTCP-Coupled-LTE", "MPTCP-Decoupled-LTE"},
}

// Pick returns the scheme's oracle response time for one condition:
// the minimum over the configurations it controls. ok is false if any
// needed configuration is missing.
func Pick(perConfig map[string]time.Duration, s Scheme) (time.Duration, bool) {
	names := configs[s]
	best := time.Duration(math.MaxInt64)
	for _, n := range names {
		d, ok := perConfig[n]
		if !ok {
			return 0, false
		}
		if d < best {
			best = d
		}
	}
	return best, true
}

// Normalized computes each scheme's mean response time across
// conditions, normalised by the WiFi-TCP baseline — the bars of the
// paper's Figs. 19 and 21. Conditions missing any configuration are
// skipped.
func Normalized(conditions []map[string]time.Duration) map[Scheme]float64 {
	sums := map[Scheme]float64{}
	n := 0
	for _, cond := range conditions {
		base, ok := cond["WiFi-TCP"]
		if !ok || base <= 0 {
			continue
		}
		complete := true
		vals := map[Scheme]float64{}
		for _, s := range Schemes {
			d, ok := Pick(cond, s)
			if !ok {
				complete = false
				break
			}
			vals[s] = float64(d) / float64(base)
		}
		if !complete {
			continue
		}
		for s, v := range vals {
			sums[s] += v
		}
		n++
	}
	out := map[Scheme]float64{}
	if n == 0 {
		return out
	}
	for s, v := range sums {
		out[s] = v / float64(n)
	}
	return out
}
