package simnet

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestEventOrdering(t *testing.T) {
	s := New(1)
	var got []int
	s.After(30*time.Millisecond, func() { got = append(got, 3) })
	s.After(10*time.Millisecond, func() { got = append(got, 1) })
	s.After(20*time.Millisecond, func() { got = append(got, 2) })
	if n := s.Run(); n != 3 {
		t.Fatalf("Run executed %d events, want 3", n)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestFIFOTiebreak(t *testing.T) {
	s := New(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(time.Second, func() { got = append(got, i) })
	}
	s.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-timestamp events out of scheduling order: %v", got)
		}
	}
}

func TestClockAdvances(t *testing.T) {
	s := New(1)
	var at time.Duration
	s.After(1500*time.Millisecond, func() { at = s.Now() })
	s.Run()
	if at != 1500*time.Millisecond {
		t.Fatalf("Now inside event = %v, want 1.5s", at)
	}
	if s.Now() != 1500*time.Millisecond {
		t.Fatalf("final Now = %v, want 1.5s", s.Now())
	}
}

func TestRunUntilSetsClock(t *testing.T) {
	s := New(1)
	fired := false
	s.After(5*time.Second, func() { fired = true })
	s.RunUntil(2 * time.Second)
	if fired {
		t.Fatal("event at 5s fired during RunUntil(2s)")
	}
	if s.Now() != 2*time.Second {
		t.Fatalf("Now = %v, want 2s", s.Now())
	}
	s.RunUntil(10 * time.Second)
	if !fired {
		t.Fatal("event at 5s did not fire by 10s")
	}
}

func TestRunUntilBoundaryInclusive(t *testing.T) {
	s := New(1)
	fired := false
	s.After(2*time.Second, func() { fired = true })
	s.RunUntil(2 * time.Second)
	if !fired {
		t.Fatal("event exactly at the RunUntil boundary must fire")
	}
}

func TestTimerStop(t *testing.T) {
	s := New(1)
	fired := false
	tm := s.After(time.Second, func() { fired = true })
	if !tm.Active() {
		t.Fatal("timer should be active before firing")
	}
	if !tm.Stop() {
		t.Fatal("Stop on pending timer should report true")
	}
	if tm.Stop() {
		t.Fatal("second Stop should report false")
	}
	s.Run()
	if fired {
		t.Fatal("cancelled timer fired")
	}
	if tm.Active() {
		t.Fatal("cancelled timer still active")
	}
}

func TestTimerStopAfterFire(t *testing.T) {
	s := New(1)
	tm := s.After(time.Second, func() {})
	s.Run()
	if tm.Stop() {
		t.Fatal("Stop after fire should report false")
	}
}

func TestNestedScheduling(t *testing.T) {
	s := New(1)
	var order []string
	s.After(time.Second, func() {
		order = append(order, "a")
		s.After(time.Second, func() { order = append(order, "c") })
		s.Defer(func() { order = append(order, "b") })
	})
	s.Run()
	if len(order) != 3 || order[0] != "a" || order[1] != "b" || order[2] != "c" {
		t.Fatalf("order = %v", order)
	}
	if s.Now() != 2*time.Second {
		t.Fatalf("Now = %v, want 2s", s.Now())
	}
}

func TestStopHaltsRun(t *testing.T) {
	s := New(1)
	count := 0
	for i := 1; i <= 100; i++ {
		s.After(time.Duration(i)*time.Millisecond, func() {
			count++
			if count == 10 {
				s.Stop()
			}
		})
	}
	n := s.Run()
	if n != 10 || count != 10 {
		t.Fatalf("executed %d events (count=%d), want 10", n, count)
	}
	// A subsequent Run resumes with the remaining events.
	n = s.Run()
	if n != 90 {
		t.Fatalf("resume executed %d, want 90", n)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	s := New(1)
	s.After(time.Second, func() {})
	s.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling into the past should panic")
		}
	}()
	s.Schedule(500*time.Millisecond, func() {})
}

func TestNegativeAfterClampsToNow(t *testing.T) {
	s := New(1)
	fired := false
	s.After(-time.Second, func() { fired = true })
	s.Run()
	if !fired {
		t.Fatal("After with negative delay should fire immediately")
	}
}

func TestRNGStreamsIndependent(t *testing.T) {
	a := New(42)
	seqA := drawn(a.RNG("link/wifi"), 8)

	// Same seed, but interleave draws from a different stream first: the
	// "link/wifi" stream must be unaffected.
	b := New(42)
	_ = drawn(b.RNG("link/lte"), 100)
	seqB := drawn(b.RNG("link/wifi"), 8)

	for i := range seqA {
		if seqA[i] != seqB[i] {
			t.Fatalf("stream draws differ at %d: %v vs %v", i, seqA, seqB)
		}
	}
}

func TestRNGDifferentSeedsDiffer(t *testing.T) {
	a := drawn(New(1).RNG("x"), 4)
	b := drawn(New(2).RNG("x"), 4)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func drawn(r *rand.Rand, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = r.Int63()
	}
	return out
}

func TestDeterministicReplay(t *testing.T) {
	run := func() []time.Duration {
		s := New(7)
		var times []time.Duration
		var step func()
		step = func() {
			times = append(times, s.Now())
			if len(times) < 50 {
				d := time.Duration(s.RNG("steps").Intn(1000)) * time.Microsecond
				s.After(d, step)
			}
		}
		s.After(0, step)
		s.Run()
		return times
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at event %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// Property: for any set of non-negative delays, events fire in
// non-decreasing time order and the clock never moves backwards.
func TestPropertyMonotonicClock(t *testing.T) {
	f := func(delays []uint16) bool {
		s := New(3)
		var fireTimes []time.Duration
		for _, d := range delays {
			s.After(time.Duration(d)*time.Microsecond, func() {
				fireTimes = append(fireTimes, s.Now())
			})
		}
		s.Run()
		if len(fireTimes) != len(delays) {
			return false
		}
		for i := 1; i < len(fireTimes); i++ {
			if fireTimes[i] < fireTimes[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Pending reflects live (non-cancelled) events.
func TestPropertyPendingCount(t *testing.T) {
	f := func(n uint8, cancel uint8) bool {
		s := New(5)
		total := int(n%50) + 1
		toCancel := int(cancel) % total
		timers := make([]Timer, total)
		for i := 0; i < total; i++ {
			timers[i] = s.After(time.Duration(i+1)*time.Millisecond, func() {})
		}
		for i := 0; i < toCancel; i++ {
			timers[i].Stop()
		}
		return s.Pending() == total-toCancel
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestStreamSeedStable(t *testing.T) {
	// Guard against accidental changes to the seed-derivation function:
	// experiment calibration depends on these exact values.
	if got := streamSeed(0, ""); got == 0 {
		t.Fatal("streamSeed must never return 0")
	}
	a := streamSeed(42, "link/wifi")
	b := streamSeed(42, "link/wifi")
	c := streamSeed(42, "link/lte")
	if a != b {
		t.Fatal("streamSeed not deterministic")
	}
	if a == c {
		t.Fatal("distinct names must yield distinct seeds")
	}
}

func BenchmarkScheduleRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := New(1)
		for j := 0; j < 1000; j++ {
			s.After(time.Duration(j)*time.Microsecond, func() {})
		}
		s.Run()
	}
}

func TestCancelledTimerReclaim(t *testing.T) {
	s := New(1)
	const n = 1024
	timers := make([]Timer, n)
	for i := range timers {
		timers[i] = s.After(time.Duration(i+1)*time.Millisecond, func() {})
	}
	for _, tm := range timers[:n-1] {
		tm.Stop()
	}
	if got := s.Pending(); got != 1 {
		t.Fatalf("Pending = %d, want 1", got)
	}
	// Cancelled entries may not accumulate: Stop unlinks wheel-resident
	// events on the spot, so the kernel holds the live timer plus at
	// most a due-bucket's worth of marked entries.
	if got := s.held(); got > 2 {
		t.Fatalf("kernel holds %d entries after cancelling %d of %d timers", got, n-1, n)
	}
	if got := s.Run(); got != 1 {
		t.Fatalf("Run executed %d events, want 1", got)
	}
}

func TestTimerChurnKeepsKernelBounded(t *testing.T) {
	// A workload that schedules and cancels timers forever (per-packet
	// retransmission timers) must not grow the kernel without bound.
	s := New(1)
	s.After(time.Hour, func() {})
	for i := 0; i < 100000; i++ {
		s.After(time.Minute, func() {}).Stop()
		if got := s.held(); got > 4 {
			t.Fatalf("iteration %d: kernel grew to %d entries", i, got)
		}
	}
	if s.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", s.Pending())
	}
}

func TestCancellationPreservesOrderAndHandles(t *testing.T) {
	s := New(1)
	var fired []int
	const n = 200
	timers := make([]Timer, n)
	for i := range timers {
		i := i
		// Deadlines decrease with i so execution order differs from
		// scheduling order.
		timers[i] = s.After(time.Duration(n-i)*time.Millisecond, func() { fired = append(fired, i) })
	}
	// Cancelling three quarters of the timers exercises unlink across
	// slots at several levels.
	for i := 0; i < len(timers); i++ {
		if i%4 != 3 {
			timers[i].Stop()
		}
	}
	if got := s.held(); got != n/4 {
		t.Fatalf("kernel holds %d entries after cancellation, want %d live", got, n/4)
	}
	for i, tm := range timers {
		if got := tm.Active(); got != (i%4 == 3) {
			t.Fatalf("timer %d Active = %v after compaction", i, got)
		}
	}
	if timers[2].Stop() {
		t.Fatal("Stop on an already-cancelled timer should report false")
	}
	s.Run()
	if len(fired) != n/4 {
		t.Fatalf("fired %d timers, want %d", len(fired), n/4)
	}
	for k, i := range fired {
		if want := n - 1 - 4*k; i != want {
			t.Fatalf("fired[%d] = %d, want %d", k, i, want)
		}
	}
}
