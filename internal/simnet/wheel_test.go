package simnet

import (
	"math/rand"
	"testing"
	"time"
)

// ---- reference model -------------------------------------------------
//
// refQueue is the executable specification the timing wheel is tested
// against: the binary heap the kernel used before, popping in strict
// (at, seq) order, with the same Timer semantics (Stop reports pending,
// Active, When, generation-guarded staleness).

type refEvent struct {
	at        time.Duration
	seq       uint64
	id        int
	cancelled bool
}

type refQueue struct {
	events []*refEvent
	seq    uint64
}

func (q *refQueue) schedule(at time.Duration, id int) *refEvent {
	ev := &refEvent{at: at, seq: q.seq, id: id}
	q.seq++
	q.events = append(q.events, ev)
	return ev
}

// popLE removes and returns the earliest live event with at <= limit.
func (q *refQueue) popLE(limit time.Duration) *refEvent {
	best := -1
	for i, ev := range q.events {
		if ev.cancelled || ev.at > limit {
			continue
		}
		if best < 0 || ev.at < q.events[best].at ||
			(ev.at == q.events[best].at && ev.seq < q.events[best].seq) {
			best = i
		}
	}
	if best < 0 {
		return nil
	}
	ev := q.events[best]
	q.events = append(q.events[:best], q.events[best+1:]...)
	return ev
}

func (q *refQueue) pending() int {
	n := 0
	for _, ev := range q.events {
		if !ev.cancelled {
			n++
		}
	}
	return n
}

// ---- differential driver ---------------------------------------------

// firing records one observed execution.
type firing struct {
	at time.Duration
	id int
}

// TestWheelDifferential drives the wheel and the reference heap with
// the same randomized Schedule/After/Defer/Stop/RunUntil workload and
// asserts identical firing order and identical Timer.Stop/Active/When
// results at every step. This is the executable proof that swapping the
// heap for the wheel changed nothing the goldens can observe.
func TestWheelDifferential(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		seed := seed
		rng := rand.New(rand.NewSource(seed))
		s := New(seed)
		ref := &refQueue{}

		type pair struct {
			tm Timer
			re *refEvent
		}
		var handles []pair
		var gotFired, wantFired []firing
		nextID := 0

		// fire is installed on every scheduled event; events may
		// themselves schedule follow-ups (nested scheduling is the
		// protocol stack's dominant pattern).
		var fire func(any)
		fire = func(a any) {
			id := a.(int)
			gotFired = append(gotFired, firing{at: s.Now(), id: id})
			if rng.Intn(4) == 0 && nextID < 4096 {
				// Schedule a follow-up relative to now; mirror in the model.
				d := time.Duration(rng.Intn(5000)) * 37 * time.Microsecond
				if rng.Intn(3) == 0 {
					d = 0 // Defer: same-instant follow-up
				}
				id2 := nextID
				nextID++
				tm := s.AfterArg(d, fire, id2)
				re := ref.schedule(s.Now()+d, id2)
				handles = append(handles, pair{tm, re})
			}
		}

		const steps = 400
		for step := 0; step < steps; step++ {
			switch rng.Intn(10) {
			case 0, 1, 2, 3, 4: // schedule at a random future offset
				// Offsets span from sub-tick to multiple wheel levels so
				// cascades, far slots and same-tick buckets all occur.
				var d time.Duration
				switch rng.Intn(4) {
				case 0:
					d = time.Duration(rng.Intn(100)) * time.Microsecond
				case 1:
					d = time.Duration(rng.Intn(1000)) * time.Millisecond
				case 2:
					d = time.Duration(rng.Intn(300)) * time.Second
				default:
					d = time.Duration(rng.Intn(72)) * time.Hour
				}
				id := nextID
				nextID++
				tm := s.AfterArg(d, fire, id)
				re := ref.schedule(s.Now()+d, id)
				handles = append(handles, pair{tm, re})
			case 5: // stop a random handle
				if len(handles) == 0 {
					continue
				}
				p := handles[rng.Intn(len(handles))]
				wantStopped := !p.re.cancelled && stillQueued(ref, p.re)
				if p.re != nil {
					p.re.cancelled = true
				}
				if got := p.tm.Stop(); got != wantStopped {
					t.Fatalf("seed %d step %d: Stop = %v, want %v", seed, step, got, wantStopped)
				}
			case 6: // check Active/When on a random handle
				if len(handles) == 0 {
					continue
				}
				p := handles[rng.Intn(len(handles))]
				wantActive := !p.re.cancelled && stillQueued(ref, p.re)
				if got := p.tm.Active(); got != wantActive {
					t.Fatalf("seed %d step %d: Active = %v, want %v", seed, step, got, wantActive)
				}
				wantWhen := time.Duration(0)
				if wantActive {
					wantWhen = p.re.at
				}
				if got := p.tm.When(); got != wantWhen {
					t.Fatalf("seed %d step %d: When = %v, want %v", seed, step, got, wantWhen)
				}
			case 7, 8: // run a bounded slice of virtual time
				limit := s.Now() + time.Duration(rng.Intn(2000))*437*time.Microsecond
				s.RunUntil(limit)
				for {
					ev := ref.popLE(limit)
					if ev == nil {
						break
					}
					wantFired = append(wantFired, firing{at: ev.at, id: ev.id})
				}
			case 9: // drain everything
				s.Run()
				for {
					ev := ref.popLE(1 << 62)
					if ev == nil {
						break
					}
					wantFired = append(wantFired, firing{at: ev.at, id: ev.id})
				}
			}
			if got, want := s.Pending(), ref.pending(); got != want {
				t.Fatalf("seed %d step %d: Pending = %d, want %d", seed, step, got, want)
			}
			if len(gotFired) != len(wantFired) {
				t.Fatalf("seed %d step %d: fired %d events, reference fired %d",
					seed, step, len(gotFired), len(wantFired))
			}
			for i := range gotFired {
				if gotFired[i] != wantFired[i] {
					t.Fatalf("seed %d step %d: firing %d = %+v, reference %+v",
						seed, step, i, gotFired[i], wantFired[i])
				}
			}
		}
	}
}

// stillQueued reports whether re has not yet been popped by the model.
func stillQueued(q *refQueue, re *refEvent) bool {
	for _, ev := range q.events {
		if ev == re {
			return true
		}
	}
	return false
}

// ---- targeted wheel-mechanics tests ----------------------------------

// TestWheelCascadeFarFuture exercises placements that start several
// levels up and must cascade down as the clock approaches them.
func TestWheelCascadeFarFuture(t *testing.T) {
	s := New(1)
	var got []time.Duration
	record := func(any) { got = append(got, s.Now()) }
	// One event per wheel level, plus two in the same far tick to check
	// the (at, seq) sort after a multi-level cascade.
	ats := []time.Duration{
		10 * time.Microsecond, // level 0
		50 * time.Millisecond, // level 1
		30 * time.Second,      // level 2
		2 * time.Hour,         // level 3
		100 * time.Hour,       // level 4
		100*time.Hour + 10*time.Nanosecond,
	}
	for _, at := range ats {
		s.ScheduleArg(at, record, nil)
	}
	s.Run()
	if len(got) != len(ats) {
		t.Fatalf("fired %d events, want %d", len(got), len(ats))
	}
	for i, at := range ats {
		if got[i] != at {
			t.Fatalf("firing %d at %v, want %v", i, got[i], at)
		}
	}
}

// TestWheelRunUntilMidTick stops inside a tick that still holds a later
// event, then schedules between the two — the leftover due-bucket path.
func TestWheelRunUntilMidTick(t *testing.T) {
	s := New(1)
	var got []int
	rec := func(a any) { got = append(got, a.(int)) }
	// Two events 2 µs apart share one 65.536 µs tick.
	s.ScheduleArg(time.Second+1*time.Microsecond, rec, 1)
	s.ScheduleArg(time.Second+3*time.Microsecond, rec, 3)
	s.RunUntil(time.Second + 2*time.Microsecond)
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("after RunUntil: got %v, want [1]", got)
	}
	// Now schedule into the same tick, between the leftover and a fresh
	// later event; order must be by (at, seq).
	s.ScheduleArg(time.Second+3*time.Microsecond, rec, 30) // ties leftover's at, later seq
	s.ScheduleArg(time.Second+2500*time.Nanosecond, rec, 2)
	s.Run()
	want := []int{1, 2, 3, 30}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

// TestWheelSameStartMultiLevel schedules so that slots at two different
// levels share a start tick; both must cascade before anything fires.
func TestWheelSameStartMultiLevel(t *testing.T) {
	s := New(1)
	var got []time.Duration
	record := func(any) { got = append(got, s.Now()) }
	// A level-2 block boundary in ticks is 1<<16 ticks = 2^32 ns.
	base := time.Duration(1) << 32 // exactly on a level-2 (and level-1) block start
	s.ScheduleArg(base, record, nil)
	s.ScheduleArg(base+time.Duration(200)<<16, record, nil) // level 1 territory after cascade
	s.ScheduleArg(base+1, record, nil)
	s.Run()
	want := []time.Duration{base, base + 1, base + time.Duration(200)<<16}
	if len(got) != 3 {
		t.Fatalf("fired %d events, want 3", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("firing %d at %v, want %v", i, got[i], want[i])
		}
	}
}
