package simnet

import "math/bits"

// The event queue is a hierarchical timing wheel (Varghese & Lauck),
// chosen over a binary heap because every kernel operation the
// simulation hot path performs — schedule, cancel, fire — is amortised
// O(1) instead of O(log pending):
//
//   - Virtual time is quantised into ticks of 2^tickShift ns (65.536 µs).
//     Level 0 has one slot per tick; each higher level's slots are 256×
//     coarser, so six levels cover the full time.Duration range.
//   - An event scheduled delta ticks ahead lives at the lowest level
//     whose window contains delta, in the slot indexed by its own tick
//     bits at that granularity. Slots are unordered intrusive singly
//     linked lists (event.next); per-level occupancy bitmaps make
//     "next non-empty slot" a handful of word scans.
//   - Firing drains the earliest non-empty level-0 slot into the due
//     bucket, sorted by (at, seq) — the same total order the old heap
//     popped in, which the output goldens depend on. All events of one
//     tick are dispatched from the bucket without touching the wheel
//     again, so a burst of same-instant events (ACK clocking, promotion
//     queue flushes) pays one wheel touch.
//   - When the earliest work sits in a higher level, the wheel crosses
//     to that slot's start tick and cascades it: each event is
//     re-placed relative to the new position, landing at a strictly
//     lower level. An event cascades at most numLevels-1 times, so the
//     amortised cost per event stays constant.
//
// Two invariants make placement and lookup unambiguous:
//
//  1. Every wheel entry's ring distance at its level — its slot count
//     ahead of the wheel position — stays within [1, 255]. Placement
//     enforces the upper bound by bumping an event whose distance would
//     be a full wrap (256) one level up, where its distance becomes 1;
//     the advance loop preserves the lower bound because the wheel
//     never moves past an occupied slot's start (see 2). Distinct
//     blocks therefore always map to distinct slots and a slot index
//     fully determines its events' tick prefix.
//  2. Crossing to a tick S (because a higher-level slot starting at S
//     is due) immediately cascades *every* level's slot for S, highest
//     level first, and drains the level-0 slot for S itself: those are
//     exactly the slots whose ring distance would otherwise reach 0 and
//     become invisible to the scans. The earlier-block check in
//     fillBucket guarantees a drain target's blocks carry no occupied
//     higher-level slots, so advancing to it is safe.
//
// Slot lists are doubly linked (event.prevp is the address of whichever
// pointer currently points at the event), so Timer.Stop unlinks and
// recycles a wheel-resident event in O(1) — cancelled events never
// accumulate and a schedule-then-cancel workload (per-packet RTO
// timers) reuses the same handful of event structs forever. Events in
// the due bucket cannot be unlinked from the middle of a slice; they
// are marked and reclaimed when their position pops, which bounds them
// by one tick's batch.
const (
	// tickShift trades tie-bucket size against cascade frequency: 65 µs
	// is far below every protocol timescale in the repo (propagation
	// delays, RTOs, radio promotions are all ≥ 1 ms), so due buckets
	// stay small, while level 0 still spans 16.8 ms and level 1 4.3 s,
	// which keeps common timers within one cascade of their slot.
	tickShift     = 16
	levelBits     = 8
	slotsPerLevel = 1 << levelBits
	slotMask      = slotsPerLevel - 1
	wordsPerLevel = slotsPerLevel / 64
	// numLevels must satisfy tickShift + levelBits*numLevels >= 63 so
	// the top level's window covers any scheduling horizon.
	numLevels = 6

	// noTick marks "no candidate" in the advance loop.
	noTick = int64(^uint64(0) >> 1)
)

// wheel is the tiered slot store. tick is the wheel's position: every
// slot at or before it has been drained or cascaded, and the due bucket
// holds (what remains of) the batch for tick itself.
type wheel struct {
	slot [numLevels][slotsPerLevel]*event //multinet:owns — intrusive per-slot event lists
	occ  [numLevels][wordsPerLevel]uint64
	// count tracks entries per level so the advance loop skips empty
	// levels without touching their bitmaps.
	count [numLevels]int
	tick  int64
}

// place files a pending event into the due bucket (same tick) or the
// slot its timestamp selects. Caller guarantees ev.at >= s.now, which
// with the run loop's bookkeeping implies tick(ev) >= wheel.tick.
//
//multinet:hotpath
func (s *Sim) place(ev *event) {
	tick := int64(ev.at) >> tickShift
	delta := tick - s.wheel.tick
	if delta <= 0 {
		// Current tick: the slot for it is already drained, so the event
		// joins the due bucket at its (at, seq) position.
		s.dueInsert(ev)
		return
	}
	level := (bits.Len64(uint64(delta)) - 1) / levelBits
	shift := levelBits * level
	if (tick>>shift)-(s.wheel.tick>>shift) == slotsPerLevel {
		// A full-wrap distance would alias the wheel's own position; one
		// level up the distance becomes exactly 1 (invariant 1).
		level++
		shift += levelBits
	}
	idx := int(tick>>shift) & slotMask
	head := s.wheel.slot[level][idx]
	ev.next = head
	if head != nil {
		head.prevp = &ev.next
	}
	ev.prevp = &s.wheel.slot[level][idx]
	ev.lvl = uint8(level)
	ev.idx = uint8(idx)
	s.wheel.slot[level][idx] = ev
	s.wheel.occ[level][idx>>6] |= 1 << (idx & 63)
	s.wheel.count[level]++
}

// unlink removes a wheel-resident event from its slot in O(1),
// clearing the occupancy bit when the slot empties.
//
//multinet:hotpath
func (s *Sim) unlink(ev *event) {
	next := ev.next
	*ev.prevp = next
	if next != nil {
		next.prevp = ev.prevp
	}
	level, idx := int(ev.lvl), int(ev.idx)
	if s.wheel.slot[level][idx] == nil {
		s.wheel.occ[level][idx>>6] &^= 1 << (idx & 63)
	}
	s.wheel.count[level]--
	ev.next = nil
	ev.prevp = nil
}

// dueInsert adds ev to the due bucket at its (at, seq) position.
// During fillBucket the bucket may be transiently unordered (the final
// sortDue fixes any interim position); for Schedule-time calls the
// bucket is sorted and the binary search lands exactly.
//
//multinet:hotpath
func (s *Sim) dueInsert(ev *event) {
	lo, hi := s.dueHead, len(s.due)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		e := s.due[mid]
		if e.at < ev.at || (e.at == ev.at && e.seq < ev.seq) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	ev.prevp = nil
	s.due = append(s.due, nil) //lint:allow hotpath due-bucket capacity is amortised across ticks
	copy(s.due[lo+1:], s.due[lo:])
	s.due[lo] = ev
}

// takeSlot detaches and returns a slot's list, clearing its occupancy.
// The callers re-home every event immediately (place, due bucket), so
// stale prevp pointers in the detached list are never observable.
func (s *Sim) takeSlot(level, idx int) *event {
	head := s.wheel.slot[level][idx]
	s.wheel.slot[level][idx] = nil
	s.wheel.occ[level][idx>>6] &^= 1 << (idx & 63)
	return head
}

// occupied reports whether a slot holds any entries.
func (s *Sim) occupied(level, idx int) bool {
	return s.wheel.occ[level][idx>>6]&(1<<(idx&63)) != 0
}

// reclaim returns a cancelled event found in the due bucket to the
// free list.
func (s *Sim) reclaim(ev *event) {
	s.cancelled--
	s.recycle(ev)
}

// scan returns the ring distance (1..255) from pos to the first
// occupied slot at level, or -1 if none: by invariant 1 no live entry
// sits at distance 0 or 256, so the position's own bit is never valid.
func (s *Sim) scan(level, pos int) int {
	if s.wheel.count[level] == 0 {
		return -1
	}
	occ := &s.wheel.occ[level]
	for b := pos + 1; b < slotsPerLevel; {
		if w := occ[b>>6] >> (b & 63); w != 0 {
			return b + bits.TrailingZeros64(w) - pos
		}
		b = (b>>6 + 1) << 6
	}
	for b := 0; b < pos; b = (b>>6 + 1) << 6 {
		if w := occ[b>>6]; w != 0 {
			r := b + bits.TrailingZeros64(w)
			if r < pos {
				return r + slotsPerLevel - pos
			}
			break // the set bit is at or past pos: covered above / invalid
		}
	}
	return -1
}

// nextLevel0 finds the earliest occupied level-0 slot: its absolute
// tick and slot index, or noTick.
func (s *Sim) nextLevel0() (int64, int) {
	pos := int(s.wheel.tick) & slotMask
	d := s.scan(0, pos)
	if d < 0 {
		return noTick, 0
	}
	return s.wheel.tick + int64(d), (pos + d) & slotMask
}

// nextHigher finds the earliest start tick over all higher-level
// occupied slots, or noTick.
func (s *Sim) nextHigher() int64 {
	best := noTick
	for level := 1; level < numLevels; level++ {
		shift := uint(levelBits * level)
		pos := int(s.wheel.tick>>shift) & slotMask
		d := s.scan(level, pos)
		if d < 0 {
			continue
		}
		start := ((s.wheel.tick >> shift) + int64(d)) << shift
		if start < best {
			best = start
		}
	}
	return best
}

// crossTo advances the wheel to tick start — the start of at least one
// occupied higher-level slot — and empties every slot whose ring
// distance just reached 0 (invariant 2): each level's slot for start is
// cascaded from the highest level down (re-placed events land strictly
// lower, or in the due bucket when they belong to start itself), and
// the level-0 slot for start drains into the due bucket directly.
func (s *Sim) crossTo(start int64) {
	s.wheel.tick = start
	for level := numLevels - 1; level >= 1; level-- {
		idx := int(start>>(levelBits*level)) & slotMask
		if !s.occupied(level, idx) {
			continue
		}
		for ev := s.takeSlot(level, idx); ev != nil; {
			next := ev.next
			ev.next = nil
			s.wheel.count[level]--
			s.place(ev)
			ev = next
		}
	}
	idx := int(start) & slotMask
	if s.occupied(0, idx) {
		s.drainSlot0(idx)
	}
}

// drainSlot0 appends a level-0 slot's events to the due bucket
// (unsorted; fillBucket sorts before dispatch).
func (s *Sim) drainSlot0(idx int) {
	for ev := s.takeSlot(0, idx); ev != nil; {
		next := ev.next
		ev.next = nil
		ev.prevp = nil
		s.wheel.count[0]--
		s.due = append(s.due, ev)
		ev = next
	}
}

// fillBucket advances the wheel until the due bucket holds the next
// batch of live events, ignoring candidates past untilTick. It reports
// whether the bucket has events to dispatch.
//
//multinet:hotpath
func (s *Sim) fillBucket(untilTick int64) bool {
	if s.dueHead < len(s.due) {
		return true
	}
	for {
		t0, idx0 := s.nextLevel0()
		tHi := s.nextHigher()
		next := t0
		if tHi < next {
			next = tHi
		}
		if s.dueHead < len(s.due) && next > s.wheel.tick {
			// Crossings filled the bucket for the current tick and no slot
			// can still contribute to it.
			s.sortDue()
			return true
		}
		if next == noTick || next > untilTick {
			return false
		}
		if tHi <= t0 {
			// A coarse slot starts at or before the level-0 candidate: its
			// events may precede t0, so the wheel must cross there first.
			s.crossTo(tHi)
			continue
		}
		s.wheel.tick = t0
		s.drainSlot0(idx0)
		s.sortDue()
		return true
	}
}

// sortDue orders the due bucket by (at, seq). Slot lists are unordered,
// so this runs once per filled bucket; a freshly drained bucket is the
// whole slice (dueHead is 0).
func (s *Sim) sortDue() {
	due := s.due[s.dueHead:] //multinet:owns — alias of the due bucket; sorting permutes in place
	// Insertion sort: due buckets are one tick (65 µs) of events, which
	// protocol workloads keep small; the branch below guards the
	// pathological burst.
	if len(due) <= 24 {
		for i := 1; i < len(due); i++ {
			ev := due[i]
			j := i - 1
			for j >= 0 && (due[j].at > ev.at || (due[j].at == ev.at && due[j].seq > ev.seq)) {
				due[j+1] = due[j]
				j--
			}
			due[j+1] = ev
		}
		return
	}
	heapSortDue(due)
}

// heapSortDue is the allocation-free large-bucket fallback.
func heapSortDue(due []*event) {
	for i := len(due)/2 - 1; i >= 0; i-- {
		siftDue(due, i, len(due))
	}
	for n := len(due) - 1; n > 0; n-- {
		due[0], due[n] = due[n], due[0]
		siftDue(due, 0, n)
	}
}

func siftDue(due []*event, i, n int) {
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		if r := l + 1; r < n && evLess(due[l], due[r]) {
			l = r
		}
		if !evLess(due[i], due[l]) {
			return
		}
		due[i], due[l] = due[l], due[i]
		i = l
	}
}

func evLess(a, b *event) bool {
	return a.at < b.at || (a.at == b.at && a.seq < b.seq)
}
