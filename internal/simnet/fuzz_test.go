package simnet

import (
	"testing"
	"time"
)

// FuzzWheelScheduleStop is the fuzz-shaped sibling of
// TestWheelDifferential: the input bytes are decoded into a
// schedule/stop/run workload that drives the timing wheel and the
// reference heap in lockstep, asserting identical Stop results,
// identical Pending counts, and an identical firing order. The seed
// corpus encodes the patterns the differential test reaches through
// its RNG: same-tick bursts, far-future cascades, stop-after-drain.
func FuzzWheelScheduleStop(f *testing.F) {
	f.Add([]byte{0x00, 0x00, 0x00, 0x10}) // one near event, implicit drain
	f.Add([]byte{                         // burst into one tick, then RunUntil mid-tick
		0x00, 0x00, 0x00, 0x01,
		0x01, 0x00, 0x00, 0x01,
		0x00, 0x00, 0x00, 0x02,
		0x03, 0x00, 0x01,
	})
	f.Add([]byte{ // far-future placements across wheel levels, then drain
		0x00, 0x02, 0x01, 0x00,
		0x01, 0x03, 0x30,
		0x00, 0x01, 0xff, 0xff,
		0x04,
	})
	f.Add([]byte{ // schedule, stop it, schedule again, drain
		0x00, 0x00, 0x00, 0x40,
		0x02, 0x00, 0x00,
		0x01, 0x00, 0x00, 0x41,
		0x04,
	})
	f.Fuzz(func(t *testing.T, data []byte) {
		s := New(1)
		ref := &refQueue{}
		type pair struct {
			tm Timer
			re *refEvent
		}
		var handles []pair
		var gotFired, wantFired []firing
		nextID := 0
		rec := func(a any) { gotFired = append(gotFired, firing{at: s.Now(), id: a.(int)}) }

		pop := func() byte {
			if len(data) == 0 {
				return 0
			}
			b := data[0]
			data = data[1:]
			return b
		}
		u16 := func() int { return int(pop())<<8 | int(pop()) }
		syncRef := func(limit time.Duration) {
			for {
				ev := ref.popLE(limit)
				if ev == nil {
					return
				}
				wantFired = append(wantFired, firing{at: ev.at, id: ev.id})
			}
		}

		for len(data) > 0 && nextID < 4096 {
			switch pop() % 5 {
			case 0, 1: // schedule at an offset spanning sub-tick to multi-level
				var d time.Duration
				switch pop() % 4 {
				case 0:
					d = time.Duration(u16()) * time.Microsecond
				case 1:
					d = time.Duration(u16()) * time.Millisecond
				case 2:
					d = time.Duration(u16()) * time.Second
				default:
					d = time.Duration(pop()) * time.Hour
				}
				id := nextID
				nextID++
				tm := s.AfterArg(d, rec, id)
				re := ref.schedule(s.Now()+d, id)
				handles = append(handles, pair{tm, re})
			case 2: // stop a handle (possibly already fired or stopped)
				if len(handles) == 0 {
					continue
				}
				p := handles[u16()%len(handles)]
				want := !p.re.cancelled && stillQueued(ref, p.re)
				p.re.cancelled = true
				if got := p.tm.Stop(); got != want {
					t.Fatalf("Stop = %v, want %v", got, want)
				}
			case 3: // run a bounded slice of virtual time
				limit := s.Now() + time.Duration(u16())*431*time.Microsecond
				s.RunUntil(limit)
				syncRef(limit)
			case 4: // drain everything
				s.Run()
				syncRef(1 << 62)
			}
			if got, want := s.Pending(), ref.pending(); got != want {
				t.Fatalf("Pending = %d, reference %d", got, want)
			}
		}
		s.Run()
		syncRef(1 << 62)

		if len(gotFired) != len(wantFired) {
			t.Fatalf("fired %d events, reference fired %d", len(gotFired), len(wantFired))
		}
		for i := range gotFired {
			if gotFired[i] != wantFired[i] {
				t.Fatalf("firing %d = %+v, reference %+v", i, gotFired[i], wantFired[i])
			}
		}
	})
}
