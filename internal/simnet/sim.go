// Package simnet provides the discrete-event simulation kernel that every
// other subsystem in this repository runs on.
//
// A Sim owns a virtual clock and an event heap. Events execute in
// timestamp order (ties broken by scheduling order), so a simulation with
// a fixed seed is bit-reproducible across runs and platforms. There are
// no wall-clock sleeps anywhere: simulating 180 days of the paper's
// crowd-sourced measurement campaign takes seconds of real time.
//
// Randomness is handled through named streams (see Sim.RNG) so that
// adding a new consumer of randomness does not perturb the draws seen by
// existing consumers — a property the calibrated experiments rely on.
package simnet

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Sim is a discrete-event simulator with a virtual clock.
//
// The zero value is not usable; construct with New.
type Sim struct {
	now     time.Duration
	events  eventHeap
	seq     uint64
	seed    int64
	rngs    map[string]*rand.Rand
	stopped bool
	// processed counts events executed since construction; exposed for
	// tests and for sanity checks that experiments actually ran.
	processed uint64
	// cancelled counts heap entries whose timer was stopped but which
	// have not been removed yet; Timer.Stop compacts the heap when they
	// outnumber the live entries, so a workload that schedules and
	// cancels timers indefinitely (e.g. per-packet retransmission
	// timers) keeps the heap proportional to the live timer count.
	cancelled int
}

// New returns a simulator whose random streams derive from seed.
func New(seed int64) *Sim {
	return &Sim{
		seed: seed,
		rngs: make(map[string]*rand.Rand),
	}
}

// Now returns the current virtual time. Time starts at zero.
func (s *Sim) Now() time.Duration { return s.now }

// Seed returns the seed the simulator was constructed with.
func (s *Sim) Seed() int64 { return s.seed }

// Processed returns the number of events executed so far.
func (s *Sim) Processed() uint64 { return s.processed }

// Timer is a handle to a scheduled event. Cancelling a fired or already
// cancelled timer is a no-op.
type Timer struct {
	sim *Sim
	ev  *event
}

// Stop cancels the timer. It reports whether the event had not yet fired.
func (t *Timer) Stop() bool {
	if t == nil || t.ev == nil || t.ev.fn == nil {
		return false
	}
	t.ev.fn = nil // heap entry stays until run pops it or compact removes it
	if s := t.sim; s != nil {
		s.cancelled++
		if s.cancelled > len(s.events)/2 {
			s.compact()
		}
	}
	return true
}

// Active reports whether the timer is still pending.
func (t *Timer) Active() bool { return t != nil && t.ev != nil && t.ev.fn != nil }

// When returns the virtual time the timer fires (or fired) at.
func (t *Timer) When() time.Duration {
	if t == nil || t.ev == nil {
		return 0
	}
	return t.ev.at
}

// Schedule runs fn at absolute virtual time at. Scheduling in the past
// panics: it always indicates a logic error in a protocol implementation.
func (s *Sim) Schedule(at time.Duration, fn func()) *Timer {
	if fn == nil {
		panic("simnet: Schedule with nil fn")
	}
	if at < s.now {
		panic(fmt.Sprintf("simnet: scheduling into the past: at=%v now=%v", at, s.now))
	}
	ev := &event{at: at, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.events, ev)
	return &Timer{sim: s, ev: ev}
}

// After runs fn after delay d (relative to the current virtual time).
func (s *Sim) After(d time.Duration, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return s.Schedule(s.now+d, fn)
}

// Defer runs fn at the current time, after all events already scheduled
// for the current instant. It is the simulation analogue of "post to the
// run loop" and is useful to break call cycles between protocol layers.
func (s *Sim) Defer(fn func()) *Timer { return s.Schedule(s.now, fn) }

// Stop halts Run/RunUntil after the event currently executing returns.
func (s *Sim) Stop() { s.stopped = true }

// Run executes events until the heap is empty or Stop is called. It
// returns the number of events executed by this call.
func (s *Sim) Run() int {
	return s.run(-1)
}

// RunUntil executes events with timestamps <= t, then sets the clock to
// t. It returns the number of events executed by this call.
func (s *Sim) RunUntil(t time.Duration) int {
	if t < s.now {
		panic(fmt.Sprintf("simnet: RunUntil into the past: t=%v now=%v", t, s.now))
	}
	n := s.run(t)
	if !s.stopped && s.now < t {
		s.now = t
	}
	return n
}

// RunFor executes events for the next d of virtual time.
func (s *Sim) RunFor(d time.Duration) int { return s.RunUntil(s.now + d) }

func (s *Sim) run(until time.Duration) int {
	s.stopped = false
	n := 0
	for len(s.events) > 0 && !s.stopped {
		next := s.events[0]
		if until >= 0 && next.at > until {
			break
		}
		heap.Pop(&s.events)
		if next.fn == nil { // cancelled
			s.cancelled--
			continue
		}
		s.now = next.at
		fn := next.fn
		next.fn = nil
		fn()
		n++
		s.processed++
	}
	return n
}

// Pending returns the number of live (not cancelled) scheduled events.
func (s *Sim) Pending() int {
	return len(s.events) - s.cancelled
}

// compact removes cancelled entries from the event heap and restores
// the heap invariant. Timer handles to removed events stay valid: a
// compacted-away event has fn == nil, so Stop and Active treat it as
// fired.
func (s *Sim) compact() {
	live := s.events[:0]
	for _, ev := range s.events {
		if ev.fn != nil {
			live = append(live, ev)
		}
	}
	// Release the tail so removed events can be collected.
	for i := len(live); i < len(s.events); i++ {
		s.events[i] = nil
	}
	s.events = live
	heap.Init(&s.events)
	s.cancelled = 0
}

// RNG returns the deterministic random stream with the given name,
// creating it on first use. Streams with distinct names are independent;
// the same (seed, name) pair always yields the same sequence.
func (s *Sim) RNG(name string) *rand.Rand {
	if r, ok := s.rngs[name]; ok {
		return r
	}
	r := rand.New(rand.NewSource(streamSeed(s.seed, name)))
	s.rngs[name] = r
	return r
}

// streamSeed derives a child seed from (seed, name) using an FNV-1a mix.
// It must be stable forever: experiment calibration depends on it.
func streamSeed(seed int64, name string) int64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < 8; i++ {
		h ^= uint64(seed>>(8*i)) & 0xff
		h *= prime64
	}
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime64
	}
	// Avoid the degenerate all-zero seed.
	if h == 0 {
		h = offset64
	}
	return int64(h)
}

// event is a single heap entry.
type event struct {
	at  time.Duration
	seq uint64 // FIFO tiebreak for identical timestamps
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(*event)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
