// Package simnet provides the discrete-event simulation kernel that every
// other subsystem in this repository runs on.
//
// A Sim owns a virtual clock and an event heap. Events execute in
// timestamp order (ties broken by scheduling order), so a simulation with
// a fixed seed is bit-reproducible across runs and platforms. There are
// no wall-clock sleeps anywhere: simulating 180 days of the paper's
// crowd-sourced measurement campaign takes seconds of real time.
//
// The kernel is allocation-free in steady state: fired and cancelled
// events return to a free list and are reused by later Schedule calls,
// and the arg-passing variants (ScheduleArg, AfterArg, DeferArg) let hot
// callers avoid per-event closure captures entirely. Timer is a small
// value type; handing one around never allocates.
//
// Randomness is handled through named streams (see Sim.RNG) so that
// adding a new consumer of randomness does not perturb the draws seen by
// existing consumers — a property the calibrated experiments rely on.
package simnet

import (
	"fmt"
	"math/rand"
	"time"
)

// Sim is a discrete-event simulator with a virtual clock.
//
// The zero value is not usable; construct with New.
type Sim struct {
	now     time.Duration
	events  eventHeap
	free    []*event // recycled events awaiting reuse
	seq     uint64
	seed    int64
	rngs    map[string]*rand.Rand
	stopped bool
	// processed counts events executed since construction; exposed for
	// tests and for sanity checks that experiments actually ran.
	processed uint64
	// cancelled counts heap entries whose timer was stopped but which
	// have not been removed yet; Timer.Stop compacts the heap when they
	// outnumber the live entries, so a workload that schedules and
	// cancels timers indefinitely (e.g. per-packet retransmission
	// timers) keeps the heap proportional to the live timer count.
	cancelled int
}

// New returns a simulator whose random streams derive from seed.
func New(seed int64) *Sim {
	return &Sim{
		seed: seed,
		rngs: make(map[string]*rand.Rand),
	}
}

// Now returns the current virtual time. Time starts at zero.
func (s *Sim) Now() time.Duration { return s.now }

// Seed returns the seed the simulator was constructed with.
func (s *Sim) Seed() int64 { return s.seed }

// Processed returns the number of events executed so far.
func (s *Sim) Processed() uint64 { return s.processed }

// Timer is a handle to a scheduled event. The zero Timer is inert:
// Stop and Active on it are no-ops. Cancelling a fired or already
// cancelled timer is a no-op. Timers are values; copying one copies the
// handle, and both copies control the same scheduled event.
//
// Fired and cancelled events are recycled for later Schedule calls, so
// a Timer additionally remembers the event's generation (its scheduling
// sequence number): a stale handle whose event has been reused is
// recognised and treated as fired.
type Timer struct {
	sim *Sim
	ev  *event
	seq uint64
}

// Stop cancels the timer. It reports whether the event had not yet fired.
func (t Timer) Stop() bool {
	ev := t.ev
	if ev == nil || ev.seq != t.seq || ev.fn == nil {
		return false
	}
	ev.fn = nil // heap entry stays until run pops it or compact removes it
	ev.arg = nil
	if s := t.sim; s != nil {
		s.cancelled++
		if s.cancelled > len(s.events)/2 {
			s.compact()
		}
	}
	return true
}

// Active reports whether the timer is still pending.
func (t Timer) Active() bool {
	return t.ev != nil && t.ev.seq == t.seq && t.ev.fn != nil
}

// When returns the virtual time a pending timer fires at, or 0 once it
// has fired or been cancelled (its event may already be reused).
func (t Timer) When() time.Duration {
	if !t.Active() {
		return 0
	}
	return t.ev.at
}

// thunk adapts the closure-based Schedule API onto the arg-based event
// representation without an extra allocation (func values are
// pointer-shaped, so boxing one into the arg interface is free).
func thunk(a any) { a.(func())() }

// Schedule runs fn at absolute virtual time at. Scheduling in the past
// panics: it always indicates a logic error in a protocol implementation.
func (s *Sim) Schedule(at time.Duration, fn func()) Timer {
	if fn == nil {
		panic("simnet: Schedule with nil fn")
	}
	return s.ScheduleArg(at, thunk, fn)
}

// ScheduleArg runs fn(arg) at absolute virtual time at. It is the
// allocation-free variant of Schedule: with a non-capturing fn and a
// pointer-shaped arg (the idiomatic pattern is a package-level func
// asserting arg back to the caller's receiver type), scheduling reuses
// a recycled event and allocates nothing.
func (s *Sim) ScheduleArg(at time.Duration, fn func(any), arg any) Timer {
	if fn == nil {
		panic("simnet: ScheduleArg with nil fn")
	}
	if at < s.now {
		panic(fmt.Sprintf("simnet: scheduling into the past: at=%v now=%v", at, s.now))
	}
	ev := s.newEvent(at, fn, arg)
	s.events.push(ev)
	return Timer{sim: s, ev: ev, seq: ev.seq}
}

// After runs fn after delay d (relative to the current virtual time).
func (s *Sim) After(d time.Duration, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	return s.Schedule(s.now+d, fn)
}

// AfterArg runs fn(arg) after delay d; see ScheduleArg.
func (s *Sim) AfterArg(d time.Duration, fn func(any), arg any) Timer {
	if d < 0 {
		d = 0
	}
	return s.ScheduleArg(s.now+d, fn, arg)
}

// Defer runs fn at the current time, after all events already scheduled
// for the current instant. It is the simulation analogue of "post to the
// run loop" and is useful to break call cycles between protocol layers.
func (s *Sim) Defer(fn func()) Timer { return s.Schedule(s.now, fn) }

// DeferArg runs fn(arg) at the current time, after all events already
// scheduled for the current instant; see ScheduleArg.
func (s *Sim) DeferArg(fn func(any), arg any) Timer { return s.ScheduleArg(s.now, fn, arg) }

// newEvent takes an event from the free list (or allocates one) and
// stamps it with a fresh generation number.
func (s *Sim) newEvent(at time.Duration, fn func(any), arg any) *event {
	var ev *event
	if n := len(s.free); n > 0 {
		ev = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
	} else {
		ev = new(event)
	}
	ev.at = at
	ev.seq = s.seq
	ev.fn = fn
	ev.arg = arg
	s.seq++
	return ev
}

// recycle clears an event and returns it to the free list. Its seq is
// left in place until reuse so stale Timer handles keep failing the
// generation check.
func (s *Sim) recycle(ev *event) {
	ev.fn = nil
	ev.arg = nil
	s.free = append(s.free, ev)
}

// Stop halts Run/RunUntil after the event currently executing returns.
func (s *Sim) Stop() { s.stopped = true }

// Run executes events until the heap is empty or Stop is called. It
// returns the number of events executed by this call.
func (s *Sim) Run() int {
	return s.run(-1)
}

// RunUntil executes events with timestamps <= t, then sets the clock to
// t. It returns the number of events executed by this call.
func (s *Sim) RunUntil(t time.Duration) int {
	if t < s.now {
		panic(fmt.Sprintf("simnet: RunUntil into the past: t=%v now=%v", t, s.now))
	}
	n := s.run(t)
	if !s.stopped && s.now < t {
		s.now = t
	}
	return n
}

// RunFor executes events for the next d of virtual time.
func (s *Sim) RunFor(d time.Duration) int { return s.RunUntil(s.now + d) }

func (s *Sim) run(until time.Duration) int {
	s.stopped = false
	n := 0
	for len(s.events) > 0 && !s.stopped {
		next := s.events[0]
		if until >= 0 && next.at > until {
			break
		}
		s.events.popHead()
		if next.fn == nil { // cancelled
			s.cancelled--
			s.recycle(next)
			continue
		}
		s.now = next.at
		fn, arg := next.fn, next.arg
		// Recycle before running: fn may schedule new events, and reusing
		// this one immediately keeps the free list minimal. Stale Timer
		// handles are protected by the generation check.
		s.recycle(next)
		fn(arg)
		n++
		s.processed++
	}
	return n
}

// Pending returns the number of live (not cancelled) scheduled events.
func (s *Sim) Pending() int {
	return len(s.events) - s.cancelled
}

// compact removes cancelled entries from the event heap and restores
// the heap invariant. Timer handles to removed events stay valid: a
// compacted-away event is recycled, so Stop and Active treat it as
// fired.
func (s *Sim) compact() {
	live := s.events[:0]
	for _, ev := range s.events {
		if ev.fn != nil {
			live = append(live, ev)
		} else {
			s.recycle(ev)
		}
	}
	// Release the tail so moved entries are not referenced twice.
	for i := len(live); i < len(s.events); i++ {
		s.events[i] = nil
	}
	s.events = live
	s.events.init()
	s.cancelled = 0
}

// RNG returns the deterministic random stream with the given name,
// creating it on first use. Streams with distinct names are independent;
// the same (seed, name) pair always yields the same sequence.
func (s *Sim) RNG(name string) *rand.Rand {
	if r, ok := s.rngs[name]; ok {
		return r
	}
	r := rand.New(rand.NewSource(streamSeed(s.seed, name)))
	s.rngs[name] = r
	return r
}

// streamSeed derives a child seed from (seed, name) using an FNV-1a mix.
// It must be stable forever: experiment calibration depends on it.
func streamSeed(seed int64, name string) int64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < 8; i++ {
		h ^= uint64(seed>>(8*i)) & 0xff
		h *= prime64
	}
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime64
	}
	// Avoid the degenerate all-zero seed.
	if h == 0 {
		h = offset64
	}
	return int64(h)
}

// event is a single heap entry.
type event struct {
	at  time.Duration
	seq uint64 // FIFO tiebreak for identical timestamps + Timer generation
	fn  func(any)
	arg any
}

// eventHeap is a hand-rolled binary min-heap ordered by (at, seq). The
// container/heap indirection was measurable in profiles of sweep-scale
// runs, so the sift operations are implemented directly.
type eventHeap []*event

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h *eventHeap) push(ev *event) {
	*h = append(*h, ev)
	h.up(len(*h) - 1)
}

// popHead removes the minimum element (the caller has already read it).
func (h *eventHeap) popHead() {
	old := *h
	last := len(old) - 1
	old[0] = old[last]
	old[last] = nil
	*h = old[:last]
	if last > 1 {
		h.down(0)
	}
}

func (h eventHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (h eventHeap) down(i int) {
	n := len(h)
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		least := left
		if right := left + 1; right < n && h.less(right, left) {
			least = right
		}
		if !h.less(least, i) {
			break
		}
		h[i], h[least] = h[least], h[i]
		i = least
	}
}

func (h eventHeap) init() {
	for i := len(h)/2 - 1; i >= 0; i-- {
		h.down(i)
	}
}
