// Package simnet provides the discrete-event simulation kernel that every
// other subsystem in this repository runs on.
//
// A Sim owns a virtual clock and a hierarchical timing wheel (see
// wheel.go). Events execute in timestamp order (ties broken by
// scheduling order), so a simulation with a fixed seed is
// bit-reproducible across runs and platforms. There are no wall-clock
// sleeps anywhere: simulating 180 days of the paper's crowd-sourced
// measurement campaign takes seconds of real time.
//
// Schedule, cancel and fire are all amortised O(1): scheduling files the
// event into a wheel slot, cancelling marks it in place, and firing
// drains one slot per tick into a due bucket that whole same-tick bursts
// dispatch from. The kernel is also allocation-free in steady state:
// fired and cancelled events return to a free list and are reused by
// later Schedule calls, and the arg-passing variants (ScheduleArg,
// AfterArg, DeferArg) let hot callers avoid per-event closure captures
// entirely. Timer is a small value type; handing one around never
// allocates.
//
// Randomness is handled through named streams (see Sim.RNG) so that
// adding a new consumer of randomness does not perturb the draws seen by
// existing consumers — a property the calibrated experiments rely on.
package simnet

import (
	"fmt"
	"math/rand"
	"time"
)

// Sim is a discrete-event simulator with a virtual clock.
//
// The zero value is not usable; construct with New.
type Sim struct {
	now time.Duration
	// wheel holds pending events beyond the current tick; due is the
	// (at, seq)-sorted batch for the tick being dispatched, consumed
	// from dueHead.
	wheel   wheel
	due     []*event //multinet:owns — events homed in the dispatch batch
	dueHead int
	free    []*event //multinet:owns — recycled events awaiting reuse
	seq     uint64
	seed    int64
	rngs    map[string]*rand.Rand
	stopped bool
	// processed counts events executed since construction; exposed for
	// tests and for sanity checks that experiments actually ran.
	processed uint64
	// live counts pending non-cancelled events (Pending is O(1));
	// cancelled counts due-bucket entries whose timer was stopped after
	// their slot drained — they are reclaimed when their position pops,
	// so they never outlive the current tick's batch. (Wheel-resident
	// events are unlinked and recycled by Stop directly.)
	live      int
	cancelled int
}

// New returns a simulator whose random streams derive from seed.
func New(seed int64) *Sim {
	return &Sim{
		seed: seed,
		rngs: make(map[string]*rand.Rand),
	}
}

// Now returns the current virtual time. Time starts at zero.
func (s *Sim) Now() time.Duration { return s.now }

// Seed returns the seed the simulator was constructed with.
func (s *Sim) Seed() int64 { return s.seed }

// Processed returns the number of events executed so far.
func (s *Sim) Processed() uint64 { return s.processed }

// Timer is a handle to a scheduled event. The zero Timer is inert:
// Stop and Active on it are no-ops. Cancelling a fired or already
// cancelled timer is a no-op. Timers are values; copying one copies the
// handle, and both copies control the same scheduled event.
//
// Fired and cancelled events are recycled for later Schedule calls, so
// a Timer additionally remembers the event's generation (its scheduling
// sequence number): a stale handle whose event has been reused is
// recognised and treated as fired.
type Timer struct {
	sim *Sim
	ev  *event
	seq uint64
}

// Stop cancels the timer. It reports whether the event had not yet
// fired. Cancellation is O(1): a wheel-resident event is unlinked from
// its slot and recycled on the spot; an event already drained into the
// due bucket is marked and reclaimed when its position pops.
func (t Timer) Stop() bool {
	ev := t.ev
	if ev == nil || ev.seq != t.seq || ev.fn == nil {
		return false
	}
	ev.fn = nil
	ev.arg = nil
	if s := t.sim; s != nil {
		s.live--
		if ev.prevp != nil {
			s.unlink(ev)
			s.recycle(ev)
		} else {
			s.cancelled++
		}
	}
	return true
}

// Active reports whether the timer is still pending.
func (t Timer) Active() bool {
	return t.ev != nil && t.ev.seq == t.seq && t.ev.fn != nil
}

// When returns the virtual time a pending timer fires at, or 0 once it
// has fired or been cancelled (its event may already be reused).
func (t Timer) When() time.Duration {
	if !t.Active() {
		return 0
	}
	return t.ev.at
}

// thunk adapts the closure-based Schedule API onto the arg-based event
// representation without an extra allocation (func values are
// pointer-shaped, so boxing one into the arg interface is free).
func thunk(a any) { a.(func())() }

// Schedule runs fn at absolute virtual time at. Scheduling in the past
// panics: it always indicates a logic error in a protocol implementation.
func (s *Sim) Schedule(at time.Duration, fn func()) Timer {
	if fn == nil {
		panic("simnet: Schedule with nil fn")
	}
	return s.ScheduleArg(at, thunk, fn)
}

// ScheduleArg runs fn(arg) at absolute virtual time at. It is the
// allocation-free variant of Schedule: with a non-capturing fn and a
// pointer-shaped arg (the idiomatic pattern is a package-level func
// asserting arg back to the caller's receiver type), scheduling reuses
// a recycled event and allocates nothing.
//
//multinet:hotpath
func (s *Sim) ScheduleArg(at time.Duration, fn func(any), arg any) Timer {
	if fn == nil {
		panic("simnet: ScheduleArg with nil fn")
	}
	if at < s.now {
		//lint:allow hotpath cold panic path, never taken in a correct run
		panic(fmt.Sprintf("simnet: scheduling into the past: at=%v now=%v", at, s.now))
	}
	ev := s.newEvent(at, fn, arg)
	s.place(ev)
	s.live++
	return Timer{sim: s, ev: ev, seq: ev.seq}
}

// After runs fn after delay d (relative to the current virtual time).
func (s *Sim) After(d time.Duration, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	return s.Schedule(s.now+d, fn)
}

// AfterArg runs fn(arg) after delay d; see ScheduleArg.
func (s *Sim) AfterArg(d time.Duration, fn func(any), arg any) Timer {
	if d < 0 {
		d = 0
	}
	return s.ScheduleArg(s.now+d, fn, arg)
}

// Defer runs fn at the current time, after all events already scheduled
// for the current instant. It is the simulation analogue of "post to the
// run loop" and is useful to break call cycles between protocol layers.
func (s *Sim) Defer(fn func()) Timer { return s.Schedule(s.now, fn) }

// DeferArg runs fn(arg) at the current time, after all events already
// scheduled for the current instant; see ScheduleArg.
func (s *Sim) DeferArg(fn func(any), arg any) Timer { return s.ScheduleArg(s.now, fn, arg) }

// newEvent takes an event from the free list (or allocates one) and
// stamps it with a fresh generation number.
//
//multinet:hotpath
func (s *Sim) newEvent(at time.Duration, fn func(any), arg any) *event {
	var ev *event
	if n := len(s.free); n > 0 {
		ev = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
	} else {
		ev = new(event)
	}
	ev.at = at
	ev.seq = s.seq
	ev.fn = fn
	ev.arg = arg
	s.seq++
	return ev
}

// recycle clears an event and returns it to the free list. Its seq is
// left in place until reuse so stale Timer handles keep failing the
// generation check.
//
//multinet:hotpath
func (s *Sim) recycle(ev *event) {
	ev.fn = nil
	ev.arg = nil
	ev.next = nil
	ev.prevp = nil
	s.free = append(s.free, ev) //lint:allow hotpath free-list capacity is amortised; steady state never grows
}

// Stop halts Run/RunUntil after the event currently executing returns.
func (s *Sim) Stop() { s.stopped = true }

// Run executes events until the wheel is empty or Stop is called. It
// returns the number of events executed by this call.
func (s *Sim) Run() int {
	return s.run(-1)
}

// RunUntil executes events with timestamps <= t, then sets the clock to
// t. It returns the number of events executed by this call.
func (s *Sim) RunUntil(t time.Duration) int {
	if t < s.now {
		panic(fmt.Sprintf("simnet: RunUntil into the past: t=%v now=%v", t, s.now))
	}
	n := s.run(t)
	if !s.stopped && s.now < t {
		s.now = t
	}
	return n
}

// RunFor executes events for the next d of virtual time.
func (s *Sim) RunFor(d time.Duration) int { return s.RunUntil(s.now + d) }

//multinet:hotpath
func (s *Sim) run(until time.Duration) int {
	s.stopped = false
	untilTick := noTick
	if until >= 0 {
		untilTick = int64(until) >> tickShift
	}
	n := 0
	for !s.stopped {
		if s.dueHead == len(s.due) {
			s.due = s.due[:0]
			s.dueHead = 0
			if !s.fillBucket(untilTick) {
				break
			}
		}
		ev := s.due[s.dueHead]
		if until >= 0 && ev.at > until {
			break
		}
		s.dueHead++
		if ev.fn == nil { // cancelled after the slot drained
			s.reclaim(ev)
			continue
		}
		s.now = ev.at
		fn, arg := ev.fn, ev.arg
		// Recycle before running: fn may schedule new events, and reusing
		// this one immediately keeps the free list minimal. Stale Timer
		// handles are protected by the generation check.
		s.live--
		s.recycle(ev)
		fn(arg)
		n++
		s.processed++
	}
	return n
}

// Pending returns the number of live (not cancelled) scheduled events.
func (s *Sim) Pending() int {
	return s.live
}

// held returns the number of event entries the kernel currently holds,
// live and cancelled-but-unreclaimed alike; tests use it to pin the
// cancellation-reclaim bound.
func (s *Sim) held() int {
	return s.live + s.cancelled
}

// RNG returns the deterministic random stream with the given name,
// creating it on first use. Streams with distinct names are independent;
// the same (seed, name) pair always yields the same sequence.
func (s *Sim) RNG(name string) *rand.Rand {
	if r, ok := s.rngs[name]; ok {
		return r
	}
	r := rand.New(rand.NewSource(streamSeed(s.seed, name)))
	s.rngs[name] = r
	return r
}

// streamSeed derives a child seed from (seed, name) using an FNV-1a mix.
// It must be stable forever: experiment calibration depends on it.
func streamSeed(seed int64, name string) int64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < 8; i++ {
		h ^= uint64(seed>>(8*i)) & 0xff
		h *= prime64
	}
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime64
	}
	// Avoid the degenerate all-zero seed.
	if h == 0 {
		h = offset64
	}
	return int64(h)
}

// event is a single scheduled entry. Pending events live either in a
// wheel slot's intrusive doubly-linked list (next, plus prevp holding
// the address of the pointer that points here, so unlinking is O(1)
// without a full prev node) or in the due bucket (prevp nil). lvl/idx
// remember the slot for occupancy bookkeeping on unlink.
type event struct {
	at    time.Duration
	seq   uint64 // FIFO tiebreak for identical timestamps + Timer generation
	fn    func(any)
	arg   any
	next  *event //multinet:owns — intrusive slot-list link
	prevp **event
	lvl   uint8
	idx   uint8
}
