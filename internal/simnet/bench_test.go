package simnet

import (
	"testing"
	"time"
)

// The scheduler micro-benchmarks below hammer the three access patterns
// every experiment sweep is made of, without any protocol machinery on
// top, so a kernel regression is visible directly in ns/op:
//
//   - fire churn: the ACK-clocked steady state — every fired event
//     schedules its successor a little later (one pending event per
//     "flow", many flows in flight).
//   - cancel churn: per-packet RTO timers — schedule far out, cancel
//     almost immediately, forever.
//   - deep pending: scheduling while tens of thousands of unrelated
//     timers are pending (sweep-scale fan-in), where per-op cost of a
//     comparison-based queue degrades as O(log n).
//
// cmd/bench mirrors these three as sched/* entries of the benchmark
// trajectory, so the committed baseline gates them too.

func nopEvent(any) {}

// BenchmarkFireChurn measures the schedule+fire cycle with 64 event
// chains in flight: each fired event schedules the next occurrence of
// its chain. b.N counts fired events.
func BenchmarkFireChurn(b *testing.B) {
	s := New(1)
	const chains = 64
	fired := 0
	var step func(any)
	step = func(any) {
		fired++
		if fired < b.N {
			s.AfterArg(731*time.Microsecond, step, nil)
		}
	}
	for i := 0; i < chains && i < b.N; i++ {
		s.AfterArg(time.Duration(i+1)*time.Microsecond, step, nil)
	}
	b.ResetTimer()
	s.Run()
	if fired < b.N {
		b.Fatalf("fired %d events, want %d", fired, b.N)
	}
}

// BenchmarkCancelChurn measures the schedule+cancel cycle of a
// retransmission-timer workload: every op arms a timer ~200 ms out and
// stops it again, with a small set of live timers pending throughout.
func BenchmarkCancelChurn(b *testing.B) {
	s := New(1)
	for i := 0; i < 16; i++ {
		s.AfterArg(time.Duration(i+1)*time.Hour, nopEvent, nil)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.AfterArg(200*time.Millisecond, nopEvent, nil).Stop()
	}
}

// BenchmarkDeepPending measures schedule/fire cost with a deep pending
// set: 64k long-lived timers are pending while the measured chain
// schedules and fires through them.
func BenchmarkDeepPending(b *testing.B) {
	s := New(1)
	// The deep set sits past any reachable horizon: the chain fires one
	// event per 5 µs, so even go-test's 1e9 iteration cap stays under
	// 84 min of virtual time, clear of the 2 h floor.
	const deep = 64 << 10
	for i := 0; i < deep; i++ {
		s.AfterArg(2*time.Hour+time.Duration(i)*time.Millisecond, nopEvent, nil)
	}
	fired := 0
	var step func(any)
	step = func(any) {
		fired++
		if fired < b.N {
			s.AfterArg(5*time.Microsecond, step, nil)
		}
	}
	s.AfterArg(time.Microsecond, step, nil)
	b.ResetTimer()
	s.RunUntil(time.Microsecond + time.Duration(b.N)*5*time.Microsecond)
	if fired < b.N {
		b.Fatalf("fired %d events, want %d", fired, b.N)
	}
}
