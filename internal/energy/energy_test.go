package energy

import (
	"math"
	"strings"
	"testing"
	"time"

	"multinet/internal/simnet"
)

func TestStateProgression(t *testing.T) {
	sim := simnet.New(1)
	m := NewMeter(sim, LTE)
	if m.State() != Idle {
		t.Fatal("meter should start idle")
	}
	m.OnPacket()
	if m.State() != Active {
		t.Fatal("packet should promote to active")
	}
	// After ActiveHold the radio demotes to tail; after TailDuration to
	// idle.
	sim.RunUntil(200 * time.Millisecond)
	if m.State() != Tail {
		t.Fatalf("state at 200ms = %v, want tail", m.State())
	}
	sim.RunUntil(16 * time.Second)
	if m.State() != Idle {
		t.Fatalf("state at 16s = %v, want idle", m.State())
	}
}

func TestActivityExtendsActive(t *testing.T) {
	sim := simnet.New(1)
	m := NewMeter(sim, LTE)
	// A packet every 50 ms keeps the radio active (hold is 100 ms).
	for i := 0; i <= 20; i++ {
		sim.Schedule(time.Duration(i)*50*time.Millisecond, m.OnPacket)
	}
	sim.RunUntil(time.Second)
	if m.State() != Active {
		t.Fatalf("state = %v, want active under continuous traffic", m.State())
	}
}

func TestLTETailEnergyDominatesShortTransfer(t *testing.T) {
	// A short burst: tail energy (15 s x 1 W) dwarfs active energy —
	// the paper's Section 3.6 core observation.
	sim := simnet.New(1)
	m := NewMeter(sim, LTE)
	for i := 0; i < 10; i++ {
		sim.Schedule(time.Duration(i)*10*time.Millisecond, m.OnPacket)
	}
	sim.RunUntil(20 * time.Second)
	j := m.RadioJoules()
	// Active: ~0.19 s x 2.2 W ~ 0.42 J. Tail: 15 s x 1 W = 15 J.
	if j < 14 || j > 17 {
		t.Fatalf("radio energy %.2f J, want ~15.4 (tail-dominated)", j)
	}
}

func TestWiFiTailNegligible(t *testing.T) {
	sim := simnet.New(1)
	m := NewMeter(sim, WiFi)
	m.OnPacket()
	sim.RunUntil(20 * time.Second)
	j := m.RadioJoules()
	// Active 0.1 s x 0.8 + tail 0.2 s x 0.2 = 0.12 J.
	if j > 0.5 {
		t.Fatalf("WiFi radio energy %.3f J, want < 0.5 (no meaningful tail)", j)
	}
}

func TestPowerAtMatchesPaperLevels(t *testing.T) {
	sim := simnet.New(1)
	m := NewMeter(sim, LTE)
	m.OnPacket()
	sim.RunUntil(50 * time.Millisecond)
	if p := m.PowerAt(20 * time.Millisecond); math.Abs(p-3.2) > 1e-9 {
		t.Fatalf("active LTE power = %.2f W, want 3.2 (paper Fig. 16a)", p)
	}
	sim.RunUntil(5 * time.Second)
	if p := m.PowerAt(2 * time.Second); math.Abs(p-2.0) > 1e-9 {
		t.Fatalf("tail LTE power = %.2f W, want 2.0", p)
	}
	sim.RunUntil(30 * time.Second)
	if p := m.PowerAt(29 * time.Second); math.Abs(p-1.0) > 1e-9 {
		t.Fatalf("idle power = %.2f W, want 1.0 (base)", p)
	}
}

func TestEnergyIntegralManual(t *testing.T) {
	// One packet at t=0: active for 0.1 s (2.2 W), tail 15 s (1 W),
	// then idle. At t=20 s: 0.22 + 15 = 15.22 J radio energy.
	sim := simnet.New(1)
	m := NewMeter(sim, LTE)
	m.OnPacket()
	sim.RunUntil(20 * time.Second)
	want := LTE.ActiveWatts*LTE.ActiveHold.Seconds() + LTE.TailWatts*LTE.TailDuration.Seconds()
	if got := m.RadioJoules(); math.Abs(got-want) > 0.01 {
		t.Fatalf("radio energy %.3f J, want %.3f", got, want)
	}
	wantTotal := want + BaseWatts*20
	if got := m.TotalJoules(); math.Abs(got-wantTotal) > 0.01 {
		t.Fatalf("total energy %.3f J, want %.3f", got, wantTotal)
	}
}

func TestTraceStringShape(t *testing.T) {
	sim := simnet.New(1)
	m := NewMeter(sim, LTE)
	m.OnPacket()
	sim.RunUntil(30 * time.Second)
	// 300 columns over 30 s: the first bucket midpoint (50 ms) falls in
	// the 100 ms active period.
	s := m.TraceString(30*time.Second, 300)
	if !strings.HasPrefix(s, "#") {
		t.Fatalf("trace should start active, got %q...", s[:10])
	}
	if !strings.Contains(s, "~") {
		t.Fatal("trace should contain a tail")
	}
	if !strings.HasSuffix(s, ".") {
		t.Fatal("trace should end idle")
	}
}

func TestMultipleBurstsSeparateTails(t *testing.T) {
	sim := simnet.New(1)
	m := NewMeter(sim, WiFi)
	m.OnPacket()
	sim.RunUntil(5 * time.Second) // back to idle
	if m.State() != Idle {
		t.Fatal("should be idle between bursts")
	}
	sim.Schedule(5*time.Second, m.OnPacket)
	sim.RunUntil(5050 * time.Millisecond) // before the 100 ms hold expires
	if m.State() != Active {
		t.Fatal("second burst should re-activate")
	}
	// Trace: idle->active->tail->idle->active...
	tr := m.Trace()
	if len(tr) < 5 {
		t.Fatalf("trace has %d steps, want >= 5", len(tr))
	}
}

func TestBackupModeEnergyParadox(t *testing.T) {
	// The paper's Section 3.6 punchline, in miniature: an LTE radio
	// that carries ONLY a SYN at t=0 and a FIN at t=flowEnd still burns
	// nearly as much energy as one actively transferring, for flows
	// shorter than the 15 s tail.
	flowDur := 10 * time.Second
	horizon := flowDur + 16*time.Second

	// Backup: SYN + FIN only.
	simA := simnet.New(1)
	backup := NewMeter(simA, LTE)
	backup.OnPacket()
	simA.Schedule(flowDur, backup.OnPacket)
	simA.RunUntil(horizon)

	// Active: a packet every 20 ms for the whole flow.
	simB := simnet.New(1)
	active := NewMeter(simB, LTE)
	for tm := time.Duration(0); tm <= flowDur; tm += 20 * time.Millisecond {
		tmCopy := tm
		simB.Schedule(tmCopy, active.OnPacket)
	}
	simB.RunUntil(horizon)

	eBackup, eActive := backup.RadioJoules(), active.RadioJoules()
	if eBackup >= eActive {
		t.Fatalf("backup %.1f J >= active %.1f J", eBackup, eActive)
	}
	saving := 1 - eBackup/eActive
	// For a 10 s flow the saving must be small (< 40%), because the
	// SYN tail bridges into the FIN tail.
	if saving > 0.4 {
		t.Fatalf("backup saving %.0f%%, want < 40%% for sub-15s flows", saving*100)
	}
}
