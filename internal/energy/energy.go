// Package energy models smartphone radio power draw, substituting for
// the paper's Monsoon power monitor (Section 3.6). Each radio is a
// three-state machine — idle, active, tail — whose parameters come
// from the paper's own Fig. 16 traces: with a 1 W device baseline, the
// LTE radio draws about 3.2 W while transferring and holds a 2 W "tail"
// for 15 seconds after the last packet; WiFi draws less and has a
// negligible tail. The tail is what makes MPTCP Backup mode save so
// little energy for short flows: even lone SYN/FIN packets pay it.
package energy

import (
	"time"

	"multinet/internal/netem"
	"multinet/internal/simnet"
)

// BaseWatts is the non-radio device draw (screen, CPU) visible in all
// of the paper's Fig. 16 panels.
const BaseWatts = 1.0

// Model describes one radio's power states. Watt values are the draw
// ABOVE the device baseline.
type Model struct {
	// Name labels traces ("lte", "wifi").
	Name string
	// ActiveWatts is the extra draw while the radio is in the
	// high-power (RRC_CONNECTED / awake) state moving packets.
	ActiveWatts float64
	// TailWatts is the extra draw during the post-activity tail
	// (paper refs [3,7]: "Tail Energy").
	TailWatts float64
	// ActiveHold is how long the radio stays in the active state after
	// the last packet before demoting to the tail.
	ActiveHold time.Duration
	// TailDuration is the tail length; fast dormancy would shorten it.
	TailDuration time.Duration
}

// LTE reproduces the paper's Fig. 16a/c: ~3.2 W total active, 2 W
// total tail for 15 s.
var LTE = Model{
	Name:         "lte",
	ActiveWatts:  2.2,
	TailWatts:    1.0,
	ActiveHold:   100 * time.Millisecond,
	TailDuration: 15 * time.Second,
}

// WiFi reproduces Fig. 16b/d: much lower active draw and a negligible
// tail.
var WiFi = Model{
	Name:         "wifi",
	ActiveWatts:  0.8,
	TailWatts:    0.2,
	ActiveHold:   100 * time.Millisecond,
	TailDuration: 200 * time.Millisecond,
}

// State is the radio power state.
type State int

// Radio states.
const (
	Idle State = iota
	Active
	Tail
)

// String names the state.
func (s State) String() string {
	switch s {
	case Active:
		return "active"
	case Tail:
		return "tail"
	}
	return "idle"
}

// Sample is one step of a power trace: the radio drew Watts (above
// base) from T until the next sample.
type Sample struct {
	T     time.Duration
	State State
	Watts float64
}

// Meter integrates one radio's energy and records its power trace.
type Meter struct {
	sim   *simnet.Sim
	model Model

	state      State
	stateStart time.Duration
	joules     float64 // radio energy above base, integrated to stateStart
	trace      []Sample
	timer      simnet.Timer

	packets int
}

// NewMeter creates a meter; attach it to an interface with Attach.
func NewMeter(sim *simnet.Sim, model Model) *Meter {
	m := &Meter{sim: sim, model: model}
	m.trace = append(m.trace, Sample{T: 0, State: Idle, Watts: 0})
	return m
}

// Attach makes every packet sent or received on the interface count as
// radio activity.
func (m *Meter) Attach(iface *netem.Iface) {
	iface.AddSendTap(func(p *netem.Packet) { m.OnPacket() })
	iface.AddRecvTap(func(p *netem.Packet) { m.OnPacket() })
}

func meterDemoteToTail(a any) { a.(*Meter).demoteToTail() }
func meterDemoteToIdle(a any) { a.(*Meter).demoteToIdle() }

// OnPacket registers radio activity at the current instant.
func (m *Meter) OnPacket() {
	m.packets++
	m.transition(Active)
	m.timer.Stop()
	m.timer = m.sim.AfterArg(m.model.ActiveHold, meterDemoteToTail, m)
}

func (m *Meter) demoteToTail() {
	if m.state != Active {
		return
	}
	m.transition(Tail)
	m.timer = m.sim.AfterArg(m.model.TailDuration, meterDemoteToIdle, m)
}

func (m *Meter) demoteToIdle() {
	if m.state != Tail {
		return
	}
	m.transition(Idle)
}

func (m *Meter) watts(s State) float64 {
	switch s {
	case Active:
		return m.model.ActiveWatts
	case Tail:
		return m.model.TailWatts
	}
	return 0
}

func (m *Meter) transition(to State) {
	now := m.sim.Now()
	if to == m.state {
		return
	}
	m.joules += m.watts(m.state) * (now - m.stateStart).Seconds()
	m.state = to
	m.stateStart = now
	m.trace = append(m.trace, Sample{T: now, State: to, Watts: m.watts(to)})
}

// State returns the current radio state.
func (m *Meter) State() State { return m.state }

// Packets returns the number of activity events observed.
func (m *Meter) Packets() int { return m.packets }

// RadioJoules returns the radio energy (above base) integrated up to
// the current simulation time.
func (m *Meter) RadioJoules() float64 {
	return m.joules + m.watts(m.state)*(m.sim.Now()-m.stateStart).Seconds()
}

// TotalJoules returns radio energy plus device baseline over [0, now].
func (m *Meter) TotalJoules() float64 {
	return m.RadioJoules() + BaseWatts*m.sim.Now().Seconds()
}

// Trace returns the power-step trace (radio watts above base).
func (m *Meter) Trace() []Sample { return m.trace }

// PowerAt returns the total draw (base + radio) at time t.
func (m *Meter) PowerAt(t time.Duration) float64 {
	w := 0.0
	for _, s := range m.trace {
		if s.T > t {
			break
		}
		w = s.Watts
	}
	return BaseWatts + w
}

// TraceString renders the power trace as an ASCII strip over [0,until]:
// '#' active, '~' tail, '.' idle — the textual analogue of Fig. 16.
func (m *Meter) TraceString(until time.Duration, cols int) string {
	if cols <= 0 || until <= 0 {
		return ""
	}
	buf := make([]byte, cols)
	for i := range buf {
		t := time.Duration(float64(until) * (float64(i) + 0.5) / float64(cols))
		switch p := m.PowerAt(t); {
		case p >= BaseWatts+m.model.ActiveWatts-1e-9:
			buf[i] = '#'
		case p > BaseWatts+1e-9:
			buf[i] = '~'
		default:
			buf[i] = '.'
		}
	}
	return string(buf)
}
