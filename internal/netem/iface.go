package netem

import (
	"fmt"
	"math/rand"
	"time"

	"multinet/internal/simnet"
)

// Tap observes packets as they are sent into a link (before queueing and
// drops). The capture package installs taps to build tcpdump-like traces.
type Tap func(p *Packet)

// Iface is one duplex network attachment of the multi-homed client: an
// uplink (client→server) and a downlink (server→client) pair of links,
// e.g. the WiFi path or the LTE path of paper Fig. 5.
type Iface struct {
	Name string

	sim      *simnet.Sim
	up, down Link

	clientRecv func(*Packet)
	serverRecv func(*Packet)
	sendTaps   []Tap
	recvTaps   []Tap

	adminDown bool
	blackhole bool
	downSubs  []func(down bool)

	// Radio wake-up (RRC promotion) state: the first uplink packet
	// after promIdle of silence waits promDelay before entering the
	// link, modelling the LTE IDLE→CONNECTED transition.
	promDelay    time.Duration
	promIdle     time.Duration
	lastActivity time.Duration
	wakeUntil    time.Duration
}

// NewIface wires a duplex interface from two one-way links.
func NewIface(sim *simnet.Sim, name string, uplink, downlink Link) *Iface {
	i := &Iface{Name: name, sim: sim, up: uplink, down: downlink, lastActivity: -1}
	uplink.SetReceiver(func(p *Packet) {
		i.lastActivity = sim.Now()
		for _, t := range i.recvTaps {
			t(p)
		}
		if i.serverRecv != nil {
			i.serverRecv(p)
		}
	})
	downlink.SetReceiver(func(p *Packet) {
		i.lastActivity = sim.Now()
		for _, t := range i.recvTaps {
			t(p)
		}
		if i.clientRecv != nil {
			i.clientRecv(p)
		}
	})
	return i
}

// SetPromotion configures radio wake-up latency: the first uplink
// packet after idleAfter of radio silence is held for delay before it
// enters the link (and packets sent during the wake-up queue behind
// it). This models cellular RRC promotion — one reason the paper's
// traces show slow connection setup on LTE (e.g. its Fig. 9
// discussion). Pass delay 0 to disable.
func (i *Iface) SetPromotion(delay, idleAfter time.Duration) {
	i.promDelay = delay
	i.promIdle = idleAfter
}

// OnClientRecv installs the client-side delivery callback (packets
// travelling Down arrive here).
func (i *Iface) OnClientRecv(fn func(*Packet)) { i.clientRecv = fn }

// OnServerRecv installs the server-side delivery callback (packets
// travelling Up arrive here).
func (i *Iface) OnServerRecv(fn func(*Packet)) { i.serverRecv = fn }

// AddSendTap registers a tap on packets entering either link.
func (i *Iface) AddSendTap(t Tap) { i.sendTaps = append(i.sendTaps, t) }

// AddRecvTap registers a tap on packets delivered from either link.
func (i *Iface) AddRecvTap(t Tap) { i.recvTaps = append(i.recvTaps, t) }

// HasTaps reports whether any send or receive tap is installed. Taps
// observe individual packets, so fluid-advance mode (which elides them)
// refuses to engage on a tapped interface.
func (i *Iface) HasTaps() bool { return len(i.sendTaps)+len(i.recvTaps) > 0 }

// PromDelay returns the configured radio-promotion delay (0 = disabled).
func (i *Iface) PromDelay() time.Duration { return i.promDelay }

// PromIdle returns the idle threshold that triggers radio promotion.
func (i *Iface) PromIdle() time.Duration { return i.promIdle }

// FluidTouch advances the radio-activity clock to t if later: virtually
// carried packets must keep the radio as warm as real ones would, so
// promotion decisions after a fluid epoch match packet mode.
func (i *Iface) FluidTouch(t time.Duration) {
	if t > i.lastActivity {
		i.lastActivity = t
	}
}

// newPacket builds a pooled packet for this interface.
func (i *Iface) newPacket(dir Direction, size int, payload any) *Packet {
	p := NewPacket()
	p.Iface = i.Name
	p.Dir = dir
	p.Size = size
	p.Payload = payload
	return p
}

// sendPromoted runs when a packet's radio-promotion wait elapses.
func sendPromoted(a any) {
	p := a.(*Packet)
	l := p.promo
	p.promo = nil
	l.Send(p)
}

// SendUp transmits a packet client→server on this interface, paying
// radio promotion latency if the radio was idle.
func (i *Iface) SendUp(size int, payload any) {
	p := i.newPacket(Up, size, payload)
	for _, t := range i.sendTaps {
		t(p)
	}
	now := i.sim.Now()
	if i.promDelay > 0 {
		switch {
		case now < i.wakeUntil:
			// Radio still waking: queue behind the promotion (FIFO is
			// preserved by the event heap's scheduling order).
			i.lastActivity = i.wakeUntil
			p.promo = i.up
			i.sim.ScheduleArg(i.wakeUntil, sendPromoted, p)
			return
		case i.lastActivity < 0 || now-i.lastActivity > i.promIdle:
			i.wakeUntil = now + i.promDelay
			i.lastActivity = i.wakeUntil
			p.promo = i.up
			i.sim.ScheduleArg(i.wakeUntil, sendPromoted, p)
			return
		}
	}
	i.lastActivity = now
	i.up.Send(p)
}

// SendDown transmits a packet server→client on this interface. The
// server side never pays promotion: our flows are client-initiated, so
// the radio is already connected when responses arrive.
func (i *Iface) SendDown(size int, payload any) {
	p := i.newPacket(Down, size, payload)
	for _, t := range i.sendTaps {
		t(p)
	}
	i.down.Send(p)
}

// SetDown administratively changes the interface state in both
// directions and, unlike Blackhole, notifies subscribers — this is the
// `iproute multipath off` semantics of paper Section 3.6: protocol
// stacks learn about the change immediately.
func (i *Iface) SetDown(down bool) {
	if i.adminDown == down {
		return
	}
	i.adminDown = down
	i.up.SetDown(down)
	i.down.SetDown(down)
	for _, fn := range i.downSubs {
		fn(down)
	}
}

// SetBlackhole silently kills (or restores) the path in both directions
// with no notification — the "physically unplug the phone" semantics of
// paper Fig. 15g/h: traffic vanishes but no stack is told.
func (i *Iface) SetBlackhole(bh bool) {
	if i.blackhole == bh {
		return
	}
	i.blackhole = bh
	i.up.SetBlackhole(bh)
	i.down.SetBlackhole(bh)
}

// SetLossProb changes the random-loss probability in both directions —
// the fault layer's loss-burst episode. rng seeds links built without a
// loss stream; pass nil to keep existing streams.
func (i *Iface) SetLossProb(p float64, rng *rand.Rand) {
	i.up.SetLossProb(p, rng)
	i.down.SetLossProb(p, rng)
}

// AdminDown reports whether the interface is administratively down.
func (i *Iface) AdminDown() bool { return i.adminDown }

// Blackholed reports whether the interface is silently discarding.
func (i *Iface) Blackholed() bool { return i.blackhole }

// SubscribeDown registers a callback invoked on administrative state
// changes (true = went down). Blackholes do NOT trigger it.
func (i *Iface) SubscribeDown(fn func(down bool)) { i.downSubs = append(i.downSubs, fn) }

// UpLink returns the client→server link.
func (i *Iface) UpLink() Link { return i.up }

// DownLink returns the server→client link.
func (i *Iface) DownLink() Link { return i.down }

// String identifies the interface.
func (i *Iface) String() string { return fmt.Sprintf("iface(%s)", i.Name) }

// Host is a multi-homed client endpoint: a set of named interfaces, all
// terminating at the same single-homed server (as in the paper's setup:
// a laptop tethered to a WiFi phone and an LTE phone, talking to a
// server at MIT).
type Host struct {
	Name   string
	ifaces map[string]*Iface
	order  []string
}

// NewHost creates an empty host.
func NewHost(name string) *Host {
	return &Host{Name: name, ifaces: make(map[string]*Iface)}
}

// Attach adds an interface; attaching a duplicate name panics.
func (h *Host) Attach(i *Iface) {
	if _, dup := h.ifaces[i.Name]; dup {
		panic("netem: duplicate interface " + i.Name)
	}
	h.ifaces[i.Name] = i
	h.order = append(h.order, i.Name)
}

// Iface returns the named interface or nil.
func (h *Host) Iface(name string) *Iface { return h.ifaces[name] }

// Ifaces returns the interfaces in attachment order.
func (h *Host) Ifaces() []*Iface {
	out := make([]*Iface, 0, len(h.order))
	for _, n := range h.order {
		out = append(out, h.ifaces[n])
	}
	return out
}

// IfaceNames returns the interface names in attachment order.
func (h *Host) IfaceNames() []string { return append([]string(nil), h.order...) }
