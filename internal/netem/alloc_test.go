//go:build !race

// The testing.AllocsPerRun pins in this file measure the production
// allocator behavior; race-detector instrumentation adds bookkeeping
// allocations, so the pins only hold in non-race builds (CI runs both
// a race job and a non-race job, so the pins are still enforced).

package netem

import (
	"testing"
	"time"

	"multinet/internal/simnet"
)

// TestSendDeliverReleaseZeroAlloc pins the pooled packet hot path: once
// the pools and the kernel's event free list are warm, a full
// send→serialise→propagate→deliver→release cycle must not touch the
// heap. A regression here silently reintroduces per-packet garbage on
// every experiment in the registry.
func TestSendDeliverReleaseZeroAlloc(t *testing.T) {
	sim := simnet.New(1)
	up := NewFixedLink(sim, 100, LinkConfig{PropDelay: time.Millisecond})
	down := NewFixedLink(sim, 100, LinkConfig{PropDelay: time.Millisecond})
	iface := NewIface(sim, "wifi", up, down)
	iface.OnServerRecv(func(p *Packet) { ReleasePacket(p) })
	iface.OnClientRecv(func(p *Packet) { ReleasePacket(p) })

	cycle := func() {
		iface.SendUp(MTU, nil)
		iface.SendDown(MTU, nil)
		sim.Run()
	}
	for i := 0; i < 64; i++ {
		cycle() // warm the packet pool and event free list
	}
	if avg := testing.AllocsPerRun(200, cycle); avg != 0 {
		t.Fatalf("send-deliver-release cycle allocates %v per run, want 0", avg)
	}
}

// TestDropPathsReleaseZeroAlloc pins the drop sinks: packets that die
// in the queue (droptail) or on a dead link must also return to the
// pool without allocating.
func TestDropPathsReleaseZeroAlloc(t *testing.T) {
	sim := simnet.New(1)
	up := NewFixedLink(sim, 1, LinkConfig{PropDelay: time.Millisecond, QueueLimit: 1})
	down := NewFixedLink(sim, 1, LinkConfig{PropDelay: time.Millisecond})
	iface := NewIface(sim, "lte", up, down)
	iface.OnServerRecv(func(p *Packet) { ReleasePacket(p) })

	cycle := func() {
		// Second and third packets overflow the one-slot queue.
		iface.SendUp(MTU, nil)
		iface.SendUp(MTU, nil)
		iface.SendUp(MTU, nil)
		sim.Run()
	}
	for i := 0; i < 64; i++ {
		cycle()
	}
	if avg := testing.AllocsPerRun(200, cycle); avg != 0 {
		t.Fatalf("droptail cycle allocates %v per run, want 0", avg)
	}
}
