package netem

import (
	"math/rand"
	"time"

	"multinet/internal/simnet"
)

// LinkConfig holds the parameters shared by both link service models.
type LinkConfig struct {
	// PropDelay is the one-way propagation delay added after a packet
	// finishes transmission.
	PropDelay time.Duration
	// QueueLimit is the droptail queue capacity in packets (the packet
	// in service counts). Zero means DefaultQueueLimit.
	QueueLimit int
	// LossProb is an i.i.d. per-packet drop probability in [0,1).
	LossProb float64
	// RNG drives random loss; required only when LossProb > 0.
	RNG *rand.Rand
}

// DefaultQueueLimit is the droptail capacity used when LinkConfig leaves
// QueueLimit zero. 100 packets ≈ 150 KB, a typical CPE buffer.
const DefaultQueueLimit = 100

func (c *LinkConfig) queueLimit() int {
	if c.QueueLimit <= 0 {
		return DefaultQueueLimit
	}
	return c.QueueLimit
}

// pktRing is a FIFO packet queue that reuses its backing array: pops
// advance a head index instead of re-slicing, so a link that fills and
// drains its queue forever stops allocating once the array has grown to
// the droptail limit.
type pktRing struct {
	buf  []*Packet //multinet:owns — queued packets are owned by the link until delivered or dropped
	head int
}

func (q *pktRing) len() int { return len(q.buf) - q.head }

// peek returns the head packet; the queue must be non-empty.
func (q *pktRing) peek() *Packet { return q.buf[q.head] }

func (q *pktRing) push(p *Packet) {
	if q.head > 0 && len(q.buf) == cap(q.buf) {
		// Reclaim the popped prefix instead of growing.
		n := copy(q.buf, q.buf[q.head:])
		for i := n; i < len(q.buf); i++ {
			q.buf[i] = nil
		}
		q.buf = q.buf[:n]
		q.head = 0
	}
	q.buf = append(q.buf, p)
}

// pop removes and returns the head packet; the queue must be non-empty.
func (q *pktRing) pop() *Packet {
	p := q.buf[q.head]
	q.buf[q.head] = nil
	q.head++
	if q.head == len(q.buf) {
		q.buf = q.buf[:0]
		q.head = 0
	}
	return p
}

// drain empties the queue, passing each packet to sink.
func (q *pktRing) drain(sink func(*Packet)) {
	for q.len() > 0 {
		sink(q.pop())
	}
}

// baseLink implements the queueing, loss, and state logic shared by
// FixedLink and VarLink.
type baseLink struct {
	sim       *simnet.Sim
	cfg       LinkConfig
	recv      func(*Packet)
	queue     pktRing
	down      bool
	blackhole bool
	stats     LinkStats
}

func (b *baseLink) SetReceiver(fn func(*Packet)) { b.recv = fn }
func (b *baseLink) Stats() LinkStats             { return b.stats }
func (b *baseLink) QueueLen() int                { return b.queue.len() }

// SetLossProb implements Link: a fault-injected loss burst (or its
// restore). rng is only installed when the link was built without one.
func (b *baseLink) SetLossProb(p float64, rng *rand.Rand) {
	b.cfg.LossProb = p
	if b.cfg.RNG == nil && rng != nil {
		b.cfg.RNG = rng
	}
}

// LossProb returns the current i.i.d. drop probability — the fault
// layer reads it before a loss burst so the restore puts back the
// link's baseline, not zero.
func (b *baseLink) LossProb() float64 { return b.cfg.LossProb }

// admit runs the shared drop logic; it returns true when the packet was
// queued and the caller should (re)start service. Dropped packets are
// recycled here — the caller must not touch p after a false return.
//
//multinet:hotpath
func (b *baseLink) admit(p *Packet) bool {
	if b.down || b.blackhole {
		b.stats.DroppedDown++
		dropPacket(p)
		return false
	}
	if b.cfg.LossProb > 0 && b.cfg.RNG != nil && b.cfg.RNG.Float64() < b.cfg.LossProb {
		b.stats.DroppedLoss++
		dropPacket(p)
		return false
	}
	if b.queue.len() >= b.cfg.queueLimit() {
		b.stats.DroppedQueue++
		dropPacket(p)
		return false
	}
	p.SendTime = b.sim.Now()
	b.queue.push(p)
	b.stats.Sent++
	b.stats.BytesIn += int64(p.Size)
	return true
}

// deliver hands a packet to the receiver after propagation delay, unless
// the link went down while the packet was in flight.
//
//multinet:hotpath
func (b *baseLink) deliver(p *Packet) {
	b.stats.Delivered++
	b.stats.BytesOut += int64(p.Size)
	p.dst = b
	b.sim.AfterArg(b.cfg.PropDelay, finishDeliver, p)
}

// finishDeliver runs when a packet's propagation delay elapses.
func finishDeliver(a any) {
	p := a.(*Packet)
	b := p.dst
	p.dst = nil
	if b.down || b.blackhole {
		// The packet was on the wire when the link died: it is lost.
		b.stats.Delivered--
		b.stats.BytesOut -= int64(p.Size)
		b.stats.DroppedDown++
		b.stats.LostInFlight++
		dropPacket(p)
		return
	}
	if b.recv == nil {
		dropPacket(p)
		return
	}
	b.recv(p)
}

// purge empties the queue, counting the discards as down-drops.
func (b *baseLink) purge() {
	b.stats.DroppedDown += b.queue.len()
	b.stats.LostInFlight += b.queue.len()
	b.queue.drain(dropPacket)
}

// FixedLink is a constant-bit-rate link.
//
// It runs on an elided event schedule: because service is FIFO at a
// known rate, a packet's serialisation-done and arrival instants are
// both computable the moment it is admitted —
//
//	start_i = max(done_{i-1}, admit_i)   (the virtual serialiser clock)
//	done_i  = start_i + size_i / rate
//	arrive_i = done_i + PropDelay
//
// — so each packet schedules exactly one kernel event (its arrival)
// instead of the serialisation-done + propagation-arrival pair the
// explicit service loop needed. The queue is virtual: admitted packets
// stay on the service ring until their done instant passes (lazily
// evicted), which keeps droptail occupancy — "waiting or serialising
// packets" — identical to the explicit model at every admission check.
type FixedLink struct {
	baseLink
	rateBps float64 // bits per second
	// busyUntil is the virtual serialiser clock: the done instant of
	// the last admitted packet.
	busyUntil time.Duration

	// Fluid-advance state (see FluidAdmit). All of it is zero-valued —
	// and every branch touching it disabled — until the first FluidAdmit,
	// so default packet-mode runs execute the exact same instructions as
	// before fluid mode existed.
	//
	// stateGen counts link reconfigurations (rate/down/blackhole) and
	// trafficGen counts real Send calls; a fluid session snapshots both
	// and aborts back to packet simulation when either moves underneath
	// it — the "interesting event" detector.
	stateGen   uint64
	trafficGen uint64
	// fluidNow is the high-water mark of virtual admission activity: the
	// semantic clock of the hybrid simulation, which can run ahead of the
	// kernel's event clock between fluid epochs. Occupancy eviction uses
	// max(sim.Now(), fluidNow) so droptail decisions made during a fluid
	// epoch and real decisions made after it agree.
	fluidNow time.Duration
	// vq holds the done instants of virtually admitted packets — the
	// fluid half of the droptail occupancy, lazily evicted like the real
	// service ring.
	vq    []time.Duration
	vhead int
}

// NewFixedLink creates a link that transmits at rateMbps megabits per
// second with the given config.
func NewFixedLink(sim *simnet.Sim, rateMbps float64, cfg LinkConfig) *FixedLink {
	if rateMbps <= 0 {
		panic("netem: FixedLink rate must be positive")
	}
	return &FixedLink{
		baseLink: baseLink{sim: sim, cfg: cfg},
		rateBps:  rateMbps * 1e6,
	}
}

// RateMbps returns the configured rate in Mbit/s.
func (l *FixedLink) RateMbps() float64 { return l.rateBps / 1e6 }

// txTime returns the serialisation time of size bytes at the current
// rate.
func (l *FixedLink) txTime(size int) time.Duration {
	return time.Duration(float64(size*8) / l.rateBps * float64(time.Second))
}

// TxTime returns the serialisation time of size bytes at the current
// rate (exported for fluid-advance planning).
func (l *FixedLink) TxTime(size int) time.Duration { return l.txTime(size) }

// SetRateMbps changes the link rate; it applies to packets whose
// transmission starts after the change. Packets already admitted but
// not yet started have precomputed schedules under the old rate, so
// their delivery events are recomputed here — the rare O(queue) cost
// that keeps the per-packet path O(1).
func (l *FixedLink) SetRateMbps(mbps float64) {
	if mbps <= 0 {
		panic("netem: FixedLink rate must be positive")
	}
	l.stateGen++
	l.rateBps = mbps * 1e6
	now := l.sim.Now()
	l.evict()
	q := &l.queue
	base := now
	for i := q.head; i < len(q.buf); i++ {
		p := q.buf[i]
		if p.startAt <= now {
			// In service: its transmission began under the old rate and
			// keeps it (done/arrival already scheduled correctly).
			base = p.doneAt
			continue
		}
		p.arrive.Stop()
		start := base
		if p.SendTime > start {
			start = p.SendTime
		}
		p.startAt = start
		p.doneAt = start + l.txTime(p.Size)
		p.arrive = l.sim.ScheduleArg(p.doneAt+l.cfg.PropDelay, fixedLinkArrive, p)
		base = p.doneAt
	}
	if q.len() > 0 {
		if l.vqLen() == 0 {
			l.busyUntil = base
		} else if base > l.busyUntil {
			// Virtual backlog extends past the real ring: the serialiser
			// clock must never rewind below admissions already granted.
			l.busyUntil = base
		}
	}
}

// vnow is the occupancy clock: the later of the kernel event clock and
// the fluid semantic clock. In packet mode fluidNow is zero, so vnow is
// exactly sim.Now().
func (l *FixedLink) vnow() time.Duration {
	now := l.sim.Now()
	if l.fluidNow > now {
		return l.fluidNow
	}
	return now
}

// evict pops service-ring packets whose serialisation has completed:
// they no longer occupy the droptail queue. Ownership of an evicted
// packet rests solely with its pending arrival event.
func (l *FixedLink) evict() {
	now := l.vnow()
	for l.queue.len() > 0 && l.queue.peek().doneAt <= now {
		l.queue.pop()
	}
	l.vqEvict(now)
}

func (l *FixedLink) vqLen() int { return len(l.vq) - l.vhead }

func (l *FixedLink) vqPush(done time.Duration) {
	if l.vhead > 0 && len(l.vq) == cap(l.vq) {
		n := copy(l.vq, l.vq[l.vhead:])
		l.vq = l.vq[:n]
		l.vhead = 0
	}
	l.vq = append(l.vq, done)
}

func (l *FixedLink) vqEvict(now time.Duration) {
	for l.vhead < len(l.vq) && l.vq[l.vhead] <= now {
		l.vhead++
	}
	if l.vhead == len(l.vq) {
		l.vq = l.vq[:0]
		l.vhead = 0
	}
}

// Send implements Link.
//
//multinet:hotpath
func (l *FixedLink) Send(p *Packet) {
	l.trafficGen++
	l.evict() // occupancy must be current before admit's droptail check
	if l.vqLen() > 0 && !l.down && !l.blackhole &&
		l.queue.len()+l.vqLen() >= l.cfg.queueLimit() {
		// Virtual backlog fills the droptail budget: the combined
		// occupancy check lives here so baseLink.admit stays untouched
		// for the packet-mode hot path.
		l.stats.DroppedQueue++
		dropPacket(p)
		return
	}
	if !l.admit(p) {
		return
	}
	start := l.busyUntil
	if now := l.sim.Now(); start < now {
		start = now
	}
	p.startAt = start
	p.doneAt = start + l.txTime(p.Size)
	l.busyUntil = p.doneAt
	p.fl = l
	p.arrive = l.sim.ScheduleArg(p.doneAt+l.cfg.PropDelay, fixedLinkArrive, p)
}

// fixedLinkArrive fires when a packet reaches the far end: the single
// per-packet event of the elided schedule.
//
//multinet:hotpath
func fixedLinkArrive(a any) {
	p := a.(*Packet)
	l := p.fl
	p.fl = nil
	p.arrive = simnet.Timer{}
	// Arrivals run in serialisation order, so p itself is always among
	// the evicted: after this the ring holds no reference to it and
	// ownership can pass to the receiver (or the drop sink).
	l.evict()
	if l.down || l.blackhole {
		// The packet was on the wire when the link died: it is lost.
		l.stats.DroppedDown++
		l.stats.LostInFlight++
		dropPacket(p)
		return
	}
	l.stats.Delivered++
	l.stats.BytesOut += int64(p.Size)
	if l.recv == nil {
		dropPacket(p)
		return
	}
	l.recv(p)
}

// stopService drops every admitted packet that has not finished
// serialising (the explicit model's queue purge): their arrival events
// are cancelled and the packets die as down-drops. Packets already
// serialised keep their arrival events and are lost there instead, as
// in-flight casualties.
func (l *FixedLink) stopService() {
	l.evict()
	for l.queue.len() > 0 {
		p := l.queue.pop()
		p.arrive.Stop()
		p.fl = nil
		l.stats.DroppedDown++
		l.stats.LostInFlight++
		dropPacket(p)
	}
	if n := l.vqLen(); n > 0 {
		// Virtually admitted packets die with the link, as queued real
		// packets do; the owning fluid session notices via stateGen and
		// discards its side of the bookkeeping.
		l.stats.DroppedDown += n
		l.stats.LostInFlight += n
		l.vq = l.vq[:0]
		l.vhead = 0
	}
}

// QueueLen implements Link: packets waiting or serialising right now.
func (l *FixedLink) QueueLen() int {
	l.evict()
	return l.queue.len()
}

// SetDown implements Link. Bringing the link down purges the queue.
func (l *FixedLink) SetDown(down bool) {
	l.stateGen++
	was := l.down
	l.down = down
	if down {
		l.stopService()
	} else if was && !down {
		l.busyUntil = l.sim.Now()
	}
}

// SetLossProb implements Link. The generation bump dissolves any fluid
// session whose admission plan assumed the old loss regime (Lossless is
// part of a session's eligibility check).
func (l *FixedLink) SetLossProb(p float64, rng *rand.Rand) {
	l.stateGen++
	l.baseLink.SetLossProb(p, rng)
}

// SetBlackhole implements Link.
func (l *FixedLink) SetBlackhole(bh bool) {
	l.stateGen++
	was := l.blackhole
	l.blackhole = bh
	if bh {
		l.stopService()
	} else if was && !bh {
		l.busyUntil = l.sim.Now()
	}
}

// ---- Fluid-advance interface ----------------------------------------
//
// A fluid session (internal/tcp) advances a steady TCP flow analytically
// against this link's serialiser clock instead of scheduling per-packet
// events. The contract: the session pre-checks admissibility with
// FluidHeadroom, admits with FluidAdmit (which returns the exact
// serialisation-done instant the packet-level simulation would have
// produced), counts the delivery with FluidDeliver when it processes the
// corresponding arrival, and watches Gen to detect any interfering
// reconfiguration or real traffic.

// Gen returns the (state, traffic) generation counters. Any change
// means the closed-form schedule a fluid session computed may be stale.
func (l *FixedLink) Gen() (state, traffic uint64) { return l.stateGen, l.trafficGen }

// Available reports whether the link is neither down nor blackholed.
func (l *FixedLink) Available() bool { return !l.down && !l.blackhole }

// Lossless reports whether the link never drops packets at random.
func (l *FixedLink) Lossless() bool { return l.cfg.LossProb == 0 }

// PropDelay returns the one-way propagation delay.
func (l *FixedLink) PropDelay() time.Duration { return l.cfg.PropDelay }

// QueueLimit returns the droptail capacity in packets.
func (l *FixedLink) QueueLimit() int { return l.cfg.queueLimit() }

// BusyUntil returns the virtual serialiser clock.
func (l *FixedLink) BusyUntil() time.Duration { return l.busyUntil }

// FluidHeadroom returns the droptail slots free at semantic time at:
// the queue limit minus packets (real or virtual) still waiting or
// serialising then. It advances the occupancy clock to at.
func (l *FixedLink) FluidHeadroom(at time.Duration) int {
	if at > l.fluidNow {
		l.fluidNow = at
	}
	l.evict()
	return l.cfg.queueLimit() - l.queue.len() - l.vqLen()
}

// FluidAdmit accepts a packet of size bytes onto the link at semantic
// time at without scheduling any event, and returns its serialisation-
// done instant (arrival at the far end is done + PropDelay). The caller
// must have verified headroom and availability; FluidAdmit itself never
// drops.
func (l *FixedLink) FluidAdmit(size int, at time.Duration) (done time.Duration) {
	start := l.busyUntil
	if at > start {
		start = at
	}
	done = start + l.txTime(size)
	l.busyUntil = done
	if at > l.fluidNow {
		l.fluidNow = at
	}
	l.vqPush(done)
	l.stats.Sent++
	l.stats.Elided++
	l.stats.BytesIn += int64(size)
	return done
}

// FluidDeliver records the far-end delivery of a virtually admitted
// packet of size bytes.
func (l *FixedLink) FluidDeliver(size int) {
	l.stats.Delivered++
	l.stats.BytesOut += int64(size)
}

// FluidDropQueue records a droptail discard of a packet that fluid-
// advance mode chose not to admit (the virtual queue was full), keeping
// the drop counters comparable with packet mode.
func (l *FixedLink) FluidDropQueue() {
	l.stats.DroppedQueue++
}

// OpportunitySource produces the packet-delivery schedule for a VarLink.
// Next returns the first delivery-opportunity instant strictly after
// `after`. Sources must be monotone: Next(t) > t.
type OpportunitySource interface {
	Next(after time.Duration) time.Duration
}

// VarLink delivers packets at discrete delivery opportunities, the model
// Mahimahi uses for cellular and WiFi traces. Each opportunity carries
// up to MTU bytes of the head-of-line packet; larger packets consume
// several opportunities.
type VarLink struct {
	baseLink
	src       OpportunitySource
	wake      simnet.Timer
	headBytes int // bytes of the head packet already transmitted
}

// NewVarLink creates a trace-driven link from an opportunity source.
func NewVarLink(sim *simnet.Sim, src OpportunitySource, cfg LinkConfig) *VarLink {
	if src == nil {
		panic("netem: VarLink needs an OpportunitySource")
	}
	return &VarLink{
		baseLink: baseLink{sim: sim, cfg: cfg},
		src:      src,
	}
}

// Send implements Link.
func (l *VarLink) Send(p *Packet) {
	if !l.admit(p) {
		return
	}
	l.arm()
}

func (l *VarLink) arm() {
	if l.wake.Active() {
		return
	}
	if l.queue.len() == 0 || l.down || l.blackhole {
		return
	}
	next := l.src.Next(l.sim.Now())
	l.wake = l.sim.ScheduleArg(next, varLinkOpportunity, l)
}

// varLinkOpportunity consumes one delivery slot.
func varLinkOpportunity(a any) {
	l := a.(*VarLink)
	if l.queue.len() == 0 || l.down || l.blackhole {
		return
	}
	p := l.queue.peek()
	l.headBytes += MTU
	if l.headBytes >= p.Size {
		l.queue.pop()
		l.headBytes = 0
		l.deliver(p)
	}
	l.arm()
}

// SetDown implements Link.
func (l *VarLink) SetDown(down bool) {
	was := l.down
	l.down = down
	if down {
		l.purge()
		l.headBytes = 0
		l.wake.Stop()
	} else if was && !down {
		l.arm()
	}
}

// SetBlackhole implements Link.
func (l *VarLink) SetBlackhole(bh bool) {
	was := l.blackhole
	l.blackhole = bh
	if bh {
		l.purge()
		l.headBytes = 0
		l.wake.Stop()
	} else if was && !bh {
		l.arm()
	}
}

// PeriodicOpportunities is an OpportunitySource delivering MTU-sized
// slots at a constant rate, i.e. a CBR link expressed in the
// opportunity model.
type PeriodicOpportunities struct {
	Interval time.Duration
}

// NewPeriodicOpportunities returns a source whose slot rate carries
// rateMbps of MTU-sized packets.
func NewPeriodicOpportunities(rateMbps float64) *PeriodicOpportunities {
	if rateMbps <= 0 {
		panic("netem: rate must be positive")
	}
	perSec := rateMbps * 1e6 / (8 * MTU)
	return &PeriodicOpportunities{Interval: time.Duration(float64(time.Second) / perSec)}
}

// Next implements OpportunitySource.
func (p *PeriodicOpportunities) Next(after time.Duration) time.Duration {
	if p.Interval <= 0 {
		panic("netem: PeriodicOpportunities needs positive interval")
	}
	n := after/p.Interval + 1
	return n * p.Interval
}
