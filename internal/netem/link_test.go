package netem

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"multinet/internal/simnet"
)

func TestFixedLinkSerializationAndPropagation(t *testing.T) {
	s := simnet.New(1)
	// 12 Mbit/s, 10 ms propagation: a 1500 B packet takes 1 ms to
	// serialize, so delivery is at 11 ms.
	l := NewFixedLink(s, 12, LinkConfig{PropDelay: 10 * time.Millisecond})
	var at time.Duration
	l.SetReceiver(func(p *Packet) { at = s.Now() })
	l.Send(&Packet{Size: 1500})
	s.Run()
	want := 11 * time.Millisecond
	if at != want {
		t.Fatalf("delivery at %v, want %v", at, want)
	}
}

func TestFixedLinkBackToBackQueueing(t *testing.T) {
	s := simnet.New(1)
	l := NewFixedLink(s, 12, LinkConfig{})
	var times []time.Duration
	l.SetReceiver(func(p *Packet) { times = append(times, s.Now()) })
	for i := 0; i < 3; i++ {
		l.Send(&Packet{Size: 1500})
	}
	s.Run()
	if len(times) != 3 {
		t.Fatalf("delivered %d, want 3", len(times))
	}
	// Serialization of one packet is 1 ms; deliveries at 1, 2, 3 ms.
	for i, want := range []time.Duration{1, 2, 3} {
		if times[i] != want*time.Millisecond {
			t.Fatalf("delivery %d at %v, want %v ms", i, times[i], want)
		}
	}
}

func TestFixedLinkThroughputMatchesRate(t *testing.T) {
	s := simnet.New(1)
	const mbps = 8.0
	l := NewFixedLink(s, mbps, LinkConfig{QueueLimit: 1 << 20})
	var bytes int64
	l.SetReceiver(func(p *Packet) { bytes += int64(p.Size) })
	const n = 1000
	for i := 0; i < n; i++ {
		l.Send(&Packet{Size: 1000})
	}
	s.Run()
	elapsed := s.Now().Seconds()
	got := float64(bytes) * 8 / elapsed / 1e6
	if got < mbps*0.99 || got > mbps*1.01 {
		t.Fatalf("throughput %.3f Mbit/s, want ~%v", got, mbps)
	}
}

func TestFixedLinkDroptail(t *testing.T) {
	s := simnet.New(1)
	l := NewFixedLink(s, 1, LinkConfig{QueueLimit: 5})
	delivered := 0
	l.SetReceiver(func(p *Packet) { delivered++ })
	for i := 0; i < 20; i++ {
		l.Send(&Packet{Size: 1500})
	}
	s.Run()
	if delivered != 5 {
		t.Fatalf("delivered %d, want 5 (queue limit)", delivered)
	}
	if st := l.Stats(); st.DroppedQueue != 15 {
		t.Fatalf("dropped %d, want 15", st.DroppedQueue)
	}
}

func TestFixedLinkRandomLoss(t *testing.T) {
	s := simnet.New(1)
	rng := rand.New(rand.NewSource(7))
	l := NewFixedLink(s, 100, LinkConfig{LossProb: 0.3, RNG: rng, QueueLimit: 1 << 20})
	delivered := 0
	l.SetReceiver(func(p *Packet) { delivered++ })
	const n = 10000
	for i := 0; i < n; i++ {
		l.Send(&Packet{Size: 100})
	}
	s.Run()
	frac := float64(delivered) / n
	if frac < 0.66 || frac > 0.74 {
		t.Fatalf("delivered fraction %.3f, want ~0.70", frac)
	}
}

func TestFixedLinkDownDropsAndRecovers(t *testing.T) {
	s := simnet.New(1)
	l := NewFixedLink(s, 10, LinkConfig{})
	delivered := 0
	l.SetReceiver(func(p *Packet) { delivered++ })
	l.SetDown(true)
	l.Send(&Packet{Size: 1000})
	s.Run()
	if delivered != 0 {
		t.Fatal("packet delivered over a down link")
	}
	l.SetDown(false)
	l.Send(&Packet{Size: 1000})
	s.Run()
	if delivered != 1 {
		t.Fatalf("delivered %d after link up, want 1", delivered)
	}
}

func TestFixedLinkDownKillsInFlight(t *testing.T) {
	s := simnet.New(1)
	l := NewFixedLink(s, 12, LinkConfig{PropDelay: 50 * time.Millisecond})
	delivered := 0
	l.SetReceiver(func(p *Packet) { delivered++ })
	l.Send(&Packet{Size: 1500}) // tx done at 1 ms, delivery due 51 ms
	s.RunUntil(20 * time.Millisecond)
	l.SetDown(true)
	s.Run()
	if delivered != 0 {
		t.Fatal("in-flight packet survived link down")
	}
}

func TestBlackholeSilent(t *testing.T) {
	s := simnet.New(1)
	l := NewFixedLink(s, 10, LinkConfig{})
	delivered := 0
	l.SetReceiver(func(p *Packet) { delivered++ })
	l.SetBlackhole(true)
	for i := 0; i < 5; i++ {
		l.Send(&Packet{Size: 500})
	}
	s.Run()
	if delivered != 0 {
		t.Fatal("blackholed link delivered packets")
	}
	st := l.Stats()
	if st.DroppedDown != 5 {
		t.Fatalf("DroppedDown = %d, want 5", st.DroppedDown)
	}
}

func TestVarLinkMatchesPeriodicRate(t *testing.T) {
	s := simnet.New(1)
	src := NewPeriodicOpportunities(12) // 12 Mbit/s of 1500 B slots
	l := NewVarLink(s, src, LinkConfig{QueueLimit: 1 << 20})
	var bytes int64
	l.SetReceiver(func(p *Packet) { bytes += int64(p.Size) })
	const n = 1000
	for i := 0; i < n; i++ {
		l.Send(&Packet{Size: MTU})
	}
	s.Run()
	got := float64(bytes) * 8 / s.Now().Seconds() / 1e6
	if got < 11.5 || got > 12.5 {
		t.Fatalf("VarLink throughput %.2f Mbit/s, want ~12", got)
	}
}

func TestVarLinkLargePacketUsesMultipleOpportunities(t *testing.T) {
	s := simnet.New(1)
	src := NewPeriodicOpportunities(12)
	l := NewVarLink(s, src, LinkConfig{})
	var at time.Duration
	l.SetReceiver(func(p *Packet) { at = s.Now() })
	l.Send(&Packet{Size: 3 * MTU})
	s.Run()
	// Three slots at 1 ms apart: delivery on the third.
	if at != 3*time.Millisecond {
		t.Fatalf("delivery at %v, want 3ms", at)
	}
}

func TestVarLinkSmallPacketOneOpportunity(t *testing.T) {
	s := simnet.New(1)
	src := NewPeriodicOpportunities(12)
	l := NewVarLink(s, src, LinkConfig{})
	delivered := 0
	var at time.Duration
	l.SetReceiver(func(p *Packet) { delivered++; at = s.Now() })
	l.Send(&Packet{Size: 40}) // an ACK
	s.Run()
	if delivered != 1 || at != time.Millisecond {
		t.Fatalf("delivered=%d at %v, want 1 at 1ms", delivered, at)
	}
}

func TestIfaceDuplexRouting(t *testing.T) {
	s := simnet.New(1)
	i := testIface(s, "wifi", 10, 5*time.Millisecond)
	var gotUp, gotDown *Packet
	i.OnServerRecv(func(p *Packet) { gotUp = p })
	i.OnClientRecv(func(p *Packet) { gotDown = p })
	i.SendUp(100, "req")
	i.SendDown(200, "resp")
	s.Run()
	if gotUp == nil || gotUp.Payload != "req" || gotUp.Dir != Up || gotUp.Iface != "wifi" {
		t.Fatalf("server recv = %+v", gotUp)
	}
	if gotDown == nil || gotDown.Payload != "resp" || gotDown.Dir != Down {
		t.Fatalf("client recv = %+v", gotDown)
	}
}

func TestIfaceDownSignalsSubscribers(t *testing.T) {
	s := simnet.New(1)
	i := testIface(s, "lte", 10, time.Millisecond)
	var events []bool
	i.SubscribeDown(func(d bool) { events = append(events, d) })
	i.SetDown(true)
	i.SetDown(true) // idempotent: no second event
	i.SetDown(false)
	if len(events) != 2 || events[0] != true || events[1] != false {
		t.Fatalf("events = %v, want [true false]", events)
	}
}

func TestIfaceBlackholeDoesNotSignal(t *testing.T) {
	s := simnet.New(1)
	i := testIface(s, "lte", 10, time.Millisecond)
	signalled := false
	i.SubscribeDown(func(bool) { signalled = true })
	i.SetBlackhole(true)
	if signalled {
		t.Fatal("blackhole must be silent (paper Fig. 15g semantics)")
	}
	if !i.Blackholed() {
		t.Fatal("Blackholed() should report true")
	}
}

func TestIfaceTaps(t *testing.T) {
	s := simnet.New(1)
	i := testIface(s, "wifi", 10, time.Millisecond)
	i.OnServerRecv(func(p *Packet) {})
	sent, recvd := 0, 0
	i.AddSendTap(func(p *Packet) { sent++ })
	i.AddRecvTap(func(p *Packet) { recvd++ })
	i.SendUp(100, nil)
	s.Run()
	if sent != 1 || recvd != 1 {
		t.Fatalf("taps saw sent=%d recvd=%d, want 1/1", sent, recvd)
	}
}

func TestHostAttachAndLookup(t *testing.T) {
	s := simnet.New(1)
	h := NewHost("client")
	h.Attach(testIface(s, "wifi", 10, time.Millisecond))
	h.Attach(testIface(s, "lte", 10, time.Millisecond))
	if h.Iface("wifi") == nil || h.Iface("lte") == nil {
		t.Fatal("interfaces not found")
	}
	names := h.IfaceNames()
	if len(names) != 2 || names[0] != "wifi" || names[1] != "lte" {
		t.Fatalf("names = %v", names)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Attach should panic")
		}
	}()
	h.Attach(testIface(s, "wifi", 1, time.Millisecond))
}

// Property: a FixedLink never reorders packets.
func TestPropertyFixedLinkFIFO(t *testing.T) {
	f := func(sizes []uint16) bool {
		s := simnet.New(11)
		l := NewFixedLink(s, 50, LinkConfig{QueueLimit: 1 << 20})
		var got []int
		l.SetReceiver(func(p *Packet) { got = append(got, p.Payload.(int)) })
		n := 0
		for i, sz := range sizes {
			if sz == 0 {
				continue
			}
			l.Send(&Packet{Size: int(sz%2000) + 40, Payload: i})
			n++
		}
		s.Run()
		if len(got) != n {
			return false
		}
		for i := 1; i < len(got); i++ {
			if got[i] < got[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: conservation — Sent == Delivered + drops after quiescence
// for a VarLink with losses.
func TestPropertyLinkConservation(t *testing.T) {
	f := func(seed int64, count uint8) bool {
		s := simnet.New(seed)
		l := NewVarLink(s, NewPeriodicOpportunities(20), LinkConfig{
			QueueLimit: 8,
			LossProb:   0.2,
			RNG:        s.RNG("loss"),
		})
		delivered := 0
		l.SetReceiver(func(p *Packet) { delivered++ })
		offered := int(count) + 1
		for i := 0; i < offered; i++ {
			l.Send(&Packet{Size: 1200})
		}
		s.Run()
		st := l.Stats()
		return st.Delivered == delivered &&
			offered == st.Sent+st.DroppedLoss+st.DroppedQueue+st.DroppedDown &&
			st.Sent == st.Delivered
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// testIface builds a symmetric duplex interface for tests.
func testIface(s *simnet.Sim, name string, mbps float64, prop time.Duration) *Iface {
	up := NewFixedLink(s, mbps, LinkConfig{PropDelay: prop})
	down := NewFixedLink(s, mbps, LinkConfig{PropDelay: prop})
	return NewIface(s, name, up, down)
}

func TestPromotionDelaysFirstUplinkPacket(t *testing.T) {
	s := simnet.New(1)
	i := testIface(s, "lte", 10, 5*time.Millisecond)
	var arrivals []time.Duration
	i.OnServerRecv(func(p *Packet) { arrivals = append(arrivals, s.Now()) })
	i.SetPromotion(260*time.Millisecond, 10*time.Second)
	i.SendUp(100, nil) // cold radio: pays 260 ms
	i.SendUp(100, nil) // queued behind the wake-up
	s.Run()
	if len(arrivals) != 2 {
		t.Fatalf("delivered %d, want 2", len(arrivals))
	}
	if arrivals[0] < 265*time.Millisecond {
		t.Fatalf("first packet at %v, want >= 265ms (promotion + path)", arrivals[0])
	}
	// A warm radio pays no promotion.
	warmStart := s.Now()
	i.SendUp(100, nil)
	s.Run()
	if d := arrivals[2] - warmStart; d > 10*time.Millisecond {
		t.Fatalf("warm send took %v, want ~5ms path delay only", d)
	}
}

func TestPromotionExpiresAfterIdle(t *testing.T) {
	s := simnet.New(1)
	i := testIface(s, "lte", 10, time.Millisecond)
	var arrivals []time.Duration
	i.OnServerRecv(func(p *Packet) { arrivals = append(arrivals, s.Now()) })
	i.SetPromotion(200*time.Millisecond, 2*time.Second)
	i.SendUp(100, nil)
	s.Run()
	first := arrivals[0]
	// Stay idle past the threshold: promotion is paid again.
	s.RunUntil(first + 3*time.Second)
	coldStart := s.Now()
	i.SendUp(100, nil)
	s.Run()
	if d := arrivals[1] - coldStart; d < 200*time.Millisecond {
		t.Fatalf("re-promotion not paid: %v", d)
	}
}

func TestPromotionKeepsFIFO(t *testing.T) {
	s := simnet.New(1)
	i := testIface(s, "lte", 10, time.Millisecond)
	var order []int
	i.OnServerRecv(func(p *Packet) { order = append(order, p.Payload.(int)) })
	i.SetPromotion(100*time.Millisecond, time.Second)
	for k := 0; k < 5; k++ {
		i.SendUp(100, k)
	}
	s.Run()
	for k := range order {
		if order[k] != k {
			t.Fatalf("promotion reordered packets: %v", order)
		}
	}
}

// --- elided-schedule FixedLink edge cases ------------------------------

// Rate changes apply to transmissions starting after the change: the
// in-service packet keeps its old schedule, queued packets are
// recomputed under the new rate.
func TestFixedLinkRateChangeMidService(t *testing.T) {
	s := simnet.New(1)
	l := NewFixedLink(s, 1, LinkConfig{}) // 1500 B = 12 ms per packet
	var times []time.Duration
	l.SetReceiver(func(p *Packet) { times = append(times, s.Now()) })
	for i := 0; i < 3; i++ {
		l.Send(&Packet{Size: 1500})
	}
	s.Schedule(6*time.Millisecond, func() { l.SetRateMbps(12) }) // mid-service of packet 1
	s.Run()
	// Packet 1 started under 1 Mbit/s and keeps it (done 12 ms); packets
	// 2 and 3 serialise at 12 Mbit/s (1 ms each) behind it.
	want := []time.Duration{12 * time.Millisecond, 13 * time.Millisecond, 14 * time.Millisecond}
	if len(times) != len(want) {
		t.Fatalf("delivered %d, want %d", len(times), len(want))
	}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("delivery %d at %v, want %v", i, times[i], want[i])
		}
	}
	if l.RateMbps() != 12 {
		t.Fatalf("RateMbps = %v, want 12", l.RateMbps())
	}
}

// A rate change while the link is idle affects the next admission only.
func TestFixedLinkRateChangeIdle(t *testing.T) {
	s := simnet.New(1)
	l := NewFixedLink(s, 1, LinkConfig{})
	var at time.Duration
	l.SetReceiver(func(p *Packet) { at = s.Now() })
	l.SetRateMbps(12)
	l.Send(&Packet{Size: 1500})
	s.Run()
	if at != time.Millisecond {
		t.Fatalf("delivery at %v, want 1ms", at)
	}
}

// Link-down at exactly the head packet's serialisation-done instant:
// the packet is on the wire (lost at its arrival, not purged), while
// still-serialising packets purge immediately. Either way nothing is
// delivered and every loss is a down-drop.
func TestFixedLinkDownAtSerialisationDone(t *testing.T) {
	s := simnet.New(1)
	l := NewFixedLink(s, 12, LinkConfig{PropDelay: 50 * time.Millisecond})
	delivered := 0
	l.SetReceiver(func(p *Packet) { delivered++ })
	l.Send(&Packet{Size: 1500}) // done at 1 ms, arrival due 51 ms
	l.Send(&Packet{Size: 1500}) // done at 2 ms: still serialising at 1 ms
	s.Schedule(time.Millisecond, func() { l.SetDown(true) })
	s.Run()
	if delivered != 0 {
		t.Fatalf("delivered %d over a link that died at serialisation-done", delivered)
	}
	st := l.Stats()
	if st.DroppedDown != 2 {
		t.Fatalf("DroppedDown = %d, want 2", st.DroppedDown)
	}
	if st.Delivered != 0 || st.BytesOut != 0 {
		t.Fatalf("Delivered/BytesOut = %d/%d, want 0/0", st.Delivered, st.BytesOut)
	}
	// The link still works after recovery.
	l.SetDown(false)
	l.Send(&Packet{Size: 1500})
	s.Run()
	if delivered != 1 {
		t.Fatalf("delivered %d after recovery, want 1", delivered)
	}
}

// Droptail occupancy counts waiting-or-serialising packets only:
// packets whose serialisation finished free their slot even while they
// are still propagating.
func TestFixedLinkOccupancyExcludesSerialised(t *testing.T) {
	s := simnet.New(1)
	// 12 Mbit/s: 1 ms serialisation; 1 s propagation keeps deliveries far out.
	l := NewFixedLink(s, 12, LinkConfig{PropDelay: time.Second, QueueLimit: 2})
	delivered := 0
	l.SetReceiver(func(p *Packet) { delivered++ })
	l.Send(&Packet{Size: 1500})
	l.Send(&Packet{Size: 1500})
	if got := l.QueueLen(); got != 2 {
		t.Fatalf("QueueLen = %d, want 2", got)
	}
	l.Send(&Packet{Size: 1500}) // over the limit: dropped
	if st := l.Stats(); st.DroppedQueue != 1 {
		t.Fatalf("DroppedQueue = %d, want 1", st.DroppedQueue)
	}
	s.RunUntil(5 * time.Millisecond) // both packets serialised, still in flight
	if got := l.QueueLen(); got != 0 {
		t.Fatalf("QueueLen after serialisation = %d, want 0 (packets only propagate)", got)
	}
	l.Send(&Packet{Size: 1500}) // slot free again
	l.Send(&Packet{Size: 1500})
	if st := l.Stats(); st.DroppedQueue != 1 {
		t.Fatalf("late admissions dropped: DroppedQueue = %d, want 1", st.DroppedQueue)
	}
	s.Run()
	if delivered != 4 {
		t.Fatalf("delivered %d, want 4", delivered)
	}
}

// A blackhole mid-flight swallows propagating packets silently, exactly
// like an administrative down (paper Fig. 15g: traffic vanishes).
func TestFixedLinkBlackholeKillsInFlight(t *testing.T) {
	s := simnet.New(1)
	l := NewFixedLink(s, 12, LinkConfig{PropDelay: 50 * time.Millisecond})
	delivered := 0
	l.SetReceiver(func(p *Packet) { delivered++ })
	l.Send(&Packet{Size: 1500})
	s.RunUntil(20 * time.Millisecond)
	l.SetBlackhole(true)
	s.Run()
	if delivered != 0 {
		t.Fatal("in-flight packet survived blackhole")
	}
	if st := l.Stats(); st.DroppedDown != 1 || st.Delivered != 0 {
		t.Fatalf("stats = %+v, want 1 down-drop and 0 delivered", st)
	}
}

// Property: FixedLink stats are conserved across down/up churn — every
// admitted packet is eventually delivered or counted in exactly one
// drop bucket, and the delivery callback count matches Delivered.
func TestPropertyFixedLinkConservation(t *testing.T) {
	f := func(seed int64, count, toggleMs uint8) bool {
		s := simnet.New(seed)
		l := NewFixedLink(s, 8, LinkConfig{
			PropDelay:  12 * time.Millisecond,
			QueueLimit: 6,
			LossProb:   0.1,
			RNG:        s.RNG("loss"),
		})
		delivered := 0
		l.SetReceiver(func(p *Packet) { delivered++ })
		offered := int(count)%40 + 1
		for i := 0; i < offered; i++ {
			at := time.Duration(i) * time.Millisecond
			s.Schedule(at, func() { l.Send(&Packet{Size: 1200}) })
		}
		down := time.Duration(int(toggleMs)%30+1) * time.Millisecond
		s.Schedule(down, func() { l.SetDown(true) })
		s.Schedule(down+7*time.Millisecond, func() { l.SetDown(false) })
		s.Run()
		st := l.Stats()
		// Every offered packet ends in exactly one bucket: delivered, or
		// one of the three drop counters (DroppedDown covers both
		// admit-while-down and lost-in-flight).
		return st.Delivered == delivered &&
			offered == st.Delivered+st.DroppedLoss+st.DroppedQueue+st.DroppedDown &&
			st.Sent >= st.Delivered
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
