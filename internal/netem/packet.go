// Package netem emulates network paths over the simnet kernel: one-way
// links with finite rate, propagation delay, droptail queues and random
// loss, composed into duplex interfaces (WiFi, LTE) of a multi-homed
// client talking to a single-homed server — the topology of the paper's
// measurement setup (paper Fig. 5).
//
// Two link service models are provided:
//
//   - FixedLink: constant bit rate (classic serialization + propagation).
//   - VarLink: Mahimahi-style packet-delivery opportunities from an
//     OpportunitySource, used for trace-driven and stochastic radio
//     models (paper Section 5 uses packet-delivery traces the same way).
//
// Interface failure semantics matter for the paper's Fig. 15: an
// explicit Down (the `multipath off` / iproute case) notifies listeners
// immediately, while Blackhole (physically unplugging the tethered
// phone's cellular link) silently discards traffic with no signal.
package netem

import (
	"time"
)

// Direction of a packet relative to the multi-homed client.
type Direction int

const (
	// Up is client-to-server.
	Up Direction = iota
	// Down is server-to-client.
	Down
)

// String returns "up" or "down".
func (d Direction) String() string {
	if d == Up {
		return "up"
	}
	return "down"
}

// MTU is the maximum transmission unit in bytes used by the delivery-
// opportunity link model, matching Mahimahi's 1500-byte slots.
const MTU = 1500

// Packet is the unit of transfer across links. Transports put their
// segment in Payload; Size is the total on-the-wire size in bytes.
type Packet struct {
	// Iface names the client interface this packet traverses ("wifi",
	// "lte"); filled in by the Iface send helpers.
	Iface string
	// Dir is the travel direction relative to the client.
	Dir Direction
	// Size is the on-the-wire size in bytes, headers included.
	Size int
	// Payload carries the transport segment.
	Payload any
	// SendTime is when the packet entered the link, set by the link.
	SendTime time.Duration
}

// LinkStats counts per-link activity.
type LinkStats struct {
	Sent         int // packets accepted onto the queue
	Delivered    int // packets handed to the receiver
	DroppedQueue int // droptail discards
	DroppedLoss  int // random-loss discards
	DroppedDown  int // discards while the link was down or blackholed
	BytesIn      int64
	BytesOut     int64
}

// Link is a one-way packet carrier.
type Link interface {
	// Send enqueues a packet; drops are reflected in Stats.
	Send(p *Packet)
	// SetReceiver installs the delivery callback. Must be set before
	// the first Send.
	SetReceiver(fn func(*Packet))
	// SetDown marks the link administratively down (true) or up.
	SetDown(down bool)
	// SetBlackhole makes the link silently swallow all packets.
	SetBlackhole(bh bool)
	// Stats returns a snapshot of the link counters.
	Stats() LinkStats
	// QueueLen returns the number of packets waiting or in service.
	QueueLen() int
}
