// Package netem emulates network paths over the simnet kernel: one-way
// links with finite rate, propagation delay, droptail queues and random
// loss, composed into duplex interfaces (WiFi, LTE) of a multi-homed
// client talking to a single-homed server — the topology of the paper's
// measurement setup (paper Fig. 5).
//
// Two link service models are provided:
//
//   - FixedLink: constant bit rate (classic serialization + propagation).
//   - VarLink: Mahimahi-style packet-delivery opportunities from an
//     OpportunitySource, used for trace-driven and stochastic radio
//     models (paper Section 5 uses packet-delivery traces the same way).
//
// Interface failure semantics matter for the paper's Fig. 15: an
// explicit Down (the `multipath off` / iproute case) notifies listeners
// immediately, while Blackhole (physically unplugging the tethered
// phone's cellular link) silently discards traffic with no signal.
package netem

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"multinet/internal/simnet"
)

// Direction of a packet relative to the multi-homed client.
type Direction int

const (
	// Up is client-to-server.
	Up Direction = iota
	// Down is server-to-client.
	Down
)

// String returns "up" or "down".
func (d Direction) String() string {
	if d == Up {
		return "up"
	}
	return "down"
}

// MTU is the maximum transmission unit in bytes used by the delivery-
// opportunity link model, matching Mahimahi's 1500-byte slots.
const MTU = 1500

// Packet is the unit of transfer across links. Transports put their
// segment in Payload; Size is the total on-the-wire size in bytes.
//
// Packets are pooled: the Iface send helpers take them from NewPacket,
// and they are released back exactly once — by the link when it drops
// them (queue overflow, random loss, down/blackhole) or by the final
// receiver once it has finished with the delivered packet (tcp.Stack
// does this in its dispatch path). Consumers that retain a delivered
// packet simply never release it; the pool is an optimisation, not an
// obligation.
type Packet struct {
	// Iface names the client interface this packet traverses ("wifi",
	// "lte"); filled in by the Iface send helpers.
	Iface string
	// Dir is the travel direction relative to the client.
	Dir Direction
	// Size is the on-the-wire size in bytes, headers included.
	Size int
	// Payload carries the transport segment.
	Payload any
	// SendTime is when the packet entered the link, set by the link.
	SendTime time.Duration

	// dst carries the delivering link across a VarLink's
	// propagation-delay event, so delivery needs no per-packet closure.
	dst *baseLink
	// promo carries the target link across a radio-promotion wait (see
	// Iface.SendUp), for the same reason.
	promo Link

	// FixedLink elided-schedule state (see FixedLink): the packet's
	// serialisation window, its single arrival event, and the owning
	// link for that event's callback. All are computed at admit time.
	startAt time.Duration
	doneAt  time.Duration
	arrive  simnet.Timer
	fl      *FixedLink
}

// Recyclable is implemented by payloads that want to be returned to a
// pool when netem is finished with the packet carrying them: on every
// drop path (queue overflow, random loss, down/blackhole, purge) the
// link recycles the payload before releasing the packet. Payloads of
// delivered packets are NOT recycled by netem — ownership passes to the
// receiver (tcp.Stack recycles segments after processing them).
type Recyclable interface{ Recycle() }

var packetPool = sync.Pool{New: func() any { return new(Packet) }}

// NewPacket returns a zeroed packet from the pool.
func NewPacket() *Packet {
	if leakTrack.Load() {
		livePackets.Add(1)
	}
	return packetPool.Get().(*Packet)
}

// ReleasePacket resets p and returns it to the pool. The caller must
// not touch p afterwards.
func ReleasePacket(p *Packet) {
	if leakTrack.Load() {
		livePackets.Add(-1)
	}
	*p = Packet{}
	packetPool.Put(p)
}

// dropPacket recycles p's payload (if it knows how) and releases p —
// the shared sink for every path where a packet dies inside netem.
func dropPacket(p *Packet) {
	if r, ok := p.Payload.(Recyclable); ok {
		r.Recycle()
	}
	ReleasePacket(p)
}

// LinkStats counts per-link activity.
type LinkStats struct {
	Sent         int // packets accepted onto the queue
	Delivered    int // packets handed to the receiver
	DroppedQueue int // droptail discards
	DroppedLoss  int // random-loss discards
	DroppedDown  int // discards while the link was down or blackholed
	BytesIn      int64
	BytesOut     int64
	// Elided counts packets carried analytically by fluid-advance mode
	// (see FixedLink.FluidAdmit): they are included in Sent/Delivered but
	// never existed as simulator events.
	Elided int
	// LostInFlight counts admitted packets (included in Sent) that died
	// before reaching the receiver — queued or on the wire when the link
	// went down or blackholed. It is a sub-count of DroppedDown, kept
	// separately so the conservation identity
	//
	//	Sent == Delivered + LostInFlight
	//
	// holds exactly at quiescence (the faults invariant checker asserts
	// it across every fault episode).
	LostInFlight int
}

// Link is a one-way packet carrier.
type Link interface {
	// Send enqueues a packet; drops are reflected in Stats.
	Send(p *Packet)
	// SetReceiver installs the delivery callback. Must be set before
	// the first Send.
	SetReceiver(fn func(*Packet))
	// SetDown marks the link administratively down (true) or up.
	SetDown(down bool)
	// SetBlackhole makes the link silently swallow all packets.
	SetBlackhole(bh bool)
	// SetLossProb changes the i.i.d. drop probability mid-run (fault
	// injection: loss bursts). rng is installed only when the link was
	// built without one; pass nil to keep the existing stream.
	SetLossProb(p float64, rng *rand.Rand)
	// Stats returns a snapshot of the link counters.
	Stats() LinkStats
	// QueueLen returns the number of packets waiting or in service.
	QueueLen() int
}

// leakTrack gates live-packet accounting. Off (the default) the pooled
// hot path pays one predictable branch; tests running the faults
// invariant checker switch it on around a run and assert LivePackets
// returns to its starting value once the simulation drains.
var leakTrack atomic.Bool

var livePackets atomic.Int64

// SetLeakTracking enables or disables live-packet accounting and resets
// the counter. Enable it before building the simulation under test so
// every NewPacket/ReleasePacket pair of the run is counted.
func SetLeakTracking(on bool) {
	leakTrack.Store(on)
	livePackets.Store(0)
}

// LivePackets returns the tracked packet balance: allocations minus
// releases since SetLeakTracking(true). Zero at quiescence means no
// pooled-packet leak (and no double release).
func LivePackets() int64 { return livePackets.Load() }
