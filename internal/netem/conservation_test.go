package netem

import (
	"math/rand"
	"testing"
	"time"

	"multinet/internal/simnet"
)

// consRig drives one link with a randomized interleaving of packet
// sends and fault edges, then asserts the conservation identity at
// quiescence: every admitted packet was delivered or died in flight.
type consRig struct {
	l         Link
	delivered int
}

type consOp struct {
	rig  *consRig
	kind int // 0 send, 1 down, 2 up, 3 blackhole on, 4 blackhole off
	size int
}

func runConsOp(a any) {
	op := a.(*consOp)
	switch op.kind {
	case 0:
		p := NewPacket()
		p.Size = op.size
		op.rig.l.Send(p)
	case 1:
		op.rig.l.SetDown(true)
	case 2:
		op.rig.l.SetDown(false)
	case 3:
		op.rig.l.SetBlackhole(true)
	case 4:
		op.rig.l.SetBlackhole(false)
	}
}

func checkConservation(t *testing.T, name string, seed int64, l Link, sim *simnet.Sim, rng *rand.Rand) {
	t.Helper()
	rig := &consRig{l: l}
	l.SetReceiver(func(p *Packet) {
		rig.delivered++
		ReleasePacket(p)
	})
	ops := 50 + rng.Intn(200)
	for i := 0; i < ops; i++ {
		at := time.Duration(rng.Int63n(int64(2 * time.Second)))
		kind := 0
		if rng.Intn(4) == 0 { // 25% fault edges, 75% traffic
			kind = 1 + rng.Intn(4)
		}
		sim.ScheduleArg(at, runConsOp, &consOp{rig: rig, kind: kind, size: 200 + rng.Intn(1300)})
	}
	// Always restore the link at the end so queued packets can drain —
	// packets still queued at restore must be counted, not lost.
	sim.ScheduleArg(2*time.Second, runConsOp, &consOp{rig: rig, kind: 2})
	sim.ScheduleArg(2*time.Second, runConsOp, &consOp{rig: rig, kind: 4})
	sim.Run()

	st := l.Stats()
	if st.Sent != st.Delivered+st.LostInFlight {
		t.Errorf("%s seed %d: conservation broken: sent=%d delivered=%d lost-in-flight=%d",
			name, seed, st.Sent, st.Delivered, st.LostInFlight)
	}
	if st.LostInFlight > st.DroppedDown {
		t.Errorf("%s seed %d: lost-in-flight %d exceeds down drops %d",
			name, seed, st.LostInFlight, st.DroppedDown)
	}
	if st.Delivered != rig.delivered {
		t.Errorf("%s seed %d: stats delivered %d but receiver saw %d",
			name, seed, st.Delivered, rig.delivered)
	}
}

// TestLinkConservationUnderFaults is the property test behind the
// faults invariant checker: random down/up and blackhole edges
// interleaved with traffic never break Sent == Delivered + LostInFlight
// on either link model.
func TestLinkConservationUnderFaults(t *testing.T) {
	for seed := int64(0); seed < 100; seed++ {
		sim := simnet.New(seed)
		rng := rand.New(rand.NewSource(seed))
		l := NewFixedLink(sim, 2+6*rng.Float64(), LinkConfig{
			PropDelay:  time.Duration(rng.Intn(40)) * time.Millisecond,
			QueueLimit: 5 + rng.Intn(50),
		})
		checkConservation(t, "fixed", seed, l, sim, rng)

		sim2 := simnet.New(seed)
		rng2 := rand.New(rand.NewSource(seed + 1000))
		v := NewVarLink(sim2, NewPeriodicOpportunities(4), LinkConfig{
			PropDelay:  time.Duration(rng2.Intn(40)) * time.Millisecond,
			QueueLimit: 5 + rng2.Intn(50),
		})
		checkConservation(t, "var", seed, v, sim2, rng2)
	}
}

// TestIfaceFlapConservation pins the duplex case the chaos schedules
// exercise: an interface flap train (admin down/up cycles) with traffic
// in flight loses only in-flight packets and accounts for each one.
func TestIfaceFlapConservation(t *testing.T) {
	sim := simnet.New(7)
	up := NewFixedLink(sim, 8, LinkConfig{PropDelay: 20 * time.Millisecond})
	down := NewFixedLink(sim, 8, LinkConfig{PropDelay: 20 * time.Millisecond})
	ifc := NewIface(sim, "wifi", up, down)
	got := 0
	ifc.OnServerRecv(func(p *Packet) { got++; ReleasePacket(p) })
	ifc.OnClientRecv(func(p *Packet) { ReleasePacket(p) })

	rig := &flapRig{ifc: ifc, sim: sim, sends: 400}
	sim.ScheduleArg(0, flapStep, rig)
	for i := 0; i < 6; i++ {
		at := time.Duration(100+i*150) * time.Millisecond
		sim.ScheduleArg(at, flapToggle, &flapEdge{ifc: ifc, down: i%2 == 0})
	}
	sim.Run()

	for _, l := range []Link{up, down} {
		st := l.Stats()
		if st.Sent != st.Delivered+st.LostInFlight {
			t.Fatalf("flap conservation broken: %+v", st)
		}
	}
	if st := up.Stats(); st.LostInFlight == 0 {
		t.Fatal("flap train with traffic in flight lost nothing — test is not exercising the property")
	}
	if got != up.Stats().Delivered {
		t.Fatalf("receiver saw %d, stats say %d", got, up.Stats().Delivered)
	}
}

type flapRig struct {
	ifc   *Iface
	sim   *simnet.Sim
	sends int
}

func flapStep(a any) {
	r := a.(*flapRig)
	if r.sends == 0 {
		return
	}
	r.sends--
	r.ifc.SendUp(1200, nil)
	r.sim.ScheduleArg(r.sim.Now()+2*time.Millisecond, flapStep, r)
}

type flapEdge struct {
	ifc  *Iface
	down bool
}

func flapToggle(a any) {
	e := a.(*flapEdge)
	e.ifc.SetDown(e.down)
}
