// Package serve is the online path-selection service: the adaptive
// selector of internal/selector behind an HTTP/JSON API, productising
// the paper's future-work policy ("which path(s), MPTCP or not, which
// scheduler?") the way a measurement-backed deployment would serve it
// to millions of clients (the "in the wild" regime of Mohan et al.,
// arXiv:1909.02601).
//
// Two POST endpoints carry the traffic:
//
//	POST /v1/telemetry  {"site":"s","path":"wifi","mbps":12.5,"rtt_ms":25}
//	POST /v1/decide     {"site":"s","flow_bytes":1048576}
//
// Telemetry feeds the sharded, exponentially-decayed estimate store;
// decide answers with the full selector.Decision (paths in preference
// order, UseMPTCP, coupling, scheduler, disparity and rationale).
// GET /v1/stats and GET /v1/healthz serve operations.
//
// The steady-state request path is allocation-free: request bodies
// land in pooled scratch buffers, the flat JSON shapes are scanned by
// hand (json.go), decisions fill pooled selector.Decision values, and
// responses are appended into preallocated buffers. cmd/bench's
// serve/* benchmarks pin 0 allocs/query under the CI trajectory gate.
package serve

import (
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"multinet/internal/selector"
)

// maxBody bounds a request body; both request shapes fit in a few
// hundred bytes, so anything larger is a client bug or abuse.
const maxBody = 16 << 10

// Config assembles a Server.
type Config struct {
	// Store is the estimate state (required).
	Store *selector.Store
	// Now supplies the monotonic instant used for decay. Defaults to
	// time.Since of the server's construction.
	Now func() time.Duration
}

// Stats is the service's operational counter snapshot.
type Stats struct {
	Decides     uint64 `json:"decides"`
	Telemetry   uint64 `json:"telemetry"`
	UnknownSite uint64 `json:"unknown_site"`
	BadRequests uint64 `json:"bad_requests"`
	Sites       int    `json:"sites"`
	Shards      int    `json:"shards"`
}

// Server is the HTTP face of the selector store. All exported methods
// are safe for concurrent use.
type Server struct {
	store *selector.Store
	now   func() time.Duration

	scratch sync.Pool // *Scratch

	decides     atomic.Uint64
	telemetry   atomic.Uint64
	unknownSite atomic.Uint64
	badRequests atomic.Uint64

	// draining flips when graceful shutdown begins: /v1/healthz starts
	// answering 503 so load balancers pull the instance out of rotation
	// while in-flight requests finish.
	draining atomic.Bool
}

// Scratch is the pooled per-request state: the request buffer, the
// decision, and the response buffer. Handlers draw one per request;
// load generators (cmd/bench -serve-load) hold one per worker and
// call the *Bytes entry points directly.
type Scratch struct {
	// In receives the request body (capacity reused across requests).
	In []byte
	// Out receives the rendered response body.
	Out []byte
	// Decision is filled by the decide path.
	Decision selector.Decision
}

// New builds a Server over the given store.
func New(cfg Config) *Server {
	if cfg.Store == nil {
		panic("serve: Config.Store is required")
	}
	now := cfg.Now
	if now == nil {
		start := time.Now()
		now = func() time.Duration { return time.Since(start) }
	}
	s := &Server{store: cfg.Store, now: now}
	s.scratch.New = func() any {
		return &Scratch{In: make([]byte, 0, 512), Out: make([]byte, 0, 512)}
	}
	return s
}

// GetScratch draws a pooled Scratch (pair with PutScratch).
func (s *Server) GetScratch() *Scratch { return s.scratch.Get().(*Scratch) }

// PutScratch returns a Scratch to the pool.
func (s *Server) PutScratch(sc *Scratch) { s.scratch.Put(sc) }

// Handler returns the service mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/decide", s.handleDecide)
	mux.HandleFunc("POST /v1/telemetry", s.handleTelemetry)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	return mux
}

// Static response bodies (written verbatim; no per-request rendering).
var (
	errBadRequest   = []byte(`{"error":"bad request"}` + "\n")
	errUnknownSite  = []byte(`{"error":"unknown site"}` + "\n")
	okHealthz       = []byte(`{"ok":true}` + "\n")
	drainingHealthz = []byte(`{"ok":false,"draining":true}` + "\n")
)

// readBody fills sc.In with the request body, reusing its capacity.
func readBody(r *http.Request, sc *Scratch) bool {
	sc.In = sc.In[:0]
	for {
		if len(sc.In) >= maxBody {
			return false
		}
		if cap(sc.In) == len(sc.In) {
			sc.In = append(sc.In, 0)[:len(sc.In)]
		}
		n, err := r.Body.Read(sc.In[len(sc.In):cap(sc.In)])
		sc.In = sc.In[:len(sc.In)+n]
		if err == io.EOF {
			return true
		}
		if err != nil {
			return false
		}
	}
}

func (s *Server) handleDecide(w http.ResponseWriter, r *http.Request) {
	sc := s.GetScratch()
	defer s.PutScratch(sc)
	status := http.StatusBadRequest
	if readBody(r, sc) {
		status = s.DecideBytes(sc.In, sc)
	} else {
		sc.Out = append(sc.Out[:0], errBadRequest...)
	}
	writeJSON(w, status, sc.Out)
}

func (s *Server) handleTelemetry(w http.ResponseWriter, r *http.Request) {
	sc := s.GetScratch()
	defer s.PutScratch(sc)
	status := http.StatusBadRequest
	if readBody(r, sc) {
		status = s.TelemetryBytes(sc.In, sc)
	} else {
		sc.Out = append(sc.Out[:0], errBadRequest...)
	}
	if status == http.StatusNoContent {
		w.WriteHeader(status)
		return
	}
	writeJSON(w, status, sc.Out)
}

func writeJSON(w http.ResponseWriter, status int, body []byte) {
	h := w.Header()
	h.Set("Content-Type", "application/json")
	h.Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(status)
	w.Write(body)
}

// DecideBytes is the decide hot path: parse the request from body,
// evaluate the store's policy, and render the decision into sc.Out.
// It returns the HTTP status (200, 400 or 404) and is allocation-free
// once sc is warm — the AllocsPerRun pin in serve_test.go and the
// serve/* benchmark gate enforce exactly this function.
//
//multinet:hotpath
func (s *Server) DecideBytes(body []byte, sc *Scratch) int {
	var site []byte
	flowBytes := -1
	scan := newJSONScan(body)
	for {
		key, ok := scan.next()
		if !ok {
			break
		}
		switch {
		case keyIs(key, "site"):
			site, ok = scan.str()
		case keyIs(key, "flow_bytes"):
			flowBytes, ok = scan.intNum()
		default:
			scan.skipValue()
		}
		if !ok || scan.err {
			break
		}
	}
	if scan.err || len(site) == 0 || flowBytes < 0 {
		s.badRequests.Add(1)
		sc.Out = append(sc.Out[:0], errBadRequest...) //lint:allow hotpath malformed-request cold path; capacity is amortised by the pooled Scratch
		return http.StatusBadRequest
	}
	if !s.store.Decide(site, flowBytes, s.now(), &sc.Decision) {
		s.unknownSite.Add(1)
		sc.Out = append(sc.Out[:0], errUnknownSite...) //lint:allow hotpath unknown-site cold path; capacity is amortised by the pooled Scratch
		return http.StatusNotFound
	}
	s.decides.Add(1)
	s.renderDecision(sc, site)
	return http.StatusOK
}

// renderDecision appends the decision JSON to sc.Out.
//
//multinet:hotpath
func (s *Server) renderDecision(sc *Scratch, site []byte) {
	d := &sc.Decision
	out := sc.Out[:0]
	out = append(out, `{"site":`...)
	out = appendJSONString(out, string(site)) //lint:allow hotpath the conversion is stack-allocated: appendJSONString does not retain its argument
	out = append(out, `,"paths":[`...)
	for i, p := range d.Paths {
		if i > 0 {
			out = append(out, ',')
		}
		out = appendJSONString(out, p)
	}
	out = append(out, `],"use_mptcp":`...)
	if d.UseMPTCP {
		out = append(out, "true"...)
		out = append(out, `,"cc":`...)
		out = appendJSONString(out, d.CC.String())
		out = append(out, `,"scheduler":`...)
		out = appendJSONString(out, d.Scheduler)
	} else {
		out = append(out, "false"...)
	}
	out = append(out, `,"disparity":`...)
	// An undefined disparity (single path, dead path) serialises as
	// null rather than the sentinel's nonsense magnitude.
	if d.PairDisparity >= 1e8 {
		out = append(out, "null"...)
	} else {
		out = appendFloat(out, d.PairDisparity)
	}
	out = append(out, `,"rationale":`...)
	out = appendJSONString(out, d.Rationale)
	out = append(out, '}', '\n')
	sc.Out = out
}

// TelemetryBytes is the ingest hot path: parse one sample and fold it
// into the store. Returns 204 on success, 400 on a malformed body.
// Allocation-free in the steady state (a site or path seen for the
// first time allocates its interned copy, once).
//
//multinet:hotpath
func (s *Server) TelemetryBytes(body []byte, sc *Scratch) int {
	var site, path []byte
	mbps, rtt := -1.0, -1.0
	scan := newJSONScan(body)
	for {
		key, ok := scan.next()
		if !ok {
			break
		}
		switch {
		case keyIs(key, "site"):
			site, ok = scan.str()
		case keyIs(key, "path"):
			path, ok = scan.str()
		case keyIs(key, "mbps"):
			mbps, ok = scan.num()
		case keyIs(key, "rtt_ms"):
			rtt, ok = scan.num()
		default:
			scan.skipValue()
		}
		if !ok || scan.err {
			break
		}
	}
	if scan.err || len(site) == 0 || len(path) == 0 || mbps < 0 || rtt < 0 {
		s.badRequests.Add(1)
		sc.Out = append(sc.Out[:0], errBadRequest...) //lint:allow hotpath malformed-request cold path; capacity is amortised by the pooled Scratch
		return http.StatusBadRequest
	}
	s.store.Observe(site, path, mbps, time.Duration(rtt*float64(time.Millisecond)), s.now())
	s.telemetry.Add(1)
	return http.StatusNoContent
}

// StatsSnapshot returns the current counters.
func (s *Server) StatsSnapshot() Stats {
	return Stats{
		Decides:     s.decides.Load(),
		Telemetry:   s.telemetry.Load(),
		UnknownSite: s.unknownSite.Load(),
		BadRequests: s.badRequests.Load(),
		Sites:       s.store.Sites(),
		Shards:      s.store.ShardCount(),
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.StatsSnapshot()
	sc := s.GetScratch()
	defer s.PutScratch(sc)
	out := sc.Out[:0]
	out = append(out, `{"decides":`...)
	out = strconv.AppendUint(out, st.Decides, 10)
	out = append(out, `,"telemetry":`...)
	out = strconv.AppendUint(out, st.Telemetry, 10)
	out = append(out, `,"unknown_site":`...)
	out = strconv.AppendUint(out, st.UnknownSite, 10)
	out = append(out, `,"bad_requests":`...)
	out = strconv.AppendUint(out, st.BadRequests, 10)
	out = append(out, `,"sites":`...)
	out = strconv.AppendInt(out, int64(st.Sites), 10)
	out = append(out, `,"shards":`...)
	out = strconv.AppendInt(out, int64(st.Shards), 10)
	out = append(out, '}', '\n')
	sc.Out = out
	writeJSON(w, http.StatusOK, sc.Out)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, drainingHealthz)
		return
	}
	writeJSON(w, http.StatusOK, okHealthz)
}

// SetDraining marks the server as draining (or clears the mark):
// health checks answer 503 so orchestrators stop routing new traffic,
// while the data endpoints keep serving whatever still arrives during
// the shutdown grace window.
func (s *Server) SetDraining(on bool) { s.draining.Store(on) }

// Draining reports whether the server is in its shutdown drain window.
func (s *Server) Draining() bool { return s.draining.Load() }
