package serve

// Hand-rolled JSON scanning and rendering for the two request shapes
// the service accepts. encoding/json is out of the question on the
// decide hot path: Unmarshal allocates for every string field and
// reflects over the destination, and even Decoder.Token allocates per
// token. The requests are tiny flat objects with known keys, so a
// field iterator over the raw bytes covers them with zero allocations,
// and responses are appended into the pooled scratch buffer.
//
// Accepted subset: one JSON object of string/number/bool fields.
// Nested objects and arrays are rejected (no request shape uses
// them), \uXXXX escapes are rejected (site/path names are plain
// ASCII identifiers in every deployment this serves), and numbers
// follow the JSON grammar including exponents.

import "strconv"

// jsonScan iterates the fields of a flat JSON object. The zero value
// is invalid; start with newJSONScan.
type jsonScan struct {
	b   []byte
	i   int
	err bool
}

func newJSONScan(b []byte) jsonScan {
	s := jsonScan{b: b}
	s.ws()
	if s.i < len(s.b) && s.b[s.i] == '{' {
		s.i++
	} else {
		s.err = true
	}
	return s
}

// ws skips JSON whitespace.
func (s *jsonScan) ws() {
	for s.i < len(s.b) {
		switch s.b[s.i] {
		case ' ', '\t', '\n', '\r':
			s.i++
		default:
			return
		}
	}
}

// next advances to the next key, returning its bytes (unescaped in
// place only for the \" and \\ forms — see unescape) and true, or
// false at the object's end or on a syntax error (check s.err).
//
//multinet:hotpath
func (s *jsonScan) next() ([]byte, bool) {
	s.ws()
	if s.err || s.i >= len(s.b) {
		s.err = true
		return nil, false
	}
	switch s.b[s.i] {
	case '}':
		s.i++
		return nil, false
	case ',':
		s.i++
		s.ws()
	}
	key, ok := s.str()
	if !ok {
		return nil, false
	}
	s.ws()
	if s.i >= len(s.b) || s.b[s.i] != ':' {
		s.err = true
		return nil, false
	}
	s.i++
	s.ws()
	return key, true
}

// str parses the quoted string at the cursor, returning its contents.
// Escapes other than \" \\ \/ are rejected; those three are unescaped
// by shifting in place (the buffer is the request scratch, ours to
// mutate).
//
//multinet:hotpath
func (s *jsonScan) str() ([]byte, bool) {
	if s.i >= len(s.b) || s.b[s.i] != '"' {
		s.err = true
		return nil, false
	}
	s.i++
	start := s.i
	w := s.i // write cursor for in-place unescaping
	for s.i < len(s.b) {
		c := s.b[s.i]
		switch c {
		case '"':
			out := s.b[start:w]
			s.i++
			return out, true
		case '\\':
			s.i++
			if s.i >= len(s.b) {
				s.err = true
				return nil, false
			}
			switch s.b[s.i] {
			case '"', '\\', '/':
				s.b[w] = s.b[s.i]
			default:
				s.err = true // \n, \t, \uXXXX: not a path or site name
				return nil, false
			}
			w++
			s.i++
		default:
			s.b[w] = c
			w++
			s.i++
		}
	}
	s.err = true
	return nil, false
}

// skipValue consumes the value at the cursor (string, number, bool or
// null only — unknown keys with nested values reject the request).
//
//multinet:hotpath
func (s *jsonScan) skipValue() {
	if s.i >= len(s.b) {
		s.err = true
		return
	}
	switch c := s.b[s.i]; {
	case c == '"':
		s.str()
	case c == '-' || (c >= '0' && c <= '9'):
		s.num()
	case c == 't' || c == 'f' || c == 'n':
		for s.i < len(s.b) {
			switch s.b[s.i] {
			case ',', '}', ' ', '\t', '\n', '\r':
				return
			}
			s.i++
		}
	default:
		s.err = true
	}
}

// num parses the JSON number at the cursor without allocating:
// strconv.ParseFloat(string(b), ...) would heap-copy the bytes
// because its error path retains the string, so the mantissa and
// exponent are accumulated by hand.
//
//multinet:hotpath
func (s *jsonScan) num() (float64, bool) {
	neg := false
	if s.i < len(s.b) && s.b[s.i] == '-' {
		neg = true
		s.i++
	}
	start := s.i
	var mant float64
	for s.i < len(s.b) && s.b[s.i] >= '0' && s.b[s.i] <= '9' {
		mant = mant*10 + float64(s.b[s.i]-'0')
		s.i++
	}
	if s.i == start {
		s.err = true
		return 0, false
	}
	scale := 0
	if s.i < len(s.b) && s.b[s.i] == '.' {
		s.i++
		fs := s.i
		for s.i < len(s.b) && s.b[s.i] >= '0' && s.b[s.i] <= '9' {
			mant = mant*10 + float64(s.b[s.i]-'0')
			scale--
			s.i++
		}
		if s.i == fs {
			s.err = true
			return 0, false
		}
	}
	if s.i < len(s.b) && (s.b[s.i] == 'e' || s.b[s.i] == 'E') {
		s.i++
		eneg := false
		switch {
		case s.i < len(s.b) && s.b[s.i] == '-':
			eneg = true
			s.i++
		case s.i < len(s.b) && s.b[s.i] == '+':
			s.i++
		}
		es := s.i
		exp := 0
		for s.i < len(s.b) && s.b[s.i] >= '0' && s.b[s.i] <= '9' && exp < 1000 {
			exp = exp*10 + int(s.b[s.i]-'0')
			s.i++
		}
		if s.i == es {
			s.err = true
			return 0, false
		}
		if eneg {
			exp = -exp
		}
		scale += exp
	}
	// Dividing (rather than multiplying by a reciprocal) keeps short
	// decimals exact: 125/10 is 12.5 on the nose, 125*0.1 is not.
	var v float64
	if scale < 0 {
		v = mant / pow10(-scale)
	} else {
		v = mant * pow10(scale)
	}
	if neg {
		v = -v
	}
	return v, true
}

// pow10 returns 10^n (n >= 0) through repeated squaring on a float
// base — exact for the n <= 22 every real request uses, and
// monotonically saturating beyond the float range.
func pow10(n int) float64 {
	p, base := 1.0, 10.0
	for n > 0 {
		if n&1 == 1 {
			p *= base
		}
		base *= base
		n >>= 1
	}
	return p
}

// intNum parses the number at the cursor as a non-negative int
// (fractions and negatives reject — flow sizes are byte counts).
//
//multinet:hotpath
func (s *jsonScan) intNum() (int, bool) {
	start := s.i
	n := 0
	for s.i < len(s.b) && s.b[s.i] >= '0' && s.b[s.i] <= '9' {
		d := int(s.b[s.i] - '0')
		if n > (1<<62)/10 {
			s.err = true
			return 0, false
		}
		n = n*10 + d
		s.i++
	}
	if s.i == start {
		s.err = true
		return 0, false
	}
	if s.i < len(s.b) {
		switch s.b[s.i] {
		case '.', 'e', 'E', '-':
			s.err = true
			return 0, false
		}
	}
	return n, true
}

// keyIs compares a scanned key against a literal without conversion.
func keyIs(key []byte, lit string) bool {
	return string(key) == lit // compiler elides the conversion for ==
}

// appendJSONString appends s as a quoted JSON string, escaping the
// two characters (quote, backslash) that site and path identifiers
// could legally smuggle in; control characters are dropped rather
// than escaped (they cannot appear in accepted requests, which reject
// escape forms other than \" \\ \/).
//
//multinet:hotpath
func appendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			dst = append(dst, '\\', c)
		case c >= 0x20:
			dst = append(dst, c)
		}
	}
	return append(dst, '"')
}

// appendFloat appends v with enough precision for estimate ratios
// (three decimals) — AppendFloat writes into the provided buffer, so
// the pooled scratch absorbs it without allocation.
//
//multinet:hotpath
func appendFloat(dst []byte, v float64) []byte {
	return strconv.AppendFloat(dst, v, 'f', 3, 64)
}
