package serve

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"multinet/internal/selector"
)

// fakeClock is the injected monotonic time source for decay tests.
type fakeClock struct{ at time.Duration }

func (c *fakeClock) now() time.Duration { return c.at }

func newTestServer(cfg selector.StoreConfig) (*Server, *fakeClock) {
	clk := &fakeClock{at: time.Second}
	s := New(Config{Store: selector.NewStore(cfg), Now: clk.now})
	return s, clk
}

func post(t *testing.T, h http.Handler, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func get(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func TestServeRoundTrip(t *testing.T) {
	s, _ := newTestServer(selector.StoreConfig{})
	h := s.Handler()

	if w := post(t, h, "/v1/telemetry", `{"site":"cdn","path":"wifi","mbps":12.5,"rtt_ms":25}`); w.Code != http.StatusNoContent {
		t.Fatalf("telemetry status = %d, body %q", w.Code, w.Body.String())
	}
	if w := post(t, h, "/v1/telemetry", `{"site":"cdn","path":"lte","mbps":10,"rtt_ms":45}`); w.Code != http.StatusNoContent {
		t.Fatalf("telemetry status = %d", w.Code)
	}

	w := post(t, h, "/v1/decide", `{"site":"cdn","flow_bytes":5242880}`)
	if w.Code != http.StatusOK {
		t.Fatalf("decide status = %d, body %q", w.Code, w.Body.String())
	}
	if ct := w.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content-type = %q", ct)
	}
	body := w.Body.String()
	for _, want := range []string{
		`"site":"cdn"`,
		`"paths":["wifi","lte"]`,
		`"use_mptcp":true`,
		`"cc":"decoupled"`,
		`"scheduler":"minsrtt"`,
		`"rationale":"aggregate"`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("decide body %q missing %q", body, want)
		}
	}

	// A short flow at the same site stays single-path.
	w = post(t, h, "/v1/decide", `{"site":"cdn","flow_bytes":1024}`)
	if !strings.Contains(w.Body.String(), `"use_mptcp":false`) ||
		!strings.Contains(w.Body.String(), `"rationale":"short-flow"`) {
		t.Fatalf("short-flow body = %q", w.Body.String())
	}
}

func TestServeUnknownSiteAndBadRequests(t *testing.T) {
	s, _ := newTestServer(selector.StoreConfig{})
	h := s.Handler()

	if w := post(t, h, "/v1/decide", `{"site":"ghost","flow_bytes":1}`); w.Code != http.StatusNotFound {
		t.Fatalf("unknown site status = %d", w.Code)
	}
	for _, body := range []string{
		``,
		`not json`,
		`{"flow_bytes":1}`,              // missing site
		`{"site":"s"}`,                  // missing flow_bytes
		`{"site":"s","flow_bytes":-1}`,  // negative
		`{"site":"s","flow_bytes":1.5}`, // fractional
		`{"site":"s","flow_bytes":1,"x":{"y":1}}`, // nested value
	} {
		if w := post(t, h, "/v1/decide", body); w.Code != http.StatusBadRequest {
			t.Fatalf("decide(%q) status = %d, want 400", body, w.Code)
		}
	}
	for _, body := range []string{
		`{"site":"s","path":"wifi","mbps":-1,"rtt_ms":25}`,
		`{"site":"s","path":"wifi","rtt_ms":25}`,
		`{"site":"s","mbps":5,"rtt_ms":25}`,
	} {
		if w := post(t, h, "/v1/telemetry", body); w.Code != http.StatusBadRequest {
			t.Fatalf("telemetry(%q) status = %d, want 400", body, w.Code)
		}
	}
	// Method mismatches 405 via the Go 1.22 mux patterns.
	if w := get(t, h, "/v1/decide"); w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/decide status = %d", w.Code)
	}

	st := s.StatsSnapshot()
	if st.UnknownSite != 1 || st.BadRequests != 10 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestServeDecayUnderInjectedClock drives the service clock by hand:
// a path whose telemetry goes silent decays until the disparity gate
// flips the site from MPTCP to single-path on the fresh path.
func TestServeDecayUnderInjectedClock(t *testing.T) {
	s, clk := newTestServer(selector.StoreConfig{HalfLife: 10 * time.Second})
	h := s.Handler()

	post(t, h, "/v1/telemetry", `{"site":"cdn","path":"wifi","mbps":8,"rtt_ms":20}`)
	post(t, h, "/v1/telemetry", `{"site":"cdn","path":"lte","mbps":8,"rtt_ms":40}`)

	w := post(t, h, "/v1/decide", `{"site":"cdn","flow_bytes":5242880}`)
	if !strings.Contains(w.Body.String(), `"use_mptcp":true`) {
		t.Fatalf("fresh pair should use MPTCP: %q", w.Body.String())
	}

	// WiFi goes silent; LTE keeps reporting for 40 virtual seconds.
	for i := 0; i < 40; i++ {
		clk.at += time.Second
		post(t, h, "/v1/telemetry", `{"site":"cdn","path":"lte","mbps":8,"rtt_ms":40}`)
	}
	w = post(t, h, "/v1/decide", `{"site":"cdn","flow_bytes":5242880}`)
	body := w.Body.String()
	if !strings.Contains(body, `"use_mptcp":false`) || !strings.Contains(body, `"paths":["lte","wifi"]`) {
		t.Fatalf("stale wifi should fall back to single-path lte: %q", body)
	}
	if !strings.Contains(body, `"rationale":"disparity"`) {
		t.Fatalf("rationale missing: %q", body)
	}
}

// TestServeShardIndependence holds one shard's lock and proves traffic
// for a site on another shard still completes through the HTTP layer.
func TestServeShardIndependence(t *testing.T) {
	s, _ := newTestServer(selector.StoreConfig{Shards: 4})
	h := s.Handler()

	post(t, h, "/v1/telemetry", `{"site":"site-a","path":"wifi","mbps":5,"rtt_ms":20}`)
	post(t, h, "/v1/telemetry", `{"site":"site-b","path":"wifi","mbps":5,"rtt_ms":20}`)

	unlock, cross := s.store.LockSiteShard([]byte("site-a"), []byte("site-b"))
	if !cross {
		t.Skip("site-a and site-b hash to the same shard in this build")
	}
	done := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		done <- post(t, h, "/v1/decide", `{"site":"site-b","flow_bytes":1048576}`)
	}()
	select {
	case w := <-done:
		if w.Code != http.StatusOK {
			t.Errorf("cross-shard decide status = %d", w.Code)
		}
	case <-time.After(5 * time.Second):
		t.Error("decide on an unrelated shard blocked by a held lock")
	}
	unlock()
}

func TestServeStatsAndHealth(t *testing.T) {
	s, _ := newTestServer(selector.StoreConfig{Shards: 8})
	h := s.Handler()
	post(t, h, "/v1/telemetry", `{"site":"cdn","path":"wifi","mbps":5,"rtt_ms":20}`)
	post(t, h, "/v1/decide", `{"site":"cdn","flow_bytes":1048576}`)

	w := get(t, h, "/v1/healthz")
	if w.Code != http.StatusOK || w.Body.String() != `{"ok":true}`+"\n" {
		t.Fatalf("healthz = %d %q", w.Code, w.Body.String())
	}
	w = get(t, h, "/v1/stats")
	body := w.Body.String()
	for _, want := range []string{`"decides":1`, `"telemetry":1`, `"sites":1`, `"shards":8`} {
		if !strings.Contains(body, want) {
			t.Fatalf("stats %q missing %q", body, want)
		}
	}
}

func TestServeDrainingHealth(t *testing.T) {
	// Graceful degradation: once shutdown begins, the health check
	// flips to 503/draining so balancers stop routing here, while the
	// data endpoints keep answering in-flight traffic.
	s, _ := newTestServer(selector.StoreConfig{Shards: 8})
	h := s.Handler()
	s.SetDraining(true)
	w := get(t, h, "/v1/healthz")
	if w.Code != http.StatusServiceUnavailable || !strings.Contains(w.Body.String(), `"draining":true`) {
		t.Fatalf("draining healthz = %d %q", w.Code, w.Body.String())
	}
	post(t, h, "/v1/telemetry", `{"site":"cdn","path":"wifi","mbps":5,"rtt_ms":20}`)
	w = post(t, h, "/v1/decide", `{"site":"cdn","flow_bytes":1048576}`)
	if w.Code != http.StatusOK {
		t.Fatalf("decide while draining = %d, want 200", w.Code)
	}
	s.SetDraining(false)
	if w := get(t, h, "/v1/healthz"); w.Code != http.StatusOK {
		t.Fatalf("healthz after drain cleared = %d", w.Code)
	}
}

func TestServeEscapedStrings(t *testing.T) {
	s, _ := newTestServer(selector.StoreConfig{})
	h := s.Handler()
	post(t, h, "/v1/telemetry", `{"site":"a\"b","path":"wifi","mbps":5,"rtt_ms":20}`)
	w := post(t, h, "/v1/decide", `{"site":"a\"b","flow_bytes":1048576}`)
	if w.Code != http.StatusOK {
		t.Fatalf("escaped site name round-trip failed: %d %q", w.Code, w.Body.String())
	}
	if !strings.Contains(w.Body.String(), `"site":"a\"b"`) {
		t.Fatalf("response did not re-escape the site name: %q", w.Body.String())
	}
	// \uXXXX escapes are outside the accepted subset.
	if w := post(t, h, "/v1/decide", `{"site":"a\u0062b","flow_bytes":1}`); w.Code != http.StatusBadRequest {
		t.Fatalf("unicode escape accepted: %d", w.Code)
	}
}

// TestDecideBytesZeroAlloc pins the whole decide hot path — parse,
// store lookup with decay, policy, JSON render — at zero allocations
// in the steady state. This is the contract the serve/* bench gate
// holds in CI.
func TestDecideBytesZeroAlloc(t *testing.T) {
	s, _ := newTestServer(selector.StoreConfig{})
	sc := s.GetScratch()
	defer s.PutScratch(sc)

	tsc := s.GetScratch()
	s.TelemetryBytes(append(tsc.In[:0], `{"site":"cdn","path":"wifi","mbps":12.5,"rtt_ms":25}`...), tsc)
	s.TelemetryBytes(append(tsc.In[:0], `{"site":"cdn","path":"lte","mbps":10,"rtt_ms":45}`...), tsc)
	s.PutScratch(tsc)

	req := []byte(`{"site":"cdn","flow_bytes":5242880}`)
	body := make([]byte, len(req))
	if s.DecideBytes(append(body[:0], req...), sc) != http.StatusOK { // warm
		t.Fatalf("warmup decide failed: %q", sc.Out)
	}
	if n := testing.AllocsPerRun(500, func() {
		copy(body, req) // str() unescapes in place; restore the request
		if s.DecideBytes(body, sc) != http.StatusOK {
			t.Fatal("decide failed mid-measurement")
		}
	}); n != 0 {
		t.Fatalf("steady-state DecideBytes allocates %v/op, want 0", n)
	}
}

func TestTelemetryBytesZeroAllocSteadyState(t *testing.T) {
	s, _ := newTestServer(selector.StoreConfig{})
	sc := s.GetScratch()
	defer s.PutScratch(sc)
	req := []byte(`{"site":"cdn","path":"wifi","mbps":12.5,"rtt_ms":25}`)
	body := make([]byte, len(req))
	copy(body, req)
	if s.TelemetryBytes(body, sc) != http.StatusNoContent { // warm: interns site+path
		t.Fatal("warmup telemetry failed")
	}
	if n := testing.AllocsPerRun(500, func() {
		copy(body, req)
		if s.TelemetryBytes(body, sc) != http.StatusNoContent {
			t.Fatal("telemetry failed mid-measurement")
		}
	}); n != 0 {
		t.Fatalf("steady-state TelemetryBytes allocates %v/op, want 0", n)
	}
}
