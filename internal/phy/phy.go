// Package phy models the physical-layer behaviour of the WiFi and LTE
// paths the paper measured: per-location mean rates, RTTs, loss, and a
// stochastic rate process that drives Mahimahi-style delivery-
// opportunity links (the paper's Section 5 emulation method).
//
// This package is the substitution for the paper's physical testbed
// (two tethered phones at 20 US locations, Verizon/Sprint LTE): each
// location is a calibrated profile whose aggregate statistics span the
// same ranges as the paper's Fig. 6 CDFs. All randomness draws from
// named simnet streams, so a given (seed, location) is reproducible.
//
// Radios are instances of registered models (RegisterRadioModel /
// Radio): a model fixes the technology-specific parameters (buffer
// depth, RRC promotion) and a per-instance calibration supplies the
// measured rates. A Condition holds any number of named paths
// (PathSet), so a second LTE carrier or a second AP is just another
// instance; the WiFi/LTE pair fields remain the classic testbed.
package phy

import (
	"math"
	"time"

	"multinet/internal/netem"
	"multinet/internal/simnet"
)

// PathProfile describes one radio path (e.g. the WiFi path at one
// location) in both directions.
type PathProfile struct {
	// DownMbps and UpMbps are the mean link rates.
	DownMbps, UpMbps float64
	// RTTms is the base (unloaded) round-trip time in milliseconds;
	// each direction gets half as propagation delay.
	RTTms float64
	// LossPct is the i.i.d. packet loss probability in percent.
	LossPct float64
	// Variability is the standard deviation of the log-rate AR(1)
	// process (0 = constant-rate link). 0.3 means the instantaneous
	// rate typically wanders within roughly ±30% of the mean.
	Variability float64
	// QueuePkts is the bottleneck buffer in packets (LTE is typically
	// much deeper — bufferbloat).
	QueuePkts int
	// PromotionMs is the radio wake-up (RRC promotion) latency paid by
	// the first uplink packet after PromotionIdle of silence. Cellular
	// radios pay hundreds of milliseconds; WiFi effectively none.
	PromotionMs float64
	// PromotionIdleSecs is the silence needed before the next send pays
	// PromotionMs again (default 10 s when PromotionMs > 0).
	PromotionIdleSecs float64
}

func (p PathProfile) queue() int {
	if p.QueuePkts > 0 {
		return p.QueuePkts
	}
	return netem.DefaultQueueLimit
}

// OWD returns the one-way propagation delay.
func (p PathProfile) OWD() time.Duration {
	return time.Duration(p.RTTms/2*1000) * time.Microsecond
}

// PingRTT draws one ping RTT sample in milliseconds: the base RTT plus
// lognormal jitter scaled by Variability.
func (p PathProfile) PingRTT(rng interface{ NormFloat64() float64 }) float64 {
	jitter := math.Exp(rng.NormFloat64() * p.Variability * 0.5) // median 1
	return p.RTTms * jitter
}

// ARRateSource is a delivery-opportunity source whose instantaneous
// rate follows an AR(1) process in log space, updated every Epoch. It
// is the synthetic stand-in for Mahimahi's recorded packet-delivery
// traces: bursty, time-varying, but with a controlled mean.
type ARRateSource struct {
	MeanBps float64
	Sigma   float64 // stddev of the stationary log-rate distribution
	Rho     float64 // AR(1) coefficient per epoch
	Epoch   time.Duration

	rng       interface{ NormFloat64() float64 }
	logDev    float64 // current deviation from log mean
	lastEpoch int64
}

// NewARRateSource builds a rate process around meanMbps with the given
// variability (stationary sigma of log rate). rho defaults to 0.9 per
// 100 ms epoch, giving correlation times of about a second, comparable
// to real wireless rate traces.
func NewARRateSource(sim *simnet.Sim, stream string, meanMbps, variability float64) *ARRateSource {
	return &ARRateSource{
		MeanBps: meanMbps * 1e6,
		Sigma:   variability,
		Rho:     0.9,
		Epoch:   100 * time.Millisecond,
		rng:     sim.RNG(stream),
	}
}

// rate returns the instantaneous rate after advancing the AR process to
// the epoch containing t.
func (s *ARRateSource) rate(t time.Duration) float64 {
	epoch := int64(t / s.Epoch)
	for s.lastEpoch < epoch {
		// Innovation variance chosen so the stationary stddev is Sigma.
		innov := s.Sigma * math.Sqrt(1-s.Rho*s.Rho)
		s.logDev = s.Rho*s.logDev + innov*s.rng.NormFloat64()
		s.lastEpoch++
	}
	// exp(-Sigma^2/2) corrects the lognormal mean back to MeanBps.
	r := s.MeanBps * math.Exp(s.logDev-s.Sigma*s.Sigma/2)
	if min := s.MeanBps * 0.05; r < min {
		r = min // radios rarely drop to true zero; keep progress
	}
	return r
}

// Next implements netem.OpportunitySource: MTU-sized slots spaced by
// the current instantaneous rate.
func (s *ARRateSource) Next(after time.Duration) time.Duration {
	r := s.rate(after)
	gap := time.Duration(float64(netem.MTU*8) / r * float64(time.Second))
	if gap <= 0 {
		gap = time.Microsecond
	}
	return after + gap
}

// BuildIface constructs a duplex interface for a path profile. With
// Variability == 0 it uses constant-rate links; otherwise trace-style
// VarLinks driven by independent AR rate processes per direction.
func BuildIface(sim *simnet.Sim, name string, p PathProfile) *netem.Iface {
	mk := func(dir string, mbps float64) netem.Link {
		cfg := netem.LinkConfig{
			PropDelay:  p.OWD(),
			QueueLimit: p.queue(),
			LossProb:   p.LossPct / 100,
			RNG:        sim.RNG("phy/loss/" + name + "/" + dir),
		}
		if p.Variability <= 0 {
			return netem.NewFixedLink(sim, mbps, cfg)
		}
		src := NewARRateSource(sim, "phy/rate/"+name+"/"+dir, mbps, p.Variability)
		return netem.NewVarLink(sim, src, cfg)
	}
	up := mk("up", p.UpMbps)
	down := mk("down", p.DownMbps)
	iface := netem.NewIface(sim, name, up, down)
	if p.PromotionMs > 0 {
		idle := p.PromotionIdleSecs
		if idle <= 0 {
			idle = 10
		}
		iface.SetPromotion(
			time.Duration(p.PromotionMs*float64(time.Millisecond)),
			time.Duration(idle*float64(time.Second)))
	}
	return iface
}

// Path is one named radio path of a multi-homed client: the interface
// name the transport layers address it by, plus its calibrated
// profile.
type Path struct {
	Name    string
	Profile PathProfile
}

// Condition is one emulated network condition: the set of radio paths
// a measurement run or a replay sees. The WiFi/LTE pair fields are the
// paper's classic two-path testbed; Paths, when non-empty, describes
// an arbitrary path set (dual-LTE, dual-WLAN, three-path, ...) and
// takes precedence.
type Condition struct {
	Name string
	WiFi PathProfile
	LTE  PathProfile
	// Paths is the general N-path form. Leave empty for the classic
	// {wifi, lte} pair built from the fields above.
	Paths []Path
}

// NewCondition builds an N-path condition. Path order is significant:
// it is the host attachment order, hence the probe order and the
// tie-break preference everywhere above.
func NewCondition(name string, paths ...Path) Condition {
	if len(paths) == 0 {
		panic("phy: NewCondition needs at least one path")
	}
	return Condition{Name: name, Paths: paths}
}

// PathSet returns the condition's paths in attachment order: the
// explicit Paths list, or the classic {wifi, lte} pair.
func (c Condition) PathSet() []Path {
	if len(c.Paths) > 0 {
		return c.Paths
	}
	return []Path{{Name: "wifi", Profile: c.WiFi}, {Name: "lte", Profile: c.LTE}}
}

// BuildHost wires a multi-homed client host with one interface per
// path of the condition.
func BuildHost(sim *simnet.Sim, c Condition) *netem.Host {
	h := netem.NewHost("client")
	for _, p := range c.PathSet() {
		h.Attach(BuildIface(sim, p.Name, p.Profile))
	}
	return h
}
