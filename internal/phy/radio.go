package phy

import (
	"fmt"
	"sort"
	"sync"
)

// RadioCalib holds the per-instance calibration knobs every radio
// model accepts: the measured mean rates, base RTT, loss rate, and
// rate variability of one concrete radio (one AP, one carrier).
type RadioCalib struct {
	DownMbps, UpMbps float64
	RTTms            float64
	LossPct          float64
	Variability      float64
}

// RadioModel turns a calibration into a full path profile by fixing
// the technology-specific parameters a calibration does not capture
// (bottleneck buffer depth, RRC promotion latency).
type RadioModel func(RadioCalib) PathProfile

var (
	radioMu     sync.Mutex
	radioModels = map[string]RadioModel{}
)

// RegisterRadioModel adds a radio technology to the model registry.
// Registering a duplicate name panics: models are package-level
// calibration constants, not runtime state.
func RegisterRadioModel(name string, m RadioModel) {
	radioMu.Lock()
	defer radioMu.Unlock()
	if name == "" {
		panic("phy: RegisterRadioModel with empty name")
	}
	if m == nil {
		panic("phy: RegisterRadioModel with nil model: " + name)
	}
	if _, dup := radioModels[name]; dup {
		panic("phy: duplicate radio model " + name)
	}
	radioModels[name] = m
}

// Radio instantiates a registered radio model with a calibration. A
// second LTE carrier or a second AP is just another instance: same
// model name, its own calibration, attached under its own path name.
func Radio(model string, c RadioCalib) PathProfile {
	radioMu.Lock()
	m, ok := radioModels[model]
	radioMu.Unlock()
	if !ok {
		panic(fmt.Sprintf("phy: unknown radio model %q (have %v)", model, RadioModelNames()))
	}
	return m(c)
}

// RadioModelNames returns the registered model names, sorted.
func RadioModelNames() []string {
	radioMu.Lock()
	defer radioMu.Unlock()
	out := make([]string, 0, len(radioModels))
	for n := range radioModels {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func init() {
	// The two technologies the paper measured. "wifi" fixes the shallow
	// AP buffer; "lte" fixes the deep eNodeB buffer (bufferbloat) and
	// the RRC promotion latency of a cold cellular radio.
	RegisterRadioModel("wifi", func(c RadioCalib) PathProfile {
		return wifi(c.DownMbps, c.UpMbps, c.RTTms, c.LossPct, c.Variability)
	})
	RegisterRadioModel("lte", func(c RadioCalib) PathProfile {
		return lte(c.DownMbps, c.UpMbps, c.RTTms, c.LossPct, c.Variability)
	})
}
