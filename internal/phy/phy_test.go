package phy

import (
	"testing"
	"testing/quick"
	"time"

	"multinet/internal/netem"
	"multinet/internal/simnet"
)

func TestARRateSourceMeanRate(t *testing.T) {
	sim := simnet.New(1)
	src := NewARRateSource(sim, "r", 10, 0.3)
	// Count opportunities over 60 virtual seconds.
	n := 0
	var tm time.Duration
	for tm < 60*time.Second {
		tm = src.Next(tm)
		n++
	}
	gotMbps := float64(n) * netem.MTU * 8 / 60 / 1e6
	if gotMbps < 8 || gotMbps > 12 {
		t.Fatalf("mean opportunity rate %.2f Mbit/s, want ~10", gotMbps)
	}
}

func TestARRateSourceVariability(t *testing.T) {
	sim := simnet.New(2)
	src := NewARRateSource(sim, "r", 10, 0.5)
	// The per-epoch instantaneous rate should wander noticeably.
	var rates []float64
	for i := 0; i < 400; i++ {
		rates = append(rates, src.rate(time.Duration(i)*100*time.Millisecond)/1e6)
	}
	min, max := rates[0], rates[0]
	for _, r := range rates {
		if r < min {
			min = r
		}
		if r > max {
			max = r
		}
	}
	if max/min < 2 {
		t.Fatalf("rate range [%.2f, %.2f] too tight for variability 0.5", min, max)
	}
}

func TestARRateSourceDeterministic(t *testing.T) {
	run := func() []time.Duration {
		sim := simnet.New(7)
		src := NewARRateSource(sim, "r", 5, 0.4)
		var ts []time.Duration
		var tm time.Duration
		for i := 0; i < 200; i++ {
			tm = src.Next(tm)
			ts = append(ts, tm)
		}
		return ts
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("diverged at %d", i)
		}
	}
}

func TestARRateSourceMonotone(t *testing.T) {
	f := func(seed int64, steps uint8) bool {
		sim := simnet.New(seed)
		src := NewARRateSource(sim, "r", 8, 0.4)
		var tm time.Duration
		for i := 0; i < int(steps)+1; i++ {
			next := src.Next(tm)
			if next <= tm {
				return false
			}
			tm = next
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBuildIfaceCarriesTraffic(t *testing.T) {
	sim := simnet.New(3)
	p := PathProfile{DownMbps: 8, UpMbps: 3, RTTms: 50, LossPct: 0.5, Variability: 0.3, QueuePkts: 100}
	iface := BuildIface(sim, "wifi", p)
	var downBytes int64
	iface.OnClientRecv(func(pk *netem.Packet) { downBytes += int64(pk.Size) })
	iface.OnServerRecv(func(pk *netem.Packet) {})
	// Offer 60 seconds of saturating downlink traffic (long enough to
	// average over the AR(1) rate process).
	var offer func()
	offer = func() {
		iface.SendDown(netem.MTU, nil)
		iface.SendDown(netem.MTU, nil)
		if sim.Now() < 60*time.Second {
			sim.After(time.Millisecond, offer)
		}
	}
	sim.After(0, offer)
	sim.Run()
	mbps := float64(downBytes) * 8 / sim.Now().Seconds() / 1e6
	if mbps < 6 || mbps > 10 {
		t.Fatalf("downlink carried %.2f Mbit/s, want ~8 (the profile mean)", mbps)
	}
}

func TestOWD(t *testing.T) {
	p := PathProfile{RTTms: 60}
	if got := p.OWD(); got != 30*time.Millisecond {
		t.Fatalf("OWD = %v, want 30ms", got)
	}
}

func TestPingRTTPositiveAndCentered(t *testing.T) {
	sim := simnet.New(4)
	p := PathProfile{RTTms: 80, Variability: 0.4}
	rng := sim.RNG("ping")
	var sum float64
	const n = 2000
	for i := 0; i < n; i++ {
		r := p.PingRTT(rng)
		if r <= 0 {
			t.Fatal("non-positive ping RTT")
		}
		sum += r
	}
	mean := sum / n
	if mean < 60 || mean > 110 {
		t.Fatalf("mean ping RTT %.1f, want ~80-90", mean)
	}
}

func TestLocationsTableShape(t *testing.T) {
	if len(Locations) != 20 {
		t.Fatalf("locations = %d, want 20 (paper Table 2)", len(Locations))
	}
	lteWins := 0
	lteRTTWins := 0
	for i, l := range Locations {
		if l.ID != i+1 {
			t.Fatalf("IDs must be 1..20 in order, got %d at %d", l.ID, i)
		}
		if l.WiFi.DownMbps <= 0 || l.LTE.DownMbps <= 0 {
			t.Fatalf("location %d has non-positive rates", l.ID)
		}
		if l.LTE.DownMbps > l.WiFi.DownMbps {
			lteWins++
		}
		if l.LTE.RTTms < l.WiFi.RTTms {
			lteRTTWins++
		}
	}
	// Calibration targets: 40% LTE throughput wins, 20% LTE RTT wins.
	if lteWins != 8 {
		t.Fatalf("LTE downlink wins at %d/20 sites, want 8 (40%%)", lteWins)
	}
	if lteRTTWins != 4 {
		t.Fatalf("LTE RTT wins at %d/20 sites, want 4 (20%%)", lteRTTWins)
	}
}

func TestLocationByIDPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unknown location")
		}
	}()
	LocationByID(99)
}

func TestRepresentativeLocations(t *testing.T) {
	if LocLTEMuchBetter.LTE.DownMbps < 3*LocLTEMuchBetter.WiFi.DownMbps {
		t.Fatal("LocLTEMuchBetter should have a large LTE advantage")
	}
	if LocWiFiBetter.WiFi.DownMbps <= LocWiFiBetter.LTE.DownMbps {
		t.Fatal("LocWiFiBetter should favour WiFi")
	}
	if len(CouplingStudyLocations) != 7 {
		t.Fatal("paper used 7 coupling-study locations")
	}
}

func TestBuildHost(t *testing.T) {
	sim := simnet.New(5)
	h := BuildHost(sim, LocationByID(1).Condition())
	if h.Iface("wifi") == nil || h.Iface("lte") == nil {
		t.Fatal("host missing interfaces")
	}
}
