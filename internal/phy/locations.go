package phy

import "fmt"

// Location is one of the paper's 20 MPTCP measurement sites (Table 2),
// with the radio profiles our calibration assigns to it.
type Location struct {
	ID   int
	City string
	Desc string
	WiFi PathProfile
	LTE  PathProfile
}

// Condition converts the location into an emulation condition.
func (l Location) Condition() Condition {
	return Condition{Name: fmt.Sprintf("loc%02d", l.ID), WiFi: l.WiFi, LTE: l.LTE}
}

// wifiQ and lteQ are the bottleneck buffer depths: LTE base stations
// buffer far deeper than WiFi APs (bufferbloat), a well-documented
// property of the paper-era networks.
const (
	wifiQ = 100
	lteQ  = 300
)

func wifi(down, up, rtt, losspct, varb float64) PathProfile {
	return PathProfile{DownMbps: down, UpMbps: up, RTTms: rtt, LossPct: losspct, Variability: varb, QueuePkts: wifiQ}
}

// lteRRCPromotionMs is the LTE IDLE→CONNECTED wake-up latency. ~260 ms
// is the commonly measured paper-era value; it delays the first uplink
// packet (SYN or MP_JOIN) on a cold cellular radio.
const lteRRCPromotionMs = 260

func lte(down, up, rtt, losspct, varb float64) PathProfile {
	return PathProfile{DownMbps: down, UpMbps: up, RTTms: rtt, LossPct: losspct,
		Variability: varb, QueuePkts: lteQ, PromotionMs: lteRRCPromotionMs}
}

// Locations reproduces the paper's Table 2 site list. The rate/RTT
// assignments are our calibration (the paper does not publish
// per-location link statistics): they are chosen so that
//
//   - LTE downlink beats WiFi at 8/20 sites (40%, the paper's headline),
//   - LTE RTT beats WiFi at 4/20 sites (20%, paper Fig. 4),
//   - the spread of Tput(WiFi)-Tput(LTE) spans roughly -15..+20 Mbit/s,
//     matching the support of the paper's Fig. 6 CDFs,
//   - venue descriptions make sense (crowded cafes and malls have poor
//     WiFi; hotel rooms and apartments have good WiFi).
var Locations = []Location{
	{ID: 1, City: "Amherst, MA", Desc: "University Campus, Indoor",
		WiFi: wifi(20, 8, 30, 0.3, 0.20), LTE: lte(8, 3, 65, 0.1, 0.25)},
	{ID: 2, City: "Amherst, MA", Desc: "University Campus, Outdoor",
		WiFi: wifi(3, 1.2, 55, 1.5, 0.40), LTE: lte(12, 6, 60, 0.2, 0.25)},
	{ID: 3, City: "Amherst, MA", Desc: "Cafe, Indoor",
		WiFi: wifi(2.5, 1.0, 55, 1.8, 0.45), LTE: lte(10, 5, 62, 0.2, 0.25)},
	{ID: 4, City: "Amherst, MA", Desc: "Downtown, Outdoor",
		WiFi: wifi(1.5, 0.7, 65, 2.0, 0.50), LTE: lte(9, 4, 70, 0.2, 0.30)},
	{ID: 5, City: "Amherst, MA", Desc: "Apartment, Indoor",
		WiFi: wifi(15, 5, 25, 0.4, 0.15), LTE: lte(6, 2.5, 75, 0.2, 0.30)},
	{ID: 6, City: "Boston, MA", Desc: "Cafe, Indoor",
		WiFi: wifi(8, 3, 45, 0.8, 0.30), LTE: lte(7, 3, 68, 0.2, 0.25)},
	{ID: 7, City: "Boston, MA", Desc: "Shopping Mall, Indoor",
		WiFi: wifi(2, 0.8, 95, 2.2, 0.50), LTE: lte(5, 2, 72, 0.3, 0.30)},
	{ID: 8, City: "Boston, MA", Desc: "Subway, Outdoor",
		WiFi: wifi(1, 0.5, 130, 2.5, 0.55), LTE: lte(4, 1.5, 85, 0.5, 0.40)},
	{ID: 9, City: "Boston, MA", Desc: "Airport, Indoor",
		WiFi: wifi(9, 3.5, 40, 0.7, 0.30), LTE: lte(8, 3.5, 66, 0.2, 0.25)},
	{ID: 10, City: "Boston, MA", Desc: "Apartment, Indoor",
		WiFi: wifi(18, 6, 22, 0.3, 0.15), LTE: lte(7, 3, 70, 0.2, 0.25)},
	{ID: 11, City: "Boston, MA", Desc: "Cafe, Indoor",
		WiFi: wifi(6, 2.5, 50, 0.9, 0.30), LTE: lte(5, 2, 74, 0.2, 0.25)},
	{ID: 12, City: "Boston, MA", Desc: "Downtown, Outdoor",
		WiFi: wifi(2, 1, 60, 1.8, 0.45), LTE: lte(11, 5, 64, 0.2, 0.25)},
	{ID: 13, City: "Boston, MA", Desc: "Store, Indoor",
		WiFi: wifi(6.5, 2.5, 48, 0.8, 0.30), LTE: lte(6, 2.8, 70, 0.2, 0.25)},
	{ID: 14, City: "Santa Barbara, CA", Desc: "Hotel Lobby, Indoor",
		WiFi: wifi(8, 3, 42, 0.7, 0.25), LTE: lte(4, 1.5, 78, 0.3, 0.30)},
	{ID: 15, City: "Santa Barbara, CA", Desc: "Hotel Room, Indoor",
		WiFi: wifi(12, 4, 30, 0.4, 0.20), LTE: lte(3, 1.2, 82, 0.3, 0.30)},
	// Conference WiFi: heavily contended — low rate, standing queues
	// from cross traffic (high base RTT), frequent collisions (loss).
	// This is the representative "LTE much better" site of Figs. 7a,
	// 9 and 11; the paper's own Fig. 9a shows a ~1 s WiFi handshake.
	{ID: 16, City: "Santa Barbara, CA", Desc: "Conference Room, Indoor",
		WiFi: wifi(0.8, 0.4, 250, 6.0, 0.60), LTE: lte(12, 5.5, 60, 0.2, 0.25)},
	{ID: 17, City: "Los Angeles, CA", Desc: "Airport, Indoor",
		WiFi: wifi(2.2, 1, 90, 2.0, 0.50), LTE: lte(10, 4.5, 68, 0.2, 0.25)},
	{ID: 18, City: "Washington, D.C.", Desc: "Hotel Room, Indoor",
		WiFi: wifi(9, 3.5, 35, 0.5, 0.25), LTE: lte(5, 2.2, 76, 0.2, 0.30)},
	{ID: 19, City: "Princeton, NJ", Desc: "Hotel Room, Indoor",
		WiFi: wifi(14, 5, 28, 0.4, 0.20), LTE: lte(6, 2.5, 72, 0.2, 0.25)},
	{ID: 20, City: "Philadelphia, PA", Desc: "Hotel Room, Indoor",
		WiFi: wifi(13, 4.5, 32, 0.5, 0.20), LTE: lte(12, 5, 62, 0.2, 0.25)},
}

// LocationByID returns the location with the given 1-based ID.
func LocationByID(id int) Location {
	for _, l := range Locations {
		if l.ID == id {
			return l
		}
	}
	panic(fmt.Sprintf("phy: no location %d", id))
}

// Representative sites used for the paper's single-location figures.
var (
	// LocLTEMuchBetter has a large LTE advantage (paper Figs. 7a, 9, 11).
	LocLTEMuchBetter = LocationByID(16)
	// LocWiFiBetter has a moderate WiFi advantage with comparable paths
	// (paper Figs. 7b, 10, 12).
	LocWiFiBetter = LocationByID(11)
)

// CouplingStudyLocations are the 7 sites where the paper measured all
// four MPTCP configurations (Section 3.5).
var CouplingStudyLocations = []int{2, 5, 8, 11, 14, 16, 19}
