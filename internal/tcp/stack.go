package tcp

import (
	"multinet/internal/netem"
	"multinet/internal/simnet"
)

// Side identifies which end of the client↔server paths a Stack sits on.
type Side int

// Stack sides.
const (
	ClientSide Side = iota
	ServerSide
)

// Stack demultiplexes segments arriving on one or more interfaces to
// connections by flow identifier, and creates passive connections on
// incoming SYNs (the listener role).
type Stack struct {
	sim   *simnet.Sim
	side  Side
	conns map[string]*Conn
	fluid *FluidDomain
	// Accept configures a passively-opened connection before its SYN is
	// processed (install callbacks, queue response data, ...). If nil,
	// incoming SYNs for unknown flows are dropped.
	Accept func(c *Conn)
}

// NewStack creates an empty stack.
func NewStack(sim *simnet.Sim, side Side) *Stack {
	return &Stack{sim: sim, side: side, conns: make(map[string]*Conn)}
}

// Bind attaches the stack to an interface so segments arriving on the
// stack's side are dispatched to connections.
func (s *Stack) Bind(iface *netem.Iface) {
	if s.side == ClientSide {
		iface.OnClientRecv(func(p *netem.Packet) { s.dispatch(iface, p) })
	} else {
		iface.OnServerRecv(func(p *netem.Packet) { s.dispatch(iface, p) })
	}
}

// sendDir returns the direction this stack's conns transmit in.
func (s *Stack) sendDir() netem.Direction {
	if s.side == ClientSide {
		return netem.Up
	}
	return netem.Down
}

// dispatch is the delivery sink of the pooled hot path: once the
// payload segment is extracted the packet is released, and after the
// connection has processed the segment it is recycled too. Handlers
// (and their callbacks) therefore must not retain the segment or
// anything aliased to it beyond the handle call — they copy the fields
// they need, as the MPTCP layer and capture taps do.
//
//multinet:hotpath
func (s *Stack) dispatch(iface *netem.Iface, p *netem.Packet) {
	seg, ok := p.Payload.(*Segment)
	if !ok {
		return
	}
	p.Payload = nil
	netem.ReleasePacket(p)
	c := s.conns[seg.Flow]
	if c == nil {
		if !seg.Flags.Has(FlagSYN) || seg.Flags.Has(FlagACK) || s.Accept == nil {
			seg.Recycle() // no listener / stray segment
			return
		}
		c = NewConn(s.sim, iface, s.sendDir(), seg.Flow, Config{})
		s.conns[seg.Flow] = c
		s.join(c)
		s.Accept(c)
	}
	c.handle(seg)
	seg.Recycle()
}

// Dial creates an active connection on the given interface and starts
// its handshake.
func (s *Stack) Dial(iface *netem.Iface, flow string, cfg Config) *Conn {
	if _, dup := s.conns[flow]; dup {
		panic("tcp: duplicate flow " + flow)
	}
	c := NewConn(s.sim, iface, s.sendDir(), flow, cfg)
	s.conns[flow] = c
	s.join(c)
	c.Connect()
	return c
}

// Register adds a pre-built connection (used by MPTCP subflows that
// need custom Config on the passive side too).
func (s *Stack) Register(c *Conn) {
	if _, dup := s.conns[c.flow]; dup {
		panic("tcp: duplicate flow " + c.flow)
	}
	s.conns[c.flow] = c
	s.join(c)
}

// join pairs the connection with its opposite endpoint when the stack
// belongs to a FluidDomain.
func (s *Stack) join(c *Conn) {
	if s.fluid != nil {
		s.fluid.join(c)
	}
}

// Conn returns the connection for a flow, or nil.
func (s *Stack) Conn(flow string) *Conn { return s.conns[flow] }

// Forget removes a connection from the demux table.
func (s *Stack) Forget(flow string) {
	if c := s.conns[flow]; c != nil && s.fluid != nil {
		s.fluid.forget(c)
	}
	delete(s.conns, flow)
}
