//go:build !race

// The testing.AllocsPerRun pins in this file measure the production
// allocator behavior; race-detector instrumentation adds bookkeeping
// allocations, so the pins only hold in non-race builds (CI runs both
// a race job and a non-race job, so the pins are still enforced).

package tcp

import (
	"testing"
	"time"
)

// TestSegmentCycleZeroAlloc pins the pooled segment hand-off: a pure
// ACK built by the sender travels the wire as a pooled packet, is
// dispatched by the receiving stack, and both the packet and the
// segment return to their pools — all without heap allocation once the
// pools are warm.
func TestSegmentCycleZeroAlloc(t *testing.T) {
	n := newTestNet(t, 1, 50, 5*time.Millisecond, 0)
	var cli *Conn
	n.server.Accept = func(c *Conn) {}
	cli = n.client.Dial(n.iface, "f", Config{})
	n.sim.Run()
	if cli.State() != StateEstablished {
		t.Fatalf("state = %v, want established", cli.State())
	}

	cycle := func() {
		cli.SendWindowUpdate() // pure ACK: segment + packet + events
		n.sim.Run()
	}
	for i := 0; i < 64; i++ {
		cycle()
	}
	if avg := testing.AllocsPerRun(200, cycle); avg != 0 {
		t.Fatalf("segment send-deliver-release cycle allocates %v per run, want 0", avg)
	}
}

// TestSteadyStateAckClockZeroAlloc pins the full ACK-clocking loop: a
// steady-state established connection moving one MSS per cycle — data
// segment out, cumulative ACK back, scoreboard advance, RTO/probe
// re-arm — must run entirely on recycled memory. This is the inner
// loop of every experiment sweep; an allocation here multiplies by
// millions of simulated segments.
func TestSteadyStateAckClockZeroAlloc(t *testing.T) {
	n := newTestNet(t, 1, 50, 5*time.Millisecond, 0)
	var srv *Conn
	n.server.Accept = func(c *Conn) { srv = c }
	n.client.Dial(n.iface, "f", Config{})
	n.sim.Run()
	if srv == nil || srv.State() != StateEstablished {
		t.Fatal("server conn not established")
	}

	step := func() {
		srv.Send(MSS) // one segment of fresh data + the ACK it clocks out
		n.sim.Run()
	}
	for i := 0; i < 64; i++ {
		step() // grow rtxq/scratch capacity, warm pools
	}
	if avg := testing.AllocsPerRun(200, step); avg != 0 {
		t.Fatalf("steady-state ACK clocking allocates %v per run, want 0", avg)
	}
}
