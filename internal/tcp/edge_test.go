package tcp

import (
	"testing"
	"time"
)

// Edge-case and failure-injection tests beyond the core suite in
// conn_test.go.

func TestBidirectionalData(t *testing.T) {
	// Both sides send simultaneously on one connection.
	n := newTestNet(t, 21, 10, 10*time.Millisecond, 0)
	const size = 150_000
	var upDone, downDone bool
	n.server.Accept = func(c *Conn) {
		c.SetCallbacks(Callbacks{
			OnEstablished: func(c *Conn) { c.Send(size) },
			OnData: func(c *Conn, total int64) {
				if total >= size {
					upDone = true
				}
			},
		})
	}
	n.client.Dial(n.iface, "bidi", Config{Callbacks: Callbacks{
		OnEstablished: func(c *Conn) { c.Send(size) },
		OnData: func(c *Conn, total int64) {
			if total >= size {
				downDone = true
			}
		},
	}})
	n.sim.Run()
	if !upDone || !downDone {
		t.Fatalf("bidirectional transfer incomplete: up=%v down=%v", upDone, downDone)
	}
}

func TestAbortStopsActivity(t *testing.T) {
	n := newTestNet(t, 22, 10, 10*time.Millisecond, 0)
	var srv *Conn
	closed := false
	n.server.Accept = func(c *Conn) {
		srv = c
		c.SetCallbacks(Callbacks{
			OnEstablished: func(c *Conn) { c.Send(5 << 20) },
			OnClosed:      func(c *Conn) { closed = true },
		})
	}
	n.client.Dial(n.iface, "abort", Config{})
	n.sim.RunFor(500 * time.Millisecond)
	sent := srv.SegmentsSent()
	srv.Abort()
	if !closed {
		t.Fatal("Abort should fire OnClosed")
	}
	if srv.State() != StateDone {
		t.Fatalf("state after Abort = %v", srv.State())
	}
	n.sim.RunFor(5 * time.Second)
	if srv.SegmentsSent() != sent {
		t.Fatal("aborted connection kept transmitting")
	}
	// Idempotent.
	srv.Abort()
}

func TestMaxConsecutiveRTOsAborts(t *testing.T) {
	n := newTestNet(t, 23, 10, 10*time.Millisecond, 0)
	var srv *Conn
	aborted := false
	n.server.Accept = func(c *Conn) {
		srv = c
		c.SetCallbacks(Callbacks{
			OnEstablished: func(c *Conn) { c.Send(1 << 20) },
			OnClosed:      func(c *Conn) { aborted = true },
		})
	}
	n.client.Dial(n.iface, "giveup", Config{})
	n.sim.RunFor(300 * time.Millisecond)
	n.iface.SetBlackhole(true)
	// Let the retry budget exhaust (backoff sums to a few minutes).
	n.sim.RunFor(20 * time.Minute)
	if !aborted {
		t.Fatalf("connection should abort after %d consecutive RTOs (count=%d)",
			MaxConsecutiveRTOs, srv.RTOCount())
	}
}

func TestHyStartExitsSlowStartOnDelayRise(t *testing.T) {
	// A deep-buffered slow link: slow start must exit via HyStart well
	// before cwnd reaches the huge initial ssthresh.
	n := newTestNet(t, 24, 5, 30*time.Millisecond, 0)
	var srv *Conn
	n.server.Accept = func(c *Conn) {
		srv = c
		c.SetCallbacks(Callbacks{OnEstablished: func(c *Conn) { c.Send(4 << 20) }})
	}
	n.client.Dial(n.iface, "hystart", Config{})
	n.sim.RunFor(3 * time.Second)
	if srv.InSlowStart() {
		t.Fatal("still in slow start after 3s on a bloated 5 Mbit/s link")
	}
	if srv.SsthreshBytes() >= DefaultWindow {
		t.Fatal("ssthresh never reduced: HyStart did not trigger")
	}
}

func TestTailLossProbeAvoidsFullRTO(t *testing.T) {
	// Drop exactly the tail of a burst: TLP should recover noticeably
	// faster than the ~1s RTO backoff on first loss.
	n := newTestNet(t, 25, 50, 20*time.Millisecond, 0)
	const size = 60_000 // ~41 segments; tail drop via short blackhole
	var done time.Duration
	n.server.Accept = func(c *Conn) {
		c.SetCallbacks(Callbacks{OnEstablished: func(c *Conn) { c.Send(size); c.Close() }})
	}
	n.client.Dial(n.iface, "tlp", Config{Callbacks: Callbacks{
		OnData: func(c *Conn, total int64) {
			if total >= size && done == 0 {
				done = n.sim.Now()
			}
		},
	}})
	// Blackhole a short window that eats the tail of the second data
	// burst (handshake ~60 ms, first burst acked ~100 ms).
	n.sim.Schedule(105*time.Millisecond, func() { n.iface.SetBlackhole(true) })
	n.sim.Schedule(135*time.Millisecond, func() { n.iface.SetBlackhole(false) })
	n.sim.Run()
	if done == 0 {
		t.Fatal("transfer did not complete")
	}
	// With only RTO recovery this takes > 1s (initial RTO); with the
	// probe it should finish well under that.
	if done > 900*time.Millisecond {
		t.Fatalf("tail recovery took %v — TLP apparently not firing", done)
	}
}

func TestPeerWindowLimitsSender(t *testing.T) {
	// A tiny advertised window must cap the in-flight bytes.
	n := newTestNet(t, 26, 100, 5*time.Millisecond, 0)
	var srv *Conn
	n.server.Accept = func(c *Conn) {
		srv = c
		c.SetCallbacks(Callbacks{OnEstablished: func(c *Conn) { c.Send(1 << 20) }})
	}
	n.client.Dial(n.iface, "rwnd", Config{})
	n.sim.RunFor(50 * time.Millisecond)
	// Shrink the peer window via a crafted ACK (simulating a slow
	// application at the receiver).
	srv.handle(&Segment{Flow: "rwnd", Flags: FlagACK, Ack: uint64(srv.sndUna), Wnd: 4 * MSS})
	n.sim.RunFor(200 * time.Millisecond)
	if got := srv.BytesInFlight(); got > 4*MSS+MSS {
		t.Fatalf("in-flight %d exceeds advertised window %d", got, 4*MSS)
	}
}

func TestZeroAndNegativeSendIgnored(t *testing.T) {
	n := newTestNet(t, 27, 10, 5*time.Millisecond, 0)
	n.server.Accept = func(c *Conn) {}
	c := n.client.Dial(n.iface, "zero", Config{})
	c.Send(0)
	c.Send(-5)
	n.sim.Run()
	if c.BytesInFlight() != 0 {
		t.Fatal("zero-size sends should be ignored")
	}
}

func TestDuplicateDataReACKed(t *testing.T) {
	// A duplicated (spuriously retransmitted) segment must elicit an
	// ACK without corrupting the byte count.
	n := newTestNet(t, 28, 10, 5*time.Millisecond, 0)
	const size = 30_000
	var total int64
	n.server.Accept = func(c *Conn) {
		c.SetCallbacks(Callbacks{OnEstablished: func(c *Conn) { c.Send(size); c.Close() }})
	}
	cli := n.client.Dial(n.iface, "dup", Config{Callbacks: Callbacks{
		OnData: func(c *Conn, tot int64) { total = tot },
	}})
	n.sim.Run()
	if total != size {
		t.Fatalf("received %d, want %d", total, size)
	}
	// Replay an old data segment.
	cli.handle(&Segment{Flow: "dup", Flags: FlagACK, Seq: 1, Ack: 1, PayloadLen: MSS, Wnd: DefaultWindow})
	if cli.RecvTotal() != size {
		t.Fatalf("duplicate segment changed RecvTotal to %d", cli.RecvTotal())
	}
}

func TestStackForgetAndConnLookup(t *testing.T) {
	n := newTestNet(t, 29, 10, 5*time.Millisecond, 0)
	n.server.Accept = func(c *Conn) {}
	c := n.client.Dial(n.iface, "x", Config{})
	if n.client.Conn("x") != c {
		t.Fatal("Conn lookup failed")
	}
	n.client.Forget("x")
	if n.client.Conn("x") != nil {
		t.Fatal("Forget did not remove the conn")
	}
	// A new dial with the same flow id is now allowed.
	n.client.Dial(n.iface, "x", Config{})
}

func TestDialDuplicateFlowPanics(t *testing.T) {
	n := newTestNet(t, 30, 10, 5*time.Millisecond, 0)
	n.server.Accept = func(c *Conn) {}
	n.client.Dial(n.iface, "dup-flow", Config{})
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Dial should panic")
		}
	}()
	n.client.Dial(n.iface, "dup-flow", Config{})
}
