package tcp

import (
	"fmt"
	"time"

	"multinet/internal/netem"
	"multinet/internal/simnet"
)

// State is the connection state. The set is a condensed version of the
// TCP state machine: TIME_WAIT and simultaneous-open states are not
// needed in simulation.
type State int

// Connection states.
const (
	StateClosed State = iota
	StateSynSent
	StateSynRcvd
	StateEstablished
	StateFinWait   // our FIN sent, not yet acked
	StateClosing   // both FINs seen, ours not yet acked
	StateCloseWait // peer FIN seen, we have not sent ours
	StateDone      // fully closed
)

// String names the state.
func (s State) String() string {
	switch s {
	case StateClosed:
		return "closed"
	case StateSynSent:
		return "syn-sent"
	case StateSynRcvd:
		return "syn-rcvd"
	case StateEstablished:
		return "established"
	case StateFinWait:
		return "fin-wait"
	case StateClosing:
		return "closing"
	case StateCloseWait:
		return "close-wait"
	case StateDone:
		return "done"
	}
	return "unknown"
}

// Default protocol constants. These mirror the Linux 3.11 stack the
// paper measured (initial cwnd 10, min RTO 200 ms).
const (
	InitialCwndSegments = 10
	MinRTO              = 200 * time.Millisecond
	MaxRTO              = 60 * time.Second
	InitialRTO          = 1 * time.Second
	DefaultWindow       = 4 << 20 // 4 MB advertised window
	// MaxConsecutiveRTOs aborts the connection after this many
	// back-to-back timeouts (the Linux tcp_retries2 analogue); with
	// exponential backoff this is roughly four minutes of silence.
	MaxConsecutiveRTOs = 12
)

// Source supplies payload for transmission. Plain TCP uses the internal
// byte-count source; MPTCP subflows use a scheduler-backed source that
// attaches DSS mappings to segments.
type Source interface {
	// Next returns the size of the next chunk to transmit (0 < n <=
	// max) and an option to attach to the segment. ok=false means no
	// data is currently available (more may arrive later).
	Next(max int) (n int, opt any, ok bool)
	// Pending reports whether the source currently has data available.
	Pending() bool
}

// IncreaseFn computes the congestion-avoidance cwnd increment in bytes
// for a new cumulative ACK of acked bytes. Reno's is MSS*acked/cwnd;
// MPTCP's coupled LIA provides a different one (RFC 6356).
type IncreaseFn func(c *Conn, acked int) float64

// RenoIncrease is the standard Reno congestion-avoidance increase.
func RenoIncrease(c *Conn, acked int) float64 {
	return float64(MSS) * float64(acked) / c.cwnd
}

// Callbacks are optional connection event hooks. All are invoked from
// the simulation loop.
type Callbacks struct {
	// OnEstablished fires when the handshake completes.
	OnEstablished func(*Conn)
	// OnData fires when in-order data advances; total is cumulative
	// in-order bytes received.
	OnData func(c *Conn, total int64)
	// OnSegment fires for every arriving segment, before processing.
	OnSegment func(c *Conn, seg *Segment)
	// OnAckedOpt fires when a sent segment carrying a non-nil option is
	// cumulatively acknowledged.
	OnAckedOpt func(c *Conn, opt any)
	// AckOpt, when set, supplies the option attached to outgoing pure
	// ACKs (MPTCP uses it for DATA_ACK).
	AckOpt func(c *Conn) any
	// OnRTO fires on each retransmission timeout with the consecutive
	// timeout count.
	OnRTO func(c *Conn, count int)
	// OnClosed fires when both directions have shut down.
	OnClosed func(*Conn)
	// OnSendBufEmpty fires when the last queued byte has been sent
	// (not necessarily acked); MPTCP's scheduler uses it to refill.
	OnSendBufEmpty func(*Conn)
}

// rtxEntry tracks one unacknowledged segment in the SACK scoreboard.
// The segment is held by value: wire segments are pooled and owned by
// the receiver once transmitted, so the scoreboard must never alias
// them. Retransmissions clone a fresh pooled segment from this copy.
type rtxEntry struct {
	seg    Segment
	sentAt time.Duration
	rtxed  bool // retransmitted at least once (Karn's algorithm)
	sacked bool // covered by a SACK block
	lost   bool // declared lost (RFC 6675 rule or RTO)
}

// Conn is one endpoint of a TCP connection (or MPTCP subflow) bound to
// a network interface.
type Conn struct {
	sim   *simnet.Sim
	iface *netem.Iface
	dir   netem.Direction // direction this endpoint SENDS in
	flow  string
	state State

	cb Callbacks

	// Sender state.
	src      Source
	synOpt   any
	byteSrc  *byteSource // non-nil when using the default source
	sndUna   uint64
	sndNxt   uint64
	cwnd     float64 // bytes
	ssthresh float64 // bytes
	increase IncreaseFn
	rtxq     []rtxEntry
	dupAcks  int
	// hiSacked is the monotone high-water mark of SACKed SeqEnds. It is
	// equivalent to rescanning the scoreboard (cumulative ACKs only ever
	// remove entries at or below sndUna, and every live entry ends above
	// it), and it makes the no-SACK fast path of detectLoss O(1).
	hiSacked uint64
	// lostPending counts scoreboard entries that are lost, unsacked and
	// not yet retransmitted — the set nextLost scans for — so the send
	// loop skips the scan entirely outside recovery.
	lostPending int
	inRecov     bool
	recover     uint64
	peerWnd     int
	finQueued   bool // send FIN once the source drains
	finSent     bool
	finSeq      uint64
	finAcked    bool

	// RTT estimation (RFC 6298).
	srtt     time.Duration
	rttvar   time.Duration
	minRTT   time.Duration
	rto      time.Duration
	rtoTimer simnet.Timer
	rtoCount int // consecutive timeouts

	// Tail loss probe (simplified Linux TLP): one probe retransmission
	// of the newest unacked segment 2*SRTT after the send stream goes
	// quiet, so tail drops do not pay a full RTO.
	probeTimer simnet.Timer
	probeFired bool

	// Receiver state.
	rcvNxt     uint64
	ooo        []interval // out-of-order intervals, sorted, disjoint
	lastOOO    interval   // interval containing the latest arrival
	sackCursor int        // rotation cursor for SACK block reporting
	recvTotal  int64      // cumulative in-order payload bytes
	peerFin    bool
	peerFinAt  uint64

	// Fluid-advance state (see fluid.go). fluidPeer is the opposite
	// endpoint of the same flow when both stacks share a FluidDomain;
	// fluid is the active session on the data sender; fluidClock, when
	// >= 0, is the semantic time of the virtual event being replayed
	// (c.now() returns it instead of the kernel clock); fluidSuppress
	// disables RTO/probe arming while the session guarantees delivery.
	fluidPeer     *Conn
	fluidDom      *FluidDomain
	fluid         *fluidSession
	fluidClock    time.Duration
	fluidSuppress bool

	// Diagnostics.
	established   time.Duration
	synSentAt     time.Duration
	Retransmits   int
	FastRecovers  int
	segmentsSent  int
	segmentsRecvd int
}

type interval struct{ lo, hi uint64 }

// Config parameterises NewConn.
type Config struct {
	// Callbacks are the event hooks.
	Callbacks Callbacks
	// Increase overrides the congestion-avoidance increase (default
	// Reno).
	Increase IncreaseFn
	// Source overrides the payload source (default byte-count source
	// fed by Send).
	Source Source
	// InitialCwndSegs overrides the initial window (default 10 MSS).
	InitialCwndSegs int
	// SynOpt is attached to the SYN (active open) or SYN-ACK (passive
	// open) segment; MPTCP uses it for MP_CAPABLE / MP_JOIN.
	SynOpt any
}

// NewConn creates an endpoint for the given flow on an interface. dir
// is the direction this endpoint's segments travel: netem.Up for the
// client side, netem.Down for the server side. The connection does
// nothing until Connect (active) or until a SYN is dispatched to it
// (passive, via Stack).
func NewConn(sim *simnet.Sim, iface *netem.Iface, dir netem.Direction, flow string, cfg Config) *Conn {
	c := &Conn{
		sim:      sim,
		iface:    iface,
		dir:      dir,
		flow:     flow,
		state:    StateClosed,
		cb:       cfg.Callbacks,
		increase: cfg.Increase,
		src:      cfg.Source,
		synOpt:   cfg.SynOpt,
		peerWnd:  DefaultWindow,
		rto:      InitialRTO,
	}
	c.fluidClock = -1
	initial := cfg.InitialCwndSegs
	if initial <= 0 {
		initial = InitialCwndSegments
	}
	c.cwnd = float64(initial * MSS)
	c.ssthresh = float64(DefaultWindow)
	if c.increase == nil {
		c.increase = RenoIncrease
	}
	if c.src == nil {
		c.byteSrc = &byteSource{}
		c.src = c.byteSrc
	}
	return c
}

// byteSource is the default Source: an opaque count of pending bytes.
type byteSource struct{ pending int }

func (b *byteSource) Next(max int) (int, any, bool) {
	if b.pending == 0 {
		return 0, nil, false
	}
	n := b.pending
	if n > max {
		n = max
	}
	b.pending -= n
	return n, nil, true
}

func (b *byteSource) Pending() bool { return b.pending > 0 }

// Flow returns the connection's flow identifier.
func (c *Conn) Flow() string { return c.flow }

// SetCallbacks replaces the connection's event hooks. It is intended
// for use inside Stack.Accept, before any segment is processed.
func (c *Conn) SetCallbacks(cb Callbacks) { c.cb = cb }

// SetSource replaces the payload source. It must be called before the
// connection is established (e.g. inside Stack.Accept); MPTCP uses it
// to hook scheduler-backed sources into passively-opened subflows.
func (c *Conn) SetSource(s Source) {
	c.src = s
	c.byteSrc = nil
}

// SetSynOpt sets the option attached to the SYN-ACK of a passive open.
// Must be called inside Stack.Accept.
func (c *Conn) SetSynOpt(opt any) { c.synOpt = opt }

// SetIncrease replaces the congestion-avoidance increase function.
func (c *Conn) SetIncrease(fn IncreaseFn) {
	if fn == nil {
		fn = RenoIncrease
	}
	c.increase = fn
}

// Callbacks returns the current event hooks (so callers can wrap them).
func (c *Conn) Callbacks() Callbacks { return c.cb }

// State returns the connection state.
func (c *Conn) State() State { return c.state }

// Iface returns the bound interface.
func (c *Conn) Iface() *netem.Iface { return c.iface }

// SRTT returns the smoothed RTT estimate (0 before the first sample).
func (c *Conn) SRTT() time.Duration { return c.srtt }

// RTO returns the current retransmission timeout.
func (c *Conn) RTO() time.Duration { return c.rto }

// CwndBytes returns the congestion window in bytes.
func (c *Conn) CwndBytes() int { return int(c.cwnd) }

// SsthreshBytes returns the slow-start threshold in bytes.
func (c *Conn) SsthreshBytes() int { return int(c.ssthresh) }

// InSlowStart reports whether cwnd is below ssthresh.
func (c *Conn) InSlowStart() bool { return c.cwnd < c.ssthresh }

// BytesInFlight returns unacknowledged bytes.
func (c *Conn) BytesInFlight() int { return int(c.sndNxt - c.sndUna) }

// RecvTotal returns cumulative in-order payload bytes received.
func (c *Conn) RecvTotal() int64 { return c.recvTotal }

// RTOCount returns the consecutive retransmission-timeout count.
func (c *Conn) RTOCount() int { return c.rtoCount }

// EstablishedAt returns when the handshake completed (client: SYN-ACK
// received; server: ACK received), zero if not yet established.
func (c *Conn) EstablishedAt() time.Duration { return c.established }

// SegmentsSent returns the count of segments this endpoint transmitted.
func (c *Conn) SegmentsSent() int { return c.segmentsSent }

// Connect performs the active open (sends SYN).
func (c *Conn) Connect() {
	if c.state != StateClosed {
		panic("tcp: Connect on non-closed conn " + c.flow)
	}
	c.state = StateSynSent
	c.synSentAt = c.sim.Now()
	syn := NewSegment()
	syn.Flow, syn.Flags, syn.Wnd, syn.Opt = c.flow, FlagSYN, DefaultWindow, c.synOpt
	c.sndNxt = 1 // SYN consumes one
	c.track(syn)
	c.transmit(syn)
	c.armRTO()
}

// Send queues n more payload bytes for transmission. Only valid with
// the default source.
func (c *Conn) Send(n int) {
	if c.byteSrc == nil {
		panic("tcp: Send on conn with custom source " + c.flow)
	}
	if n <= 0 {
		return
	}
	c.byteSrc.pending += n
	c.maybeEnterFluid()
	c.trySend()
}

// NotifyData tells a custom-source connection that data became
// available; the scheduler calls it after queueing mappings.
func (c *Conn) NotifyData() { c.trySend() }

// Close queues a FIN to be sent once the source drains.
func (c *Conn) Close() {
	if c.finQueued || c.finSent {
		return
	}
	c.finQueued = true
	c.trySend()
}

// handle processes one arriving segment. Stack dispatches to it.
func (c *Conn) handle(seg *Segment) {
	c.segmentsRecvd++
	if c.cb.OnSegment != nil {
		c.cb.OnSegment(c, seg)
	}
	switch c.state {
	case StateClosed:
		if seg.Flags.Has(FlagSYN) && !seg.Flags.Has(FlagACK) {
			c.passiveOpen(seg)
		}
		return
	case StateSynSent:
		if seg.Flags.Has(FlagSYN | FlagACK) {
			c.completeActiveOpen(seg)
		}
		return
	case StateSynRcvd:
		if seg.Flags.Has(FlagACK) && seg.Ack >= 1 {
			c.becomeEstablished()
		}
		// Fall through: the ACK may carry data.
	}
	if seg.Flags.Has(FlagSYN) {
		// Duplicate SYN-ACK (our handshake ACK was lost): re-ACK so the
		// peer can leave SYN_RCVD, then ignore the rest of the segment.
		c.sendAck()
		return
	}
	if seg.Flags.Has(FlagACK) {
		c.processAck(seg)
	}
	if seg.PayloadLen > 0 {
		c.processData(seg)
	}
	if seg.Flags.Has(FlagFIN) {
		c.processFin(seg)
	}
}

func (c *Conn) passiveOpen(syn *Segment) {
	c.state = StateSynRcvd
	c.rcvNxt = syn.SeqEnd()
	c.peerWnd = syn.Wnd
	synAck := NewSegment()
	synAck.Flow, synAck.Flags, synAck.Ack, synAck.Wnd, synAck.Opt =
		c.flow, FlagSYN|FlagACK, c.rcvNxt, DefaultWindow, c.synOpt
	c.sndNxt = 1
	c.track(synAck)
	c.transmit(synAck)
	c.armRTO()
}

func (c *Conn) completeActiveOpen(synAck *Segment) {
	c.rcvNxt = synAck.SeqEnd()
	c.peerWnd = synAck.Wnd
	c.ackRtxQueue(synAck.Ack)
	if synAck.Ack > c.sndUna {
		c.sndUna = synAck.Ack
	}
	if len(c.rtxq) == 0 {
		c.cancelRTO()
	}
	c.becomeEstablished()
	// The handshake ACK (may be combined with data by trySend; send a
	// pure ACK first for protocol fidelity in captures).
	c.sendAck()
	c.trySend()
}

func (c *Conn) becomeEstablished() {
	if c.state == StateEstablished {
		return
	}
	c.state = StateEstablished
	c.established = c.sim.Now()
	if c.cb.OnEstablished != nil {
		c.cb.OnEstablished(c)
	}
	c.trySend()
}

// now returns the semantic clock: the kernel event clock, or — while a
// fluid session replays a virtual event — that event's exact instant.
// Sender-side timestamps (scoreboard sentAt, RTT samples) go through it
// so the analytic path produces the same arithmetic packet mode would.
func (c *Conn) now() time.Duration {
	if c.fluidClock >= 0 {
		return c.fluidClock
	}
	return c.sim.Now()
}

// pipe estimates bytes currently in flight per RFC 6675: SACKed bytes
// have left the network; lost bytes count only if their retransmission
// is outstanding.
func (c *Conn) pipe() int {
	p := 0
	for i := range c.rtxq {
		e := &c.rtxq[i]
		switch {
		case e.sacked:
		case e.lost:
			if e.rtxed {
				p += e.seg.PayloadLen
			}
		default:
			p += e.seg.PayloadLen
		}
	}
	return p
}

// trySend transmits retransmissions and new data as the congestion and
// peer windows allow (the RFC 6675 send loop).
//
//multinet:hotpath
func (c *Conn) trySend() {
	if c.state != StateEstablished && c.state != StateCloseWait &&
		c.state != StateFinWait && c.state != StateClosing {
		return
	}
	wnd := int(c.cwnd)
	if c.peerWnd < wnd {
		wnd = c.peerWnd
	}
	var pipe int
	if c.fluid != nil && c.hiSacked <= c.sndUna &&
		c.lostPending == 0 && !c.inRecov {
		// Clean scoreboard (the fluid session's standing invariant):
		// every tracked byte is in flight, so the O(flight) scan
		// collapses to window arithmetic.
		pipe = int(c.sndNxt - c.sndUna)
	} else {
		pipe = c.pipe()
	}
	for wnd-pipe >= MSS || (wnd-pipe > 0 && pipe == 0) {
		// Retransmissions of lost segments take priority.
		if e := c.nextLost(); e != nil {
			e.rtxed = true
			e.sentAt = c.sim.Now()
			c.lostPending--
			c.Retransmits++
			c.retransmit(e)
			pipe += e.seg.PayloadLen
			continue
		}
		if c.state != StateEstablished && c.state != StateCloseWait {
			break // FIN already sent: no new data
		}
		budget := wnd - pipe
		max := MSS
		if budget < max {
			max = budget
		}
		// Fluid fast path: while a session is active every new segment is
		// advanced analytically. A refusal means no data or no queue
		// headroom — pause; a real segment must never interleave behind
		// undelivered virtual ones, so packet-mode sending resumes only
		// after the session exits (which re-runs this loop).
		if c.fluid != nil {
			n, ok := c.fluid.sendVirtual(c, max)
			if !ok {
				break
			}
			pipe += n
			if !c.src.Pending() && c.cb.OnSendBufEmpty != nil {
				c.cb.OnSendBufEmpty(c)
			}
			continue
		}
		n, opt, ok := c.src.Next(max)
		if !ok {
			break
		}
		seg := NewSegment()
		seg.Flow = c.flow
		seg.Flags = FlagACK
		seg.Seq = c.sndNxt
		seg.Ack = c.rcvNxt
		seg.PayloadLen = n
		seg.Wnd = DefaultWindow
		seg.Opt = opt
		c.sndNxt += uint64(n)
		c.track(seg)
		c.transmit(seg)
		pipe += n
		if !c.src.Pending() && c.cb.OnSendBufEmpty != nil {
			c.cb.OnSendBufEmpty(c)
		}
	}
	c.maybeSendFin()
	if len(c.rtxq) > 0 || (c.fluid != nil && c.sndNxt > c.sndUna) {
		// Virtual segments live on the session's fifo, not in rtxq; the
		// arms below are its suppressed analytic mirrors.
		c.armRTOIfIdle()
		c.armProbe()
	}
}

// nextLost returns the earliest lost entry whose retransmission has not
// been sent yet, or nil. Outside recovery lostPending is zero and the
// scan is skipped.
func (c *Conn) nextLost() *rtxEntry {
	if c.lostPending == 0 {
		return nil
	}
	for i := range c.rtxq {
		e := &c.rtxq[i]
		if e.lost && !e.rtxed && !e.sacked {
			return e
		}
	}
	return nil
}

func (c *Conn) maybeSendFin() {
	if !c.finQueued || c.finSent || c.src.Pending() {
		return
	}
	if c.fluid != nil {
		// The FIN would arrive behind undelivered virtual segments and be
		// discarded as out-of-order. The session exits at the exact
		// instant the final data ACK arrives and re-runs trySend, so the
		// FIN still goes out at the time packet mode would have sent it.
		return
	}
	if c.state != StateEstablished && c.state != StateCloseWait {
		return
	}
	fin := NewSegment()
	fin.Flow, fin.Flags, fin.Seq, fin.Ack, fin.Wnd =
		c.flow, FlagFIN|FlagACK, c.sndNxt, c.rcvNxt, DefaultWindow
	c.finSent = true
	c.finSeq = c.sndNxt
	c.sndNxt++
	if c.state == StateEstablished {
		c.state = StateFinWait
	} else {
		c.state = StateClosing
	}
	c.track(fin)
	c.transmit(fin)
	c.armRTOIfIdle()
}

// processAck handles the acknowledgement field and SACK scoreboard.
//
//multinet:hotpath
func (c *Conn) processAck(seg *Segment) {
	c.peerWnd = seg.Wnd
	c.applySack(seg.Sack)
	switch {
	case seg.Ack > c.sndUna:
		acked := int(seg.Ack - c.sndUna)
		c.ackRtxQueue(seg.Ack)
		c.dupAcks = 0
		c.rtoCount = 0
		dataAcked := acked
		if c.finSent && seg.Ack > c.finSeq {
			dataAcked-- // FIN consumed one unit
			c.finAcked = true
		}
		if seg.Ack > 0 && c.sndUna == 0 {
			dataAcked-- // SYN consumed one unit
		}
		c.sndUna = seg.Ack
		if c.inRecov && seg.Ack >= c.recover {
			c.inRecov = false
		}
		if !c.inRecov && dataAcked > 0 {
			if c.cwnd < c.ssthresh {
				c.cwnd += float64(dataAcked) // slow start
			} else {
				c.cwnd += c.increase(c, dataAcked)
			}
		}
		c.probeFired = false
		if len(c.rtxq) == 0 && (c.fluid == nil || c.sndNxt == c.sndUna) {
			c.cancelRTO()
			c.cancelProbe()
		} else {
			c.armRTO()
			c.armProbe()
		}
		c.checkClosed()
		c.detectLoss()
		c.maybeEnterFluid()
		c.trySend()
	case seg.Ack == c.sndUna && c.BytesInFlight() > 0 && seg.PayloadLen == 0 &&
		!seg.Flags.Has(FlagSYN) && !seg.Flags.Has(FlagFIN):
		c.dupAcks++
		c.detectLoss()
		c.trySend()
	}
}

// applySack marks scoreboard entries covered by the blocks.
func (c *Conn) applySack(blocks []SackBlock) {
	if len(blocks) == 0 {
		return
	}
	for i := range c.rtxq {
		e := &c.rtxq[i]
		if e.sacked {
			continue
		}
		for _, b := range blocks {
			if e.seg.Seq >= b.Lo && e.seg.SeqEnd() <= b.Hi {
				e.sacked = true
				if end := e.seg.SeqEnd(); end > c.hiSacked {
					c.hiSacked = end
				}
				if e.lost && !e.rtxed {
					c.lostPending--
				}
				break
			}
		}
	}
}

// detectLoss applies the RFC 6675 loss rule (a hole with >= 3*MSS of
// SACKed data above it is lost) plus the classic three-dupACK rule for
// the first unacked segment, and enters recovery on fresh loss. A clean
// flow (no SACK evidence, no dupACK run) exits without touching the
// scoreboard.
func (c *Conn) detectLoss() {
	if c.hiSacked == 0 && c.dupAcks < 3 {
		return // no rule can mark anything lost
	}
	newLoss := false
	for i := range c.rtxq {
		e := &c.rtxq[i]
		if e.sacked || e.lost {
			continue
		}
		byRule := c.hiSacked > 0 && e.seg.SeqEnd()+3*MSS <= c.hiSacked
		// After a tail loss probe, any hole below the highest SACK is
		// lost (TLP early retransmit: the probe proved the path works).
		byProbe := c.probeFired && c.hiSacked > 0 && e.seg.SeqEnd() <= c.hiSacked
		byDup := c.dupAcks >= 3 && e.seg.Seq == c.sndUna
		if byRule || byProbe || byDup {
			e.lost = true
			if !e.rtxed {
				c.lostPending++
			}
			newLoss = true
		}
	}
	if newLoss && !c.inRecov {
		c.enterRecovery()
	}
}

func (c *Conn) enterRecovery() {
	c.FastRecovers++
	// Halve the pre-loss flight (not the post-SACK pipe, which can be
	// near zero after a burst loss and would strangle the recovery).
	ss := float64(c.BytesInFlight()) / 2
	if ss < 2*MSS {
		ss = 2 * MSS
	}
	c.ssthresh = ss
	c.cwnd = ss
	c.recover = c.sndNxt
	c.inRecov = true
}

// processData handles payload bytes.
func (c *Conn) processData(seg *Segment) {
	lo, hi := seg.Seq, seg.Seq+uint64(seg.PayloadLen)
	switch {
	case hi <= c.rcvNxt:
		// Entirely duplicate.
	case lo <= c.rcvNxt:
		c.rcvNxt = hi
		c.mergeOOO()
	default:
		c.insertOOO(interval{lo, hi})
	}
	newTotal := int64(0)
	if c.rcvNxt > 0 {
		newTotal = int64(c.rcvNxt - 1) // minus SYN
	}
	if c.peerFin && c.rcvNxt > c.peerFinAt {
		newTotal--
	}
	advanced := newTotal > c.recvTotal
	if advanced {
		c.recvTotal = newTotal
	}
	c.sendAck()
	if advanced && c.cb.OnData != nil {
		c.cb.OnData(c, c.recvTotal)
	}
}

// appendSackBlocks appends up to MaxSackBlocks out-of-order intervals
// to dst, RFC 2018 style: the block containing the most recent arrival
// first, then a rotating window over the rest so that a sender facing
// many holes eventually learns the whole scoreboard. It appends into
// the caller's buffer (the outgoing segment's recycled Sack slice) so
// steady-state ACKs allocate nothing.
func (c *Conn) appendSackBlocks(dst []SackBlock) []SackBlock {
	if len(c.ooo) == 0 {
		return dst
	}
	base := len(dst)
	// Most recent first: find the interval containing lastOOO.
	for _, iv := range c.ooo {
		if c.lastOOO.lo >= iv.lo && c.lastOOO.hi <= iv.hi {
			dst = append(dst, SackBlock{Lo: iv.lo, Hi: iv.hi})
			break
		}
	}
	for i := 0; i < len(c.ooo) && len(dst)-base < MaxSackBlocks; i++ {
		iv := c.ooo[(c.sackCursor+i)%len(c.ooo)]
		b := SackBlock{Lo: iv.lo, Hi: iv.hi}
		dup := false
		for _, x := range dst[base:] {
			if x == b {
				dup = true
				break
			}
		}
		if !dup {
			dst = append(dst, b)
		}
	}
	c.sackCursor = (c.sackCursor + MaxSackBlocks - 1) % len(c.ooo)
	return dst
}

func (c *Conn) insertOOO(iv interval) {
	c.lastOOO = iv
	// Insert keeping sorted, then merge overlaps.
	pos := len(c.ooo)
	for i, e := range c.ooo {
		if iv.lo < e.lo {
			pos = i
			break
		}
	}
	c.ooo = append(c.ooo, interval{})
	copy(c.ooo[pos+1:], c.ooo[pos:])
	c.ooo[pos] = iv
	// Merge.
	merged := c.ooo[:1]
	for _, e := range c.ooo[1:] {
		last := &merged[len(merged)-1]
		if e.lo <= last.hi {
			if e.hi > last.hi {
				last.hi = e.hi
			}
		} else {
			merged = append(merged, e)
		}
	}
	c.ooo = merged
}

func (c *Conn) mergeOOO() {
	k := 0
	for k < len(c.ooo) && c.ooo[k].lo <= c.rcvNxt {
		if c.ooo[k].hi > c.rcvNxt {
			c.rcvNxt = c.ooo[k].hi
		}
		k++
	}
	if k > 0 {
		// Copy down instead of re-slicing so the backing array keeps its
		// capacity for the next burst of reordering.
		n := copy(c.ooo, c.ooo[k:])
		c.ooo = c.ooo[:n]
	}
}

func (c *Conn) processFin(seg *Segment) {
	finSeq := seg.Seq + uint64(seg.PayloadLen)
	if finSeq > c.rcvNxt {
		// FIN beyond our in-order point (data still missing): note it
		// and wait; the retransmissions will fill the hole.
		return
	}
	if !c.peerFin {
		c.peerFin = true
		c.peerFinAt = finSeq
		if c.rcvNxt == finSeq {
			c.rcvNxt = finSeq + 1
		}
		switch c.state {
		case StateEstablished:
			c.state = StateCloseWait
		case StateFinWait:
			c.state = StateClosing
		}
	}
	c.sendAck()
	c.checkClosed()
}

func (c *Conn) checkClosed() {
	if c.state == StateDone {
		return
	}
	if c.finSent && c.finAcked && c.peerFin {
		c.state = StateDone
		c.cancelRTO()
		if c.cb.OnClosed != nil {
			c.cb.OnClosed(c)
		}
	}
}

// sendAck emits a pure ACK carrying current SACK blocks (and MPTCP
// options if hooked).
func (c *Conn) sendAck() {
	var opt any
	if c.cb.AckOpt != nil {
		opt = c.cb.AckOpt(c)
	}
	ack := NewSegment()
	ack.Flow, ack.Flags, ack.Seq, ack.Ack, ack.Wnd, ack.Opt =
		c.flow, FlagACK, c.sndNxt, c.rcvNxt, DefaultWindow, opt
	ack.Sack = c.appendSackBlocks(ack.Sack[:0])
	c.transmit(ack)
}

// SendWindowUpdate emits a pure ACK advertising the current window.
// MPTCP backup mode uses it to reproduce the paper's Fig. 15g trace.
func (c *Conn) SendWindowUpdate() { c.sendAck() }

// ackRtxQueue drops fully-acked entries, takes an RTT sample, and fires
// option-ack callbacks. The RTT sample comes from the most recently
// sent never-retransmitted entry covered by the ACK (Karn's algorithm);
// older covered entries would inflate the estimate when a cumulative
// ACK releases a burst at once.
func (c *Conn) ackRtxQueue(ack uint64) {
	i := 0
	var sampleAt time.Duration = -1
	for ; i < len(c.rtxq); i++ {
		e := &c.rtxq[i]
		if e.seg.SeqEnd() > ack {
			break
		}
		if e.lost && !e.rtxed && !e.sacked {
			c.lostPending--
		}
		if !e.rtxed && e.sentAt > sampleAt {
			sampleAt = e.sentAt
		}
		if e.seg.Opt != nil && c.cb.OnAckedOpt != nil {
			c.cb.OnAckedOpt(c, e.seg.Opt)
		}
	}
	if i > 0 {
		// Copy down instead of re-slicing: the scoreboard array keeps its
		// capacity, so a steady-state sender stops allocating once the
		// queue has grown to the window's worth of entries.
		n := copy(c.rtxq, c.rtxq[i:])
		clear(c.rtxq[n:])
		c.rtxq = c.rtxq[:n]
	}
	if sampleAt >= 0 {
		c.rttSample(c.now() - sampleAt)
	}
}

func (c *Conn) rttSample(r time.Duration) {
	if r <= 0 {
		r = time.Microsecond
	}
	if c.minRTT == 0 || r < c.minRTT {
		c.minRTT = r
	}
	// HyStart-style delay increase detection: leave slow start when the
	// RTT has clearly risen above its floor — the queue is building.
	// (Linux has shipped HyStart since 2.6.29; without it the simulated
	// slow start overshoots deep buffers by 2-3x.)
	if c.cwnd < c.ssthresh {
		eta := c.minRTT / 8
		if eta < 4*time.Millisecond {
			eta = 4 * time.Millisecond
		}
		if eta > 16*time.Millisecond {
			eta = 16 * time.Millisecond
		}
		if r > c.minRTT+eta {
			c.ssthresh = c.cwnd
		}
	}
	if c.srtt == 0 {
		c.srtt = r
		c.rttvar = r / 2
	} else {
		d := c.srtt - r
		if d < 0 {
			d = -d
		}
		c.rttvar = (3*c.rttvar + d) / 4
		c.srtt = (7*c.srtt + r) / 8
	}
	c.rto = c.srtt + 4*c.rttvar
	if c.rto < MinRTO {
		c.rto = MinRTO
	}
	if c.rto > MaxRTO {
		c.rto = MaxRTO
	}
}

// track snapshots a segment into the retransmission scoreboard before
// it is transmitted: ownership of the wire segment passes to the
// network at transmit time, so the copy must be taken first.
func (c *Conn) track(seg *Segment) {
	if seg.PayloadLen > 0 || seg.Flags.Has(FlagSYN) || seg.Flags.Has(FlagFIN) {
		c.rtxq = append(c.rtxq, rtxEntry{seg: *seg, sentAt: c.now()})
	}
}

// transmit hands the segment to the interface. The segment must be a
// pooled wire copy the caller will not touch again: the receiver (or a
// drop path inside netem) recycles it.
//
//multinet:hotpath
func (c *Conn) transmit(seg *Segment) {
	c.segmentsSent++
	if c.dir == netem.Up {
		c.iface.SendUp(seg.WireSize(), seg)
	} else {
		c.iface.SendDown(seg.WireSize(), seg)
	}
}

// retransmit clones a fresh wire segment from a scoreboard entry,
// updating the ACK field to the current receive point (the RFC 793
// rule cloneWithAck used to implement).
func (c *Conn) retransmit(e *rtxEntry) {
	seg := NewSegment()
	sack := seg.Sack
	*seg = e.seg
	// Tracked segments never carry SACK blocks; keep the pooled capacity.
	seg.Sack = sack[:0]
	seg.Ack = c.rcvNxt
	if seg.Ack > 0 {
		seg.Flags |= FlagACK
	}
	c.transmit(seg)
}

func connOnRTO(a any)   { a.(*Conn).onRTO() }
func connOnProbe(a any) { a.(*Conn).onProbe() }

// armRTO (re)arms the retransmission timer from now. The cancel+arm
// pair runs on every cumulative ACK; both halves are O(1) on the
// timing-wheel kernel (Stop unlinks the event and recycles it for the
// immediately following schedule), so the per-ACK timer churn costs a
// few pointer writes and no allocation.
func (c *Conn) armRTO() {
	if c.fluidSuppress {
		// A fluid session guarantees delivery of everything in flight;
		// the timer is re-armed at session exit if data remains.
		return
	}
	c.cancelRTO()
	c.rtoTimer = c.sim.AfterArg(c.rto, connOnRTO, c)
}

func (c *Conn) armRTOIfIdle() {
	if !c.rtoTimer.Active() {
		c.armRTO()
	}
}

func (c *Conn) cancelRTO() {
	c.rtoTimer.Stop()
}

// armProbe schedules the tail loss probe 2*SRTT out (minimum 10 ms),
// replacing any previous schedule. The probe is disabled until the
// first RTT sample and after it has fired once for the current
// outstanding data.
func (c *Conn) armProbe() {
	if c.probeFired || c.srtt == 0 {
		return
	}
	if c.fluidSuppress {
		if c.sndNxt == c.sndUna {
			return // nothing outstanding, virtual or real
		}
	} else if len(c.rtxq) == 0 {
		return
	}
	pto := 2 * c.srtt
	if pto < 10*time.Millisecond {
		pto = 10 * time.Millisecond
	}
	if pto > c.rto {
		return // RTO fires first anyway (stale schedules stay armed)
	}
	if c.fluidSuppress {
		// Mirror the re-arm into the session's analytic probe clock so a
		// pending schedule fires at exactly the packet-mode instant (see
		// fluidSession.injectProbe).
		if s := c.fluid; s != nil {
			s.vProbe = c.now() + pto
		}
		return
	}
	c.cancelProbe()
	c.probeTimer = c.sim.AfterArg(pto, connOnProbe, c)
}

func (c *Conn) cancelProbe() {
	c.probeTimer.Stop()
	if s := c.fluid; s != nil {
		s.vProbe = -1
	}
}

func (c *Conn) onProbe() {
	if len(c.rtxq) == 0 || c.state == StateDone {
		return
	}
	c.probeFired = true
	// Retransmit the newest unacked data segment (data, because only
	// data is SACKable); its ACK lets SACK-based recovery find the tail
	// holes without waiting for the RTO.
	e := &c.rtxq[len(c.rtxq)-1]
	for i := len(c.rtxq) - 1; i >= 0; i-- {
		if c.rtxq[i].seg.PayloadLen > 0 {
			e = &c.rtxq[i]
			break
		}
	}
	if e.lost && !e.rtxed && !e.sacked {
		c.lostPending--
	}
	e.rtxed = true
	e.sentAt = c.sim.Now()
	c.Retransmits++
	c.retransmit(e)
}

// Abort terminates the connection immediately: timers stop, the state
// becomes Done, and OnClosed fires. Used when the interface is removed
// (MPTCP subflow teardown) and when the retry budget is exhausted.
func (c *Conn) Abort() {
	if c.state == StateDone {
		return
	}
	if c.fluid != nil {
		c.fluid.discard()
	}
	c.state = StateDone
	c.cancelRTO()
	c.cancelProbe()
	if c.cb.OnClosed != nil {
		c.cb.OnClosed(c)
	}
}

func (c *Conn) onRTO() {
	if len(c.rtxq) == 0 || c.state == StateDone {
		return
	}
	c.rtoCount++
	if c.rtoCount > MaxConsecutiveRTOs {
		c.Abort()
		return
	}
	// Collapse the window and mark every outstanding segment lost so
	// the send loop retransmits from the front in slow start.
	flight := float64(c.BytesInFlight())
	ss := flight / 2
	if ss < 2*MSS {
		ss = 2 * MSS
	}
	c.ssthresh = ss
	c.cwnd = MSS
	c.inRecov = false
	c.dupAcks = 0
	c.rto *= 2
	if c.rto > MaxRTO {
		c.rto = MaxRTO
	}
	c.lostPending = 0
	for i := range c.rtxq {
		e := &c.rtxq[i]
		if !e.sacked {
			e.lost = true
			e.rtxed = false
			c.lostPending++
		}
	}
	// Retransmit the head immediately (trySend would also do it, but
	// zero-payload SYN/FIN entries bypass the pipe budget there).
	e := &c.rtxq[0]
	if e.lost && !e.rtxed && !e.sacked {
		c.lostPending--
	}
	e.rtxed = true
	e.sentAt = c.sim.Now()
	c.Retransmits++
	c.retransmit(e)
	c.armRTO()
	if c.cb.OnRTO != nil {
		c.cb.OnRTO(c, c.rtoCount)
	}
}

// String describes the connection.
func (c *Conn) String() string {
	return fmt.Sprintf("conn(%s %s cwnd=%d inflight=%d)", c.flow, c.state, int(c.cwnd), c.BytesInFlight())
}
