// Package tcp implements a userspace TCP over the netem substrate: the
// three-way handshake, cumulative ACKs with out-of-order reassembly,
// NewReno congestion control (slow start, congestion avoidance, fast
// retransmit/recovery), RFC 6298 retransmission timeouts with Karn's
// algorithm, and FIN teardown.
//
// It stands in for the Linux 3.11 kernel TCP used in the paper. The
// parts of TCP that the paper's findings depend on — handshake latency,
// slow-start dominance of short flows, loss recovery, and steady-state
// Reno behaviour — are implemented per-segment. Parts that do not
// affect the reproduced results are deliberately simplified and noted
// where they occur: there is no delayed ACK (ACK-every-segment keeps
// runs deterministic), no SACK (NewReno recovery only), no Nagle, and
// receive windows are large and fixed (flow control is exercised at the
// MPTCP connection level where the paper's effects live).
//
// The package exposes three extension points used by package mptcp:
// a Source that supplies per-segment payload and options (DSS
// mappings), an IncreaseFn that replaces the congestion-avoidance
// increase (coupled LIA), and segment/ACK callbacks for connection-level
// bookkeeping.
package tcp

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
)

const (
	// MSS is the maximum segment payload in bytes. With 40 bytes of
	// IP+TCP header this fills a 1500-byte MTU.
	MSS = 1460
	// HeaderSize is the IP+TCP header overhead per segment in bytes.
	HeaderSize = 40
	// OptionSize is the extra wire overhead carried by segments with a
	// non-nil Opt (MPTCP DSS and friends average ~20 bytes).
	OptionSize = 20
)

// Flags is the TCP flag set carried by a Segment.
type Flags uint8

// Flag values.
const (
	FlagSYN Flags = 1 << iota
	FlagACK
	FlagFIN
)

// Has reports whether all flags in f2 are set.
func (f Flags) Has(f2 Flags) bool { return f&f2 == f2 }

// String renders flags tcpdump-style, e.g. "S", "S.", "F.", ".".
func (f Flags) String() string {
	var b strings.Builder
	if f.Has(FlagSYN) {
		b.WriteByte('S')
	}
	if f.Has(FlagFIN) {
		b.WriteByte('F')
	}
	if f.Has(FlagACK) {
		b.WriteByte('.')
	}
	if b.Len() == 0 {
		return "-"
	}
	return b.String()
}

// Segment is one TCP segment. Sequence numbers are byte offsets from 0
// (64-bit, so wraparound never occurs in simulation). Payload bytes are
// represented by count only — the simulator never materialises data.
//
// Segments travelling the wire are pooled (see NewSegment/Recycle):
// the sending Conn allocates one per transmission, ownership moves with
// the packet, and exactly one sink recycles it — the receiving
// tcp.Stack after processing, or netem on its drop paths (Segment
// implements netem.Recyclable). Senders keep retransmission state as
// value copies, never references to wire segments.
type Segment struct {
	// Flow identifies the connection (and, under MPTCP, the subflow).
	// It plays the role of the 4-tuple.
	Flow string
	// Flags carries SYN/ACK/FIN.
	Flags Flags
	// Seq is the sequence number of the first payload byte (or of the
	// SYN/FIN when those flags are set and PayloadLen is 0).
	Seq uint64
	// Ack is the cumulative acknowledgement (valid when FlagACK).
	Ack uint64
	// PayloadLen is the number of payload bytes.
	PayloadLen int
	// Wnd is the advertised receive window in bytes.
	Wnd int
	// Sack carries selective-acknowledgement blocks: the receiver's
	// out-of-order intervals (up to MaxSackBlocks).
	Sack []SackBlock
	// Opt carries transport options (MPTCP DSS etc.); nil for plain TCP.
	Opt any
}

// SackBlock is one selective-acknowledgement interval [Lo, Hi).
type SackBlock struct{ Lo, Hi uint64 }

var segPool = sync.Pool{New: func() any { return new(Segment) }}

// leakTrack gates live-segment accounting, mirroring netem's packet
// tracking: one predictable branch on the pooled hot path, switched on
// only by tests running the faults invariant checker.
var leakTrack atomic.Bool

var liveSegments atomic.Int64

// SetLeakTracking enables or disables live-segment accounting and
// resets the counter (enable before building the simulation under test).
func SetLeakTracking(on bool) {
	leakTrack.Store(on)
	liveSegments.Store(0)
}

// LiveSegments returns allocations minus recycles since
// SetLeakTracking(true); zero at quiescence means no pooled-segment
// leak and no double recycle.
func LiveSegments() int64 { return liveSegments.Load() }

// NewSegment returns a zeroed segment from the pool. Its Sack slice may
// retain capacity from an earlier life; append to Sack[:0] to reuse it.
func NewSegment() *Segment {
	if leakTrack.Load() {
		liveSegments.Add(1)
	}
	return segPool.Get().(*Segment)
}

// RecyclableOpt is implemented by segment options that want to be
// returned to a pool when the wire segment carrying them dies. Only
// options owned exclusively by the wire segment may act on it: an
// option also referenced by the sender's retransmission state (MPTCP
// data-mapping DSS) must make RecycleOpt a no-op, because a recycled
// copy could still be read from a duplicate in flight.
type RecyclableOpt interface{ RecycleOpt() }

// Recycle resets the segment (keeping its Sack capacity) and returns it
// to the pool. It implements netem.Recyclable, so packets dropped
// inside the network give their segments back too. The caller must not
// touch the segment afterwards.
func (s *Segment) Recycle() {
	if leakTrack.Load() {
		liveSegments.Add(-1)
	}
	if r, ok := s.Opt.(RecyclableOpt); ok {
		r.RecycleOpt()
	}
	sack := s.Sack[:0]
	*s = Segment{Sack: sack}
	segPool.Put(s)
}

// MaxSackBlocks is the maximum number of SACK blocks carried per
// segment, as in real TCP option space.
const MaxSackBlocks = 4

// SeqEnd returns the sequence number after this segment, counting SYN
// and FIN as one unit each.
func (s *Segment) SeqEnd() uint64 {
	end := s.Seq + uint64(s.PayloadLen)
	if s.Flags.Has(FlagSYN) || s.Flags.Has(FlagFIN) {
		end++
	}
	return end
}

// WireSize returns the on-the-wire size in bytes.
func (s *Segment) WireSize() int {
	sz := HeaderSize + s.PayloadLen
	if s.Opt != nil {
		sz += OptionSize
	}
	if n := len(s.Sack); n > 0 {
		sz += 2 + 8*n
	}
	return sz
}

// String renders the segment for captures and debugging.
func (s *Segment) String() string {
	opt := ""
	if s.Opt != nil {
		opt = fmt.Sprintf(" opt=%v", s.Opt)
	}
	return fmt.Sprintf("%s [%s] seq=%d ack=%d len=%d%s",
		s.Flow, s.Flags, s.Seq, s.Ack, s.PayloadLen, opt)
}
