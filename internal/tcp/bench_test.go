package tcp

import (
	"testing"
	"time"
)

// Micro-benchmarks for the simulator's transport engine: events per
// transferred megabyte, useful when profiling experiment sweeps.

func benchDownload(b *testing.B, size int, loss float64, fluid ...bool) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		n := newTestNet(b, int64(i+1), 20, 15*time.Millisecond, loss)
		if len(fluid) > 0 && fluid[0] {
			EnableFluid(n.client, n.server)
		}
		var done bool
		n.server.Accept = func(c *Conn) {
			c.SetCallbacks(Callbacks{OnEstablished: func(c *Conn) { c.Send(size); c.Close() }})
		}
		n.client.Dial(n.iface, "bench", Config{Callbacks: Callbacks{
			OnData: func(c *Conn, total int64) { done = done || total >= int64(size) },
		}})
		n.sim.Run()
		if !done {
			b.Fatal("transfer incomplete")
		}
	}
	b.SetBytes(int64(size))
}

func BenchmarkDownload100KBClean(b *testing.B) { benchDownload(b, 100<<10, 0) }
func BenchmarkDownload1MBClean(b *testing.B)   { benchDownload(b, 1<<20, 0) }
func BenchmarkDownload1MBLossy(b *testing.B)   { benchDownload(b, 1<<20, 0.02) }
func BenchmarkDownload1MBFluid(b *testing.B)   { benchDownload(b, 1<<20, 0, true) }
