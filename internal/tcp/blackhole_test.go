package tcp

import (
	"testing"
	"time"

	"multinet/internal/netem"
	"multinet/internal/simnet"
)

type bhEdge struct {
	ifc *netem.Iface
	bh  bool
}

func applyBlackhole(a any) {
	e := a.(*bhEdge)
	e.ifc.SetBlackhole(e.bh)
}

// TestFluidExitThroughBlackhole pins single-path robustness through a
// silent fault: a steady flow that has entered fluid-advance mode is
// blackholed mid-transfer. The fluid session must dissolve back to
// packet mode (the link's state generation changed under it), the
// sender must take RTOs while the path is dark, and the transfer must
// complete after the path returns — no hang, no lost bytes.
func TestFluidExitThroughBlackhole(t *testing.T) {
	sim := simnet.New(11)
	up := netem.NewFixedLink(sim, 10, netem.LinkConfig{PropDelay: 15 * time.Millisecond})
	down := netem.NewFixedLink(sim, 10, netem.LinkConfig{PropDelay: 15 * time.Millisecond})
	iface := netem.NewIface(sim, "wifi", up, down)
	client := NewStack(sim, ClientSide)
	server := NewStack(sim, ServerSide)
	client.Bind(iface)
	server.Bind(iface)
	EnableFluid(client, server)

	const size = 4 << 20
	var sender *Conn
	var done time.Duration
	rtos := 0
	server.Accept = func(c *Conn) {
		sender = c
		c.cb.OnEstablished = func(c *Conn) {
			c.Send(size)
			c.Close()
		}
		c.cb.OnRTO = func(c *Conn, count int) { rtos++ }
	}
	client.Dial(iface, "f", Config{Callbacks: Callbacks{
		OnData: func(c *Conn, total int64) {
			if total >= size && done == 0 {
				done = sim.Now()
			}
		},
		OnRTO: func(c *Conn, count int) { rtos++ },
	}})
	sim.ScheduleArg(800*time.Millisecond, applyBlackhole, &bhEdge{ifc: iface, bh: true})
	sim.ScheduleArg(2500*time.Millisecond, applyBlackhole, &bhEdge{ifc: iface, bh: false})
	sim.Run()

	if done == 0 {
		t.Fatal("transfer did not complete after blackhole lifted")
	}
	if done < 2500*time.Millisecond {
		t.Fatalf("completed at %v, inside the blackhole window", done)
	}
	us := up.Stats()
	ds := down.Stats()
	if us.Elided+ds.Elided == 0 {
		t.Fatal("fluid mode never engaged — test is not exercising the fluid exit path")
	}
	// The sender's retransmissions and RTO firings prove recovery
	// happened in packet mode after the fluid session dissolved.
	if sender.Retransmits == 0 {
		t.Fatal("no retransmissions through the blackhole")
	}
	if rtos == 0 {
		t.Fatal("sender took no RTO through a silent blackhole")
	}
}
