package tcp

import (
	"time"

	"multinet/internal/netem"
	"multinet/internal/simnet"
)

// Fluid-advance mode: when a flow is in a provably steady regime — clean
// SACK scoreboard, no pending loss, lossless fixed-rate links it has to
// itself, a pure byte-count source on one side and a pure sink on the
// other — every new data segment, its delivery, its ACK and the ACK's
// arrival are computed analytically at send time from the links'
// serialiser clocks instead of being simulated as four packet events.
// The precomputed schedule is replayed in a handful of batched "step"
// events per RTT epoch, so the event count per RTT drops from O(cwnd)
// to O(1) while the sender's congestion state, RTT estimator and the
// receiver's byte counts evolve through exactly the same arithmetic
// packet mode would perform, at exactly the same semantic instants
// (Conn.now() returns the virtual event's time while it is replayed).
//
// Anything interesting — loss episodes, queue pressure, rate changes,
// link failures, competing traffic, FINs, custom sources or callbacks —
// either prevents the session from starting or makes it dissolve back
// into exact packet-level simulation. See DESIGN.md ("Hybrid
// fluid/packet execution") for the full state machine and the
// invariants maintained across the boundary.

const (
	// fluidQueueMargin is the droptail headroom (in packets) below which
	// virtual sends pause and the session drains: the overflow episode
	// itself must run in packet mode.
	fluidQueueMargin = 2
	// fluidMinEpochBytes is the minimum analytically-advanceable work
	// (per the closed-form epoch estimate) that justifies a session.
	fluidMinEpochBytes = 4 * MSS
)

// FluidDomain pairs the two endpoints of each flow across a client and
// a server stack and tracks which links are claimed by active sessions.
type FluidDomain struct {
	pending map[string]*Conn
	inUse   map[*netem.FixedLink]bool
}

// EnableFluid opts two stacks (the two ends of the simulated paths)
// into fluid-advance mode. Call it once, before traffic starts; it
// returns the shared domain. Connections become eligible pairwise as
// they appear in both stacks.
func EnableFluid(a, b *Stack) *FluidDomain {
	d := a.fluid
	if d == nil {
		d = b.fluid
	}
	if d == nil {
		d = &FluidDomain{
			pending: make(map[string]*Conn),
			inUse:   make(map[*netem.FixedLink]bool),
		}
	}
	a.fluid, b.fluid = d, d
	return d
}

// join pairs c with the opposite endpoint of the same flow if it is
// already known, or parks c until it appears.
func (d *FluidDomain) join(c *Conn) {
	if other, ok := d.pending[c.flow]; ok && other != c {
		delete(d.pending, c.flow)
		c.fluidPeer, other.fluidPeer = other, c
		c.fluidDom, other.fluidDom = d, d
		return
	}
	d.pending[c.flow] = c
}

// forget unlinks a closing connection from the domain.
func (d *FluidDomain) forget(c *Conn) {
	if d.pending[c.flow] == c {
		delete(d.pending, c.flow)
	}
	if p := c.fluidPeer; p != nil {
		p.fluidPeer, p.fluidDom = nil, nil
	}
	c.fluidPeer, c.fluidDom = nil, nil
}

// fluidSeg is one virtually carried data segment: its cumulative
// sequence end, payload size, arrival instant at the receiver, and the
// arrival instant of the ACK it elicits (-1 until the delivery step
// admits the ACK onto the reverse link, or forever if the reverse
// queue was full and the ACK virtually dropped).
type fluidSeg struct {
	seqEnd   uint64
	payload  int
	arriveAt time.Duration
	ackAt    time.Duration
	// sentAt and rtxed carry the segment's scoreboard state: while the
	// session runs, the fifo IS the sender's retransmission queue for
	// virtual segments (c.rtxq receives no entries — fluidSeg holds no
	// pointers, so the hot path stays free of GC write barriers), and
	// teardown materialises the unacked tail back into c.rtxq.
	sentAt time.Duration
	rtxed  bool
	// probe marks a virtual tail-loss-probe retransmission: an entirely
	// duplicate segment whose delivery leaves the receiver untouched but
	// elicits a pure duplicate ACK (seqEnd is rewritten at delivery time
	// to the dup-ACK's cumulative value).
	probe bool
}

// fluidSession is an active analytic episode on one flow. c is the data
// sender, p the pure receiver; dataLink carries c's segments, ackLink
// the returning ACKs. The fifo holds the precomputed schedule; dIdx and
// aIdx are the delivery and ACK replay cursors (aIdx <= dIdx always).
type fluidSession struct {
	d        *FluidDomain
	c, p     *Conn
	dataLink *netem.FixedLink
	ackLink  *netem.FixedLink

	fifo []fluidSeg
	dIdx int
	aIdx int

	// Interference detection: generation snapshots of both links, plus
	// the pre-entry flight whose real ACKs are expected (and therefore
	// not interference) on the ack link. preSeqs holds the seqEnds of
	// pre-entry segments not yet delivered at entry, in order; each
	// produces exactly one real ACK send when it reaches the receiver.
	dataState   uint64
	dataTraffic uint64
	ackState    uint64
	ackTraffic  uint64
	preSeqs     []uint64

	stepTimer simnet.Timer
	stepAt    time.Duration
	inStep    bool
	// lastAckAt is the latest admitted ACK arrival (monotone: admissions
	// happen in delivery order); ackPending counts admitted ACKs not yet
	// replayed. Both exist so schedule and finished stay O(1) instead of
	// scanning the fifo backlog.
	lastAckAt  time.Duration
	ackPending int
	// vHead is the virtual scoreboard's head cursor: fifo entries below
	// it are fully acked. ackRtxQueueFluid pops by advancing it (O(1)
	// per ACK instead of ackRtxQueue's O(window) copy-down); teardown
	// materialises [vHead:] back into c.rtxq.
	vHead int
	// vProbe is the analytic mirror of the tail-loss-probe timer: the
	// instant a pending probe schedule fires (-1: none). It is seeded
	// from the real timer at entry, re-armed by the suppressed armProbe
	// at each virtual ACK's semantic instant, and when it falls before
	// the next virtual ACK the probe retransmission is injected into the
	// schedule at exactly the packet-mode instant (stale shorter-PTO
	// schedules included — armProbe keeps them when pto > rto).
	vProbe time.Duration
	// drain stops new virtual sends (queue pressure or detected loss
	// signals); the session exits once the fifo is consumed and packet
	// mode plays out the episode.
	drain bool
}

// fluidLinks resolves the fixed-rate data and ack links for a sender.
func fluidLinks(c *Conn) (dl, al *netem.FixedLink, ok bool) {
	var dataL, ackL netem.Link
	if c.dir == netem.Up {
		dataL, ackL = c.iface.UpLink(), c.iface.DownLink()
	} else {
		dataL, ackL = c.iface.DownLink(), c.iface.UpLink()
	}
	dl, ok1 := dataL.(*netem.FixedLink)
	al, ok2 := ackL.(*netem.FixedLink)
	return dl, al, ok1 && ok2 && dl != al
}

// maybeEnterFluid starts an analytic session if the flow is provably in
// a steady regime. Called wherever new sending can begin: on every
// clean cumulative ACK and on Send.
func (c *Conn) maybeEnterFluid() {
	if c.fluid != nil || c.fluidPeer == nil || c.fluidDom == nil {
		return
	}
	p := c.fluidPeer
	// Sender must be established and spotless: nothing sacked or lost,
	// no dup-ACK run, no timeout history pending, a plain byte source
	// with enough data, and no per-segment callbacks observing the wire.
	if c.state != StateEstablished || c.finSent ||
		c.inRecov || c.lostPending != 0 || c.dupAcks != 0 ||
		c.rtoCount != 0 || c.probeFired || c.hiSacked > c.sndUna ||
		c.byteSrc == nil || c.byteSrc.pending < fluidMinEpochBytes ||
		c.cb.OnSegment != nil || c.cb.AckOpt != nil {
		return
	}
	// Receiver must be a pure in-order sink: established, hole-free, no
	// data of its own in flight or queued, no FIN exchanged, and no
	// wire-observing callbacks (AckOpt would put options on the very
	// ACKs the session elides).
	if p.state != StateEstablished || p.fluid != nil ||
		len(p.ooo) != 0 || len(p.rtxq) != 0 || p.peerFin ||
		p.finQueued || p.finSent || p.byteSrc == nil ||
		p.byteSrc.pending != 0 ||
		p.cb.OnSegment != nil || p.cb.AckOpt != nil {
		return
	}
	// Both directions of one interface, unobserved and uncontended.
	if c.iface != p.iface || c.iface.HasTaps() {
		return
	}
	// Radio promotion: elided packets cannot pay wake-up latency, so
	// only engage when steady-flow gaps (~1 RTT) can never look idle.
	if pd := c.iface.PromDelay(); pd > 0 &&
		(c.srtt == 0 || c.iface.PromIdle() <= 4*c.srtt) {
		return
	}
	dl, al, ok := fluidLinks(c)
	if !ok || c.fluidDom.inUse[dl] || c.fluidDom.inUse[al] ||
		!dl.Available() || !dl.Lossless() ||
		!al.Available() || !al.Lossless() {
		return
	}
	// Closed-form viability check: the first analytic epoch must move
	// enough data to be worth a session, and must fit in both droptail
	// queues with margin — otherwise the imminent overflow episode
	// belongs to packet mode.
	wnd := int(c.cwnd)
	if c.peerWnd < wnd {
		wnd = c.peerWnd
	}
	flight := int(c.sndNxt - c.sndUna)
	est, _ := analyticEpochAdvance(c.cwnd, c.ssthresh, wnd, flight, c.byteSrc.pending)
	if est < fluidMinEpochBytes {
		return
	}
	now := c.sim.Now()
	epochSegs := (est+flight)/MSS + fluidQueueMargin
	if analyticQueueOccupancy(dl.BusyUntil(), now, dl.TxTime(HeaderSize+MSS))+
		epochSegs > dl.QueueLimit() {
		return
	}
	if analyticQueueOccupancy(al.BusyUntil(), now, al.TxTime(HeaderSize))+
		epochSegs > al.QueueLimit() {
		return
	}

	s := &fluidSession{d: c.fluidDom, c: c, p: p, dataLink: dl, ackLink: al}
	s.stepAt = -1
	s.vProbe = -1
	s.lastAckAt = -1
	if c.probeTimer.Active() {
		s.vProbe = c.probeTimer.When()
	}
	for i := range c.rtxq {
		if end := c.rtxq[i].seg.SeqEnd(); end > p.rcvNxt {
			s.preSeqs = append(s.preSeqs, end)
		}
	}
	s.dataState, s.dataTraffic = dl.Gen()
	s.ackState, s.ackTraffic = al.Gen()
	s.d.inUse[dl], s.d.inUse[al] = true, true
	c.cancelRTO()
	c.probeTimer.Stop() // keep s.vProbe: cancelProbe would clear it
	c.fluid = s
	c.fluidSuppress = true
}

// expectedAcks counts how many pre-entry segments have reached the
// receiver so far — each elicited exactly one real ACK send on the ack
// link, which the interference check must not mistake for foreign
// traffic.
func (s *fluidSession) expectedAcks() int {
	n := 0
	for _, end := range s.preSeqs {
		if end <= s.p.rcvNxt {
			n++
		}
	}
	return n
}

// interference reports whether anything other than this session (and
// its expected pre-entry ACKs) touched either link since entry.
func (s *fluidSession) interference() bool {
	ds, dt := s.dataLink.Gen()
	as, at := s.ackLink.Gen()
	return ds != s.dataState || dt != s.dataTraffic || as != s.ackState ||
		at != s.ackTraffic+uint64(s.expectedAcks())
}

// sendVirtual advances one new data segment analytically. Refusal (no
// data, queue pressure, or loss signals) pauses the send loop; packet-
// mode sending resumes only after the session dissolves.
func (s *fluidSession) sendVirtual(c *Conn, max int) (int, bool) {
	if s.drain || c.dupAcks >= 3 || c.inRecov || c.lostPending != 0 {
		// dupAcks 1-2 are benign (a probe's duplicate ACK); packet mode's
		// trySend keeps sending through them too.
		return s.refuse()
	}
	at := c.now()
	if s.dataLink.FluidHeadroom(at) <= fluidQueueMargin ||
		s.ackLink.FluidHeadroom(at) <= fluidQueueMargin {
		s.drain = true
		return s.refuse()
	}
	n, _, ok := c.src.Next(max) // byteSource: opt is always nil
	if !ok {
		return s.refuse()
	}
	c.sndNxt += uint64(n)
	c.segmentsSent++
	done := s.dataLink.FluidAdmit(HeaderSize+n, at)
	if len(s.fifo) == cap(s.fifo) {
		// Reclaim the consumed prefix instead of letting append
		// reallocate (which would copy it along and abandon the array).
		s.compactFifo()
	}
	s.fifo = append(s.fifo, fluidSeg{
		seqEnd:   c.sndNxt,
		payload:  n,
		arriveAt: done + s.dataLink.PropDelay(),
		ackAt:    -1,
		sentAt:   at,
	})
	if !s.inStep {
		s.schedule()
	}
	return n, true
}

// refuse declines a virtual send. With nothing virtual in flight the
// session dissolves in place: the caller's trySend continues in packet
// mode and arms the timers, and a later Send or clean ACK may re-enter.
func (s *fluidSession) refuse() (int, bool) {
	if len(s.fifo) == 0 {
		s.teardown()
	}
	return 0, false
}

func fluidStep(a any) { a.(*fluidSession).runStep() }

// runStep replays every due virtual event, then exits or reschedules.
func (s *fluidSession) runStep() {
	s.stepAt = -1
	c := s.c
	if c.fluid != s || c.state == StateDone {
		return
	}
	now := c.sim.Now()
	if s.interference() ||
		c.dupAcks >= 3 || c.inRecov || c.lostPending != 0 ||
		c.rtoCount != 0 || c.hiSacked > c.sndUna {
		s.abort(now)
		return
	}
	s.advance(now)
	if c.fluid != s {
		return // desync or callback teardown inside the replay
	}
	if s.finished() {
		s.teardown()
		c.trySend() // resume packet mode: FIN, timers, leftover data
		return
	}
	s.schedule()
}

// advance replays deliveries and ACK arrivals due at or before now.
func (s *fluidSession) advance(now time.Duration) {
	s.inStep = true
	defer func() { s.inStep = false }()

	// Deliveries: the receiver's side of processData, plus the deferred
	// admission of its ACK onto the reverse link at the exact arrival
	// instant (keeping FIFO order with any real pre-entry ACKs).
	p := s.p
	advanced := false
	var touched time.Duration = -1
	for s.dIdx < len(s.fifo) && s.fifo[s.dIdx].arriveAt <= now {
		e := &s.fifo[s.dIdx]
		if e.probe {
			// An entirely duplicate probe retransmission: processData's
			// duplicate branch leaves the receiver untouched and answers
			// with a pure dup-ACK carrying the current cumulative point.
			p.segmentsRecvd++
			p.segmentsSent++
			s.dataLink.FluidDeliver(HeaderSize + e.payload)
			e.seqEnd = p.rcvNxt
			e.payload = 0
			if s.ackLink.FluidHeadroom(e.arriveAt) <= 0 {
				s.ackLink.FluidDropQueue()
				s.drain = true
			} else {
				ackDone := s.ackLink.FluidAdmit(HeaderSize, e.arriveAt)
				e.ackAt = ackDone + s.ackLink.PropDelay()
				s.lastAckAt = e.ackAt
				s.ackPending++
			}
			touched = e.arriveAt
			s.dIdx++
			continue
		}
		if p.rcvNxt != e.seqEnd-uint64(e.payload) {
			// A pre-entry segment was dropped below our virtual data:
			// hand everything over as out-of-order and let packet mode
			// run the SACK recovery.
			s.desync(advanced)
			return
		}
		p.segmentsRecvd++
		p.segmentsSent++ // the ACK below
		p.rcvNxt = e.seqEnd
		p.recvTotal = int64(e.seqEnd - 1) // minus SYN
		s.dataLink.FluidDeliver(HeaderSize + e.payload)
		if s.ackLink.FluidHeadroom(e.arriveAt) <= 0 {
			s.ackLink.FluidDropQueue() // droptail eats the ACK
			s.drain = true
		} else {
			ackDone := s.ackLink.FluidAdmit(HeaderSize, e.arriveAt)
			e.ackAt = ackDone + s.ackLink.PropDelay()
			s.lastAckAt = e.ackAt
			s.ackPending++
		}
		touched = e.arriveAt
		advanced = true
		s.dIdx++
	}
	if touched >= 0 {
		s.c.iface.FluidTouch(touched)
	}
	if advanced && p.cb.OnData != nil {
		p.cb.OnData(p, p.recvTotal)
	}

	// ACK arrivals: cumulative ACKs cover any virtually dropped ones.
	// The analytic probe clock interleaves by semantic time: the probe
	// fires iff no ACK processed before its expiry re-armed it, so the
	// injection check must precede every applyAck (which is where both
	// re-arms and new sends happen).
	var ackTouched time.Duration = -1
	for {
		j := s.aIdx
		for j < s.dIdx && s.fifo[j].ackAt < 0 {
			j++
		}
		var nextAck time.Duration = -1
		if j < s.dIdx {
			nextAck = s.fifo[j].ackAt
		}
		if s.vProbe >= 0 && (nextAck < 0 || s.vProbe <= nextAck) {
			if s.vProbe > now {
				break
			}
			s.injectProbe()
			continue
		}
		if nextAck < 0 || nextAck > now {
			break
		}
		e := s.fifo[j] // copy: applyAck can grow s.fifo
		s.aIdx = j + 1
		s.ackPending--
		s.applyAck(e)
		ackTouched = e.ackAt
		if s.c.fluid != s {
			break
		}
	}
	if ackTouched >= 0 {
		// One promotion-clock touch for the whole replayed run (monotone,
		// and nothing reads the clock between virtual ACKs).
		s.c.iface.FluidTouch(ackTouched)
	}
}

// injectProbe replays onProbe at the analytic probe clock's expiry: the
// newest unacked segment is marked retransmitted on the scoreboard and
// its (entirely duplicate) wire copy is admitted onto the data link at
// the exact semantic instant — in admission order, since all sends up
// to here happened at earlier ACK instants and later ones follow after.
func (s *fluidSession) injectProbe() {
	c := s.c
	at := s.vProbe
	s.vProbe = -1
	if c.sndNxt == c.sndUna || c.state == StateDone {
		return
	}
	c.probeFired = true
	// Newest unacked payload entry. Virtual segments are newer than any
	// pre-entry scoreboard remnant and all carry payload, so the scan
	// always lands on one (flight > 0 implies a live virtual entry:
	// virtual ACKs are cumulative, so remnants outlive them only while
	// no virtual ACK has been applied at all).
	idx := -1
	for i := len(s.fifo) - 1; i >= s.vHead; i-- {
		if !s.fifo[i].probe && s.fifo[i].payload > 0 {
			idx = i
			break
		}
	}
	if idx < 0 {
		return
	}
	// Loss marks never exist in-session (detectLoss is a proven no-op on
	// a clean scoreboard), so onProbe's lostPending adjustment is moot.
	e := &s.fifo[idx]
	e.rtxed = true
	e.sentAt = at
	seqEnd, payload := e.seqEnd, e.payload
	c.Retransmits++
	c.segmentsSent++
	if s.dataLink.FluidHeadroom(at) <= 0 {
		s.dataLink.FluidDropQueue() // droptail eats the probe copy
		s.drain = true
		return
	}
	done := s.dataLink.FluidAdmit(HeaderSize+payload, at)
	s.fifo = append(s.fifo, fluidSeg{
		seqEnd:   seqEnd,
		payload:  payload,
		arriveAt: done + s.dataLink.PropDelay(),
		ackAt:    -1,
		sentAt:   at,
		rtxed:    true, // a retransmission: never an RTT sample
		probe:    true,
	})
}

// applyAck is the exact mirror of processAck's clean cumulative branch
// for a pure virtual ACK, replayed at its semantic arrival instant.
func (s *fluidSession) applyAck(e fluidSeg) {
	c := s.c
	c.fluidClock = e.ackAt
	c.segmentsRecvd++
	s.ackLink.FluidDeliver(HeaderSize)
	if e.probe && e.seqEnd <= c.sndUna {
		// processAck's duplicate branch: the probe's dup-ACK arrived
		// after the regular ACK for the same cumulative point.
		if e.seqEnd == c.sndUna && c.BytesInFlight() > 0 {
			c.dupAcks++
			c.detectLoss()
			c.trySend()
		}
		c.fluidClock = -1
		return
	}
	dataAcked := int(e.seqEnd - c.sndUna)
	s.ackRtxQueueFluid(e.seqEnd)
	c.dupAcks = 0
	c.rtoCount = 0
	c.sndUna = e.seqEnd
	if c.cwnd < c.ssthresh {
		c.cwnd += float64(dataAcked) // slow start
	} else {
		c.cwnd += c.increase(c, dataAcked)
	}
	c.probeFired = false
	// Flight-based emptiness: on a clean scoreboard [sndUna, sndNxt) is
	// exactly what packet mode's rtxq would hold.
	if c.sndNxt == c.sndUna {
		c.cancelRTO()
		c.cancelProbe()
	} else {
		c.armProbe() // suppressed: re-arms the analytic probe clock
	}
	c.checkClosed()
	c.detectLoss()
	c.trySend()
	c.fluidClock = -1
}

// ackRtxQueueFluid is ackRtxQueue operating on the virtual scoreboard:
// the pop advances the fifo's vHead cursor (O(1) amortised, against
// ackRtxQueue's O(window) copy-down on every ACK — O(flight²) per
// epoch). Pre-entry remnants in c.rtxq (possible only when their real
// ACKs were dropped before entry) are drained through the regular
// representation first, sharing Karn's newest-sample rule across both.
func (s *fluidSession) ackRtxQueueFluid(ack uint64) {
	c := s.c
	var sampleAt time.Duration = -1
	if len(c.rtxq) > 0 {
		i := 0
		for ; i < len(c.rtxq); i++ {
			e := &c.rtxq[i]
			if e.seg.SeqEnd() > ack {
				break
			}
			if e.lost && !e.rtxed && !e.sacked {
				c.lostPending--
			}
			if !e.rtxed && e.sentAt > sampleAt {
				sampleAt = e.sentAt
			}
			if e.seg.Opt != nil && c.cb.OnAckedOpt != nil {
				c.cb.OnAckedOpt(c, e.seg.Opt)
			}
		}
		if i > 0 {
			n := copy(c.rtxq, c.rtxq[i:])
			clear(c.rtxq[n:])
			c.rtxq = c.rtxq[:n]
		}
	}
	i := s.vHead
	for ; i < len(s.fifo); i++ {
		e := &s.fifo[i]
		if e.seqEnd > ack {
			break
		}
		// Delivered probe entries (seqEnd rewritten to the dup-ACK's
		// cumulative point) fall through here; rtxed keeps them out of
		// the RTT sample, and they own no scoreboard state.
		if !e.rtxed && e.sentAt > sampleAt {
			sampleAt = e.sentAt
		}
	}
	s.vHead = i
	if sampleAt >= 0 {
		c.rttSample(c.now() - sampleAt)
	}
}

// compactFifo drops the fifo's fully consumed prefix in place so
// appends keep reusing the same backing array. Callers inside the
// replay loops are safe: the loops re-read the cursors every iteration.
func (s *fluidSession) compactFifo() {
	cut := s.aIdx
	if s.vHead < cut {
		cut = s.vHead
	}
	if cut == 0 {
		return
	}
	n := copy(s.fifo, s.fifo[cut:])
	s.fifo = s.fifo[:n]
	s.dIdx -= cut
	s.aIdx -= cut
	s.vHead -= cut
}

// finished reports whether every virtual segment has been delivered and
// every admitted ACK replayed.
func (s *fluidSession) finished() bool {
	return s.dIdx == len(s.fifo) && s.ackPending == 0
}

// schedule picks the next step instant. Three regimes: with lots of
// data left, one delivery step and one ACK step per burst (O(1) events
// per RTT); near the end of the source, one step per ACK so the final
// send happens at its exact real instant and the finish is schedulable;
// with the source drained, a step at the exact final-delivery instant
// (the receiver's completion time) and a final batched ACK step whose
// end dissolves the session and releases the FIN at the exact time
// packet mode would have sent it.
func (s *fluidSession) schedule() {
	c := s.c
	n := len(s.fifo)
	var nextAck time.Duration = -1
	for j := s.aIdx; j < s.dIdx; j++ {
		if s.fifo[j].ackAt >= 0 {
			nextAck = s.fifo[j].ackAt
			break
		}
	}
	// ACKs replay in admission order, so while any is pending the latest
	// admitted one (lastAckAt) is the last to replay.
	lastAck := func() time.Duration {
		if s.ackPending == 0 {
			return -1
		}
		return s.lastAckAt
	}
	pending := 0
	if c.byteSrc != nil {
		pending = c.byteSrc.pending
	}
	var at time.Duration = -1
	switch {
	case pending == 0:
		if s.dIdx < n {
			at = s.fifo[n-1].arriveAt
		} else {
			at = lastAck()
		}
	case !s.drain:
		// Batch: one delivery step and one ACK step per burst. Sends
		// happen inside the ACK step at their semantic (fluid-clock)
		// instants; if the source exhausts mid-burst the pending==0
		// regime above takes over at the next schedule and lands the
		// exact final-delivery and final-ACK steps.
		if s.dIdx < n {
			at = s.fifo[n-1].arriveAt
		} else {
			at = lastAck()
		}
	default:
		// Drain: replay ACK by ACK so the dissolve happens at the
		// earliest exact instant and packet mode takes over promptly.
		if nextAck >= 0 {
			at = nextAck
		}
		if s.dIdx < n && (at < 0 || s.fifo[s.dIdx].arriveAt < at) {
			at = s.fifo[s.dIdx].arriveAt
		}
	}
	if at < 0 {
		return
	}
	if now := c.sim.Now(); at < now {
		at = now // an injected probe's delivery can already be due
	}
	if s.stepTimer.Active() && s.stepAt == at {
		return
	}
	s.stepTimer.Stop()
	s.stepAt = at
	s.stepTimer = c.sim.ScheduleArg(at, fluidStep, s)
}

// abort dissolves the session after outside interference: everything
// due is replayed exactly, then the remainder is flushed at its (stale)
// precomputed schedule if the links are still up — a rate change only
// bends timings from here on — or discarded if a link died, exactly as
// in-flight packets die on a downed link; the re-armed RTO recovers.
func (s *fluidSession) abort(now time.Duration) {
	s.drain = true
	s.advance(now)
	if s.c.fluid != s {
		return
	}
	if s.dataLink.Available() && s.ackLink.Available() {
		s.advance(1<<62 - 1)
		if s.c.fluid != s {
			return
		}
	} else {
		// The link's own purge counted the drops; just skip the replay.
		s.dIdx = len(s.fifo)
		s.aIdx = s.dIdx
	}
	s.teardown()
	s.c.trySend()
}

// desync handles a receiver hole discovered mid-replay (a pre-entry
// segment was dropped): the remaining virtual data is delivered as
// out-of-order intervals, the receiver emits one real SACK-bearing
// dup-ACK, and packet mode runs the recovery.
func (s *fluidSession) desync(advanced bool) {
	p := s.p
	for ; s.dIdx < len(s.fifo); s.dIdx++ {
		e := &s.fifo[s.dIdx]
		p.segmentsRecvd++
		p.insertOOO(interval{e.seqEnd - uint64(e.payload), e.seqEnd})
		s.dataLink.FluidDeliver(HeaderSize + e.payload)
	}
	s.aIdx = s.dIdx
	if advanced && p.cb.OnData != nil {
		p.cb.OnData(p, p.recvTotal)
	}
	s.teardown()
	p.sendAck()
	s.c.trySend()
}

// discard drops the session without replay (Conn.Abort): the scoreboard
// keeps every unacked segment, so nothing is lost that packet mode
// would have preserved.
func (s *fluidSession) discard() { s.teardown() }

// teardown returns the connection to packet mode and releases the
// links. Callers re-run trySend when sending should resume.
func (s *fluidSession) teardown() {
	c := s.c
	// Materialise the unacked virtual tail back onto the real scoreboard
	// — identical to what track() would have recorded in packet mode.
	// Probe entries are retransmissions of existing segments and own no
	// scoreboard slot; c.rcvNxt never moves in-session (the sender
	// receives only pure ACKs), so Ack matches the send-time value.
	for i := s.vHead; i < len(s.fifo); i++ {
		e := &s.fifo[i]
		if e.probe {
			continue
		}
		c.rtxq = append(c.rtxq, rtxEntry{
			seg: Segment{
				Flow: c.flow, Flags: FlagACK,
				Seq: e.seqEnd - uint64(e.payload), Ack: c.rcvNxt,
				PayloadLen: e.payload, Wnd: DefaultWindow,
			},
			sentAt: e.sentAt,
			rtxed:  e.rtxed,
		})
	}
	s.vHead = len(s.fifo)
	c.fluid = nil
	c.fluidSuppress = false
	c.fluidClock = -1
	delete(s.d.inUse, s.dataLink)
	delete(s.d.inUse, s.ackLink)
	s.stepTimer.Stop()
	if s.vProbe >= 0 && !c.probeFired && len(c.rtxq) > 0 &&
		c.state != StateDone {
		// Restore the pending probe schedule as a real timer. armProbe
		// below replaces it when a fresh arm is due (pto <= rto), and
		// keeps it when stale — exactly packet mode's behaviour.
		at := s.vProbe
		if now := c.sim.Now(); at < now {
			at = now
		}
		c.probeTimer.Stop()
		c.probeTimer = c.sim.ScheduleArg(at, connOnProbe, c)
		s.vProbe = -1
	}
	if len(c.rtxq) > 0 && c.state != StateDone {
		c.armRTOIfIdle()
		c.armProbe()
	}
}

// --- Closed-form primitives -------------------------------------------
//
// These are the analytic building blocks the entry check uses to prove
// a session is worthwhile and queue-safe; fluid_test.go pins each one
// against hand-stepped packet traces.

// analyticAckAdvance returns the congestion window after one clean
// cumulative ACK of acked bytes under Reno (slow start below ssthresh,
// MSS*acked/cwnd above), mirroring processAck's update.
func analyticAckAdvance(cwnd, ssthresh float64, acked int) float64 {
	if cwnd < ssthresh {
		return cwnd + float64(acked)
	}
	return cwnd + float64(MSS)*float64(acked)/cwnd
}

// analyticEpochAdvance advances one ACK-clocked RTT epoch in closed
// form: the in-flight bytes return as MSS-quantum ACKs, each growing
// cwnd per analyticAckAdvance and releasing window for new sends,
// clamped by wndLimit (the min of cwnd and the peer window as the epoch
// progresses) and the sender's pending backlog. It returns the bytes
// newly sent during the epoch and the final window — the same values
// stepping the packet simulator through one RTT would produce for a
// clean flow.
func analyticEpochAdvance(cwnd, ssthresh float64, wndLimit, inflight, pending int) (sent int, cwndOut float64) {
	pipe := inflight
	acked := 0
	for acked < inflight && pending > 0 {
		q := MSS
		if inflight-acked < q {
			q = inflight - acked
		}
		acked += q
		pipe -= q
		cwnd = analyticAckAdvance(cwnd, ssthresh, q)
		w := wndLimit
		if c := int(cwnd); c < w {
			w = c
		}
		for (w-pipe >= MSS || (w-pipe > 0 && pipe == 0)) && pending > 0 {
			n := MSS
			if pending < n {
				n = pending
			}
			if b := w - pipe; b < n {
				n = b
			}
			pending -= n
			pipe += n
			sent += n
		}
	}
	return sent, cwnd
}

// analyticQueueOccupancy returns the droptail occupancy (in packets) of
// a serialiser at time at, given its busy-until clock and a per-packet
// transmission time: the packets whose service has not finished yet.
func analyticQueueOccupancy(busyUntil, at, txPerPkt time.Duration) int {
	if busyUntil <= at || txPerPkt <= 0 {
		return 0
	}
	return int((busyUntil - at + txPerPkt - 1) / txPerPkt)
}
