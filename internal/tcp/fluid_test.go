package tcp

import (
	"fmt"
	"testing"
	"time"

	"multinet/internal/netem"
	"multinet/internal/simnet"
)

// transferResult captures everything a differential comparison needs.
type transferResult struct {
	fct        time.Duration
	events     uint64
	drops      int
	elided     int
	sndSegs    int // data-sender segments transmitted
	rcvSegs    int // data-receiver segments transmitted (ACKs)
	retransmit int
}

// runTransfer simulates one transfer of size bytes and returns its
// observables. upload=false is server→client (the common case);
// upload=true reverses the sender. fluid enables fluid-advance mode.
func runTransfer(t testing.TB, seed int64, mbps float64, owd time.Duration,
	loss float64, queue, size int, upload, fluid bool) transferResult {
	t.Helper()
	sim := simnet.New(seed)
	cfg := func(stream string) netem.LinkConfig {
		return netem.LinkConfig{
			PropDelay:  owd,
			LossProb:   loss,
			RNG:        sim.RNG(stream),
			QueueLimit: queue,
		}
	}
	up := netem.NewFixedLink(sim, mbps, cfg("loss/up"))
	down := netem.NewFixedLink(sim, mbps, cfg("loss/down"))
	iface := netem.NewIface(sim, "wifi", up, down)
	client := NewStack(sim, ClientSide)
	server := NewStack(sim, ServerSide)
	client.Bind(iface)
	server.Bind(iface)
	if fluid {
		EnableFluid(client, server)
	}

	var done time.Duration
	finish := func(c *Conn, total int64) {
		if total >= int64(size) && done == 0 {
			done = sim.Now()
		}
	}
	var sender, receiver *Conn
	if upload {
		server.Accept = func(c *Conn) {
			receiver = c
			c.cb.OnData = finish
		}
		sender = client.Dial(iface, "f", Config{Callbacks: Callbacks{
			OnEstablished: func(c *Conn) {
				c.Send(size)
				c.Close()
			},
		}})
	} else {
		server.Accept = func(c *Conn) {
			sender = c
			c.cb.OnEstablished = func(c *Conn) {
				c.Send(size)
				c.Close()
			}
		}
		receiver = client.Dial(iface, "f", Config{Callbacks: Callbacks{
			OnData: finish,
		}})
	}
	sim.Run()
	if done == 0 {
		t.Fatalf("transfer (mbps=%v owd=%v loss=%v queue=%d size=%d fluid=%v) did not complete",
			mbps, owd, loss, queue, size, fluid)
	}
	us, ds := up.Stats(), down.Stats()
	return transferResult{
		fct:        done,
		events:     sim.Processed(),
		drops:      us.DroppedQueue + us.DroppedLoss + ds.DroppedQueue + ds.DroppedLoss,
		elided:     us.Elided + ds.Elided,
		sndSegs:    sender.SegmentsSent(),
		rcvSegs:    receiver.SegmentsSent(),
		retransmit: sender.Retransmits,
	}
}

// TestFluidDifferentialExact drives the fluid kernel against the packet
// kernel over a grid of clean (drop-free) configurations: flow
// completion time and segment counts must match bit for bit, and the
// fluid run must actually elide the bulk of the packets.
func TestFluidDifferentialExact(t *testing.T) {
	owds := []time.Duration{2 * time.Millisecond, 15 * time.Millisecond}
	for _, mbps := range []float64{5, 20, 50} {
		for _, owd := range owds {
			for _, size := range []int{30_000, 300_000, 2_000_000} {
				for _, upload := range []bool{false, true} {
					name := fmt.Sprintf("%gmbps/%v/%dB/up=%v", mbps, owd, size, upload)
					t.Run(name, func(t *testing.T) {
						pkt := runTransfer(t, 7, mbps, owd, 0, 500, size, upload, false)
						fld := runTransfer(t, 7, mbps, owd, 0, 500, size, upload, true)
						if pkt.drops != 0 || fld.drops != 0 {
							t.Fatalf("expected drop-free grid point, got pkt=%d fluid=%d drops",
								pkt.drops, fld.drops)
						}
						if fld.fct != pkt.fct {
							t.Errorf("FCT diverged: packet %v, fluid %v (Δ %v)",
								pkt.fct, fld.fct, fld.fct-pkt.fct)
						}
						if fld.sndSegs != pkt.sndSegs || fld.rcvSegs != pkt.rcvSegs {
							t.Errorf("segment counts diverged: packet snd=%d rcv=%d, fluid snd=%d rcv=%d",
								pkt.sndSegs, pkt.rcvSegs, fld.sndSegs, fld.rcvSegs)
						}
						// Spurious tail-loss probes (stale short-PTO
						// schedules) must be reproduced exactly too.
						if fld.retransmit != pkt.retransmit {
							t.Errorf("retransmits diverged: packet %d, fluid %d",
								pkt.retransmit, fld.retransmit)
						}
						if fld.elided == 0 {
							t.Errorf("fluid mode never engaged (0 elided packets)")
						}
						if pkt.elided != 0 {
							t.Errorf("packet mode elided %d packets, want 0", pkt.elided)
						}
					})
				}
			}
		}
	}
}

// TestFluidDifferentialLossy checks the regime-switch cases. With random
// loss the links are not fluid-eligible, so enabling fluid must change
// nothing at all. With droptail overflow the session drains back to
// packet mode around the loss episode; exactness is not promised there,
// but completion time must stay within tolerance.
func TestFluidDifferentialLossy(t *testing.T) {
	t.Run("random-loss-identical", func(t *testing.T) {
		for seed := int64(1); seed <= 4; seed++ {
			pkt := runTransfer(t, seed, 20, 15*time.Millisecond, 0.005, 200, 500_000, false, false)
			fld := runTransfer(t, seed, 20, 15*time.Millisecond, 0.005, 200, 500_000, false, true)
			if fld.elided != 0 {
				t.Fatalf("seed %d: fluid engaged on a lossy link (%d elided)", seed, fld.elided)
			}
			if fld.fct != pkt.fct || fld.sndSegs != pkt.sndSegs || fld.retransmit != pkt.retransmit {
				t.Errorf("seed %d: lossy run diverged: packet (fct=%v segs=%d rtx=%d) fluid (fct=%v segs=%d rtx=%d)",
					seed, pkt.fct, pkt.sndSegs, pkt.retransmit, fld.fct, fld.sndSegs, fld.retransmit)
			}
		}
	})
	t.Run("queue-overflow-tolerance", func(t *testing.T) {
		cases := []struct {
			mbps  float64
			owd   time.Duration
			queue int
			size  int
		}{
			{50, 30 * time.Millisecond, 50, 4_000_000},
			{20, 40 * time.Millisecond, 30, 2_000_000},
			{100, 20 * time.Millisecond, 64, 4_000_000},
		}
		for _, tc := range cases {
			name := fmt.Sprintf("%gmbps/%v/q%d", tc.mbps, tc.owd, tc.queue)
			t.Run(name, func(t *testing.T) {
				pkt := runTransfer(t, 11, tc.mbps, tc.owd, 0, tc.queue, tc.size, false, false)
				fld := runTransfer(t, 11, tc.mbps, tc.owd, 0, tc.queue, tc.size, false, true)
				if pkt.drops == 0 {
					t.Fatalf("expected droptail overflow in packet mode, got none")
				}
				ratio := float64(fld.fct) / float64(pkt.fct)
				if ratio < 0.65 || ratio > 1.35 {
					t.Errorf("overflow FCT out of tolerance: packet %v, fluid %v (ratio %.3f)",
						pkt.fct, fld.fct, ratio)
				}
			})
		}
	})
}

// TestFluidElidesEvents pins the point of the whole exercise: a clean
// bulk flow in fluid mode must execute a small fraction of the packet
// kernel's events.
func TestFluidElidesEvents(t *testing.T) {
	pkt := runTransfer(t, 3, 20, 15*time.Millisecond, 0, 200, 2_000_000, false, false)
	fld := runTransfer(t, 3, 20, 15*time.Millisecond, 0, 200, 2_000_000, false, true)
	if fld.fct != pkt.fct {
		t.Fatalf("FCT diverged: packet %v fluid %v", pkt.fct, fld.fct)
	}
	if fld.events*3 >= pkt.events {
		t.Errorf("fluid mode processed %d events vs packet %d — want at least 3x fewer",
			fld.events, pkt.events)
	}
	if fld.elided < 1000 {
		t.Errorf("only %d packets elided for a 2MB flow", fld.elided)
	}
}

// --- Closed-form primitive pins ---------------------------------------
//
// Each analytic primitive is checked against a hand-stepped trace of
// the packet-mode arithmetic it replaces.

func TestAnalyticAckAdvance(t *testing.T) {
	// Slow start: cwnd grows by exactly the acked bytes.
	if got := analyticAckAdvance(14600, 1e9, MSS); got != 14600+MSS {
		t.Errorf("slow-start advance = %v, want %v", got, 14600+MSS)
	}
	// Congestion avoidance: cwnd += MSS*acked/cwnd.
	cwnd := 50.0 * MSS
	want := cwnd + float64(MSS)*float64(MSS)/cwnd
	if got := analyticAckAdvance(cwnd, 20*MSS, MSS); got != want {
		t.Errorf("CA advance = %v, want %v", got, want)
	}
	// Partial quantum (last ACK of a flow).
	if got := analyticAckAdvance(14600, 1e9, 500); got != 14600+500 {
		t.Errorf("partial advance = %v, want %v", got, 14600+500)
	}
}

// stepEpochByHand replays one RTT epoch the way the packet kernel does:
// each returning ACK quantum runs the processAck cwnd update and then
// the trySend loop against the current windows.
func stepEpochByHand(cwnd, ssthresh float64, wndLimit, inflight, pending int) (int, float64) {
	pipe := inflight
	sent := 0
	for rem := inflight; rem > 0 && pending > 0; {
		q := MSS
		if rem < q {
			q = rem
		}
		rem -= q
		pipe -= q
		if cwnd < ssthresh {
			cwnd += float64(q)
		} else {
			cwnd += float64(MSS) * float64(q) / cwnd
		}
		w := wndLimit
		if c := int(cwnd); c < w {
			w = c
		}
		for (w-pipe >= MSS || (w-pipe > 0 && pipe == 0)) && pending > 0 {
			n := MSS
			if pending < n {
				n = pending
			}
			if b := w - pipe; b < n {
				n = b
			}
			pending -= n
			pipe += n
			sent += n
		}
	}
	return sent, cwnd
}

func TestAnalyticEpochAdvance(t *testing.T) {
	cases := []struct {
		name     string
		cwnd     float64
		ssthresh float64
		wnd      int
		inflight int
		pending  int
	}{
		// Slow start: window doubles, so one epoch of 10 in-flight
		// segments releases ~20 new ones.
		{"slow-start", 10 * MSS, float64(DefaultWindow), DefaultWindow, 10 * MSS, 1 << 20},
		// Congestion avoidance: ~one extra segment per epoch.
		{"cong-avoid", 40 * MSS, 20 * MSS, DefaultWindow, 40 * MSS, 1 << 20},
		// Receiver-window-limited: growth is clamped by the peer.
		{"rwnd-limited", 30 * MSS, float64(DefaultWindow), 32 * MSS, 30 * MSS, 1 << 20},
		// Source-limited: the backlog runs out mid-epoch.
		{"src-limited", 10 * MSS, float64(DefaultWindow), DefaultWindow, 10 * MSS, 7 * MSS},
		// Partial final quantum in flight.
		{"ragged-flight", 10 * MSS, float64(DefaultWindow), DefaultWindow, 10*MSS + 700, 1 << 20},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			gotSent, gotCwnd := analyticEpochAdvance(tc.cwnd, tc.ssthresh, tc.wnd, tc.inflight, tc.pending)
			wantSent, wantCwnd := stepEpochByHand(tc.cwnd, tc.ssthresh, tc.wnd, tc.inflight, tc.pending)
			if gotSent != wantSent || gotCwnd != wantCwnd {
				t.Errorf("epoch advance = (%d, %v), hand-stepped = (%d, %v)",
					gotSent, gotCwnd, wantSent, wantCwnd)
			}
		})
	}
	// Spot-check the slow-start numbers themselves (not just agreement):
	// 10 MSS in flight, unlimited backlog → every ACK releases 2 segs.
	sent, cwnd := analyticEpochAdvance(10*MSS, float64(DefaultWindow), DefaultWindow, 10*MSS, 1<<20)
	if sent != 20*MSS {
		t.Errorf("slow-start epoch sent %d bytes, want %d", sent, 20*MSS)
	}
	if cwnd != 20*MSS {
		t.Errorf("slow-start epoch cwnd %v, want %v", cwnd, 20*MSS)
	}
}

func TestAnalyticQueueOccupancy(t *testing.T) {
	tx := 600 * time.Microsecond
	cases := []struct {
		busy, at time.Duration
		want     int
	}{
		{0, 0, 0},                   // idle link
		{time.Millisecond, 2 * time.Millisecond, 0}, // drained
		{2 * time.Millisecond, 0, 4},                // ceil(2ms/600us)
		{1800 * time.Microsecond, 0, 3},             // exact multiple
		{1801 * time.Microsecond, 0, 4},             // just over
	}
	for _, tc := range cases {
		if got := analyticQueueOccupancy(tc.busy, tc.at, tx); got != tc.want {
			t.Errorf("occupancy(busy=%v at=%v) = %d, want %d", tc.busy, tc.at, got, tc.want)
		}
	}
	// Against a live link: admit three full segments virtually and
	// compare with the closed form.
	sim := simnet.New(1)
	l := netem.NewFixedLink(sim, 20, netem.LinkConfig{PropDelay: 10 * time.Millisecond, QueueLimit: 100})
	l.SetReceiver(func(p *netem.Packet) {})
	for i := 0; i < 3; i++ {
		l.FluidAdmit(HeaderSize+MSS, 0)
	}
	want := analyticQueueOccupancy(l.BusyUntil(), 0, l.TxTime(HeaderSize+MSS))
	if want != 3 {
		t.Errorf("closed-form occupancy after 3 admissions = %d, want 3", want)
	}
}
