package tcp

import (
	"testing"
	"testing/quick"
	"time"

	"multinet/internal/netem"
	"multinet/internal/simnet"
)

// testNet wires a client and server stack over one duplex interface.
type testNet struct {
	sim    *simnet.Sim
	iface  *netem.Iface
	client *Stack
	server *Stack
}

func newTestNet(t testing.TB, seed int64, mbps float64, owd time.Duration, loss float64) *testNet {
	sim := simnet.New(seed)
	cfg := func(stream string) netem.LinkConfig {
		return netem.LinkConfig{
			PropDelay:  owd,
			LossProb:   loss,
			RNG:        sim.RNG(stream),
			QueueLimit: 200,
		}
	}
	up := netem.NewFixedLink(sim, mbps, cfg("loss/up"))
	down := netem.NewFixedLink(sim, mbps, cfg("loss/down"))
	iface := netem.NewIface(sim, "wifi", up, down)
	n := &testNet{
		sim:    sim,
		iface:  iface,
		client: NewStack(sim, ClientSide),
		server: NewStack(sim, ServerSide),
	}
	n.client.Bind(iface)
	n.server.Bind(iface)
	return n
}

// download runs a server→client transfer of size bytes and returns the
// completion time (all bytes in order at the client).
func download(t testing.TB, n *testNet, size int) time.Duration {
	t.Helper()
	var done time.Duration
	n.server.Accept = func(c *Conn) {
		c.cb.OnEstablished = func(c *Conn) {
			c.Send(size)
			c.Close()
		}
	}
	n.client.Dial(n.iface, "flow1", Config{Callbacks: Callbacks{
		OnData: func(c *Conn, total int64) {
			if total >= int64(size) && done == 0 {
				done = n.sim.Now()
			}
		},
	}})
	n.sim.Run()
	if done == 0 {
		t.Fatalf("download of %d bytes did not complete", size)
	}
	return done
}

func TestHandshakeTiming(t *testing.T) {
	n := newTestNet(t, 1, 10, 20*time.Millisecond, 0)
	var clientEst, serverEst time.Duration
	n.server.Accept = func(c *Conn) {
		c.cb.OnEstablished = func(c *Conn) { serverEst = n.sim.Now() }
	}
	n.client.Dial(n.iface, "f", Config{Callbacks: Callbacks{
		OnEstablished: func(c *Conn) { clientEst = n.sim.Now() },
	}})
	n.sim.Run()
	// One RTT is 2*20ms + tiny serialization. Client established after
	// SYN-ACK (1 RTT), server after final ACK (1.5 RTT).
	if clientEst < 40*time.Millisecond || clientEst > 45*time.Millisecond {
		t.Fatalf("client established at %v, want ~40ms", clientEst)
	}
	if serverEst < 60*time.Millisecond || serverEst > 66*time.Millisecond {
		t.Fatalf("server established at %v, want ~60ms", serverEst)
	}
}

func TestDownloadCompletes(t *testing.T) {
	n := newTestNet(t, 1, 10, 10*time.Millisecond, 0)
	d := download(t, n, 100_000)
	if d <= 0 {
		t.Fatal("no completion")
	}
}

func TestThroughputApproachesLinkRate(t *testing.T) {
	// A 1 MB transfer on a clean 10 Mbit/s, 10 ms OWD link should
	// achieve most of the link rate despite slow start.
	n := newTestNet(t, 1, 10, 10*time.Millisecond, 0)
	const size = 1 << 20
	d := download(t, n, size)
	mbps := float64(size) * 8 / d.Seconds() / 1e6
	if mbps < 7 || mbps > 10.1 {
		t.Fatalf("1MB goodput = %.2f Mbit/s, want 7-10 on a 10 Mbit/s link", mbps)
	}
}

func TestShortFlowDominatedByRTT(t *testing.T) {
	// A 10 KB flow takes ~1 RTT handshake + ~1 RTT data on a fast
	// link: it is RTT-bound, not rate-bound.
	fast := newTestNet(t, 1, 100, 50*time.Millisecond, 0)
	d := download(t, fast, 10_000)
	// Expect roughly 2 RTT = 200 ms, certainly under 3 RTT.
	if d < 150*time.Millisecond || d > 320*time.Millisecond {
		t.Fatalf("10KB FCT = %v, want ~200-300ms (RTT-bound)", d)
	}
}

func TestLargerFlowHigherThroughput(t *testing.T) {
	// Throughput (size/FCT) grows with flow size as slow start
	// amortises — the effect behind the paper's Fig. 7 x-axis.
	var prev float64
	for _, size := range []int{10_000, 100_000, 1_000_000} {
		n := newTestNet(t, 1, 20, 25*time.Millisecond, 0)
		d := download(t, n, size)
		mbps := float64(size) * 8 / d.Seconds() / 1e6
		if mbps <= prev {
			t.Fatalf("throughput not increasing with flow size: %v Mbit/s after %v", mbps, prev)
		}
		prev = mbps
	}
}

func TestUploadDirection(t *testing.T) {
	n := newTestNet(t, 1, 10, 10*time.Millisecond, 0)
	const size = 200_000
	var done time.Duration
	n.server.Accept = func(c *Conn) {
		c.cb.OnData = func(c *Conn, total int64) {
			if total >= size && done == 0 {
				done = n.sim.Now()
			}
		}
	}
	c := n.client.Dial(n.iface, "up1", Config{Callbacks: Callbacks{
		OnEstablished: func(c *Conn) {
			c.Send(size)
			c.Close()
		},
	}})
	n.sim.Run()
	if done == 0 {
		t.Fatal("upload did not complete")
	}
	if c.State() == StateEstablished {
		t.Fatalf("client state after close = %v", c.State())
	}
}

func TestLossRecovery(t *testing.T) {
	// 2% loss: the transfer must still complete, with retransmissions.
	n := newTestNet(t, 3, 10, 10*time.Millisecond, 0.02)
	const size = 500_000
	var done time.Duration
	n.server.Accept = func(c *Conn) {
		c.cb.OnEstablished = func(c *Conn) { c.Send(size); c.Close() }
	}
	n.client.Dial(n.iface, "lossy", Config{Callbacks: Callbacks{
		OnData: func(c *Conn, total int64) {
			if total >= size && done == 0 {
				done = n.sim.Now()
			}
		},
	}})
	n.sim.Run()
	if done == 0 {
		t.Fatal("lossy download did not complete")
	}
	srv := n.server.Conn("lossy")
	if srv.Retransmits == 0 {
		t.Fatal("expected retransmissions under 2% loss")
	}
}

func TestFastRetransmitUsedBeforeRTO(t *testing.T) {
	// Moderate loss on a long flow should trigger fast recovery.
	n := newTestNet(t, 5, 20, 15*time.Millisecond, 0.01)
	const size = 1 << 20
	done := false
	n.server.Accept = func(c *Conn) {
		c.cb.OnEstablished = func(c *Conn) { c.Send(size); c.Close() }
	}
	n.client.Dial(n.iface, "fr", Config{Callbacks: Callbacks{
		OnData: func(c *Conn, total int64) { done = total >= size || done },
	}})
	n.sim.Run()
	if !done {
		t.Fatal("transfer incomplete")
	}
	if n.server.Conn("fr").FastRecovers == 0 {
		t.Fatal("expected at least one fast recovery")
	}
}

func TestSYNRetransmission(t *testing.T) {
	// Link down at connect time: SYN is retried with backoff and the
	// connection eventually establishes when the link comes up.
	n := newTestNet(t, 1, 10, 10*time.Millisecond, 0)
	n.iface.SetBlackhole(true)
	established := time.Duration(0)
	n.server.Accept = func(c *Conn) {}
	n.client.Dial(n.iface, "syn", Config{Callbacks: Callbacks{
		OnEstablished: func(c *Conn) { established = n.sim.Now() },
	}})
	n.sim.After(2500*time.Millisecond, func() { n.iface.SetBlackhole(false) })
	n.sim.Run()
	if established == 0 {
		t.Fatal("connection never established after link recovery")
	}
	// SYN at 0 lost; retries at ~1s (lost), ~3s (delivered).
	if established < 2900*time.Millisecond {
		t.Fatalf("established at %v, expected ≥3s (backoff schedule)", established)
	}
}

func TestRTOCollapsesWindow(t *testing.T) {
	n := newTestNet(t, 1, 10, 10*time.Millisecond, 0)
	var srv *Conn
	n.server.Accept = func(c *Conn) {
		srv = c
		c.cb.OnEstablished = func(c *Conn) { c.Send(5 << 20) }
	}
	n.client.Dial(n.iface, "rto", Config{})
	n.sim.RunFor(2 * time.Second)
	before := srv.CwndBytes()
	if before <= InitialCwndSegments*MSS {
		t.Fatalf("cwnd did not grow: %d", before)
	}
	n.iface.SetBlackhole(true)
	n.sim.RunFor(5 * time.Second)
	if srv.RTOCount() == 0 {
		t.Fatal("no RTO during blackhole")
	}
	if got := srv.CwndBytes(); got != MSS {
		t.Fatalf("cwnd after RTO = %d, want %d (one MSS)", got, MSS)
	}
}

func TestRTTEstimate(t *testing.T) {
	n := newTestNet(t, 1, 50, 30*time.Millisecond, 0)
	var srv *Conn
	n.server.Accept = func(c *Conn) {
		srv = c
		c.cb.OnEstablished = func(c *Conn) { c.Send(300_000); c.Close() }
	}
	n.client.Dial(n.iface, "rtt", Config{})
	n.sim.Run()
	srtt := srv.SRTT()
	// True RTT is 60 ms + queueing; SRTT should be in a sane band.
	if srtt < 60*time.Millisecond || srtt > 120*time.Millisecond {
		t.Fatalf("SRTT = %v, want 60-120ms", srtt)
	}
	if srv.RTO() < MinRTO {
		t.Fatalf("RTO %v below floor %v", srv.RTO(), MinRTO)
	}
}

func TestFINHandshakeClosesBothSides(t *testing.T) {
	n := newTestNet(t, 1, 10, 5*time.Millisecond, 0)
	closedServer := false
	closedClient := false
	var cli *Conn
	n.server.Accept = func(c *Conn) {
		c.cb.OnEstablished = func(c *Conn) { c.Send(10_000); c.Close() }
		c.cb.OnClosed = func(c *Conn) { closedServer = true }
	}
	cli = n.client.Dial(n.iface, "fin", Config{Callbacks: Callbacks{
		OnData: func(c *Conn, total int64) {
			if total >= 10_000 {
				c.Close()
			}
		},
		OnClosed: func(c *Conn) { closedClient = true },
	}})
	n.sim.Run()
	if !closedServer || !closedClient {
		t.Fatalf("closed: server=%v client=%v", closedServer, closedClient)
	}
	if cli.State() != StateDone {
		t.Fatalf("client state = %v, want done", cli.State())
	}
}

func TestConcurrentFlowsShareLink(t *testing.T) {
	n := newTestNet(t, 1, 10, 10*time.Millisecond, 0)
	const size = 300_000
	done := map[string]time.Duration{}
	n.server.Accept = func(c *Conn) {
		c.cb.OnEstablished = func(c *Conn) { c.Send(size); c.Close() }
	}
	for _, f := range []string{"a", "b", "c"} {
		f := f
		n.client.Dial(n.iface, f, Config{Callbacks: Callbacks{
			OnData: func(c *Conn, total int64) {
				if total >= size {
					if _, ok := done[f]; !ok {
						done[f] = n.sim.Now()
					}
				}
			},
		}})
	}
	n.sim.Run()
	if len(done) != 3 {
		t.Fatalf("completed %d flows, want 3", len(done))
	}
	// Aggregate goodput should be near link rate.
	var last time.Duration
	for _, d := range done {
		if d > last {
			last = d
		}
	}
	agg := float64(3*size) * 8 / last.Seconds() / 1e6
	if agg < 7 {
		t.Fatalf("aggregate goodput %.1f Mbit/s too low", agg)
	}
}

func TestOnAckedOptCallback(t *testing.T) {
	n := newTestNet(t, 1, 10, 5*time.Millisecond, 0)
	type mapping struct{ d int }
	var acked []any
	src := &scriptSource{chunks: []scriptChunk{
		{n: 1000, opt: &mapping{1}},
		{n: 1000, opt: &mapping{2}},
	}}
	n.server.Accept = func(c *Conn) {}
	cli := NewConn(n.sim, n.iface, netem.Up, "opt", Config{
		Source: src,
		Callbacks: Callbacks{
			OnAckedOpt: func(c *Conn, opt any) { acked = append(acked, opt) },
		},
	})
	n.client.Register(cli)
	cli.Connect()
	n.sim.Run()
	if len(acked) != 2 {
		t.Fatalf("acked %d options, want 2", len(acked))
	}
	if acked[0].(*mapping).d != 1 || acked[1].(*mapping).d != 2 {
		t.Fatalf("acked order wrong: %+v", acked)
	}
}

// scriptSource feeds a fixed list of (size, opt) chunks.
type scriptSource struct {
	chunks []scriptChunk
	i      int
}
type scriptChunk struct {
	n   int
	opt any
}

func (s *scriptSource) Next(max int) (int, any, bool) {
	if s.i >= len(s.chunks) {
		return 0, nil, false
	}
	c := s.chunks[s.i]
	if c.n > max {
		return 0, nil, false // chunks are not split in this test source
	}
	s.i++
	return c.n, c.opt, true
}

func (s *scriptSource) Pending() bool { return s.i < len(s.chunks) }

func TestDeterministicTransfer(t *testing.T) {
	run := func() time.Duration {
		n := newTestNet(t, 77, 15, 20*time.Millisecond, 0.01)
		return download(t, n, 400_000)
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("non-deterministic: %v vs %v", a, b)
	}
}

// Property: for any flow size, the receiver ends with exactly the sent
// byte count — no duplication or loss at the reliability layer, even
// over a lossy link.
func TestPropertyReliableDelivery(t *testing.T) {
	f := func(sizeRaw uint32, seed int64) bool {
		size := int(sizeRaw%900_000) + 1
		n := newTestNet(t, seed, 12, 15*time.Millisecond, 0.03)
		var got int64
		n.server.Accept = func(c *Conn) {
			c.cb.OnEstablished = func(c *Conn) { c.Send(size); c.Close() }
		}
		n.client.Dial(n.iface, "p", Config{Callbacks: Callbacks{
			OnData: func(c *Conn, total int64) { got = total },
		}})
		n.sim.Run()
		return got == int64(size)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: cumulative in-order byte counts reported via OnData are
// strictly increasing.
func TestPropertyMonotonicDelivery(t *testing.T) {
	f := func(seed int64) bool {
		n := newTestNet(t, seed, 8, 10*time.Millisecond, 0.05)
		var prev int64 = -1
		okMono := true
		n.server.Accept = func(c *Conn) {
			c.cb.OnEstablished = func(c *Conn) { c.Send(200_000); c.Close() }
		}
		n.client.Dial(n.iface, "m", Config{Callbacks: Callbacks{
			OnData: func(c *Conn, total int64) {
				if total <= prev {
					okMono = false
				}
				prev = total
			},
		}})
		n.sim.Run()
		return okMono && prev == 200_000
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
