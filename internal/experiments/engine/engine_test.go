package engine

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
)

type stringerFunc string

func (s stringerFunc) String() string { return string(s) }

// unregister removes test fixtures so the global registry is clean for
// same-process re-runs (go test -count=N).
func unregister(t *testing.T, names ...string) {
	t.Cleanup(func() {
		regMu.Lock()
		defer regMu.Unlock()
		for _, n := range names {
			delete(reg, n)
		}
	})
}

func TestRegisterLookupOrder(t *testing.T) {
	unregister(t, "zz-test-a", "zz-test-b")
	mk := func(s string) func(Options) fmt.Stringer {
		return func(Options) fmt.Stringer { return stringerFunc(s) }
	}
	Register(Meta{Name: "zz-test-b", Title: "B", Order: 2}, mk("b"))
	Register(Meta{Name: "zz-test-a", Title: "A", Order: 1}, mk("a"))

	e, ok := Lookup("zz-test-a")
	if !ok || e.Meta.Title != "A" {
		t.Fatalf("Lookup(zz-test-a) = %+v, %v", e.Meta, ok)
	}
	if _, ok := Lookup("zz-test-missing"); ok {
		t.Fatal("Lookup of unregistered name succeeded")
	}
	if out := e.Run(Options{}).String(); out != "a" {
		t.Fatalf("Run output = %q", out)
	}

	// All is sorted by Order; our two entries must appear in 1,2 order.
	ia, ib := -1, -1
	for i, e := range All() {
		switch e.Meta.Name {
		case "zz-test-a":
			ia = i
		case "zz-test-b":
			ib = i
		}
	}
	if ia == -1 || ib == -1 || ia >= ib {
		t.Fatalf("All order: a at %d, b at %d", ia, ib)
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	unregister(t, "zz-test-dup")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register did not panic")
		}
	}()
	run := func(Options) fmt.Stringer { return stringerFunc("x") }
	Register(Meta{Name: "zz-test-dup"}, run)
	Register(Meta{Name: "zz-test-dup"}, run)
}

func TestSweepOrderAndWorkerInvariance(t *testing.T) {
	const n = 257
	sq := func(i int) int { return i * i }
	seq := Sweep(Options{Workers: 1}, n, sq)
	for _, workers := range []int{2, 3, 8, 0} {
		par := Sweep(Options{Workers: workers}, n, sq)
		if !reflect.DeepEqual(seq, par) {
			t.Fatalf("workers=%d: results differ from sequential", workers)
		}
	}
	for i, v := range seq {
		if v != i*i {
			t.Fatalf("seq[%d] = %d", i, v)
		}
	}
	if Sweep(Options{}, 0, sq) != nil {
		t.Fatal("Sweep(0) should be nil")
	}
}

func TestGridRowMajor(t *testing.T) {
	got := Grid(Options{Workers: 4}, 3, 4, func(i, j int) [2]int { return [2]int{i, j} })
	if len(got) != 12 {
		t.Fatalf("len = %d", len(got))
	}
	for k, c := range got {
		if c[0] != k/4 || c[1] != k%4 {
			t.Fatalf("cell %d = %v, want {%d,%d}", k, c, k/4, k%4)
		}
	}
}

func TestRunTrialsMatchesSequentialLoop(t *testing.T) {
	const base = 777
	fn := func(seed int64) float64 {
		// Mix positives and non-positives so the filter path is hit.
		if seed%3 == 0 {
			return 0
		}
		return float64(seed%100) + 0.5
	}
	// Historical sequential aggregation.
	sum, n := 0.0, 0
	for t := 0; t < 9; t++ {
		if v := fn(SeedFor(base, t)); v > 0 {
			sum += v
			n++
		}
	}
	want := sum / float64(n)
	for _, workers := range []int{1, 4} {
		if got := RunTrials(Options{Workers: workers}, base, 9, fn); got != want {
			t.Fatalf("workers=%d: RunTrials = %v, want %v", workers, got, want)
		}
	}
	if got := RunTrials(Options{}, base, 3, func(int64) float64 { return -1 }); got != 0 {
		t.Fatalf("all-negative RunTrials = %v, want 0", got)
	}
}

func TestSeedForStable(t *testing.T) {
	// Calibration depends on this derivation never changing.
	if got := SeedFor(2014, 7, 3); got != 2014*1000003*1000003+7*1000003+7919*1000003+3+7919 {
		t.Fatalf("SeedFor(2014,7,3) = %d", got)
	}
	if SeedFor(5) != 5 {
		t.Fatal("SeedFor with no parts should return base")
	}
}

func TestOptionsDefaults(t *testing.T) {
	var o Options
	if o.BaseSeed() != DefaultSeed {
		t.Fatal("BaseSeed default")
	}
	if o.TrialCount(3) != 3 {
		t.Fatal("TrialCount default")
	}
	if (Options{Trials: 2}).TrialCount(3) != 2 {
		t.Fatal("TrialCount override")
	}
	if o.LocationCount(20) != 20 {
		t.Fatal("LocationCount default")
	}
	if (Options{Locations: 4}).LocationCount(20) != 4 {
		t.Fatal("LocationCount override")
	}
	if (Options{Locations: 30}).LocationCount(20) != 20 {
		t.Fatal("LocationCount clamp")
	}
	if o.WorkerCount() < 1 {
		t.Fatal("WorkerCount must be >= 1")
	}
	if (Options{Workers: 8}).Serial().WorkerCount() != 1 {
		t.Fatal("Serial should force one worker")
	}
}

func TestSelect(t *testing.T) {
	unregister(t, "zz-sel-a", "zz-sel-b")
	mk := func(s string) func(Options) fmt.Stringer {
		return func(Options) fmt.Stringer { return stringerFunc(s) }
	}
	Register(Meta{Name: "zz-sel-a", Title: "A", Order: 9001}, mk("a"))
	Register(Meta{Name: "zz-sel-b", Title: "B", Order: 9002}, mk("b"))

	// Empty csv selects everything, in registry order.
	all, err := Select("")
	if err != nil || len(all) != len(All()) {
		t.Fatalf("Select(\"\") = %d experiments, err %v; want full registry", len(all), err)
	}

	// Explicit names resolve in the given order; whitespace and empty
	// entries (trailing commas) are tolerated.
	got, err := Select(" zz-sel-b , zz-sel-a ,")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Meta.Name != "zz-sel-b" || got[1].Meta.Name != "zz-sel-a" {
		t.Fatalf("Select order = %v", []string{got[0].Meta.Name, got[1].Meta.Name})
	}

	// Unknown names error and the message carries the valid-name list.
	if _, err := Select("zz-sel-a,zz-sel-nope"); err == nil {
		t.Fatal("Select with unknown name should error")
	} else if !strings.Contains(err.Error(), "zz-sel-nope") || !strings.Contains(err.Error(), "valid names") {
		t.Fatalf("error %q should name the offender and list valid names", err)
	}

	// A csv of only separators selects nothing and must error too.
	if _, err := Select(" , ,"); err == nil {
		t.Fatal("Select of empty entries should error")
	}
}
