// Package engine is the experiment execution layer: a central registry
// of every table, figure and ablation harness, plus a deterministic
// parallel trial-sweep runner.
//
// The registry removes the hand-maintained experiment lists that used
// to live in cmd/report, bench_test.go and the package tests: each
// harness registers itself once (Register) and every consumer iterates
// All or selects with Lookup.
//
// The sweep runner (Sweep, Grid, RunTrials) fans independent trials
// out across a worker pool. Every trial owns its own simnet.Sim, so
// trials never share mutable state; results are collected by trial
// index and reduced in index order, which makes parallel output
// bit-identical to the sequential loops it replaced. Per-trial seeds
// are derived with SeedFor exactly as the sequential code did, so a
// given (seed, trial) pair measures the same simulated world at any
// worker count.
package engine

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// DefaultSeed is the base seed for all experiments; per-run seeds
// derive from it deterministically.
const DefaultSeed = 2014

// Options scales an experiment and bounds its parallelism.
type Options struct {
	// Seed is the base RNG seed (DefaultSeed when zero).
	Seed int64
	// Trials is the number of repetitions per measurement point
	// (harness-specific default when zero).
	Trials int
	// Locations restricts location-sweep experiments to the first N
	// of the paper's 20 sites (all when zero).
	Locations int
	// Workers is the sweep worker-pool size (GOMAXPROCS when zero,
	// 1 forces sequential execution).
	Workers int
}

// BaseSeed returns the effective base seed.
func (o Options) BaseSeed() int64 {
	if o.Seed == 0 {
		return DefaultSeed
	}
	return o.Seed
}

// TrialCount returns the effective trial count given the harness
// default.
func (o Options) TrialCount(def int) int {
	if o.Trials > 0 {
		return o.Trials
	}
	return def
}

// LocationCount returns the effective location count given the sweep's
// full site list length.
func (o Options) LocationCount(max int) int {
	if o.Locations > 0 && o.Locations < max {
		return o.Locations
	}
	return max
}

// Serial returns a copy of o that runs sweeps on a single worker. Used
// for inner sweeps nested inside an already-parallel outer sweep, so
// worker counts do not multiply.
func (o Options) Serial() Options {
	o.Workers = 1
	return o
}

// SeedFor derives a per-measurement seed from the base seed and the
// measurement's coordinates (location, trial, config index, ...). The
// derivation is stable forever: experiment calibration depends on it.
func SeedFor(base int64, parts ...int) int64 {
	s := base
	for _, p := range parts {
		s = s*1000003 + int64(p) + 7919
	}
	return s
}

// Meta describes a registered experiment.
type Meta struct {
	// Name is the canonical selector name (flag-friendly, unique),
	// e.g. "figure7" or "ablation-scheduler".
	Name string
	// Title is the display title in paper terms, e.g. "Figure 7".
	Title string
	// Section is the paper section the experiment reproduces.
	Section string
	// Order sorts experiments into the paper's presentation order.
	Order int
}

// Experiment is a registered harness: metadata plus the function that
// runs it. The returned value's String method renders the table or
// figure the paper reports.
type Experiment struct {
	Meta Meta
	Run  func(Options) fmt.Stringer
}

var (
	regMu sync.Mutex
	reg   = map[string]Experiment{}
)

// Register adds an experiment to the registry. It panics on an empty
// name, a nil run function, or a duplicate name — all are programmer
// errors caught at init time.
func Register(m Meta, run func(Options) fmt.Stringer) {
	regMu.Lock()
	defer regMu.Unlock()
	if m.Name == "" {
		panic("engine: Register with empty name")
	}
	if run == nil {
		panic("engine: Register with nil run function: " + m.Name)
	}
	if _, dup := reg[m.Name]; dup {
		panic("engine: duplicate experiment name: " + m.Name)
	}
	reg[m.Name] = Experiment{Meta: m, Run: run}
}

// All returns every registered experiment in paper order (Meta.Order,
// ties broken by name).
func All() []Experiment {
	regMu.Lock()
	defer regMu.Unlock()
	out := make([]Experiment, 0, len(reg))
	for _, e := range reg {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Meta.Order != out[j].Meta.Order {
			return out[i].Meta.Order < out[j].Meta.Order
		}
		return out[i].Meta.Name < out[j].Meta.Name
	})
	return out
}

// Lookup returns the experiment registered under name.
func Lookup(name string) (Experiment, bool) {
	regMu.Lock()
	defer regMu.Unlock()
	e, ok := reg[name]
	return e, ok
}

// Names returns the registered names in paper order.
func Names() []string {
	all := All()
	out := make([]string, len(all))
	for i, e := range all {
		out[i] = e.Meta.Name
	}
	return out
}

// Select resolves a comma-separated experiment-name list (the
// cmd/report -only syntax) against the registry. Whitespace around
// names and empty entries (doubled or trailing commas) are ignored; an
// empty csv selects every experiment in paper order. An unknown name
// is an error listing the valid names, so callers can exit non-zero
// instead of silently running nothing.
func Select(csv string) ([]Experiment, error) {
	if strings.TrimSpace(csv) == "" {
		return All(), nil
	}
	var out []Experiment
	for _, name := range strings.Split(csv, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		e, ok := Lookup(name)
		if !ok {
			return nil, fmt.Errorf("unknown experiment %q; valid names: %s",
				name, strings.Join(Names(), ", "))
		}
		out = append(out, e)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no experiments selected by %q; valid names: %s",
			csv, strings.Join(Names(), ", "))
	}
	return out, nil
}
