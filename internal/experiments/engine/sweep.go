package engine

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// WorkerCount returns the effective sweep pool size for o.
func (o Options) WorkerCount() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Sweep runs fn(i) for i in [0, n) across o's worker pool and returns
// the results in index order. Each call must be independent of the
// others (in this repository every trial builds its own simnet.Sim, so
// that holds by construction); because results are placed by index,
// the returned slice is identical at any worker count.
func Sweep[T any](o Options, n int, fn func(i int) T) []T {
	if n <= 0 {
		return nil
	}
	out := make([]T, n)
	workers := o.WorkerCount()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := range out {
			out[i] = fn(i)
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		// This IS the engine worker pool the determinism analyzer
		// funnels all other engine code into.
		go func() { //lint:allow determinism the Sweep worker pool itself; results are placed by index

			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	return out
}

// Grid runs fn over the rows×cols cross product and returns the
// results in row-major order — the same order as the nested
//
//	for i { for j { ... } }
//
// loops it replaces, so sequential reductions over the result see
// samples in the historical order.
func Grid[T any](o Options, rows, cols int, fn func(i, j int) T) []T {
	if rows <= 0 || cols <= 0 {
		return nil
	}
	return Sweep(o, rows*cols, func(k int) T {
		return fn(k/cols, k%cols)
	})
}

// RunTrials fans trials out over o's pool, giving trial t the seed
// SeedFor(seed, t), and returns the mean of the positive results (0
// when none) — the aggregation every throughput harness uses. The sum
// is accumulated in trial order, so the mean is bit-identical to the
// sequential loop regardless of worker count.
func RunTrials(o Options, seed int64, trials int, fn func(seed int64) float64) float64 {
	vals := Sweep(o, trials, func(t int) float64 {
		return fn(SeedFor(seed, t))
	})
	sum, n := 0.0, 0
	for _, v := range vals {
		if v > 0 {
			sum += v
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
