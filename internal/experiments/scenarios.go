package experiments

import (
	"fmt"
	"time"

	"multinet/internal/apps"
	"multinet/internal/core"
	"multinet/internal/experiments/engine"
	"multinet/internal/mptcp"
	"multinet/internal/oracle"
	"multinet/internal/phy"
	"multinet/internal/replay"
)

// The scenario experiments go beyond the paper's WiFi+LTE testbed:
// they instantiate the N-path PathSet abstraction for the multi-homed
// setups that related work measured on real hardware.
//
//   - scenario-dual-lte: MPTCP over two cellular carriers (Mohan et
//     al., "A Tale of Three Datasets", arXiv:1909.02601): similar-RTT
//     twin carriers aggregate, disparate ones fall into the paper's
//     Fig. 7a regime.
//   - scenario-dual-wlan: simultaneous connections to two APs of
//     contending quality (Cañizares & Bellalta, arXiv:1712.07738).
//   - scenario-wifi-2lte: a three-path stress case — WiFi plus two
//     carriers — including the Section 5 oracle analysis generalized
//     to N alternatives.
func init() {
	register("scenario-dual-lte", "Scenario: dual-LTE", "scenario", 25,
		func(o Options) fmt.Stringer { return ScenarioDualLTE(o) })
	register("scenario-dual-wlan", "Scenario: dual-WLAN", "scenario", 26,
		func(o Options) fmt.Stringer { return ScenarioDualWLAN(o) })
	register("scenario-wifi-2lte", "Scenario: WiFi+2xLTE", "scenario", 27,
		func(o Options) fmt.Stringer { return ScenarioWiFi2LTE(o) })
}

// scenarioSizesKB are the flow sizes every scenario sweeps (the
// paper's short/long span plus a bulk point).
var scenarioSizesKB = []int{100, 1024, 4096}

// ScenarioVariantResult is one condition's measurements: the probe
// estimate of every path, the adaptive selector's per-size decisions,
// and the size×config throughput grid.
type ScenarioVariantResult struct {
	Name string
	// Ranked is the probe estimate, best path first.
	Ranked []core.PathEstimate
	// Disparity is the probe's best-to-second-best throughput ratio.
	Disparity float64
	// Decisions maps flow size (KB) index to the selector's choice.
	Decisions []string
	KB        []int
	Configs   []string
	// Mbps[size][config] is the mean measured throughput.
	Mbps [][]float64
	// BestTCPMbps / BestMPTCPMbps compare the largest-size columns.
	BestTCPMbps, BestMPTCPMbps float64
}

// scenarioVariant pairs a condition with the configurations measured
// under it.
type scenarioVariant struct {
	name string
	cond phy.Condition
	cfgs []core.Config
}

// runScenarioVariants probes each variant and fills its throughput
// grid. Variants run sequentially and the size×config grid fans out
// over the sweep pool (the Figure 7 pattern), so -par parallelism
// applies to the independent measurement cells while output stays
// bit-identical at any worker count.
func runScenarioVariants(o Options, tag int, variants []scenarioVariant) []ScenarioVariantResult {
	trials := o.TrialCount(3)
	out := make([]ScenarioVariantResult, 0, len(variants))
	for vi, v := range variants {
		res := ScenarioVariantResult{Name: v.name, KB: scenarioSizesKB}
		probe := core.NewSession(seedFor(o.BaseSeed(), tag, vi), v.cond)
		est := probe.Probe()
		res.Ranked = est.Ranked()
		res.Disparity = est.PairDisparity()
		for _, cfg := range v.cfgs {
			res.Configs = append(res.Configs, cfg.Name())
		}
		grid := engine.Grid(o, len(scenarioSizesKB), len(v.cfgs), func(si, ci int) float64 {
			return measureMbps(o.Serial(), seedFor(o.BaseSeed(), tag, vi, si, ci), v.cond,
				v.cfgs[ci], core.Download, scenarioSizesKB[si]<<10, trials)
		})
		for si, kb := range scenarioSizesKB {
			res.Decisions = append(res.Decisions, core.ConfigFor(core.Selector{}.Decide(est, kb<<10)).Name())
			res.Mbps = append(res.Mbps, grid[si*len(v.cfgs):(si+1)*len(v.cfgs)])
		}
		last := res.Mbps[len(res.Mbps)-1]
		for ci, cfg := range v.cfgs {
			if cfg.Transport == core.TCP {
				if last[ci] > res.BestTCPMbps {
					res.BestTCPMbps = last[ci]
				}
			} else if last[ci] > res.BestMPTCPMbps {
				res.BestMPTCPMbps = last[ci]
			}
		}
		out = append(out, res)
	}
	return out
}

// renderScenarioVariants is the shared table renderer.
func renderScenarioVariants(variants []ScenarioVariantResult) string {
	out := ""
	for _, v := range variants {
		out += fmt.Sprintf("condition %q: probe ranking", v.Name)
		for _, p := range v.Ranked {
			out += fmt.Sprintf("  %s %.2f Mbit/s/%v", p.Name, p.Mbps, p.RTT.Round(time.Millisecond))
		}
		out += fmt.Sprintf("  (pair disparity %.1fx)\n", v.Disparity)
		header := []string{"KB", "selector"}
		header = append(header, v.Configs...)
		var rows [][]string
		for si, kb := range v.KB {
			row := []string{fmt.Sprintf("%d", kb), v.Decisions[si]}
			for _, m := range v.Mbps[si] {
				row = append(row, fmt.Sprintf("%.2f", m))
			}
			rows = append(rows, row)
		}
		out += table(header, rows)
		if v.BestTCPMbps > 0 {
			out += fmt.Sprintf("bulk-flow MPTCP vs best single path: %+.0f%%\n",
				(v.BestMPTCPMbps/v.BestTCPMbps-1)*100)
		} else {
			out += "bulk-flow MPTCP vs best single path: n/a (no TCP baseline completed)\n"
		}
	}
	return out
}

// ScenarioDualLTEResult holds the twin-carrier comparison.
type ScenarioDualLTEResult struct{ Variants []ScenarioVariantResult }

// ScenarioDualLTE measures MPTCP over two LTE carriers. Mohan et al.
// (arXiv:1909.02601) find that MPTCP over cellular paths with similar
// RTT aggregates well, while disparate carriers reproduce the paper's
// Fig. 7a regime where the better single path wins; the two variants
// instantiate exactly that contrast with the lte radio model.
func ScenarioDualLTE(o Options) ScenarioDualLTEResult {
	cfgs := []core.Config{
		{Transport: core.TCP, Iface: "lte-a"},
		{Transport: core.TCP, Iface: "lte-b"},
		{Transport: core.MPTCP, Primary: "lte-a", CC: mptcp.Decoupled},
		{Transport: core.MPTCP, Primary: "lte-b", CC: mptcp.Decoupled},
		{Transport: core.MPTCP, Primary: "lte-a", CC: mptcp.Coupled},
	}
	similar := phy.NewCondition("dual-lte-similar",
		phy.Path{Name: "lte-a", Profile: phy.Radio("lte",
			phy.RadioCalib{DownMbps: 10, UpMbps: 4.5, RTTms: 60, LossPct: 0.2, Variability: 0.25})},
		phy.Path{Name: "lte-b", Profile: phy.Radio("lte",
			phy.RadioCalib{DownMbps: 8, UpMbps: 3.5, RTTms: 70, LossPct: 0.2, Variability: 0.25})},
	)
	disparate := phy.NewCondition("dual-lte-disparate",
		phy.Path{Name: "lte-a", Profile: phy.Radio("lte",
			phy.RadioCalib{DownMbps: 10, UpMbps: 4.5, RTTms: 60, LossPct: 0.2, Variability: 0.25})},
		phy.Path{Name: "lte-b", Profile: phy.Radio("lte",
			phy.RadioCalib{DownMbps: 1.8, UpMbps: 0.8, RTTms: 140, LossPct: 0.6, Variability: 0.4})},
	)
	return ScenarioDualLTEResult{Variants: runScenarioVariants(o, 2501, []scenarioVariant{
		{name: "similar carriers", cond: similar, cfgs: cfgs},
		{name: "disparate carriers", cond: disparate, cfgs: cfgs},
	})}
}

// String renders both carrier pairings.
func (r ScenarioDualLTEResult) String() string {
	return "Scenario dual-LTE: twin cellular carriers (Mohan et al., arXiv:1909.02601)\n" +
		renderScenarioVariants(r.Variants)
}

// ScenarioDualWLANResult holds the two-AP comparison.
type ScenarioDualWLANResult struct{ Variants []ScenarioVariantResult }

// ScenarioDualWLAN measures simultaneous connections to two WiFi APs
// of contending quality (Cañizares & Bellalta, arXiv:1712.07738): a
// strong near AP next to a crowded far one, and an overlap zone where
// both APs are usable and aggregation pays.
func ScenarioDualWLAN(o Options) ScenarioDualWLANResult {
	cfgs := []core.Config{
		{Transport: core.TCP, Iface: "ap-near"},
		{Transport: core.TCP, Iface: "ap-far"},
		{Transport: core.MPTCP, Primary: "ap-near", CC: mptcp.Decoupled},
		{Transport: core.MPTCP, Primary: "ap-near", CC: mptcp.Coupled},
	}
	nearFar := phy.NewCondition("dual-wlan-near-far",
		phy.Path{Name: "ap-near", Profile: phy.Radio("wifi",
			phy.RadioCalib{DownMbps: 15, UpMbps: 5, RTTms: 25, LossPct: 0.4, Variability: 0.15})},
		phy.Path{Name: "ap-far", Profile: phy.Radio("wifi",
			phy.RadioCalib{DownMbps: 2, UpMbps: 0.8, RTTms: 60, LossPct: 2.0, Variability: 0.5})},
	)
	overlap := phy.NewCondition("dual-wlan-overlap",
		phy.Path{Name: "ap-near", Profile: phy.Radio("wifi",
			phy.RadioCalib{DownMbps: 9, UpMbps: 3.5, RTTms: 35, LossPct: 0.7, Variability: 0.3})},
		phy.Path{Name: "ap-far", Profile: phy.Radio("wifi",
			phy.RadioCalib{DownMbps: 7, UpMbps: 2.8, RTTms: 45, LossPct: 0.9, Variability: 0.3})},
	)
	return ScenarioDualWLANResult{Variants: runScenarioVariants(o, 2502, []scenarioVariant{
		{name: "near + crowded far AP", cond: nearFar, cfgs: cfgs},
		{name: "overlap zone", cond: overlap, cfgs: cfgs},
	})}
}

// String renders both AP layouts.
func (r ScenarioDualWLANResult) String() string {
	return "Scenario dual-WLAN: two APs of contending quality (arXiv:1712.07738)\n" +
		renderScenarioVariants(r.Variants)
}

// wifi2LTEPaths is the three-path set of the stress scenario.
var wifi2LTEPaths = []replay.PathName{
	{Iface: "wifi", Label: "WiFi"},
	{Iface: "lte-a", Label: "LTE-A"},
	{Iface: "lte-b", Label: "LTE-B"},
}

// wifi2LTECondition builds the three-path condition for one of the
// paper's locations: the location's own WiFi and LTE calibrations
// plus a weaker second carrier derived from the first.
func wifi2LTECondition(loc phy.Location) phy.Condition {
	second := phy.Radio("lte", phy.RadioCalib{
		DownMbps:    loc.LTE.DownMbps * 0.6,
		UpMbps:      loc.LTE.UpMbps * 0.6,
		RTTms:       loc.LTE.RTTms + 20,
		LossPct:     loc.LTE.LossPct + 0.1,
		Variability: loc.LTE.Variability,
	})
	return phy.NewCondition(fmt.Sprintf("loc%02d+2lte", loc.ID),
		phy.Path{Name: "wifi", Profile: loc.WiFi},
		phy.Path{Name: "lte-a", Profile: loc.LTE},
		phy.Path{Name: "lte-b", Profile: second},
	)
}

// ScenarioWiFi2LTEResult holds the three-path stress results: bulk
// transfers at a comparable-path site plus the Section 5 oracle
// analysis generalized to three alternatives.
type ScenarioWiFi2LTEResult struct {
	Transfers ScenarioVariantResult
	// SchemeNames preserves the oracle legend order; Normalized maps
	// scheme name to mean response time normalised by WiFi-TCP.
	SchemeNames []string
	Normalized  map[string]float64
	Conditions  int
}

// ScenarioWiFi2LTE runs the three-path stress case: a WiFi AP plus
// two cellular carriers. Three subflows should out-aggregate any
// two-path configuration on comparable paths, and the generalized
// oracle normalization ranks 3 single-path and 6 MPTCP alternatives
// over the long-flow app.
func ScenarioWiFi2LTE(o Options) ScenarioWiFi2LTEResult {
	cfgs := []core.Config{
		{Transport: core.TCP, Iface: "wifi"},
		{Transport: core.TCP, Iface: "lte-a"},
		{Transport: core.TCP, Iface: "lte-b"},
		{Transport: core.MPTCP, Primary: "wifi", CC: mptcp.Decoupled},
		{Transport: core.MPTCP, Primary: "lte-a", CC: mptcp.Decoupled},
		{Transport: core.MPTCP, Primary: "wifi", CC: mptcp.Coupled},
	}
	transfers := runScenarioVariants(o, 2503, []scenarioVariant{
		{name: "three comparable paths", cond: wifi2LTECondition(phy.LocWiFiBetter), cfgs: cfgs},
	})

	// Oracle over N=3 alternatives: replay the long-flow app at the
	// four representative sites, each widened to three paths.
	rec := replay.Record(apps.DropboxClick)
	tcs := replay.Configs(wifi2LTEPaths)
	locIDs := []int{10, 15, 16, 17}
	perCond := engine.Sweep(o, len(locIDs), func(ci int) map[string]time.Duration {
		cond := wifi2LTECondition(phy.LocationByID(locIDs[ci]))
		per := map[string]time.Duration{}
		for _, tc := range tcs {
			r := replay.Run(seedFor(o.BaseSeed(), 2504, ci), cond, rec, tc)
			if !r.Completed {
				return nil
			}
			per[tc.Name] = r.ResponseTime
		}
		return per
	})
	var conds []map[string]time.Duration
	for _, per := range perCond {
		if per != nil {
			conds = append(conds, per)
		}
	}
	schemes, baseline := oracle.ForPaths([]string{"WiFi", "LTE-A", "LTE-B"})
	norm, n := oracle.NormalizedBy(conds, schemes, baseline)
	res := ScenarioWiFi2LTEResult{
		Transfers:  transfers[0],
		Normalized: norm,
		Conditions: n,
	}
	for _, s := range schemes {
		res.SchemeNames = append(res.SchemeNames, s.Name)
	}
	return res
}

// String renders the transfer grid and the N-alternative oracle bars.
func (r ScenarioWiFi2LTEResult) String() string {
	out := "Scenario WiFi+2xLTE: three-path stress case\n" +
		renderScenarioVariants([]ScenarioVariantResult{r.Transfers})
	out += fmt.Sprintf("oracle normalization over 3 alternatives (%d conditions, long-flow app):\n",
		r.Conditions)
	var rows [][]string
	for _, name := range r.SchemeNames {
		v, ok := r.Normalized[name]
		if !ok {
			continue
		}
		rows = append(rows, []string{name, fmt.Sprintf("%.2f", v), fmt.Sprintf("-%.0f%%", (1-v)*100)})
	}
	return out + table([]string{"Scheme", "Normalised", "Reduction"}, rows)
}
