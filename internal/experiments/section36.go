package experiments

import (
	"fmt"
	"time"

	"multinet/internal/capture"
	"multinet/internal/energy"
	"multinet/internal/experiments/engine"
	"multinet/internal/mptcp"
	"multinet/internal/netem"
	"multinet/internal/phy"
	"multinet/internal/simnet"
	"multinet/internal/tcp"
)

func init() {
	register("figure15", "Figure 15", "3.6.1", 13, func(o Options) fmt.Stringer { return Figure15(o) })
	register("figure16", "Figure 16", "3.6.2", 14, func(o Options) fmt.Stringer { return Figure16(o) })
	register("energy-backup", "Section 3.6.2 energy", "3.6.2", 15, func(o Options) fmt.Stringer { return EnergyBackup(o) })
}

// Fig15Panel is one packet-transmission panel of the paper's Fig. 15.
type Fig15Panel struct {
	Name        string
	Description string
	// WiFiEvents/LTEEvents are packet event times per interface.
	WiFiEvents, LTEEvents []time.Duration
	// Horizon is the panel's time axis end.
	Horizon time.Duration
	// Completed reports whether the transfer finished by Horizon.
	Completed bool
	// CompletedAt is the finish time (0 when !Completed).
	CompletedAt time.Duration
}

// Figure15Result holds all eight panels (a-h).
type Figure15Result struct{ Panels []Fig15Panel }

// fig15Cond gives both paths ~4 Mbit/s so a 8 MB transfer lasts the
// paper's ~19 seconds.
var fig15Cond = phy.Condition{
	Name: "fig15",
	WiFi: phy.PathProfile{DownMbps: 4, UpMbps: 1.6, RTTms: 45, QueuePkts: 100},
	LTE:  phy.PathProfile{DownMbps: 4, UpMbps: 1.6, RTTms: 70, QueuePkts: 300},
}

// fig15Run executes one backup/full-mode transfer with mid-flow
// interface manipulation and captures per-interface packet rasters.
//
// The unplug semantics follow the paper's observed asymmetry (Section
// 3.6.1): unplugging the WiFi phone is detectable (the tether's
// carrier drops → modelled as an administrative down), while
// unplugging the LTE phone leaves a silent blackhole.
func fig15Run(seed int64, name, desc string, mode mptcp.Mode, primary string,
	backup []string, horizon time.Duration,
	manipulate func(sim *simnet.Sim, host *netem.Host)) Fig15Panel {

	sim := simnet.New(seed)
	host := phy.BuildHost(sim, fig15Cond)
	clientStack := tcp.NewStack(sim, tcp.ClientSide)
	serverStack := tcp.NewStack(sim, tcp.ServerSide)
	sn := capture.NewSniffer(sim)
	for _, ifc := range host.Ifaces() {
		clientStack.Bind(ifc)
		serverStack.Bind(ifc)
		sn.Attach(ifc)
	}
	srv := mptcp.NewServer(sim, serverStack, mptcp.ServerConfig{Mode: mode})
	const size = 8 << 20
	srv.OnConn = func(c *mptcp.Conn) { c.Send(size); c.Close() }
	var done time.Duration
	mptcp.Dial(sim, clientStack, host, mptcp.Config{
		ConnID: "fig15", Primary: primary, Mode: mode, BackupIfaces: backup,
	}, mptcp.Callbacks{
		OnData: func(c *mptcp.Conn, total int64) {
			if total >= size && done == 0 {
				done = sim.Now()
			}
		},
	})
	if manipulate != nil {
		manipulate(sim, host)
	}
	sim.RunUntil(horizon)
	p := Fig15Panel{
		Name:        name,
		Description: desc,
		WiFiEvents:  capture.Raster(sn.Records(), "wifi"),
		LTEEvents:   capture.Raster(sn.Records(), "lte"),
		Horizon:     horizon,
		Completed:   done > 0,
		CompletedAt: done,
	}
	if done > 0 && done+5*time.Second < horizon {
		p.Horizon = done + 5*time.Second
	}
	return p
}

// fig15Spec declares one panel's scenario; Figure15 sweeps the specs.
type fig15Spec struct {
	name, desc string
	mode       mptcp.Mode
	primary    string
	backup     []string
	horizon    time.Duration
	manipulate func(sim *simnet.Sim, host *netem.Host)
}

// Figure15 reproduces all eight packet-pattern panels, running them
// concurrently (each panel owns its own Sim).
func Figure15(o Options) Figure15Result {
	sec := func(n int) time.Duration { return time.Duration(n) * time.Second }
	specs := []fig15Spec{
		{name: "a", desc: "Full-MPTCP, LTE primary",
			mode: mptcp.FullMPTCP, primary: "lte", horizon: sec(60)},
		{name: "b", desc: "Full-MPTCP, WiFi primary",
			mode: mptcp.FullMPTCP, primary: "wifi", horizon: sec(60)},
		{name: "c", desc: "Backup, LTE primary, WiFi backup",
			mode: mptcp.Backup, primary: "lte", backup: []string{"wifi"}, horizon: sec(60)},
		{name: "d", desc: "Backup, WiFi primary, LTE backup",
			mode: mptcp.Backup, primary: "wifi", backup: []string{"lte"}, horizon: sec(60)},
		{name: "e", desc: "Backup, LTE primary, WiFi backup; LTE multipath-off at t=9s",
			mode: mptcp.Backup, primary: "lte", backup: []string{"wifi"}, horizon: sec(80),
			manipulate: func(sim *simnet.Sim, host *netem.Host) {
				sim.Schedule(sec(9), func() { host.Iface("lte").SetDown(true) })
			}},
		{name: "f", desc: "Backup, WiFi primary, LTE backup; WiFi multipath-off at t=11s",
			mode: mptcp.Backup, primary: "wifi", backup: []string{"lte"}, horizon: sec(80),
			manipulate: func(sim *simnet.Sim, host *netem.Host) {
				sim.Schedule(sec(11), func() { host.Iface("wifi").SetDown(true) })
			}},
		{name: "g", desc: "Backup, LTE primary, WiFi backup; unplug LTE at t=3s (silent), replug at t=68s",
			mode: mptcp.Backup, primary: "lte", backup: []string{"wifi"}, horizon: sec(200),
			manipulate: func(sim *simnet.Sim, host *netem.Host) {
				sim.Schedule(sec(3), func() { host.Iface("lte").SetBlackhole(true) })
				sim.Schedule(sec(68), func() { host.Iface("lte").SetBlackhole(false) })
			}},
		{name: "h", desc: "Backup, WiFi primary, LTE backup; unplug WiFi at t=6s (carrier loss)",
			mode: mptcp.Backup, primary: "wifi", backup: []string{"lte"}, horizon: sec(80),
			manipulate: func(sim *simnet.Sim, host *netem.Host) {
				sim.Schedule(sec(6), func() { host.Iface("wifi").SetDown(true) })
			}},
	}
	panels := engine.Sweep(o, len(specs), func(i int) Fig15Panel {
		sp := specs[i]
		return fig15Run(seedFor(o.BaseSeed(), 15, i+1), sp.name, sp.desc,
			sp.mode, sp.primary, sp.backup, sp.horizon, sp.manipulate)
	})
	return Figure15Result{Panels: panels}
}

// String renders the rasters as ASCII strips.
func (r Figure15Result) String() string {
	out := "Figure 15: packet transmission patterns ('|' = packet events)\n"
	for _, p := range r.Panels {
		status := "did not complete"
		if p.Completed {
			status = fmt.Sprintf("completed at %s", fmtDur(p.CompletedAt))
		}
		out += fmt.Sprintf("(%s) %s — %s [axis 0..%s]\n", p.Name, p.Description, status, fmtDur(p.Horizon))
		out += "  LTE  " + capture.RasterString(p.LTEEvents, p.Horizon, 72) + "\n"
		out += "  WiFi " + capture.RasterString(p.WiFiEvents, p.Horizon, 72) + "\n"
	}
	return out
}

// Fig16Panel is one power trace of the paper's Fig. 16.
type Fig16Panel struct {
	Name        string
	Description string
	Radio       string
	Trace       string  // ASCII power strip
	PeakWatts   float64 // max observed total power
	TailSecs    float64 // time spent above base after the last data
	Joules      float64 // radio energy above base
}

// Figure16Result holds the four panels.
type Figure16Result struct{ Panels []Fig16Panel }

// Figure16 runs backup-mode transfers and reports each radio's power
// trace in the backup and non-backup roles.
func Figure16(o Options) Figure16Result {
	run := func(seed int64, primary string, backup string) (map[string]*energy.Meter, time.Duration) {
		sim := simnet.New(seed)
		host := phy.BuildHost(sim, fig15Cond)
		clientStack := tcp.NewStack(sim, tcp.ClientSide)
		serverStack := tcp.NewStack(sim, tcp.ServerSide)
		meters := map[string]*energy.Meter{
			"wifi": energy.NewMeter(sim, energy.WiFi),
			"lte":  energy.NewMeter(sim, energy.LTE),
		}
		for _, ifc := range host.Ifaces() {
			clientStack.Bind(ifc)
			serverStack.Bind(ifc)
			meters[ifc.Name].Attach(ifc)
		}
		srv := mptcp.NewServer(sim, serverStack, mptcp.ServerConfig{Mode: mptcp.Backup})
		const size = 8 << 20
		srv.OnConn = func(c *mptcp.Conn) { c.Send(size); c.Close() }
		var done time.Duration
		mptcp.Dial(sim, clientStack, host, mptcp.Config{
			ConnID: "fig16", Primary: primary, Mode: mptcp.Backup,
			BackupIfaces: []string{backup},
		}, mptcp.Callbacks{OnData: func(c *mptcp.Conn, total int64) {
			if total >= size && done == 0 {
				done = sim.Now()
			}
		}})
		sim.RunUntil(50 * time.Second)
		return meters, done
	}

	panel := func(name, desc, radio string, m *energy.Meter, done time.Duration) Fig16Panel {
		p := Fig16Panel{
			Name: name, Description: desc, Radio: radio,
			Trace:  m.TraceString(50*time.Second, 72),
			Joules: m.RadioJoules(),
		}
		for _, s := range m.Trace() {
			if energy.BaseWatts+s.Watts > p.PeakWatts {
				p.PeakWatts = energy.BaseWatts + s.Watts
			}
		}
		// Tail time: above-base time after the transfer completed.
		if done > 0 {
			var above time.Duration
			tr := m.Trace()
			for i, s := range tr {
				end := 50 * time.Second
				if i+1 < len(tr) {
					end = tr[i+1].T
				}
				if s.Watts > 0 && end > done {
					start := s.T
					if start < done {
						start = done
					}
					above += end - start
				}
			}
			p.TailSecs = above.Seconds()
		}
		return p
	}

	type runOut struct {
		meters map[string]*energy.Meter
		done   time.Duration
	}
	// Cell 0 — WiFi backup: LTE carries the data (panels a and d's
	// mirror). Cell 1 — LTE backup: WiFi carries the data (b and c's).
	outs := engine.Sweep(o, 2, func(i int) runOut {
		primary, backup := "lte", "wifi"
		if i == 1 {
			primary, backup = "wifi", "lte"
		}
		m, done := run(seedFor(o.BaseSeed(), 16, i+1), primary, backup)
		return runOut{meters: m, done: done}
	})
	mA, doneA := outs[0].meters, outs[0].done
	mB, doneB := outs[1].meters, outs[1].done

	return Figure16Result{Panels: []Fig16Panel{
		panel("a", "LTE power, non-backup (carrying data)", "lte", mA["lte"], doneA),
		panel("b", "WiFi power, non-backup (carrying data)", "wifi", mB["wifi"], doneB),
		panel("c", "LTE power, backup (SYN/FIN only)", "lte", mB["lte"], doneB),
		panel("d", "WiFi power, backup (SYN/FIN only)", "wifi", mA["wifi"], doneA),
	}}
}

// String renders the power traces.
func (r Figure16Result) String() string {
	out := "Figure 16: radio power traces ('#' active, '~' tail, '.' idle; axis 0..50s)\n"
	for _, p := range r.Panels {
		out += fmt.Sprintf("(%s) %s: peak %.1f W, post-flow tail %.1f s, radio energy %.1f J\n  %s\n",
			p.Name, p.Description, p.PeakWatts, p.TailSecs, p.Joules, p.Trace)
	}
	return out
}

// EnergyBackupResult quantifies Section 3.6.2: energy saved by Backup
// mode (LTE as backup) versus Full-MPTCP, as a function of flow
// duration.
type EnergyBackupResult struct {
	FlowSecs  []float64
	SavingPct []float64
	// BreakEvenSecs estimates where savings exceed 50%.
	BreakEvenSecs float64
}

// EnergyBackup sweeps flow durations and compares LTE radio energy
// with LTE as a backup (SYN+FIN only) against LTE actively carrying
// half the transfer.
func EnergyBackup(o Options) EnergyBackupResult {
	res := EnergyBackupResult{}
	durations := []float64{2, 5, 10, 15, 20, 30, 45, 60}
	savings := engine.Sweep(o, len(durations), func(i int) float64 {
		d := durations[i]
		flow := time.Duration(d * float64(time.Second))
		horizon := flow + 16*time.Second

		// Backup: LTE sees only SYN at 0 and FIN at flow end.
		simA := simnet.New(seedFor(o.BaseSeed(), 362, int(d)))
		backup := energy.NewMeter(simA, energy.LTE)
		backup.OnPacket()
		simA.Schedule(flow, backup.OnPacket)
		simA.RunUntil(horizon)

		// Full-MPTCP: LTE active for the whole flow.
		simB := simnet.New(seedFor(o.BaseSeed(), 363, int(d)))
		active := energy.NewMeter(simB, energy.LTE)
		for t := time.Duration(0); t <= flow; t += 20 * time.Millisecond {
			tt := t
			simB.Schedule(tt, active.OnPacket)
		}
		simB.RunUntil(horizon)

		return 1 - backup.RadioJoules()/active.RadioJoules()
	})
	for i, d := range durations {
		res.FlowSecs = append(res.FlowSecs, d)
		res.SavingPct = append(res.SavingPct, savings[i]*100)
		if res.BreakEvenSecs == 0 && savings[i] >= 0.5 {
			res.BreakEvenSecs = d
		}
	}
	return res
}

// String renders the sweep.
func (r EnergyBackupResult) String() string {
	var rows [][]string
	for i := range r.FlowSecs {
		rows = append(rows, []string{
			fmt.Sprintf("%.0f", r.FlowSecs[i]),
			fmt.Sprintf("%.0f%%", r.SavingPct[i]),
		})
	}
	return "Section 3.6.2: LTE-backup energy saving vs flow duration\n" +
		table([]string{"Flow (s)", "Energy saved"}, rows) +
		fmt.Sprintf("savings exceed 50%% only for flows >= %.0f s (paper: little saved under 15 s)\n",
			r.BreakEvenSecs)
}
