package experiments

import (
	"math"
	"testing"

	"multinet/internal/core"
	"multinet/internal/mptcp"
	"multinet/internal/netem"
	"multinet/internal/phy"
)

// Fluid-mode smoke: a representative subset of measurement cells runs
// under core.SetFluidDefault(true) and is checked against packet-mode
// output. Where sessions cannot engage (lossy or variable-rate links,
// MPTCP subflows) the runs must be bit-identical; where they do engage
// the goodput must stay within tolerance, with the divergence confined
// to queue-overflow episodes that straddle a regime switch.

// fluidCleanCond is a condition fluid sessions can engage on: constant
// rates, zero loss, the paper's asymmetric buffer depths.
func fluidCleanCond() phy.Condition {
	return phy.NewCondition("fluid-clean",
		phy.Path{Name: "wifi", Profile: phy.PathProfile{
			DownMbps: 20, UpMbps: 8, RTTms: 30, QueuePkts: 100}},
		phy.Path{Name: "lte", Profile: phy.PathProfile{
			DownMbps: 10, UpMbps: 4, RTTms: 60, QueuePkts: 300}},
	)
}

// runFluidCell measures one cell twice from identical seeds — packet
// mode, then fluid mode — and reports both results plus the number of
// segments the fluid run elided.
func runFluidCell(t *testing.T, cond phy.Condition, cfg core.Config,
	dir core.Direction, size int) (pkt, fld core.Result, elided int64) {
	t.Helper()
	prev := core.SetFluidDefault(false)
	defer core.SetFluidDefault(prev)
	pkt = core.NewSession(DefaultSeed, cond).Run(cfg, dir, size)
	core.SetFluidDefault(true)
	s := core.NewSession(DefaultSeed, cond)
	fld = s.Run(cfg, dir, size)
	for _, ifc := range s.Host.Ifaces() {
		for _, l := range []netem.Link{ifc.UpLink(), ifc.DownLink()} {
			if fl, ok := l.(*netem.FixedLink); ok {
				elided += int64(fl.Stats().Elided)
			}
		}
	}
	if !pkt.Completed || !fld.Completed {
		t.Fatalf("cell %s/%v/%d incomplete: packet %v, fluid %v",
			cond.Name, dir, size, pkt.Completed, fld.Completed)
	}
	return pkt, fld, elided
}

func TestFluidSmokeEngaged(t *testing.T) {
	cond := fluidCleanCond()
	cells := []struct {
		cfg  core.Config
		dir  core.Direction
		size int
	}{
		{core.Config{Transport: core.TCP, Iface: "wifi"}, core.Download, 2 << 20},
		{core.Config{Transport: core.TCP, Iface: "lte"}, core.Download, 1 << 20},
		{core.Config{Transport: core.TCP, Iface: "wifi"}, core.Upload, 512 << 10},
	}
	for _, c := range cells {
		pkt, fld, elided := runFluidCell(t, cond, c.cfg, c.dir, c.size)
		if elided == 0 {
			t.Errorf("%s/%v/%d: no segments elided — fluid mode never engaged",
				c.cfg.Name(), c.dir, c.size)
		}
		if r := fld.Mbps / pkt.Mbps; math.Abs(r-1) > 0.10 {
			t.Errorf("%s/%v/%d: fluid goodput %.3f Mbit/s vs packet %.3f (ratio %.3f)",
				c.cfg.Name(), c.dir, c.size, fld.Mbps, pkt.Mbps, r)
		}
	}
}

func TestFluidSmokeIneligibleExact(t *testing.T) {
	// Lossy, variable-rate paths (every paper location) never admit a
	// session; MPTCP subflows carry per-segment options and are always
	// ineligible. Fluid mode must then be a bit-identical no-op.
	cells := []struct {
		cond phy.Condition
		cfg  core.Config
		dir  core.Direction
		size int
	}{
		{phy.Locations[0].Condition(),
			core.Config{Transport: core.TCP, Iface: "wifi"}, core.Download, 1 << 20},
		{fluidCleanCond(),
			core.Config{Transport: core.MPTCP, Primary: "wifi", CC: mptcp.Coupled},
			core.Download, 1 << 20},
	}
	for _, c := range cells {
		pkt, fld, _ := runFluidCell(t, c.cond, c.cfg, c.dir, c.size)
		if pkt.FCT != fld.FCT {
			t.Errorf("%s on %s: fluid FCT %v differs from packet %v on an ineligible cell",
				c.cfg.Name(), c.cond.Name, fld.FCT, pkt.FCT)
		}
	}
}
