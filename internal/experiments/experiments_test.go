package experiments

import (
	"crypto/sha256"
	"fmt"
	"math"
	"runtime"
	"strings"
	"testing"

	"multinet/internal/experiments/engine"
)

func TestTable1(t *testing.T) {
	r := Table1(Quick())
	if len(r.Rows) < 18 {
		t.Fatalf("clusters = %d, want ~22", len(r.Rows))
	}
	if r.Filtered == 0 {
		t.Fatal("expected incomplete runs to be filtered")
	}
	s := r.String()
	if !strings.Contains(s, "US (Boston, MA)") {
		t.Fatal("rendered table missing Boston")
	}
}

func TestFigure3HeadlineNumbers(t *testing.T) {
	r := Figure3(Quick())
	if math.Abs(r.LTEWinUp-0.42) > 0.05 {
		t.Fatalf("uplink win %.2f, want ~0.42", r.LTEWinUp)
	}
	if math.Abs(r.LTEWinDown-0.35) > 0.05 {
		t.Fatalf("downlink win %.2f, want ~0.35", r.LTEWinDown)
	}
	if math.Abs(r.Combined-0.40) > 0.05 {
		t.Fatalf("combined win %.2f, want ~0.40", r.Combined)
	}
	if len(r.Uplink.Points) == 0 || len(r.Downlink.Points) == 0 {
		t.Fatal("missing CDF points")
	}
}

func TestFigure4(t *testing.T) {
	r := Figure4(Quick())
	if math.Abs(r.LTELowerRTT-0.20) > 0.05 {
		t.Fatalf("LTE lower RTT %.2f, want ~0.20", r.LTELowerRTT)
	}
}

func TestTable2(t *testing.T) {
	r := Table2(Quick())
	if len(r.Locations) != 20 {
		t.Fatalf("locations = %d", len(r.Locations))
	}
	if !strings.Contains(r.String(), "Santa Barbara") {
		t.Fatal("rendered table incomplete")
	}
}

func TestFigure6CurvesClose(t *testing.T) {
	// The first few locations alone are unrepresentative; use half the
	// site list for a meaningful median comparison.
	r := Figure6(Options{Trials: 1, Locations: 10})
	// The 20-location median should land within a few Mbit/s of the
	// campaign median (paper: "curves are close").
	if r.MedianGapDown > 5 {
		t.Fatalf("downlink median gap %.2f Mbit/s too large", r.MedianGapDown)
	}
	if len(r.TwentyDown.Points) == 0 {
		t.Fatal("no 20-location samples")
	}
}

func TestFigure7Shapes(t *testing.T) {
	r := Figure7(Quick())
	if len(r.SeriesA) != 6 || len(r.SeriesB) != 6 {
		t.Fatalf("series counts %d/%d, want 6", len(r.SeriesA), len(r.SeriesB))
	}
	final := func(series []Figure7Series, name string) float64 {
		for _, s := range series {
			if s.Config == name {
				return s.Mbps[len(s.Mbps)-1]
			}
		}
		t.Fatalf("missing config %s", name)
		return 0
	}
	// Panel (a): large LTE advantage — LTE-TCP at 1 MB should beat
	// every MPTCP variant (paper: MPTCP always worse than best TCP).
	bestTCP := final(r.SeriesA, "lte-TCP")
	for _, s := range r.SeriesA {
		if strings.HasPrefix(s.Config, "MPTCP") {
			if s.Mbps[len(s.Mbps)-1] > bestTCP {
				t.Errorf("panel a: %s (%.2f) beats best single path (%.2f)",
					s.Config, s.Mbps[len(s.Mbps)-1], bestTCP)
			}
		}
	}
	// Panel (b): comparable paths — some MPTCP variant at 1 MB beats
	// the best single path.
	bestTCPb := math.Max(final(r.SeriesB, "wifi-TCP"), final(r.SeriesB, "lte-TCP"))
	bestMPTCP := 0.0
	for _, s := range r.SeriesB {
		if strings.HasPrefix(s.Config, "MPTCP") {
			bestMPTCP = math.Max(bestMPTCP, s.Mbps[len(s.Mbps)-1])
		}
	}
	if bestMPTCP <= bestTCPb {
		t.Errorf("panel b: best MPTCP %.2f does not beat best TCP %.2f", bestMPTCP, bestTCPb)
	}
	// Throughput grows with flow size for single-path TCP.
	for _, s := range r.SeriesB[:2] {
		if s.Mbps[0] >= s.Mbps[len(s.Mbps)-1] {
			t.Errorf("%s: throughput not growing with flow size", s.Config)
		}
	}
}

func TestFigure8Decreasing(t *testing.T) {
	r := Figure8(Quick())
	m10, m100, m1000 := r.MedianPct["10KB"], r.MedianPct["100KB"], r.MedianPct["1MB"]
	if !(m10 > m100 && m100 > m1000) {
		t.Fatalf("primary sensitivity should fall with flow size: %.0f/%.0f/%.0f", m10, m100, m1000)
	}
	// The paper's medians are 60/49/28: ours should be in the same
	// region (short flows dramatically more sensitive).
	if m10 < 25 {
		t.Fatalf("10KB median %.0f%% too small (paper 60%%)", m10)
	}
	if m1000 > 40 {
		t.Fatalf("1MB median %.0f%% too large (paper 28%%)", m1000)
	}
}

func TestFigure9And10(t *testing.T) {
	r9 := Figure9(Quick())
	// At the LTE-better location, LTE primary grows faster.
	if r9.LTEPrimary.FinalMbps <= r9.WiFiPrimary.FinalMbps {
		t.Errorf("Fig9: LTE-primary final %.2f should beat WiFi-primary %.2f",
			r9.LTEPrimary.FinalMbps, r9.WiFiPrimary.FinalMbps)
	}
	r10 := Figure10(Quick())
	if r10.WiFiPrimary.FinalMbps <= r10.LTEPrimary.FinalMbps {
		t.Errorf("Fig10: WiFi-primary final %.2f should beat LTE-primary %.2f",
			r10.WiFiPrimary.FinalMbps, r10.LTEPrimary.FinalMbps)
	}
	if len(r9.WiFiPrimary.MPTCP) < 10 {
		t.Fatal("too few evolution points")
	}
}

func TestFigure11And12Shapes(t *testing.T) {
	r11 := Figure11(Quick())
	// LTE-better location: MPTCP(LTE) above MPTCP(WiFi); the ratio
	// shrinks toward 1 as flows grow.
	first, last := r11.Ratio[0], r11.Ratio[len(r11.Ratio)-1]
	if first <= 1 {
		t.Errorf("Fig11: small-flow ratio %.2f should favour LTE primary", first)
	}
	if last >= first {
		t.Errorf("Fig11: ratio should shrink with flow size (%.2f -> %.2f)", first, last)
	}
	// The paper's absolute difference grows with flow size; in our
	// reproduction it stays roughly level (see EXPERIMENTS.md) — the
	// essential property is that it does not collapse to zero while
	// the RELATIVE ratio shrinks.
	dFirst := r11.LTEMbps[0] - r11.WiFiMbps[0]
	dLast := r11.LTEMbps[len(r11.LTEMbps)-1] - r11.WiFiMbps[len(r11.WiFiMbps)-1]
	if dLast < dFirst/3 {
		t.Errorf("Fig11: absolute gap collapsed (%.2f -> %.2f)", dFirst, dLast)
	}

	r12 := Figure12(Quick())
	if r12.Ratio[0] >= 1 {
		t.Errorf("Fig12: small-flow ratio %.2f should favour WiFi primary", r12.Ratio[0])
	}
}

func TestCouplingShapes(t *testing.T) {
	r := Coupling(Options{Trials: 1, Locations: 3})
	// Short flows: network choice dominates CC choice.
	if r.NetworkMedianPct["10KB"] <= r.CCMedianPct["10KB"] {
		t.Errorf("10KB: network median %.0f should exceed CC median %.0f",
			r.NetworkMedianPct["10KB"], r.CCMedianPct["10KB"])
	}
	// Long flows: CC choice grows in importance; network choice falls.
	if r.CCMedianPct["1MB"] <= r.CCMedianPct["10KB"] {
		t.Errorf("CC sensitivity should grow with size: %.0f -> %.0f",
			r.CCMedianPct["10KB"], r.CCMedianPct["1MB"])
	}
	if r.NetworkMedianPct["1MB"] >= r.NetworkMedianPct["10KB"] {
		t.Errorf("network sensitivity should fall with size: %.0f -> %.0f",
			r.NetworkMedianPct["10KB"], r.NetworkMedianPct["1MB"])
	}
}

func TestFigure15Panels(t *testing.T) {
	r := Figure15(Quick())
	if len(r.Panels) != 8 {
		t.Fatalf("panels = %d, want 8", len(r.Panels))
	}
	byName := map[string]Fig15Panel{}
	for _, p := range r.Panels {
		byName[p.Name] = p
	}
	// Full-MPTCP panels complete with traffic on both interfaces.
	for _, n := range []string{"a", "b"} {
		p := byName[n]
		if !p.Completed {
			t.Errorf("panel %s did not complete", n)
		}
		if len(p.WiFiEvents) < 100 || len(p.LTEEvents) < 100 {
			t.Errorf("panel %s: expected data on both interfaces", n)
		}
	}
	// Backup panels: the backup interface sees only handshake/teardown.
	if p := byName["c"]; len(p.WiFiEvents) > 40 {
		t.Errorf("panel c: backup WiFi saw %d events, want only SYN/FIN traffic", len(p.WiFiEvents))
	}
	// Panel e/f: explicit down mid-flow still completes (failover).
	for _, n := range []string{"e", "f"} {
		if !byName[n].Completed {
			t.Errorf("panel %s: failover transfer did not complete", n)
		}
	}
	// Panel g: silent unplug stalls past the 68 s replug.
	if p := byName["g"]; !p.Completed || p.CompletedAt < 68e9 {
		t.Errorf("panel g: want completion after replug at 68s, got %v (completed=%v)",
			p.CompletedAt, p.Completed)
	}
	// Panel h: detectable WiFi unplug fails over promptly.
	if p := byName["h"]; !p.Completed || p.CompletedAt > 60e9 {
		t.Errorf("panel h: want prompt completion, got %v", p.CompletedAt)
	}
}

func TestFigure16Panels(t *testing.T) {
	r := Figure16(Quick())
	if len(r.Panels) != 4 {
		t.Fatalf("panels = %d, want 4", len(r.Panels))
	}
	get := func(n string) Fig16Panel {
		for _, p := range r.Panels {
			if p.Name == n {
				return p
			}
		}
		t.Fatalf("missing panel %s", n)
		return Fig16Panel{}
	}
	a, b, c, d := get("a"), get("b"), get("c"), get("d")
	// LTE active peaks at 3.2 W, WiFi lower (paper Fig. 16a/b).
	if a.PeakWatts < 3 {
		t.Errorf("LTE active peak %.1f W, want ~3.2", a.PeakWatts)
	}
	if b.PeakWatts >= a.PeakWatts {
		t.Errorf("WiFi active peak %.1f W should be below LTE %.1f", b.PeakWatts, a.PeakWatts)
	}
	// LTE backup still has a long tail; WiFi backup is negligible.
	if c.TailSecs < 10 {
		t.Errorf("LTE backup tail %.1f s, want ~15 (paper Fig. 16c)", c.TailSecs)
	}
	if d.Joules > c.Joules/5 {
		t.Errorf("WiFi backup energy %.1f J should be far below LTE backup %.1f J", d.Joules, c.Joules)
	}
}

func TestEnergyBackupBreakEven(t *testing.T) {
	r := EnergyBackup(Quick())
	// Savings must grow with flow duration and be small below 15 s.
	for i := 1; i < len(r.SavingPct); i++ {
		if r.SavingPct[i] < r.SavingPct[i-1]-1 {
			t.Fatalf("savings should grow with duration: %v", r.SavingPct)
		}
	}
	for i, d := range r.FlowSecs {
		if d < 15 && r.SavingPct[i] > 50 {
			t.Errorf("%.0fs flow: saving %.0f%% too large (paper: little saved under 15s)",
				d, r.SavingPct[i])
		}
	}
	if r.BreakEvenSecs < 15 {
		t.Errorf("break-even %.0f s, want >= 15", r.BreakEvenSecs)
	}
}

func TestFigure17Classification(t *testing.T) {
	r := Figure17(Quick())
	if len(r.Rows) != 6 {
		t.Fatalf("rows = %d, want 6 panels", len(r.Rows))
	}
	labels := map[string]string{}
	for _, row := range r.Rows {
		labels[row.App+"/"+row.Interaction] = row.Label
	}
	if labels["cnn/launch"] != "short-flow dominated" {
		t.Error("CNN launch misclassified")
	}
	if labels["dropbox/click"] != "long-flow dominated" {
		t.Error("Dropbox click misclassified")
	}
	if labels["imdb/click"] != "long-flow dominated" {
		t.Error("IMDB click misclassified")
	}
}

func TestFigure18ShortFlowFindings(t *testing.T) {
	r := Figure18(Quick())
	if len(r.Secs) != 4 || len(r.Secs[0]) != 6 {
		t.Fatalf("shape = %dx%d, want 4x6", len(r.Secs), len(r.Secs[0]))
	}
	cfg := map[string]int{}
	for i, c := range r.Configs {
		cfg[c] = i
	}
	// NC1 (WiFi much better): WiFi-TCP beats LTE-TCP by ~2x.
	nc1 := r.Secs[0]
	if nc1[cfg["WiFi-TCP"]]*1.5 > nc1[cfg["LTE-TCP"]] {
		t.Errorf("NC1: WiFi-TCP %.1fs should be much faster than LTE-TCP %.1fs",
			nc1[cfg["WiFi-TCP"]], nc1[cfg["LTE-TCP"]])
	}
	// NC3 (LTE much better): LTE-TCP beats WiFi-TCP by ~2x.
	nc3 := r.Secs[2]
	if nc3[cfg["LTE-TCP"]]*1.5 > nc3[cfg["WiFi-TCP"]] {
		t.Errorf("NC3: LTE-TCP %.1fs should be much faster than WiFi-TCP %.1fs",
			nc3[cfg["LTE-TCP"]], nc3[cfg["WiFi-TCP"]])
	}
	// Short flows: MPTCP with the right primary is no better than the
	// right single path (within 15%).
	bestTCP := math.Min(nc1[cfg["WiFi-TCP"]], nc1[cfg["LTE-TCP"]])
	bestMPTCP := math.Inf(1)
	for name, i := range cfg {
		if strings.HasPrefix(name, "MPTCP") {
			bestMPTCP = math.Min(bestMPTCP, nc1[i])
		}
	}
	if bestMPTCP < bestTCP*0.85 {
		t.Errorf("NC1: best MPTCP %.1fs much faster than best TCP %.1fs on a short-flow app",
			bestMPTCP, bestTCP)
	}
}

func TestFigure19OracleOrdering(t *testing.T) {
	r := Figure19(Options{Trials: 1, Locations: 8})
	sp := r.Normalized["Single-Path-TCP Oracle"]
	if sp <= 0 || sp >= 1 {
		t.Fatalf("single-path oracle %.2f out of range", sp)
	}
	// Paper finding 4: "for short-flow dominated apps, MPTCP does not
	// outperform the best conventional single-path TCP". In our
	// simulation MPTCP lacks the real-system overheads that made it
	// strictly worse in the paper, so the faithful check is that its
	// advantage over the single-path oracle stays SMALL (the long-flow
	// counterpart test requires a LARGE advantage — the paper's core
	// contrast; see EXPERIMENTS.md).
	bestMPTCP := math.Min(r.Normalized["Decoupled-MPTCP Oracle"], r.Normalized["Coupled-MPTCP Oracle"])
	advantage := 1 - bestMPTCP/sp
	if advantage > 0.15 {
		t.Errorf("short-flow app: MPTCP oracle advantage %.0f%% over single-path, want < 15%%",
			advantage*100)
	}
}

func TestFigure20And21LongFlowFindings(t *testing.T) {
	r := Figure21(Options{Trials: 1, Locations: 8})
	sp := r.Normalized["Single-Path-TCP Oracle"]
	bestMPTCP := math.Inf(1)
	for _, name := range []string{"Decoupled-MPTCP Oracle", "Coupled-MPTCP Oracle"} {
		bestMPTCP = math.Min(bestMPTCP, r.Normalized[name])
	}
	// Paper: for the long-flow app, MPTCP oracles beat the single-path
	// oracle markedly (~50% vs 42% reduction). Require a LARGE
	// advantage, in contrast to the short-flow app's small one.
	advantage := 1 - bestMPTCP/sp
	if advantage < 0.15 {
		t.Errorf("long-flow app: MPTCP oracle advantage %.0f%% over single-path, want > 15%%",
			advantage*100)
	}
}

func TestAblationJoinDelay(t *testing.T) {
	r := AblationJoinDelay(Options{Trials: 1, Locations: 6})
	// Simultaneous joins must not INCREASE the sensitivity; they cannot
	// eliminate it either, because short-flow data is committed to the
	// primary subflow before the second path is usable (see the
	// AblationJoinResult doc comment).
	if r.MedianPctSimultaneous > r.MedianPctSequential*1.10 {
		t.Errorf("simultaneous join sensitivity %.0f%% should not exceed sequential %.0f%%",
			r.MedianPctSimultaneous, r.MedianPctSequential)
	}
	if r.MedianPctSequential < 20 {
		t.Errorf("sequential sensitivity %.0f%% too low — short flows must be primary-dominated",
			r.MedianPctSequential)
	}
}

func TestAblationScheduler(t *testing.T) {
	r := AblationScheduler(Options{Trials: 2})
	if r.RoundRobinMbps >= r.MinRTTMbps {
		t.Errorf("round-robin %.2f should underperform min-SRTT %.2f on disparate paths",
			r.RoundRobinMbps, r.MinRTTMbps)
	}
}

func TestAblationTailTime(t *testing.T) {
	r := AblationTailTime(Quick())
	// Savings shrink as the tail grows.
	for i := 1; i < len(r.SavingPct); i++ {
		if r.SavingPct[i] > r.SavingPct[i-1] {
			t.Fatalf("savings should fall with tail duration: %v", r.SavingPct)
		}
	}
	if r.SavingPct[0] < 80 {
		t.Errorf("zero-tail saving %.0f%%, want large", r.SavingPct[0])
	}
}

func TestAblationSelector(t *testing.T) {
	r := AblationSelector(Options{Trials: 1, Locations: 6})
	ad := r.MeanFCT["adaptive-selector"]
	if ad <= 0 {
		t.Fatal("no adaptive results")
	}
	// The adaptive policy must beat both static single-network
	// policies on the mixed workload.
	if ad >= r.MeanFCT["always-wifi"] {
		t.Errorf("adaptive %.2fs not better than always-wifi %.2fs", ad, r.MeanFCT["always-wifi"])
	}
	if ad >= r.MeanFCT["always-lte"] {
		t.Errorf("adaptive %.2fs not better than always-lte %.2fs", ad, r.MeanFCT["always-lte"])
	}
}

func TestRegistryUniqueAndRunnable(t *testing.T) {
	// Every harness must be registered exactly once — the registry is
	// the single source of truth iterated by cmd/report and the
	// benchmarks — and every registered experiment must run and render
	// under Quick() options.
	all := engine.All()
	if len(all) != 29 {
		t.Fatalf("registry holds %d experiments, want 24 paper + 5 scenario", len(all))
	}
	seen := map[string]bool{}
	for _, e := range all {
		if e.Meta.Name == "" || e.Meta.Title == "" {
			t.Fatalf("experiment with empty metadata: %+v", e.Meta)
		}
		if seen[e.Meta.Name] {
			t.Fatalf("duplicate experiment name %q", e.Meta.Name)
		}
		seen[e.Meta.Name] = true
	}
	for i := 1; i < len(all); i++ {
		if all[i-1].Meta.Order >= all[i].Meta.Order {
			t.Fatalf("registry order not strictly increasing at %q", all[i].Meta.Name)
		}
	}
	for _, e := range all {
		t.Run(e.Meta.Name, func(t *testing.T) {
			if out := e.Run(Quick()).String(); len(out) < 40 {
				t.Errorf("renderer output too short (%d bytes)", len(out))
			}
		})
	}
}

func TestScenarioShapes(t *testing.T) {
	dlte := ScenarioDualLTE(Quick())
	if len(dlte.Variants) != 2 {
		t.Fatalf("dual-lte variants = %d", len(dlte.Variants))
	}
	similar, disparate := dlte.Variants[0], dlte.Variants[1]
	// Similar twin carriers aggregate on bulk flows (Mohan et al.);
	// their probe disparity stays within the MPTCP-worthwhile bound.
	if similar.BestMPTCPMbps <= similar.BestTCPMbps {
		t.Errorf("similar carriers: MPTCP %.2f should beat best TCP %.2f",
			similar.BestMPTCPMbps, similar.BestTCPMbps)
	}
	if similar.Disparity >= disparate.Disparity {
		t.Errorf("disparity ordering: similar %.1f should be below disparate %.1f",
			similar.Disparity, disparate.Disparity)
	}

	dwlan := ScenarioDualWLAN(Quick())
	nearFar, overlap := dwlan.Variants[0], dwlan.Variants[1]
	// Next to a crowded far AP the selector must stay single-path at
	// every size; in the overlap zone bulk flows go multipath.
	for si, d := range nearFar.Decisions {
		if !strings.HasSuffix(d, "-TCP") {
			t.Errorf("near/far AP size %dKB: selector chose %s, want single-path", nearFar.KB[si], d)
		}
	}
	if d := overlap.Decisions[len(overlap.Decisions)-1]; !strings.HasPrefix(d, "MPTCP") {
		t.Errorf("overlap zone bulk flow: selector chose %s, want MPTCP", d)
	}
	if overlap.BestMPTCPMbps <= overlap.BestTCPMbps {
		t.Errorf("overlap zone: MPTCP %.2f should beat best TCP %.2f",
			overlap.BestMPTCPMbps, overlap.BestTCPMbps)
	}

	w2l := ScenarioWiFi2LTE(Quick())
	// Three subflows must out-aggregate the best single path.
	if w2l.Transfers.BestMPTCPMbps <= w2l.Transfers.BestTCPMbps {
		t.Errorf("wifi+2lte: MPTCP %.2f should beat best TCP %.2f",
			w2l.Transfers.BestMPTCPMbps, w2l.Transfers.BestTCPMbps)
	}
	if len(w2l.Transfers.Ranked) != 3 {
		t.Fatalf("wifi+2lte probe ranked %d paths, want 3", len(w2l.Transfers.Ranked))
	}
	// The generalized oracle must rank all 7 schemes (baseline + 3
	// single-path/CC oracles + 3 per-primary oracles) and some MPTCP
	// oracle must beat the single-path oracle on the long-flow app.
	if len(w2l.SchemeNames) != 7 {
		t.Fatalf("oracle schemes = %d, want 7", len(w2l.SchemeNames))
	}
	if w2l.Conditions == 0 {
		t.Fatal("no oracle conditions completed")
	}
	sp := w2l.Normalized["Single-Path-TCP Oracle"]
	dec := w2l.Normalized["Decoupled-MPTCP Oracle"]
	if sp <= 0 || dec <= 0 || dec >= sp {
		t.Errorf("3-path oracle: decoupled MPTCP %.2f should beat single-path %.2f", dec, sp)
	}
}

func TestScenarioSchedulers(t *testing.T) {
	r := ScenarioSchedulers(Quick())
	if len(r.Schedulers) < 4 {
		t.Fatalf("scheduler variants = %d, want >= 4", len(r.Schedulers))
	}
	if len(r.Variants) != 2 {
		t.Fatalf("variants = %d, want comparable + disparate", len(r.Variants))
	}
	comparable, disparate := r.Variants[0], r.Variants[1]
	if comparable.Disparity >= disparate.Disparity {
		t.Errorf("disparity ordering: comparable %.1f should be below disparate %.1f",
			comparable.Disparity, disparate.Disparity)
	}
	// Config columns: wifi-TCP, lte-TCP, then one MPTCP column per
	// scheduler in presentation order.
	wantCfgs := 2 + len(r.Schedulers)
	for _, v := range r.Variants {
		if len(v.Configs) != wantCfgs {
			t.Fatalf("%s: configs = %d, want %d", v.Name, len(v.Configs), wantCfgs)
		}
	}
	bulk := comparable.Mbps[len(comparable.Mbps)-1]
	minSRTTCol, redundantCol := 2, 4
	// Bulk flows on comparable paths: the default scheduler aggregates
	// past the best single path...
	if bulk[minSRTTCol] <= comparable.BestTCPMbps {
		t.Errorf("comparable bulk: min-SRTT MPTCP %.2f should beat best TCP %.2f",
			bulk[minSRTTCol], comparable.BestTCPMbps)
	}
	// ...while redundant duplication spends capacity on copies and must
	// land below it.
	if bulk[redundantCol] >= bulk[minSRTTCol] {
		t.Errorf("comparable bulk: redundant %.2f should trail min-SRTT %.2f (duplication cost)",
			bulk[redundantCol], bulk[minSRTTCol])
	}
	// Oracle: baseline + single-path oracle + one oracle per scheduler,
	// every scheduler compared against the N-path oracle.
	if want := 2 + len(r.Schedulers); len(r.SchemeNames) != want {
		t.Fatalf("oracle schemes = %d, want %d", len(r.SchemeNames), want)
	}
	if r.Conditions == 0 {
		t.Fatal("no oracle conditions completed")
	}
	for _, name := range r.SchemeNames {
		if v := r.Normalized[name]; v <= 0 {
			t.Errorf("scheme %q missing from the normalisation (got %.2f)", name, v)
		}
	}
	// The long-flow app is where MPTCP oracles win (paper Fig. 21): the
	// default scheduler's oracle must beat the single-path oracle.
	sp := r.Normalized["Single-Path-TCP Oracle"]
	ms := r.Normalized["MPTCP-minsrtt Oracle"]
	if ms >= sp {
		t.Errorf("minsrtt oracle %.2f should beat single-path oracle %.2f on the long-flow app", ms, sp)
	}
}

// quickGolden pins the SHA-256 of every experiment's Quick() output at
// the default seed. The 24 paper-experiment hashes were captured
// BEFORE the N-path PathSet refactor, so this test proves the refactor
// (and any future change — including the pluggable-scheduler refactor,
// whose default MinSRTT path must stay bit-identical) keeps their
// output unchanged; the scenario hashes pin the new experiments'
// determinism the same way.
// A mismatch here means experiment calibration changed: that is a
// deliberate act, never a side effect — recapture with
// `go run ./cmd/report -quick -json` and say so in the commit.
var quickGolden = map[string]string{
	"table1":              "da7ec171726744f9d7456421d6745e4938c3192403275c8ed89cd4aeb4699f62",
	"figure3":             "22446a640e675c83d4c9eec1f5e4ff2607bab2b4e029ccc1e193a268d753b0da",
	"figure4":             "1c11d072532616180c3c921182f7852015e7bd4cd41f23c2221669b045535489",
	"table2":              "04440cf4b58a539247910cd0ae4189985932c0941133169b5f5868839f9d7f1d",
	"figure6":             "dcb9df2bf0fb9db5ec36c6a44e83eaaf6b065d51f437631f9dd27881319184ab",
	"figure7":             "51c41c3740e44a1f1ca1b971759b3c945b46f65320fd5407f1dd9833946d2241",
	"figure8":             "3e5612b3fa567329c8af908fb79c3ab6d03b7bdf735a3d07139b5bbf51cb2f54",
	"figure9":             "11320924064f837b8d914e064a41c7e913600c716039b8642711be8c503ac418",
	"figure10":            "4fbbbaecb892aa3bfcc71bdb4a7b6f61b850de81f490b6514156c5076b168cfd",
	"figure11":            "486f44f39a0cd8f19c6b46610a168d1a62cc4f8895467fe086f851cd00eb5922",
	"figure12":            "3de96e1a4071f9f653d8ad57e7c139c6b9177ff708ca162f0798c17921a2d44d",
	"coupling":            "f2e12fbd77bf0b66f9598b5693e27f919ad051164be1a5742e2ba714b7409628",
	"figure15":            "f34518970449a0d664030f68f52ee40bb70b1c9f208754ee0db781b3d662ef42",
	"figure16":            "b56630d3237317f0798c697f6a2dd0944842a57e75840fb32742d9c7c7f64cdf",
	"energy-backup":       "05196a2ce6b95ac196085390b950ea426c349abe50d5dee03c233265f96646bf",
	"figure17":            "99bab977b60daa79a0176a1a294e3024b2f70f2e48ea0a248df2f0f6020b0f0d",
	"figure18":            "8af855d73dd470b0f50843520db6cdca6c1b1643959fc1ba572bdf4e590dae34",
	"figure19":            "e0bf556880af6a613db05e6b285f8c645bd6ff0dff9ad8f9773d8ef10675f994",
	"figure20":            "e4e09ba0eb6ad2d5103f80566dbb171e07242bd11e8922cd2702a414d714cd45",
	"figure21":            "a6993ee639d4c8e8d4b24780bf627c0e04f5669dcc39855761f08dee42211fd1",
	"ablation-join":       "9d42f291ac71e129bad716445c1a2570194e0647ecfaa4f8ef3fdaccfeda2615",
	"ablation-scheduler":  "c82fa75f9c64cb2c2a494f48c82834396cb78b3bda852ca322d91bb0f538c599",
	"ablation-tail":       "e1addebdf5efc48ef158d2733689a9fd7c6beef2b12038c847a1bdd2948e6c95",
	"ablation-selector":   "482d15dd59d71fd9774ab254a563a39572d644656212a6ec652e7f3fe56afc3a",
	"scenario-dual-lte":   "3a094d0f5193541f4eab9e787e272b9a326deb60e57da7093ee66e77d4bcb5e0",
	"scenario-dual-wlan":  "03c0de5058b4a76c07f021c0bd878196a84f25df348bda564e345a600aaeb8b6",
	"scenario-wifi-2lte":  "5e28cd2f73eac00db28d45bedc82639c45a8c7309199e3bc9478a470f47bff6b",
	"scenario-schedulers": "67643cc4e6ea3321ba0fb504d5ee4630f4f82c67394273aea973639d4075a024",
	"scenario-faults":     "516a09839dd3aeb791eb245d9bc4f32c2d9e8a792cddbc9df8bf48e1cadc0183",
}

func TestQuickOutputGolden(t *testing.T) {
	all := engine.All()
	if len(all) != len(quickGolden) {
		t.Fatalf("registry holds %d experiments, golden table %d", len(all), len(quickGolden))
	}
	o := Quick()
	o.Seed = engine.DefaultSeed
	for _, e := range all {
		e := e
		t.Run(e.Meta.Name, func(t *testing.T) {
			want, ok := quickGolden[e.Meta.Name]
			if !ok {
				t.Fatalf("no golden hash for %q — add one (see quickGolden doc)", e.Meta.Name)
			}
			got := fmt.Sprintf("%x", sha256.Sum256([]byte(e.Run(o).String())))
			if got != want {
				t.Errorf("quick output changed: sha256 %s, golden %s", got, want)
			}
		})
	}
}

func TestSweepDeterminism(t *testing.T) {
	// The sweep runner must produce byte-identical output at any worker
	// count. Figure7 exercises the grid sweep plus nested trial sweeps;
	// Coupling exercises the flattened three-deep nest with variable-
	// length per-cell sample lists.
	for _, workers := range []int{runtime.GOMAXPROCS(0), 8} {
		o := Quick()
		seq, par := o, o
		seq.Workers = 1
		par.Workers = workers
		if a, b := Figure7(seq).String(), Figure7(par).String(); a != b {
			t.Errorf("Figure7: %d-worker output differs from sequential", workers)
		}
		if a, b := Coupling(seq).String(), Coupling(par).String(); a != b {
			t.Errorf("Coupling: %d-worker output differs from sequential", workers)
		}
	}
}
