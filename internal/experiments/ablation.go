package experiments

import (
	"fmt"
	"sort"
	"time"

	"multinet/internal/core"
	"multinet/internal/energy"
	"multinet/internal/experiments/engine"
	"multinet/internal/phy"
	"multinet/internal/simnet"
	"multinet/internal/stats"
)

func init() {
	register("ablation-join", "Ablation: late join", "D.1", 21, func(o Options) fmt.Stringer { return AblationJoinDelay(o) })
	register("ablation-scheduler", "Ablation: scheduler", "D.2", 22, func(o Options) fmt.Stringer { return AblationScheduler(o) })
	register("ablation-tail", "Ablation: tail time", "D.3", 23, func(o Options) fmt.Stringer { return AblationTailTime(o) })
	register("ablation-selector", "Ablation: selector", "D.4", 24, func(o Options) fmt.Stringer { return AblationSelector(o) })
}

// AblationJoinResult tests the design claim that the late MP_JOIN
// drives short-flow MPTCP's sensitivity to the primary network
// (DESIGN.md ablation 1). The result is more subtle than the paper
// implies: even when both subflows handshake simultaneously, a short
// flow's data has already been committed to the primary subflow's
// retransmission queue before the second path becomes usable, so most
// of the sensitivity REMAINS. The late join adds to the effect; the
// data-commitment ordering is its root cause.
type AblationJoinResult struct {
	// MedianPctSequential is the Fig. 8-style median relative
	// difference for 10 KB flows with the standard late join.
	MedianPctSequential float64
	// MedianPctSimultaneous is the same with both subflows started at
	// dial time.
	MedianPctSimultaneous float64
}

// AblationJoinDelay measures primary-choice sensitivity with and
// without the late join.
func AblationJoinDelay(o Options) AblationJoinResult {
	const size = 10 << 10
	measure := func(simultaneous bool) float64 {
		n := o.LocationCount(len(phy.Locations))
		trials := o.TrialCount(2)
		rel := relDiffGrid(o, n, trials, func(i, t int) (float64, float64) {
			loc := phy.Locations[i]
			seed := seedFor(o.BaseSeed(), 771, loc.ID, t, boolInt(simultaneous))
			lte := measureMbps(o.Serial(), seed, loc.Condition(), core.Config{
				Transport: core.MPTCP, Primary: "lte", SimultaneousJoin: simultaneous,
			}, core.Download, size, 1)
			wifi := measureMbps(o.Serial(), seed+1, loc.Condition(), core.Config{
				Transport: core.MPTCP, Primary: "wifi", SimultaneousJoin: simultaneous,
			}, core.Download, size, 1)
			return lte, wifi
		})
		return stats.Median(rel)
	}
	return AblationJoinResult{
		MedianPctSequential:   measure(false),
		MedianPctSimultaneous: measure(true),
	}
}

func boolInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// String renders the comparison.
func (r AblationJoinResult) String() string {
	return fmt.Sprintf("Ablation: late join — 10KB primary-choice sensitivity\n"+
		"sequential join (Linux): median %.0f%%; simultaneous join: median %.0f%%\n"+
		"(sensitivity persists even with simultaneous joins: short-flow data\n"+
		" is committed to the primary subflow before the second path is usable)\n",
		r.MedianPctSequential, r.MedianPctSimultaneous)
}

// AblationSchedulerResult compares the min-SRTT scheduler with naive
// round-robin on a disparate-path location (DESIGN.md ablation 2).
type AblationSchedulerResult struct {
	MinRTTMbps     float64
	RoundRobinMbps float64
}

// AblationScheduler measures 1 MB MPTCP downloads with each scheduler.
// It keeps the legacy RoundRobin flag (client-side wiring only) so its
// output golden stays bit-identical; scenario-schedulers is the full
// both-ends scheduler comparison over the pluggable Scheduler layer.
func AblationScheduler(o Options) AblationSchedulerResult {
	loc := phy.LocLTEMuchBetter
	trials := o.TrialCount(5)
	// The trials themselves are the only loop here, so they get the
	// full worker pool.
	return AblationSchedulerResult{
		MinRTTMbps: measureMbps(o, seedFor(o.BaseSeed(), 772, 0), loc.Condition(),
			core.Config{Transport: core.MPTCP, Primary: "lte"}, core.Download, 1<<20, trials),
		RoundRobinMbps: measureMbps(o, seedFor(o.BaseSeed(), 772, 1), loc.Condition(),
			core.Config{Transport: core.MPTCP, Primary: "lte", RoundRobin: true}, core.Download, 1<<20, trials),
	}
}

// String renders the comparison.
func (r AblationSchedulerResult) String() string {
	return fmt.Sprintf("Ablation: scheduler on disparate paths (1MB)\n"+
		"min-SRTT %.2f Mbit/s vs round-robin %.2f Mbit/s\n",
		r.MinRTTMbps, r.RoundRobinMbps)
}

// AblationTailResult shows how the Section 3.6 energy finding scales
// with the LTE tail duration (DESIGN.md ablation 3).
type AblationTailResult struct {
	TailSecs  []float64
	SavingPct []float64 // backup-mode saving for a 10 s flow
}

// AblationTailTime sweeps the LTE tail duration.
func AblationTailTime(o Options) AblationTailResult {
	res := AblationTailResult{}
	const flow = 10 * time.Second
	tails := []float64{0, 5, 15, 30}
	savings := engine.Sweep(o, len(tails), func(i int) float64 {
		tail := tails[i]
		model := energy.LTE
		model.TailDuration = time.Duration(tail * float64(time.Second))
		horizon := flow + model.TailDuration + time.Second

		simA := simnet.New(seedFor(o.BaseSeed(), 773, int(tail)))
		backup := energy.NewMeter(simA, model)
		backup.OnPacket()
		simA.Schedule(flow, backup.OnPacket)
		simA.RunUntil(horizon)

		simB := simnet.New(seedFor(o.BaseSeed(), 774, int(tail)))
		active := energy.NewMeter(simB, model)
		for t := time.Duration(0); t <= flow; t += 20 * time.Millisecond {
			tt := t
			simB.Schedule(tt, active.OnPacket)
		}
		simB.RunUntil(horizon)

		return (1 - backup.RadioJoules()/active.RadioJoules()) * 100
	})
	for i, tail := range tails {
		res.TailSecs = append(res.TailSecs, tail)
		res.SavingPct = append(res.SavingPct, savings[i])
	}
	return res
}

// String renders the sweep.
func (r AblationTailResult) String() string {
	var rows [][]string
	for i := range r.TailSecs {
		rows = append(rows, []string{
			fmt.Sprintf("%.0f", r.TailSecs[i]),
			fmt.Sprintf("%.0f%%", r.SavingPct[i]),
		})
	}
	return "Ablation: LTE tail duration vs backup-mode saving (10 s flow)\n" +
		table([]string{"Tail (s)", "Energy saved"}, rows)
}

// AblationSelectorResult evaluates the adaptive Selector (the paper's
// future-work policy) against the static policies on a mixed workload
// (DESIGN.md ablation 4).
type AblationSelectorResult struct {
	// MeanFCT maps policy name to mean flow completion time in seconds
	// over the workload (short + long flows across locations).
	MeanFCT map[string]float64
}

// AblationSelector compares adaptive selection with always-WiFi,
// always-LTE and always-MPTCP.
func AblationSelector(o Options) AblationSelectorResult {
	sizes := []int{10 << 10, 100 << 10, 1 << 20, 4 << 20}
	n := o.LocationCount(len(phy.Locations))
	policies := map[string]func(est core.Estimate, size int) core.Config{
		"adaptive-selector": func(est core.Estimate, size int) core.Config {
			// The same Decide path the online service queries
			// (internal/selector → internal/serve): no forked logic.
			return core.ConfigFor(core.Selector{}.Decide(est, size))
		},
		"always-wifi": func(core.Estimate, int) core.Config {
			return core.Config{Transport: core.TCP, Iface: "wifi"}
		},
		"always-lte": func(core.Estimate, int) core.Config {
			return core.Config{Transport: core.TCP, Iface: "lte"}
		},
		"always-mptcp": func(core.Estimate, int) core.Config {
			return core.Config{Transport: core.MPTCP, Primary: "wifi"}
		},
	}
	// Iterate policies in sorted name order: every session inside the
	// loop is independently seeded, but running simulations out of a
	// map range would make execution order (and any future shared
	// state) depend on map hashing.
	names := make([]string, 0, len(policies))
	for name := range policies {
		names = append(names, name)
	}
	sort.Strings(names)
	type locTotals struct {
		sums   map[string]float64
		counts map[string]int
	}
	perLoc := engine.Sweep(o, n, func(i int) locTotals {
		loc := phy.Locations[i]
		lt := locTotals{sums: map[string]float64{}, counts: map[string]int{}}
		probe := core.NewSession(seedFor(o.BaseSeed(), 775, loc.ID), loc.Condition())
		est := probe.Probe()
		for _, name := range names {
			pick := policies[name]
			for si, size := range sizes {
				s := core.NewSession(seedFor(o.BaseSeed(), 776, loc.ID, si), loc.Condition())
				r := s.Run(pick(est, size), core.Download, size)
				if r.Completed {
					lt.sums[name] += r.FCT.Seconds()
				} else {
					lt.sums[name] += s.Horizon.Seconds()
				}
				lt.counts[name]++
			}
		}
		return lt
	})
	sums := map[string]float64{}
	counts := map[string]int{}
	for _, lt := range perLoc {
		for name, sum := range lt.sums {
			sums[name] += sum
			counts[name] += lt.counts[name]
		}
	}
	res := AblationSelectorResult{MeanFCT: map[string]float64{}}
	for name, sum := range sums {
		res.MeanFCT[name] = sum / float64(counts[name])
	}
	return res
}

// String renders the policy comparison.
func (r AblationSelectorResult) String() string {
	var rows [][]string
	for _, name := range []string{"adaptive-selector", "always-wifi", "always-lte", "always-mptcp"} {
		rows = append(rows, []string{name, fmt.Sprintf("%.2fs", r.MeanFCT[name])})
	}
	return "Ablation: adaptive selector vs static policies (mean FCT, mixed flow sizes)\n" +
		table([]string{"Policy", "Mean FCT"}, rows)
}
