package experiments

import (
	"fmt"
	"time"

	"multinet/internal/core"
	"multinet/internal/experiments/engine"
	"multinet/internal/faults"
	"multinet/internal/mptcp"
	"multinet/internal/phy"
)

// scenario-faults drives live transfers through deterministic fault
// schedules — the chaos counterpart of Figure 15's hand-built outage
// cases. Each profile (an administrative outage, a silent blackhole, a
// flap train, a loss burst, a rate collapse) runs against single-path
// TCP on each interface and against MPTCP with the stuck-flow watchdog
// armed, measuring who completes and at what throughput. The schedules
// compile onto simulator timers, so the whole family is bit-identical
// at any worker count.
func init() {
	register("scenario-faults", "Scenario: fault injection", "scenario", 29,
		func(o Options) fmt.Stringer { return ScenarioFaults(o) })
}

// faultProfile is one named schedule of the family.
type faultProfile struct {
	name  string
	sched faults.Schedule
}

// scenarioFaultProfiles builds the fixed profile list. Faults begin at
// 1 s — mid-transfer for every configuration measured — and every
// episode ends by 4 s, leaving room to recover inside the horizon.
func scenarioFaultProfiles() []faultProfile {
	return []faultProfile{
		{"baseline", faults.Schedule{}},
		{"wifi-down", faults.Schedule{Episodes: []faults.Episode{
			{Kind: faults.AdminDown, Iface: "wifi", Start: time.Second, Duration: 2 * time.Second},
		}}},
		{"wifi-blackhole", faults.Schedule{Episodes: []faults.Episode{
			{Kind: faults.Blackhole, Iface: "wifi", Start: time.Second, Duration: 2 * time.Second},
		}}},
		{"lte-flap", faults.Schedule{Episodes: []faults.Episode{
			{Kind: faults.FlapTrain, Iface: "lte", Start: time.Second,
				Duration: 200 * time.Millisecond, Cycles: 3, Period: 600 * time.Millisecond},
		}}},
		{"wifi-loss-burst", faults.Schedule{Episodes: []faults.Episode{
			{Kind: faults.LossBurst, Iface: "wifi", Start: time.Second,
				Duration: 2 * time.Second, LossProb: 0.1},
		}}},
		{"lte-rate-collapse", faults.Schedule{Episodes: []faults.Episode{
			{Kind: faults.RateCollapse, Iface: "lte", Start: time.Second,
				Duration: 2 * time.Second, RateFactor: 0.1},
		}}},
		{"both-down-staggered", faults.Schedule{Episodes: []faults.Episode{
			{Kind: faults.AdminDown, Iface: "wifi", Start: time.Second, Duration: 1500 * time.Millisecond},
			{Kind: faults.AdminDown, Iface: "lte", Start: 3 * time.Second, Duration: time.Second},
		}}},
	}
}

// ScenarioFaultsResult is the profile × configuration throughput grid.
type ScenarioFaultsResult struct {
	Profiles []string
	Configs  []string
	// Mbps[profile][config]; 0 means the transfer did not complete
	// inside the horizon (aborted by the watchdog or RTO limits).
	Mbps [][]float64
}

// ScenarioFaults measures every fault profile against single-path TCP
// and watchdog-armed MPTCP. Constant-rate paths (Variability 0) keep
// the rate-collapse episode exact.
func ScenarioFaults(o Options) ScenarioFaultsResult {
	cond := phy.Condition{
		Name: "faults",
		WiFi: phy.PathProfile{DownMbps: 20, UpMbps: 12, RTTms: 30, QueuePkts: 150},
		LTE:  phy.PathProfile{DownMbps: 12, UpMbps: 6, RTTms: 60, QueuePkts: 250},
	}
	cfgs := []core.Config{
		{Transport: core.TCP, Iface: "wifi"},
		{Transport: core.TCP, Iface: "lte"},
		{Transport: core.MPTCP, Primary: "wifi", CC: mptcp.Coupled, WatchdogRTOs: 4},
		{Transport: core.MPTCP, Primary: "wifi", CC: mptcp.Coupled, Mode: mptcp.Backup,
			BackupIfaces: []string{"lte"}, WatchdogRTOs: 4},
	}
	profiles := scenarioFaultProfiles()
	res := ScenarioFaultsResult{}
	for _, p := range profiles {
		res.Profiles = append(res.Profiles, p.name)
	}
	for _, c := range cfgs {
		label := c.Name()
		if c.Mode == mptcp.Backup {
			label += "+backup"
		}
		res.Configs = append(res.Configs, label)
	}
	const size = 16 << 20
	grid := engine.Grid(o, len(profiles), len(cfgs), func(pi, ci int) float64 {
		sess := core.NewSession(seedFor(o.BaseSeed(), 41, pi, ci), cond)
		sess.Horizon = 60 * time.Second
		if len(profiles[pi].sched.Episodes) > 0 {
			if _, err := profiles[pi].sched.Attach(sess.Sim, sess.Host); err != nil {
				panic(err)
			}
		}
		return sess.RunMbps(cfgs[ci], core.Download, size)
	})
	for pi := range profiles {
		res.Mbps = append(res.Mbps, grid[pi*len(cfgs):(pi+1)*len(cfgs)])
	}
	return res
}

// String renders the grid; a dash marks a transfer that never finished
// (the fault outlived the transport's ability to recover).
func (r ScenarioFaultsResult) String() string {
	out := "16 MB downloads through deterministic fault schedules (Mbit/s; - = did not complete)\n"
	header := append([]string{"fault"}, r.Configs...)
	var rows [][]string
	for pi, p := range r.Profiles {
		row := []string{p}
		for _, m := range r.Mbps[pi] {
			if m == 0 {
				row = append(row, "-")
			} else {
				row = append(row, fmt.Sprintf("%.2f", m))
			}
		}
		rows = append(rows, row)
	}
	out += table(header, rows)
	return out
}
