package experiments

import (
	"fmt"
	"strings"
	"time"

	"multinet/internal/capture"
	"multinet/internal/core"
	"multinet/internal/dataset"
	"multinet/internal/mptcp"
	"multinet/internal/netem"
	"multinet/internal/phy"
	"multinet/internal/simnet"
	"multinet/internal/stats"
)

// Table2Result is the 20-location table.
type Table2Result struct{ Locations []phy.Location }

// Table2 returns the measurement-site table (paper Table 2) together
// with the calibrated radio profiles used throughout Section 3.
func Table2(Options) Table2Result { return Table2Result{Locations: phy.Locations} }

// String renders the table with the calibration columns appended.
func (r Table2Result) String() string {
	rows := make([][]string, 0, len(r.Locations))
	for _, l := range r.Locations {
		rows = append(rows, []string{
			fmt.Sprintf("%d", l.ID), l.City, l.Desc,
			fmt.Sprintf("%.1f/%.1f", l.WiFi.DownMbps, l.WiFi.UpMbps),
			fmt.Sprintf("%.1f/%.1f", l.LTE.DownMbps, l.LTE.UpMbps),
			fmt.Sprintf("%.0f", l.WiFi.RTTms),
			fmt.Sprintf("%.0f", l.LTE.RTTms),
		})
	}
	return "Table 2: MPTCP measurement locations (with calibrated profiles)\n" +
		table([]string{"ID", "City", "Description", "WiFi D/U Mbps", "LTE D/U Mbps", "WiFi RTT", "LTE RTT"}, rows)
}

// standardConfigs returns the six Section 3 transfer configurations in
// the paper's legend order.
func standardConfigs() []core.Config {
	return []core.Config{
		{Transport: core.TCP, Iface: "lte"},
		{Transport: core.TCP, Iface: "wifi"},
		{Transport: core.MPTCP, Primary: "lte", CC: mptcp.Decoupled},
		{Transport: core.MPTCP, Primary: "wifi", CC: mptcp.Decoupled},
		{Transport: core.MPTCP, Primary: "lte", CC: mptcp.Coupled},
		{Transport: core.MPTCP, Primary: "wifi", CC: mptcp.Coupled},
	}
}

// measureMbps runs trials sequential fresh-session downloads and
// returns the mean throughput.
func measureMbps(seed int64, cond phy.Condition, cfg core.Config, dir core.Direction, size, trials int) float64 {
	sum, n := 0.0, 0
	for t := 0; t < trials; t++ {
		s := core.NewSession(seedFor(seed, t), cond)
		if m := s.RunMbps(cfg, dir, size); m > 0 {
			sum += m
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Figure6Result compares the 20-location single-path TCP measurements
// against the crowd-sourced campaign distribution.
type Figure6Result struct {
	AppUp, AppDown             CDFSeries
	TwentyUp, TwentyDown       CDFSeries
	MedianGapUp, MedianGapDown float64 // |median difference| in Mbit/s
}

// Figure6 measures 1 MB TCP transfers (both networks, both directions)
// at each location and compares the difference CDF with Figure 3's.
func Figure6(o Options) Figure6Result {
	camp := dataset.Generate(simnet.New(o.seed()))
	appUp, appDown := camp.DiffCDFs()

	var up, down []float64
	trials := o.trials(2)
	n := o.locations(len(phy.Locations))
	for i := 0; i < n; i++ {
		loc := phy.Locations[i]
		for t := 0; t < trials; t++ {
			s := core.NewSession(seedFor(o.seed(), loc.ID, t), loc.Condition())
			wifiDown := s.RunMbps(core.Config{Transport: core.TCP, Iface: "wifi"}, core.Download, 1<<20)
			wifiUp := s.RunMbps(core.Config{Transport: core.TCP, Iface: "wifi"}, core.Upload, 1<<20)
			lteDown := s.RunMbps(core.Config{Transport: core.TCP, Iface: "lte"}, core.Download, 1<<20)
			lteUp := s.RunMbps(core.Config{Transport: core.TCP, Iface: "lte"}, core.Upload, 1<<20)
			if wifiDown > 0 && lteDown > 0 {
				down = append(down, wifiDown-lteDown)
			}
			if wifiUp > 0 && lteUp > 0 {
				up = append(up, wifiUp-lteUp)
			}
		}
	}
	upCDF, downCDF := stats.NewECDF(up), stats.NewECDF(down)
	abs := func(x float64) float64 {
		if x < 0 {
			return -x
		}
		return x
	}
	return Figure6Result{
		AppUp:         sampleCDF(appUp, "App Data uplink", 30),
		AppDown:       sampleCDF(appDown, "App Data downlink", 30),
		TwentyUp:      sampleCDF(upCDF, "20-Location uplink", 30),
		TwentyDown:    sampleCDF(downCDF, "20-Location downlink", 30),
		MedianGapUp:   abs(upCDF.Median() - appUp.Median()),
		MedianGapDown: abs(downCDF.Median() - appDown.Median()),
	}
}

// String renders the comparison.
func (r Figure6Result) String() string {
	return fmt.Sprintf("Figure 6: 20-location TCP CDFs vs campaign CDFs\n"+
		"median gap: uplink %.2f Mbit/s, downlink %.2f Mbit/s (paper: curves are close)\n",
		r.MedianGapUp, r.MedianGapDown) +
		renderCDF(r.AppUp, "%8.2f") + renderCDF(r.TwentyUp, "%8.2f") +
		renderCDF(r.AppDown, "%8.2f") + renderCDF(r.TwentyDown, "%8.2f")
}

// Figure7Series is one config's throughput-vs-flow-size curve.
type Figure7Series struct {
	Config string
	// KB are the flow sizes; Mbps the mean measured throughputs.
	KB   []int
	Mbps []float64
}

// Figure7Result holds both representative locations' curves.
type Figure7Result struct {
	LocationA int // large disparity: MPTCP worse everywhere (Fig. 7a)
	LocationB int // comparable paths: MPTCP wins at large sizes (7b)
	SeriesA   []Figure7Series
	SeriesB   []Figure7Series
}

var figure7Sizes = []int{1, 10, 100, 1000} // KB, the paper's log x-axis

// Figure7 sweeps flow size for the six configurations at the two
// representative locations.
func Figure7(o Options) Figure7Result {
	run := func(loc phy.Location) []Figure7Series {
		var out []Figure7Series
		for ci, cfg := range standardConfigs() {
			s := Figure7Series{Config: cfg.Name()}
			for _, kb := range figure7Sizes {
				m := measureMbps(seedFor(o.seed(), loc.ID, ci, kb), loc.Condition(),
					cfg, core.Download, kb<<10, o.trials(3))
				s.KB = append(s.KB, kb)
				s.Mbps = append(s.Mbps, m)
			}
			out = append(out, s)
		}
		return out
	}
	return Figure7Result{
		LocationA: phy.LocLTEMuchBetter.ID,
		LocationB: phy.LocWiFiBetter.ID,
		SeriesA:   run(phy.LocLTEMuchBetter),
		SeriesB:   run(phy.LocWiFiBetter),
	}
}

// String renders both panels.
func (r Figure7Result) String() string {
	panel := func(name string, loc int, series []Figure7Series) string {
		header := []string{"Config \\ KB"}
		for _, kb := range figure7Sizes {
			header = append(header, fmt.Sprintf("%d", kb))
		}
		var rows [][]string
		for _, s := range series {
			row := []string{s.Config}
			for _, m := range s.Mbps {
				row = append(row, fmt.Sprintf("%.2f", m))
			}
			rows = append(rows, row)
		}
		return fmt.Sprintf("Figure 7%s (location %d): throughput (Mbit/s) vs flow size\n", name, loc) +
			table(header, rows)
	}
	return panel("a", r.LocationA, r.SeriesA) + panel("b", r.LocationB, r.SeriesB)
}

// Figure8Result holds the primary-subflow sensitivity CDFs.
type Figure8Result struct {
	// MedianPct maps flow size label to the median relative difference
	// in percent (paper: 10KB 60%, 100KB 49%, 1MB 28%).
	MedianPct map[string]float64
	CDFs      []CDFSeries
}

var figure8Sizes = []struct {
	label string
	bytes int
}{
	{"10KB", 10 << 10},
	{"100KB", 100 << 10},
	{"1MB", 1 << 20},
}

// Figure8 measures |MPTCP_LTE - MPTCP_WiFi| / MPTCP_WiFi with
// decoupled congestion control across locations and flow sizes.
func Figure8(o Options) Figure8Result {
	res := Figure8Result{MedianPct: map[string]float64{}}
	n := o.locations(len(phy.Locations))
	trials := o.trials(2)
	for _, sz := range figure8Sizes {
		var rel []float64
		for i := 0; i < n; i++ {
			loc := phy.Locations[i]
			for t := 0; t < trials; t++ {
				seed := seedFor(o.seed(), loc.ID, sz.bytes, t)
				lte := measureMbps(seed, loc.Condition(),
					core.Config{Transport: core.MPTCP, Primary: "lte"}, core.Download, sz.bytes, 1)
				wifi := measureMbps(seed+1, loc.Condition(),
					core.Config{Transport: core.MPTCP, Primary: "wifi"}, core.Download, sz.bytes, 1)
				if lte <= 0 || wifi <= 0 {
					continue
				}
				d := (lte - wifi) / wifi
				if d < 0 {
					d = -d
				}
				rel = append(rel, d*100)
			}
		}
		cdf := stats.NewECDF(rel)
		res.MedianPct[sz.label] = cdf.Median()
		res.CDFs = append(res.CDFs, sampleCDF(cdf, sz.label+" relative difference (%)", 25))
	}
	return res
}

// String renders medians plus CDFs.
func (r Figure8Result) String() string {
	s := fmt.Sprintf("Figure 8: CDF of relative difference MPTCP_LTE vs MPTCP_WiFi (decoupled)\n"+
		"medians: 10KB %.0f%% (paper 60%%), 100KB %.0f%% (paper 49%%), 1MB %.0f%% (paper 28%%)\n",
		r.MedianPct["10KB"], r.MedianPct["100KB"], r.MedianPct["1MB"])
	for _, c := range r.CDFs {
		s += renderCDF(c, "%8.1f")
	}
	return s
}

// EvolutionResult holds a Fig. 9/10 panel: average throughput over
// time for the MPTCP connection and each subflow.
type EvolutionResult struct {
	Location int
	Primary  string
	MPTCP    []stats.Point
	WiFi     []stats.Point
	LTE      []stats.Point
	// FinalMbps is the 2-second average MPTCP throughput.
	FinalMbps float64
}

// evolution runs one 2-second MPTCP download with a sniffer attached
// and extracts the cumulative-average throughput curves.
func evolution(seed int64, loc phy.Location, primary string) EvolutionResult {
	s := core.NewSession(seed, loc.Condition())
	sn := capture.NewSniffer(s.Sim)
	for _, ifc := range s.Host.Ifaces() {
		sn.Attach(ifc)
	}
	s.Horizon = 30 * time.Second
	// Large enough not to finish within the 2 s window.
	s.Run(core.Config{Transport: core.MPTCP, Primary: primary}, core.Download, 8<<20)

	const window = 2 * time.Second
	const step = 100 * time.Millisecond
	down := func(iface string) []capture.Record {
		return sn.Filter(func(r *capture.Record) bool {
			return r.Dir == netem.Down && r.Event == capture.Recv &&
				(iface == "" || r.Iface == iface)
		})
	}
	res := EvolutionResult{Location: loc.ID, Primary: primary}
	res.MPTCP = capture.ThroughputOverTime(down(""), 0, window, step)
	res.WiFi = capture.ThroughputOverTime(down("wifi"), 0, window, step)
	res.LTE = capture.ThroughputOverTime(down("lte"), 0, window, step)
	if n := len(res.MPTCP); n > 0 {
		res.FinalMbps = res.MPTCP[n-1].Y
	}
	return res
}

// Figure9Result pairs the two panels of Fig. 9 (LTE-better location).
type Figure9Result struct{ WiFiPrimary, LTEPrimary EvolutionResult }

// Figure9 runs the throughput-evolution experiment at the LTE-better
// location with both primary choices.
func Figure9(o Options) Figure9Result {
	loc := phy.LocLTEMuchBetter
	return Figure9Result{
		WiFiPrimary: evolution(seedFor(o.seed(), 9, 1), loc, "wifi"),
		LTEPrimary:  evolution(seedFor(o.seed(), 9, 2), loc, "lte"),
	}
}

// Figure10Result pairs the two panels of Fig. 10 (WiFi-better site).
type Figure10Result struct{ WiFiPrimary, LTEPrimary EvolutionResult }

// Figure10 is Figure9 at the WiFi-better location.
func Figure10(o Options) Figure10Result {
	loc := phy.LocWiFiBetter
	return Figure10Result{
		WiFiPrimary: evolution(seedFor(o.seed(), 10, 1), loc, "wifi"),
		LTEPrimary:  evolution(seedFor(o.seed(), 10, 2), loc, "lte"),
	}
}

func renderEvolution(title string, e EvolutionResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (location %d, %s primary): avg tput to t, final %.2f Mbit/s\n",
		title, e.Location, e.Primary, e.FinalMbps)
	b.WriteString("  t(s)   MPTCP   WiFi    LTE\n")
	for i := range e.MPTCP {
		w, l := 0.0, 0.0
		if i < len(e.WiFi) {
			w = e.WiFi[i].Y
		}
		if i < len(e.LTE) {
			l = e.LTE[i].Y
		}
		fmt.Fprintf(&b, "  %4.1f  %6.2f  %6.2f  %6.2f\n", e.MPTCP[i].X, e.MPTCP[i].Y, w, l)
	}
	return b.String()
}

// String renders both panels.
func (r Figure9Result) String() string {
	return renderEvolution("Figure 9a", r.WiFiPrimary) + renderEvolution("Figure 9b", r.LTEPrimary)
}

// String renders both panels.
func (r Figure10Result) String() string {
	return renderEvolution("Figure 10a", r.WiFiPrimary) + renderEvolution("Figure 10b", r.LTEPrimary)
}

// FlowSizeSweepResult holds a Fig. 11/12 panel pair: absolute
// throughput and the LTE/WiFi-primary ratio versus flow size.
type FlowSizeSweepResult struct {
	Location int
	KB       []int
	LTEMbps  []float64
	WiFiMbps []float64
	Ratio    []float64
}

func flowSizeSweep(o Options, loc phy.Location, tag int) FlowSizeSweepResult {
	res := FlowSizeSweepResult{Location: loc.ID}
	trials := o.trials(3)
	for kb := 100; kb <= 1000; kb += 150 {
		lte := measureMbps(seedFor(o.seed(), tag, loc.ID, kb, 0), loc.Condition(),
			core.Config{Transport: core.MPTCP, Primary: "lte"}, core.Download, kb<<10, trials)
		wifi := measureMbps(seedFor(o.seed(), tag, loc.ID, kb, 1), loc.Condition(),
			core.Config{Transport: core.MPTCP, Primary: "wifi"}, core.Download, kb<<10, trials)
		res.KB = append(res.KB, kb)
		res.LTEMbps = append(res.LTEMbps, lte)
		res.WiFiMbps = append(res.WiFiMbps, wifi)
		if wifi > 0 {
			res.Ratio = append(res.Ratio, lte/wifi)
		} else {
			res.Ratio = append(res.Ratio, 0)
		}
	}
	return res
}

// Figure11 sweeps flow size at the LTE-better location.
func Figure11(o Options) FlowSizeSweepResult { return flowSizeSweep(o, phy.LocLTEMuchBetter, 11) }

// Figure12 sweeps flow size at the WiFi-better location.
func Figure12(o Options) FlowSizeSweepResult { return flowSizeSweep(o, phy.LocWiFiBetter, 12) }

// String renders the sweep.
func (r FlowSizeSweepResult) String() string {
	var rows [][]string
	for i, kb := range r.KB {
		rows = append(rows, []string{
			fmt.Sprintf("%d", kb),
			fmt.Sprintf("%.2f", r.LTEMbps[i]),
			fmt.Sprintf("%.2f", r.WiFiMbps[i]),
			fmt.Sprintf("%.2f", r.Ratio[i]),
		})
	}
	return fmt.Sprintf("Figures 11/12 (location %d): MPTCP throughput vs flow size\n", r.Location) +
		table([]string{"KB", "MPTCP(LTE) Mbps", "MPTCP(WiFi) Mbps", "ratio LTE/WiFi"}, rows)
}

// CouplingResult holds the Fig. 13 + Fig. 14 data: relative difference
// CDFs for the congestion-control choice ("CC") and the
// primary-network choice ("Network"), per flow size.
type CouplingResult struct {
	// CCMedianPct / NetworkMedianPct per size label
	// (paper CC: 16/16/34; Network: 60/43/25).
	CCMedianPct      map[string]float64
	NetworkMedianPct map[string]float64
	CCCDFs           []CDFSeries
	NetworkCDFs      []CDFSeries
}

// Coupling measures the four MPTCP configurations at the paper's 7
// coupling-study sites, both directions, and computes the paired
// relative differences of Section 3.5.
func Coupling(o Options) CouplingResult {
	res := CouplingResult{
		CCMedianPct:      map[string]float64{},
		NetworkMedianPct: map[string]float64{},
	}
	locIDs := phy.CouplingStudyLocations
	if n := o.locations(len(locIDs)); n < len(locIDs) {
		locIDs = locIDs[:n]
	}
	trials := o.trials(3)
	reldiff := func(a, b float64) (float64, bool) {
		if a <= 0 || b <= 0 {
			return 0, false
		}
		d := (a - b) / b
		if d < 0 {
			d = -d
		}
		return d * 100, true
	}
	for _, sz := range figure8Sizes {
		var ccSamples, netSamples []float64
		for _, id := range locIDs {
			loc := phy.LocationByID(id)
			for _, dir := range []core.Direction{core.Download, core.Upload} {
				for t := 0; t < trials; t++ {
					seed := seedFor(o.seed(), 1314, id, sz.bytes, int(dir), t)
					m := map[string]float64{}
					for ci, cfg := range []core.Config{
						{Transport: core.MPTCP, Primary: "lte", CC: mptcp.Coupled},
						{Transport: core.MPTCP, Primary: "lte", CC: mptcp.Decoupled},
						{Transport: core.MPTCP, Primary: "wifi", CC: mptcp.Coupled},
						{Transport: core.MPTCP, Primary: "wifi", CC: mptcp.Decoupled},
					} {
						s := core.NewSession(seedFor(seed, ci), loc.Condition())
						m[cfg.Primary+"/"+cfg.CC.String()] = s.RunMbps(cfg, dir, sz.bytes)
					}
					// rcwnd: same primary, different CC.
					if d, ok := reldiff(m["lte/decoupled"], m["lte/coupled"]); ok {
						ccSamples = append(ccSamples, d)
					}
					if d, ok := reldiff(m["wifi/decoupled"], m["wifi/coupled"]); ok {
						ccSamples = append(ccSamples, d)
					}
					// rnetwork: same CC, different primary.
					if d, ok := reldiff(m["lte/coupled"], m["wifi/coupled"]); ok {
						netSamples = append(netSamples, d)
					}
					if d, ok := reldiff(m["lte/decoupled"], m["wifi/decoupled"]); ok {
						netSamples = append(netSamples, d)
					}
				}
			}
		}
		cc, net := stats.NewECDF(ccSamples), stats.NewECDF(netSamples)
		res.CCMedianPct[sz.label] = cc.Median()
		res.NetworkMedianPct[sz.label] = net.Median()
		res.CCCDFs = append(res.CCCDFs, sampleCDF(cc, sz.label+" CC", 25))
		res.NetworkCDFs = append(res.NetworkCDFs, sampleCDF(net, sz.label+" Network", 25))
	}
	return res
}

// String renders the medians table plus CDF data.
func (r CouplingResult) String() string {
	var rows [][]string
	for _, sz := range figure8Sizes {
		rows = append(rows, []string{
			sz.label,
			fmt.Sprintf("%.0f%%", r.CCMedianPct[sz.label]),
			fmt.Sprintf("%.0f%%", r.NetworkMedianPct[sz.label]),
		})
	}
	s := "Figures 13/14: relative difference medians (paper CC: 16/16/34%, Network: 60/43/25%)\n" +
		table([]string{"Flow size", "CC median", "Network median"}, rows)
	for i := range r.CCCDFs {
		s += renderCDF(r.CCCDFs[i], "%8.1f") + renderCDF(r.NetworkCDFs[i], "%8.1f")
	}
	return s
}
