package experiments

import (
	"fmt"
	"strings"
	"time"

	"multinet/internal/capture"
	"multinet/internal/core"
	"multinet/internal/dataset"
	"multinet/internal/experiments/engine"
	"multinet/internal/mptcp"
	"multinet/internal/netem"
	"multinet/internal/phy"
	"multinet/internal/simnet"
	"multinet/internal/stats"
)

func init() {
	register("table2", "Table 2", "3.2", 4, func(o Options) fmt.Stringer { return Table2(o) })
	register("figure6", "Figure 6", "3.2", 5, func(o Options) fmt.Stringer { return Figure6(o) })
	register("figure7", "Figure 7", "3.3", 6, func(o Options) fmt.Stringer { return Figure7(o) })
	register("figure8", "Figure 8", "3.4", 7, func(o Options) fmt.Stringer { return Figure8(o) })
	register("figure9", "Figure 9", "3.4", 8, func(o Options) fmt.Stringer { return Figure9(o) })
	register("figure10", "Figure 10", "3.4", 9, func(o Options) fmt.Stringer { return Figure10(o) })
	register("figure11", "Figure 11", "3.4", 10, func(o Options) fmt.Stringer { return Figure11(o) })
	register("figure12", "Figure 12", "3.4", 11, func(o Options) fmt.Stringer { return Figure12(o) })
	register("coupling", "Figures 13/14", "3.5", 12, func(o Options) fmt.Stringer { return Coupling(o) })
}

// Table2Result is the 20-location table.
type Table2Result struct{ Locations []phy.Location }

// Table2 returns the measurement-site table (paper Table 2) together
// with the calibrated radio profiles used throughout Section 3.
func Table2(Options) Table2Result { return Table2Result{Locations: phy.Locations} }

// String renders the table with the calibration columns appended.
func (r Table2Result) String() string {
	rows := make([][]string, 0, len(r.Locations))
	for _, l := range r.Locations {
		rows = append(rows, []string{
			fmt.Sprintf("%d", l.ID), l.City, l.Desc,
			fmt.Sprintf("%.1f/%.1f", l.WiFi.DownMbps, l.WiFi.UpMbps),
			fmt.Sprintf("%.1f/%.1f", l.LTE.DownMbps, l.LTE.UpMbps),
			fmt.Sprintf("%.0f", l.WiFi.RTTms),
			fmt.Sprintf("%.0f", l.LTE.RTTms),
		})
	}
	return "Table 2: MPTCP measurement locations (with calibrated profiles)\n" +
		table([]string{"ID", "City", "Description", "WiFi D/U Mbps", "LTE D/U Mbps", "WiFi RTT", "LTE RTT"}, rows)
}

// standardConfigs returns the six Section 3 transfer configurations in
// the paper's legend order.
func standardConfigs() []core.Config {
	return []core.Config{
		{Transport: core.TCP, Iface: "lte"},
		{Transport: core.TCP, Iface: "wifi"},
		{Transport: core.MPTCP, Primary: "lte", CC: mptcp.Decoupled},
		{Transport: core.MPTCP, Primary: "wifi", CC: mptcp.Decoupled},
		{Transport: core.MPTCP, Primary: "lte", CC: mptcp.Coupled},
		{Transport: core.MPTCP, Primary: "wifi", CC: mptcp.Coupled},
	}
}

// measureMbps fans trials fresh-session downloads out over o's sweep
// pool and returns the mean throughput. Callers already inside a
// parallel sweep pass o.Serial() so worker counts do not multiply.
func measureMbps(o Options, seed int64, cond phy.Condition, cfg core.Config, dir core.Direction, size, trials int) float64 {
	return engine.RunTrials(o, seed, trials, func(s int64) float64 {
		return core.NewSession(s, cond).RunMbps(cfg, dir, size)
	})
}

// relDiffGrid sweeps an n×trials grid where each cell measures a pair
// of throughputs, and collects |a-b|/b as a percentage for the cells
// where both measurements are positive, in row-major (historical
// nesting) order. Shared by the Fig. 8 sweep and the late-join
// ablation.
func relDiffGrid(o Options, n, trials int, measure func(i, t int) (a, b float64)) []float64 {
	type cell struct {
		rel float64
		ok  bool
	}
	cells := engine.Grid(o, n, trials, func(i, t int) cell {
		a, b := measure(i, t)
		if a <= 0 || b <= 0 {
			return cell{}
		}
		d := (a - b) / b
		if d < 0 {
			d = -d
		}
		return cell{rel: d * 100, ok: true}
	})
	var rel []float64
	for _, c := range cells {
		if c.ok {
			rel = append(rel, c.rel)
		}
	}
	return rel
}

// Figure6Result compares the 20-location single-path TCP measurements
// against the crowd-sourced campaign distribution.
type Figure6Result struct {
	AppUp, AppDown             CDFSeries
	TwentyUp, TwentyDown       CDFSeries
	MedianGapUp, MedianGapDown float64 // |median difference| in Mbit/s
}

// Figure6 measures 1 MB TCP transfers (both networks, both directions)
// at each location and compares the difference CDF with Figure 3's.
func Figure6(o Options) Figure6Result {
	camp := dataset.Generate(simnet.New(o.BaseSeed()))
	appUp, appDown := camp.DiffCDFs()

	trials := o.TrialCount(2)
	n := o.LocationCount(len(phy.Locations))
	type cell struct {
		up, down     float64
		okUp, okDown bool
	}
	cells := engine.Grid(o, n, trials, func(i, t int) cell {
		loc := phy.Locations[i]
		s := core.NewSession(seedFor(o.BaseSeed(), loc.ID, t), loc.Condition())
		wifiDown := s.RunMbps(core.Config{Transport: core.TCP, Iface: "wifi"}, core.Download, 1<<20)
		wifiUp := s.RunMbps(core.Config{Transport: core.TCP, Iface: "wifi"}, core.Upload, 1<<20)
		lteDown := s.RunMbps(core.Config{Transport: core.TCP, Iface: "lte"}, core.Download, 1<<20)
		lteUp := s.RunMbps(core.Config{Transport: core.TCP, Iface: "lte"}, core.Upload, 1<<20)
		return cell{
			up: wifiUp - lteUp, okUp: wifiUp > 0 && lteUp > 0,
			down: wifiDown - lteDown, okDown: wifiDown > 0 && lteDown > 0,
		}
	})
	var up, down []float64
	for _, c := range cells {
		if c.okDown {
			down = append(down, c.down)
		}
		if c.okUp {
			up = append(up, c.up)
		}
	}
	upCDF, downCDF := stats.NewECDF(up), stats.NewECDF(down)
	abs := func(x float64) float64 {
		if x < 0 {
			return -x
		}
		return x
	}
	return Figure6Result{
		AppUp:         sampleCDF(appUp, "App Data uplink", 30),
		AppDown:       sampleCDF(appDown, "App Data downlink", 30),
		TwentyUp:      sampleCDF(upCDF, "20-Location uplink", 30),
		TwentyDown:    sampleCDF(downCDF, "20-Location downlink", 30),
		MedianGapUp:   abs(upCDF.Median() - appUp.Median()),
		MedianGapDown: abs(downCDF.Median() - appDown.Median()),
	}
}

// String renders the comparison.
func (r Figure6Result) String() string {
	return fmt.Sprintf("Figure 6: 20-location TCP CDFs vs campaign CDFs\n"+
		"median gap: uplink %.2f Mbit/s, downlink %.2f Mbit/s (paper: curves are close)\n",
		r.MedianGapUp, r.MedianGapDown) +
		renderCDF(r.AppUp, "%8.2f") + renderCDF(r.TwentyUp, "%8.2f") +
		renderCDF(r.AppDown, "%8.2f") + renderCDF(r.TwentyDown, "%8.2f")
}

// Figure7Series is one config's throughput-vs-flow-size curve.
type Figure7Series struct {
	Config string
	// KB are the flow sizes; Mbps the mean measured throughputs.
	KB   []int
	Mbps []float64
}

// Figure7Result holds both representative locations' curves.
type Figure7Result struct {
	LocationA int // large disparity: MPTCP worse everywhere (Fig. 7a)
	LocationB int // comparable paths: MPTCP wins at large sizes (7b)
	SeriesA   []Figure7Series
	SeriesB   []Figure7Series
}

var figure7Sizes = []int{1, 10, 100, 1000} // KB, the paper's log x-axis

// Figure7 sweeps flow size for the six configurations at the two
// representative locations.
func Figure7(o Options) Figure7Result {
	run := func(loc phy.Location) []Figure7Series {
		cfgs := standardConfigs()
		mbps := engine.Grid(o, len(cfgs), len(figure7Sizes), func(ci, ki int) float64 {
			kb := figure7Sizes[ki]
			return measureMbps(o.Serial(), seedFor(o.BaseSeed(), loc.ID, ci, kb), loc.Condition(),
				cfgs[ci], core.Download, kb<<10, o.TrialCount(3))
		})
		out := make([]Figure7Series, 0, len(cfgs))
		for ci, cfg := range cfgs {
			s := Figure7Series{Config: cfg.Name()}
			for ki, kb := range figure7Sizes {
				s.KB = append(s.KB, kb)
				s.Mbps = append(s.Mbps, mbps[ci*len(figure7Sizes)+ki])
			}
			out = append(out, s)
		}
		return out
	}
	return Figure7Result{
		LocationA: phy.LocLTEMuchBetter.ID,
		LocationB: phy.LocWiFiBetter.ID,
		SeriesA:   run(phy.LocLTEMuchBetter),
		SeriesB:   run(phy.LocWiFiBetter),
	}
}

// String renders both panels.
func (r Figure7Result) String() string {
	panel := func(name string, loc int, series []Figure7Series) string {
		header := []string{"Config \\ KB"}
		for _, kb := range figure7Sizes {
			header = append(header, fmt.Sprintf("%d", kb))
		}
		var rows [][]string
		for _, s := range series {
			row := []string{s.Config}
			for _, m := range s.Mbps {
				row = append(row, fmt.Sprintf("%.2f", m))
			}
			rows = append(rows, row)
		}
		return fmt.Sprintf("Figure 7%s (location %d): throughput (Mbit/s) vs flow size\n", name, loc) +
			table(header, rows)
	}
	return panel("a", r.LocationA, r.SeriesA) + panel("b", r.LocationB, r.SeriesB)
}

// Figure8Result holds the primary-subflow sensitivity CDFs.
type Figure8Result struct {
	// MedianPct maps flow size label to the median relative difference
	// in percent (paper: 10KB 60%, 100KB 49%, 1MB 28%).
	MedianPct map[string]float64
	CDFs      []CDFSeries
}

var figure8Sizes = []struct {
	label string
	bytes int
}{
	{"10KB", 10 << 10},
	{"100KB", 100 << 10},
	{"1MB", 1 << 20},
}

// Figure8 measures |MPTCP_LTE - MPTCP_WiFi| / MPTCP_WiFi with
// decoupled congestion control across locations and flow sizes.
func Figure8(o Options) Figure8Result {
	res := Figure8Result{MedianPct: map[string]float64{}}
	n := o.LocationCount(len(phy.Locations))
	trials := o.TrialCount(2)
	for _, sz := range figure8Sizes {
		rel := relDiffGrid(o, n, trials, func(i, t int) (float64, float64) {
			loc := phy.Locations[i]
			seed := seedFor(o.BaseSeed(), loc.ID, sz.bytes, t)
			lte := measureMbps(o.Serial(), seed, loc.Condition(),
				core.Config{Transport: core.MPTCP, Primary: "lte"}, core.Download, sz.bytes, 1)
			wifi := measureMbps(o.Serial(), seed+1, loc.Condition(),
				core.Config{Transport: core.MPTCP, Primary: "wifi"}, core.Download, sz.bytes, 1)
			return lte, wifi
		})
		cdf := stats.NewECDF(rel)
		res.MedianPct[sz.label] = cdf.Median()
		res.CDFs = append(res.CDFs, sampleCDF(cdf, sz.label+" relative difference (%)", 25))
	}
	return res
}

// String renders medians plus CDFs.
func (r Figure8Result) String() string {
	s := fmt.Sprintf("Figure 8: CDF of relative difference MPTCP_LTE vs MPTCP_WiFi (decoupled)\n"+
		"medians: 10KB %.0f%% (paper 60%%), 100KB %.0f%% (paper 49%%), 1MB %.0f%% (paper 28%%)\n",
		r.MedianPct["10KB"], r.MedianPct["100KB"], r.MedianPct["1MB"])
	for _, c := range r.CDFs {
		s += renderCDF(c, "%8.1f")
	}
	return s
}

// EvolutionResult holds a Fig. 9/10 panel: average throughput over
// time for the MPTCP connection and each subflow.
type EvolutionResult struct {
	Location int
	Primary  string
	MPTCP    []stats.Point
	WiFi     []stats.Point
	LTE      []stats.Point
	// FinalMbps is the 2-second average MPTCP throughput.
	FinalMbps float64
}

// evolution runs one 2-second MPTCP download with a sniffer attached
// and extracts the cumulative-average throughput curves.
func evolution(seed int64, loc phy.Location, primary string) EvolutionResult {
	s := core.NewSession(seed, loc.Condition())
	sn := capture.NewSniffer(s.Sim)
	for _, ifc := range s.Host.Ifaces() {
		sn.Attach(ifc)
	}
	s.Horizon = 30 * time.Second
	// Large enough not to finish within the 2 s window.
	s.Run(core.Config{Transport: core.MPTCP, Primary: primary}, core.Download, 8<<20)

	const window = 2 * time.Second
	const step = 100 * time.Millisecond
	down := func(iface string) []capture.Record {
		return sn.Filter(func(r *capture.Record) bool {
			return r.Dir == netem.Down && r.Event == capture.Recv &&
				(iface == "" || r.Iface == iface)
		})
	}
	res := EvolutionResult{Location: loc.ID, Primary: primary}
	res.MPTCP = capture.ThroughputOverTime(down(""), 0, window, step)
	res.WiFi = capture.ThroughputOverTime(down("wifi"), 0, window, step)
	res.LTE = capture.ThroughputOverTime(down("lte"), 0, window, step)
	if n := len(res.MPTCP); n > 0 {
		res.FinalMbps = res.MPTCP[n-1].Y
	}
	return res
}

// Figure9Result pairs the two panels of Fig. 9 (LTE-better location).
type Figure9Result struct{ WiFiPrimary, LTEPrimary EvolutionResult }

// Figure9 runs the throughput-evolution experiment at the LTE-better
// location with both primary choices.
func Figure9(o Options) Figure9Result {
	ev := evolutionPair(o, phy.LocLTEMuchBetter, 9)
	return Figure9Result{WiFiPrimary: ev[0], LTEPrimary: ev[1]}
}

// evolutionPair runs the WiFi-primary and LTE-primary evolutions of a
// Fig. 9/10 panel pair concurrently.
func evolutionPair(o Options, loc phy.Location, tag int) []EvolutionResult {
	primaries := []string{"wifi", "lte"}
	return engine.Sweep(o, len(primaries), func(i int) EvolutionResult {
		return evolution(seedFor(o.BaseSeed(), tag, i+1), loc, primaries[i])
	})
}

// Figure10Result pairs the two panels of Fig. 10 (WiFi-better site).
type Figure10Result struct{ WiFiPrimary, LTEPrimary EvolutionResult }

// Figure10 is Figure9 at the WiFi-better location.
func Figure10(o Options) Figure10Result {
	ev := evolutionPair(o, phy.LocWiFiBetter, 10)
	return Figure10Result{WiFiPrimary: ev[0], LTEPrimary: ev[1]}
}

func renderEvolution(title string, e EvolutionResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (location %d, %s primary): avg tput to t, final %.2f Mbit/s\n",
		title, e.Location, e.Primary, e.FinalMbps)
	b.WriteString("  t(s)   MPTCP   WiFi    LTE\n")
	for i := range e.MPTCP {
		w, l := 0.0, 0.0
		if i < len(e.WiFi) {
			w = e.WiFi[i].Y
		}
		if i < len(e.LTE) {
			l = e.LTE[i].Y
		}
		fmt.Fprintf(&b, "  %4.1f  %6.2f  %6.2f  %6.2f\n", e.MPTCP[i].X, e.MPTCP[i].Y, w, l)
	}
	return b.String()
}

// String renders both panels.
func (r Figure9Result) String() string {
	return renderEvolution("Figure 9a", r.WiFiPrimary) + renderEvolution("Figure 9b", r.LTEPrimary)
}

// String renders both panels.
func (r Figure10Result) String() string {
	return renderEvolution("Figure 10a", r.WiFiPrimary) + renderEvolution("Figure 10b", r.LTEPrimary)
}

// FlowSizeSweepResult holds a Fig. 11/12 panel pair: absolute
// throughput and the LTE/WiFi-primary ratio versus flow size.
type FlowSizeSweepResult struct {
	Location int
	KB       []int
	LTEMbps  []float64
	WiFiMbps []float64
	Ratio    []float64
}

func flowSizeSweep(o Options, loc phy.Location, tag int) FlowSizeSweepResult {
	res := FlowSizeSweepResult{Location: loc.ID}
	trials := o.TrialCount(3)
	var kbs []int
	for kb := 100; kb <= 1000; kb += 150 {
		kbs = append(kbs, kb)
	}
	type pair struct{ lte, wifi float64 }
	pairs := engine.Sweep(o, len(kbs), func(i int) pair {
		kb := kbs[i]
		return pair{
			lte: measureMbps(o.Serial(), seedFor(o.BaseSeed(), tag, loc.ID, kb, 0), loc.Condition(),
				core.Config{Transport: core.MPTCP, Primary: "lte"}, core.Download, kb<<10, trials),
			wifi: measureMbps(o.Serial(), seedFor(o.BaseSeed(), tag, loc.ID, kb, 1), loc.Condition(),
				core.Config{Transport: core.MPTCP, Primary: "wifi"}, core.Download, kb<<10, trials),
		}
	})
	for i, kb := range kbs {
		res.KB = append(res.KB, kb)
		res.LTEMbps = append(res.LTEMbps, pairs[i].lte)
		res.WiFiMbps = append(res.WiFiMbps, pairs[i].wifi)
		if pairs[i].wifi > 0 {
			res.Ratio = append(res.Ratio, pairs[i].lte/pairs[i].wifi)
		} else {
			res.Ratio = append(res.Ratio, 0)
		}
	}
	return res
}

// Figure11 sweeps flow size at the LTE-better location.
func Figure11(o Options) FlowSizeSweepResult { return flowSizeSweep(o, phy.LocLTEMuchBetter, 11) }

// Figure12 sweeps flow size at the WiFi-better location.
func Figure12(o Options) FlowSizeSweepResult { return flowSizeSweep(o, phy.LocWiFiBetter, 12) }

// String renders the sweep.
func (r FlowSizeSweepResult) String() string {
	var rows [][]string
	for i, kb := range r.KB {
		rows = append(rows, []string{
			fmt.Sprintf("%d", kb),
			fmt.Sprintf("%.2f", r.LTEMbps[i]),
			fmt.Sprintf("%.2f", r.WiFiMbps[i]),
			fmt.Sprintf("%.2f", r.Ratio[i]),
		})
	}
	return fmt.Sprintf("Figures 11/12 (location %d): MPTCP throughput vs flow size\n", r.Location) +
		table([]string{"KB", "MPTCP(LTE) Mbps", "MPTCP(WiFi) Mbps", "ratio LTE/WiFi"}, rows)
}

// CouplingResult holds the Fig. 13 + Fig. 14 data: relative difference
// CDFs for the congestion-control choice ("CC") and the
// primary-network choice ("Network"), per flow size.
type CouplingResult struct {
	// CCMedianPct / NetworkMedianPct per size label
	// (paper CC: 16/16/34; Network: 60/43/25).
	CCMedianPct      map[string]float64
	NetworkMedianPct map[string]float64
	CCCDFs           []CDFSeries
	NetworkCDFs      []CDFSeries
}

// Coupling measures the four MPTCP configurations at the paper's 7
// coupling-study sites, both directions, and computes the paired
// relative differences of Section 3.5.
func Coupling(o Options) CouplingResult {
	res := CouplingResult{
		CCMedianPct:      map[string]float64{},
		NetworkMedianPct: map[string]float64{},
	}
	locIDs := phy.CouplingStudyLocations
	if n := o.LocationCount(len(locIDs)); n < len(locIDs) {
		locIDs = locIDs[:n]
	}
	trials := o.TrialCount(3)
	dirs := []core.Direction{core.Download, core.Upload}
	reldiff := func(a, b float64) (float64, bool) {
		if a <= 0 || b <= 0 {
			return 0, false
		}
		d := (a - b) / b
		if d < 0 {
			d = -d
		}
		return d * 100, true
	}
	for _, sz := range figure8Sizes {
		// One sweep cell per (location, direction, trial), flattened with
		// the location index slowest so samples collect in the historical
		// nesting order.
		type cell struct{ cc, net []float64 }
		cells := engine.Sweep(o, len(locIDs)*len(dirs)*trials, func(k int) cell {
			id := locIDs[k/(len(dirs)*trials)]
			dir := dirs[k/trials%len(dirs)]
			t := k % trials
			loc := phy.LocationByID(id)
			seed := seedFor(o.BaseSeed(), 1314, id, sz.bytes, int(dir), t)
			m := map[string]float64{}
			for ci, cfg := range []core.Config{
				{Transport: core.MPTCP, Primary: "lte", CC: mptcp.Coupled},
				{Transport: core.MPTCP, Primary: "lte", CC: mptcp.Decoupled},
				{Transport: core.MPTCP, Primary: "wifi", CC: mptcp.Coupled},
				{Transport: core.MPTCP, Primary: "wifi", CC: mptcp.Decoupled},
			} {
				s := core.NewSession(seedFor(seed, ci), loc.Condition())
				m[cfg.Primary+"/"+cfg.CC.String()] = s.RunMbps(cfg, dir, sz.bytes)
			}
			var c cell
			// rcwnd: same primary, different CC.
			if d, ok := reldiff(m["lte/decoupled"], m["lte/coupled"]); ok {
				c.cc = append(c.cc, d)
			}
			if d, ok := reldiff(m["wifi/decoupled"], m["wifi/coupled"]); ok {
				c.cc = append(c.cc, d)
			}
			// rnetwork: same CC, different primary.
			if d, ok := reldiff(m["lte/coupled"], m["wifi/coupled"]); ok {
				c.net = append(c.net, d)
			}
			if d, ok := reldiff(m["lte/decoupled"], m["wifi/decoupled"]); ok {
				c.net = append(c.net, d)
			}
			return c
		})
		var ccSamples, netSamples []float64
		for _, c := range cells {
			ccSamples = append(ccSamples, c.cc...)
			netSamples = append(netSamples, c.net...)
		}
		cc, net := stats.NewECDF(ccSamples), stats.NewECDF(netSamples)
		res.CCMedianPct[sz.label] = cc.Median()
		res.NetworkMedianPct[sz.label] = net.Median()
		res.CCCDFs = append(res.CCCDFs, sampleCDF(cc, sz.label+" CC", 25))
		res.NetworkCDFs = append(res.NetworkCDFs, sampleCDF(net, sz.label+" Network", 25))
	}
	return res
}

// String renders the medians table plus CDF data.
func (r CouplingResult) String() string {
	var rows [][]string
	for _, sz := range figure8Sizes {
		rows = append(rows, []string{
			sz.label,
			fmt.Sprintf("%.0f%%", r.CCMedianPct[sz.label]),
			fmt.Sprintf("%.0f%%", r.NetworkMedianPct[sz.label]),
		})
	}
	s := "Figures 13/14: relative difference medians (paper CC: 16/16/34%, Network: 60/43/25%)\n" +
		table([]string{"Flow size", "CC median", "Network median"}, rows)
	for i := range r.CCCDFs {
		s += renderCDF(r.CCCDFs[i], "%8.1f") + renderCDF(r.NetworkCDFs[i], "%8.1f")
	}
	return s
}
