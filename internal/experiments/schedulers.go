package experiments

import (
	"fmt"
	"time"

	"multinet/internal/apps"
	"multinet/internal/core"
	"multinet/internal/experiments/engine"
	"multinet/internal/mptcp"
	"multinet/internal/oracle"
	"multinet/internal/phy"
	"multinet/internal/replay"
)

// scenario-schedulers sweeps path disparity × flow size × scheduler:
// the paper shows MPTCP's benefit hinges on which subflow carries
// which bytes (Figs. 15-21), and the pluggable mptcp.Scheduler layer
// makes the mitigations from related work expressible — redundant
// striping for latency-critical short flows and BLEST/ECF-style
// HoL-aware skipping of the slow path. The experiment measures every
// registered scheduler on comparable and disparate WiFi/LTE pairs,
// then replays the long-flow app and normalises one oracle per
// scheduler against the N-path single-path oracle from the PathSet
// layer (PR 2).
func init() {
	register("scenario-schedulers", "Scenario: schedulers", "scenario", 28,
		func(o Options) fmt.Stringer { return ScenarioSchedulers(o) })
}

// schedulerOrder fixes the presentation order: the Linux default
// first, then the ablation, then the two mitigation schedulers.
var schedulerOrder = []string{
	mptcp.SchedMinSRTT, mptcp.SchedRoundRobin, mptcp.SchedRedundant, mptcp.SchedHoLAware,
}

// ScenarioSchedulersResult holds the disparity×size×scheduler grids
// plus the per-scheduler oracle normalisation.
type ScenarioSchedulersResult struct {
	Schedulers []string
	Variants   []ScenarioVariantResult
	// SchemeNames preserves the oracle legend order; Normalized maps
	// scheme name to mean long-flow response time normalised by
	// WiFi-TCP.
	SchemeNames []string
	Normalized  map[string]float64
	Conditions  int
}

// schedulerCondition builds a WiFi+LTE pair with the given LTE
// calibration against a fixed mid-grade WiFi AP, so the disparity
// between variants comes from the cellular side (the paper's Fig. 7
// contrast).
func schedulerCondition(name string, lte phy.RadioCalib) phy.Condition {
	return phy.NewCondition(name,
		phy.Path{Name: "wifi", Profile: phy.Radio("wifi",
			phy.RadioCalib{DownMbps: 9, UpMbps: 3.5, RTTms: 30, LossPct: 0.5, Variability: 0.25})},
		phy.Path{Name: "lte", Profile: phy.Radio("lte", lte)},
	)
}

// ScenarioSchedulers measures every scheduler in schedulerOrder on a
// comparable and a disparate path pair across the scenario flow
// sizes, then runs the long-flow oracle analysis over the scheduler
// configuration family.
func ScenarioSchedulers(o Options) ScenarioSchedulersResult {
	cfgs := []core.Config{
		{Transport: core.TCP, Iface: "wifi"},
		{Transport: core.TCP, Iface: "lte"},
	}
	for _, s := range schedulerOrder {
		cfgs = append(cfgs, core.Config{
			Transport: core.MPTCP, Primary: "wifi", CC: mptcp.Decoupled, Scheduler: s,
		})
	}
	comparable := schedulerCondition("sched-comparable",
		phy.RadioCalib{DownMbps: 8, UpMbps: 3, RTTms: 55, LossPct: 0.3, Variability: 0.25})
	disparate := schedulerCondition("sched-disparate",
		phy.RadioCalib{DownMbps: 1.5, UpMbps: 0.6, RTTms: 180, LossPct: 1.0, Variability: 0.4})
	variants := runScenarioVariants(o, 2601, []scenarioVariant{
		{name: "comparable paths", cond: comparable, cfgs: cfgs},
		{name: "disparate paths", cond: disparate, cfgs: cfgs},
	})

	// Long-flow oracle over the scheduler family: replay the paper's
	// long-flow app at four representative sites and normalise one
	// oracle per scheduler against the single-path (N-path) oracle.
	rec := replay.Record(apps.DropboxClick)
	tcs := replay.Configs(replay.WiFiLTEPaths(), replay.WithSchedulers(schedulerOrder...))
	locIDs := []int{10, 15, 16, 17}
	perCond := engine.Sweep(o, len(locIDs), func(ci int) map[string]time.Duration {
		cond := phy.LocationByID(locIDs[ci]).Condition()
		per := map[string]time.Duration{}
		for _, tc := range tcs {
			r := replay.Run(seedFor(o.BaseSeed(), 2602, ci), cond, rec, tc)
			if !r.Completed {
				return nil
			}
			per[tc.Name] = r.ResponseTime
		}
		return per
	})
	var conds []map[string]time.Duration
	for _, per := range perCond {
		if per != nil {
			conds = append(conds, per)
		}
	}
	schemes, baseline := oracle.ForSchedulers([]string{"WiFi", "LTE"}, schedulerOrder)
	norm, n := oracle.NormalizedBy(conds, schemes, baseline)
	res := ScenarioSchedulersResult{
		Schedulers: schedulerOrder,
		Variants:   variants,
		Normalized: norm,
		Conditions: n,
	}
	for _, s := range schemes {
		res.SchemeNames = append(res.SchemeNames, s.Name)
	}
	return res
}

// String renders the scheduler grids and the per-scheduler oracle
// bars.
func (r ScenarioSchedulersResult) String() string {
	out := "Scenario schedulers: disparity × flow size × scheduler (pluggable mptcp.Scheduler)\n" +
		renderScenarioVariants(r.Variants)
	out += fmt.Sprintf("per-scheduler oracle vs the N-path single-path oracle (%d conditions, long-flow app):\n",
		r.Conditions)
	var rows [][]string
	for _, name := range r.SchemeNames {
		v, ok := r.Normalized[name]
		if !ok {
			continue
		}
		rows = append(rows, []string{name, fmt.Sprintf("%.2f", v), fmt.Sprintf("-%.0f%%", (1-v)*100)})
	}
	return out + table([]string{"Scheme", "Normalised", "Reduction"}, rows)
}
