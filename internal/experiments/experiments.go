// Package experiments contains one harness per table and figure of the
// paper's evaluation. Each function returns a structured result whose
// String method renders the same rows or series the paper reports;
// cmd/report and the repository-root benchmarks call these functions,
// and EXPERIMENTS.md records paper-vs-measured for each.
//
// Every harness takes an Options value so tests can run reduced
// versions (fewer seeds, fewer locations) of the exact same code the
// full report runs.
//
// Every harness also registers itself (via init) into the engine
// registry — engine.All is the single source of truth for "what
// experiments exist", iterated by cmd/report, the benchmarks and the
// package tests. Harness inner loops run on the engine sweep runner
// (engine.Sweep / engine.Grid / engine.RunTrials): independent trials
// fan out across a worker pool and are reduced in trial-index order,
// so parallel output is bit-identical to the sequential loops the
// runner replaced.
package experiments

import (
	"fmt"
	"strings"
	"time"

	"multinet/internal/experiments/engine"
)

// DefaultSeed is the base seed for all experiments; per-run seeds
// derive from it deterministically.
const DefaultSeed = engine.DefaultSeed

// Options scales an experiment and bounds its parallelism; it is the
// engine's option type, so harnesses pass it straight to the sweep
// runner.
type Options = engine.Options

// Full returns the options used by cmd/report and the benches.
func Full() Options { return Options{} }

// Quick returns reduced options for unit tests.
func Quick() Options { return Options{Trials: 1, Locations: 4} }

// seedFor derives a per-measurement seed (see engine.SeedFor).
func seedFor(base int64, parts ...int) int64 {
	return engine.SeedFor(base, parts...)
}

// register adds a harness to the engine registry; the order argument
// is the paper presentation order used by cmd/report.
func register(name, title, section string, order int, run func(Options) fmt.Stringer) {
	engine.Register(engine.Meta{Name: name, Title: title, Section: section, Order: order}, run)
}

// fmtDur renders a duration with millisecond precision.
func fmtDur(d time.Duration) string {
	return d.Round(time.Millisecond).String()
}

// table renders rows with a header as aligned text.
func table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(header)
	for _, r := range rows {
		line(r)
	}
	return b.String()
}
