// Package experiments contains one harness per table and figure of the
// paper's evaluation. Each function returns a structured result whose
// String method renders the same rows or series the paper reports;
// cmd/report and the repository-root benchmarks call these functions,
// and EXPERIMENTS.md records paper-vs-measured for each.
//
// Every harness takes an Options value so tests can run reduced
// versions (fewer seeds, fewer locations) of the exact same code the
// full report runs.
package experiments

import (
	"fmt"
	"strings"
	"time"
)

// DefaultSeed is the base seed for all experiments; per-run seeds
// derive from it deterministically.
const DefaultSeed = 2014

// Options scales an experiment.
type Options struct {
	// Seed is the base RNG seed (DefaultSeed when zero).
	Seed int64
	// Trials is the number of repetitions per measurement point
	// (harness-specific default when zero).
	Trials int
	// Locations restricts location-sweep experiments to the first N
	// of the paper's 20 sites (all when zero).
	Locations int
}

func (o Options) seed() int64 {
	if o.Seed == 0 {
		return DefaultSeed
	}
	return o.Seed
}

func (o Options) trials(def int) int {
	if o.Trials > 0 {
		return o.Trials
	}
	return def
}

func (o Options) locations(max int) int {
	if o.Locations > 0 && o.Locations < max {
		return o.Locations
	}
	return max
}

// Full returns the options used by cmd/report and the benches.
func Full() Options { return Options{} }

// Quick returns reduced options for unit tests.
func Quick() Options { return Options{Trials: 1, Locations: 4} }

// seedFor derives a per-measurement seed.
func seedFor(base int64, parts ...int) int64 {
	s := base
	for _, p := range parts {
		s = s*1000003 + int64(p) + 7919
	}
	return s
}

// fmtDur renders a duration with millisecond precision.
func fmtDur(d time.Duration) string {
	return d.Round(time.Millisecond).String()
}

// table renders rows with a header as aligned text.
func table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(header)
	for _, r := range rows {
		line(r)
	}
	return b.String()
}
