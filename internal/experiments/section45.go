package experiments

import (
	"fmt"
	"time"

	"multinet/internal/apps"
	"multinet/internal/experiments/engine"
	"multinet/internal/oracle"
	"multinet/internal/phy"
	"multinet/internal/replay"
)

func init() {
	register("figure17", "Figure 17", "4.1", 16, func(o Options) fmt.Stringer { return Figure17(o) })
	register("figure18", "Figure 18", "5.1", 17, func(o Options) fmt.Stringer { return Figure18(o) })
	register("figure19", "Figure 19", "5.2", 18, func(o Options) fmt.Stringer { return Figure19(o) })
	register("figure20", "Figure 20", "5.1", 19, func(o Options) fmt.Stringer { return Figure20(o) })
	register("figure21", "Figure 21", "5.2", 20, func(o Options) fmt.Stringer { return Figure21(o) })
}

// Figure17Row summarises one app pattern's recorded traffic.
type Figure17Row struct {
	App, Interaction string
	Flows            int
	TotalKB          int
	LargestFlowKB    int
	Label            string
	// Raster maps flow ID to (start, end, avg kbit/s) for the panel.
	Raster []replay.FlowStat
}

// Figure17Result covers all six panels.
type Figure17Result struct{ Rows []Figure17Row }

// fig17Cond is a fast, neutral condition so the recorded pattern's own
// structure (not the network) dominates the raster.
var fig17Cond = phy.Condition{
	Name: "record",
	WiFi: phy.PathProfile{DownMbps: 20, UpMbps: 8, RTTms: 30},
	LTE:  phy.PathProfile{DownMbps: 15, UpMbps: 6, RTTms: 60},
}

// Figure17 records each app pattern and replays it once to obtain the
// per-connection timing raster.
func Figure17(o Options) Figure17Result {
	rows := engine.Sweep(o, len(apps.All), func(i int) Figure17Row {
		app := apps.All[i]
		rec := replay.Record(app)
		res := replay.Run(seedFor(o.BaseSeed(), 17, i), fig17Cond, rec,
			replay.TransportConfig{Name: "WiFi-TCP", Kind: replay.SinglePath, Iface: "wifi"})
		row := Figure17Row{
			App:         app.Name,
			Interaction: app.Interaction,
			Flows:       len(app.Flows),
			TotalKB:     app.TotalBytes() >> 10,
			Label:       app.Label(),
			Raster:      res.Flows,
		}
		for _, f := range app.Flows {
			if kb := (f.RequestBytes + f.ResponseBytes) >> 10; kb > row.LargestFlowKB {
				row.LargestFlowKB = kb
			}
		}
		return row
	})
	return Figure17Result{Rows: rows}
}

// String renders the six panels' summaries and rasters.
func (r Figure17Result) String() string {
	out := "Figure 17: app traffic patterns\n"
	for _, row := range r.Rows {
		out += fmt.Sprintf("%s %s: %d flows, %d KB total, largest flow %d KB -> %s\n",
			row.App, row.Interaction, row.Flows, row.TotalKB, row.LargestFlowKB, row.Label)
		for _, f := range row.Raster {
			out += fmt.Sprintf("  flow %2d: %8s -> %8s  %7.0f kbit/s\n",
				f.ID, fmtDur(f.Start), fmtDur(f.End), f.RateKbps())
		}
	}
	return out
}

// replayConditions returns the emulated network conditions: the 20
// locations of Section 3.2, as the paper replays over.
func replayConditions(o Options) []phy.Condition {
	n := o.LocationCount(len(phy.Locations))
	conds := make([]phy.Condition, 0, n)
	for i := 0; i < n; i++ {
		conds = append(conds, phy.Locations[i].Condition())
	}
	return conds
}

// representativeConditions picks the paper's four display conditions:
// 1-2 where WiFi wins, 3-4 where LTE wins.
func representativeConditions() []phy.Condition {
	return []phy.Condition{
		phy.LocationByID(10).Condition(), // NC1: WiFi much better
		phy.LocationByID(15).Condition(), // NC2: WiFi better
		phy.LocationByID(16).Condition(), // NC3: LTE much better
		phy.LocationByID(17).Condition(), // NC4: LTE better
	}
}

// ResponseTimeResult holds a Fig. 18/20 bar chart: app response time
// per configuration per condition.
type ResponseTimeResult struct {
	App        string
	Conditions []string
	Configs    []string
	// Secs[condition][config] in seconds.
	Secs [][]float64
}

// responseTimes replays the app over the four representative
// conditions with the six standard configurations.
func responseTimes(o Options, app apps.App, tag int) ResponseTimeResult {
	rec := replay.Record(app)
	res := ResponseTimeResult{App: app.Name + " " + app.Interaction}
	tcs := replay.StandardConfigs()
	for _, tc := range tcs {
		res.Configs = append(res.Configs, tc.Name)
	}
	conds := representativeConditions()
	secs := engine.Grid(o, len(conds), len(tcs), func(ci, ti int) float64 {
		r := replay.Run(seedFor(o.BaseSeed(), tag, ci), conds[ci], rec, tcs[ti])
		if r.Completed {
			return r.ResponseTime.Seconds()
		}
		return -1
	})
	for ci, cond := range conds {
		res.Conditions = append(res.Conditions, fmt.Sprintf("NC%d(%s)", ci+1, cond.Name))
		res.Secs = append(res.Secs, secs[ci*len(tcs):(ci+1)*len(tcs)])
	}
	return res
}

// Figure18 replays the short-flow-dominated app (CNN launch).
func Figure18(o Options) ResponseTimeResult { return responseTimes(o, apps.CNNLaunch, 18) }

// Figure20 replays the long-flow-dominated app (Dropbox click).
func Figure20(o Options) ResponseTimeResult { return responseTimes(o, apps.DropboxClick, 20) }

// String renders the bar-chart data.
func (r ResponseTimeResult) String() string {
	header := append([]string{"Condition \\ Config"}, r.Configs...)
	var rows [][]string
	for i, cond := range r.Conditions {
		row := []string{cond}
		for _, s := range r.Secs[i] {
			row = append(row, fmt.Sprintf("%.1fs", s))
		}
		rows = append(rows, row)
	}
	return fmt.Sprintf("Figures 18/20: %s app response time\n", r.App) + table(header, rows)
}

// OracleResult holds a Fig. 19/21 bar chart: normalised app response
// time per oracle scheme.
type OracleResult struct {
	App string
	// Normalized maps scheme name to mean response time normalised by
	// WiFi-TCP across all conditions.
	Normalized map[string]float64
	// Conditions is how many conditions contributed.
	Conditions int
}

// oracles replays the app over all conditions and evaluates the
// paper's five oracle schemes.
func oracles(o Options, app apps.App, tag int) OracleResult {
	rec := replay.Record(app)
	all := replayConditions(o)
	// One cell per condition; a cell replays every standard config and
	// returns nil if any replay fails to complete (the historical
	// early-break), so only fully-measured conditions contribute.
	perCond := engine.Sweep(o, len(all), func(ci int) map[string]time.Duration {
		per := map[string]time.Duration{}
		for _, tc := range replay.StandardConfigs() {
			r := replay.Run(seedFor(o.BaseSeed(), tag, ci), all[ci], rec, tc)
			if !r.Completed {
				return nil
			}
			per[tc.Name] = r.ResponseTime
		}
		return per
	})
	var conds []map[string]time.Duration
	for _, per := range perCond {
		if per != nil {
			conds = append(conds, per)
		}
	}
	norm := oracle.Normalized(conds)
	out := OracleResult{App: app.Name + " " + app.Interaction,
		Normalized: map[string]float64{}, Conditions: len(conds)}
	// Per-key projection keyed by the scheme's (injective) render.
	for s, v := range norm { //lint:allow determinism per-key map projection; PathScheme.String is injective over schemes
		out.Normalized[s.String()] = v
	}
	return out
}

// Figure19 evaluates oracles for the short-flow app.
func Figure19(o Options) OracleResult { return oracles(o, apps.CNNLaunch, 19) }

// Figure21 evaluates oracles for the long-flow app.
func Figure21(o Options) OracleResult { return oracles(o, apps.DropboxClick, 21) }

// String renders the normalised bars in the paper's legend order.
func (r OracleResult) String() string {
	var rows [][]string
	for _, s := range oracle.Schemes {
		v, ok := r.Normalized[s.String()]
		if !ok {
			continue
		}
		rows = append(rows, []string{s.String(), fmt.Sprintf("%.2f", v),
			fmt.Sprintf("-%.0f%%", (1-v)*100)})
	}
	return fmt.Sprintf("Figures 19/21: %s normalised response time (%d conditions)\n",
		r.App, r.Conditions) +
		table([]string{"Scheme", "Normalised", "Reduction"}, rows)
}
