package experiments

import (
	"fmt"
	"strings"

	"multinet/internal/dataset"
	"multinet/internal/simnet"
	"multinet/internal/stats"
)

func init() {
	register("table1", "Table 1", "2", 1, func(o Options) fmt.Stringer { return Table1(o) })
	register("figure3", "Figure 3", "2.3", 2, func(o Options) fmt.Stringer { return Figure3(o) })
	register("figure4", "Figure 4", "2.3", 3, func(o Options) fmt.Stringer { return Figure4(o) })
}

// Table1Result is the regenerated Table 1 (geographic clusters of the
// crowd-sourced campaign).
type Table1Result struct {
	Rows []dataset.TableRow
	// TotalRuns counts complete runs across clusters.
	TotalRuns int
	// Filtered counts incomplete runs removed by the paper's filter.
	Filtered int
}

// Table1 generates the synthetic campaign and regroups it with the
// paper's k-means-style radius clustering (r = 100 km).
func Table1(o Options) Table1Result {
	c := dataset.Generate(simnet.New(o.BaseSeed()))
	rows := c.RegenerateTable1()
	res := Table1Result{Rows: rows}
	res.Filtered = len(c.Runs) - len(c.CompleteRuns())
	for _, r := range rows {
		res.TotalRuns += r.Runs
	}
	return res
}

// String renders the table in the paper's layout.
func (r Table1Result) String() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Name,
			fmt.Sprintf("(%.1f, %.1f)", row.Lat, row.Lon),
			fmt.Sprintf("%d", row.Runs),
			fmt.Sprintf("%.0f%%", row.LTEWinPct),
		})
	}
	return "Table 1: location clusters (k-means r=100km), ordered by runs\n" +
		table([]string{"Location", "(Lat, Long)", "# of Runs", "LTE %"}, rows) +
		fmt.Sprintf("total complete runs: %d (filtered %d incomplete)\n", r.TotalRuns, r.Filtered)
}

// CDFSeries is a downsampled CDF for figure output.
type CDFSeries struct {
	Label  string
	Points []stats.Point
}

// sampleCDF extracts ~n evenly spaced CDF points.
func sampleCDF(e *stats.ECDF, label string, n int) CDFSeries {
	pts := e.Points()
	if len(pts) <= n {
		return CDFSeries{Label: label, Points: pts}
	}
	out := make([]stats.Point, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, pts[i*len(pts)/n])
	}
	out = append(out, pts[len(pts)-1])
	return CDFSeries{Label: label, Points: out}
}

func renderCDF(s CDFSeries, xfmt string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "  # CDF %s\n", s.Label)
	for _, p := range s.Points {
		fmt.Fprintf(&b, "  "+xfmt+"  %.3f\n", p.X, p.Y)
	}
	return b.String()
}

// Figure3Result holds the throughput-difference CDFs (WiFi - LTE).
type Figure3Result struct {
	Uplink, Downlink CDFSeries
	// LTEWinUp/Down are the grey-region fractions (paper: 42% / 35%).
	LTEWinUp, LTEWinDown float64
	// Combined is the pooled fraction (paper: 40%).
	Combined float64
}

// Figure3 computes the CDFs of Tput(WiFi)-Tput(LTE) over the campaign.
func Figure3(o Options) Figure3Result {
	c := dataset.Generate(simnet.New(o.BaseSeed()))
	up, down := c.DiffCDFs()
	wu, wd, comb := c.WinFractions()
	return Figure3Result{
		Uplink:     sampleCDF(up, "uplink WiFi-LTE (Mbit/s)", 40),
		Downlink:   sampleCDF(down, "downlink WiFi-LTE (Mbit/s)", 40),
		LTEWinUp:   wu,
		LTEWinDown: wd,
		Combined:   comb,
	}
}

// String renders the figure data and headline fractions.
func (r Figure3Result) String() string {
	return fmt.Sprintf(
		"Figure 3: CDF of Tput(WiFi)-Tput(LTE)\n"+
			"LTE wins: uplink %.0f%% (paper 42%%), downlink %.0f%% (paper 35%%), combined %.0f%% (paper 40%%)\n",
		r.LTEWinUp*100, r.LTEWinDown*100, r.Combined*100) +
		renderCDF(r.Uplink, "%8.2f") + renderCDF(r.Downlink, "%8.2f")
}

// Figure4Result holds the ping-RTT difference CDF.
type Figure4Result struct {
	CDF CDFSeries
	// LTELowerRTT is the grey-region fraction (paper: 20%).
	LTELowerRTT float64
}

// Figure4 computes the CDF of RTT(WiFi)-RTT(LTE) over the campaign.
func Figure4(o Options) Figure4Result {
	c := dataset.Generate(simnet.New(o.BaseSeed()))
	cdf := c.RTTDiffCDF()
	return Figure4Result{
		CDF:         sampleCDF(cdf, "RTT(WiFi)-RTT(LTE) (ms)", 40),
		LTELowerRTT: 1 - cdf.At(0),
	}
}

// String renders the figure data and headline fraction.
func (r Figure4Result) String() string {
	return fmt.Sprintf("Figure 4: CDF of ping RTT difference\nLTE has lower RTT in %.0f%% of runs (paper 20%%)\n",
		r.LTELowerRTT*100) + renderCDF(r.CDF, "%8.1f")
}
