package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os/exec"
	"path/filepath"
	"sort"
)

// Package is one parsed, type-checked target package.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// TypeErrors collects non-fatal type-check problems (the checker is
	// run in tolerant mode so one bad dependency cannot hide findings
	// in unrelated packages).
	TypeErrors []error
}

// Loader parses and type-checks packages on a shared FileSet with a
// shared stdlib source importer, so repeated loads (the whole-repo
// suite run, then per-analyzer golden packages) reuse dependency
// type-checking work and produce mutually comparable token positions.
type Loader struct {
	Fset *token.FileSet
	imp  types.Importer
}

// NewLoader returns a loader backed by the stdlib source importer,
// which resolves both standard-library and intra-module import paths
// from source — no compiled export data and no network needed.
func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{Fset: fset, imp: importer.ForCompiler(fset, "source", nil)}
}

// goListPackage is the subset of `go list -json` output the loader
// consumes.
type goListPackage struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
}

// LoadPatterns enumerates the non-test packages matching patterns
// (run via `go list` with dir as working directory — dir must lie
// inside the module) and loads each one.
func (l *Loader) LoadPatterns(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-json=ImportPath,Dir,Name,GoFiles"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, errb.String())
	}
	var pkgs []*Package
	dec := json.NewDecoder(&out)
	for dec.More() {
		var gp goListPackage
		if err := dec.Decode(&gp); err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		if len(gp.GoFiles) == 0 {
			continue
		}
		pkg, err := l.load(gp.Dir, gp.ImportPath, gp.GoFiles)
		if err != nil {
			return nil, fmt.Errorf("loading %s: %v", gp.ImportPath, err)
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadDir loads the single package whose sources sit in dir, under the
// given import path. It is how the analysistest harness loads golden
// packages that live below testdata/ (invisible to the go tool but
// free to import real module packages).
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		return nil, err
	}
	var names []string
	for _, m := range matches {
		base := filepath.Base(m)
		if len(base) > len("_test.go") && base[len(base)-len("_test.go"):] == "_test.go" {
			continue
		}
		names = append(names, base)
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	return l.load(dir, importPath, names)
}

// load parses the named files of one package and type-checks them in
// tolerant mode.
func (l *Loader) load(dir, importPath string, fileNames []string) (*Package, error) {
	sort.Strings(fileNames)
	var files []*ast.File
	for _, name := range fileNames {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	pkg := &Package{Path: importPath, Dir: dir, Fset: l.Fset, Files: files}
	conf := types.Config{
		Importer: l.imp,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	tpkg, _ := conf.Check(importPath, l.Fset, files, info)
	if tpkg == nil {
		return nil, fmt.Errorf("type-checking %s failed: %v", importPath, firstErr(pkg.TypeErrors))
	}
	pkg.Types = tpkg
	pkg.Info = info
	return pkg, nil
}

func firstErr(errs []error) error {
	if len(errs) == 0 {
		return nil
	}
	return errs[0]
}
