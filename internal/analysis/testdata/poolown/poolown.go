// Package pooltest is the poolown analyzer's golden package. It
// imports the real pooled types (netem.Packet, tcp.Segment) and walks
// through the single-owner lifecycle: double release, use after
// release, and unmarked escapes must be flagged; //multinet:owns
// transfers and //lint:allow exceptions stay silent.
package pooltest

import (
	"multinet/internal/netem"
	"multinet/internal/tcp"
)

func doubleRelease() {
	p := netem.NewPacket()
	netem.ReleasePacket(p)
	netem.ReleasePacket(p) // want `released twice`
}

func useAfterRelease() int {
	s := tcp.NewSegment()
	s.Recycle()
	return s.PayloadLen // want `use of s after release`
}

func branchRelease(p *netem.Packet, drop bool) {
	if drop {
		netem.ReleasePacket(p)
		return
	}
	p.Size = 1 // the other branch still owns p
	netem.ReleasePacket(p)
}

func reacquire() {
	p := netem.NewPacket()
	netem.ReleasePacket(p)
	p = netem.NewPacket() // reassignment resurrects the variable
	p.Size = 1
	netem.ReleasePacket(p)
}

func allowedDoubleRelease() {
	p := netem.NewPacket()
	netem.ReleasePacket(p)
	//lint:allow poolown golden proof that an allow annotation suppresses
	netem.ReleasePacket(p)
}

type queue struct {
	items []*netem.Packet
	head  *tcp.Segment
	owned []*netem.Packet //multinet:owns — the queue takes ownership at push
}

func push(q *queue, p *netem.Packet) {
	q.items = append(q.items, p) // want `appended to q.items`
	q.owned = append(q.owned, p) // marked field: deliberate transfer
}

func stash(q *queue, s *tcp.Segment) {
	q.head = s // want `escapes into field q.head`
}

func stashMarked(q *queue, s *tcp.Segment) {
	q.head = s //multinet:owns — golden line-marker transfer
}

var lastPacket *netem.Packet

var parked *netem.Packet //multinet:owns — golden package-level sink

func keep(p *netem.Packet) {
	lastPacket = p // want `escapes into package-level variable lastPacket`
	parked = p     // marked variable: deliberate transfer
}

func permute(q *queue, i, j int) {
	q.items[i], q.items[j] = q.items[j], q.items[i] // permutation, not a transfer
}
