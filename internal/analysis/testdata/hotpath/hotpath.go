// Package hottest is the hotpath analyzer's golden package. Functions
// carrying the //multinet:hotpath pragma must stay allocation-free:
// closures, fmt, map allocation, escaping appends, and boxing
// interface conversions are flagged; pointer-shaped and constant
// conversions, local appends, and unannotated functions stay silent.
package hottest

import "fmt"

type ring struct {
	buf []int
}

//multinet:hotpath
func hotAlloc(r *ring, n int, emit func(any)) {
	f := func() int { return n } // want `closure allocated`
	_ = f
	_ = fmt.Sprint(n)      // want `fmt\.Sprint call` `boxes int`
	m := map[int]int{n: n} // want `map literal`
	_ = m
	mm := make(map[int]int) // want `map allocated with make`
	_ = mm
	r.buf = append(r.buf, n) // want `append to escaping slice`
	emit(n)                  // want `boxes int`
}

//multinet:hotpath
func hotShapes(n int, emit func(any)) {
	emit(&n)      // pointer-shaped values fit the iface word
	emit("label") // constants box to static data, not the heap
	emit(nil)
	var a any
	a = n // want `boxes int`
	_ = a
	x := any(n) // want `boxes int`
	_ = x
}

//multinet:hotpath
func hotLocal(n int) int {
	xs := make([]int, 0, 8)
	xs = append(xs, n) // append through a local stays in the caller's control
	return len(xs)
}

//multinet:hotpath
func hotAllowed(r *ring, n int) {
	r.buf = append(r.buf, n) //lint:allow hotpath golden amortised-capacity exception
}

func coldAlloc(n int) string {
	return fmt.Sprint(n) // unannotated functions are out of scope
}
