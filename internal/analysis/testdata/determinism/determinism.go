// Package determtest is the determinism analyzer's golden package. It
// stands in for engine code: wall clocks, global randomness, stray
// goroutines, and order-sensitive map iteration must all be flagged,
// while the documented order-insensitive idioms stay silent.
package determtest

import (
	"math/rand"
	"sort"
	"time"
)

var bootAt = time.Now() // want `wall clock time.Now`

func elapsed() time.Duration {
	return time.Since(bootAt) // want `wall clock time.Since`
}

func jitter() int {
	return rand.Intn(8) // want `global math/rand Intn`
}

func seededJitter(r *rand.Rand) int {
	return r.Intn(8) // methods on a seeded source are deterministic
}

func seedSource(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed)) // constructors are allowed
}

func spawn(done chan struct{}) {
	go close(done) // want `go statement`
}

func allowedSpawn(done chan struct{}) {
	//lint:allow determinism golden proof that an allow annotation suppresses
	go close(done)
}

func totals(m map[string]int) int {
	tot := 0
	for _, v := range m { // commutative integer accumulation is order-free
		tot += v
	}
	return tot
}

func perKeyProjection(m map[string]float64) map[string]float64 {
	out := make(map[string]float64, len(m))
	for k, v := range m { // each key writes one distinct entry
		out[k] = v * 2
	}
	return out
}

func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m { // collect-then-sort idiom
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func concatKeys(m map[string]int) string {
	out := ""
	for k := range m { // want `order-sensitive body`
		out += k
	}
	return out
}

func anyKey(m map[string]int) string {
	for k := range m { // want `order-sensitive body`
		return k
	}
	return ""
}

func allowedFloatSum(m map[string]float64) float64 {
	s := 0.0
	//lint:allow determinism golden float accumulation tolerated for the test
	for _, v := range m {
		s += v
	}
	return s
}
