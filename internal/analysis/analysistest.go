package analysis

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"sync"
)

// TestingT is the subset of *testing.T the golden runner needs.
type TestingT interface {
	Helper()
	Errorf(format string, args ...any)
	Fatalf(format string, args ...any)
}

// sharedLoader serves every golden run in a process: the source
// importer memoises dependency type-checking, so the second analyzer's
// testdata loads in milliseconds.
var (
	loaderOnce   sync.Once
	sharedLoader *Loader
)

// TestLoader returns the process-wide shared loader.
func TestLoader() *Loader {
	loaderOnce.Do(func() { sharedLoader = NewLoader() })
	return sharedLoader
}

// wantRe matches `// want "..." `...“ expectation comments in golden
// packages, analysistest-style: each quoted string is a regexp that
// must match exactly one diagnostic reported on that line.
var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)

// RunGolden loads the golden package in dir and checks the analyzer's
// diagnostics against its `// want "regexp"` comments: every
// expectation must be matched by a diagnostic on its line, every
// unsuppressed diagnostic must be expected, and //lint:allow-suppressed
// findings must NOT surface (which is how the golden packages prove
// that deleting an allow annotation flips the suite to failing).
func RunGolden(t TestingT, dir string, a *Analyzer) {
	t.Helper()
	pkg, err := TestLoader().LoadDir(dir, "multinet/lint/"+strings.ReplaceAll(dir, "/", "_"))
	if err != nil {
		t.Fatalf("loading golden package %s: %v", dir, err)
	}
	// Golden packages opt in unconditionally: the driver-level package
	// filter (Match) is scoping policy, not analyzer semantics.
	unscoped := *a
	unscoped.Match = nil
	diags, err := RunAnalyzers([]*Package{pkg}, []*Analyzer{&unscoped})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}

	type want struct {
		file string
		line int
		re   *regexp.Regexp
		hit  bool
	}
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, pat := range splitWantPatterns(m[1]) {
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, pat, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}

	for _, d := range diags {
		if d.Suppressed {
			continue
		}
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == d.File && w.line == d.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s:%d: unexpected %s diagnostic: %s", d.File, d.Line, d.Analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// splitWantPatterns parses the space-separated quoted/backquoted
// regexps after `// want`.
func splitWantPatterns(s string) []string {
	var pats []string
	s = strings.TrimSpace(s)
	for s != "" {
		switch s[0] {
		case '"', '`':
			prefix, err := strconv.QuotedPrefix(s)
			if err != nil {
				return append(pats, fmt.Sprintf("\x00unparseable want: %s", s))
			}
			unq, _ := strconv.Unquote(prefix)
			pats = append(pats, unq)
			s = strings.TrimSpace(s[len(prefix):])
		default:
			return append(pats, fmt.Sprintf("\x00unparseable want: %s", s))
		}
	}
	return pats
}

// CountMarker returns how many indexed comments contain the given
// marker — used by tests asserting the repo actually carries
// annotations (so a sweeping deletion cannot silently disable checks).
func (ci *CommentIndex) CountMarker(marker string) int {
	n := 0
	for _, lines := range ci.byFile {
		for _, texts := range lines {
			for _, text := range texts {
				if strings.Contains(text, marker) {
					n++
				}
			}
		}
	}
	return n
}
