package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// pooledType names one pool-recycled type by defining package and type
// name. Values of these types have single-owner lifecycles: exactly one
// release per acquisition, no touching after release, and any pointer
// stored into longer-lived structure is an ownership transfer that must
// be marked //multinet:owns.
type pooledType struct{ path, name string }

var pooledTypes = []pooledType{
	{"multinet/internal/netem", "Packet"},
	{"multinet/internal/tcp", "Segment"},
	{"multinet/internal/simnet", "event"},
}

// releaseFunc describes a call that releases one of its arguments back
// to a pool: a package-level function (recvType == "") or a method.
type releaseFunc struct {
	path     string // defining package import path
	recvType string // receiver type name for methods
	name     string
	arg      int // index of the released argument; -1 means the receiver
}

var releaseFuncs = []releaseFunc{
	{path: "multinet/internal/netem", name: "ReleasePacket", arg: 0},
	{path: "multinet/internal/netem", name: "dropPacket", arg: 0},
	{path: "multinet/internal/tcp", recvType: "Segment", name: "Recycle", arg: -1},
	{path: "multinet/internal/simnet", recvType: "Sim", name: "recycle", arg: 0},
	// RecycleOpt is the tcp.RecyclableOpt interface method: any
	// implementation or interface call releases the receiver.
	{path: "", recvType: "", name: "RecycleOpt", arg: -1},
}

// PoolOwn enforces PR 4's single-owner recycling discipline on pooled
// packets, segments, and simulator events: no double release, no use
// after release along straight-line/branch paths, and no pooled
// pointer escaping into a struct field or slice without an explicit
// //multinet:owns ownership-transfer marker.
var PoolOwn = &Analyzer{
	Name: "poolown",
	Doc: "detect double-release, use-after-release, and unmarked escapes " +
		"of pooled values (netem.Packet, tcp.Segment, simnet events)",
	Run: runPoolOwn,
}

func runPoolOwn(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					checkOwnership(pass, n.Body)
				}
				return true
			case *ast.AssignStmt:
				checkEscapeAssign(pass, n)
			case *ast.CallExpr:
				checkEscapeAppend(pass, n)
			}
			return true
		})
	}
	return nil
}

// ---- release-site resolution ----------------------------------------

// releaseTarget returns the expression whose value call releases, or
// nil when call is not a pool release.
func releaseTarget(info *types.Info, call *ast.CallExpr) ast.Expr {
	fn := typesFunc(info, call.Fun)
	if fn == nil {
		return nil
	}
	sig, _ := fn.Type().(*types.Signature)
	for _, rf := range releaseFuncs {
		if fn.Name() != rf.name {
			continue
		}
		if rf.recvType == "" && rf.path != "" {
			// Package-level function.
			if sig != nil && sig.Recv() == nil && funcPkgPath(fn) == rf.path && rf.arg < len(call.Args) {
				return call.Args[rf.arg]
			}
			continue
		}
		// Method (or, for RecycleOpt, any method of that name).
		if sig == nil || sig.Recv() == nil {
			continue
		}
		if rf.recvType != "" {
			if funcPkgPath(fn) != rf.path || namedTypeName(sig.Recv().Type()) != rf.recvType {
				continue
			}
		}
		if rf.arg == -1 {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				return sel.X
			}
			return nil
		}
		if rf.arg < len(call.Args) {
			return call.Args[rf.arg]
		}
	}
	return nil
}

// namedTypeName unwraps pointers and returns the named type's name.
func namedTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// isPooledPointer reports whether t is a pointer to one of the pooled
// types.
func isPooledPointer(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	n, ok := p.Elem().(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	for _, pt := range pooledTypes {
		if n.Obj().Name() == pt.name && n.Obj().Pkg().Path() == pt.path {
			return true
		}
	}
	return false
}

// ---- double-release / use-after-release -----------------------------

// released maps a variable to the position of the release that killed
// it.
type released map[*types.Var]token.Pos

func (r released) clone() released {
	c := make(released, len(r))
	for k, v := range r {
		c[k] = v
	}
	return c
}

// checkOwnership walks one function body tracking release state along
// straight-line code, forking (without re-joining) at branches — a
// deliberately conservative path model: anything it reports is a real
// sequence of statements that releases twice or touches a dead value.
func checkOwnership(pass *Pass, body *ast.BlockStmt) {
	walkOwnBlock(pass, body.List, released{})
}

func walkOwnBlock(pass *Pass, stmts []ast.Stmt, st released) {
	for _, s := range stmts {
		walkOwnStmt(pass, s, st)
	}
}

func walkOwnStmt(pass *Pass, s ast.Stmt, st released) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		walkOwnBlock(pass, s.List, st)
		return
	case *ast.IfStmt:
		if s.Init != nil {
			applyOwnStmt(pass, s.Init, st)
		}
		checkUses(pass, s.Cond, st, nil)
		walkOwnBlock(pass, s.Body.List, st.clone())
		if s.Else != nil {
			walkOwnStmt(pass, s.Else, st.clone())
		}
		return
	case *ast.ForStmt:
		walkOwnBlock(pass, s.Body.List, st.clone())
		return
	case *ast.RangeStmt:
		checkUses(pass, s.X, st, nil)
		walkOwnBlock(pass, s.Body.List, st.clone())
		return
	case *ast.SwitchStmt:
		ownClauses(pass, s.Body, st)
		return
	case *ast.TypeSwitchStmt:
		ownClauses(pass, s.Body, st)
		return
	case *ast.SelectStmt:
		ownClauses(pass, s.Body, st)
		return
	case *ast.LabeledStmt:
		walkOwnStmt(pass, s.Stmt, st)
		return
	case *ast.DeferStmt:
		// A deferred release happens at function exit, after every
		// remaining statement: it neither kills the value for the code
		// below nor counts as a straight-line double release here.
		return
	}
	applyOwnStmt(pass, s, st)
}

func ownClauses(pass *Pass, body *ast.BlockStmt, st released) {
	if body == nil {
		return
	}
	for _, clause := range body.List {
		switch c := clause.(type) {
		case *ast.CaseClause:
			walkOwnBlock(pass, c.Body, st.clone())
		case *ast.CommClause:
			walkOwnBlock(pass, c.Body, st.clone())
		}
	}
}

// applyOwnStmt processes one simple (non-branching) statement: report
// uses of dead values, then apply this statement's releases and
// reassignments to the state.
func applyOwnStmt(pass *Pass, s ast.Stmt, st released) {
	// Releases performed by this statement, and the idents naming the
	// released value inside the release call itself (excluded from the
	// use check — ReleasePacket(p) is not a use-after-release of p).
	type rel struct {
		v   *types.Var
		pos token.Pos
	}
	var rels []rel
	excluded := map[*ast.Ident]bool{}
	ast.Inspect(s, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // closure bodies run later; analyzed as their own scope elsewhere
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		target := releaseTarget(pass.TypesInfo, call)
		if target == nil {
			return true
		}
		if id, ok := ast.Unparen(target).(*ast.Ident); ok {
			if v, ok := pass.TypesInfo.ObjectOf(id).(*types.Var); ok {
				rels = append(rels, rel{v, call.Pos()})
				excluded[id] = true
			}
		}
		return true
	})

	// Reassignment resurrects a variable for the code below.
	var reassigned []*types.Var
	if as, ok := s.(*ast.AssignStmt); ok {
		for _, lhs := range as.Lhs {
			if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
				if v, ok := pass.TypesInfo.ObjectOf(id).(*types.Var); ok {
					reassigned = append(reassigned, v)
					excluded[id] = true
				}
			}
		}
	}

	checkUses(pass, s, st, excluded)

	for _, r := range rels {
		if prev, dead := st[r.v]; dead {
			pass.Reportf(r.pos, "%s released twice: already released at %s", r.v.Name(), pass.Fset.Position(prev))
		} else {
			st[r.v] = r.pos
		}
	}
	for _, v := range reassigned {
		delete(st, v)
	}
}

// checkUses reports identifiers referring to released variables inside
// n, skipping the excluded idents and closure bodies.
func checkUses(pass *Pass, n ast.Node, st released, excluded map[*ast.Ident]bool) {
	if n == nil || len(st) == 0 {
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok || excluded[id] {
			return true
		}
		v, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok {
			return true
		}
		if pos, dead := st[v]; dead {
			pass.Reportf(id.Pos(), "use of %s after release at %s: the pool may have handed it to another owner", id.Name, pass.Fset.Position(pos))
		}
		return true
	})
}

// ---- escape tracking ------------------------------------------------

// checkEscapeAssign flags pooled pointers stored into struct fields,
// slice/map elements, or package-level variables without an ownership
// marker.
func checkEscapeAssign(pass *Pass, as *ast.AssignStmt) {
	n := len(as.Lhs)
	if len(as.Rhs) != n {
		return // tuple assignment from a call never yields pooled pointers directly
	}
	for i := 0; i < n; i++ {
		rhsT, ok := pass.TypesInfo.Types[as.Rhs[i]]
		if !ok || !isPooledPointer(rhsT.Type) {
			continue
		}
		lhs := ast.Unparen(as.Lhs[i])
		switch l := lhs.(type) {
		case *ast.SelectorExpr:
			if !pass.ownsAllowed(l, as.Pos()) {
				pass.Reportf(as.Pos(), "pooled %s escapes into field %s without a //multinet:owns ownership-transfer marker", typeShort(rhsT.Type), exprText(l))
			}
		case *ast.IndexExpr:
			// A store whose value comes from the same container is a
			// permutation (sort swaps, compaction shifts), not a new
			// ownership edge.
			if sameContainer(pass.TypesInfo, l, as.Rhs[i]) {
				continue
			}
			if !pass.ownsAllowedIndex(l, as.Pos()) {
				pass.Reportf(as.Pos(), "pooled %s escapes into element of %s without a //multinet:owns ownership-transfer marker", typeShort(rhsT.Type), exprText(l.X))
			}
		case *ast.Ident:
			if v, ok := pass.TypesInfo.ObjectOf(l).(*types.Var); ok && v.Parent() == pass.Pkg.Scope() {
				if !pass.OwnsMarkedAt(as.Pos()) && !pass.OwnsMarkedAt(v.Pos()) {
					pass.Reportf(as.Pos(), "pooled %s escapes into package-level variable %s without a //multinet:owns ownership-transfer marker", typeShort(rhsT.Type), l.Name)
				}
			}
		}
	}
}

// checkEscapeAppend flags append(xs, p) where p is a pooled pointer.
func checkEscapeAppend(pass *Pass, call *ast.CallExpr) {
	if !isBuiltin(pass.TypesInfo, call.Fun, "append") || len(call.Args) < 2 {
		return
	}
	for _, arg := range call.Args[1:] {
		tv, ok := pass.TypesInfo.Types[arg]
		if !ok || !isPooledPointer(tv.Type) {
			continue
		}
		if pass.OwnsMarkedAt(call.Pos()) {
			continue
		}
		if sel, ok := ast.Unparen(call.Args[0]).(*ast.SelectorExpr); ok && pass.ownsAllowed(sel, call.Pos()) {
			continue
		}
		pass.Reportf(call.Pos(), "pooled %s appended to %s without a //multinet:owns ownership-transfer marker", typeShort(tv.Type), exprText(call.Args[0]))
	}
}

// ownsAllowed reports whether storing through sel is covered by a
// marker: on the assignment line itself, or on the declaration of the
// field being assigned (resolved positionally, so markers on fields of
// other loaded packages work too).
func (p *Pass) ownsAllowed(sel *ast.SelectorExpr, sitePos token.Pos) bool {
	if p.OwnsMarkedAt(sitePos) {
		return true
	}
	if s, ok := p.TypesInfo.Selections[sel]; ok {
		return p.OwnsMarkedAt(s.Obj().Pos())
	}
	if obj := p.TypesInfo.ObjectOf(sel.Sel); obj != nil {
		return p.OwnsMarkedAt(obj.Pos())
	}
	return false
}

// ownsAllowedIndex covers xs[i] = p (and nested forms like
// s.wheel.slot[level][idx] = p): the marker may sit on the line or on
// the declaration of the slice/array/map ultimately being indexed —
// a field or a variable.
func (p *Pass) ownsAllowedIndex(ix *ast.IndexExpr, sitePos token.Pos) bool {
	if p.OwnsMarkedAt(sitePos) {
		return true
	}
	x := ast.Unparen(ix.X)
	for {
		inner, ok := x.(*ast.IndexExpr)
		if !ok {
			break
		}
		x = ast.Unparen(inner.X)
	}
	switch x := x.(type) {
	case *ast.SelectorExpr:
		return p.ownsAllowed(x, sitePos)
	case *ast.Ident:
		if obj := p.TypesInfo.ObjectOf(x); obj != nil {
			return p.OwnsMarkedAt(obj.Pos())
		}
	}
	return false
}

// sameContainer reports whether lhs (an index expression) and rhs name
// the same root object, i.e. the assignment permutes elements of one
// container rather than transferring ownership into it.
func sameContainer(info *types.Info, lhs *ast.IndexExpr, rhs ast.Expr) bool {
	rix, ok := ast.Unparen(rhs).(*ast.IndexExpr)
	if !ok {
		return false
	}
	lroot, rroot := rootObject(info, lhs.X), rootObject(info, rix.X)
	return lroot != nil && lroot == rroot
}

// rootObject resolves the leftmost identifier of a selector/index
// chain to its object.
func rootObject(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return info.ObjectOf(x)
		case *ast.SelectorExpr:
			// Resolve the full selection (s.due) rather than the root
			// (s): two different fields of one struct are different
			// containers.
			return info.ObjectOf(x.Sel)
		case *ast.IndexExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// typeShort renders *pkg.Type as pkg.Type for messages.
func typeShort(t types.Type) string {
	p, ok := t.(*types.Pointer)
	if !ok {
		return t.String()
	}
	n, ok := p.Elem().(*types.Named)
	if !ok {
		return t.String()
	}
	if n.Obj().Pkg() != nil {
		return "*" + n.Obj().Pkg().Name() + "." + n.Obj().Name()
	}
	return "*" + n.Obj().Name()
}
