package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// HotPath enforces the zero-alloc pin (PR 4/5/7) on functions opted in
// with a //multinet:hotpath doc-comment pragma: no closure allocation,
// no fmt, no map allocation, no append through escaping slices, and no
// interface conversion that boxes a non-pointer-shaped value.
var HotPath = &Analyzer{
	Name: "hotpath",
	Doc: "report heap-allocating constructs (closures, fmt, map literals, " +
		"escaping appends, boxing interface conversions) in //multinet:hotpath functions",
	Run: runHotPath,
}

// hotPathPragma marks a function as part of the allocation-free hot
// path.
const hotPathPragma = "multinet:hotpath"

func runHotPath(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasPragma(fd.Doc, hotPathPragma) {
				continue
			}
			checkHotBody(pass, fd)
		}
	}
	return nil
}

// hasPragma reports whether any line of doc is the given pragma.
func hasPragma(doc *ast.CommentGroup, pragma string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.HasPrefix(strings.TrimPrefix(c.Text, "//"), pragma) {
			return true
		}
	}
	return false
}

func checkHotBody(pass *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "closure allocated in hot path %s: use a package-level func with ScheduleArg-style explicit state instead", fd.Name.Name)
			return false // the literal itself is the allocation; don't double-report its body
		case *ast.CompositeLit:
			if tv, ok := pass.TypesInfo.Types[n]; ok {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					pass.Reportf(n.Pos(), "map literal allocated in hot path %s", fd.Name.Name)
				}
			}
		case *ast.CallExpr:
			checkHotCall(pass, fd, n)
		case *ast.AssignStmt:
			checkHotAssignBoxing(pass, fd, n)
		}
		return true
	})
}

func checkHotCall(pass *Pass, fd *ast.FuncDecl, call *ast.CallExpr) {
	// Explicit conversion to an interface type.
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 && types.IsInterface(tv.Type) {
			reportBoxing(pass, fd, call.Args[0], tv.Type)
		}
		return
	}

	// Builtins: make(map[...]...) allocates; append through a
	// non-local slice expression re-allocates out of the caller's
	// control (append to a plain local keeps the zero-alloc pin as
	// long as the local never escapes — the compiler stack-allocates
	// or the caller amortises it explicitly).
	if isBuiltin(pass.TypesInfo, call.Fun, "make") {
		if tv, ok := pass.TypesInfo.Types[call]; ok {
			if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
				pass.Reportf(call.Pos(), "map allocated with make in hot path %s", fd.Name.Name)
			}
		}
		return
	}
	if isBuiltin(pass.TypesInfo, call.Fun, "append") {
		if len(call.Args) > 0 && !isLocalVar(pass, call.Args[0]) {
			pass.Reportf(call.Pos(), "append to escaping slice %s in hot path %s: growth allocates outside the pool discipline (annotate //lint:allow hotpath if capacity is amortised deliberately)", exprText(call.Args[0]), fd.Name.Name)
		}
		return
	}

	// fmt is allocation-heavy by construction.
	if fn := typesFunc(pass.TypesInfo, call.Fun); fn != nil && funcPkgPath(fn) == "fmt" {
		pass.Reportf(call.Pos(), "fmt.%s call in hot path %s", fn.Name(), fd.Name.Name)
	}

	// Implicit boxing at call boundaries: a concrete non-pointer-shaped
	// argument passed for an interface parameter heap-allocates the
	// data word.
	sig := callSignature(pass.TypesInfo, call)
	if sig == nil {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // forwarding a slice, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if types.IsInterface(pt) {
			reportBoxing(pass, fd, arg, pt)
		}
	}
}

// checkHotAssignBoxing flags assignments that box a concrete value
// into an interface-typed destination.
func checkHotAssignBoxing(pass *Pass, fd *ast.FuncDecl, as *ast.AssignStmt) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i := range as.Lhs {
		lt, ok := pass.TypesInfo.Types[as.Lhs[i]]
		if !ok || !types.IsInterface(lt.Type) {
			continue
		}
		reportBoxing(pass, fd, as.Rhs[i], lt.Type)
	}
}

// reportBoxing reports arg if converting it to the interface type dst
// would heap-allocate: its concrete type is not pointer-shaped (one
// word that the runtime can store directly in the iface data word).
func reportBoxing(pass *Pass, fd *ast.FuncDecl, arg ast.Expr, dst types.Type) {
	tv, ok := pass.TypesInfo.Types[arg]
	if !ok || tv.Type == nil {
		return
	}
	if tv.IsNil() || types.IsInterface(tv.Type) {
		return // nil and interface-to-interface conversions don't box
	}
	if tv.Value != nil {
		return // constants box to static data, not a heap allocation
	}
	if pointerShaped(tv.Type) {
		return
	}
	pass.Reportf(arg.Pos(), "interface conversion boxes %s in hot path %s: pass a pointer-shaped value (the engine's ScheduleArg/Payload slots carry pointers for exactly this reason)", tv.Type.String(), fd.Name.Name)
}

// pointerShaped reports whether values of t fit the interface data
// word without allocation.
func pointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return t.Underlying().(*types.Basic).Kind() == types.UnsafePointer
	}
	return false
}

// isLocalVar reports whether e is a plain identifier naming a
// function-local (non-field, non-package-level) variable.
func isLocalVar(pass *Pass, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	v, ok := pass.TypesInfo.ObjectOf(id).(*types.Var)
	if !ok || v.IsField() {
		return false
	}
	return v.Parent() != nil && v.Parent() != pass.Pkg.Scope() && v.Parent() != types.Universe
}

// callSignature resolves the signature of a (non-conversion,
// non-builtin) call.
func callSignature(info *types.Info, call *ast.CallExpr) *types.Signature {
	tv, ok := info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}
