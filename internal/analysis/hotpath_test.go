package analysis

import "testing"

func TestHotPathGolden(t *testing.T) {
	RunGolden(t, "testdata/hotpath", HotPath)
}
