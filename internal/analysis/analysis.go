// Package analysis is a self-contained static-analysis suite that
// encodes the simulator's engineering invariants — deterministic
// execution, single-owner pooling, and allocation-free hot paths — as
// vet-style analyzers, so violations fail at lint time instead of
// surfacing as golden-hash drift or AllocsPerRun regressions far from
// their cause.
//
// The framework mirrors the golang.org/x/tools/go/analysis API shape
// (Analyzer, Pass, Diagnostic, an analysistest-style golden runner)
// but is built entirely on the standard library: packages are
// enumerated with `go list` and type-checked through the stdlib
// source importer, so the suite needs no external module. The x/tools
// unitchecker protocol (`go vet -vettool`) is deliberately not
// implemented — `cmd/multinetlint` is the supported standalone driver
// (see DESIGN.md, "Enforced invariants").
//
// # Annotation grammar
//
//   - `//multinet:hotpath` in a function's doc comment opts the
//     function into the hotpath analyzer's zero-alloc checks.
//   - `//multinet:owns` on a struct-field declaration (or on/above an
//     assignment line) marks an ownership transfer: storing a pooled
//     pointer there is a deliberate hand-off, not a leak.
//   - `//lint:allow <analyzer> <reason>` on or immediately above a
//     flagged line suppresses that analyzer's diagnostic; suppressions
//     are counted and reported, never silent.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named invariant checker. Run inspects a single
// type-checked package through its Pass and reports findings; Match,
// when non-nil, restricts which import paths the driver applies the
// analyzer to (the analyzer itself stays unconditional so the
// analysistest golden packages exercise it directly).
type Analyzer struct {
	Name string
	Doc  string
	// Match reports whether the driver should run this analyzer on the
	// package with the given import path. Nil means every package.
	Match func(pkgPath string) bool
	Run   func(*Pass) error
}

// Pass carries one package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Comments indexes every comment line of every file loaded in the
	// whole program (not just this package), so cross-package marker
	// lookups — e.g. a //multinet:owns on a field declared elsewhere —
	// resolve as long as the declaring package was loaded too.
	Comments *CommentIndex

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// OwnsMarkedAt reports whether the line holding pos (or the line
// directly above it) carries a //multinet:owns ownership-transfer
// marker.
func (p *Pass) OwnsMarkedAt(pos token.Pos) bool {
	if !pos.IsValid() {
		return false
	}
	position := p.Fset.Position(pos)
	return p.Comments.hasMarker(position.Filename, position.Line, "multinet:owns")
}

// Diagnostic is one finding. Suppressed findings carry the //lint:allow
// reason that silenced them; they still appear in -json output so the
// allowance budget stays visible.
type Diagnostic struct {
	Analyzer   string         `json:"analyzer"`
	Pos        token.Position `json:"-"`
	File       string         `json:"file"`
	Line       int            `json:"line"`
	Col        int            `json:"col"`
	Message    string         `json:"message"`
	Suppressed bool           `json:"suppressed"`
	AllowedBy  string         `json:"allowed_by,omitempty"`
}

// CommentIndex maps file → line → the comment texts whose group starts
// on that line. It backs both //lint:allow suppression and
// //multinet:owns marker lookups.
type CommentIndex struct {
	byFile map[string]map[int][]string
}

// NewCommentIndex builds an empty index.
func NewCommentIndex() *CommentIndex {
	return &CommentIndex{byFile: map[string]map[int][]string{}}
}

// AddFile indexes every comment of f.
func (ci *CommentIndex) AddFile(fset *token.FileSet, f *ast.File) {
	name := fset.Position(f.Package).Filename
	lines := ci.byFile[name]
	if lines == nil {
		lines = map[int][]string{}
		ci.byFile[name] = lines
	}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			line := fset.Position(c.Pos()).Line
			lines[line] = append(lines[line], c.Text)
		}
	}
}

// hasMarker reports whether line or line-1 of file carries a comment
// containing marker (after the comment sigil).
func (ci *CommentIndex) hasMarker(file string, line int, marker string) bool {
	lines := ci.byFile[file]
	if lines == nil {
		return false
	}
	for _, l := range []int{line, line - 1} {
		for _, text := range lines[l] {
			if strings.Contains(text, marker) {
				return true
			}
		}
	}
	return false
}

// allowReason returns the //lint:allow reason suppressing analyzer
// findings on the given file:line (checking the line itself and the
// line above), or "" when none applies.
func (ci *CommentIndex) allowReason(file string, line int, analyzer string) (string, bool) {
	lines := ci.byFile[file]
	if lines == nil {
		return "", false
	}
	for _, l := range []int{line, line - 1} {
		for _, text := range lines[l] {
			body := strings.TrimPrefix(strings.TrimPrefix(text, "//"), "/*")
			body = strings.TrimSpace(body)
			if !strings.HasPrefix(body, "lint:allow") {
				continue
			}
			fields := strings.Fields(body)
			if len(fields) >= 2 && fields[1] == analyzer {
				reason := strings.Join(fields[2:], " ")
				if reason == "" {
					reason = "unspecified"
				}
				return reason, true
			}
		}
	}
	return "", false
}

// RunAnalyzers applies every analyzer (subject to its Match filter) to
// every package and returns the findings sorted by position, with
// //lint:allow suppressions resolved and marked.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	comments := NewCommentIndex()
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			comments.AddFile(pkg.Fset, f)
		}
	}
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.Match != nil && !a.Match(pkg.Path) {
				continue
			}
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Comments:  comments,
				diags:     &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	for i := range diags {
		d := &diags[i]
		d.File = d.Pos.Filename
		d.Line = d.Pos.Line
		d.Col = d.Pos.Column
		if reason, ok := comments.allowReason(d.File, d.Line, d.Analyzer); ok {
			d.Suppressed = true
			d.AllowedBy = reason
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Message < b.Message
	})
	return diags, nil
}

// DefaultAnalyzers returns the full multinetlint suite.
func DefaultAnalyzers() []*Analyzer {
	return []*Analyzer{Determinism, PoolOwn, HotPath}
}

// typesFunc resolves the *types.Func an identifier or selector refers
// to, or nil.
func typesFunc(info *types.Info, expr ast.Expr) *types.Func {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[e].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[e.Sel].(*types.Func)
		return fn
	}
	return nil
}

// funcPkgPath returns the import path of fn's defining package ("" for
// builtins and universe-scope objects).
func funcPkgPath(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}
