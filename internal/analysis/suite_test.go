package analysis

import (
	"testing"
)

// TestRepositorySuiteClean runs the full multinetlint suite over the
// whole repository, so `go test ./...` enforces the same zero-violation
// bar as the CI lint job: seeding a violation — or deleting a
// //multinet:owns or //lint:allow annotation a finding depends on —
// fails this test.
func TestRepositorySuiteClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole repository")
	}
	pkgs, err := TestLoader().LoadPatterns("../..", "./...")
	if err != nil {
		t.Fatalf("loading repository packages: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages; go list pattern broken?", len(pkgs))
	}
	diags, err := RunAnalyzers(pkgs, DefaultAnalyzers())
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	suppressed := 0
	for _, d := range diags {
		if d.Suppressed {
			suppressed++
			continue
		}
		t.Errorf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
	}

	// The invariants are only enforced if the annotations carrying them
	// exist: a sweeping deletion of pragmas must not silently pass.
	idx := NewCommentIndex()
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			idx.AddFile(pkg.Fset, f)
		}
	}
	if n := idx.CountMarker("multinet:hotpath"); n < 10 {
		t.Errorf("found %d //multinet:hotpath pragmas, want >= 10 (netem admit/deliver, tcp dispatch/ack, mptcp rank/admit, wheel schedule/fire must stay annotated)", n)
	}
	if n := idx.CountMarker("multinet:owns"); n < 5 {
		t.Errorf("found %d //multinet:owns markers, want >= 5", n)
	}
	if suppressed == 0 {
		t.Errorf("no suppressed findings: the //lint:allow exceptions documented in DESIGN.md have disappeared")
	}
}
