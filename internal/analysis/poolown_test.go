package analysis

import "testing"

func TestPoolOwnGolden(t *testing.T) {
	RunGolden(t, "testdata/poolown", PoolOwn)
}
