package analysis

import "testing"

func TestDeterminismGolden(t *testing.T) {
	RunGolden(t, "testdata/determinism", Determinism)
}

func TestIsEnginePackage(t *testing.T) {
	cases := []struct {
		path string
		want bool
	}{
		{"multinet/internal/simnet", true},
		{"multinet/internal/tcp", true},
		{"multinet/internal/experiments/engine", true},
		{"multinet/internal/stats", false},
		{"multinet/internal/analysis", false},
		{"multinet/cmd/multinetlint", false},
		{"multinet/internal/tcpdump", false}, // prefix must break at a path separator
	}
	for _, c := range cases {
		if got := IsEnginePackage(c.path); got != c.want {
			t.Errorf("IsEnginePackage(%q) = %v, want %v", c.path, got, c.want)
		}
	}
}
