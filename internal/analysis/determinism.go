package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// enginePackages are the import paths (and their subpackages) whose
// code must be bit-identically reproducible: everything that executes
// between a seed and an experiment's output hash. cmd/* and the
// offline tooling (dataset generation, capture rendering) may use wall
// clocks and global randomness freely.
var enginePackages = []string{
	"multinet/internal/simnet",
	"multinet/internal/netem",
	"multinet/internal/tcp",
	"multinet/internal/mptcp",
	"multinet/internal/core",
	"multinet/internal/phy",
	"multinet/internal/oracle",
	"multinet/internal/experiments",
	"multinet/internal/replay",
	// Fault schedules compile onto simulator timers and draw only from
	// sim.RNG("faults"); the invariant checker reads quiescent state.
	// Both sit squarely between seed and golden hash.
	"multinet/internal/faults",
	// The selector package (policy + sharded estimate store) takes time
	// as explicit caller-supplied instants, so it holds the same
	// no-wall-clock contract as the engine; internal/serve, which owns
	// the service's real clock, stays outside.
	"multinet/internal/selector",
}

// IsEnginePackage reports whether path is inside the deterministic
// simulation engine.
func IsEnginePackage(path string) bool {
	for _, p := range enginePackages {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

// randAllowed are the package-level math/rand functions that do not
// touch the global source: explicitly seeded generator constructors.
var randAllowed = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

// Determinism enforces PR 1's bit-identical-sweep guarantee: no wall
// clocks, no global randomness, no goroutines outside the engine
// worker pool, and no output-feeding iteration over unordered maps
// inside the simulation engine.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc: "forbid wall clocks (time.Now/Since/Until), global math/rand, " +
		"go statements, and order-sensitive map iteration in engine packages",
	Match: IsEnginePackage,
	Run:   runDeterminism,
}

func runDeterminism(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.Ident:
				checkDeterministicIdent(pass, n)
			case *ast.GoStmt:
				pass.Reportf(n.Pos(), "go statement in engine code: all concurrency must go through the engine.Sweep worker pool (or carry a //lint:allow determinism annotation)")
			}
			return true
		})
		// Range-over-map detection needs each loop's trailing sibling
		// statements (to accept the collect-then-sort idiom), so it
		// walks statement lists rather than bare nodes. Function
		// literals are separate roots: a closure running inside the
		// engine is engine code too.
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch n := n.(type) {
			case *ast.FuncDecl:
				body = n.Body
			case *ast.FuncLit:
				body = n.Body
			default:
				return true
			}
			if body != nil {
				walkStmtLists(body.List, func(list []ast.Stmt, i int) {
					if rs, ok := list[i].(*ast.RangeStmt); ok {
						checkMapRange(pass, rs, list[i+1:])
					}
				})
			}
			return true
		})
	}
	return nil
}

// checkDeterministicIdent flags references (not just calls — storing
// time.Now in a func value is just as non-deterministic) to wall-clock
// and global-randomness functions.
func checkDeterministicIdent(pass *Pass, id *ast.Ident) {
	fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
	if !ok {
		return
	}
	sig, _ := fn.Type().(*types.Signature)
	isMethod := sig != nil && sig.Recv() != nil
	switch funcPkgPath(fn) {
	case "time":
		switch fn.Name() {
		case "Now", "Since", "Until":
			pass.Reportf(id.Pos(), "wall clock time.%s in engine code: use the simulated clock (simnet.Sim.Now)", fn.Name())
		}
	case "math/rand", "math/rand/v2":
		if isMethod || randAllowed[fn.Name()] {
			return // seeded *rand.Rand methods and constructors are deterministic
		}
		pass.Reportf(id.Pos(), "global math/rand %s in engine code: draw from a seeded source (simnet.Sim.RNG)", fn.Name())
	}
}

// walkStmtLists calls visit(list, i) for every statement position in
// every statement list syntactically nested under stmts. It does not
// descend into function literals — those are separate walk roots.
func walkStmtLists(stmts []ast.Stmt, visit func(list []ast.Stmt, i int)) {
	for i := range stmts {
		visit(stmts, i)
	}
	for _, s := range stmts {
		walkStmtBodies(s, visit)
	}
}

// walkStmtBodies recurses into the statement lists owned by s.
func walkStmtBodies(s ast.Stmt, visit func(list []ast.Stmt, i int)) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		walkStmtLists(s.List, visit)
	case *ast.IfStmt:
		walkStmtLists(s.Body.List, visit)
		if s.Else != nil {
			walkStmtBodies(s.Else, visit)
		}
	case *ast.ForStmt:
		walkStmtLists(s.Body.List, visit)
	case *ast.RangeStmt:
		walkStmtLists(s.Body.List, visit)
	case *ast.SwitchStmt:
		walkClauseBodies(s.Body, visit)
	case *ast.TypeSwitchStmt:
		walkClauseBodies(s.Body, visit)
	case *ast.SelectStmt:
		walkClauseBodies(s.Body, visit)
	case *ast.LabeledStmt:
		walkStmtBodies(s.Stmt, visit)
	}
}

func walkClauseBodies(body *ast.BlockStmt, visit func(list []ast.Stmt, i int)) {
	if body == nil {
		return
	}
	for _, clause := range body.List {
		switch c := clause.(type) {
		case *ast.CaseClause:
			walkStmtLists(c.Body, visit)
		case *ast.CommClause:
			walkStmtLists(c.Body, visit)
		}
	}
}

// checkMapRange flags `range` over a map unless the loop body is
// order-insensitive: commutative integer/boolean accumulation, per-key
// writes to the ranged map itself, or key collection into a slice that
// a following sibling statement sorts.
func checkMapRange(pass *Pass, rs *ast.RangeStmt, following []ast.Stmt) {
	tv, ok := pass.TypesInfo.Types[rs.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	ins := &mapRangeChecker{
		pass:      pass,
		mapObj:    exprObject(pass.TypesInfo, rs.X),
		keyObj:    exprObject(pass.TypesInfo, rs.Key),
		following: following,
	}
	if ins.blockOK(rs.Body) {
		return
	}
	pass.Reportf(rs.Pos(), "iteration over map %s has an order-sensitive body: map range order is random — sort the keys first, make the body commutative, or annotate //lint:allow determinism with why order cannot leak", exprText(rs.X))
}

// mapRangeChecker decides whether a map-range body is order-
// insensitive.
type mapRangeChecker struct {
	pass      *Pass
	mapObj    types.Object // object of the ranged map when it is a plain identifier
	keyObj    types.Object // object of the loop's key variable
	following []ast.Stmt   // siblings after the range loop, for the sort-after idiom
}

func (mc *mapRangeChecker) blockOK(blk *ast.BlockStmt) bool {
	for _, s := range blk.List {
		if !mc.stmtOK(s) {
			return false
		}
	}
	return true
}

func (mc *mapRangeChecker) stmtOK(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.IncDecStmt:
		return mc.integerTyped(s.X)
	case *ast.AssignStmt:
		return mc.assignOK(s)
	case *ast.ExprStmt:
		return mc.deleteFromRangedMap(s.X)
	case *ast.IfStmt:
		if s.Init != nil || !mc.pureCond(s.Cond) {
			return false
		}
		if !mc.blockOK(s.Body) {
			return false
		}
		switch e := s.Else.(type) {
		case nil:
			return true
		case *ast.BlockStmt:
			return mc.blockOK(e)
		case *ast.IfStmt:
			return mc.stmtOK(e)
		}
		return false
	case *ast.BlockStmt:
		return mc.blockOK(s)
	case *ast.BranchStmt:
		// continue skips one key; break makes the processed subset
		// depend on iteration order.
		return s.Tok == token.CONTINUE
	case *ast.EmptyStmt:
		return true
	}
	return false
}

// assignOK accepts commutative accumulation (+=, -=, |=, &=, ^= on
// integers, ||/&&-style flag setting via |= on bools is covered by the
// integer check's boolean sibling), per-key stores into the ranged map,
// and slice collection that is sorted afterwards.
func (mc *mapRangeChecker) assignOK(s *ast.AssignStmt) bool {
	if len(s.Lhs) != 1 || len(s.Rhs) > 1 {
		return false
	}
	lhs := s.Lhs[0]
	switch s.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN,
		token.XOR_ASSIGN, token.AND_NOT_ASSIGN:
		// Per-key accumulation into any map indexed by the loop key is
		// order-insensitive regardless of element type: each key's
		// entry receives exactly one update per pass, so even float
		// rounding cannot observe iteration order.
		if ix, ok := lhs.(*ast.IndexExpr); ok && mc.isLoopKey(ix.Index) {
			return mc.pureCond(s.Rhs[0])
		}
		return mc.integerTyped(lhs) && mc.pureCond(s.Rhs[0])
	case token.ASSIGN:
		// m[k] = v on the ranged map: each key is visited exactly once,
		// so store order cannot matter.
		if ix, ok := lhs.(*ast.IndexExpr); ok && mc.isRangedMap(ix.X) {
			return mc.pureCond(s.Rhs[0])
		}
		// m2[k] = v — a per-key projection into another map, indexed by
		// the loop key itself: each key writes a distinct entry exactly
		// once, so iteration order cannot leak.
		if ix, ok := lhs.(*ast.IndexExpr); ok && mc.isLoopKey(ix.Index) {
			return mc.pureCond(s.Rhs[0])
		}
		// xs = append(xs, ...) collected for a later sort.
		if id, ok := lhs.(*ast.Ident); ok {
			if call, ok := s.Rhs[0].(*ast.CallExpr); ok && isBuiltin(mc.pass.TypesInfo, call.Fun, "append") {
				if base, ok := call.Args[0].(*ast.Ident); ok && base.Name == id.Name {
					return mc.sortedAfter(id)
				}
			}
		}
	}
	return false
}

// sortedAfter reports whether a sibling statement after the loop sorts
// the collected slice (sort.* or slices.Sort* with the slice as an
// argument).
func (mc *mapRangeChecker) sortedAfter(slice *ast.Ident) bool {
	obj := mc.pass.TypesInfo.ObjectOf(slice)
	if obj == nil {
		return false
	}
	for _, s := range mc.following {
		es, ok := s.(*ast.ExprStmt)
		if !ok {
			continue
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok {
			continue
		}
		fn := typesFunc(mc.pass.TypesInfo, call.Fun)
		if pkg := funcPkgPath(fn); pkg != "sort" && pkg != "slices" {
			continue
		}
		for _, arg := range call.Args {
			if id, ok := arg.(*ast.Ident); ok && mc.pass.TypesInfo.ObjectOf(id) == obj {
				return true
			}
		}
	}
	return false
}

// isLoopKey reports whether e is exactly the loop's key variable.
func (mc *mapRangeChecker) isLoopKey(e ast.Expr) bool {
	if id, ok := ast.Unparen(e).(*ast.Ident); ok && mc.keyObj != nil {
		return mc.pass.TypesInfo.ObjectOf(id) == mc.keyObj
	}
	return false
}

func (mc *mapRangeChecker) isRangedMap(e ast.Expr) bool {
	if id, ok := ast.Unparen(e).(*ast.Ident); ok && mc.mapObj != nil {
		return mc.pass.TypesInfo.ObjectOf(id) == mc.mapObj
	}
	return false
}

// deleteFromRangedMap accepts delete(m, k) on the ranged map (the one
// mutation the spec explicitly permits during iteration).
func (mc *mapRangeChecker) deleteFromRangedMap(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok || !isBuiltin(mc.pass.TypesInfo, call.Fun, "delete") || len(call.Args) != 2 {
		return false
	}
	return mc.isRangedMap(call.Args[0])
}

// pureCond accepts expressions free of calls (len/cap and type
// conversions excepted): a call in a condition or operand could carry
// order-dependent side effects into the loop.
func (mc *mapRangeChecker) pureCond(e ast.Expr) bool {
	pure := true
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isBuiltin(mc.pass.TypesInfo, call.Fun, "len") || isBuiltin(mc.pass.TypesInfo, call.Fun, "cap") {
			return true
		}
		if tv, ok := mc.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
			return true // type conversion, not a call
		}
		pure = false
		return false
	})
	return pure
}

// integerTyped accepts integer and boolean lvalues: + - | & ^ on
// integers and flag-style boolean accumulation are commutative, while
// float accumulation is order-sensitive (rounding).
func (mc *mapRangeChecker) integerTyped(e ast.Expr) bool {
	tv, ok := mc.pass.TypesInfo.Types[e]
	if !ok {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return b.Info()&(types.IsInteger|types.IsBoolean) != 0
}

// exprObject resolves a plain-identifier expression to its object.
func exprObject(info *types.Info, e ast.Expr) types.Object {
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		return info.ObjectOf(id)
	}
	return nil
}

// exprText renders a short source form of e for messages.
func exprText(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprText(e.X) + "." + e.Sel.Name
	case *ast.CallExpr:
		return exprText(e.Fun) + "(...)"
	case *ast.IndexExpr:
		return exprText(e.X) + "[...]"
	}
	return "expression"
}

// isBuiltin reports whether fun refers to the named universe builtin.
func isBuiltin(info *types.Info, fun ast.Expr, name string) bool {
	id, ok := ast.Unparen(fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	obj := info.ObjectOf(id)
	_, isB := obj.(*types.Builtin)
	return isB
}
