// Package capture is the simulation's tcpdump: it records packets as
// they enter and leave interfaces and offers the analyses the paper
// performs on its traces — average-throughput-over-time curves (paper
// Figs. 9-10), cumulative-acked-bytes flow sizing (Figs. 11-12), and
// packet transmission rasters (Fig. 15).
package capture

import (
	"fmt"
	"time"

	"multinet/internal/netem"
	"multinet/internal/simnet"
	"multinet/internal/stats"
	"multinet/internal/tcp"
)

// Event distinguishes packets entering a link (Send) from packets
// delivered by it (Recv).
type Event int

// Event kinds.
const (
	Send Event = iota
	Recv
)

// String names the event kind.
func (e Event) String() string {
	if e == Send {
		return "send"
	}
	return "recv"
}

// Record is one captured packet observation.
type Record struct {
	T          time.Duration
	Event      Event
	Iface      string
	Dir        netem.Direction
	Size       int
	Flow       string
	Flags      tcp.Flags
	Seq, Ack   uint64
	PayloadLen int
	HasOpt     bool
}

// IsData reports whether the packet carried payload bytes.
func (r *Record) IsData() bool { return r.PayloadLen > 0 }

// IsPureAck reports whether the packet was a bare acknowledgement.
func (r *Record) IsPureAck() bool {
	return r.PayloadLen == 0 && r.Flags.Has(tcp.FlagACK) &&
		!r.Flags.Has(tcp.FlagSYN) && !r.Flags.Has(tcp.FlagFIN)
}

// String renders the record tcpdump-style.
func (r *Record) String() string {
	return fmt.Sprintf("%12v %s %s/%s %s seq=%d ack=%d len=%d",
		r.T, r.Event, r.Iface, r.Dir, r.Flags, r.Seq, r.Ack, r.PayloadLen)
}

// Sniffer collects records from one or more interfaces.
type Sniffer struct {
	sim     *simnet.Sim
	records []Record
}

// NewSniffer creates an empty sniffer. The record buffer is pre-sized:
// any attached experiment captures at least a handshake's worth of
// packets, and starting at a page of records keeps the early growth
// reallocations out of the per-packet tap path.
func NewSniffer(sim *simnet.Sim) *Sniffer {
	return &Sniffer{sim: sim, records: make([]Record, 0, 512)}
}

// Attach installs taps on the interface for both send and receive
// events.
func (s *Sniffer) Attach(iface *netem.Iface) {
	iface.AddSendTap(func(p *netem.Packet) { s.observe(Send, p) })
	iface.AddRecvTap(func(p *netem.Packet) { s.observe(Recv, p) })
}

func (s *Sniffer) observe(ev Event, p *netem.Packet) {
	rec := Record{
		T:     s.sim.Now(),
		Event: ev,
		Iface: p.Iface,
		Dir:   p.Dir,
		Size:  p.Size,
	}
	if seg, ok := p.Payload.(*tcp.Segment); ok {
		rec.Flow = seg.Flow
		rec.Flags = seg.Flags
		rec.Seq = seg.Seq
		rec.Ack = seg.Ack
		rec.PayloadLen = seg.PayloadLen
		rec.HasOpt = seg.Opt != nil
	}
	s.records = append(s.records, rec)
}

// Records returns all captured records in time order.
func (s *Sniffer) Records() []Record { return s.records }

// Len returns the number of captured records.
func (s *Sniffer) Len() int { return len(s.records) }

// Reset discards captured records.
func (s *Sniffer) Reset() { s.records = s.records[:0] }

// Filter returns the records matching keep. Single pass: keep may be
// stateful, and Filter runs at analysis time, not on the per-packet
// hot path.
func (s *Sniffer) Filter(keep func(*Record) bool) []Record {
	var out []Record
	for i := range s.records {
		if keep(&s.records[i]) {
			out = append(out, s.records[i])
		}
	}
	return out
}

// ByIface returns records observed on the named interface.
func (s *Sniffer) ByIface(name string) []Record {
	return s.Filter(func(r *Record) bool { return r.Iface == name })
}

// ByFlowPrefix returns records whose flow ID starts with prefix
// (MPTCP subflows share the connection prefix).
func (s *Sniffer) ByFlowPrefix(prefix string) []Record {
	return s.Filter(func(r *Record) bool {
		return len(r.Flow) >= len(prefix) && r.Flow[:len(prefix)] == prefix
	})
}

// ThroughputOverTime computes the paper's Fig. 9/10 metric over the
// given records: at each step, the average throughput in Mbit/s from
// origin to that instant, counting payload bytes of Recv data events.
func ThroughputOverTime(records []Record, origin, until time.Duration, step time.Duration) []stats.Point {
	if step <= 0 {
		panic("capture: step must be positive")
	}
	var pts []stats.Point
	var bytes int64
	i := 0
	for t := origin + step; t <= until; t += step {
		for i < len(records) && records[i].T <= t {
			r := &records[i]
			if r.Event == Recv && r.PayloadLen > 0 {
				bytes += int64(r.PayloadLen)
			}
			i++
		}
		elapsed := (t - origin).Seconds()
		if elapsed > 0 {
			pts = append(pts, stats.Point{
				X: (t - origin).Seconds(),
				Y: float64(bytes) * 8 / elapsed / 1e6,
			})
		}
	}
	return pts
}

// AckProgress extracts (time, cumulative acked bytes) points from pure
// ACKs received for a flow — the paper's flow-size measurement
// (Section 3.4.2).
func AckProgress(records []Record, flow string) []stats.Point {
	var pts []stats.Point
	var maxAck uint64
	for i := range records {
		r := &records[i]
		if r.Flow != flow || r.Event != Recv || !r.Flags.Has(tcp.FlagACK) {
			continue
		}
		if r.Ack > maxAck {
			maxAck = r.Ack
			pts = append(pts, stats.Point{X: r.T.Seconds(), Y: float64(maxAck)})
		}
	}
	return pts
}

// Raster returns the event instants on an interface — the vertical
// lines of the paper's Fig. 15 packet-transmission panels.
func Raster(records []Record, iface string) []time.Duration {
	var out []time.Duration
	for i := range records {
		if records[i].Iface == iface {
			out = append(out, records[i].T)
		}
	}
	return out
}

// RasterString renders a raster as a fixed-width ASCII strip ('|' where
// at least one packet event falls in the bucket), the textual analogue
// of Fig. 15.
func RasterString(events []time.Duration, until time.Duration, cols int) string {
	if cols <= 0 || until <= 0 {
		return ""
	}
	buf := make([]byte, cols)
	for i := range buf {
		buf[i] = ' '
	}
	for _, t := range events {
		if t < 0 || t > until {
			continue
		}
		i := int(float64(t) / float64(until) * float64(cols))
		if i >= cols {
			i = cols - 1
		}
		buf[i] = '|'
	}
	return string(buf)
}

// TotalPayload sums payload bytes over records matching the event kind.
func TotalPayload(records []Record, ev Event) int64 {
	var n int64
	for i := range records {
		if records[i].Event == ev {
			n += int64(records[i].PayloadLen)
		}
	}
	return n
}
