package capture

import (
	"strings"
	"testing"
	"time"

	"multinet/internal/netem"
	"multinet/internal/simnet"
	"multinet/internal/tcp"
)

// buildTransfer runs a server→client download over one interface with a
// sniffer attached and returns the sniffer.
func buildTransfer(t *testing.T, size int) (*Sniffer, *simnet.Sim) {
	t.Helper()
	sim := simnet.New(9)
	up := netem.NewFixedLink(sim, 10, netem.LinkConfig{PropDelay: 10 * time.Millisecond})
	down := netem.NewFixedLink(sim, 10, netem.LinkConfig{PropDelay: 10 * time.Millisecond})
	iface := netem.NewIface(sim, "wifi", up, down)
	sn := NewSniffer(sim)
	sn.Attach(iface)
	client := tcp.NewStack(sim, tcp.ClientSide)
	server := tcp.NewStack(sim, tcp.ServerSide)
	client.Bind(iface)
	server.Bind(iface)
	server.Accept = func(c *tcp.Conn) {
		c.SetCallbacks(tcp.Callbacks{OnEstablished: func(c *tcp.Conn) {
			c.Send(size)
			c.Close()
		}})
	}
	client.Dial(iface, "mp-1", tcp.Config{})
	sim.Run()
	return sn, sim
}

func TestSnifferSeesHandshake(t *testing.T) {
	sn, _ := buildTransfer(t, 10_000)
	recs := sn.Records()
	if len(recs) < 6 {
		t.Fatalf("captured %d records, want at least handshake+data", len(recs))
	}
	// First record: SYN sent upward.
	if !recs[0].Flags.Has(tcp.FlagSYN) || recs[0].Event != Send || recs[0].Dir != netem.Up {
		t.Fatalf("first record = %+v, want sent SYN up", recs[0])
	}
	// A SYN-ACK must appear.
	sawSynAck := false
	for i := range recs {
		if recs[i].Flags.Has(tcp.FlagSYN|tcp.FlagACK) && recs[i].Dir == netem.Down {
			sawSynAck = true
		}
	}
	if !sawSynAck {
		t.Fatal("no SYN-ACK captured")
	}
}

func TestRecordsTimeOrdered(t *testing.T) {
	sn, _ := buildTransfer(t, 50_000)
	recs := sn.Records()
	for i := 1; i < len(recs); i++ {
		if recs[i].T < recs[i-1].T {
			t.Fatalf("records out of order at %d", i)
		}
	}
}

func TestTotalPayloadMatchesTransfer(t *testing.T) {
	const size = 100_000
	sn, _ := buildTransfer(t, size)
	recvd := TotalPayload(sn.Filter(func(r *Record) bool {
		return r.Dir == netem.Down && r.Event == Recv
	}), Recv)
	if recvd < size {
		t.Fatalf("captured %d payload bytes, want >= %d", recvd, size)
	}
}

func TestThroughputOverTimeMonotoneRamp(t *testing.T) {
	const size = 400_000
	sn, sim := buildTransfer(t, size)
	recs := sn.Filter(func(r *Record) bool { return r.Dir == netem.Down })
	pts := ThroughputOverTime(recs, 0, sim.Now(), 50*time.Millisecond)
	if len(pts) < 4 {
		t.Fatalf("too few points: %d", len(pts))
	}
	// The curve should start low (slow start) and end near steady state.
	if pts[0].Y >= pts[len(pts)-1].Y {
		t.Fatalf("throughput did not ramp: first=%.2f last=%.2f", pts[0].Y, pts[len(pts)-1].Y)
	}
	// Average throughput never exceeds the link rate.
	for _, p := range pts {
		if p.Y > 10.5 {
			t.Fatalf("avg throughput %.2f exceeds link rate", p.Y)
		}
	}
}

func TestAckProgressMonotone(t *testing.T) {
	const size = 200_000
	sn, _ := buildTransfer(t, size)
	pts := AckProgress(sn.Records(), "mp-1")
	if len(pts) == 0 {
		t.Fatal("no ack progress points")
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Y <= pts[i-1].Y {
			t.Fatal("ack progress not strictly increasing")
		}
	}
	final := pts[len(pts)-1].Y
	// Final cumulative ack covers data + SYN + FIN.
	if final < size {
		t.Fatalf("final acked %v < size %d", final, size)
	}
}

func TestByIfaceAndFlowPrefix(t *testing.T) {
	sn, _ := buildTransfer(t, 10_000)
	if len(sn.ByIface("wifi")) != sn.Len() {
		t.Fatal("ByIface(wifi) should match all records")
	}
	if len(sn.ByIface("lte")) != 0 {
		t.Fatal("ByIface(lte) should be empty")
	}
	if len(sn.ByFlowPrefix("mp-")) != sn.Len() {
		t.Fatal("ByFlowPrefix(mp-) should match all records")
	}
}

func TestRaster(t *testing.T) {
	sn, sim := buildTransfer(t, 50_000)
	events := Raster(sn.Records(), "wifi")
	if len(events) != sn.Len() {
		t.Fatalf("raster has %d events, want %d", len(events), sn.Len())
	}
	strip := RasterString(events, sim.Now(), 60)
	if len(strip) != 60 {
		t.Fatalf("strip length %d, want 60", len(strip))
	}
	if !strings.Contains(strip, "|") {
		t.Fatal("raster strip has no events")
	}
}

func TestRasterStringBuckets(t *testing.T) {
	events := []time.Duration{0, time.Second, 9 * time.Second}
	strip := RasterString(events, 10*time.Second, 10)
	want := "||       |"
	if strip != want {
		t.Fatalf("strip = %q, want %q", strip, want)
	}
}

func TestSnifferReset(t *testing.T) {
	sn, _ := buildTransfer(t, 10_000)
	if sn.Len() == 0 {
		t.Fatal("expected records")
	}
	sn.Reset()
	if sn.Len() != 0 {
		t.Fatal("reset did not clear records")
	}
}
