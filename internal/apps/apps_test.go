package apps

import "testing"

func TestClassificationMatchesPaper(t *testing.T) {
	// Paper Section 4.2 / Fig. 17: launches and CNN click are
	// short-flow dominated; IMDB click and Dropbox click are long-flow
	// dominated.
	cases := []struct {
		app  App
		long bool
	}{
		{CNNLaunch, false},
		{CNNClick, false},
		{IMDBLaunch, false},
		{IMDBClick, true},
		{DropboxLaunch, false},
		{DropboxClick, true},
	}
	for _, c := range cases {
		if got := c.app.LongFlowDominated(); got != c.long {
			t.Errorf("%s %s: LongFlowDominated = %v, want %v",
				c.app.Name, c.app.Interaction, got, c.long)
		}
	}
}

func TestLabels(t *testing.T) {
	if CNNLaunch.Label() != "short-flow dominated" {
		t.Fatal("CNN launch label wrong")
	}
	if DropboxClick.Label() != "long-flow dominated" {
		t.Fatal("Dropbox click label wrong")
	}
}

func TestFlowCountsMatchFigure17Scale(t *testing.T) {
	// Approximate connection counts from the Fig. 17 y-axes.
	counts := map[string]struct{ min, max int }{
		"cnn/launch":     {15, 25},
		"cnn/click":      {20, 30},
		"imdb/launch":    {10, 18},
		"imdb/click":     {25, 40},
		"dropbox/launch": {4, 8},
		"dropbox/click":  {8, 14},
	}
	for _, a := range All {
		key := a.Name + "/" + a.Interaction
		want := counts[key]
		if n := len(a.Flows); n < want.min || n > want.max {
			t.Errorf("%s: %d flows, want %d-%d", key, n, want.min, want.max)
		}
	}
}

func TestDependenciesAreValid(t *testing.T) {
	for _, a := range All {
		ids := map[int]bool{}
		for _, f := range a.Flows {
			if ids[f.ID] {
				t.Fatalf("%s/%s: duplicate flow ID %d", a.Name, a.Interaction, f.ID)
			}
			ids[f.ID] = true
		}
		for _, f := range a.Flows {
			if f.DependsOn >= 0 && !ids[f.DependsOn] {
				t.Fatalf("%s/%s: flow %d depends on missing %d", a.Name, a.Interaction, f.ID, f.DependsOn)
			}
			if f.DependsOn == f.ID {
				t.Fatalf("%s/%s: flow %d depends on itself", a.Name, a.Interaction, f.ID)
			}
			if f.RequestBytes <= 0 || f.ResponseBytes <= 0 {
				t.Fatalf("%s/%s: flow %d has non-positive sizes", a.Name, a.Interaction, f.ID)
			}
		}
	}
}

func TestFirstFlowIsRoot(t *testing.T) {
	for _, a := range All {
		if a.Flows[0].DependsOn != -1 || a.Flows[0].Start != 0 {
			t.Fatalf("%s/%s: first flow must be the root", a.Name, a.Interaction)
		}
	}
}

func TestShortAppsSmallerThanLongApps(t *testing.T) {
	if CNNLaunch.TotalBytes() >= DropboxClick.TotalBytes() {
		t.Fatal("CNN launch should move far fewer bytes than Dropbox click")
	}
	if DropboxClick.TotalBytes() < 8<<20 {
		t.Fatalf("Dropbox click moves %d bytes, want > 8 MB (the PDF)", DropboxClick.TotalBytes())
	}
}
