// Package apps models the mobile-app traffic patterns of the paper's
// Section 4: the HTTP connections an app opens on launch or on a user
// interaction, with sizes, think times and dependencies shaped on the
// paper's Fig. 17 rasters.
//
// The real study recorded CNN, IMDB and Dropbox inside an Android
// emulator with Mahimahi's RecordShell; those recordings are not
// published, so each pattern here is a structural model: the number of
// connections, their relative start times and dependency structure,
// and the short-flow/long-flow byte mix are taken from the figure.
// The paper's classification survives the substitution because it only
// depends on that mix: CNN/IMDB launches are "short-flow dominated",
// IMDB click (movie trailer) and Dropbox click (PDF download) are
// "long-flow dominated".
package apps

import "time"

// Flow is one HTTP connection in an app pattern.
type Flow struct {
	// ID is the connection index (the paper's Fig. 17 y-axis).
	ID int
	// Start is the connection's open time relative to the interaction
	// start, or relative to the completion of DependsOn when that is
	// non-negative.
	Start time.Duration
	// DependsOn is the Flow ID whose response must complete before this
	// flow starts (-1 for none) — the web-style dependency that makes
	// app response time network-sensitive.
	DependsOn int
	// RequestBytes is the HTTP request size.
	RequestBytes int
	// ResponseBytes is the HTTP response size.
	ResponseBytes int
	// Think is the server-side processing delay before the response.
	Think time.Duration
}

// App is one recorded traffic pattern.
type App struct {
	// Name identifies the app ("cnn", "imdb", "dropbox").
	Name string
	// Interaction is "launch" or "click".
	Interaction string
	// Flows is the connection set.
	Flows []Flow
}

// LongFlowThreshold classifies a connection as "long" (paper Section
// 4.2: connections transferring significant data for several seconds).
const LongFlowThreshold = 500 << 10

// TotalBytes sums request+response bytes over all flows.
func (a App) TotalBytes() int {
	n := 0
	for _, f := range a.Flows {
		n += f.RequestBytes + f.ResponseBytes
	}
	return n
}

// LongFlowDominated reports whether any single connection moves more
// than LongFlowThreshold bytes — the paper's two-way classification.
func (a App) LongFlowDominated() bool {
	for _, f := range a.Flows {
		if f.RequestBytes+f.ResponseBytes > LongFlowThreshold {
			return true
		}
	}
	return false
}

// Label returns "short-flow dominated" or "long-flow dominated".
func (a App) Label() string {
	if a.LongFlowDominated() {
		return "long-flow dominated"
	}
	return "short-flow dominated"
}

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

// CNNLaunch is the paper's short-flow-dominated replay workload
// (Fig. 17a): ~20 connections, an index page followed by two waves of
// small resource fetches.
var CNNLaunch = App{
	Name: "cnn", Interaction: "launch",
	Flows: buildWaves(waveSpec{
		index:      Flow{RequestBytes: 600, ResponseBytes: 40 << 10, Think: ms(60)},
		firstWave:  9,
		firstSize:  9 << 10,
		secondWave: 6,
		secondSize: 12 << 10,
		thirdWave:  4,
		thirdSize:  10 << 10,
	}),
}

// CNNClick models a user tapping an article (Fig. 17b): similar to
// launch with a few more connections.
var CNNClick = App{
	Name: "cnn", Interaction: "click",
	Flows: buildWaves(waveSpec{
		index:      Flow{RequestBytes: 700, ResponseBytes: 30 << 10, Think: ms(50)},
		firstWave:  12,
		firstSize:  8 << 10,
		secondWave: 7,
		secondSize: 10 << 10,
		thirdWave:  5,
		thirdSize:  9 << 10,
	}),
}

// IMDBLaunch (Fig. 17c): ~14 small connections.
var IMDBLaunch = App{
	Name: "imdb", Interaction: "launch",
	Flows: buildWaves(waveSpec{
		index:      Flow{RequestBytes: 500, ResponseBytes: 35 << 10, Think: ms(70)},
		firstWave:  7,
		firstSize:  9 << 10,
		secondWave: 4,
		secondSize: 12 << 10,
		thirdWave:  2,
		thirdSize:  10 << 10,
	}),
}

// IMDBClick (Fig. 17d): the user plays a movie trailer; connection 30
// downloads the whole trailer in one request — long-flow dominated.
var IMDBClick = App{
	Name: "imdb", Interaction: "click",
	Flows: append(
		buildWaves(waveSpec{
			index:      Flow{RequestBytes: 600, ResponseBytes: 50 << 10, Think: ms(60)},
			firstWave:  24,
			firstSize:  15 << 10,
			secondWave: 5,
			secondSize: 25 << 10,
		}),
		Flow{ID: 30, Start: ms(150), DependsOn: 0, RequestBytes: 800,
			ResponseBytes: 6 << 20, Think: ms(80)}, // the trailer
	),
}

// DropboxLaunch (Fig. 17e): a handful of small metadata connections.
var DropboxLaunch = App{
	Name: "dropbox", Interaction: "launch",
	Flows: buildWaves(waveSpec{
		index:      Flow{RequestBytes: 400, ResponseBytes: 25 << 10, Think: ms(80)},
		firstWave:  4,
		firstSize:  12 << 10,
		secondWave: 0,
	}),
}

// DropboxClick is the paper's long-flow-dominated replay workload
// (Fig. 17f): the user opens a PDF; connection 8 downloads the whole
// file while a few metadata connections chatter.
var DropboxClick = App{
	Name: "dropbox", Interaction: "click",
	Flows: append(
		buildWaves(waveSpec{
			index:      Flow{RequestBytes: 500, ResponseBytes: 20 << 10, Think: ms(70)},
			firstWave:  7,
			firstSize:  10 << 10,
			secondWave: 0,
		}),
		Flow{ID: 8, Start: ms(120), DependsOn: 0, RequestBytes: 700,
			ResponseBytes: 9 << 20, Think: ms(100)}, // the PDF
	),
}

// All lists every modelled pattern, in the paper's Fig. 17 order.
var All = []App{CNNLaunch, CNNClick, IMDBLaunch, IMDBClick, DropboxLaunch, DropboxClick}

// waveSpec parameterises the common launch-pattern shape: an index
// fetch followed by successive dependent waves of small resource
// fetches. Web-style pages chain several levels deep, which is what
// makes short-flow app response times RTT-bound rather than
// capacity-bound (the regime of the paper's Figs. 18/19).
type waveSpec struct {
	index      Flow
	firstWave  int
	firstSize  int
	secondWave int
	secondSize int
	thirdWave  int
	thirdSize  int
}

func buildWaves(w waveSpec) []Flow {
	flows := []Flow{{
		ID: 0, Start: 0, DependsOn: -1,
		RequestBytes:  w.index.RequestBytes,
		ResponseBytes: w.index.ResponseBytes,
		Think:         w.index.Think,
	}}
	id := 1
	wave := func(count, size, dependsOn int) int {
		lead := id
		for i := 0; i < count; i++ {
			flows = append(flows, Flow{
				ID: id,
				// Staggered opens, spread as in the paper's Fig. 17
				// rasters where connections start over several seconds.
				Start:         ms(40 + 70*i),
				DependsOn:     dependsOn,
				RequestBytes:  500,
				ResponseBytes: size + (i%5)*(size/4),
				Think:         ms(40 + 10*(i%3)),
			})
			id++
		}
		return lead
	}
	if w.firstWave > 0 {
		lead1 := wave(w.firstWave, w.firstSize, 0)
		if w.secondWave > 0 {
			lead2 := wave(w.secondWave, w.secondSize, lead1)
			if w.thirdWave > 0 {
				wave(w.thirdWave, w.thirdSize, lead2)
			}
		}
	}
	return flows
}
