// Package core is the library's public face: it wires the simulation
// substrates (netem links, phy radio models, tcp, mptcp) into a
// Session on which callers run measured transfers — the programmatic
// equivalent of the paper's modified Cell vs WiFi tool (Section 3.2) —
// and provides the adaptive network Selector that the paper's
// conclusion poses as future work ("how can we automatically decide
// when to use single path TCP and when to use MPTCP?").
package core

import (
	"fmt"
	"sync/atomic"
	"time"

	"multinet/internal/mptcp"
	"multinet/internal/netem"
	"multinet/internal/phy"
	"multinet/internal/simnet"
	"multinet/internal/tcp"
)

// fluidDefault opts newly created Sessions into hybrid fluid/packet
// execution (see internal/tcp fluid-advance mode and DESIGN.md "Hybrid
// fluid/packet execution"). Atomic because experiment sweeps create
// Sessions from worker goroutines.
var fluidDefault atomic.Bool

// SetFluidDefault toggles fluid-advance mode for Sessions created from
// now on and returns the previous setting. The default (off) simulates
// every packet; with it on, provably steady TCP flows advance
// analytically and dissolve back to packet mode around interesting
// events. MPTCP transfers always run in packet mode — subflows carry
// per-segment options, which makes them ineligible for sessions.
func SetFluidDefault(on bool) bool { return fluidDefault.Swap(on) }

// FluidDefault reports whether new Sessions use fluid-advance mode.
func FluidDefault() bool { return fluidDefault.Load() }

// TransportKind selects the transport for one transfer.
type TransportKind int

// Transport kinds.
const (
	// TCP is single-path TCP on Config.Iface.
	TCP TransportKind = iota
	// MPTCP uses all interfaces with Config.Primary first.
	MPTCP
)

// Config describes one transfer configuration — one cell of the
// paper's measurement matrix.
type Config struct {
	// Transport selects TCP or MPTCP.
	Transport TransportKind
	// Iface is the network for single-path TCP: any attached interface
	// name ("wifi"/"lte" in the classic pair).
	Iface string
	// Primary is the MPTCP primary-subflow network.
	Primary string
	// CC is the MPTCP congestion coupling.
	CC mptcp.CongestionMode
	// Mode selects Full-MPTCP or Backup operation.
	Mode mptcp.Mode
	// BackupIfaces marks backup-priority subflows (Backup mode).
	BackupIfaces []string
	// RecvBuf overrides the MPTCP connection-level receive buffer.
	RecvBuf int
	// Scheduler names the registered MPTCP data scheduler (empty:
	// mptcp.SchedMinSRTT, the Linux default).
	Scheduler string
	// RoundRobin selects the ablation scheduler instead of min-SRTT
	// (legacy flag; equivalent to Scheduler: mptcp.SchedRoundRobin).
	RoundRobin bool
	// SimultaneousJoin is the late-join ablation (all subflows start at
	// dial time).
	SimultaneousJoin bool
	// WatchdogRTOs arms the MPTCP stuck-flow watchdog on both endpoints
	// (0 = disabled): a connection making no forward progress across
	// this many virtual RTO spans with data pending records stall
	// events and eventually aborts instead of hanging. Fault-injection
	// experiments set it; it never changes a fault-free run.
	WatchdogRTOs int
}

// Name renders the configuration the way the paper labels it; a
// non-default scheduler is part of the label, since it changes what
// the measurement means.
func (c Config) Name() string {
	if c.Transport == TCP {
		return fmt.Sprintf("%s-TCP", c.Iface)
	}
	if c.Scheduler != "" && c.Scheduler != mptcp.SchedMinSRTT {
		return fmt.Sprintf("MPTCP(%s, %s, %s)", c.Primary, c.CC, c.Scheduler)
	}
	return fmt.Sprintf("MPTCP(%s, %s)", c.Primary, c.CC)
}

// Result is one measured transfer.
type Result struct {
	// Completed reports whether every byte arrived in order within the
	// horizon.
	Completed bool
	// FCT is the flow completion time: first SYN to last in-order byte.
	FCT time.Duration
	// Mbps is size*8/FCT in megabits per second.
	Mbps float64
	// EstablishedAt is when the (primary) handshake completed,
	// relative to the transfer start.
	EstablishedAt time.Duration
}

// Direction of a transfer relative to the client.
type Direction int

// Transfer directions (paper: both are measured in every run).
const (
	Download Direction = iota
	Upload
)

// DefaultHorizon bounds a single transfer's simulated duration.
const DefaultHorizon = 10 * time.Minute

// Session is a simulated multi-homed client and single-homed server
// pair under one network condition. Transfers run sequentially, as in
// the paper's measurement app.
type Session struct {
	Sim  *simnet.Sim
	Host *netem.Host

	clientStack *tcp.Stack
	serverStack *tcp.Stack
	mpServer    *mptcp.Server

	// Horizon bounds each transfer (default DefaultHorizon).
	Horizon time.Duration

	nextID   int
	tcpSpecs map[string]tcpServerSpec
	mpSpecs  map[string]tcpServerSpec
}

type tcpServerSpec struct {
	sendBytes int // server pushes this many bytes when established
	expect    int // server expects this many bytes (upload)
	onDone    func()
}

// NewSession builds a session for a network condition. The same seed
// and condition give a bit-identical run.
func NewSession(seed int64, cond phy.Condition) *Session {
	sim := simnet.New(seed)
	s := &Session{
		Sim:      sim,
		Host:     phy.BuildHost(sim, cond),
		Horizon:  DefaultHorizon,
		tcpSpecs: make(map[string]tcpServerSpec),
	}
	s.clientStack = tcp.NewStack(sim, tcp.ClientSide)
	s.serverStack = tcp.NewStack(sim, tcp.ServerSide)
	for _, ifc := range s.Host.Ifaces() {
		s.clientStack.Bind(ifc)
		s.serverStack.Bind(ifc)
	}
	s.mpServer = mptcp.NewServer(sim, s.serverStack, mptcp.ServerConfig{})
	s.mpServer.AcceptTCP = s.acceptTCP
	s.mpServer.OnConn = s.acceptMPTCP
	s.mpSpecs = make(map[string]tcpServerSpec)
	if FluidDefault() {
		tcp.EnableFluid(s.clientStack, s.serverStack)
	}
	return s
}

func (s *Session) acceptTCP(c *tcp.Conn) {
	spec, ok := s.tcpSpecs[c.Flow()]
	if !ok {
		return
	}
	c.SetCallbacks(tcp.Callbacks{
		OnEstablished: func(c *tcp.Conn) {
			if spec.sendBytes > 0 {
				c.Send(spec.sendBytes)
				c.Close()
			}
		},
		OnData: func(c *tcp.Conn, total int64) {
			if spec.expect > 0 && total >= int64(spec.expect) {
				spec.onDone()
			}
		},
	})
}

func (s *Session) acceptMPTCP(c *mptcp.Conn) {
	spec, ok := s.mpSpecs[c.ConnID()]
	if !ok {
		return
	}
	if spec.sendBytes > 0 {
		c.Send(spec.sendBytes)
		c.Close()
	}
	if spec.expect > 0 {
		c.SetCallbacks(mptcp.Callbacks{OnData: func(c *mptcp.Conn, total int64) {
			if total >= int64(spec.expect) {
				spec.onDone()
			}
		}})
	}
}

// Run measures one transfer of size bytes in the given direction under
// cfg. It advances the session's virtual clock.
func (s *Session) Run(cfg Config, dir Direction, size int) Result {
	if size <= 0 {
		panic("core: transfer size must be positive")
	}
	s.nextID++
	id := fmt.Sprintf("xfer-%d", s.nextID)
	start := s.Sim.Now()
	var done, established time.Duration
	finish := func() {
		if done == 0 {
			done = s.Sim.Now()
			s.Sim.Stop() // return control; teardown drains below
		}
	}

	switch cfg.Transport {
	case TCP:
		iface := s.Host.Iface(cfg.Iface)
		if iface == nil {
			panic("core: unknown iface " + cfg.Iface)
		}
		if dir == Download {
			s.tcpSpecs[id] = tcpServerSpec{sendBytes: size}
			s.clientStack.Dial(iface, id, tcp.Config{Callbacks: tcp.Callbacks{
				OnEstablished: func(c *tcp.Conn) { established = s.Sim.Now() },
				OnData: func(c *tcp.Conn, total int64) {
					if total >= int64(size) {
						finish()
						c.Close()
					}
				},
			}})
		} else {
			s.tcpSpecs[id] = tcpServerSpec{expect: size, onDone: finish}
			s.clientStack.Dial(iface, id, tcp.Config{Callbacks: tcp.Callbacks{
				OnEstablished: func(c *tcp.Conn) {
					established = s.Sim.Now()
					c.Send(size)
					c.Close()
				},
			}})
		}
	case MPTCP:
		// The server applies matching parameters to this connection
		// (both endpoints must agree on coupling; the receive buffer
		// bound binds at the data sender).
		// Scheduler is wired to both ends; the legacy RoundRobin flag
		// stays client-side only, preserving the historical ablation
		// behaviour the output goldens pin.
		s.mpServer.SetConfig(mptcp.ServerConfig{
			CC: cfg.CC, Mode: cfg.Mode, RecvBuf: cfg.RecvBuf, Scheduler: cfg.Scheduler,
			WatchdogRTOs: cfg.WatchdogRTOs,
		})
		mcfg := mptcp.Config{
			ConnID:           id,
			Primary:          cfg.Primary,
			CC:               cfg.CC,
			Mode:             cfg.Mode,
			BackupIfaces:     cfg.BackupIfaces,
			RecvBuf:          cfg.RecvBuf,
			Scheduler:        cfg.Scheduler,
			RoundRobin:       cfg.RoundRobin,
			SimultaneousJoin: cfg.SimultaneousJoin,
			WatchdogRTOs:     cfg.WatchdogRTOs,
		}
		if dir == Download {
			s.mpSpecs[id] = tcpServerSpec{sendBytes: size}
			mptcp.Dial(s.Sim, s.clientStack, s.Host, mcfg, mptcp.Callbacks{
				OnEstablished: func(c *mptcp.Conn) { established = s.Sim.Now() },
				OnData: func(c *mptcp.Conn, total int64) {
					if total >= int64(size) {
						finish()
						c.Close()
					}
				},
			})
		} else {
			s.mpSpecs[id] = tcpServerSpec{expect: size, onDone: finish}
			mptcp.Dial(s.Sim, s.clientStack, s.Host, mcfg, mptcp.Callbacks{
				OnEstablished: func(c *mptcp.Conn) {
					established = s.Sim.Now()
					c.Send(size)
					c.Close()
				},
			})
		}
	}

	s.Sim.RunUntil(start + s.Horizon)
	res := Result{Completed: done > 0}
	if res.Completed {
		res.FCT = done - start
		res.Mbps = float64(size) * 8 / res.FCT.Seconds() / 1e6
		if established > 0 {
			res.EstablishedAt = established - start
		}
	}
	// Let in-flight teardown drain before the next sequential transfer.
	s.Sim.RunFor(2 * time.Second)
	return res
}

// RunMbps is a convenience wrapper returning just the throughput
// (0 when the transfer did not complete).
func (s *Session) RunMbps(cfg Config, dir Direction, size int) float64 {
	r := s.Run(cfg, dir, size)
	if !r.Completed {
		return 0
	}
	return r.Mbps
}
