package core

import (
	"testing"
	"time"

	"multinet/internal/mptcp"
	"multinet/internal/phy"
)

func cleanCond(wifiMbps, lteMbps float64) phy.Condition {
	return phy.Condition{
		Name: "test",
		WiFi: phy.PathProfile{DownMbps: wifiMbps, UpMbps: wifiMbps / 2.5, RTTms: 40},
		LTE:  phy.PathProfile{DownMbps: lteMbps, UpMbps: lteMbps / 2.5, RTTms: 70},
	}
}

func TestTCPDownload(t *testing.T) {
	s := NewSession(1, cleanCond(10, 6))
	r := s.Run(Config{Transport: TCP, Iface: "wifi"}, Download, 1<<20)
	if !r.Completed {
		t.Fatal("download incomplete")
	}
	if r.Mbps < 6 || r.Mbps > 10.5 {
		t.Fatalf("throughput %.2f, want near 10 Mbit/s link rate", r.Mbps)
	}
	if r.EstablishedAt <= 0 || r.EstablishedAt > 300*time.Millisecond {
		t.Fatalf("established at %v, want ~1 RTT", r.EstablishedAt)
	}
}

func TestTCPUpload(t *testing.T) {
	s := NewSession(1, cleanCond(10, 6))
	r := s.Run(Config{Transport: TCP, Iface: "lte"}, Upload, 500_000)
	if !r.Completed {
		t.Fatal("upload incomplete")
	}
	// LTE uplink is 6/2.5 = 2.4 Mbit/s.
	if r.Mbps < 1.4 || r.Mbps > 2.6 {
		t.Fatalf("upload throughput %.2f, want ~2", r.Mbps)
	}
}

func TestMPTCPDownloadAggregates(t *testing.T) {
	s := NewSession(2, cleanCond(6, 5))
	r := s.Run(Config{Transport: MPTCP, Primary: "wifi"}, Download, 4<<20)
	if !r.Completed {
		t.Fatal("incomplete")
	}
	if r.Mbps < 7 {
		t.Fatalf("MPTCP aggregate %.2f, want > 7 on 6+5 paths", r.Mbps)
	}
}

func TestSequentialTransfersSameSession(t *testing.T) {
	// The paper's measurement run: four sequential transfers.
	s := NewSession(3, cleanCond(8, 6))
	cfgs := []Config{
		{Transport: TCP, Iface: "wifi"},
		{Transport: TCP, Iface: "lte"},
		{Transport: MPTCP, Primary: "wifi"},
		{Transport: MPTCP, Primary: "lte", CC: mptcp.Coupled},
	}
	for i, cfg := range cfgs {
		r := s.Run(cfg, Download, 1<<20)
		if !r.Completed {
			t.Fatalf("transfer %d (%s) incomplete", i, cfg.Name())
		}
	}
}

func TestBothDirectionsBothTransports(t *testing.T) {
	s := NewSession(4, cleanCond(8, 6))
	for _, tr := range []TransportKind{TCP, MPTCP} {
		for _, dir := range []Direction{Download, Upload} {
			cfg := Config{Transport: tr, Iface: "wifi", Primary: "wifi"}
			if r := s.Run(cfg, dir, 300_000); !r.Completed {
				t.Fatalf("transport=%v dir=%v incomplete", tr, dir)
			}
		}
	}
}

func TestConfigNames(t *testing.T) {
	if got := (Config{Transport: TCP, Iface: "wifi"}).Name(); got != "wifi-TCP" {
		t.Fatalf("name = %q", got)
	}
	got := Config{Transport: MPTCP, Primary: "lte", CC: mptcp.Coupled}.Name()
	if got != "MPTCP(lte, coupled)" {
		t.Fatalf("name = %q", got)
	}
}

func TestProbeEstimates(t *testing.T) {
	s := NewSession(5, cleanCond(12, 4))
	est := s.Probe()
	if est.WiFiMbps <= est.LTEMbps {
		t.Fatalf("probe: wifi %.2f <= lte %.2f, but WiFi link is 3x faster", est.WiFiMbps, est.LTEMbps)
	}
	if est.Best() != "wifi" {
		t.Fatalf("Best = %s, want wifi", est.Best())
	}
}

func TestSelectorShortFlow(t *testing.T) {
	sel := Selector{}
	est := Estimate{WiFiMbps: 3, LTEMbps: 9}
	cfg := sel.Choose(est, 50_000)
	if cfg.Transport != TCP || cfg.Iface != "lte" {
		t.Fatalf("short flow choice = %+v, want LTE-TCP", cfg)
	}
}

func TestSelectorLongFlowComparablePaths(t *testing.T) {
	sel := Selector{}
	est := Estimate{WiFiMbps: 6, LTEMbps: 5}
	cfg := sel.Choose(est, 5<<20)
	if cfg.Transport != MPTCP || cfg.Primary != "wifi" || cfg.CC != mptcp.Decoupled {
		t.Fatalf("long flow choice = %+v, want MPTCP wifi-primary decoupled", cfg)
	}
}

func TestSelectorLongFlowDisparatePaths(t *testing.T) {
	sel := Selector{}
	est := Estimate{WiFiMbps: 1, LTEMbps: 10}
	cfg := sel.Choose(est, 5<<20)
	if cfg.Transport != TCP || cfg.Iface != "lte" {
		t.Fatalf("disparate-path choice = %+v, want LTE-TCP (Fig. 7a regime)", cfg)
	}
}

func TestSelectorBeatsWorstStaticPolicy(t *testing.T) {
	// End-to-end sanity for the future-work policy: on an
	// LTE-much-better condition, the selector's choice for a 1 MB flow
	// should beat always-WiFi (the Android default).
	cond := phy.Condition{
		Name: "ltebetter",
		WiFi: phy.PathProfile{DownMbps: 1.5, UpMbps: 0.7, RTTms: 90},
		LTE:  phy.PathProfile{DownMbps: 9, UpMbps: 4, RTTms: 65},
	}
	probe := NewSession(6, cond)
	est := probe.Probe()
	cfg := Selector{}.Choose(est, 1<<20)

	chosen := NewSession(7, cond).Run(cfg, Download, 1<<20)
	wifi := NewSession(7, cond).Run(Config{Transport: TCP, Iface: "wifi"}, Download, 1<<20)
	if !chosen.Completed || !wifi.Completed {
		t.Fatal("incomplete")
	}
	if chosen.FCT >= wifi.FCT {
		t.Fatalf("selector FCT %v not better than always-WiFi %v", chosen.FCT, wifi.FCT)
	}
}

func TestEstimateHelpers(t *testing.T) {
	e := Estimate{WiFiMbps: 4, LTEMbps: 8}
	if e.Disparity() != 2 {
		t.Fatalf("disparity = %v, want 2", e.Disparity())
	}
	tie := Estimate{WiFiMbps: 5, LTEMbps: 5, WiFiRTT: 30 * time.Millisecond, LTERTT: 60 * time.Millisecond}
	if tie.Best() != "wifi" {
		t.Fatal("tie should prefer lower RTT (wifi)")
	}
	zero := Estimate{WiFiMbps: 0, LTEMbps: 5}
	if zero.Disparity() < 1e6 {
		t.Fatal("zero estimate should give infinite disparity")
	}
}

func TestDeterministicSession(t *testing.T) {
	run := func() time.Duration {
		s := NewSession(9, cleanCond(7, 5))
		return s.Run(Config{Transport: MPTCP, Primary: "lte"}, Download, 1<<20).FCT
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("non-deterministic: %v vs %v", a, b)
	}
}
