package core

import (
	"testing"
	"time"

	"multinet/internal/mptcp"
	"multinet/internal/phy"
)

func cleanCond(wifiMbps, lteMbps float64) phy.Condition {
	return phy.Condition{
		Name: "test",
		WiFi: phy.PathProfile{DownMbps: wifiMbps, UpMbps: wifiMbps / 2.5, RTTms: 40},
		LTE:  phy.PathProfile{DownMbps: lteMbps, UpMbps: lteMbps / 2.5, RTTms: 70},
	}
}

func TestTCPDownload(t *testing.T) {
	s := NewSession(1, cleanCond(10, 6))
	r := s.Run(Config{Transport: TCP, Iface: "wifi"}, Download, 1<<20)
	if !r.Completed {
		t.Fatal("download incomplete")
	}
	if r.Mbps < 6 || r.Mbps > 10.5 {
		t.Fatalf("throughput %.2f, want near 10 Mbit/s link rate", r.Mbps)
	}
	if r.EstablishedAt <= 0 || r.EstablishedAt > 300*time.Millisecond {
		t.Fatalf("established at %v, want ~1 RTT", r.EstablishedAt)
	}
}

func TestTCPUpload(t *testing.T) {
	s := NewSession(1, cleanCond(10, 6))
	r := s.Run(Config{Transport: TCP, Iface: "lte"}, Upload, 500_000)
	if !r.Completed {
		t.Fatal("upload incomplete")
	}
	// LTE uplink is 6/2.5 = 2.4 Mbit/s.
	if r.Mbps < 1.4 || r.Mbps > 2.6 {
		t.Fatalf("upload throughput %.2f, want ~2", r.Mbps)
	}
}

func TestMPTCPDownloadAggregates(t *testing.T) {
	s := NewSession(2, cleanCond(6, 5))
	r := s.Run(Config{Transport: MPTCP, Primary: "wifi"}, Download, 4<<20)
	if !r.Completed {
		t.Fatal("incomplete")
	}
	if r.Mbps < 7 {
		t.Fatalf("MPTCP aggregate %.2f, want > 7 on 6+5 paths", r.Mbps)
	}
}

func TestSequentialTransfersSameSession(t *testing.T) {
	// The paper's measurement run: four sequential transfers.
	s := NewSession(3, cleanCond(8, 6))
	cfgs := []Config{
		{Transport: TCP, Iface: "wifi"},
		{Transport: TCP, Iface: "lte"},
		{Transport: MPTCP, Primary: "wifi"},
		{Transport: MPTCP, Primary: "lte", CC: mptcp.Coupled},
	}
	for i, cfg := range cfgs {
		r := s.Run(cfg, Download, 1<<20)
		if !r.Completed {
			t.Fatalf("transfer %d (%s) incomplete", i, cfg.Name())
		}
	}
}

func TestBothDirectionsBothTransports(t *testing.T) {
	s := NewSession(4, cleanCond(8, 6))
	for _, tr := range []TransportKind{TCP, MPTCP} {
		for _, dir := range []Direction{Download, Upload} {
			cfg := Config{Transport: tr, Iface: "wifi", Primary: "wifi"}
			if r := s.Run(cfg, dir, 300_000); !r.Completed {
				t.Fatalf("transport=%v dir=%v incomplete", tr, dir)
			}
		}
	}
}

func TestConfigNames(t *testing.T) {
	if got := (Config{Transport: TCP, Iface: "wifi"}).Name(); got != "wifi-TCP" {
		t.Fatalf("name = %q", got)
	}
	got := Config{Transport: MPTCP, Primary: "lte", CC: mptcp.Coupled}.Name()
	if got != "MPTCP(lte, coupled)" {
		t.Fatalf("name = %q", got)
	}
}

func TestProbeEstimates(t *testing.T) {
	s := NewSession(5, cleanCond(12, 4))
	est := s.Probe()
	if est.Mbps("wifi") <= est.Mbps("lte") {
		t.Fatalf("probe: wifi %.2f <= lte %.2f, but WiFi link is 3x faster",
			est.Mbps("wifi"), est.Mbps("lte"))
	}
	if est.Best() != "wifi" {
		t.Fatalf("Best = %s, want wifi", est.Best())
	}
}

func TestSelectorShortFlow(t *testing.T) {
	sel := Selector{}
	est := WiFiLTEEstimate(3, 9, 0, 0)
	cfg := ConfigFor(sel.Decide(est, 50_000))
	if cfg.Transport != TCP || cfg.Iface != "lte" {
		t.Fatalf("short flow choice = %+v, want LTE-TCP", cfg)
	}
}

func TestSelectorLongFlowComparablePaths(t *testing.T) {
	sel := Selector{}
	est := WiFiLTEEstimate(6, 5, 0, 0)
	cfg := ConfigFor(sel.Decide(est, 5<<20))
	if cfg.Transport != MPTCP || cfg.Primary != "wifi" || cfg.CC != mptcp.Decoupled {
		t.Fatalf("long flow choice = %+v, want MPTCP wifi-primary decoupled", cfg)
	}
}

func TestSelectorLongFlowDisparatePaths(t *testing.T) {
	sel := Selector{}
	est := WiFiLTEEstimate(1, 10, 0, 0)
	cfg := ConfigFor(sel.Decide(est, 5<<20))
	if cfg.Transport != TCP || cfg.Iface != "lte" {
		t.Fatalf("disparate-path choice = %+v, want LTE-TCP (Fig. 7a regime)", cfg)
	}
}

func TestSelectorBeatsWorstStaticPolicy(t *testing.T) {
	// End-to-end sanity for the future-work policy: on an
	// LTE-much-better condition, the selector's choice for a 1 MB flow
	// should beat always-WiFi (the Android default).
	cond := phy.Condition{
		Name: "ltebetter",
		WiFi: phy.PathProfile{DownMbps: 1.5, UpMbps: 0.7, RTTms: 90},
		LTE:  phy.PathProfile{DownMbps: 9, UpMbps: 4, RTTms: 65},
	}
	probe := NewSession(6, cond)
	est := probe.Probe()
	cfg := Choose(Selector{}, est, 1<<20)

	chosen := NewSession(7, cond).Run(cfg, Download, 1<<20)
	wifi := NewSession(7, cond).Run(Config{Transport: TCP, Iface: "wifi"}, Download, 1<<20)
	if !chosen.Completed || !wifi.Completed {
		t.Fatal("incomplete")
	}
	if chosen.FCT >= wifi.FCT {
		t.Fatalf("selector FCT %v not better than always-WiFi %v", chosen.FCT, wifi.FCT)
	}
}

func TestEstimateHelpers(t *testing.T) {
	e := WiFiLTEEstimate(4, 8, 0, 0)
	if e.Disparity() != 2 {
		t.Fatalf("disparity = %v, want 2", e.Disparity())
	}
	tie := WiFiLTEEstimate(5, 5, 30*time.Millisecond, 60*time.Millisecond)
	if tie.Best() != "wifi" {
		t.Fatal("tie should prefer lower RTT (wifi)")
	}
	zero := WiFiLTEEstimate(0, 5, 0, 0)
	if zero.Disparity() < 1e6 {
		t.Fatal("zero estimate should give infinite disparity")
	}
}

func TestEstimateEdgeCases(t *testing.T) {
	// Throughput tie broken by RTT regardless of estimate order.
	e := NewEstimate(
		PathEstimate{Name: "slowrtt", Mbps: 5, RTT: 80 * time.Millisecond},
		PathEstimate{Name: "fastrtt", Mbps: 5, RTT: 20 * time.Millisecond},
	)
	if e.Best() != "fastrtt" {
		t.Fatalf("Best = %q, want fastrtt (RTT tie-break)", e.Best())
	}
	// Full tie falls back to estimate order.
	even := NewEstimate(
		PathEstimate{Name: "a", Mbps: 5, RTT: 20 * time.Millisecond},
		PathEstimate{Name: "b", Mbps: 5, RTT: 20 * time.Millisecond},
	)
	if even.Best() != "a" {
		t.Fatalf("Best = %q, want first-listed path on full tie", even.Best())
	}
	// Zero-rate path poisons the whole-set disparity...
	z := NewEstimate(
		PathEstimate{Name: "up", Mbps: 10},
		PathEstimate{Name: "dead", Mbps: 0},
	)
	if z.Disparity() < 1e6 {
		t.Fatalf("disparity with dead path = %v, want huge", z.Disparity())
	}
	// ...and empty / single-path estimates never admit MPTCP.
	if (Estimate{}).Disparity() < 1e6 || (Estimate{}).Best() != "" {
		t.Fatal("empty estimate: want huge disparity and no best path")
	}
	one := NewEstimate(PathEstimate{Name: "only", Mbps: 7})
	if one.Disparity() < 1e6 || one.PairDisparity() < 1e6 {
		t.Fatal("single path: want huge disparities")
	}
	if one.Best() != "only" {
		t.Fatalf("Best = %q, want only", one.Best())
	}
}

func TestEstimateNPathRanking(t *testing.T) {
	e := NewEstimate(
		PathEstimate{Name: "wlan-far", Mbps: 2, RTT: 55 * time.Millisecond},
		PathEstimate{Name: "lte-a", Mbps: 9, RTT: 60 * time.Millisecond},
		PathEstimate{Name: "lte-b", Mbps: 9, RTT: 45 * time.Millisecond},
		PathEstimate{Name: "wlan-near", Mbps: 12, RTT: 25 * time.Millisecond},
	)
	want := []string{"wlan-near", "lte-b", "lte-a", "wlan-far"}
	for i, p := range e.Ranked() {
		if p.Name != want[i] {
			t.Fatalf("Ranked[%d] = %q, want %q", i, p.Name, want[i])
		}
	}
	if e.Best() != "wlan-near" {
		t.Fatalf("Best = %q", e.Best())
	}
	// Whole-set disparity sees the weak fourth path; the pairwise one
	// only compares the two best.
	if d := e.Disparity(); d != 6 {
		t.Fatalf("Disparity = %v, want 12/2", d)
	}
	if d := e.PairDisparity(); d != 12.0/9 {
		t.Fatalf("PairDisparity = %v, want 12/9", d)
	}
	// A straggler path must not veto MPTCP over the two good paths.
	sel := Selector{}
	if !sel.UseMPTCP(e, 5<<20) {
		t.Fatal("long flow over comparable best pair should use MPTCP")
	}
	cfg := ConfigFor(sel.Decide(e, 5<<20))
	if cfg.Transport != MPTCP || cfg.Primary != "wlan-near" {
		t.Fatalf("Choose = %+v, want MPTCP primary wlan-near", cfg)
	}
	if sel.UseMPTCP(e, 10<<10) {
		t.Fatal("short flow should stay single-path")
	}
}

func TestDeterministicSession(t *testing.T) {
	run := func() time.Duration {
		s := NewSession(9, cleanCond(7, 5))
		return s.Run(Config{Transport: MPTCP, Primary: "lte"}, Download, 1<<20).FCT
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("non-deterministic: %v vs %v", a, b)
	}
}
