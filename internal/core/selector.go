package core

import (
	"sort"
	"time"

	"multinet/internal/mptcp"
)

// hugeDisparity is the ratio reported when a disparity is undefined
// (a zero-rate path, or fewer than two paths): effectively infinite,
// so every disparity gate fails closed to single-path TCP.
const hugeDisparity = 1e9

// PathEstimate is one path's estimated conditions, as a lightweight
// probe or history would report them.
type PathEstimate struct {
	Name string
	Mbps float64
	RTT  time.Duration
}

// Estimate summarises the current conditions of any number of paths.
// Path order is significant: earlier paths win ranking ties, so build
// estimates in preference order (Probe uses host attachment order).
type Estimate struct {
	Paths []PathEstimate
}

// NewEstimate builds an estimate from per-path stats in preference
// order.
func NewEstimate(paths ...PathEstimate) Estimate {
	return Estimate{Paths: paths}
}

// WiFiLTEEstimate is the two-path convenience constructor for the
// paper's classic {wifi, lte} pair.
func WiFiLTEEstimate(wifiMbps, lteMbps float64, wifiRTT, lteRTT time.Duration) Estimate {
	return NewEstimate(
		PathEstimate{Name: "wifi", Mbps: wifiMbps, RTT: wifiRTT},
		PathEstimate{Name: "lte", Mbps: lteMbps, RTT: lteRTT},
	)
}

// Set updates the named path's estimate, appending it if new.
func (e *Estimate) Set(name string, mbps float64, rtt time.Duration) {
	for i := range e.Paths {
		if e.Paths[i].Name == name {
			e.Paths[i].Mbps, e.Paths[i].RTT = mbps, rtt
			return
		}
	}
	e.Paths = append(e.Paths, PathEstimate{Name: name, Mbps: mbps, RTT: rtt})
}

// Lookup returns the named path's estimate.
func (e Estimate) Lookup(name string) (PathEstimate, bool) {
	for _, p := range e.Paths {
		if p.Name == name {
			return p, true
		}
	}
	return PathEstimate{}, false
}

// Mbps returns the named path's estimated throughput (0 if unknown).
func (e Estimate) Mbps(name string) float64 {
	p, _ := e.Lookup(name)
	return p.Mbps
}

// Ranked returns the paths best-first: higher throughput wins, ties
// broken by lower RTT, remaining ties by estimate order.
func (e Estimate) Ranked() []PathEstimate {
	out := append([]PathEstimate(nil), e.Paths...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Mbps != out[j].Mbps {
			return out[i].Mbps > out[j].Mbps
		}
		return out[i].RTT < out[j].RTT
	})
	return out
}

// Best returns the name of the top-ranked path ("" for an empty
// estimate).
func (e Estimate) Best() string {
	r := e.Ranked()
	if len(r) == 0 {
		return ""
	}
	return r[0].Name
}

// Disparity returns max/min of the per-path throughput estimates
// across the whole set (hugeDisparity when any path reports zero or
// fewer than two paths exist).
func (e Estimate) Disparity() float64 {
	if len(e.Paths) < 2 {
		return hugeDisparity
	}
	lo, hi := e.Paths[0].Mbps, e.Paths[0].Mbps
	for _, p := range e.Paths[1:] {
		if p.Mbps < lo {
			lo = p.Mbps
		}
		if p.Mbps > hi {
			hi = p.Mbps
		}
	}
	if lo <= 0 {
		return hugeDisparity
	}
	return hi / lo
}

// PairDisparity returns the throughput ratio of the best path to the
// second-best — the quantity that decides whether MPTCP's extra
// subflow can help. With exactly two paths it equals Disparity; with
// more it ignores paths MPTCP's scheduler would starve anyway.
func (e Estimate) PairDisparity() float64 {
	r := e.Ranked()
	if len(r) < 2 || r[1].Mbps <= 0 {
		return hugeDisparity
	}
	return r[0].Mbps / r[1].Mbps
}

// Selector is the adaptive policy the paper's conclusion calls for,
// assembled from its empirical findings:
//
//   - Short flows gain nothing from MPTCP (Figs. 7, 18/19): use
//     single-path TCP on the better network.
//   - With a large rate disparity between the paths, MPTCP underper-
//     forms the better single path at every size (Fig. 7a): stay
//     single-path.
//   - Otherwise, long flows benefit from MPTCP with the primary on the
//     better network (Fig. 8) and decoupled congestion control, which
//     outruns coupled on long flows (Figs. 13/14).
//
// The policy ranks any number of paths: MPTCP is worthwhile when the
// best two paths are comparable, whatever the rest of the set does.
type Selector struct {
	// ShortFlowBytes is the flow size below which single-path TCP is
	// always chosen (default 200 KB — between the paper's 100 KB
	// "short" and 1 MB "long" sizes).
	ShortFlowBytes int
	// MaxDisparity is the largest path-rate ratio at which MPTCP is
	// still worthwhile (default 4, from the Fig. 7a regime).
	MaxDisparity float64
	// PreferCoupled selects coupled CC for long flows (fairness over
	// raw throughput); default false per Figs. 13/14.
	PreferCoupled bool
}

func (s Selector) shortFlowBytes() int {
	if s.ShortFlowBytes > 0 {
		return s.ShortFlowBytes
	}
	return 200 << 10
}

func (s Selector) maxDisparity() float64 {
	if s.MaxDisparity > 0 {
		return s.MaxDisparity
	}
	return 4
}

// UseMPTCP is the MPTCP-worthwhile predicate over the estimated path
// set: the flow is long enough and the two best paths are within the
// disparity bound.
func (s Selector) UseMPTCP(e Estimate, flowBytes int) bool {
	return flowBytes > s.shortFlowBytes() && e.PairDisparity() <= s.maxDisparity()
}

// Choose returns the transfer configuration for a flow of the given
// size under the estimated conditions.
func (s Selector) Choose(e Estimate, flowBytes int) Config {
	best := e.Best()
	if !s.UseMPTCP(e, flowBytes) {
		return Config{Transport: TCP, Iface: best}
	}
	cc := mptcp.Decoupled
	if s.PreferCoupled {
		cc = mptcp.Coupled
	}
	return Config{Transport: MPTCP, Primary: best, CC: cc}
}

// ProbeSize is the transfer used per network by Session.Probe.
const ProbeSize = 256 << 10

// Probe measures every attached network with a ProbeSize download
// each, in attachment order, and returns the resulting estimate. It
// advances the session clock.
func (s *Session) Probe() Estimate {
	est := Estimate{}
	for _, name := range s.Host.IfaceNames() {
		r := s.Run(Config{Transport: TCP, Iface: name}, Download, ProbeSize)
		if r.Completed {
			est.Set(name, r.Mbps, r.EstablishedAt) // handshake ≈ 1 RTT
		} else {
			est.Set(name, 0, 0)
		}
	}
	return est
}
