package core

import (
	"time"

	"multinet/internal/mptcp"
	"multinet/internal/selector"
)

// The selector API is re-homed in internal/selector — the redesigned
// public decision surface shared by the offline experiments and the
// online path-selection service (internal/serve, cmd/serve). core
// keeps type aliases and thin constructors so experiment code written
// against the original accreted API keeps compiling, and ConfigFor
// maps a selector.Decision onto the transfer Config this package
// runs; every decision, offline or online, flows through
// selector.Selector.Decide.

// PathEstimate is one path's estimated conditions.
//
// Deprecated: use selector.PathEstimate (this is an alias of it).
type PathEstimate = selector.PathEstimate

// Estimate summarises the current conditions of any number of paths.
//
// Deprecated: use selector.Estimate (this is an alias of it).
type Estimate = selector.Estimate

// Selector is the adaptive policy over an Estimate; see
// selector.Selector for the policy's findings-to-rules mapping.
//
// Deprecated: use selector.Selector (this is an alias of it).
type Selector = selector.Selector

// NewEstimate builds an estimate from per-path stats in preference
// order.
//
// Deprecated: use selector.EstimateOf.
func NewEstimate(paths ...PathEstimate) Estimate {
	return selector.EstimateOf(paths...)
}

// WiFiLTEEstimate is the two-path convenience constructor for the
// paper's classic {wifi, lte} pair, a special case of the N-path
// selector.EstimateOf idiom.
func WiFiLTEEstimate(wifiMbps, lteMbps float64, wifiRTT, lteRTT time.Duration) Estimate {
	return selector.EstimateOf(
		PathEstimate{Name: "wifi", Mbps: wifiMbps, RTT: wifiRTT},
		PathEstimate{Name: "lte", Mbps: lteMbps, RTT: lteRTT},
	)
}

// ConfigFor maps a selector Decision onto the transfer Config that
// realises it: single-path TCP on the preferred path, or MPTCP with
// the preferred path as primary and the decided coupling. The decided
// scheduler is carried only when it differs from the min-SRTT default
// so configuration names (and the output goldens pinning them) render
// exactly as the pre-redesign Selector.Choose did.
func ConfigFor(d selector.Decision) Config {
	if !d.UseMPTCP {
		return Config{Transport: TCP, Iface: d.Primary()}
	}
	cfg := Config{Transport: MPTCP, Primary: d.Primary(), CC: d.CC}
	if d.Scheduler != "" && d.Scheduler != mptcp.SchedMinSRTT {
		cfg.Scheduler = d.Scheduler
	}
	return cfg
}

// Choose evaluates the policy and returns the transfer configuration
// for a flow of the given size under the estimated conditions — the
// legacy one-call form of ConfigFor(s.Decide(e, flowBytes)).
//
// Deprecated: call selector.Selector.Decide and ConfigFor so the
// Decision's rationale and scheduler survive to the caller.
func Choose(s Selector, e Estimate, flowBytes int) Config {
	return ConfigFor(s.Decide(e, flowBytes))
}

// ProbeSize is the transfer used per network by Session.Probe.
const ProbeSize = 256 << 10

// Probe measures every attached network with a ProbeSize download
// each, in attachment order, and returns the resulting estimate. It
// advances the session clock.
func (s *Session) Probe() Estimate {
	est := Estimate{}
	for _, name := range s.Host.IfaceNames() {
		r := s.Run(Config{Transport: TCP, Iface: name}, Download, ProbeSize)
		if r.Completed {
			est.Set(name, r.Mbps, r.EstablishedAt) // handshake ≈ 1 RTT
		} else {
			est.Set(name, 0, 0)
		}
	}
	return est
}
