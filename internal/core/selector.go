package core

import (
	"time"

	"multinet/internal/mptcp"
)

// Estimate summarises the current per-network conditions, as a
// lightweight probe or history would report them.
type Estimate struct {
	WiFiMbps, LTEMbps float64
	WiFiRTT, LTERTT   time.Duration
}

// Best returns the interface name with the higher estimated throughput
// (ties broken by lower RTT).
func (e Estimate) Best() string {
	if e.WiFiMbps > e.LTEMbps {
		return "wifi"
	}
	if e.LTEMbps > e.WiFiMbps {
		return "lte"
	}
	if e.WiFiRTT <= e.LTERTT {
		return "wifi"
	}
	return "lte"
}

// Disparity returns max/min of the two throughput estimates.
func (e Estimate) Disparity() float64 {
	lo, hi := e.WiFiMbps, e.LTEMbps
	if lo > hi {
		lo, hi = hi, lo
	}
	if lo <= 0 {
		return 1e9
	}
	return hi / lo
}

// Selector is the adaptive policy the paper's conclusion calls for,
// assembled from its empirical findings:
//
//   - Short flows gain nothing from MPTCP (Figs. 7, 18/19): use
//     single-path TCP on the better network.
//   - With a large rate disparity between the paths, MPTCP underper-
//     forms the better single path at every size (Fig. 7a): stay
//     single-path.
//   - Otherwise, long flows benefit from MPTCP with the primary on the
//     better network (Fig. 8) and decoupled congestion control, which
//     outruns coupled on long flows (Figs. 13/14).
type Selector struct {
	// ShortFlowBytes is the flow size below which single-path TCP is
	// always chosen (default 200 KB — between the paper's 100 KB
	// "short" and 1 MB "long" sizes).
	ShortFlowBytes int
	// MaxDisparity is the largest path-rate ratio at which MPTCP is
	// still worthwhile (default 4, from the Fig. 7a regime).
	MaxDisparity float64
	// PreferCoupled selects coupled CC for long flows (fairness over
	// raw throughput); default false per Figs. 13/14.
	PreferCoupled bool
}

func (s Selector) shortFlowBytes() int {
	if s.ShortFlowBytes > 0 {
		return s.ShortFlowBytes
	}
	return 200 << 10
}

func (s Selector) maxDisparity() float64 {
	if s.MaxDisparity > 0 {
		return s.MaxDisparity
	}
	return 4
}

// Choose returns the transfer configuration for a flow of the given
// size under the estimated conditions.
func (s Selector) Choose(e Estimate, flowBytes int) Config {
	best := e.Best()
	if flowBytes <= s.shortFlowBytes() || e.Disparity() > s.maxDisparity() {
		return Config{Transport: TCP, Iface: best}
	}
	cc := mptcp.Decoupled
	if s.PreferCoupled {
		cc = mptcp.Coupled
	}
	return Config{Transport: MPTCP, Primary: best, CC: cc}
}

// ProbeSize is the transfer used per network by Session.Probe.
const ProbeSize = 256 << 10

// Probe measures both networks with a ProbeSize download each and
// returns the resulting estimate. It advances the session clock.
func (s *Session) Probe() Estimate {
	wifi := s.Run(Config{Transport: TCP, Iface: "wifi"}, Download, ProbeSize)
	lte := s.Run(Config{Transport: TCP, Iface: "lte"}, Download, ProbeSize)
	est := Estimate{}
	if wifi.Completed {
		est.WiFiMbps = wifi.Mbps
		est.WiFiRTT = wifi.EstablishedAt // handshake ≈ 1 RTT
	}
	if lte.Completed {
		est.LTEMbps = lte.Mbps
		est.LTERTT = lte.EstablishedAt
	}
	return est
}
