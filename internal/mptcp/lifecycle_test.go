package mptcp

import (
	"testing"
	"time"

	"multinet/internal/netem"
)

// ifaceEdge is a scheduled administrative or blackhole transition used
// by the lifecycle tests.
type ifaceEdge struct {
	ifc  *netem.Iface
	down bool
	bh   bool
	isBh bool
}

func applyEdge(a any) {
	e := a.(*ifaceEdge)
	if e.isBh {
		e.ifc.SetBlackhole(e.bh)
	} else {
		e.ifc.SetDown(e.down)
	}
}

func (r *rig) adminAt(at time.Duration, ifc *netem.Iface, down bool) {
	r.sim.ScheduleArg(at, applyEdge, &ifaceEdge{ifc: ifc, down: down})
}

func (r *rig) blackholeAt(at time.Duration, ifc *netem.Iface, bh bool) {
	r.sim.ScheduleArg(at, applyEdge, &ifaceEdge{ifc: ifc, bh: bh, isBh: true})
}

// TestRejoinAfterAdminDown pins the recovery half of the subflow
// lifecycle: an interface that goes administratively down mid-flow and
// comes back is re-joined (fresh SYN carrying MP_JOIN after a backoff)
// and the transfer completes over both paths with nothing stranded.
func TestRejoinAfterAdminDown(t *testing.T) {
	r := newRig(1, symmetric(10, 15*time.Millisecond), symmetric(8, 30*time.Millisecond), ServerConfig{})
	var srvConn *Conn
	r.srv.OnConn = func(c *Conn) {
		srvConn = c
		c.Send(1 << 20)
		c.Close()
	}
	c := Dial(r.sim, r.client, r.host, Config{ConnID: "mp1", Primary: "wifi"}, Callbacks{})
	r.adminAt(80*time.Millisecond, r.lte, true)
	r.adminAt(400*time.Millisecond, r.lte, false)
	r.sim.Run()

	if c.RecvTotal() != 1<<20 {
		t.Fatalf("received %d, want %d", c.RecvTotal(), 1<<20)
	}
	var lte *Subflow
	for _, sf := range c.Subflows() {
		if sf.Iface.Name == "lte" {
			lte = sf
		}
	}
	if lte == nil {
		t.Fatal("no lte subflow")
	}
	if lte.Dead() || !lte.Established() {
		t.Fatalf("lte subflow not re-established: dead=%v est=%v", lte.Dead(), lte.Established())
	}
	if u := srvConn.UncoveredBytes(); u != 0 {
		t.Fatalf("server stranded %d scheduled bytes", u)
	}
	if !srvConn.Closed() || srvConn.Aborted() {
		t.Fatalf("server conn closed=%v aborted=%v, want graceful close", srvConn.Closed(), srvConn.Aborted())
	}
}

// TestSubflowKilledMidRejoinNoStrandedMappings is the regression the
// issue names: a subflow killed again while its re-join handshake is in
// flight must not strand outstanding mapping records — the data must
// finish over the surviving path and a later recovery must still work.
func TestSubflowKilledMidRejoinNoStrandedMappings(t *testing.T) {
	r := newRig(3, symmetric(10, 15*time.Millisecond), symmetric(8, 30*time.Millisecond), ServerConfig{})
	var srvConn *Conn
	r.srv.OnConn = func(c *Conn) {
		srvConn = c
		c.Send(2 << 20)
		c.Close()
	}
	c := Dial(r.sim, r.client, r.host, Config{ConnID: "mp1", Primary: "wifi"}, Callbacks{})
	// Kill lte mid-flow; revive; the re-join fires after the 200 ms
	// backoff, and we kill the interface again while that handshake is
	// still in flight (lte owd 30 ms, so it needs ~60 ms). Then revive
	// once more and let the doubled backoff complete the re-join.
	r.adminAt(80*time.Millisecond, r.lte, true)
	r.adminAt(300*time.Millisecond, r.lte, false)
	r.adminAt(510*time.Millisecond, r.lte, true)
	r.adminAt(700*time.Millisecond, r.lte, false)
	r.sim.Run()

	if c.RecvTotal() != 2<<20 {
		t.Fatalf("received %d, want %d", c.RecvTotal(), 2<<20)
	}
	if u := srvConn.UncoveredBytes(); u != 0 {
		t.Fatalf("server stranded %d scheduled bytes after mid-rejoin kill", u)
	}
	if !srvConn.Closed() || srvConn.Aborted() {
		t.Fatalf("server conn closed=%v aborted=%v, want graceful close", srvConn.Closed(), srvConn.Aborted())
	}
	if len(c.Subflows()) != 2 {
		t.Fatalf("client grew %d subflows, want 2 (re-join reuses the slot)", len(c.Subflows()))
	}
}

// TestWatchdogAbortsStuckConn pins the stuck-flow watchdog: when every
// path is silently blackholed forever, the connection records stall
// events and aborts instead of hanging the event loop.
func TestWatchdogAbortsStuckConn(t *testing.T) {
	r := newRig(5, symmetric(10, 15*time.Millisecond), symmetric(8, 30*time.Millisecond),
		ServerConfig{WatchdogRTOs: 2, WatchdogMaxStalls: 2})
	var srvConn *Conn
	stalls := 0
	r.srv.OnConn = func(c *Conn) {
		srvConn = c
		c.SetCallbacks(Callbacks{OnStall: func(c *Conn, total int) { stalls = total }})
		c.Send(8 << 20)
		c.Close()
	}
	Dial(r.sim, r.client, r.host, Config{ConnID: "mp1", Primary: "wifi"}, Callbacks{})
	r.blackholeAt(100*time.Millisecond, r.wifi, true)
	r.blackholeAt(100*time.Millisecond, r.lte, true)
	r.sim.Run() // must drain — the watchdog guarantees termination

	if srvConn == nil {
		t.Fatal("no server conn")
	}
	if !srvConn.Aborted() {
		t.Fatal("stuck connection did not abort")
	}
	if srvConn.StallCount == 0 || stalls != srvConn.StallCount {
		t.Fatalf("stall events not recorded: count=%d callback=%d", srvConn.StallCount, stalls)
	}
}

// TestWatchdogQuietOnHealthyTransfer pins that an armed watchdog on a
// fault-free run records nothing and changes nothing.
func TestWatchdogQuietOnHealthyTransfer(t *testing.T) {
	r := newRig(5, symmetric(10, 15*time.Millisecond), symmetric(8, 30*time.Millisecond),
		ServerConfig{WatchdogRTOs: 3})
	var srvConn *Conn
	r.srv.OnConn = func(c *Conn) {
		srvConn = c
		c.Send(1 << 20)
		c.Close()
	}
	c := Dial(r.sim, r.client, r.host, Config{ConnID: "mp1", Primary: "wifi"}, Callbacks{})
	r.sim.Run()
	if c.RecvTotal() != 1<<20 {
		t.Fatalf("received %d, want %d", c.RecvTotal(), 1<<20)
	}
	if srvConn.StallCount != 0 || srvConn.Aborted() {
		t.Fatalf("healthy transfer recorded stalls=%d aborted=%v", srvConn.StallCount, srvConn.Aborted())
	}
}
