package mptcp

import (
	"testing"
	"testing/quick"
	"time"

	"multinet/internal/netem"
	"multinet/internal/simnet"
	"multinet/internal/tcp"
)

// rig is a two-interface (wifi + lte) client talking to one server —
// the paper's Fig. 5 topology.
type rig struct {
	sim    *simnet.Sim
	host   *netem.Host
	wifi   *netem.Iface
	lte    *netem.Iface
	client *tcp.Stack
	server *tcp.Stack
	srv    *Server
}

type pathSpec struct {
	mbps float64
	owd  time.Duration
	loss float64
}

func newRig(seed int64, wifi, lte pathSpec, scfg ServerConfig) *rig {
	sim := simnet.New(seed)
	mk := func(name string, ps pathSpec) *netem.Iface {
		cfg := func(stream string) netem.LinkConfig {
			return netem.LinkConfig{
				PropDelay:  ps.owd,
				LossProb:   ps.loss,
				RNG:        sim.RNG(stream),
				QueueLimit: 150,
			}
		}
		up := netem.NewFixedLink(sim, ps.mbps, cfg("loss/"+name+"/up"))
		down := netem.NewFixedLink(sim, ps.mbps, cfg("loss/"+name+"/down"))
		return netem.NewIface(sim, name, up, down)
	}
	r := &rig{sim: sim}
	r.wifi = mk("wifi", wifi)
	r.lte = mk("lte", lte)
	r.host = netem.NewHost("client")
	r.host.Attach(r.wifi)
	r.host.Attach(r.lte)
	r.client = tcp.NewStack(sim, tcp.ClientSide)
	r.server = tcp.NewStack(sim, tcp.ServerSide)
	for _, i := range []*netem.Iface{r.wifi, r.lte} {
		r.client.Bind(i)
		r.server.Bind(i)
	}
	r.srv = NewServer(sim, r.server, scfg)
	return r
}

// download starts a server→client transfer of size bytes over MPTCP
// and returns (completion time, ok).
func (r *rig) download(cfg Config, size int) (time.Duration, bool) {
	var done time.Duration
	r.srv.OnConn = func(c *Conn) {
		c.Send(size)
		c.Close()
	}
	Dial(r.sim, r.client, r.host, cfg, Callbacks{
		OnData: func(c *Conn, total int64) {
			if total >= int64(size) && done == 0 {
				done = r.sim.Now()
			}
		},
	})
	r.sim.Run()
	return done, done > 0
}

func symmetric(mbps float64, owd time.Duration) pathSpec {
	return pathSpec{mbps: mbps, owd: owd}
}

func TestDownloadCompletes(t *testing.T) {
	r := newRig(1, symmetric(10, 15*time.Millisecond), symmetric(8, 30*time.Millisecond), ServerConfig{})
	d, ok := r.download(Config{ConnID: "mp1", Primary: "wifi"}, 1<<20)
	if !ok {
		t.Fatal("download did not complete")
	}
	if d <= 0 {
		t.Fatal("bad completion time")
	}
}

func TestBothSubflowsEstablished(t *testing.T) {
	r := newRig(1, symmetric(10, 15*time.Millisecond), symmetric(8, 30*time.Millisecond), ServerConfig{})
	var estOrder []string
	r.srv.OnConn = func(c *Conn) { c.Send(500_000); c.Close() }
	c := Dial(r.sim, r.client, r.host, Config{ConnID: "mp1", Primary: "wifi"}, Callbacks{
		OnSubflowEstablished: func(c *Conn, sf *Subflow) {
			estOrder = append(estOrder, sf.Iface.Name)
		},
	})
	r.sim.Run()
	if len(c.Subflows()) != 2 {
		t.Fatalf("subflows = %d, want 2", len(c.Subflows()))
	}
	if len(estOrder) != 2 || estOrder[0] != "wifi" || estOrder[1] != "lte" {
		t.Fatalf("establishment order = %v, want [wifi lte]", estOrder)
	}
}

func TestJoinStartsAfterPrimaryHandshake(t *testing.T) {
	// The MP_JOIN must not start before the primary completes — the
	// late-join mechanism behind the paper's short-flow result.
	r := newRig(1, symmetric(10, 50*time.Millisecond), symmetric(10, 5*time.Millisecond), ServerConfig{})
	var primaryEst, joinEst time.Duration
	r.srv.OnConn = func(c *Conn) { c.Send(100_000); c.Close() }
	Dial(r.sim, r.client, r.host, Config{ConnID: "mp1", Primary: "wifi"}, Callbacks{
		OnSubflowEstablished: func(c *Conn, sf *Subflow) {
			if sf.Iface.Name == "wifi" {
				primaryEst = r.sim.Now()
			} else {
				joinEst = r.sim.Now()
			}
		},
	})
	r.sim.Run()
	if primaryEst == 0 || joinEst == 0 {
		t.Fatal("subflows not established")
	}
	// Even though LTE is much faster here, its join cannot complete
	// before the WiFi primary handshake (100 ms RTT) plus its own.
	if joinEst <= primaryEst {
		t.Fatalf("join established at %v, before primary at %v", joinEst, primaryEst)
	}
}

func TestAggregationOnComparablePaths(t *testing.T) {
	// Two comparable paths: long-flow MPTCP throughput should exceed
	// either single path alone (paper Fig. 7b behaviour).
	const size = 4 << 20
	r := newRig(2, symmetric(6, 20*time.Millisecond), symmetric(5, 30*time.Millisecond), ServerConfig{})
	d, ok := r.download(Config{ConnID: "mp1", Primary: "wifi"}, size)
	if !ok {
		t.Fatal("no completion")
	}
	mbps := float64(size) * 8 / d.Seconds() / 1e6
	if mbps < 7 {
		t.Fatalf("MPTCP aggregate = %.2f Mbit/s, want > 7 (6+5 paths)", mbps)
	}
}

func TestShortFlowDominatedByPrimaryChoice(t *testing.T) {
	// 10 KB flow: primary on the low-RTT fast path completes much
	// faster than primary on the slow path (paper Fig. 8).
	const size = 10_000
	fastPrimary := func() time.Duration {
		r := newRig(3, symmetric(20, 10*time.Millisecond), symmetric(2, 80*time.Millisecond), ServerConfig{})
		d, ok := r.download(Config{ConnID: "mp1", Primary: "wifi"}, size)
		if !ok {
			t.Fatal("no completion")
		}
		return d
	}()
	slowPrimary := func() time.Duration {
		r := newRig(3, symmetric(20, 10*time.Millisecond), symmetric(2, 80*time.Millisecond), ServerConfig{})
		d, ok := r.download(Config{ConnID: "mp1", Primary: "lte"}, size)
		if !ok {
			t.Fatal("no completion")
		}
		return d
	}()
	if float64(slowPrimary) < 1.5*float64(fastPrimary) {
		t.Fatalf("slow-primary FCT %v not >> fast-primary FCT %v", slowPrimary, fastPrimary)
	}
}

func TestCoupledNoMoreAggressiveThanDecoupled(t *testing.T) {
	// On a long flow, coupled (LIA) throughput must not exceed
	// decoupled throughput (paper Section 3.5: decoupled grows faster).
	const size = 4 << 20
	run := func(cc CongestionMode) time.Duration {
		r := newRig(4, pathSpec{8, 20 * time.Millisecond, 0.002}, pathSpec{6, 35 * time.Millisecond, 0.002}, ServerConfig{CC: cc})
		d, ok := r.download(Config{ConnID: "mp1", Primary: "wifi", CC: cc}, size)
		if !ok {
			t.Fatal("no completion")
		}
		return d
	}
	decoupled := run(Decoupled)
	coupled := run(Coupled)
	if coupled < decoupled {
		t.Fatalf("coupled (%v) finished before decoupled (%v)", coupled, decoupled)
	}
}

func TestBackupSubflowCarriesNoData(t *testing.T) {
	const size = 1 << 20
	r := newRig(5, symmetric(10, 15*time.Millisecond), symmetric(8, 30*time.Millisecond),
		ServerConfig{Mode: Backup})
	dataOnLTE := 0
	r.lte.AddSendTap(func(p *netem.Packet) {
		if seg, ok := p.Payload.(*tcp.Segment); ok && seg.PayloadLen > 0 {
			dataOnLTE++
		}
	})
	cfg := Config{ConnID: "mp1", Primary: "wifi", Mode: Backup, BackupIfaces: []string{"lte"}}
	if _, ok := r.download(cfg, size); !ok {
		t.Fatal("no completion")
	}
	if dataOnLTE != 0 {
		t.Fatalf("backup subflow carried %d data segments, want 0", dataOnLTE)
	}
}

func TestBackupHandshakeAndFinStillHappen(t *testing.T) {
	// Paper Section 3.6: even in backup mode the backup interface sees
	// SYN at start and FIN at end (which is why it burns tail energy).
	r := newRig(5, symmetric(10, 15*time.Millisecond), symmetric(8, 30*time.Millisecond),
		ServerConfig{Mode: Backup})
	var syn, fin int
	r.lte.AddSendTap(func(p *netem.Packet) {
		seg, ok := p.Payload.(*tcp.Segment)
		if !ok {
			return
		}
		if seg.Flags.Has(tcp.FlagSYN) {
			syn++
		}
		if seg.Flags.Has(tcp.FlagFIN) {
			fin++
		}
	})
	cfg := Config{ConnID: "mp1", Primary: "wifi", Mode: Backup, BackupIfaces: []string{"lte"}}
	if _, ok := r.download(cfg, 500_000); !ok {
		t.Fatal("no completion")
	}
	if syn == 0 {
		t.Fatal("backup subflow sent no SYN")
	}
	if fin == 0 {
		t.Fatal("backup subflow sent no FIN")
	}
}

func TestBackupFailoverOnAdminDown(t *testing.T) {
	// iproute-style down on the primary mid-flow: the backup subflow
	// takes over immediately (paper Fig. 15e/f).
	const size = 2 << 20
	r := newRig(6, symmetric(8, 15*time.Millisecond), symmetric(8, 25*time.Millisecond),
		ServerConfig{Mode: Backup})
	var done time.Duration
	r.srv.OnConn = func(c *Conn) { c.Send(size); c.Close() }
	Dial(r.sim, r.client, r.host, Config{
		ConnID: "mp1", Primary: "wifi", Mode: Backup, BackupIfaces: []string{"lte"},
	}, Callbacks{
		OnData: func(c *Conn, total int64) {
			if total >= int64(size) && done == 0 {
				done = r.sim.Now()
			}
		},
	})
	r.sim.After(500*time.Millisecond, func() { r.wifi.SetDown(true) })
	r.sim.Run()
	if done == 0 {
		t.Fatal("transfer did not complete after failover")
	}
	if done < 500*time.Millisecond {
		t.Fatal("transfer finished before the failover was exercised")
	}
}

func TestBackupBlackholeStalls(t *testing.T) {
	// Silently blackholing the primary (pulling the cable) must NOT
	// activate the backup — the paper's Fig. 15g anomaly. The backup
	// emits only a window update; the transfer stalls until replug.
	const size = 2 << 20
	r := newRig(7, symmetric(8, 15*time.Millisecond), symmetric(8, 25*time.Millisecond),
		ServerConfig{Mode: Backup})
	var done time.Duration
	dataOnBackup := 0
	pureAcksOnBackup := 0
	r.lte.AddSendTap(func(p *netem.Packet) {
		seg, ok := p.Payload.(*tcp.Segment)
		if !ok {
			return
		}
		if seg.PayloadLen > 0 {
			dataOnBackup++
		} else if seg.Flags == tcp.FlagACK && r.sim.Now() > 500*time.Millisecond {
			pureAcksOnBackup++
		}
	})
	r.srv.OnConn = func(c *Conn) { c.Send(size); c.Close() }
	Dial(r.sim, r.client, r.host, Config{
		ConnID: "mp1", Primary: "wifi", Mode: Backup, BackupIfaces: []string{"lte"},
	}, Callbacks{
		OnData: func(c *Conn, total int64) {
			if total >= int64(size) && done == 0 {
				done = r.sim.Now()
			}
		},
	})
	r.sim.After(500*time.Millisecond, func() { r.wifi.SetBlackhole(true) })
	// Check the stall window, then replug and let it finish.
	r.sim.Schedule(20*time.Second, func() {
		if done != 0 {
			t.Error("transfer completed during blackhole — backup must stay idle")
		}
	})
	r.sim.Schedule(30*time.Second, func() { r.wifi.SetBlackhole(false) })
	r.sim.Run()
	if done == 0 {
		t.Fatal("transfer did not resume after replug")
	}
	if done < 30*time.Second {
		t.Fatalf("completed at %v, before replug", done)
	}
	if dataOnBackup != 0 {
		t.Fatalf("backup carried %d data segments during blackhole", dataOnBackup)
	}
	if pureAcksOnBackup == 0 {
		t.Fatal("expected the lone window-update on the backup subflow (Fig. 15g)")
	}
}

func TestFullModeBlackholeReinjects(t *testing.T) {
	// In Full-MPTCP mode a silent blackhole on one path is survivable:
	// outstanding mappings are reinjected on the live subflow after
	// repeated RTOs.
	const size = 2 << 20
	r := newRig(8, symmetric(8, 15*time.Millisecond), symmetric(8, 25*time.Millisecond), ServerConfig{})
	var done time.Duration
	r.srv.OnConn = func(c *Conn) { c.Send(size); c.Close() }
	Dial(r.sim, r.client, r.host, Config{ConnID: "mp1", Primary: "wifi"}, Callbacks{
		OnData: func(c *Conn, total int64) {
			if total >= int64(size) && done == 0 {
				done = r.sim.Now()
			}
		},
	})
	r.sim.After(400*time.Millisecond, func() { r.lte.SetBlackhole(true) })
	r.sim.Run()
	if done == 0 {
		t.Fatal("transfer did not complete over the surviving path")
	}
	srvConn := r.srv.Conn("mp1")
	if srvConn.Reinjections == 0 {
		t.Fatal("expected reinjections after subflow stall")
	}
}

func TestNoJoinAblation(t *testing.T) {
	r := newRig(9, symmetric(10, 15*time.Millisecond), symmetric(8, 30*time.Millisecond), ServerConfig{})
	var c *Conn
	r.srv.OnConn = func(sc *Conn) { sc.Send(100_000); sc.Close() }
	done := false
	c = Dial(r.sim, r.client, r.host, Config{ConnID: "mp1", Primary: "wifi", NoJoin: true}, Callbacks{
		OnData: func(c *Conn, total int64) { done = done || total >= 100_000 },
	})
	r.sim.Run()
	if !done {
		t.Fatal("no completion")
	}
	if len(c.Subflows()) != 1 {
		t.Fatalf("subflows = %d, want 1 with NoJoin", len(c.Subflows()))
	}
}

func TestSimultaneousJoinAblation(t *testing.T) {
	// With simultaneous join, the second subflow's handshake starts at
	// dial time, so it establishes earlier than with the default
	// sequential join.
	joinTime := func(simultaneous bool) time.Duration {
		r := newRig(10, symmetric(10, 40*time.Millisecond), symmetric(10, 40*time.Millisecond), ServerConfig{})
		var join time.Duration
		r.srv.OnConn = func(c *Conn) { c.Send(50_000); c.Close() }
		Dial(r.sim, r.client, r.host, Config{
			ConnID: "mp1", Primary: "wifi", SimultaneousJoin: simultaneous,
		}, Callbacks{
			OnSubflowEstablished: func(c *Conn, sf *Subflow) {
				if sf.Iface.Name == "lte" {
					join = r.sim.Now()
				}
			},
		})
		r.sim.Run()
		return join
	}
	seq := joinTime(false)
	sim := joinTime(true)
	if sim >= seq {
		t.Fatalf("simultaneous join at %v, not earlier than sequential %v", sim, seq)
	}
}

func TestUploadDirection(t *testing.T) {
	const size = 1 << 20
	r := newRig(11, symmetric(6, 20*time.Millisecond), symmetric(5, 30*time.Millisecond), ServerConfig{})
	var done time.Duration
	r.srv.OnConn = func(c *Conn) {
		c.SetCallbacks(Callbacks{OnData: func(c *Conn, total int64) {
			if total >= int64(size) && done == 0 {
				done = r.sim.Now()
			}
		}})
	}
	cl := Dial(r.sim, r.client, r.host, Config{ConnID: "up1", Primary: "wifi"}, Callbacks{
		OnEstablished: func(c *Conn) { c.Send(size); c.Close() },
	})
	r.sim.Run()
	if done == 0 {
		t.Fatal("upload did not complete")
	}
	_ = cl
	mbps := float64(size) * 8 / done.Seconds() / 1e6
	if mbps < 6 {
		t.Fatalf("upload aggregate %.2f Mbit/s, want > 6", mbps)
	}
}

func TestConnectionClosesCleanly(t *testing.T) {
	r := newRig(12, symmetric(10, 10*time.Millisecond), symmetric(10, 20*time.Millisecond), ServerConfig{})
	closed := false
	r.srv.OnConn = func(c *Conn) { c.Send(200_000); c.Close() }
	c := Dial(r.sim, r.client, r.host, Config{ConnID: "mp1", Primary: "wifi"}, Callbacks{
		OnData: func(c *Conn, total int64) {
			if total >= 200_000 {
				c.Close()
			}
		},
		OnClosed: func(c *Conn) { closed = true },
	})
	r.sim.Run()
	if !closed {
		t.Fatal("client connection did not close")
	}
	for _, sf := range c.Subflows() {
		if sf.TCP.State() != tcp.StateDone {
			t.Fatalf("subflow %s state = %v, want done", sf.Name(), sf.TCP.State())
		}
	}
}

// Property: exact reliable delivery across subflows for any size and
// loss seeds.
func TestPropertyReassemblyExact(t *testing.T) {
	f := func(seed int64, sizeRaw uint32) bool {
		size := int(sizeRaw%800_000) + 1
		r := newRig(seed, pathSpec{9, 15 * time.Millisecond, 0.02}, pathSpec{7, 30 * time.Millisecond, 0.02}, ServerConfig{})
		var got int64
		r.srv.OnConn = func(c *Conn) { c.Send(size); c.Close() }
		Dial(r.sim, r.client, r.host, Config{ConnID: "p", Primary: "wifi"}, Callbacks{
			OnData: func(c *Conn, total int64) { got = total },
		})
		r.sim.Run()
		return got == int64(size)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// Property: connection-level delivery is monotone.
func TestPropertyMonotoneDelivery(t *testing.T) {
	f := func(seed int64) bool {
		r := newRig(seed, pathSpec{8, 10 * time.Millisecond, 0.03}, pathSpec{8, 40 * time.Millisecond, 0.03}, ServerConfig{})
		prev := int64(-1)
		ok := true
		r.srv.OnConn = func(c *Conn) { c.Send(300_000); c.Close() }
		Dial(r.sim, r.client, r.host, Config{ConnID: "p", Primary: "lte"}, Callbacks{
			OnData: func(c *Conn, total int64) {
				if total <= prev {
					ok = false
				}
				prev = total
			},
		})
		r.sim.Run()
		return ok && prev == 300_000
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestLIASingleSubflowBehavesLikeReno(t *testing.T) {
	// With one subflow, LIA's alpha reduces the increase to at most
	// Reno's; throughput should be within a few percent of decoupled.
	run := func(cc CongestionMode) time.Duration {
		r := newRig(13, symmetric(10, 20*time.Millisecond), symmetric(10, 20*time.Millisecond), ServerConfig{CC: cc})
		d, ok := r.download(Config{ConnID: "mp1", Primary: "wifi", NoJoin: true, CC: cc}, 2<<20)
		if !ok {
			t.Fatal("no completion")
		}
		return d
	}
	reno := run(Decoupled)
	lia := run(Coupled)
	ratio := float64(lia) / float64(reno)
	if ratio > 1.15 || ratio < 0.85 {
		t.Fatalf("single-subflow LIA/Reno FCT ratio = %.3f, want ~1", ratio)
	}
}

func TestDeterministicMPTCPRun(t *testing.T) {
	run := func() time.Duration {
		r := newRig(42, pathSpec{9, 15 * time.Millisecond, 0.01}, pathSpec{6, 35 * time.Millisecond, 0.01}, ServerConfig{})
		d, ok := r.download(Config{ConnID: "det", Primary: "wifi"}, 1<<20)
		if !ok {
			t.Fatal("no completion")
		}
		return d
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("non-deterministic MPTCP run: %v vs %v", a, b)
	}
}
