package mptcp

import (
	"multinet/internal/simnet"
	"multinet/internal/tcp"
)

// ServerConfig carries the connection parameters a server applies to
// every accepted MPTCP connection (the client chooses the primary
// interface and backup flags; both ends must agree on congestion
// coupling, as the paper notes in Section 3.5).
type ServerConfig struct {
	// CC selects coupled or decoupled congestion control.
	CC CongestionMode
	// Mode selects Full-MPTCP or Backup operation.
	Mode Mode
	// RecvBuf bounds server-side scheduling ahead of the data-ACK.
	RecvBuf int
	// Scheduler names the data scheduler applied to accepted
	// connections (empty: SchedMinSRTT). The server side matters most
	// for downloads — the data sender runs the scheduler.
	Scheduler string
	// WatchdogRTOs arms the stuck-flow watchdog on accepted connections
	// (0 disables; see Config.WatchdogRTOs).
	WatchdogRTOs int
	// WatchdogMaxStalls bounds consecutive stalls before the watchdog
	// aborts the connection (0: DefaultWatchdogMaxStalls).
	WatchdogMaxStalls int
}

// Server accepts MPTCP connections on a server-side TCP stack,
// demultiplexing MP_CAPABLE and MP_JOIN SYNs into connections and
// subflows.
type Server struct {
	sim   *simnet.Sim
	stack *tcp.Stack
	cfg   ServerConfig
	conns map[string]*Conn

	// OnConn fires when a new MPTCP connection is accepted (its primary
	// subflow's SYN arrived). The app installs callbacks and queues
	// response data here.
	OnConn func(*Conn)
	// AcceptTCP, when set, handles plain-TCP SYNs (no MPTCP option) so
	// single-path and multipath service can share a stack.
	AcceptTCP func(*tcp.Conn)
}

// NewServer installs an MPTCP acceptor on the stack.
func NewServer(sim *simnet.Sim, stack *tcp.Stack, cfg ServerConfig) *Server {
	s := &Server{sim: sim, stack: stack, cfg: cfg, conns: make(map[string]*Conn)}
	stack.Accept = s.accept
	return s
}

// SetConfig changes the parameters applied to subsequently accepted
// connections (existing connections are unaffected). Experiment
// harnesses use it between sequential transfers.
func (s *Server) SetConfig(cfg ServerConfig) { s.cfg = cfg }

// Conn returns the accepted connection with the given ID, or nil.
func (s *Server) Conn(connID string) *Conn { return s.conns[connID] }

// accept is the Stack.Accept hook: the new tcp.Conn has not yet
// processed its SYN, so install a one-shot OnSegment hook to inspect
// the MPTCP option and rewire the connection.
func (s *Server) accept(tc *tcp.Conn) {
	tc.SetCallbacks(tcp.Callbacks{
		OnSegment: func(tc *tcp.Conn, seg *tcp.Segment) { s.firstSegment(tc, seg) },
	})
}

func (s *Server) firstSegment(tc *tcp.Conn, seg *tcp.Segment) {
	switch opt := seg.Opt.(type) {
	case *MPCapable:
		c := newConn(s.sim, s.stack, nil, tcp.ServerSide, Config{
			ConnID:    opt.ConnID,
			CC:        s.cfg.CC,
			Mode:      s.cfg.Mode,
			RecvBuf:   s.cfg.RecvBuf,
			Scheduler: s.cfg.Scheduler,
			Primary:   tc.Iface().Name,

			WatchdogRTOs:      s.cfg.WatchdogRTOs,
			WatchdogMaxStalls: s.cfg.WatchdogMaxStalls,
		}, Callbacks{})
		s.conns[opt.ConnID] = c
		c.adoptSubflow(tc, tc.Iface(), false)
		tc.SetSynOpt(&MPCapable{ConnID: opt.ConnID})
		if s.OnConn != nil {
			s.OnConn(c)
		}
	case *MPJoin:
		c := s.conns[opt.ConnID]
		if c == nil {
			return // stale join: ignore; the subflow will time out
		}
		c.adoptSubflow(tc, tc.Iface(), opt.Backup)
		tc.SetSynOpt(&MPJoin{ConnID: opt.ConnID, Backup: opt.Backup})
	default:
		if s.AcceptTCP != nil {
			s.AcceptTCP(tc)
		}
	}
}

// SetCallbacks installs connection-level hooks (used by Server.OnConn
// consumers; the client side passes callbacks to Dial).
func (c *Conn) SetCallbacks(cb Callbacks) { c.cb = cb }
