package mptcp

import (
	"sort"
	"sync"
	"time"
)

// Scheduler decides which subflows carry which bytes — the policy the
// paper shows makes or breaks MPTCP on disparate paths (Figs. 15-21).
// A Scheduler instance is private to one Conn, so implementations may
// keep per-connection state (e.g. a rotation counter).
//
// The connection consults the scheduler at two points:
//
//   - Rank orders the mode-eligible subflows for data offering; wake
//     notifies them in this order, so earlier subflows pull first and
//     the first with window space wins the next mapping.
//   - Admit gates fresh (never-sent) data per subflow: returning false
//     skips sf for new mappings while still letting it carry
//     retransmission-pool and duplicate mappings. HoL-aware policies
//     use it to keep a slow subflow from stalling the connection-level
//     receive buffer.
//
// Reinjected mappings (rtxPool) bypass Admit: recovery data may go
// anywhere, or a dead path's bytes could be stranded.
type Scheduler interface {
	// Name returns the scheduler's registry name.
	Name() string
	// Rank orders the mode-eligible subflows for data offering. It may
	// reorder sfs in place and must return a permutation of it.
	Rank(c *Conn, sfs []*Subflow) []*Subflow
	// Admit reports whether fresh connection-level data may be mapped
	// onto sf right now.
	Admit(c *Conn, sf *Subflow) bool
}

// duplicator is implemented by schedulers that copy fresh mappings
// onto additional subflows (the Redundant policy).
type duplicator interface {
	// onFreshMapping is called after a fresh mapping m was pulled by
	// src; the implementation may enqueue duplicates on other subflows.
	onFreshMapping(c *Conn, src *Subflow, m mapping)
}

// Scheduler registry names.
const (
	// SchedMinSRTT is the Linux default: lowest-SRTT subflow first.
	SchedMinSRTT = "minsrtt"
	// SchedRoundRobin rotates over eligible subflows (ablation).
	SchedRoundRobin = "roundrobin"
	// SchedRedundant duplicates every fresh mapping on all eligible
	// non-backup subflows (latency protection for short flows).
	SchedRedundant = "redundant"
	// SchedHoLAware is a BLEST/ECF-style policy that skips a slow
	// subflow when the fast one can deliver the backlog sooner.
	SchedHoLAware = "holaware"
)

var (
	schedMu  sync.Mutex
	schedReg = map[string]func() Scheduler{}
)

// RegisterScheduler adds a scheduler constructor under a unique name
// (mirrors phy.RegisterRadioModel). It panics on an empty name, nil
// constructor, or duplicate — programmer errors caught at init.
func RegisterScheduler(name string, mk func() Scheduler) {
	schedMu.Lock()
	defer schedMu.Unlock()
	if name == "" {
		panic("mptcp: RegisterScheduler with empty name")
	}
	if mk == nil {
		panic("mptcp: RegisterScheduler with nil constructor: " + name)
	}
	if _, dup := schedReg[name]; dup {
		panic("mptcp: duplicate scheduler name: " + name)
	}
	schedReg[name] = mk
}

// NewScheduler builds a fresh instance of the named scheduler; it
// panics on an unknown name (configuration error).
func NewScheduler(name string) Scheduler {
	schedMu.Lock()
	mk, ok := schedReg[name]
	schedMu.Unlock()
	if !ok {
		panic("mptcp: unknown scheduler " + name)
	}
	return mk()
}

// SchedulerNames returns the registered scheduler names, sorted.
func SchedulerNames() []string {
	schedMu.Lock()
	defer schedMu.Unlock()
	out := make([]string, 0, len(schedReg))
	for n := range schedReg {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func init() {
	RegisterScheduler(SchedMinSRTT, func() Scheduler { return &minSRTT{} })
	RegisterScheduler(SchedRoundRobin, func() Scheduler { return &roundRobin{} })
	RegisterScheduler(SchedRedundant, func() Scheduler { return &redundant{} })
	RegisterScheduler(SchedHoLAware, func() Scheduler { return &holAware{} })
}

// schedulerFor resolves the configured scheduler, honouring the legacy
// RoundRobin ablation flag.
func schedulerFor(cfg Config) Scheduler {
	switch {
	case cfg.Scheduler != "":
		return NewScheduler(cfg.Scheduler)
	case cfg.RoundRobin:
		return NewScheduler(SchedRoundRobin)
	default:
		return NewScheduler(SchedMinSRTT)
	}
}

// sfSRTT is the scheduling view of a subflow's RTT: subflows without
// an estimate sort last.
func sfSRTT(sf *Subflow) time.Duration {
	if r := sf.TCP.SRTT(); r > 0 {
		return r
	}
	return time.Hour
}

// rankBySRTT is the shared min-SRTT ordering (stable, so attachment
// order breaks ties exactly as the pre-refactor scheduler did). It is
// a hand-rolled insertion sort: subflow counts are tiny (2-4), it is
// stable like sort.SliceStable, and unlike the closure-based sort it
// runs without allocating on every wake.
//
//multinet:hotpath
func rankBySRTT(sfs []*Subflow) []*Subflow {
	for i := 1; i < len(sfs); i++ {
		for j := i; j > 0 && sfSRTT(sfs[j]) < sfSRTT(sfs[j-1]); j-- {
			sfs[j], sfs[j-1] = sfs[j-1], sfs[j]
		}
	}
	return sfs
}

// minSRTT is the Linux default scheduler: offer data to the
// lowest-SRTT subflow first, no per-subflow gating.
type minSRTT struct{}

func (*minSRTT) Name() string                            { return SchedMinSRTT }
func (*minSRTT) Rank(c *Conn, sfs []*Subflow) []*Subflow { return rankBySRTT(sfs) }
func (*minSRTT) Admit(c *Conn, sf *Subflow) bool         { return true }

// roundRobin rotates the offering order one position per wake — the
// ablation that shows why Linux prefers the fastest path.
type roundRobin struct{ counter int }

func (*roundRobin) Name() string { return SchedRoundRobin }

func (s *roundRobin) Rank(c *Conn, sfs []*Subflow) []*Subflow {
	if n := len(sfs); n > 1 {
		s.counter++
		k := s.counter % n
		sfs = append(sfs[k:], sfs[:k]...)
	}
	return sfs
}

func (*roundRobin) Admit(c *Conn, sf *Subflow) bool { return true }

// redundant offers like min-SRTT but duplicates every fresh mapping on
// all other eligible subflows, trading capacity for latency: a short
// flow completes as soon as the fastest copy lands, so one slow or
// lossy path can never add head-of-line delay. Backup-priority
// subflows never receive duplicates — redundancy must not defeat
// Backup-mode semantics (paper Fig. 15g).
type redundant struct{}

func (*redundant) Name() string                            { return SchedRedundant }
func (*redundant) Rank(c *Conn, sfs []*Subflow) []*Subflow { return rankBySRTT(sfs) }
func (*redundant) Admit(c *Conn, sf *Subflow) bool         { return true }

// notifySubflow is the deferred NotifyData trampoline shared by every
// duplicate enqueue (no per-mapping closure).
func notifySubflow(a any) { a.(*Subflow).TCP.NotifyData() }

func (*redundant) onFreshMapping(c *Conn, src *Subflow, m mapping) {
	// Iterate the subflows directly: this runs nested inside wake's
	// iteration of the modeEligible scratch slice, which a fresh
	// modeEligible call here would clobber.
	for _, sf := range c.subflows {
		if sf == src || sf.Backup || !c.eligible(sf) {
			continue
		}
		sf.dupQueue = append(sf.dupQueue, m)
		// Defer the notify: pull runs inside src's TCP send loop, and
		// the duplicate target must start its own send from a clean
		// stack frame at the same virtual instant.
		c.sim.AfterArg(0, notifySubflow, sf)
	}
}

// holAware is a BLEST/ECF-style scheduler: before admitting fresh data
// on a subflow it checks whether the fastest subflow could deliver the
// whole backlog within the slow subflow's RTT. If so, mapping bytes on
// the slow subflow would only park them behind a long RTT and stall
// connection-level reassembly against the receive buffer
// (DefaultRecvBuf), so the slow subflow is skipped and the data waits
// for the fast path's window — the mitigation BLEST (Ferlin et al.)
// and ECF (Lim et al.) apply to the paper's Figs. 15-21 pathology.
type holAware struct{}

func (*holAware) Name() string                            { return SchedHoLAware }
func (*holAware) Rank(c *Conn, sfs []*Subflow) []*Subflow { return rankBySRTT(sfs) }

//multinet:hotpath
func (*holAware) Admit(c *Conn, sf *Subflow) bool {
	fast := fastestOther(c, sf)
	if fast == nil {
		return true // alone (or fastest): nothing to stall against
	}
	srttS, srttF := sfSRTT(sf), sfSRTT(fast)
	if srttS <= srttF || srttF <= 0 {
		return true
	}
	// Bytes the fast subflow can move in one slow-subflow RTT, at one
	// cwnd per fast RTT.
	rounds := float64(srttS) / float64(srttF)
	fastCap := float64(fast.TCP.CwndBytes()) * rounds
	// Backlog still to be scheduled (fresh bytes within the receive
	// buffer bound) plus what the fast subflow already has in flight.
	backlog := float64(c.schedulableBacklog()) + float64(fast.TCP.BytesInFlight())
	// If the fast path covers the backlog within the slow RTT, using
	// sf would finish no sooner and risks receive-buffer HoL blocking.
	return backlog > fastCap
}

// fastestOther returns the mode-eligible subflow with the lowest SRTT
// estimate, or nil if sf is it (or nothing else is eligible). It runs
// on every fresh-data admission, so it iterates in place rather than
// building the eligible slice.
func fastestOther(c *Conn, sf *Subflow) *Subflow {
	var best *Subflow
	for _, other := range c.subflows {
		if !other.established || other.dead || !c.allowedByMode(other) {
			continue
		}
		if best == nil || sfSRTT(other) < sfSRTT(best) {
			best = other
		}
	}
	if best == sf {
		return nil
	}
	return best
}

// schedulableBacklog returns the fresh bytes the connection could map
// right now: queued-but-unscheduled data clipped to the receive-buffer
// bound.
func (c *Conn) schedulableBacklog() int {
	if c.dataNxt >= c.sendTotal {
		return 0
	}
	n := c.sendTotal - c.dataNxt
	if lim := c.dataUna + uint64(c.cfg.recvBuf()); c.dataNxt+n > lim {
		if c.dataNxt >= lim {
			return 0
		}
		n = lim - c.dataNxt
	}
	return int(n)
}
