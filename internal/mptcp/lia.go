package mptcp

import (
	"time"

	"multinet/internal/tcp"
)

// liaIncrease returns the RFC 6356 Linked Increases Algorithm
// congestion-avoidance increase for one subflow.
//
// For an ACK of `acked` bytes on subflow i the window grows by
//
//	min( alpha * acked * MSS / cwnd_total ,  acked * MSS / cwnd_i )
//
// with
//
//	alpha = cwnd_total * max_i(cwnd_i / rtt_i^2) / (sum_i cwnd_i / rtt_i)^2
//
// which couples the subflows so the MPTCP connection takes no more
// capacity than one TCP on its best path — the "coupled" algorithm of
// the paper's Section 3.5. Slow start remains uncoupled, as in Linux.
func (c *Conn) liaIncrease(sf *Subflow) tcp.IncreaseFn {
	return func(tc *tcp.Conn, acked int) float64 {
		alpha, total := c.liaAlpha()
		if total <= 0 {
			return tcp.RenoIncrease(tc, acked)
		}
		coupled := alpha * float64(acked) * tcp.MSS / total
		solo := float64(acked) * tcp.MSS / float64(tc.CwndBytes())
		if coupled < solo {
			return coupled
		}
		return solo
	}
}

// liaAlpha computes the LIA alpha and the total window over subflows
// that currently participate (established, not dead, with an RTT
// estimate).
func (c *Conn) liaAlpha() (alpha, totalCwnd float64) {
	var sumRatio, maxTerm float64
	for _, sf := range c.subflows {
		if !sf.established || sf.dead {
			continue
		}
		rtt := sf.TCP.SRTT()
		if rtt <= 0 {
			rtt = 100 * time.Millisecond // pre-estimate default
		}
		w := float64(sf.TCP.CwndBytes())
		r := rtt.Seconds()
		totalCwnd += w
		sumRatio += w / r
		if t := w / (r * r); t > maxTerm {
			maxTerm = t
		}
	}
	if sumRatio == 0 || totalCwnd == 0 {
		return 0, 0
	}
	alpha = totalCwnd * maxTerm / (sumRatio * sumRatio)
	return alpha, totalCwnd
}
