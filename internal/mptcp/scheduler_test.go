package mptcp

import (
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"multinet/internal/netem"
	"multinet/internal/tcp"
)

func TestSchedulerRegistry(t *testing.T) {
	names := SchedulerNames()
	for _, want := range []string{SchedMinSRTT, SchedRoundRobin, SchedRedundant, SchedHoLAware} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("built-in scheduler %q not registered (have %v)", want, names)
		}
		if got := NewScheduler(want).Name(); got != want {
			t.Errorf("NewScheduler(%q).Name() = %q", want, got)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("NewScheduler on an unknown name should panic")
		}
	}()
	NewScheduler("no-such-scheduler")
}

// TestSplitReinjectionAck is the regression test for the stranded-
// mapping bug: pull splits an oversized reinjected mapping to the
// puller's window, so after a subflow re-pulls part of a range it
// already has outstanding, the ack for the split piece must also trim
// the overlapping original record. Exact (dataSeq, len) matching left
// the original stranded forever, to be spuriously reinjected on every
// later stall.
func TestSplitReinjectionAck(t *testing.T) {
	c := &Conn{cfg: Config{ConnID: "t"}, sched: NewScheduler(SchedMinSRTT)}
	sf := &Subflow{conn: c, established: true}
	c.subflows = []*Subflow{sf}

	// The subflow sent the full 3000-byte mapping once (segment lost),
	// RTO'd, and reinjected it into the shared pool.
	c.sendTotal, c.dataNxt = 3000, 3000
	sf.outstanding = []mapping{{dataSeq: 0, len: 3000}}
	c.rtxPool = []mapping{{dataSeq: 0, len: 3000}}

	// Post-RTO the window is small: the same subflow re-pulls the
	// reinjection split to 1000 bytes.
	n, opt, ok := c.pull(sf, 1000)
	if !ok || n != 1000 {
		t.Fatalf("split pull = (%d, %v), want (1000, true)", n, ok)
	}
	dss := opt.(*DSS)
	if dss.DataSeq != 0 || dss.Len != 1000 {
		t.Fatalf("split mapping = {%d, %d}, want {0, 1000}", dss.DataSeq, dss.Len)
	}
	if want := []mapping{{0, 3000}, {0, 1000}}; !reflect.DeepEqual(sf.outstanding, want) {
		t.Fatalf("outstanding after split pull = %v, want %v", sf.outstanding, want)
	}

	// The split piece is acked: BOTH records covering [0, 1000) must
	// shrink — the stale original is trimmed to its unacked remainder.
	sf.dead = true // keep wake from touching the TCP-less test subflow
	c.onMappingAcked(sf, &DSS{DataSeq: 0, Len: 1000})
	if want := []mapping{{1000, 2000}}; !reflect.DeepEqual(sf.outstanding, want) {
		t.Fatalf("outstanding after split ack = %v, want %v (original must be trimmed)",
			sf.outstanding, want)
	}

	// Acking the remainder clears the subflow completely.
	c.onMappingAcked(sf, &DSS{DataSeq: 1000, Len: 2000})
	if len(sf.outstanding) != 0 {
		t.Fatalf("outstanding after full ack = %v, want empty", sf.outstanding)
	}
}

func TestOnMappingAckedPartialOverlap(t *testing.T) {
	c := &Conn{cfg: Config{ConnID: "t"}, sched: NewScheduler(SchedMinSRTT)}
	sf := &Subflow{conn: c} // not established: wake skips it
	c.subflows = []*Subflow{sf}
	sf.outstanding = []mapping{{0, 100}, {100, 300}, {500, 100}}
	// Ack covers the tail of the first record, the head of the second,
	// and misses the third entirely.
	c.onMappingAcked(sf, &DSS{DataSeq: 50, Len: 150})
	want := []mapping{{0, 50}, {200, 200}, {500, 100}}
	if !reflect.DeepEqual(sf.outstanding, want) {
		t.Fatalf("outstanding = %v, want %v", sf.outstanding, want)
	}
	// A mid-record ack splits it in two.
	c.onMappingAcked(sf, &DSS{DataSeq: 250, Len: 50})
	want = []mapping{{0, 50}, {200, 50}, {300, 100}, {500, 100}}
	if !reflect.DeepEqual(sf.outstanding, want) {
		t.Fatalf("outstanding after mid-record ack = %v, want %v", sf.outstanding, want)
	}
}

// skipFastest is a test scheduler whose fresh-data admission is
// per-subflow: it refuses the wifi subflow entirely, so data can only
// flow over lte. With the old first-refusal `break` in Conn.wake the
// lte subflow was never notified and the transfer stalled.
type skipFastest struct{}

func (*skipFastest) Name() string                            { return "test-skip-wifi" }
func (*skipFastest) Rank(c *Conn, sfs []*Subflow) []*Subflow { return rankBySRTT(sfs) }
func (*skipFastest) Admit(c *Conn, sf *Subflow) bool         { return sf.Iface.Name != "wifi" }

func init() { RegisterScheduler("test-skip-wifi", func() Scheduler { return &skipFastest{} }) }

func TestWakeContinuesPastRefusedSubflow(t *testing.T) {
	// wifi is the faster path and ranks first; the scheduler refuses
	// it. wake must continue to the slower lte subflow instead of
	// breaking out of the offering loop.
	r := newRig(21, symmetric(10, 10*time.Millisecond), symmetric(5, 40*time.Millisecond),
		ServerConfig{Scheduler: "test-skip-wifi"})
	dataOnWifi := 0
	r.wifi.AddSendTap(func(p *netem.Packet) {
		if seg, ok := p.Payload.(*tcp.Segment); ok && seg.PayloadLen > 0 {
			dataOnWifi++
		}
	})
	d, ok := r.download(Config{ConnID: "mp1", Primary: "wifi", Scheduler: "test-skip-wifi"}, 200_000)
	if !ok {
		t.Fatal("download stalled: wake did not offer data past the refused fastest subflow")
	}
	if dataOnWifi != 0 {
		t.Fatalf("refused subflow carried %d data segments, want 0", dataOnWifi)
	}
	if d <= 0 {
		t.Fatal("bad completion time")
	}
}

func TestBackupSchedulerMatrix(t *testing.T) {
	// Paper Fig. 15g semantics must hold under EVERY registered
	// scheduler: a silently blackholed regular subflow does not
	// activate backup subflows.
	for _, sched := range SchedulerNames() {
		sched := sched
		t.Run(sched+"/blackhole", func(t *testing.T) {
			r := newRig(22, symmetric(8, 15*time.Millisecond), symmetric(8, 25*time.Millisecond),
				ServerConfig{Mode: Backup, Scheduler: sched})
			dataOnBackup := 0
			r.lte.AddSendTap(func(p *netem.Packet) {
				if seg, ok := p.Payload.(*tcp.Segment); ok && seg.PayloadLen > 0 {
					dataOnBackup++
				}
			})
			var done time.Duration
			r.srv.OnConn = func(c *Conn) { c.Send(1 << 20); c.Close() }
			Dial(r.sim, r.client, r.host, Config{
				ConnID: "mp1", Primary: "wifi", Mode: Backup,
				BackupIfaces: []string{"lte"}, Scheduler: sched,
			}, Callbacks{
				OnData: func(c *Conn, total int64) {
					if total >= 1<<20 && done == 0 {
						done = r.sim.Now()
					}
				},
			})
			r.sim.After(300*time.Millisecond, func() { r.wifi.SetBlackhole(true) })
			r.sim.RunUntil(15 * time.Second)
			if done != 0 {
				t.Errorf("%s: transfer completed during blackhole — backup must stay idle", sched)
			}
			if dataOnBackup != 0 {
				t.Errorf("%s: backup carried %d data segments during blackhole, want 0", sched, dataOnBackup)
			}
		})
	}

	t.Run("redundant/healthy", func(t *testing.T) {
		// Redundant duplicates onto eligible subflows — in Backup mode
		// that set must never include a backup subflow while a regular
		// one is alive.
		r := newRig(23, symmetric(10, 15*time.Millisecond), symmetric(8, 30*time.Millisecond),
			ServerConfig{Mode: Backup, Scheduler: SchedRedundant})
		dataOnBackup := 0
		r.lte.AddSendTap(func(p *netem.Packet) {
			if seg, ok := p.Payload.(*tcp.Segment); ok && seg.PayloadLen > 0 {
				dataOnBackup++
			}
		})
		cfg := Config{ConnID: "mp1", Primary: "wifi", Mode: Backup,
			BackupIfaces: []string{"lte"}, Scheduler: SchedRedundant}
		if _, ok := r.download(cfg, 1<<20); !ok {
			t.Fatal("no completion")
		}
		if dataOnBackup != 0 {
			t.Fatalf("Redundant mapped %d data segments onto the backup subflow, want 0", dataOnBackup)
		}
	})
}

func TestRedundantDuplicatesMappings(t *testing.T) {
	// Full-MPTCP mode: every fresh mapping is duplicated on the other
	// subflow, so both paths carry the payload and the total
	// transmitted payload is roughly twice the flow size.
	const size = 200_000
	r := newRig(24, symmetric(10, 15*time.Millisecond), symmetric(8, 30*time.Millisecond),
		ServerConfig{Scheduler: SchedRedundant})
	payload := map[string]int{}
	for _, ifc := range []*netem.Iface{r.wifi, r.lte} {
		name := ifc.Name
		ifc.AddSendTap(func(p *netem.Packet) {
			if seg, ok := p.Payload.(*tcp.Segment); ok {
				payload[name] += seg.PayloadLen
			}
		})
	}
	if _, ok := r.download(Config{ConnID: "mp1", Primary: "wifi", Scheduler: SchedRedundant}, size); !ok {
		t.Fatal("no completion")
	}
	if payload["wifi"] == 0 || payload["lte"] == 0 {
		t.Fatalf("both subflows must carry payload, got %v", payload)
	}
	// Duplicates already data-acked are pruned rather than sent, so the
	// duplication factor sits below 2x but well above single-copy.
	if total := payload["wifi"] + payload["lte"]; total < size*5/4 {
		t.Fatalf("total payload %d should show duplication (> 1.25x of %d)", total, size)
	}
}

func TestHoLAwareSkipsSlowPathOnShortFlow(t *testing.T) {
	// Very disparate paths, short flow: the fast subflow covers the
	// whole backlog within one slow-path RTT, so the HoL-aware
	// scheduler must keep every fresh byte off the slow path (mapping
	// there could only stall connection-level reassembly).
	const size = 30_000
	run := func(sched string) (time.Duration, int) {
		r := newRig(25, symmetric(20, 10*time.Millisecond), symmetric(1, 200*time.Millisecond),
			ServerConfig{Scheduler: sched})
		dataOnSlow := 0
		r.lte.AddSendTap(func(p *netem.Packet) {
			if seg, ok := p.Payload.(*tcp.Segment); ok && seg.PayloadLen > 0 {
				dataOnSlow++
			}
		})
		d, ok := r.download(Config{ConnID: "mp1", Primary: "wifi", Scheduler: sched}, size)
		if !ok {
			t.Fatalf("%s: no completion", sched)
		}
		return d, dataOnSlow
	}
	holD, holSlow := run(SchedHoLAware)
	if holSlow != 0 {
		t.Errorf("holaware put %d data segments on the slow path, want 0", holSlow)
	}
	minD, _ := run(SchedMinSRTT)
	// Skipping the slow path must not make the short flow slower.
	if holD > minD*11/10 {
		t.Errorf("holaware FCT %v should not exceed min-SRTT FCT %v by >10%%", holD, minD)
	}
}

// Property: exact reliable delivery for every registered scheduler
// under loss — scheduling policy must never break reassembly.
func TestPropertySchedulersDeliverExactly(t *testing.T) {
	for _, sched := range SchedulerNames() {
		sched := sched
		t.Run(sched, func(t *testing.T) {
			f := func(seed int64, sizeRaw uint32) bool {
				size := int(sizeRaw%400_000) + 1
				r := newRig(seed, pathSpec{9, 15 * time.Millisecond, 0.02},
					pathSpec{7, 30 * time.Millisecond, 0.02}, ServerConfig{Scheduler: sched})
				var got int64
				r.srv.OnConn = func(c *Conn) { c.Send(size); c.Close() }
				Dial(r.sim, r.client, r.host, Config{ConnID: "p", Primary: "wifi", Scheduler: sched},
					Callbacks{OnData: func(c *Conn, total int64) { got = total }})
				r.sim.Run()
				return got == int64(size)
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 6}); err != nil {
				t.Fatal(err)
			}
		})
	}
}
