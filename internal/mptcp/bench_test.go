package mptcp

import (
	"testing"
	"time"
)

// Micro-benchmarks for the MPTCP engine over two simulated paths.

func benchMPTCP(b *testing.B, size int, cc CongestionMode) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := newRig(int64(i+1), symmetric(10, 15*time.Millisecond),
			symmetric(8, 30*time.Millisecond), ServerConfig{CC: cc})
		if _, ok := r.download(Config{ConnID: "bench", Primary: "wifi", CC: cc}, size); !ok {
			b.Fatal("transfer incomplete")
		}
	}
	b.SetBytes(int64(size))
}

func BenchmarkMPTCP1MBDecoupled(b *testing.B) { benchMPTCP(b, 1<<20, Decoupled) }
func BenchmarkMPTCP1MBCoupled(b *testing.B)   { benchMPTCP(b, 1<<20, Coupled) }
func BenchmarkMPTCP10KB(b *testing.B)         { benchMPTCP(b, 10<<10, Decoupled) }
