package mptcp

import (
	"fmt"
	"sort"
	"time"

	"multinet/internal/netem"
	"multinet/internal/simnet"
	"multinet/internal/tcp"
)

// DefaultRecvBuf is the connection-level receive buffer: the scheduler
// never maps data more than this far beyond the receiver's cumulative
// data-ACK. Matches the order of Linux MPTCP's default rmem; it is the
// knob behind receive-window head-of-line blocking on disparate paths.
const DefaultRecvBuf = 512 << 10

// Config parameterises an MPTCP connection.
type Config struct {
	// ConnID uniquely names the connection; subflow flow IDs are
	// ConnID+"/"+iface.
	ConnID string
	// Primary is the interface for the primary subflow.
	Primary string
	// CC selects coupled (LIA) or decoupled (Reno) congestion control.
	CC CongestionMode
	// Mode selects Full-MPTCP or Backup operation.
	Mode Mode
	// BackupIfaces names the interfaces whose subflows are
	// backup-priority (only meaningful in Backup mode).
	BackupIfaces []string
	// RecvBuf bounds scheduling ahead of the peer's data-ACK
	// (default DefaultRecvBuf).
	RecvBuf int
	// NoJoin disables additional subflows (ablation: primary only).
	NoJoin bool
	// SimultaneousJoin starts all subflows at Dial time instead of
	// waiting for the primary handshake (ablation for the paper's
	// late-join effect).
	SimultaneousJoin bool
	// Scheduler names the registered data scheduler (see
	// RegisterScheduler); empty means SchedMinSRTT, the Linux default.
	Scheduler string
	// RoundRobin is the legacy ablation flag, equivalent to
	// Scheduler: SchedRoundRobin (ignored when Scheduler is set).
	RoundRobin bool
	// RejoinBackoff is the client-side delay before re-establishing a
	// subflow after its interface recovers from an administrative down
	// (default DefaultRejoinBackoff). Each consecutive failed re-join
	// attempt doubles it, up to a fixed cap.
	RejoinBackoff time.Duration
	// WatchdogRTOs, when positive, enables the per-connection stuck-flow
	// watchdog: with data pending and no forward progress across this
	// many virtual RTO spans, the connection records a stall event and
	// reinjects outstanding mappings; after WatchdogMaxStalls consecutive
	// stalls it aborts, so a chaos run can never hang silently.
	WatchdogRTOs int
	// WatchdogMaxStalls bounds consecutive stall events before the
	// watchdog gives up and aborts the connection (default
	// DefaultWatchdogMaxStalls).
	WatchdogMaxStalls int
}

// DefaultRejoinBackoff is the initial re-join delay after an interface
// recovers — long enough to let the link settle, short against any RTO.
const DefaultRejoinBackoff = 200 * time.Millisecond

// rejoinBackoffCap bounds exponential re-join backoff.
const rejoinBackoffCap = 10 * time.Second

// DefaultWatchdogMaxStalls is how many consecutive stall events the
// watchdog tolerates before aborting the connection.
const DefaultWatchdogMaxStalls = 3

func (c *Config) rejoinBackoff() time.Duration {
	if c.RejoinBackoff <= 0 {
		return DefaultRejoinBackoff
	}
	return c.RejoinBackoff
}

func (c *Config) watchdogMaxStalls() int {
	if c.WatchdogMaxStalls <= 0 {
		return DefaultWatchdogMaxStalls
	}
	return c.WatchdogMaxStalls
}

func (c *Config) recvBuf() int {
	if c.RecvBuf <= 0 {
		return DefaultRecvBuf
	}
	return c.RecvBuf
}

// Callbacks are connection-level event hooks.
type Callbacks struct {
	// OnEstablished fires when the primary subflow completes its
	// handshake.
	OnEstablished func(*Conn)
	// OnSubflowEstablished fires per subflow.
	OnSubflowEstablished func(*Conn, *Subflow)
	// OnData fires when connection-level in-order data advances.
	OnData func(c *Conn, total int64)
	// OnClosed fires when all subflows have fully closed.
	OnClosed func(*Conn)
	// OnStall fires when the stuck-flow watchdog records a stall event
	// (total is the connection's cumulative stall count).
	OnStall func(c *Conn, total int)
}

// mapping is a scheduled chunk of the connection-level byte stream.
type mapping struct {
	dataSeq uint64
	len     int
}

func (m mapping) end() uint64 { return m.dataSeq + uint64(m.len) }

// Subflow is one TCP subflow of an MPTCP connection.
type Subflow struct {
	TCP    *tcp.Conn
	Iface  *netem.Iface
	Backup bool

	conn        *Conn
	established bool
	dead        bool // administratively down
	outstanding []mapping
	ackScratch  []mapping // double buffer for onMappingAcked rebuilds
	dupQueue    []mapping // scheduler-duplicated mappings awaiting send
	reinjected  bool      // reinjection already performed for current stall

	// Re-join state (client side): a dead subflow whose interface came
	// back up re-establishes on a fresh tcp.Conn after a backoff.
	rejoining      bool // a re-join handshake is in flight
	rejoinAttempts int  // consecutive failed re-joins (drives backoff)
	rejoinTimer    simnet.Timer
}

// Name returns the subflow's flow identifier.
func (sf *Subflow) Name() string { return sf.TCP.Flow() }

// Established reports whether the subflow handshake completed.
func (sf *Subflow) Established() bool { return sf.established }

// Dead reports whether the subflow was administratively killed.
func (sf *Subflow) Dead() bool { return sf.dead }

// Conn is one endpoint of an MPTCP connection. Both the client and the
// server side use this type; the client side initiates subflows.
type Conn struct {
	sim  *simnet.Sim
	cfg  Config
	cb   Callbacks
	side tcp.Side

	stack    *tcp.Stack
	host     *netem.Host
	subflows []*Subflow

	// Sender state.
	sendTotal uint64 // bytes queued by the application
	dataNxt   uint64 // next unscheduled connection-level byte
	dataUna   uint64 // cumulative data-ACK from the peer
	rtxPool   []mapping
	closeReq  bool
	closed    bool

	// Receiver state.
	rcvNxt    uint64
	ooo       []mapping // out-of-order received intervals (sorted)
	recvTotal int64

	// Scheduling policy (see Scheduler).
	sched Scheduler
	// eligScratch is reused by modeEligible; wake consults it once per
	// data/ack event, so rebuilding it must not allocate.
	eligScratch []*Subflow

	// everEstablished records whether any subflow ever completed its
	// handshake: it gates the one-shot OnEstablished callback and decides
	// whether a re-join SYN carries MP_JOIN or restarts with MP_CAPABLE.
	everEstablished bool

	// Stuck-flow watchdog state (armed only when Config.WatchdogRTOs>0).
	watch     simnet.Timer
	watchUna  uint64 // dataUna snapshot at last watchdog arm
	watchRecv int64  // recvTotal snapshot at last watchdog arm
	stallRun  int    // consecutive stall events without progress

	// Diagnostics.
	Reinjections int
	// StallCount is the total number of watchdog stall events recorded.
	StallCount int
	// aborted records that AbortAll terminated the connection (watchdog
	// gave up or a harness forced quiescence) — delivery-completeness
	// invariants do not apply to aborted connections.
	aborted bool
}

// newConn builds the common state.
func newConn(sim *simnet.Sim, stack *tcp.Stack, host *netem.Host, side tcp.Side, cfg Config, cb Callbacks) *Conn {
	if cfg.ConnID == "" {
		panic("mptcp: ConnID required")
	}
	return &Conn{sim: sim, cfg: cfg, cb: cb, side: side, stack: stack, host: host,
		sched: schedulerFor(cfg)}
}

// Dial opens an MPTCP connection from the client side: the primary
// subflow starts its handshake immediately; joins follow per Config.
func Dial(sim *simnet.Sim, stack *tcp.Stack, host *netem.Host, cfg Config, cb Callbacks) *Conn {
	c := newConn(sim, stack, host, tcp.ClientSide, cfg, cb)
	primary := host.Iface(cfg.Primary)
	if primary == nil {
		panic("mptcp: unknown primary iface " + cfg.Primary)
	}
	c.addSubflow(primary, &MPCapable{ConnID: cfg.ConnID}, c.isBackupIface(cfg.Primary))
	if cfg.SimultaneousJoin && !cfg.NoJoin {
		c.startJoins()
	}
	return c
}

func (c *Conn) isBackupIface(name string) bool {
	for _, b := range c.cfg.BackupIfaces {
		if b == name {
			return true
		}
	}
	return false
}

// startJoins initiates an MP_JOIN subflow on every interface that does
// not yet carry one.
func (c *Conn) startJoins() {
	for _, iface := range c.host.Ifaces() {
		if c.subflowOn(iface.Name) != nil {
			continue
		}
		c.addSubflow(iface, &MPJoin{ConnID: c.cfg.ConnID, Backup: c.isBackupIface(iface.Name)}, c.isBackupIface(iface.Name))
	}
}

func (c *Conn) subflowOn(ifaceName string) *Subflow {
	for _, sf := range c.subflows {
		if sf.Iface.Name == ifaceName {
			return sf
		}
	}
	return nil
}

// addSubflow creates and connects a client-side subflow.
func (c *Conn) addSubflow(iface *netem.Iface, synOpt any, backup bool) *Subflow {
	sf := &Subflow{Iface: iface, Backup: backup, conn: c}
	flow := c.cfg.ConnID + "/" + iface.Name
	sf.TCP = tcp.NewConn(c.sim, iface, netem.Up, flow, tcp.Config{
		Source:    &sfSource{sf: sf},
		SynOpt:    synOpt,
		Callbacks: c.subflowCallbacks(sf),
	})
	c.subflows = append(c.subflows, sf)
	c.watchIface(sf)
	c.stack.Register(sf.TCP)
	sf.TCP.Connect()
	return sf
}

// adoptSubflow attaches a passively-opened subflow (server side).
func (c *Conn) adoptSubflow(tc *tcp.Conn, iface *netem.Iface, backup bool) *Subflow {
	sf := &Subflow{TCP: tc, Iface: iface, Backup: backup, conn: c}
	tc.SetSource(&sfSource{sf: sf})
	tc.SetCallbacks(c.subflowCallbacks(sf))
	if c.cfg.CC == Coupled {
		tc.SetIncrease(c.liaIncrease(sf))
	}
	c.subflows = append(c.subflows, sf)
	c.watchIface(sf)
	return sf
}

// watchIface subscribes to administrative state changes: the iproute
// `multipath off` signal of paper Section 3.6.
func (c *Conn) watchIface(sf *Subflow) {
	sf.Iface.SubscribeDown(func(down bool) {
		if down {
			c.subflowDied(sf)
		} else {
			c.subflowRevived(sf)
		}
	})
}

func (c *Conn) subflowCallbacks(sf *Subflow) tcp.Callbacks {
	cb := tcp.Callbacks{
		OnEstablished: func(tc *tcp.Conn) { c.subflowEstablished(sf) },
		OnSegment:     func(tc *tcp.Conn, seg *tcp.Segment) { c.onSegment(sf, seg) },
		OnAckedOpt:    func(tc *tcp.Conn, opt any) { c.onMappingAcked(sf, opt) },
		AckOpt:        func(tc *tcp.Conn) any { return newAckDSS(c.rcvNxt) },
		OnRTO:         func(tc *tcp.Conn, count int) { c.onSubflowRTO(sf, count) },
		OnClosed:      func(tc *tcp.Conn) { c.onSubflowClosed(sf) },
	}
	return cb
}

func (c *Conn) subflowEstablished(sf *Subflow) {
	first := !c.everEstablished
	c.everEstablished = true
	sf.established = true
	if sf.rejoining {
		// The re-join handshake completed: the subflow is a full member
		// again, and the backoff ladder resets.
		sf.rejoining = false
		sf.dead = false
		sf.rejoinAttempts = 0
	}
	if c.cfg.CC == Coupled {
		sf.TCP.SetIncrease(c.liaIncrease(sf))
	}
	if c.cb.OnSubflowEstablished != nil {
		c.cb.OnSubflowEstablished(c, sf)
	}
	if first {
		if c.cb.OnEstablished != nil {
			c.cb.OnEstablished(c)
		}
		// Linux initiates MP_JOINs once the MP_CAPABLE handshake is
		// done — the "late join" at the heart of the paper's short-flow
		// findings.
		if c.side == tcp.ClientSide && !c.cfg.NoJoin && !c.cfg.SimultaneousJoin {
			c.startJoins()
		}
	}
	c.wake()
}

// Send queues n bytes of application data for striped transmission.
func (c *Conn) Send(n int) {
	if n <= 0 {
		return
	}
	c.sendTotal += uint64(n)
	c.armWatchdog()
	c.wake()
}

// Close requests connection shutdown once all queued data is delivered.
func (c *Conn) Close() {
	c.closeReq = true
	c.maybeClose()
}

// RecvTotal returns cumulative connection-level in-order bytes received.
func (c *Conn) RecvTotal() int64 { return c.recvTotal }

// Subflows returns the subflows in creation order.
func (c *Conn) Subflows() []*Subflow { return c.subflows }

// Primary returns the first subflow.
func (c *Conn) Primary() *Subflow {
	if len(c.subflows) == 0 {
		return nil
	}
	return c.subflows[0]
}

// ConnID returns the connection identifier.
func (c *Conn) ConnID() string { return c.cfg.ConnID }

// SendTotal returns cumulative bytes queued by the application.
func (c *Conn) SendTotal() uint64 { return c.sendTotal }

// DataAcked returns the cumulative data-level acknowledgement (bytes the
// peer has confirmed receiving in order).
func (c *Conn) DataAcked() uint64 { return c.dataUna }

// DataScheduled returns the high-water mark of connection-level bytes
// handed to subflows (dataNxt).
func (c *Conn) DataScheduled() uint64 { return c.dataNxt }

// RcvNxt returns the next in-order connection-level byte expected.
func (c *Conn) RcvNxt() uint64 { return c.rcvNxt }

// Closed reports whether the connection has fully closed or aborted.
func (c *Conn) Closed() bool { return c.closed }

// Aborted reports whether AbortAll terminated the connection.
func (c *Conn) Aborted() bool { return c.aborted }

// OOORecords returns the number of out-of-order receive intervals held.
func (c *Conn) OOORecords() int { return len(c.ooo) }

// UncoveredBytes measures the stranded-mapping gap: bytes in
// [dataUna, dataNxt) — scheduled but not yet data-acked — that no live
// mapping record covers. A mapping counts as coverage if it sits in the
// connection-level rtxPool or is held (outstanding or duplicate-queued)
// by a subflow that is alive and able to retransmit it. Dead or fully
// terminated subflows cannot retransmit, so their records do not count:
// subflowDied must have moved them to rtxPool already. The invariant
// checker asserts this is zero whenever the connection is not closed —
// a nonzero value means a fault path stranded data that nothing will
// ever resend.
func (c *Conn) UncoveredBytes() uint64 {
	if c.dataNxt <= c.dataUna {
		return 0
	}
	iv := make([]mapping, 0, len(c.rtxPool)+8)
	iv = append(iv, c.rtxPool...)
	for _, sf := range c.subflows {
		if sf.dead || sf.TCP.State() == tcp.StateDone {
			continue
		}
		iv = append(iv, sf.outstanding...)
		iv = append(iv, sf.dupQueue...)
	}
	sort.Slice(iv, func(i, j int) bool { return iv[i].dataSeq < iv[j].dataSeq })
	covered := uint64(0)
	pos := c.dataUna
	for _, m := range iv {
		end := m.end()
		if end <= pos {
			continue
		}
		lo := m.dataSeq
		if lo < pos {
			lo = pos
		}
		if lo >= c.dataNxt {
			break
		}
		if end > c.dataNxt {
			end = c.dataNxt
		}
		covered += end - lo
		pos = end
	}
	return (c.dataNxt - c.dataUna) - covered
}

// wake offers data to eligible subflows in the scheduler's priority
// order. Each NotifyData lets that subflow pull mappings until its
// window fills, so earlier-ranked paths are preferred whenever several
// have room. hasDataFor is per-subflow once a scheduler gates
// admission (or holds per-subflow duplicate queues), so a refusal for
// one subflow must not starve later ones: continue, never break.
//
//multinet:hotpath
func (c *Conn) wake() {
	sfs := c.sched.Rank(c, c.modeEligible())
	for _, sf := range sfs {
		if !c.hasDataFor(sf) {
			continue
		}
		sf.TCP.NotifyData()
	}
}

// eligible reports whether sf may carry data right now (established,
// alive, and allowed by Backup-mode gating).
func (c *Conn) eligible(sf *Subflow) bool {
	return sf.established && !sf.dead && c.allowedByMode(sf)
}

// modeEligible returns the established, usable subflows in creation
// order; the scheduler's Rank imposes the offering order. The returned
// slice is the connection's reusable scratch: it is valid until the
// next modeEligible call, and only wake (whose iteration finishes
// before any nested data event can re-enter) may hold it.
func (c *Conn) modeEligible() []*Subflow {
	out := c.eligScratch[:0]
	for _, sf := range c.subflows {
		if c.eligible(sf) {
			out = append(out, sf)
		}
	}
	c.eligScratch = out
	return out
}

// allowedByMode applies Backup-mode gating: backup subflows carry data
// only when every regular subflow is administratively dead. A silently
// blackholed regular subflow does NOT activate backups — that is the
// paper's Fig. 15g behaviour.
func (c *Conn) allowedByMode(sf *Subflow) bool {
	if c.cfg.Mode != Backup || !sf.Backup {
		return true
	}
	for _, other := range c.subflows {
		if !other.Backup && !other.dead {
			return false
		}
	}
	return true
}

// hasDataFor reports whether pull would yield a mapping for sf.
func (c *Conn) hasDataFor(sf *Subflow) bool {
	if !sf.established || sf.dead || !c.allowedByMode(sf) {
		return false
	}
	if c.pruneDup(sf); len(sf.dupQueue) > 0 {
		return true
	}
	if len(c.rtxPool) > 0 {
		return true
	}
	return c.sched.Admit(c, sf) &&
		c.dataNxt < c.sendTotal && c.dataNxt < c.dataUna+uint64(c.cfg.recvBuf())
}

// pruneDup drops duplicate mappings the peer has meanwhile data-acked.
func (c *Conn) pruneDup(sf *Subflow) {
	for len(sf.dupQueue) > 0 && sf.dupQueue[0].end() <= c.dataUna {
		sf.dupQueue = sf.dupQueue[1:]
	}
}

// takeFront removes up to max bytes from the head of q, splitting the
// head mapping in place when it exceeds max.
func takeFront(q []mapping, max int) (mapping, []mapping) {
	m := q[0]
	if m.len > max {
		q[0].dataSeq += uint64(max)
		q[0].len -= max
		m.len = max
	} else {
		q = q[1:]
	}
	return m, q
}

// pull is called by a subflow's Source when it has window space.
// Priority: scheduler-duplicated mappings, then the shared
// retransmission pool, then fresh data (gated by Scheduler.Admit —
// evaluated once per pull, on the fresh-data branch only).
//
//multinet:hotpath
func (c *Conn) pull(sf *Subflow, max int) (int, any, bool) {
	if !sf.established || sf.dead || !c.allowedByMode(sf) {
		return 0, nil, false
	}
	c.pruneDup(sf)
	if len(sf.dupQueue) > 0 {
		var m mapping
		m, sf.dupQueue = takeFront(sf.dupQueue, max)
		//lint:allow hotpath outstanding-mapping capacity is amortised per subflow
		sf.outstanding = append(sf.outstanding, m)
		return m.len, &DSS{DataSeq: m.dataSeq, Len: m.len, DataAck: c.rcvNxt}, true
	}
	// Discard reinjected mappings the peer has meanwhile data-acked.
	for len(c.rtxPool) > 0 && c.rtxPool[0].end() <= c.dataUna {
		c.rtxPool = c.rtxPool[1:]
	}
	fresh := c.dataNxt < c.sendTotal && c.dataNxt < c.dataUna+uint64(c.cfg.recvBuf()) &&
		c.sched.Admit(c, sf)
	if len(c.rtxPool) == 0 && !fresh {
		return 0, nil, false
	}
	var m mapping
	if len(c.rtxPool) > 0 {
		m, c.rtxPool = takeFront(c.rtxPool, max)
	} else {
		n := c.sendTotal - c.dataNxt
		if lim := c.dataUna + uint64(c.cfg.recvBuf()); c.dataNxt+n > lim {
			n = lim - c.dataNxt
		}
		if int(n) > max {
			n = uint64(max)
		}
		m = mapping{dataSeq: c.dataNxt, len: int(n)}
		c.dataNxt += n
		if d, ok := c.sched.(duplicator); ok {
			d.onFreshMapping(c, sf, m)
		}
	}
	sf.outstanding = append(sf.outstanding, m) //lint:allow hotpath outstanding-mapping capacity is amortised per subflow
	return m.len, &DSS{DataSeq: m.dataSeq, Len: m.len, DataAck: c.rcvNxt}, true
}

// onMappingAcked removes the subflow-acknowledged byte range from
// sf's outstanding records. Matching is by range overlap, not exact
// (dataSeq, len) identity: pull splits oversized reinjected mappings
// to the puller's window, so a subflow can hold an outstanding record
// that a later ack only partially covers (e.g. the original {seq, len}
// after a split re-pull of the same range). Overlapped spans are
// trimmed and any unacked remainder is kept, so no record is stranded
// to be reinjected forever.
func (c *Conn) onMappingAcked(sf *Subflow, opt any) {
	dss, ok := opt.(*DSS)
	if !ok || dss.Len == 0 {
		return
	}
	ack := mapping{dataSeq: dss.DataSeq, len: dss.Len}
	// Build into the subflow's scratch buffer: a mid-record ack splits
	// one record into two, so filtering in place could overtake the read
	// cursor. The old records slice becomes the next rebuild's scratch
	// (double buffering keeps the steady-state ACK path allocation-free).
	kept := sf.ackScratch[:0]
	for _, m := range sf.outstanding {
		if m.end() <= ack.dataSeq || m.dataSeq >= ack.end() {
			kept = append(kept, m) // disjoint
			continue
		}
		if m.dataSeq < ack.dataSeq {
			kept = append(kept, mapping{dataSeq: m.dataSeq, len: int(ack.dataSeq - m.dataSeq)})
		}
		if m.end() > ack.end() {
			kept = append(kept, mapping{dataSeq: ack.end(), len: int(m.end() - ack.end())})
		}
	}
	sf.ackScratch = sf.outstanding[:0]
	sf.outstanding = kept
	sf.reinjected = false
	c.maybeClose()
	c.wake()
}

// onSegment processes connection-level information on every arriving
// subflow segment.
func (c *Conn) onSegment(sf *Subflow, seg *tcp.Segment) {
	dss, ok := seg.Opt.(*DSS)
	if !ok {
		return
	}
	if dss.DataAck > c.dataUna {
		c.dataUna = dss.DataAck
		c.maybeClose()
		c.wake()
	}
	if dss.Len > 0 {
		c.receive(mapping{dataSeq: dss.DataSeq, len: dss.Len})
	}
}

// receive performs connection-level reassembly.
func (c *Conn) receive(m mapping) {
	switch {
	case m.end() <= c.rcvNxt:
		return // duplicate
	case m.dataSeq <= c.rcvNxt:
		c.rcvNxt = m.end()
		// Drain contiguous out-of-order intervals; copy down so the
		// backing array keeps its capacity for later reordering bursts.
		k := 0
		for k < len(c.ooo) && c.ooo[k].dataSeq <= c.rcvNxt {
			if e := c.ooo[k].end(); e > c.rcvNxt {
				c.rcvNxt = e
			}
			k++
		}
		if k > 0 {
			n := copy(c.ooo, c.ooo[k:])
			c.ooo = c.ooo[:n]
		}
	default:
		c.insertOOO(m)
	}
	if int64(c.rcvNxt) > c.recvTotal {
		c.recvTotal = int64(c.rcvNxt)
		if c.cb.OnData != nil {
			c.cb.OnData(c, c.recvTotal)
		}
	}
}

func (c *Conn) insertOOO(m mapping) {
	pos := len(c.ooo)
	for i, e := range c.ooo {
		if m.dataSeq < e.dataSeq {
			pos = i
			break
		}
	}
	c.ooo = append(c.ooo, mapping{})
	copy(c.ooo[pos+1:], c.ooo[pos:])
	c.ooo[pos] = m
	// Merge overlaps.
	merged := c.ooo[:1]
	for _, e := range c.ooo[1:] {
		last := &merged[len(merged)-1]
		if e.dataSeq <= last.end() {
			if e.end() > last.end() {
				last.len = int(e.end() - last.dataSeq)
			}
		} else {
			merged = append(merged, e)
		}
	}
	c.ooo = merged
}

// onSubflowRTO handles repeated timeouts: in Full-MPTCP mode the
// subflow's outstanding mappings are reinjected onto the others; in
// Backup mode a stalled regular subflow causes the backup to emit a
// single window update and nothing else (the paper's Fig. 15g trace).
func (c *Conn) onSubflowRTO(sf *Subflow, count int) {
	if count < 2 || sf.reinjected {
		return
	}
	sf.reinjected = true
	c.reinject(sf, false)
	if c.cfg.Mode == Backup && !sf.Backup {
		for _, other := range c.subflows {
			if other.Backup && other.established && !other.dead {
				other.TCP.SendWindowUpdate()
			}
		}
	}
	c.wake()
}

// reinject copies (or moves, if the subflow is dead) sf's outstanding
// mappings above the data-ACK point into the retransmission pool.
func (c *Conn) reinject(sf *Subflow, move bool) {
	for _, m := range sf.outstanding {
		if m.end() <= c.dataUna {
			continue
		}
		c.rtxPool = append(c.rtxPool, m)
		c.Reinjections++
	}
	if move {
		sf.outstanding = nil
	}
}

// subflowDied handles an administrative interface down: the subflow is
// torn down (as the kernel does on interface removal), its unacked
// mappings reinjected for the surviving subflows, and its flow entry
// forgotten so a later re-join can reuse the flow identifier. Pooled
// segments owned by the wire keep their single release site (the link's
// drop paths); the abort only cancels timers and bookkeeping.
func (c *Conn) subflowDied(sf *Subflow) {
	if sf.rejoining {
		// Down again mid-handshake: abort the half-open re-join conn and
		// wait for the next recovery.
		sf.rejoining = false
		sf.rejoinAttempts++
		sf.TCP.Abort()
		c.stack.Forget(sf.TCP.Flow())
		return
	}
	if sf.dead {
		return
	}
	sf.dead = true
	c.reinject(sf, true)
	sf.dupQueue = nil // duplicates: the original copy lives elsewhere
	sf.TCP.Abort()
	c.stack.Forget(sf.TCP.Flow())
	c.wake()
}

// subflowRevived handles an administrative interface up: the client
// schedules a re-join after a backoff (the server side waits for the
// client's MP_JOIN instead — it never initiates subflows).
func (c *Conn) subflowRevived(sf *Subflow) {
	if !sf.dead || sf.rejoining || c.closed || c.side != tcp.ClientSide {
		return
	}
	c.scheduleRejoin(sf)
}

// maxRejoinAttempts bounds consecutive failed re-joins per subflow: an
// interface that reports up but leads nowhere (blackholed) must not keep
// the event loop alive forever.
const maxRejoinAttempts = 16

// scheduleRejoin arms sf's re-join timer with exponential backoff.
func (c *Conn) scheduleRejoin(sf *Subflow) {
	if sf.rejoinTimer.Active() || sf.rejoinAttempts >= maxRejoinAttempts {
		return
	}
	delay := c.cfg.rejoinBackoff()
	for i := 0; i < sf.rejoinAttempts && delay < rejoinBackoffCap; i++ {
		delay *= 2
	}
	if delay > rejoinBackoffCap {
		delay = rejoinBackoffCap
	}
	sf.rejoinTimer = c.sim.AfterArg(delay, subflowRejoinFire, sf)
}

func subflowRejoinFire(a any) {
	sf := a.(*Subflow)
	sf.conn.rejoin(sf)
}

// rejoin re-establishes a dead subflow on a fresh tcp.Conn. It reuses
// the flow identifier (both stacks forgot it at death) and carries
// MP_JOIN — or MP_CAPABLE when no subflow ever completed a handshake,
// restarting the connection from scratch.
func (c *Conn) rejoin(sf *Subflow) {
	if !sf.dead || sf.rejoining || c.closed || sf.Iface.AdminDown() {
		return
	}
	var synOpt any
	if c.everEstablished {
		synOpt = &MPJoin{ConnID: c.cfg.ConnID, Backup: sf.Backup}
	} else {
		synOpt = &MPCapable{ConnID: c.cfg.ConnID}
	}
	sf.rejoining = true
	sf.established = false
	sf.reinjected = false
	flow := c.cfg.ConnID + "/" + sf.Iface.Name
	sf.TCP = tcp.NewConn(c.sim, sf.Iface, netem.Up, flow, tcp.Config{
		Source:    &sfSource{sf: sf},
		SynOpt:    synOpt,
		Callbacks: c.subflowCallbacks(sf),
	})
	c.stack.Register(sf.TCP)
	sf.TCP.Connect()
}

// maybeClose sends FINs on every subflow once all data is delivered.
func (c *Conn) maybeClose() {
	if !c.closeReq || c.closed {
		return
	}
	if c.dataNxt < c.sendTotal || c.dataUna < c.sendTotal || len(c.rtxPool) > 0 {
		return
	}
	c.closed = true
	c.watch.Stop()
	for _, sf := range c.subflows {
		sf.TCP.Close()
	}
}

func (c *Conn) onSubflowClosed(sf *Subflow) {
	if sf.rejoining && !c.closed {
		// The re-join handshake gave up (SYN retransmission limit): back
		// off further and retry while the interface is still up.
		sf.rejoining = false
		sf.rejoinAttempts++
		c.stack.Forget(sf.TCP.Flow())
		if !sf.Iface.AdminDown() {
			c.scheduleRejoin(sf)
		}
		return
	}
	for _, other := range c.subflows {
		if other.TCP.State() != tcp.StateDone {
			return
		}
	}
	if c.cb.OnClosed != nil {
		c.cb.OnClosed(c)
	}
}

// armWatchdog snapshots the progress marks and schedules the next
// stuck-flow check, one interval of WatchdogRTOs virtual RTO spans out.
// Inert (no timer, no events) unless Config.WatchdogRTOs is positive,
// which keeps default runs bit-identical with pre-watchdog builds.
func (c *Conn) armWatchdog() {
	if c.cfg.WatchdogRTOs <= 0 || c.closed || c.watch.Active() {
		return
	}
	c.watchUna = c.dataUna
	c.watchRecv = c.recvTotal
	c.watch = c.sim.AfterArg(c.watchInterval(), connWatchdogFire, c)
}

// watchInterval is WatchdogRTOs times the largest live subflow RTO —
// "K virtual RTOs" scaled to whatever backoff the paths are in.
func (c *Conn) watchInterval() time.Duration {
	rto := tcp.InitialRTO
	for _, sf := range c.subflows {
		if sf.TCP.State() != tcp.StateDone && sf.TCP.RTO() > rto {
			rto = sf.TCP.RTO()
		}
	}
	return time.Duration(c.cfg.WatchdogRTOs) * rto
}

func connWatchdogFire(a any) { a.(*Conn).watchdogFire() }

func (c *Conn) watchdogFire() {
	if c.closed {
		return
	}
	if c.dataUna >= c.sendTotal {
		return // nothing pending: disarm; Send re-arms
	}
	if c.dataUna > c.watchUna || c.recvTotal > c.watchRecv {
		c.stallRun = 0
		c.armWatchdog()
		return
	}
	// No forward progress across K virtual RTOs with data pending: a
	// stall. Record it, reinject everything outstanding as a recovery
	// attempt, and abort the whole connection once the streak exceeds
	// the budget — a chaos run terminates instead of hanging.
	c.StallCount++
	c.stallRun++
	if c.cb.OnStall != nil {
		c.cb.OnStall(c, c.StallCount)
	}
	if c.stallRun >= c.cfg.watchdogMaxStalls() {
		c.AbortAll()
		return
	}
	for _, sf := range c.subflows {
		if !sf.dead && sf.established {
			c.reinject(sf, false)
		}
	}
	c.wake()
	c.armWatchdog()
}

// AbortAll hard-terminates the connection: every subflow is aborted,
// pending re-joins and the watchdog are cancelled, and no further data
// will flow. The stuck-flow watchdog calls it when a stall persists;
// harnesses may call it to guarantee quiescence.
func (c *Conn) AbortAll() {
	c.closed = true
	c.aborted = true
	c.watch.Stop()
	for _, sf := range c.subflows {
		sf.rejoinTimer.Stop()
		sf.rejoining = false
		if sf.TCP.State() != tcp.StateDone {
			sf.TCP.Abort()
		}
	}
}

// String describes the connection.
func (c *Conn) String() string {
	return fmt.Sprintf("mptcp(%s %d subflows, sent=%d acked=%d recv=%d)",
		c.cfg.ConnID, len(c.subflows), c.dataNxt, c.dataUna, c.recvTotal)
}

// sfSource adapts the connection scheduler to the tcp.Source interface.
type sfSource struct{ sf *Subflow }

func (s *sfSource) Next(max int) (int, any, bool) { return s.sf.conn.pull(s.sf, max) }
func (s *sfSource) Pending() bool                 { return s.sf.conn.hasDataFor(s.sf) }
