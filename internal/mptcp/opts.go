// Package mptcp implements Multipath TCP over the tcp and netem
// substrates, modelling the Linux MPTCP v0.88 implementation the paper
// measured (Section 3.1):
//
//   - The primary subflow is established first (MP_CAPABLE) on the
//     configured interface; once it completes its handshake, an
//     additional subflow (MP_JOIN) is initiated on each remaining
//     interface — so the second path joins at least one handshake late,
//     the mechanism behind the paper's central short-flow finding.
//   - Data is striped across subflows by a pluggable Scheduler
//     (min-SRTT by default, as in Linux; round-robin, redundant, and
//     BLEST/ECF-style HoL-aware policies are registered alongside it)
//     with per-subflow congestion windows; DSS options map subflow
//     bytes to the connection-level sequence space, and the receiver
//     reassembles in data-sequence order (head-of-line blocking across
//     subflows is therefore real).
//   - Congestion control is either decoupled (per-subflow Reno) or
//     coupled (LIA, RFC 6356).
//   - Full-MPTCP mode uses all subflows; Backup mode (MP_PRIO) keeps
//     backup subflows idle unless every regular subflow is
//     administratively down. An administrative down (iproute) triggers
//     immediate failover with reinjection; a silent blackhole (pulling
//     the cable) does not — reproducing the paper's Fig. 15 anomaly.
package mptcp

import (
	"fmt"
	"sync"
)

// MPCapable is the option on the primary subflow's SYN.
type MPCapable struct {
	// ConnID identifies the MPTCP connection.
	ConnID string
}

// String renders the option for captures.
func (o *MPCapable) String() string { return fmt.Sprintf("MP_CAPABLE(%s)", o.ConnID) }

// MPJoin is the option on an additional subflow's SYN.
type MPJoin struct {
	// ConnID is the connection being joined.
	ConnID string
	// Backup marks the subflow as backup-priority (MP_PRIO semantics).
	Backup bool
}

// String renders the option for captures.
func (o *MPJoin) String() string {
	if o.Backup {
		return fmt.Sprintf("MP_JOIN(%s,backup)", o.ConnID)
	}
	return fmt.Sprintf("MP_JOIN(%s)", o.ConnID)
}

// DSS is the Data Sequence Signal option: it maps the segment's payload
// into the connection-level sequence space and carries the cumulative
// connection-level acknowledgement.
type DSS struct {
	// DataSeq is the connection-level sequence of the first payload
	// byte (valid when Len > 0).
	DataSeq uint64
	// Len is the number of payload bytes mapped.
	Len int
	// DataAck is the cumulative connection-level acknowledgement.
	DataAck uint64

	// wireOnly marks a pooled ack-only DSS owned exclusively by the
	// wire segment carrying it (see newAckDSS); data-mapping DSS are
	// also referenced from the sender's retransmission scoreboard and
	// must never be recycled by the wire.
	wireOnly bool
}

var dssPool = sync.Pool{New: func() any { return new(DSS) }}

// newAckDSS returns a pooled ack-only DSS for a pure ACK. Pure ACKs are
// never tracked for retransmission, so the wire segment is the only
// holder and tcp.Segment.Recycle returns the option to the pool at the
// segment's delivery or drop sink.
func newAckDSS(ack uint64) *DSS {
	d := dssPool.Get().(*DSS)
	d.DataSeq, d.Len, d.DataAck, d.wireOnly = 0, 0, ack, true
	return d
}

// RecycleOpt implements tcp.RecyclableOpt: wire-owned ack-only DSS
// return to the pool; shared data-mapping DSS are left to the GC.
func (o *DSS) RecycleOpt() {
	if !o.wireOnly {
		return
	}
	*o = DSS{}
	dssPool.Put(o)
}

// String renders the option for captures.
func (o *DSS) String() string {
	if o.Len > 0 {
		return fmt.Sprintf("DSS(seq=%d,len=%d,ack=%d)", o.DataSeq, o.Len, o.DataAck)
	}
	return fmt.Sprintf("DSS(ack=%d)", o.DataAck)
}

// CongestionMode selects the MPTCP congestion-control coupling.
type CongestionMode int

// Congestion modes (paper Section 3.5).
const (
	// Decoupled runs independent Reno on each subflow.
	Decoupled CongestionMode = iota
	// Coupled runs LIA (RFC 6356): subflow increases are coupled so the
	// MPTCP connection takes no more capacity than a single TCP on the
	// best path.
	Coupled
)

// String names the mode.
func (m CongestionMode) String() string {
	if m == Coupled {
		return "coupled"
	}
	return "decoupled"
}

// Mode selects Full-MPTCP or Backup operation (paper Section 3.6).
type Mode int

// Operation modes.
const (
	// FullMPTCP transmits on all subflows at all times.
	FullMPTCP Mode = iota
	// Backup transmits on regular subflows only, activating
	// backup-priority subflows when every regular subflow is
	// administratively down.
	Backup
)

// String names the mode.
func (m Mode) String() string {
	if m == Backup {
		return "backup"
	}
	return "full"
}
