package faults_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"multinet/internal/faults"
	"multinet/internal/mptcp"
	"multinet/internal/netem"
	"multinet/internal/simnet"
	"multinet/internal/tcp"
)

// world is the paper's Fig. 5 topology — a wifi+lte client against a
// single-homed server — sized small enough that a chaos run with a
// 128 KB transfer finishes in milliseconds of wall time.
type world struct {
	sim    *simnet.Sim
	host   *netem.Host
	wifi   *netem.Iface
	lte    *netem.Iface
	client *tcp.Stack
	server *tcp.Stack
	srv    *mptcp.Server
}

func newWorld(seed int64, scfg mptcp.ServerConfig) *world {
	sim := simnet.New(seed)
	mk := func(name string, mbps float64, owd time.Duration) *netem.Iface {
		cfg := netem.LinkConfig{PropDelay: owd, QueueLimit: 150}
		up := netem.NewFixedLink(sim, mbps, cfg)
		down := netem.NewFixedLink(sim, mbps, cfg)
		return netem.NewIface(sim, name, up, down)
	}
	w := &world{sim: sim}
	w.wifi = mk("wifi", 10, 15*time.Millisecond)
	w.lte = mk("lte", 8, 30*time.Millisecond)
	w.host = netem.NewHost("client")
	w.host.Attach(w.wifi)
	w.host.Attach(w.lte)
	w.client = tcp.NewStack(sim, tcp.ClientSide)
	w.server = tcp.NewStack(sim, tcp.ServerSide)
	for _, i := range []*netem.Iface{w.wifi, w.lte} {
		w.client.Bind(i)
		w.server.Bind(i)
	}
	w.srv = mptcp.NewServer(sim, w.server, scfg)
	return w
}

// chaosResult is one run's outcome: the invariant violations plus a
// deterministic fingerprint used by the differential fuzz target.
type chaosResult struct {
	violations []faults.Violation
	stalls     int
	signature  string
}

// runChaos builds a world, attaches the schedule, moves size bytes in
// the given direction (download: server→client) with the stuck-flow
// watchdog armed, drains the simulation and checks every invariant.
func runChaos(t *testing.T, seed int64, sched faults.Schedule, download bool, size int) chaosResult {
	t.Helper()
	netem.SetLeakTracking(true)
	tcp.SetLeakTracking(true)

	const watchdogRTOs = 4
	w := newWorld(seed, mptcp.ServerConfig{WatchdogRTOs: watchdogRTOs})

	// A re-join that restarts with MP_CAPABLE (primary died before the
	// first handshake completed) makes the server build a fresh Conn, so
	// a run can see several server-side conns; stall accounting and the
	// invariant pairing must cover all of them.
	var serverConns []*mptcp.Conn
	stallEvents := 0
	w.srv.OnConn = func(c *mptcp.Conn) {
		serverConns = append(serverConns, c)
		c.SetCallbacks(mptcp.Callbacks{
			OnStall: func(c *mptcp.Conn, total int) { stallEvents++ },
		})
		if download {
			c.Send(size)
			c.Close()
		}
	}
	cb := mptcp.Callbacks{
		OnStall: func(c *mptcp.Conn, total int) { stallEvents++ },
	}
	if !download {
		cb.OnEstablished = func(c *mptcp.Conn) {
			c.Send(size)
			c.Close()
		}
	}
	clientConn := mptcp.Dial(w.sim, w.client, w.host, mptcp.Config{
		ConnID:       "chaos",
		Primary:      "wifi",
		WatchdogRTOs: watchdogRTOs,
	}, cb)

	if _, err := sched.Attach(w.sim, w.host); err != nil {
		t.Fatalf("attach: %v", err)
	}
	w.sim.Run()

	ck := &faults.Checker{Leaks: true}
	ck.AddHost(w.host)
	if n := len(serverConns); n > 0 {
		// The latest server conn is the live peer; superseded conns
		// (from an MP_CAPABLE restart) were aborted or stranded and are
		// still invariant-checked for stranded mappings and stalls.
		for i, sc := range serverConns {
			ck.AddPair(fmt.Sprintf("chaos[%d]", i), clientConn, sc)
		}
	}
	violations := ck.Check()

	// A watchdog stall must never pass silently: every recorded stall
	// fired the OnStall callback.
	recorded := clientConn.StallCount
	for _, sc := range serverConns {
		recorded += sc.StallCount
	}
	if recorded != stallEvents {
		violations = append(violations, faults.Violation{
			Rule:   "stall-event",
			Detail: fmt.Sprintf("%d stalls recorded, %d events fired", recorded, stallEvents),
		})
	}

	var sig strings.Builder
	fmt.Fprintf(&sig, "end=%v client.rcv=%d client.stalls=%d conns=%d", w.sim.Now(), clientConn.RecvTotal(), clientConn.StallCount, len(serverConns))
	for _, sc := range serverConns {
		fmt.Fprintf(&sig, " server.rcv=%d server.stalls=%d aborted=%v/%v",
			sc.RecvTotal(), sc.StallCount, clientConn.Aborted(), sc.Aborted())
	}
	for _, ifc := range w.host.Ifaces() {
		for _, d := range []struct {
			dir string
			l   netem.Link
		}{{"up", ifc.UpLink()}, {"down", ifc.DownLink()}} {
			st := d.l.Stats()
			fmt.Fprintf(&sig, " %s/%s=%d/%d/%d", ifc.Name, d.dir, st.Sent, st.Delivered, st.LostInFlight)
		}
	}
	return chaosResult{violations: violations, stalls: stallEvents, signature: sig.String()}
}

// TestChaosSweep runs 500 randomized fault schedules against live MPTCP
// transfers in both directions and asserts zero invariant violations:
// every byte delivered exactly once (or the connection visibly
// aborted), no stranded mapping records, no silent stalls, no
// pooled-object leaks, and exact packet conservation on every link.
func TestChaosSweep(t *testing.T) {
	defer netem.SetLeakTracking(false)
	defer tcp.SetLeakTracking(false)
	runs := 500
	if testing.Short() {
		runs = 50
	}
	for i := 0; i < runs; i++ {
		seed := int64(9000 + i)
		rng := rand.New(rand.NewSource(seed))
		sched := faults.GenSchedule(rng, []string{"wifi", "lte"}, 5*time.Second)
		res := runChaos(t, seed, sched, i%2 == 0, 128<<10)
		for _, v := range res.violations {
			t.Errorf("seed %d: %s\nschedule:\n%s", seed, v, sched)
		}
		if t.Failed() {
			return
		}
	}
}

// TestChaosDeterministic pins that the same seed and schedule reproduce
// the same run bit for bit (the fuzz target widens this across random
// schedules).
func TestChaosDeterministic(t *testing.T) {
	defer netem.SetLeakTracking(false)
	defer tcp.SetLeakTracking(false)
	rng := rand.New(rand.NewSource(42))
	sched := faults.GenSchedule(rng, []string{"wifi", "lte"}, 5*time.Second)
	a := runChaos(t, 42, sched, true, 128<<10)
	b := runChaos(t, 42, sched, true, 128<<10)
	if a.signature != b.signature {
		t.Fatalf("non-deterministic chaos run:\n%s\n%s", a.signature, b.signature)
	}
}

func TestScheduleValidate(t *testing.T) {
	bad := []faults.Schedule{
		{Episodes: []faults.Episode{{Kind: faults.AdminDown, Iface: "", Duration: time.Second}}},
		{Episodes: []faults.Episode{{Kind: faults.AdminDown, Iface: "wifi", Start: -1, Duration: time.Second}}},
		{Episodes: []faults.Episode{{Kind: faults.AdminDown, Iface: "wifi"}}},
		{Episodes: []faults.Episode{{Kind: faults.FlapTrain, Iface: "wifi", Duration: time.Second, Cycles: 0, Period: 2 * time.Second}}},
		{Episodes: []faults.Episode{{Kind: faults.FlapTrain, Iface: "wifi", Duration: time.Second, Cycles: 2, Period: time.Second}}},
		{Episodes: []faults.Episode{{Kind: faults.LossBurst, Iface: "wifi", Duration: time.Second, LossProb: 1.5}}},
		{Episodes: []faults.Episode{{Kind: faults.RateCollapse, Iface: "wifi", Duration: time.Second, RateFactor: 0}}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: want validation error, got nil", i)
		}
	}
	good := faults.Schedule{Episodes: []faults.Episode{
		{Kind: faults.Blackhole, Iface: "wifi", Start: time.Second, Duration: 500 * time.Millisecond},
		{Kind: faults.FlapTrain, Iface: "lte", Duration: 100 * time.Millisecond, Cycles: 3, Period: 300 * time.Millisecond},
		{Kind: faults.LossBurst, Iface: "wifi", Duration: time.Second, LossProb: 0.2},
		{Kind: faults.RateCollapse, Iface: "lte", Duration: time.Second, RateFactor: 0.25},
	}}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}
}

func TestAttachUnknownIface(t *testing.T) {
	w := newWorld(1, mptcp.ServerConfig{})
	s := faults.Schedule{Episodes: []faults.Episode{
		{Kind: faults.AdminDown, Iface: "satellite", Duration: time.Second},
	}}
	if _, err := s.Attach(w.sim, w.host); err == nil {
		t.Fatal("want error for unknown interface")
	}
}

// TestInjectorFiresAllSteps pins the step accounting and the
// restore-to-baseline semantics of loss bursts and rate collapses.
func TestInjectorFiresAllSteps(t *testing.T) {
	w := newWorld(1, mptcp.ServerConfig{})
	s := faults.Schedule{Episodes: []faults.Episode{
		{Kind: faults.LossBurst, Iface: "wifi", Start: 10 * time.Millisecond, Duration: 50 * time.Millisecond, LossProb: 0.5},
		{Kind: faults.RateCollapse, Iface: "lte", Start: 10 * time.Millisecond, Duration: 50 * time.Millisecond, RateFactor: 0.1},
		{Kind: faults.FlapTrain, Iface: "wifi", Start: 100 * time.Millisecond, Duration: 20 * time.Millisecond, Cycles: 2, Period: 50 * time.Millisecond},
	}}
	inj, err := s.Attach(w.sim, w.host)
	if err != nil {
		t.Fatal(err)
	}
	if inj.Steps() != 2+2+4 {
		t.Fatalf("steps = %d, want 8", inj.Steps())
	}
	w.sim.Run()
	if inj.Fired() != inj.Steps() {
		t.Fatalf("fired %d of %d steps", inj.Fired(), inj.Steps())
	}
	if w.wifi.AdminDown() {
		t.Fatal("wifi left down after flap train")
	}
	lte := w.lte.UpLink().(*netem.FixedLink)
	if got := lte.RateMbps(); got != 8 {
		t.Fatalf("lte rate not restored: %v Mbps", got)
	}
}
