// Package faults is the deterministic fault-injection layer: a
// Schedule of typed episodes (administrative down/up, silent blackhole,
// flap trains, loss bursts, rate collapse) compiled onto simnet timers
// against the netem interfaces of a host. Everything is seed-driven —
// the same schedule attached to the same simulation produces the same
// event sequence bit for bit, at any worker count, because episodes
// become ordinary simulator events with the usual deterministic
// tie-breaking.
//
// The package also carries the runtime invariant checker (see
// check.go): conservation of packets on every link, exactly-once
// delivery and no stranded mapping records on every MPTCP connection,
// and zero pooled-object leaks once a run has drained.
package faults

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"multinet/internal/netem"
	"multinet/internal/simnet"
)

// Kind identifies an episode type.
type Kind int

// Episode kinds.
const (
	// AdminDown takes the interface administratively down for Duration
	// and brings it back — the `iproute multipath off/on` semantics:
	// protocol stacks are notified on both edges.
	AdminDown Kind = iota
	// Blackhole silently discards all traffic for Duration with no
	// notification — the "unplug the phone" case of paper Fig. 15g/h.
	Blackhole
	// FlapTrain is Cycles repetitions of (down for Duration, up for the
	// rest of Period): rapid administrative flapping.
	FlapTrain
	// LossBurst raises the i.i.d. loss probability to LossProb for
	// Duration, then restores the link's baseline.
	LossBurst
	// RateCollapse multiplies the link rate by RateFactor for Duration,
	// then restores it. Only fixed-rate links support it; on
	// trace-driven links the episode is a no-op.
	RateCollapse
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case AdminDown:
		return "admin-down"
	case Blackhole:
		return "blackhole"
	case FlapTrain:
		return "flap"
	case LossBurst:
		return "loss-burst"
	case RateCollapse:
		return "rate-collapse"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Episode is one fault on one interface. Start is relative to the
// moment the schedule is attached.
type Episode struct {
	Kind  Kind
	Iface string
	Start time.Duration
	// Duration is the fault's length (per cycle for FlapTrain).
	Duration time.Duration
	// Cycles is the number of down/up repetitions (FlapTrain only).
	Cycles int
	// Period is the cycle interval for FlapTrain; must exceed Duration.
	Period time.Duration
	// LossProb is the burst drop probability (LossBurst only).
	LossProb float64
	// RateFactor scales the link rate during the episode (RateCollapse
	// only); must be in (0, 1].
	RateFactor float64
}

// End returns when the episode's last effect fires, relative to attach.
func (e Episode) End() time.Duration {
	if e.Kind == FlapTrain {
		return e.Start + time.Duration(e.Cycles-1)*e.Period + e.Duration
	}
	return e.Start + e.Duration
}

// String renders the episode in a stable, human-readable form (the
// differential fuzz target compares schedule renderings across runs).
func (e Episode) String() string {
	switch e.Kind {
	case FlapTrain:
		return fmt.Sprintf("%s %s @%v dur=%v cycles=%d period=%v",
			e.Kind, e.Iface, e.Start, e.Duration, e.Cycles, e.Period)
	case LossBurst:
		return fmt.Sprintf("%s %s @%v dur=%v p=%.3f",
			e.Kind, e.Iface, e.Start, e.Duration, e.LossProb)
	case RateCollapse:
		return fmt.Sprintf("%s %s @%v dur=%v factor=%.3f",
			e.Kind, e.Iface, e.Start, e.Duration, e.RateFactor)
	}
	return fmt.Sprintf("%s %s @%v dur=%v", e.Kind, e.Iface, e.Start, e.Duration)
}

// Schedule is an ordered list of episodes. Order matters only for
// same-instant ties: episodes are compiled in slice order, so earlier
// episodes' effects fire first at equal timestamps.
type Schedule struct {
	Episodes []Episode
}

// String renders the schedule one episode per line.
func (s Schedule) String() string {
	var b strings.Builder
	for i, e := range s.Episodes {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(e.String())
	}
	return b.String()
}

// Validate checks structural soundness of every episode.
func (s Schedule) Validate() error {
	for i, e := range s.Episodes {
		if e.Iface == "" {
			return fmt.Errorf("faults: episode %d: empty interface", i)
		}
		if e.Start < 0 {
			return fmt.Errorf("faults: episode %d: negative start %v", i, e.Start)
		}
		if e.Duration <= 0 {
			return fmt.Errorf("faults: episode %d: non-positive duration %v", i, e.Duration)
		}
		switch e.Kind {
		case AdminDown, Blackhole:
		case FlapTrain:
			if e.Cycles < 1 {
				return fmt.Errorf("faults: episode %d: flap needs cycles >= 1", i)
			}
			if e.Period <= e.Duration {
				return fmt.Errorf("faults: episode %d: flap period %v must exceed duration %v",
					i, e.Period, e.Duration)
			}
		case LossBurst:
			if e.LossProb <= 0 || e.LossProb >= 1 {
				return fmt.Errorf("faults: episode %d: loss prob %v outside (0,1)", i, e.LossProb)
			}
		case RateCollapse:
			if e.RateFactor <= 0 || e.RateFactor > 1 {
				return fmt.Errorf("faults: episode %d: rate factor %v outside (0,1]", i, e.RateFactor)
			}
		default:
			return fmt.Errorf("faults: episode %d: unknown kind %d", i, int(e.Kind))
		}
	}
	return nil
}

// step opcodes: each scheduled simulator event applies one.
const (
	opDown = iota
	opUp
	opBlackholeOn
	opBlackholeOff
	opLossOn
	opLossOff
	opRateOn
	opRateOff
)

// restore carries per-episode baseline state captured when the fault
// starts, so the restoring edge puts back what was actually there.
type restore struct {
	upProb, downProb float64
	upRate, downRate float64
}

// step is one compiled fault edge. Steps are scheduled with
// simnet.ScheduleArg and a package-level function — no per-event
// closures, per the engine's allocation discipline.
type step struct {
	inj    *Injector
	iface  *netem.Iface
	op     int
	prob   float64
	factor float64
	saved  *restore
}

// lossLink is implemented by links exposing their current baseline loss
// probability (baseLink does).
type lossLink interface{ LossProb() float64 }

// rateLink is implemented by fixed-rate links (netem.FixedLink).
type rateLink interface {
	RateMbps() float64
	SetRateMbps(float64)
}

// Injector is an attached schedule: its steps live on the simulator's
// event heap and fire as virtual time passes.
type Injector struct {
	sim   *simnet.Sim
	rng   *rand.Rand
	steps int
	fired int
}

// Steps returns the number of compiled fault edges.
func (in *Injector) Steps() int { return in.steps }

// Fired returns how many fault edges have executed so far.
func (in *Injector) Fired() int { return in.fired }

// runStep applies one fault edge.
func runStep(a any) {
	st := a.(*step)
	st.inj.fired++
	i := st.iface
	switch st.op {
	case opDown:
		i.SetDown(true)
	case opUp:
		i.SetDown(false)
	case opBlackholeOn:
		i.SetBlackhole(true)
	case opBlackholeOff:
		i.SetBlackhole(false)
	case opLossOn:
		if l, ok := i.UpLink().(lossLink); ok {
			st.saved.upProb = l.LossProb()
		}
		if l, ok := i.DownLink().(lossLink); ok {
			st.saved.downProb = l.LossProb()
		}
		i.SetLossProb(st.prob, st.inj.rng)
	case opLossOff:
		i.UpLink().SetLossProb(st.saved.upProb, nil)
		i.DownLink().SetLossProb(st.saved.downProb, nil)
	case opRateOn:
		if l, ok := i.UpLink().(rateLink); ok {
			st.saved.upRate = l.RateMbps()
			l.SetRateMbps(st.saved.upRate * st.factor)
		}
		if l, ok := i.DownLink().(rateLink); ok {
			st.saved.downRate = l.RateMbps()
			l.SetRateMbps(st.saved.downRate * st.factor)
		}
	case opRateOff:
		if l, ok := i.UpLink().(rateLink); ok {
			l.SetRateMbps(st.saved.upRate)
		}
		if l, ok := i.DownLink().(rateLink); ok {
			l.SetRateMbps(st.saved.downRate)
		}
	}
}

// Attach validates the schedule, compiles it against host's interfaces
// and arms every fault edge on the simulator's event heap, relative to
// sim.Now(). The injected loss stream (for links built without an RNG)
// comes from the simulator's named "faults" stream, so runs are
// bit-identical regardless of host parallelism.
func (s Schedule) Attach(sim *simnet.Sim, host *netem.Host) (*Injector, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	inj := &Injector{sim: sim, rng: sim.RNG("faults")}
	base := sim.Now()
	arm := func(at time.Duration, st *step) {
		st.inj = inj
		inj.steps++
		sim.ScheduleArg(base+at, runStep, st)
	}
	for i, e := range s.Episodes {
		ifc := host.Iface(e.Iface)
		if ifc == nil {
			return nil, fmt.Errorf("faults: episode %d: unknown interface %q", i, e.Iface)
		}
		switch e.Kind {
		case AdminDown:
			arm(e.Start, &step{iface: ifc, op: opDown})
			arm(e.Start+e.Duration, &step{iface: ifc, op: opUp})
		case Blackhole:
			arm(e.Start, &step{iface: ifc, op: opBlackholeOn})
			arm(e.Start+e.Duration, &step{iface: ifc, op: opBlackholeOff})
		case FlapTrain:
			for c := 0; c < e.Cycles; c++ {
				at := e.Start + time.Duration(c)*e.Period
				arm(at, &step{iface: ifc, op: opDown})
				arm(at+e.Duration, &step{iface: ifc, op: opUp})
			}
		case LossBurst:
			sv := &restore{}
			arm(e.Start, &step{iface: ifc, op: opLossOn, prob: e.LossProb, saved: sv})
			arm(e.Start+e.Duration, &step{iface: ifc, op: opLossOff, saved: sv})
		case RateCollapse:
			sv := &restore{}
			arm(e.Start, &step{iface: ifc, op: opRateOn, factor: e.RateFactor, saved: sv})
			arm(e.Start+e.Duration, &step{iface: ifc, op: opRateOff, saved: sv})
		}
	}
	return inj, nil
}

// GenSchedule draws a random schedule over the given interfaces: 1–4
// episodes of mixed kinds, starting within the first 60% of horizon and
// short enough that every fault ends before the horizon does. The same
// rng state always yields the same schedule — the chaos sweep and the
// differential fuzz target both rely on that.
func GenSchedule(rng *rand.Rand, ifaces []string, horizon time.Duration) Schedule {
	if len(ifaces) == 0 || horizon <= 0 {
		return Schedule{}
	}
	n := 1 + rng.Intn(4)
	eps := make([]Episode, 0, n)
	for i := 0; i < n; i++ {
		e := Episode{
			Kind:  Kind(rng.Intn(5)),
			Iface: ifaces[rng.Intn(len(ifaces))],
			Start: time.Duration(rng.Int63n(int64(horizon * 6 / 10))),
		}
		maxDur := horizon / 4
		e.Duration = 10*time.Millisecond + time.Duration(rng.Int63n(int64(maxDur)))
		switch e.Kind {
		case FlapTrain:
			e.Cycles = 2 + rng.Intn(3)
			// Keep the whole train inside the horizon budget.
			e.Duration = 10*time.Millisecond + time.Duration(rng.Int63n(int64(horizon/20)))
			e.Period = e.Duration + 10*time.Millisecond +
				time.Duration(rng.Int63n(int64(horizon/20)))
		case LossBurst:
			e.LossProb = 0.05 + 0.45*rng.Float64()
		case RateCollapse:
			e.RateFactor = 0.05 + 0.5*rng.Float64()
		}
		eps = append(eps, e)
	}
	return Schedule{Episodes: eps}
}
