package faults

import (
	"fmt"

	"multinet/internal/mptcp"
	"multinet/internal/netem"
	"multinet/internal/tcp"
)

// Violation is one failed invariant.
type Violation struct {
	Rule   string
	Detail string
}

// String renders "rule: detail".
func (v Violation) String() string { return v.Rule + ": " + v.Detail }

// Checker asserts the conservation invariants of a drained simulation:
//
//   - Link conservation: on every packet-mode link, every admitted
//     packet was either delivered or died in flight —
//     Sent == Delivered + LostInFlight. (Fluid-advance links carry
//     packets analytically and are skipped: Elided > 0.)
//   - Exactly-once delivery: a receiver never advances past what its
//     peer queued, and a gracefully completed transfer delivered every
//     byte.
//   - No stranded mappings: on a live connection, every scheduled but
//     un-acked byte is covered by a mapping record something can still
//     retransmit (Conn.UncoveredBytes == 0).
//   - No silent stalls: at quiescence a connection with undelivered
//     data must have been closed or aborted — a watchdog abort counts;
//     simply hanging does not.
//   - No pooled-object leaks (when Leaks is set): the packet and
//     segment pools balance allocations against recycles.
//
// Call Check only after the simulation has drained (or at a known
// quiescent point); mid-flight the link identity does not hold.
type Checker struct {
	// Leaks additionally asserts the netem packet pool and tcp segment
	// pool balances are zero. Set it only if SetLeakTracking(true) was
	// called on both pools before the simulation was built.
	Leaks bool

	links []checkedLink
	pairs []connPair
}

type checkedLink struct {
	name string
	link netem.Link
}

type connPair struct {
	label string
	a, b  *mptcp.Conn
}

// AddLink registers one link for conservation checking.
func (c *Checker) AddLink(name string, l netem.Link) {
	c.links = append(c.links, checkedLink{name: name, link: l})
}

// AddHost registers both directions of every interface of h.
func (c *Checker) AddHost(h *netem.Host) {
	for _, ifc := range h.Ifaces() {
		c.AddLink(ifc.Name+"/up", ifc.UpLink())
		c.AddLink(ifc.Name+"/down", ifc.DownLink())
	}
}

// AddPair registers the two endpoints of one MPTCP connection.
func (c *Checker) AddPair(label string, a, b *mptcp.Conn) {
	c.pairs = append(c.pairs, connPair{label: label, a: a, b: b})
}

// Check runs every registered invariant and returns the violations
// (empty means all invariants hold).
func (c *Checker) Check() []Violation {
	var out []Violation
	for _, cl := range c.links {
		st := cl.link.Stats()
		if st.Elided > 0 {
			continue // fluid-carried packets never existed individually
		}
		if st.Sent != st.Delivered+st.LostInFlight {
			out = append(out, Violation{
				Rule: "link-conservation",
				Detail: fmt.Sprintf("%s: sent=%d delivered=%d lost-in-flight=%d",
					cl.name, st.Sent, st.Delivered, st.LostInFlight),
			})
		}
	}
	for _, p := range c.pairs {
		out = c.checkDir(out, p.label+" a->b", p.a, p.b)
		out = c.checkDir(out, p.label+" b->a", p.b, p.a)
	}
	if c.Leaks {
		if n := netem.LivePackets(); n != 0 {
			out = append(out, Violation{
				Rule:   "packet-leak",
				Detail: fmt.Sprintf("%d pooled packets unaccounted for", n),
			})
		}
		if n := tcp.LiveSegments(); n != 0 {
			out = append(out, Violation{
				Rule:   "segment-leak",
				Detail: fmt.Sprintf("%d pooled segments unaccounted for", n),
			})
		}
	}
	return out
}

// checkDir asserts the sender→receiver invariants for one direction of
// one connection pair.
func (c *Checker) checkDir(out []Violation, label string, snd, rcv *mptcp.Conn) []Violation {
	if rcv.RcvNxt() > snd.SendTotal() {
		out = append(out, Violation{
			Rule: "over-delivery",
			Detail: fmt.Sprintf("%s: receiver advanced to %d of %d queued bytes",
				label, rcv.RcvNxt(), snd.SendTotal()),
		})
	}
	if !snd.Closed() {
		if u := snd.UncoveredBytes(); u != 0 {
			out = append(out, Violation{
				Rule: "stranded-mapping",
				Detail: fmt.Sprintf("%s: %d scheduled bytes covered by no live mapping",
					label, u),
			})
		}
		if snd.DataAcked() < snd.SendTotal() {
			out = append(out, Violation{
				Rule: "silent-stall",
				Detail: fmt.Sprintf("%s: %d of %d bytes undelivered on an open connection at quiescence",
					label, snd.SendTotal()-snd.DataAcked(), snd.SendTotal()),
			})
		}
	}
	if snd.Closed() && !snd.Aborted() && rcv.Closed() && !rcv.Aborted() {
		if rcv.RecvTotal() != int64(snd.SendTotal()) {
			out = append(out, Violation{
				Rule: "incomplete-delivery",
				Detail: fmt.Sprintf("%s: delivered %d of %d bytes on a gracefully closed connection",
					label, rcv.RecvTotal(), snd.SendTotal()),
			})
		}
	}
	return out
}
