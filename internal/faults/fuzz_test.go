package faults_test

import (
	"testing"
	"time"

	"multinet/internal/faults"
	"multinet/internal/netem"
	"multinet/internal/tcp"
)

// decodeSchedule turns fuzz bytes into a valid fault schedule over the
// wifi/lte pair: 6 bytes per episode (kind, iface, start, duration,
// and two kind-specific operands). Invalid combinations cannot be
// produced — every decoded schedule passes Validate.
func decodeSchedule(data []byte) faults.Schedule {
	var eps []faults.Episode
	for len(data) >= 6 && len(eps) < 6 {
		b := data[:6]
		data = data[6:]
		e := faults.Episode{
			Kind:     faults.Kind(int(b[0]) % 5),
			Iface:    []string{"wifi", "lte"}[int(b[1])%2],
			Start:    time.Duration(b[2]) * 20 * time.Millisecond,
			Duration: time.Duration(1+int(b[3])%100) * 10 * time.Millisecond,
		}
		switch e.Kind {
		case faults.FlapTrain:
			e.Cycles = 1 + int(b[4])%4
			e.Period = e.Duration + time.Duration(1+int(b[5])%50)*10*time.Millisecond
		case faults.LossBurst:
			e.LossProb = 0.05 + 0.9*float64(b[4])/256
		case faults.RateCollapse:
			e.RateFactor = 0.05 + 0.9*float64(b[4])/256
		}
		eps = append(eps, e)
	}
	return faults.Schedule{Episodes: eps}
}

// FuzzChaosSchedule is the differential chaos target: arbitrary bytes
// become a fault schedule, the same transfer runs under it twice, and
// the two runs must agree bit for bit (link counters, delivery totals,
// stall counts, end time) with zero invariant violations — the
// conservation, stranded-mapping, silent-stall, and pool-leak rules all
// hold under any schedule the fuzzer can express.
func FuzzChaosSchedule(f *testing.F) {
	f.Add([]byte{})                                  // fault-free baseline
	f.Add([]byte{0, 0, 2, 30, 0, 0})                 // admin-down mid-flow
	f.Add([]byte{1, 1, 1, 60, 0, 0})                 // lte blackhole
	f.Add([]byte{2, 0, 3, 5, 2, 4})                  // wifi flap train
	f.Add([]byte{3, 0, 0, 50, 128, 0, 4, 1, 2, 40, 200, 0}) // loss burst + rate collapse
	f.Fuzz(func(t *testing.T, data []byte) {
		sched := decodeSchedule(data)
		if err := sched.Validate(); err != nil {
			t.Fatalf("decoder produced invalid schedule: %v\n%s", err, sched)
		}
		defer netem.SetLeakTracking(false)
		defer tcp.SetLeakTracking(false)
		download := len(data) == 0 || data[len(data)-1]%2 == 0
		a := runChaos(t, 1234, sched, download, 64<<10)
		b := runChaos(t, 1234, sched, download, 64<<10)
		for _, v := range a.violations {
			t.Errorf("invariant violated: %s\nschedule:\n%s", v, sched)
		}
		if a.signature != b.signature {
			t.Errorf("divergent runs under identical schedule:\n%s\n%s\nschedule:\n%s",
				a.signature, b.signature, sched)
		}
	})
}
