package selector

import (
	"testing"
	"time"

	"multinet/internal/mptcp"
)

func pair(aMbps, bMbps float64) Estimate {
	return EstimateOf(
		PathEstimate{Name: "wifi", Mbps: aMbps, RTT: 20 * time.Millisecond},
		PathEstimate{Name: "lte", Mbps: bMbps, RTT: 40 * time.Millisecond},
	)
}

func TestDecideShortFlow(t *testing.T) {
	d := Selector{}.Decide(pair(3, 9), 50_000)
	if d.UseMPTCP {
		t.Fatal("short flow must stay single-path")
	}
	if d.Primary() != "lte" {
		t.Fatalf("primary = %q, want lte", d.Primary())
	}
	if d.Rationale != RationaleShortFlow {
		t.Fatalf("rationale = %q", d.Rationale)
	}
	if want := []string{"lte", "wifi"}; len(d.Paths) != 2 || d.Paths[0] != want[0] || d.Paths[1] != want[1] {
		t.Fatalf("paths = %v, want %v", d.Paths, want)
	}
}

func TestDecideLongFlowComparable(t *testing.T) {
	d := Selector{}.Decide(pair(6, 5), 5<<20)
	if !d.UseMPTCP || d.Primary() != "wifi" || d.CC != mptcp.Decoupled {
		t.Fatalf("decision = %+v, want MPTCP wifi-primary decoupled", d)
	}
	if d.Scheduler != mptcp.SchedMinSRTT {
		t.Fatalf("scheduler = %q, want minsrtt default", d.Scheduler)
	}
	if d.Rationale != RationaleAggregate {
		t.Fatalf("rationale = %q", d.Rationale)
	}
	if d.PairDisparity != 6.0/5 {
		t.Fatalf("disparity = %v", d.PairDisparity)
	}
}

func TestDecideDisparatePaths(t *testing.T) {
	d := Selector{}.Decide(pair(1, 10), 5<<20)
	if d.UseMPTCP || d.Primary() != "lte" {
		t.Fatalf("decision = %+v, want single-path lte (Fig. 7a regime)", d)
	}
	if d.Rationale != RationaleDisparity {
		t.Fatalf("rationale = %q", d.Rationale)
	}
}

func TestDecideEmptyEstimate(t *testing.T) {
	d := Selector{}.Decide(Estimate{}, 5<<20)
	if d.UseMPTCP || d.Primary() != "" || len(d.Paths) != 0 {
		t.Fatalf("decision = %+v, want empty no-MPTCP", d)
	}
	if d.Rationale != RationaleNoPaths {
		t.Fatalf("rationale = %q", d.Rationale)
	}
}

func TestDecidePreferCoupled(t *testing.T) {
	d := Selector{PreferCoupled: true}.Decide(pair(6, 5), 5<<20)
	if !d.UseMPTCP || d.CC != mptcp.Coupled {
		t.Fatalf("decision = %+v, want coupled CC", d)
	}
}

func TestDecideHoLAwareEscalation(t *testing.T) {
	s := Selector{HoLAwareDisparity: 2}
	// Disparity 3 is inside the MPTCP bound (4) but past the HoL-aware
	// escalation point.
	d := s.Decide(pair(9, 3), 5<<20)
	if !d.UseMPTCP || d.Scheduler != mptcp.SchedHoLAware {
		t.Fatalf("decision = %+v, want holaware scheduler", d)
	}
	if d.Rationale != RationaleHoLAware {
		t.Fatalf("rationale = %q", d.Rationale)
	}
	// Near-equal pair stays on min-SRTT.
	if d := s.Decide(pair(6, 5), 5<<20); d.Scheduler != mptcp.SchedMinSRTT {
		t.Fatalf("scheduler = %q, want minsrtt for near-equal pair", d.Scheduler)
	}
	// Default policy never escalates: the experiment goldens pin this.
	if d := (Selector{}).Decide(pair(9, 3), 5<<20); d.Scheduler != mptcp.SchedMinSRTT {
		t.Fatalf("default policy escalated scheduler to %q", d.Scheduler)
	}
}

// TestDecideMatchesRanked pins DecideInto's insertion sort to the
// exact order Ranked (sort.SliceStable) produces, ties included.
func TestDecideMatchesRanked(t *testing.T) {
	e := EstimateOf(
		PathEstimate{Name: "a", Mbps: 5, RTT: 30 * time.Millisecond},
		PathEstimate{Name: "b", Mbps: 9, RTT: 60 * time.Millisecond},
		PathEstimate{Name: "c", Mbps: 5, RTT: 30 * time.Millisecond}, // full tie with a
		PathEstimate{Name: "d", Mbps: 9, RTT: 45 * time.Millisecond},
		PathEstimate{Name: "e", Mbps: 0, RTT: 0},
	)
	d := Selector{}.Decide(e, 5<<20)
	ranked := e.Ranked()
	if len(d.Paths) != len(ranked) {
		t.Fatalf("paths %v vs ranked %v", d.Paths, ranked)
	}
	for i := range ranked {
		if d.Paths[i] != ranked[i].Name {
			t.Fatalf("paths[%d] = %q, ranked = %q", i, d.Paths[i], ranked[i].Name)
		}
	}
	if d.PairDisparity != e.PairDisparity() {
		t.Fatalf("disparity %v vs %v", d.PairDisparity, e.PairDisparity())
	}
}

func TestDecideIntoReusesCapacity(t *testing.T) {
	e := pair(6, 5)
	var d Decision
	s := Selector{}
	s.DecideInto(&d, e, 5<<20)
	if testing.AllocsPerRun(100, func() {
		s.DecideInto(&d, e, 5<<20)
	}) != 0 {
		t.Fatal("warm DecideInto must not allocate")
	}
}

func TestEstimateIndexedSetLookup(t *testing.T) {
	var e Estimate
	names := []string{"p0", "p1", "p2", "p3", "p4", "p5", "p6", "p7", "p8", "p9"}
	for i, n := range names {
		e.Set(n, float64(i+1), time.Duration(i)*time.Millisecond)
	}
	if e.index == nil {
		t.Fatalf("index not built past threshold (%d paths)", len(names))
	}
	for i, n := range names {
		p, ok := e.Lookup(n)
		if !ok || p.Mbps != float64(i+1) {
			t.Fatalf("Lookup(%q) = %+v %v", n, p, ok)
		}
	}
	// Update through the index must hit the right slot.
	e.Set("p7", 99, 0)
	if got := e.Mbps("p7"); got != 99 {
		t.Fatalf("after Set, Mbps(p7) = %v", got)
	}
	if _, ok := e.Lookup("absent"); ok {
		t.Fatal("Lookup(absent) = true")
	}
}

// TestEstimateIndexStaleCopy pins the safety contract: a value copy
// that diverges from the shared index degrades to the linear scan,
// never to a wrong answer.
func TestEstimateIndexStaleCopy(t *testing.T) {
	var a Estimate
	for i := 0; i < indexThreshold; i++ {
		a.Set(string(rune('a'+i)), float64(i+1), 0)
	}
	b := a // shares the index map
	b.Paths = append([]PathEstimate(nil), b.Paths[:2]...)
	// The shared index still claims positions >= 2; b must not trust it.
	if _, ok := b.Lookup("h"); ok {
		t.Fatal("stale index produced a phantom path")
	}
	if p, ok := b.Lookup("b"); !ok || p.Mbps != 2 {
		t.Fatalf("Lookup(b) = %+v %v", p, ok)
	}
	// Writing through the truncated copy must not corrupt the original.
	b.Set("z", 50, 0)
	if _, ok := a.Lookup("z"); ok && a.Mbps("z") != 50 {
		t.Fatal("cross-copy corruption")
	}
	if a.Mbps("h") != 8 {
		t.Fatalf("original lost a path: %v", a.Mbps("h"))
	}
}

func TestEstimateOfIndexesLargeSets(t *testing.T) {
	paths := make([]PathEstimate, 12)
	for i := range paths {
		paths[i] = PathEstimate{Name: string(rune('a' + i)), Mbps: float64(i)}
	}
	e := EstimateOf(paths...)
	if e.index == nil {
		t.Fatal("EstimateOf did not index a 12-path set")
	}
	if e.Mbps("k") != 10 {
		t.Fatalf("Mbps(k) = %v", e.Mbps("k"))
	}
}
