// Package selector is the public decision API of the reproduction:
// "which path(s), MPTCP or not, which scheduler?" — the adaptive
// policy the paper's conclusion poses as future work, redesigned as a
// standalone package so the same code path serves both the offline
// experiments (internal/experiments ablation-selector) and the online
// path-selection service (internal/serve, cmd/serve).
//
// The package has three layers:
//
//   - Estimate/PathEstimate describe the current per-path conditions
//     of one multi-homed client, in preference order (EstimateOf is
//     the N-path constructor).
//   - Selector is the policy; Decide evaluates it over an estimate
//     and returns a Decision (paths in preference order, UseMPTCP,
//     congestion coupling, scheduler, and the disparity rationale).
//     DecideInto is the allocation-free form the service's hot path
//     uses with pooled Decisions.
//   - Store holds sharded per-site estimates with exponential decay
//     (store.go) — the state behind cmd/serve.
//
// internal/core keeps type aliases (core.Estimate, core.PathEstimate,
// core.Selector) and a ConfigFor adapter so existing experiment code
// migrates incrementally.
package selector

import (
	"sort"
	"time"

	"multinet/internal/mptcp"
)

// hugeDisparity is the ratio reported when a disparity is undefined
// (a zero-rate path, or fewer than two paths): effectively infinite,
// so every disparity gate fails closed to single-path TCP.
const hugeDisparity = 1e9

// PathEstimate is one path's estimated conditions, as a lightweight
// probe or telemetry history would report them.
type PathEstimate struct {
	Name string
	Mbps float64
	RTT  time.Duration
}

// indexThreshold is the path count past which Estimate.Set/Lookup
// switch from a linear scan to the name index. Below it, scanning a
// handful of entries beats the map's hashing cost; the classic pair
// and every paper scenario stay on the scan path.
const indexThreshold = 8

// Estimate summarises the current conditions of any number of paths.
// Path order is significant: earlier paths win ranking ties, so build
// estimates in preference order (core's Probe uses host attachment
// order; the Store uses first-telemetry order).
type Estimate struct {
	Paths []PathEstimate

	// index maps path name to its Paths position once the set exceeds
	// indexThreshold. Entries are verified before use (the map may be
	// shared between value copies of an Estimate that have diverged),
	// so a stale entry degrades to the linear scan, never to a wrong
	// answer.
	index map[string]int
}

// EstimateOf builds an estimate from per-path stats in preference
// order — the N-path generalisation of the classic WiFi+LTE pair
// (core.WiFiLTEEstimate wraps it).
func EstimateOf(paths ...PathEstimate) Estimate {
	e := Estimate{Paths: paths}
	e.reindex()
	return e
}

// reindex (re)builds the name index when the path set is large enough
// to warrant one.
func (e *Estimate) reindex() {
	if len(e.Paths) < indexThreshold {
		return
	}
	if e.index == nil {
		e.index = make(map[string]int, len(e.Paths))
	}
	for i, p := range e.Paths {
		e.index[p.Name] = i
	}
}

// find returns the position of the named path, or -1. It consults the
// index first and verifies the hit, falling back to the linear scan on
// any mismatch.
func (e *Estimate) find(name string) int {
	if e.index != nil {
		if i, ok := e.index[name]; ok && i < len(e.Paths) && e.Paths[i].Name == name {
			return i
		}
	}
	for i := range e.Paths {
		if e.Paths[i].Name == name {
			return i
		}
	}
	return -1
}

// Set updates the named path's estimate, appending it if new.
func (e *Estimate) Set(name string, mbps float64, rtt time.Duration) {
	if i := e.find(name); i >= 0 {
		e.Paths[i].Mbps, e.Paths[i].RTT = mbps, rtt
		return
	}
	e.Paths = append(e.Paths, PathEstimate{Name: name, Mbps: mbps, RTT: rtt})
	if len(e.Paths) >= indexThreshold {
		e.reindex()
	}
}

// Lookup returns the named path's estimate.
func (e Estimate) Lookup(name string) (PathEstimate, bool) {
	if i := e.find(name); i >= 0 {
		return e.Paths[i], true
	}
	return PathEstimate{}, false
}

// Mbps returns the named path's estimated throughput (0 if unknown).
func (e Estimate) Mbps(name string) float64 {
	p, _ := e.Lookup(name)
	return p.Mbps
}

// Ranked returns the paths best-first: higher throughput wins, ties
// broken by lower RTT, remaining ties by estimate order.
func (e Estimate) Ranked() []PathEstimate {
	out := append([]PathEstimate(nil), e.Paths...)
	sort.SliceStable(out, func(i, j int) bool {
		return pathLess(out[i], out[j])
	})
	return out
}

// pathLess is the ranking order: higher throughput first, RTT
// tie-break. Shared by Ranked and the allocation-free insertion sort
// in DecideInto so the two can never disagree.
func pathLess(a, b PathEstimate) bool {
	if a.Mbps != b.Mbps {
		return a.Mbps > b.Mbps
	}
	return a.RTT < b.RTT
}

// Best returns the name of the top-ranked path ("" for an empty
// estimate).
func (e Estimate) Best() string {
	r := e.Ranked()
	if len(r) == 0 {
		return ""
	}
	return r[0].Name
}

// Disparity returns max/min of the per-path throughput estimates
// across the whole set (hugeDisparity when any path reports zero or
// fewer than two paths exist).
func (e Estimate) Disparity() float64 {
	if len(e.Paths) < 2 {
		return hugeDisparity
	}
	lo, hi := e.Paths[0].Mbps, e.Paths[0].Mbps
	for _, p := range e.Paths[1:] {
		if p.Mbps < lo {
			lo = p.Mbps
		}
		if p.Mbps > hi {
			hi = p.Mbps
		}
	}
	if lo <= 0 {
		return hugeDisparity
	}
	return hi / lo
}

// PairDisparity returns the throughput ratio of the best path to the
// second-best — the quantity that decides whether MPTCP's extra
// subflow can help. With exactly two paths it equals Disparity; with
// more it ignores paths MPTCP's scheduler would starve anyway.
func (e Estimate) PairDisparity() float64 {
	r := e.Ranked()
	if len(r) < 2 || r[1].Mbps <= 0 {
		return hugeDisparity
	}
	return r[0].Mbps / r[1].Mbps
}

// Rationale values are fixed machine-readable slugs so the decide hot
// path never formats and API clients can switch on them.
const (
	// RationaleNoPaths: the estimate is empty — nothing to choose.
	RationaleNoPaths = "no-paths"
	// RationaleShortFlow: the flow is too small for MPTCP's extra
	// subflow to pay for its join (paper Figs. 7, 18/19); single-path
	// TCP on the best path.
	RationaleShortFlow = "short-flow"
	// RationaleDisparity: the best two paths are too unequal — MPTCP
	// underperforms the better single path (paper Fig. 7a).
	RationaleDisparity = "disparity"
	// RationaleAggregate: long flow over a comparable best pair —
	// MPTCP aggregates (paper Fig. 8).
	RationaleAggregate = "aggregate"
	// RationaleHoLAware: as RationaleAggregate, but the residual
	// disparity is high enough that a HoL-aware scheduler is
	// recommended over min-SRTT (BLEST/ECF regime, cf. the
	// rate-splitting oracle of Dione et al., arXiv:1706.04714).
	RationaleHoLAware = "holaware"
	// RationaleStaleTelemetry: every path estimate has been silent for
	// longer than the store's staleness floor, so the ranking is a
	// memory, not a measurement. The decision degrades to single-path
	// TCP on the best remembered path — opening a second subflow on
	// the strength of decayed numbers is exactly the mistake the
	// paper's adaptive conclusion warns against.
	RationaleStaleTelemetry = "stale-telemetry"
)

// Decision is the selector's answer for one flow: the full path
// preference order, whether to open an MPTCP connection across the
// best pair, and with which coupling and data scheduler. It is the
// single decision type consumed by the experiments (via
// core.ConfigFor) and by the online service (internal/serve).
type Decision struct {
	// Paths is every estimated path in preference order, best first.
	// Single-path TCP uses Paths[0]; MPTCP makes Paths[0] the primary
	// subflow.
	Paths []string
	// UseMPTCP reports whether MPTCP across the best pair beats the
	// best single path.
	UseMPTCP bool
	// CC is the recommended congestion coupling (meaningful only when
	// UseMPTCP).
	CC mptcp.CongestionMode
	// Scheduler is the recommended MPTCP data scheduler (meaningful
	// only when UseMPTCP).
	Scheduler string
	// PairDisparity is the best-to-second-best throughput ratio that
	// drove the MPTCP gate.
	PairDisparity float64
	// Rationale is the finding behind the decision, one of the
	// Rationale* constants.
	Rationale string

	// ranked is the sort scratch, retained so pooled Decisions reuse
	// its capacity across requests.
	ranked []PathEstimate
}

// Primary returns the preferred path ("" when no path is estimated).
func (d *Decision) Primary() string {
	if len(d.Paths) == 0 {
		return ""
	}
	return d.Paths[0]
}

// Selector is the adaptive policy the paper's conclusion calls for,
// assembled from its empirical findings:
//
//   - Short flows gain nothing from MPTCP (Figs. 7, 18/19): use
//     single-path TCP on the better network.
//   - With a large rate disparity between the paths, MPTCP underper-
//     forms the better single path at every size (Fig. 7a): stay
//     single-path.
//   - Otherwise, long flows benefit from MPTCP with the primary on the
//     better network (Fig. 8) and decoupled congestion control, which
//     outruns coupled on long flows (Figs. 13/14).
//
// The policy ranks any number of paths: MPTCP is worthwhile when the
// best two paths are comparable, whatever the rest of the set does.
type Selector struct {
	// ShortFlowBytes is the flow size below which single-path TCP is
	// always chosen (default 200 KB — between the paper's 100 KB
	// "short" and 1 MB "long" sizes).
	ShortFlowBytes int
	// MaxDisparity is the largest path-rate ratio at which MPTCP is
	// still worthwhile (default 4, from the Fig. 7a regime).
	MaxDisparity float64
	// PreferCoupled selects coupled CC for long flows (fairness over
	// raw throughput); default false per Figs. 13/14.
	PreferCoupled bool
	// HoLAwareDisparity, when positive, recommends the HoL-aware
	// scheduler instead of min-SRTT once an accepted pair's disparity
	// reaches it (the BLEST/ECF regime scenario-schedulers measures).
	// Zero disables the scheduler escalation — the default, which the
	// experiment goldens pin.
	HoLAwareDisparity float64
}

func (s Selector) shortFlowBytes() int {
	if s.ShortFlowBytes > 0 {
		return s.ShortFlowBytes
	}
	return 200 << 10
}

func (s Selector) maxDisparity() float64 {
	if s.MaxDisparity > 0 {
		return s.MaxDisparity
	}
	return 4
}

// UseMPTCP is the MPTCP-worthwhile predicate over the estimated path
// set: the flow is long enough and the two best paths are within the
// disparity bound.
func (s Selector) UseMPTCP(e Estimate, flowBytes int) bool {
	return flowBytes > s.shortFlowBytes() && e.PairDisparity() <= s.maxDisparity()
}

// Decide evaluates the policy for a flow of the given size under the
// estimated conditions.
func (s Selector) Decide(e Estimate, flowBytes int) Decision {
	var d Decision
	s.DecideInto(&d, e, flowBytes)
	return d
}

// DecideInto is the allocation-free form of Decide: it fills d in
// place, reusing the capacity of d's slices. The online service calls
// it with pooled Decisions on the steady-state query path; after the
// first few requests warm a pooled Decision's capacity it never
// allocates again.
//
//multinet:hotpath
func (s Selector) DecideInto(d *Decision, e Estimate, flowBytes int) {
	d.Paths = d.Paths[:0] //lint:allow hotpath Paths capacity is amortised by the pooled Decision
	d.UseMPTCP = false
	d.CC = mptcp.Decoupled
	d.Scheduler = ""
	d.Rationale = RationaleNoPaths
	d.PairDisparity = hugeDisparity

	// Stable insertion sort into the retained scratch: the exact order
	// sort.SliceStable gives Ranked, without its allocations.
	d.ranked = d.ranked[:0] //lint:allow hotpath sort scratch capacity is amortised by the pooled Decision
	for _, p := range e.Paths {
		i := len(d.ranked)
		d.ranked = append(d.ranked, p) //lint:allow hotpath sort scratch capacity is amortised by the pooled Decision
		for i > 0 && pathLess(d.ranked[i], d.ranked[i-1]) {
			d.ranked[i], d.ranked[i-1] = d.ranked[i-1], d.ranked[i]
			i--
		}
	}
	for _, p := range d.ranked {
		d.Paths = append(d.Paths, p.Name) //lint:allow hotpath Paths capacity is amortised by the pooled Decision
	}
	if len(d.ranked) == 0 {
		return
	}
	if len(d.ranked) >= 2 && d.ranked[1].Mbps > 0 {
		d.PairDisparity = d.ranked[0].Mbps / d.ranked[1].Mbps
	}

	switch {
	case flowBytes <= s.shortFlowBytes():
		d.Rationale = RationaleShortFlow
	case d.PairDisparity > s.maxDisparity():
		d.Rationale = RationaleDisparity
	default:
		d.UseMPTCP = true
		if s.PreferCoupled {
			d.CC = mptcp.Coupled
		}
		d.Scheduler = mptcp.SchedMinSRTT
		d.Rationale = RationaleAggregate
		if s.HoLAwareDisparity > 0 && d.PairDisparity >= s.HoLAwareDisparity {
			d.Scheduler = mptcp.SchedHoLAware
			d.Rationale = RationaleHoLAware
		}
	}
}
