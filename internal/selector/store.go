package selector

import (
	"math"
	"sort"
	"sync"
	"time"

	"multinet/internal/mptcp"
)

// Store is the online service's estimate state: per-site path
// estimates, sharded by site name so concurrent telemetry and decide
// traffic for different sites never contend. Each shard has its own
// mutex and site map; a query locks exactly one shard, and only long
// enough to copy the site's decayed estimate into the caller's
// Decision scratch — there is no cross-shard locking anywhere.
//
// Estimates age by exponential decay: a path's throughput estimate is
// worth half as much every HalfLife of silence, so a path that stops
// reporting sinks in the ranking and eventually fails the MPTCP
// disparity gate, exactly as a probe-driven estimate would have gone
// stale. Time is supplied by the caller as an explicit monotonic
// instant (cmd/serve feeds time.Since(start)), which keeps this
// package free of wall clocks: tests and simulations inject any clock
// they like, and the determinism analyzer holds for the whole package.
type Store struct {
	shards []storeShard
	mask   uint32

	policy     Selector
	halfLife   time.Duration
	gain       float64
	staleAfter time.Duration
}

// storeShard is one lock domain. The padding keeps neighbouring
// shards' mutexes off one cache line so uncontended shards stay
// uncontended on real hardware.
type storeShard struct {
	mu    sync.Mutex
	sites map[string]*siteState
	_     [40]byte
}

// siteState is one site's per-path estimate with the instants needed
// for decay. The three slices are parallel; paths append in
// first-telemetry order, which thereby becomes the site's ranking
// tie-break order (matching Estimate's ordering contract).
type siteState struct {
	paths  []PathEstimate
	lastAt []time.Duration
}

// StoreConfig configures a Store. The zero value is usable: 64
// shards, a 30 s half-life, a 0.3 EWMA gain and the default policy.
type StoreConfig struct {
	// Shards is the shard count, rounded up to a power of two
	// (default 64).
	Shards int
	// HalfLife is the silence after which a path's throughput
	// estimate has decayed to half (default 30 s).
	HalfLife time.Duration
	// Gain is the EWMA weight of a fresh sample against the decayed
	// history, in (0, 1] (default 0.3).
	Gain float64
	// StaleAfter is the staleness floor: when every path of a site has
	// been silent at least this long at decide time, the estimate is
	// too decayed to justify opening extra subflows, and Decide
	// degrades to single-path TCP on the best remembered path with the
	// RationaleStaleTelemetry slug (default 8×HalfLife, at which point
	// throughput estimates retain under 0.4% of their last sample).
	StaleAfter time.Duration
	// Policy is the Selector evaluated by Decide.
	Policy Selector
}

// NewStore builds an empty sharded store.
func NewStore(cfg StoreConfig) *Store {
	n := cfg.Shards
	if n <= 0 {
		n = 64
	}
	// Round up to a power of two so shard selection is a mask.
	pow := 1
	for pow < n {
		pow <<= 1
	}
	if cfg.HalfLife <= 0 {
		cfg.HalfLife = 30 * time.Second
	}
	if cfg.Gain <= 0 || cfg.Gain > 1 {
		cfg.Gain = 0.3
	}
	if cfg.StaleAfter <= 0 {
		cfg.StaleAfter = 8 * cfg.HalfLife
	}
	st := &Store{
		shards:     make([]storeShard, pow),
		mask:       uint32(pow - 1),
		policy:     cfg.Policy,
		halfLife:   cfg.HalfLife,
		gain:       cfg.Gain,
		staleAfter: cfg.StaleAfter,
	}
	for i := range st.shards {
		st.shards[i].sites = make(map[string]*siteState)
	}
	return st
}

// Policy returns the selector the store evaluates.
func (st *Store) Policy() Selector { return st.policy }

// ShardCount returns the (power-of-two) shard count.
func (st *Store) ShardCount() int { return len(st.shards) }

// shardOf hashes a site name (FNV-1a over the raw bytes — no
// allocation, no conversion) onto a shard.
//
//multinet:hotpath
func (st *Store) shardOf(site []byte) *storeShard {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for _, b := range site {
		h ^= uint32(b)
		h *= prime32
	}
	return &st.shards[h&st.mask]
}

// decayFactor returns 2^(-age/halfLife), clamping negative ages
// (out-of-order telemetry) to no decay.
func (st *Store) decayFactor(age time.Duration) float64 {
	if age <= 0 {
		return 1
	}
	return math.Exp2(-float64(age) / float64(st.halfLife))
}

// Observe folds one telemetry sample into the named site's estimate
// at monotonic instant `at`. The stored history is first decayed to
// `at`, then blended with the sample at the configured gain, so a
// burst of samples converges quickly while a stale estimate fades on
// its own. Site and path arrive as byte slices straight out of a
// request buffer; they are only copied to strings when the site or
// path is first seen (the steady state allocates nothing).
//
//multinet:hotpath
func (st *Store) Observe(site, path []byte, mbps float64, rtt time.Duration, at time.Duration) {
	sh := st.shardOf(site)
	sh.mu.Lock()
	s := sh.sites[string(site)] // compiler elides the conversion for map reads
	if s == nil {
		s = &siteState{}
		sh.sites[string(site)] = s
	}
	for i := range s.paths {
		if string(path) == s.paths[i].Name {
			w := st.decayFactor(at - s.lastAt[i])
			decayed := s.paths[i].Mbps * w
			s.paths[i].Mbps = decayed + st.gain*(mbps-decayed)
			// RTT is a latency, not a budget: it goes stale but does
			// not shrink with silence, so it is EWMA'd without decay.
			s.paths[i].RTT += time.Duration(st.gain * float64(rtt-s.paths[i].RTT))
			s.lastAt[i] = at
			sh.mu.Unlock()
			return
		}
	}
	s.paths = append(s.paths, PathEstimate{Name: string(path), Mbps: mbps, RTT: rtt}) //lint:allow hotpath first sample for a path is the cold path; steady-state updates hit the in-place branch
	s.lastAt = append(s.lastAt, at)                                                   //lint:allow hotpath first sample for a path is the cold path; steady-state updates hit the in-place branch
	sh.mu.Unlock()
}

// Decide evaluates the policy for the named site at monotonic instant
// `at`, filling the caller's pooled Decision. It returns false when
// the site has never reported telemetry. The site's estimate is
// copied, decayed, into d's scratch under the shard lock; the policy
// then runs outside the lock, so a slow decision never blocks the
// site's telemetry ingest.
//
// When every path of the site has been silent for at least StaleAfter
// the estimate is a memory, not a measurement: the decision keeps the
// remembered ranking but degrades to single-path TCP with the
// RationaleStaleTelemetry slug.
//
//multinet:hotpath
func (st *Store) Decide(site []byte, flowBytes int, at time.Duration, d *Decision) bool {
	sh := st.shardOf(site)
	sh.mu.Lock()
	s := sh.sites[string(site)]
	if s == nil {
		sh.mu.Unlock()
		return false
	}
	d.ranked = d.ranked[:0] //lint:allow hotpath decayed-copy scratch capacity is amortised by the pooled Decision
	newest := time.Duration(math.MaxInt64)
	for i := range s.paths {
		p := s.paths[i]
		age := at - s.lastAt[i]
		if age < newest {
			newest = age
		}
		p.Mbps *= st.decayFactor(age)
		d.ranked = append(d.ranked, p) //lint:allow hotpath decayed-copy scratch capacity is amortised by the pooled Decision
	}
	sh.mu.Unlock()
	// DecideInto re-sorts d.ranked in place: handing it an Estimate
	// aliasing its own scratch is the designed zero-copy path.
	st.policy.DecideInto(d, Estimate{Paths: d.ranked}, flowBytes)
	if len(d.ranked) > 0 && newest >= st.staleAfter {
		d.UseMPTCP = false
		d.CC = mptcp.Decoupled
		d.Scheduler = ""
		d.Rationale = RationaleStaleTelemetry
	}
	return true
}

// StaleAfter returns the staleness floor Decide degrades at.
func (st *Store) StaleAfter() time.Duration { return st.staleAfter }

// Sites returns the total number of sites across all shards.
func (st *Store) Sites() int {
	n := 0
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.Lock()
		n += len(sh.sites)
		sh.mu.Unlock()
	}
	return n
}

// SiteNames returns every known site name, sorted (diagnostics; takes
// every shard lock in turn).
func (st *Store) SiteNames() []string {
	var names []string
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.Lock()
		for name := range sh.sites { //lint:allow determinism collection order is erased by the sort below
			names = append(names, name)
		}
		sh.mu.Unlock()
	}
	sort.Strings(names)
	return names
}

// LockSiteShard locks the shard owning site a and reports whether
// site b lives on a different shard. It exists so layers above the
// store (the HTTP service, load generators) can prove cross-shard
// independence end to end; production code has no use for it. The
// returned unlock must be called.
func (st *Store) LockSiteShard(a, b []byte) (unlock func(), cross bool) {
	sh := st.shardOf(a)
	sh.mu.Lock()
	return sh.mu.Unlock, st.shardOf(b) != sh
}

// Estimate returns a decayed snapshot of the named site's estimate at
// instant `at` (diagnostics and tests; allocates).
func (st *Store) Estimate(site string, at time.Duration) (Estimate, bool) {
	sh := st.shardOf([]byte(site))
	sh.mu.Lock()
	defer sh.mu.Unlock()
	s := sh.sites[site]
	if s == nil {
		return Estimate{}, false
	}
	var e Estimate
	for i := range s.paths {
		p := s.paths[i]
		p.Mbps *= st.decayFactor(at - s.lastAt[i])
		e.Paths = append(e.Paths, p)
	}
	return e, true
}
