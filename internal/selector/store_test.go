package selector

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func testStore(cfg StoreConfig) *Store {
	return NewStore(cfg)
}

func TestStoreObserveDecideRoundTrip(t *testing.T) {
	st := testStore(StoreConfig{})
	at := time.Second
	st.Observe([]byte("site-1"), []byte("wifi"), 6, 20*time.Millisecond, at)
	st.Observe([]byte("site-1"), []byte("lte"), 5, 40*time.Millisecond, at)

	var d Decision
	if !st.Decide([]byte("site-1"), 5<<20, at, &d) {
		t.Fatal("known site reported unknown")
	}
	if !d.UseMPTCP || d.Primary() != "wifi" {
		t.Fatalf("decision = %+v, want MPTCP wifi-primary", d)
	}
	if st.Decide([]byte("site-2"), 5<<20, at, &d) {
		t.Fatal("unknown site reported known")
	}
}

func TestStoreEWMAConverges(t *testing.T) {
	st := testStore(StoreConfig{Gain: 0.5})
	at := time.Second
	for i := 0; i < 20; i++ {
		st.Observe([]byte("s"), []byte("wifi"), 10, 20*time.Millisecond, at)
		at += 100 * time.Millisecond
	}
	e, ok := st.Estimate("s", at)
	if !ok {
		t.Fatal("site missing")
	}
	if m := e.Mbps("wifi"); m < 9 || m > 10 {
		t.Fatalf("EWMA after 20 samples of 10 = %v, want near 10", m)
	}
}

// TestStoreDecayUnderInjectedClock drives the decay model with
// explicit instants: after one half-life of silence the estimate is
// worth half, and a silent path eventually flips the MPTCP gate off.
func TestStoreDecayUnderInjectedClock(t *testing.T) {
	half := 10 * time.Second
	st := testStore(StoreConfig{HalfLife: half})
	at := time.Second
	st.Observe([]byte("s"), []byte("wifi"), 8, 20*time.Millisecond, at)
	st.Observe([]byte("s"), []byte("lte"), 8, 40*time.Millisecond, at)

	e, _ := st.Estimate("s", at+half)
	if m := e.Mbps("wifi"); m < 3.99 || m > 4.01 {
		t.Fatalf("after one half-life: %v, want 4", m)
	}

	// Both silent: they decay together, disparity stays 1, MPTCP holds.
	var d Decision
	st.Decide([]byte("s"), 5<<20, at+2*half, &d)
	if !d.UseMPTCP {
		t.Fatal("uniform decay must not flip the gate")
	}

	// Keep LTE fresh while WiFi goes silent: disparity opens past the
	// bound (factor 4 at two half-lives plus the refresh gain) and the
	// decision falls back to single-path on the fresh path.
	for i := time.Duration(1); i <= 40; i++ {
		st.Observe([]byte("s"), []byte("lte"), 8, 40*time.Millisecond, at+i*time.Second)
	}
	st.Decide([]byte("s"), 5<<20, at+40*time.Second, &d)
	if d.UseMPTCP {
		t.Fatalf("stale wifi should fail the disparity gate: %+v", d)
	}
	if d.Primary() != "lte" {
		t.Fatalf("primary = %q, want the fresh path", d.Primary())
	}
	if d.Rationale != RationaleDisparity {
		t.Fatalf("rationale = %q", d.Rationale)
	}
}

func TestStoreOutOfOrderTelemetryClamps(t *testing.T) {
	st := testStore(StoreConfig{})
	st.Observe([]byte("s"), []byte("wifi"), 10, 20*time.Millisecond, 10*time.Second)
	// A sample time-stamped before the last one must not inflate the
	// estimate through a negative-age anti-decay.
	st.Observe([]byte("s"), []byte("wifi"), 10, 20*time.Millisecond, 5*time.Second)
	e, _ := st.Estimate("s", 10*time.Second)
	if m := e.Mbps("wifi"); m > 10.001 {
		t.Fatalf("out-of-order sample inflated estimate to %v", m)
	}
}

func TestStoreShardIndependence(t *testing.T) {
	st := testStore(StoreConfig{Shards: 4})
	if st.ShardCount() != 4 {
		t.Fatalf("shards = %d", st.ShardCount())
	}
	// Find two sites that land on different shards.
	shardOf := func(name string) *storeShard { return st.shardOf([]byte(name)) }
	a := "site-a"
	b := ""
	for i := 0; i < 1000; i++ {
		cand := fmt.Sprintf("site-%d", i)
		if shardOf(cand) != shardOf(a) {
			b = cand
			break
		}
	}
	if b == "" {
		t.Fatal("no second shard hit in 1000 names")
	}
	// Hold one shard's lock; the other site's traffic must proceed.
	sh := shardOf(a)
	sh.mu.Lock()
	done := make(chan struct{})
	go func() {
		defer close(done)
		st.Observe([]byte(b), []byte("wifi"), 5, 0, time.Second)
		var d Decision
		st.Decide([]byte(b), 1<<10, time.Second, &d)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("cross-shard traffic blocked by a held shard lock")
	}
	sh.mu.Unlock()
}

func TestStoreShardRounding(t *testing.T) {
	if n := testStore(StoreConfig{Shards: 3}).ShardCount(); n != 4 {
		t.Fatalf("3 rounds to %d, want 4", n)
	}
	if n := testStore(StoreConfig{}).ShardCount(); n != 64 {
		t.Fatalf("default shards = %d, want 64", n)
	}
}

func TestStoreSites(t *testing.T) {
	st := testStore(StoreConfig{})
	for i := 0; i < 10; i++ {
		st.Observe([]byte(fmt.Sprintf("site-%d", i)), []byte("wifi"), 5, 0, time.Second)
	}
	if st.Sites() != 10 {
		t.Fatalf("Sites = %d", st.Sites())
	}
	names := st.SiteNames()
	if len(names) != 10 || names[0] != "site-0" || names[9] != "site-9" {
		t.Fatalf("SiteNames = %v", names)
	}
}

func TestStoreConcurrentTraffic(t *testing.T) {
	st := testStore(StoreConfig{Shards: 8})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			site := []byte(fmt.Sprintf("site-%d", g%4))
			var d Decision
			for i := 0; i < 2000; i++ {
				at := time.Duration(i) * time.Millisecond
				st.Observe(site, []byte("wifi"), 6, 20*time.Millisecond, at)
				st.Observe(site, []byte("lte"), 5, 40*time.Millisecond, at)
				st.Decide(site, 5<<20, at, &d)
			}
		}(g)
	}
	wg.Wait()
	if st.Sites() != 4 {
		t.Fatalf("Sites = %d, want 4", st.Sites())
	}
}

// TestStoreDecideZeroAlloc pins the steady-state decide path at zero
// allocations (the serve layer adds its parse/encode on top, pinned
// separately in internal/serve).
func TestStoreDecideZeroAlloc(t *testing.T) {
	st := testStore(StoreConfig{})
	site := []byte("site-1")
	st.Observe(site, []byte("wifi"), 6, 20*time.Millisecond, time.Second)
	st.Observe(site, []byte("lte"), 5, 40*time.Millisecond, time.Second)
	var d Decision
	st.Decide(site, 5<<20, time.Second, &d) // warm the scratch
	if n := testing.AllocsPerRun(200, func() {
		st.Decide(site, 5<<20, 2*time.Second, &d)
	}); n != 0 {
		t.Fatalf("steady-state Decide allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		st.Observe(site, []byte("wifi"), 6, 20*time.Millisecond, 3*time.Second)
	}); n != 0 {
		t.Fatalf("steady-state Observe allocates %v/op", n)
	}
}

// TestStoreStaleTelemetryFloor pins the staleness floor: once every
// path of a site has been silent for StaleAfter, Decide keeps the
// remembered ranking but degrades to single-path TCP with the
// wire-stable "stale-telemetry" rationale. One fresh path is enough to
// keep the floor from tripping.
func TestStoreStaleTelemetryFloor(t *testing.T) {
	if RationaleStaleTelemetry != "stale-telemetry" {
		t.Fatalf("RationaleStaleTelemetry = %q; the slug is wire-stable", RationaleStaleTelemetry)
	}
	half := 10 * time.Second
	st := testStore(StoreConfig{HalfLife: half, StaleAfter: 4 * half})
	if got := st.StaleAfter(); got != 4*half {
		t.Fatalf("StaleAfter() = %v, want %v", got, 4*half)
	}
	at := time.Second
	st.Observe([]byte("s"), []byte("wifi"), 8, 20*time.Millisecond, at)
	st.Observe([]byte("s"), []byte("lte"), 8, 40*time.Millisecond, at)

	var d Decision
	// Just under the floor: still a live estimate, MPTCP allowed.
	if !st.Decide([]byte("s"), 5<<20, at+4*half-time.Millisecond, &d) {
		t.Fatal("known site reported unknown")
	}
	if d.Rationale == RationaleStaleTelemetry {
		t.Fatalf("rationale %q just under the floor", d.Rationale)
	}
	// At the floor: degraded single-path decision, ranking preserved.
	if !st.Decide([]byte("s"), 5<<20, at+4*half, &d) {
		t.Fatal("known site reported unknown")
	}
	if d.UseMPTCP || d.Rationale != RationaleStaleTelemetry {
		t.Fatalf("at the floor: UseMPTCP=%v rationale=%q, want degraded stale-telemetry", d.UseMPTCP, d.Rationale)
	}
	if d.Scheduler != "" {
		t.Fatalf("degraded decision kept scheduler %q", d.Scheduler)
	}
	if d.Primary() != "wifi" {
		t.Fatalf("degraded primary = %q, want the remembered best path", d.Primary())
	}
	// One fresh path resets the floor for the whole site.
	st.Observe([]byte("s"), []byte("lte"), 8, 40*time.Millisecond, at+4*half)
	if !st.Decide([]byte("s"), 5<<20, at+4*half, &d) {
		t.Fatal("known site reported unknown")
	}
	if d.Rationale == RationaleStaleTelemetry {
		t.Fatal("floor tripped with one fresh path")
	}
}

// TestStoreStaleAfterDefault pins the default floor at 8x the
// half-life.
func TestStoreStaleAfterDefault(t *testing.T) {
	st := testStore(StoreConfig{HalfLife: 5 * time.Second})
	if got := st.StaleAfter(); got != 40*time.Second {
		t.Fatalf("default StaleAfter = %v, want 8x half-life", got)
	}
	st = testStore(StoreConfig{})
	if got := st.StaleAfter(); got != 240*time.Second {
		t.Fatalf("zero-config StaleAfter = %v, want 240s", got)
	}
}
