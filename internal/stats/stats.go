// Package stats provides the statistical primitives used throughout the
// reproduction: empirical CDFs, quantiles, geographic k-means clustering
// (used to regenerate the paper's Table 1), and Gaussian helpers used to
// calibrate synthetic measurement distributions.
package stats

import (
	"math"
	"sort"
)

// ECDF is an empirical cumulative distribution function over float64
// samples. The zero value is an empty distribution; add samples with Add
// or construct directly with NewECDF.
type ECDF struct {
	sorted []float64
	dirty  bool
}

// NewECDF builds an ECDF from the given samples (copied).
func NewECDF(samples []float64) *ECDF {
	e := &ECDF{sorted: append([]float64(nil), samples...)}
	sort.Float64s(e.sorted)
	return e
}

// Add inserts a sample.
func (e *ECDF) Add(x float64) {
	e.sorted = append(e.sorted, x)
	e.dirty = true
}

// N returns the sample count.
func (e *ECDF) N() int { return len(e.sorted) }

func (e *ECDF) ensure() {
	if e.dirty {
		sort.Float64s(e.sorted)
		e.dirty = false
	}
}

// At returns P(X <= x), the fraction of samples at or below x.
func (e *ECDF) At(x float64) float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	e.ensure()
	i := sort.SearchFloat64s(e.sorted, x)
	// Move past ties so that At is right-continuous (<= semantics).
	for i < len(e.sorted) && e.sorted[i] == x {
		i++
	}
	return float64(i) / float64(len(e.sorted))
}

// Quantile returns the q-quantile using linear interpolation between
// order statistics (type-7 in the Hyndman–Fan taxonomy, the R/NumPy
// default); Quantile(0.5) is the median. q is clamped to [0, 1]:
// q <= 0 yields the minimum, q >= 1 the maximum. An empty
// distribution yields NaN.
func (e *ECDF) Quantile(q float64) float64 {
	if len(e.sorted) == 0 {
		return math.NaN()
	}
	e.ensure()
	if q <= 0 {
		return e.sorted[0]
	}
	if q >= 1 {
		return e.sorted[len(e.sorted)-1]
	}
	pos := q * float64(len(e.sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return e.sorted[lo]
	}
	frac := pos - float64(lo)
	// lo + frac*(hi-lo) rather than lo*(1-frac) + hi*frac: the latter
	// can round a hair outside [sorted[lo], sorted[hi]] (e.g. between
	// two equal order statistics), breaking monotonicity in q by an
	// ulp. The clamp guards the remaining rounding of the addition.
	v := e.sorted[lo] + frac*(e.sorted[hi]-e.sorted[lo])
	if v < e.sorted[lo] {
		v = e.sorted[lo]
	}
	if v > e.sorted[hi] {
		v = e.sorted[hi]
	}
	return v
}

// Median returns the 0.5 quantile.
func (e *ECDF) Median() float64 { return e.Quantile(0.5) }

// Min returns the smallest sample.
func (e *ECDF) Min() float64 {
	if len(e.sorted) == 0 {
		return math.NaN()
	}
	e.ensure()
	return e.sorted[0]
}

// Max returns the largest sample.
func (e *ECDF) Max() float64 {
	if len(e.sorted) == 0 {
		return math.NaN()
	}
	e.ensure()
	return e.sorted[len(e.sorted)-1]
}

// Points returns (x, P(X<=x)) pairs suitable for plotting the CDF, one
// point per sample.
func (e *ECDF) Points() []Point {
	e.ensure()
	pts := make([]Point, len(e.sorted))
	for i, x := range e.sorted {
		pts[i] = Point{X: x, Y: float64(i+1) / float64(len(e.sorted))}
	}
	return pts
}

// Samples returns the sorted samples (a copy).
func (e *ECDF) Samples() []float64 {
	e.ensure()
	return append([]float64(nil), e.sorted...)
}

// Point is a 2-D plot point.
type Point struct{ X, Y float64 }

// Mean returns the arithmetic mean of xs (NaN if empty).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Median returns the median of xs without mutating it.
func Median(xs []float64) float64 {
	return NewECDF(xs).Median()
}

// NormQuantile returns the q-quantile of the standard normal
// distribution (the probit function). It is used to calibrate synthetic
// per-location throughput distributions so that P(LTE > WiFi) matches a
// target fraction analytically.
func NormQuantile(q float64) float64 {
	// Phi^-1(q) = sqrt(2) * erfinv(2q - 1)
	return math.Sqrt2 * math.Erfinv(2*q-1)
}

// NormCDF returns P(Z <= z) for a standard normal Z.
func NormCDF(z float64) float64 {
	return 0.5 * (1 + math.Erf(z/math.Sqrt2))
}
