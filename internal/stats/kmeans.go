package stats

import (
	"math"
	"sort"
)

// GeoPoint is a latitude/longitude pair in degrees.
type GeoPoint struct {
	Lat, Lon float64
}

// HaversineKm returns the great-circle distance between two points in
// kilometres (Earth radius 6371 km).
func HaversineKm(a, b GeoPoint) float64 {
	const earthRadiusKm = 6371.0
	lat1 := a.Lat * math.Pi / 180
	lat2 := b.Lat * math.Pi / 180
	dLat := (b.Lat - a.Lat) * math.Pi / 180
	dLon := (b.Lon - a.Lon) * math.Pi / 180
	s := math.Sin(dLat/2)*math.Sin(dLat/2) +
		math.Cos(lat1)*math.Cos(lat2)*math.Sin(dLon/2)*math.Sin(dLon/2)
	return 2 * earthRadiusKm * math.Asin(math.Min(1, math.Sqrt(s)))
}

// GeoCluster is a group of points within a fixed radius of a centroid,
// as produced by ClusterByRadius.
type GeoCluster struct {
	Centroid GeoPoint
	Members  []int // indices into the input slice
}

// ClusterByRadius groups points using the paper's Table 1 method: a
// k-means-style radius clustering where every member of a group lies
// within radiusKm of the group centroid (so any two members are within
// 2*radiusKm of each other). The paper uses r = 100 km.
//
// The algorithm is a deterministic greedy sequential leader clustering
// followed by centroid refinement — it needs no k and is stable for the
// fixed input orders used in the experiments.
func ClusterByRadius(points []GeoPoint, radiusKm float64) []GeoCluster {
	var clusters []GeoCluster
	for i, p := range points {
		best := -1
		bestDist := math.Inf(1)
		for c := range clusters {
			d := HaversineKm(clusters[c].Centroid, p)
			if d <= radiusKm && d < bestDist {
				best = c
				bestDist = d
			}
		}
		if best < 0 {
			clusters = append(clusters, GeoCluster{Centroid: p, Members: []int{i}})
			continue
		}
		cl := &clusters[best]
		cl.Members = append(cl.Members, i)
		// Refine the centroid as the running mean. For the sub-degree
		// spans involved a planar mean is accurate enough.
		n := float64(len(cl.Members))
		cl.Centroid.Lat += (p.Lat - cl.Centroid.Lat) / n
		cl.Centroid.Lon += (p.Lon - cl.Centroid.Lon) / n
	}
	// Sort clusters by descending size for stable presentation, matching
	// Table 1's "ordered by number of runs" layout.
	sort.SliceStable(clusters, func(i, j int) bool {
		return len(clusters[i].Members) > len(clusters[j].Members)
	})
	return clusters
}
