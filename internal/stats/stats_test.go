package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestECDFBasics(t *testing.T) {
	e := NewECDF([]float64{1, 2, 3, 4})
	if e.N() != 4 {
		t.Fatalf("N = %d, want 4", e.N())
	}
	cases := []struct {
		x, want float64
	}{
		{0, 0}, {1, 0.25}, {2.5, 0.5}, {4, 1}, {10, 1},
	}
	for _, c := range cases {
		if got := e.At(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("At(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestECDFAtWithTies(t *testing.T) {
	e := NewECDF([]float64{1, 1, 1, 2})
	if got := e.At(1); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("At(1) with ties = %v, want 0.75", got)
	}
	if got := e.At(0.999); got != 0 {
		t.Fatalf("At(0.999) = %v, want 0", got)
	}
}

func TestECDFQuantile(t *testing.T) {
	e := NewECDF([]float64{10, 20, 30, 40, 50})
	if got := e.Median(); got != 30 {
		t.Fatalf("median = %v, want 30", got)
	}
	if got := e.Quantile(0); got != 10 {
		t.Fatalf("q0 = %v, want 10", got)
	}
	if got := e.Quantile(1); got != 50 {
		t.Fatalf("q1 = %v, want 50", got)
	}
	// Interpolated quantile.
	if got := e.Quantile(0.25); got != 20 {
		t.Fatalf("q0.25 = %v, want 20", got)
	}
	if got := e.Quantile(0.125); math.Abs(got-15) > 1e-9 {
		t.Fatalf("q0.125 = %v, want 15", got)
	}
}

func TestECDFQuantileEdgeCases(t *testing.T) {
	// Empty distribution: every quantile is NaN.
	empty := NewECDF(nil)
	for _, q := range []float64{0, 0.5, 1} {
		if got := empty.Quantile(q); !math.IsNaN(got) {
			t.Fatalf("empty Quantile(%v) = %v, want NaN", q, got)
		}
	}
	// Single sample: every quantile is that sample.
	single := NewECDF([]float64{7})
	for _, q := range []float64{-1, 0, 0.3, 0.5, 1, 2} {
		if got := single.Quantile(q); got != 7 {
			t.Fatalf("single-sample Quantile(%v) = %v, want 7", q, got)
		}
	}
	// Out-of-range q clamps to min/max rather than extrapolating.
	e := NewECDF([]float64{1, 2, 3})
	if got := e.Quantile(-0.5); got != 1 {
		t.Fatalf("Quantile(-0.5) = %v, want min 1", got)
	}
	if got := e.Quantile(1.5); got != 3 {
		t.Fatalf("Quantile(1.5) = %v, want max 3", got)
	}
	// The contract is LINEAR interpolation between order statistics
	// (type-7), not nearest rank: between the two samples of {0, 10}
	// the quarter-quantile is 2.5, where nearest-rank would snap to a
	// sample.
	two := NewECDF([]float64{0, 10})
	if got := two.Quantile(0.25); math.Abs(got-2.5) > 1e-9 {
		t.Fatalf("Quantile(0.25) over {0,10} = %v, want 2.5 (linear interpolation)", got)
	}
	four := NewECDF([]float64{1, 2, 3, 4})
	if got := four.Median(); math.Abs(got-2.5) > 1e-9 {
		t.Fatalf("even-count median = %v, want 2.5", got)
	}
}

func TestECDFAddKeepsSorted(t *testing.T) {
	e := &ECDF{}
	for _, x := range []float64{5, 1, 3, 2, 4} {
		e.Add(x)
	}
	if got := e.Median(); got != 3 {
		t.Fatalf("median = %v, want 3", got)
	}
	s := e.Samples()
	if !sort.Float64sAreSorted(s) {
		t.Fatalf("Samples not sorted: %v", s)
	}
}

func TestECDFEmpty(t *testing.T) {
	e := &ECDF{}
	if e.At(1) != 0 {
		t.Fatal("empty ECDF At should be 0")
	}
	if !math.IsNaN(e.Median()) {
		t.Fatal("empty ECDF median should be NaN")
	}
}

func TestECDFPoints(t *testing.T) {
	e := NewECDF([]float64{2, 1})
	pts := e.Points()
	if len(pts) != 2 || pts[0].X != 1 || pts[0].Y != 0.5 || pts[1].Y != 1 {
		t.Fatalf("Points = %v", pts)
	}
}

func TestMeanStdDevMedian(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Fatalf("mean = %v, want 5", m)
	}
	if s := StdDev(xs); math.Abs(s-2) > 1e-12 {
		t.Fatalf("stddev = %v, want 2", s)
	}
	if m := Median([]float64{3, 1, 2}); m != 2 {
		t.Fatalf("median = %v, want 2", m)
	}
}

func TestNormQuantileRoundTrip(t *testing.T) {
	for _, q := range []float64{0.05, 0.2, 0.35, 0.5, 0.65, 0.8, 0.95} {
		z := NormQuantile(q)
		if got := NormCDF(z); math.Abs(got-q) > 1e-9 {
			t.Errorf("NormCDF(NormQuantile(%v)) = %v", q, got)
		}
	}
	if z := NormQuantile(0.5); math.Abs(z) > 1e-12 {
		t.Errorf("NormQuantile(0.5) = %v, want 0", z)
	}
}

// Property: the calibration identity used by the dataset package.
// If A ~ N(ma, s^2), B ~ N(mb, s^2) independent, then
// P(A > B) = Phi((ma-mb)/(s*sqrt(2))). Setting ma-mb from the probit of
// the target must yield the target empirically.
func TestCalibrationIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for _, target := range []float64{0.1, 0.25, 0.4, 0.55, 0.8} {
		s := 1.7
		diff := NormQuantile(target) * s * math.Sqrt2
		wins := 0
		const n = 200000
		for i := 0; i < n; i++ {
			a := rng.NormFloat64()*s + diff
			b := rng.NormFloat64() * s
			if a > b {
				wins++
			}
		}
		got := float64(wins) / n
		if math.Abs(got-target) > 0.01 {
			t.Errorf("target %v: empirical %v", target, got)
		}
	}
}

func TestHaversine(t *testing.T) {
	boston := GeoPoint{42.36, -71.06}
	nyc := GeoPoint{40.71, -74.01}
	d := HaversineKm(boston, nyc)
	if d < 290 || d > 320 {
		t.Fatalf("Boston-NYC = %v km, want ~306", d)
	}
	if d := HaversineKm(boston, boston); d != 0 {
		t.Fatalf("zero distance = %v", d)
	}
}

func TestHaversineSymmetric(t *testing.T) {
	f := func(a1, b1, a2, b2 uint16) bool {
		p := GeoPoint{Lat: float64(a1%180) - 90, Lon: float64(b1%360) - 180}
		q := GeoPoint{Lat: float64(a2%180) - 90, Lon: float64(b2%360) - 180}
		d1, d2 := HaversineKm(p, q), HaversineKm(q, p)
		return math.Abs(d1-d2) < 1e-9 && d1 >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestClusterByRadius(t *testing.T) {
	// Boston-area points plus one Portland point: expect 2 clusters.
	pts := []GeoPoint{
		{42.36, -71.06},  // Boston
		{42.37, -71.11},  // Cambridge
		{42.41, -71.00},  // nearby
		{45.52, -122.68}, // Portland, OR
	}
	cl := ClusterByRadius(pts, 100)
	if len(cl) != 2 {
		t.Fatalf("clusters = %d, want 2", len(cl))
	}
	if len(cl[0].Members) != 3 {
		t.Fatalf("largest cluster size = %d, want 3", len(cl[0].Members))
	}
}

func TestClusterByRadiusAllWithinRadius(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var pts []GeoPoint
	for i := 0; i < 200; i++ {
		pts = append(pts, GeoPoint{
			Lat: rng.Float64()*140 - 70,
			Lon: rng.Float64()*360 - 180,
		})
	}
	const r = 100
	clusters := ClusterByRadius(pts, r)
	total := 0
	for _, c := range clusters {
		total += len(c.Members)
		for _, m := range c.Members {
			// Members may drift slightly past r as the centroid moves;
			// the paper's property is "within 2r of each other", which a
			// 1.5r centroid bound guarantees comfortably.
			if d := HaversineKm(c.Centroid, pts[m]); d > 1.5*r {
				t.Fatalf("member %d is %.1f km from centroid", m, d)
			}
		}
	}
	if total != len(pts) {
		t.Fatalf("clustered %d points, want %d", total, len(pts))
	}
}

func TestClusterOrderedBySize(t *testing.T) {
	pts := []GeoPoint{
		{0, 0}, {50, 50}, {50.1, 50.1}, {50.2, 49.9},
	}
	cl := ClusterByRadius(pts, 100)
	for i := 1; i < len(cl); i++ {
		if len(cl[i].Members) > len(cl[i-1].Members) {
			t.Fatal("clusters not ordered by descending size")
		}
	}
}

// Property: quantiles are monotone in q and bounded by min/max.
func TestPropertyQuantileMonotone(t *testing.T) {
	f := func(raw []float64, q1, q2 float64) bool {
		var xs []float64
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		clamp := func(q float64) float64 {
			q = math.Abs(q)
			return q - math.Floor(q) // in [0,1)
		}
		a, b := clamp(q1), clamp(q2)
		if a > b {
			a, b = b, a
		}
		e := NewECDF(xs)
		qa, qb := e.Quantile(a), e.Quantile(b)
		return qa <= qb && qa >= e.Min() && qb <= e.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
