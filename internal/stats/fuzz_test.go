package stats

import (
	"encoding/binary"
	"math"
	"sort"
	"testing"
)

// FuzzECDFQuantile decodes the input into a float64 sample set and
// checks the quantile invariants the experiments rely on: clamping at
// the extremes, monotonicity in q, interpolated values staying inside
// [Min, Max], and insertion-order independence (NewECDF over sorted
// input versus incremental Add in arrival order).
func FuzzECDFQuantile(f *testing.F) {
	seed := func(xs ...float64) []byte {
		b := make([]byte, 8*len(xs))
		for i, x := range xs {
			binary.LittleEndian.PutUint64(b[8*i:], math.Float64bits(x))
		}
		return b
	}
	f.Add(seed(1))
	f.Add(seed(3, 1, 2))
	f.Add(seed(-5, -5, 0, 10.25, 1e9))
	f.Add(seed(0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8))
	f.Fuzz(func(t *testing.T, data []byte) {
		var samples []float64
		var qs []float64
		for len(data) >= 8 {
			u := binary.LittleEndian.Uint64(data)
			data = data[8:]
			// Each word doubles as a candidate quantile probe.
			qs = append(qs, float64(u%1001)/1000)
			if x := math.Float64frombits(u); !math.IsInf(x, 0) && !math.IsNaN(x) {
				samples = append(samples, x)
			}
		}
		if len(samples) == 0 {
			if !math.IsNaN(NewECDF(nil).Quantile(0.5)) {
				t.Fatalf("empty ECDF Quantile(0.5) != NaN")
			}
			return
		}

		e := NewECDF(samples)
		incr := &ECDF{}
		for _, x := range samples {
			incr.Add(x)
		}

		min, max := e.Min(), e.Max()
		if got := e.Quantile(0); got != min {
			t.Fatalf("Quantile(0) = %v, want Min %v", got, min)
		}
		if got := e.Quantile(1); got != max {
			t.Fatalf("Quantile(1) = %v, want Max %v", got, max)
		}
		if got := e.Quantile(-0.5); got != min {
			t.Fatalf("Quantile(-0.5) = %v, want clamp to Min %v", got, min)
		}
		if got := e.Quantile(1.5); got != max {
			t.Fatalf("Quantile(1.5) = %v, want clamp to Max %v", got, max)
		}

		qs = append(qs, 0, 0.25, 0.5, 0.75, 1)
		sort.Float64s(qs)
		prevV := math.Inf(-1)
		for _, q := range qs {
			v := e.Quantile(q)
			if v < min || v > max {
				t.Fatalf("Quantile(%v) = %v outside [%v, %v]", q, v, min, max)
			}
			if vi := incr.Quantile(q); vi != v {
				t.Fatalf("Quantile(%v): incremental Add gave %v, NewECDF gave %v", q, vi, v)
			}
			if v < prevV {
				t.Fatalf("Quantile not monotonic at q=%v: %v < %v", q, v, prevV)
			}
			prevV = v
		}
		if med := e.Median(); med != e.Quantile(0.5) {
			t.Fatalf("Median() = %v, Quantile(0.5) = %v", med, e.Quantile(0.5))
		}
	})
}
