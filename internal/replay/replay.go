// Package replay is the reproduction's Mahimahi (paper Sections 4-5):
// RecordShell captures an app's HTTP exchanges as request/response
// pairs; ReplayShell serves matched responses; MpShell emulates the
// WiFi and LTE links of a network condition so the same app traffic can
// be replayed under every transport configuration the paper compares
// (single-path TCP on either network, and the four MPTCP variants).
//
// The app response time metric matches the paper's: the time between
// the start of the first HTTP connection and the end of the last one.
package replay

import (
	"fmt"
	"time"

	"multinet/internal/apps"
	"multinet/internal/mptcp"
	"multinet/internal/netem"
	"multinet/internal/phy"
	"multinet/internal/simnet"
	"multinet/internal/tcp"
)

// Exchange is one stored request/response pair (RecordShell output).
type Exchange struct {
	FlowID        int
	RequestBytes  int
	ResponseBytes int
	Think         time.Duration
}

// Recording is the stored result of recording one app interaction.
type Recording struct {
	App   apps.App
	pairs map[string]Exchange // keyed by request key
}

// requestKey identifies a request the way ReplayShell matches them:
// by stable request attributes (here: flow ID and request size),
// ignoring time-sensitive header fields.
func requestKey(flowID int, reqBytes int) string {
	return fmt.Sprintf("f%d:%d", flowID, reqBytes)
}

// Record captures the app's exchanges into a replayable store.
func Record(app apps.App) *Recording {
	r := &Recording{App: app, pairs: make(map[string]Exchange)}
	for _, f := range app.Flows {
		r.pairs[requestKey(f.ID, f.RequestBytes)] = Exchange{
			FlowID:        f.ID,
			RequestBytes:  f.RequestBytes,
			ResponseBytes: f.ResponseBytes,
			Think:         f.Think,
		}
	}
	return r
}

// Lookup matches a request to its stored response, ReplayShell-style.
func (r *Recording) Lookup(flowID, reqBytes int) (Exchange, bool) {
	e, ok := r.pairs[requestKey(flowID, reqBytes)]
	return e, ok
}

// Pairs returns the number of stored exchanges.
func (r *Recording) Pairs() int { return len(r.pairs) }

// TransportKind selects single-path TCP or MPTCP for a replay.
type TransportKind int

// Transport kinds.
const (
	SinglePath TransportKind = iota
	Multipath
)

// TransportConfig is one replay transport configuration (the paper's
// Section 5 uses six of them over the WiFi+LTE pair).
type TransportConfig struct {
	// Name labels results ("WiFi-TCP", "MPTCP-Coupled-LTE", ...).
	Name string
	// Kind selects TCP or MPTCP.
	Kind TransportKind
	// Iface is the interface used by single-path TCP.
	Iface string
	// Primary is the MPTCP primary-subflow network (subflows open on
	// every interface the emulated host has).
	Primary string
	// CC is the MPTCP congestion coupling.
	CC mptcp.CongestionMode
	// Scheduler names the MPTCP data scheduler, applied at both ends
	// (empty: mptcp.SchedMinSRTT).
	Scheduler string
}

// PathName pairs an interface name with the display label used in
// configuration names ("wifi" → "WiFi").
type PathName struct {
	Iface, Label string
}

// WiFiLTEPaths is the paper's classic pair.
func WiFiLTEPaths() []PathName {
	return []PathName{{Iface: "wifi", Label: "WiFi"}, {Iface: "lte", Label: "LTE"}}
}

// ConfigsOption customises the family Configs generates.
type ConfigsOption func(*configsOptions)

type configsOptions struct {
	couplings  []mptcp.CongestionMode
	schedulers []string
}

// WithCouplings selects which congestion couplings the MPTCP block
// enumerates, in order. The default is Coupled then Decoupled — the
// paper's legend order.
func WithCouplings(modes ...mptcp.CongestionMode) ConfigsOption {
	return func(o *configsOptions) { o.couplings = modes }
}

// WithSchedulers switches the MPTCP block to the scheduler-comparison
// family: per named scheduler, in order, one decoupled-CC MPTCP
// configuration per primary ("MPTCP-<scheduler>-<Label>"). Decoupled
// CC isolates the scheduler effect from congestion coupling (the
// paper's Figs. 19/21 show decoupled is the stronger MPTCP variant).
func WithSchedulers(names ...string) ConfigsOption {
	return func(o *configsOptions) { o.schedulers = names }
}

// Configs generates the transport-configuration family for an
// arbitrary path set, in the paper's legend order: single-path TCP per
// path first, then the MPTCP block. Without options the MPTCP block
// enumerates congestion couplings (coupled then decoupled MPTCP per
// primary — N + 2N configurations for N paths, the paper's Fig. 18/20
// family); WithSchedulers replaces it with the scheduler comparison
// and WithCouplings narrows or reorders the couplings.
func Configs(paths []PathName, opts ...ConfigsOption) []TransportConfig {
	o := configsOptions{couplings: []mptcp.CongestionMode{mptcp.Coupled, mptcp.Decoupled}}
	for _, opt := range opts {
		opt(&o)
	}
	out := make([]TransportConfig, 0, len(paths)*(1+len(o.couplings)+len(o.schedulers)))
	for _, p := range paths {
		out = append(out, TransportConfig{Name: p.Label + "-TCP", Kind: SinglePath, Iface: p.Iface})
	}
	if o.schedulers != nil {
		for _, s := range o.schedulers {
			for _, p := range paths {
				out = append(out, TransportConfig{
					Name: "MPTCP-" + s + "-" + p.Label, Kind: Multipath,
					Primary: p.Iface, CC: mptcp.Decoupled, Scheduler: s,
				})
			}
		}
		return out
	}
	for _, cc := range o.couplings {
		label := "Coupled"
		if cc == mptcp.Decoupled {
			label = "Decoupled"
		}
		for _, p := range paths {
			out = append(out, TransportConfig{
				Name: "MPTCP-" + label + "-" + p.Label, Kind: Multipath, Primary: p.Iface, CC: cc,
			})
		}
	}
	return out
}

// ConfigsFor generates the coupling family for a path set.
//
// Deprecated: use Configs(paths).
func ConfigsFor(paths []PathName) []TransportConfig {
	return Configs(paths)
}

// StandardConfigs returns the paper's six replay configurations in its
// Fig. 18/20 legend order.
func StandardConfigs() []TransportConfig {
	return Configs(WiFiLTEPaths())
}

// SchedulerConfigsFor generates the scheduler-comparison family.
//
// Deprecated: use Configs(paths, WithSchedulers(schedulers...)).
func SchedulerConfigsFor(paths []PathName, schedulers []string) []TransportConfig {
	return Configs(paths, WithSchedulers(schedulers...))
}

// FlowStat records one replayed connection's timing.
type FlowStat struct {
	ID    int
	Start time.Duration
	End   time.Duration
	Bytes int
}

// Duration returns the flow's active time.
func (f FlowStat) Duration() time.Duration { return f.End - f.Start }

// RateKbps returns the flow's average rate in kbit/s (the unit of the
// paper's Fig. 17 legend).
func (f FlowStat) RateKbps() float64 {
	d := f.Duration().Seconds()
	if d <= 0 {
		return 0
	}
	return float64(f.Bytes) * 8 / d / 1e3
}

// Result is the outcome of one replay.
type Result struct {
	Config       string
	Condition    string
	ResponseTime time.Duration
	Completed    bool
	Flows        []FlowStat
}

// Run replays a recording under a network condition with the given
// transport configuration and returns the app response time.
func Run(seed int64, cond phy.Condition, rec *Recording, tc TransportConfig) Result {
	sim := simnet.New(seed)
	host := phy.BuildHost(sim, cond)
	e := &engine{
		sim:   sim,
		host:  host,
		rec:   rec,
		tc:    tc,
		state: make(map[int]*flowState),
	}
	e.clientStack = tcp.NewStack(sim, tcp.ClientSide)
	e.serverStack = tcp.NewStack(sim, tcp.ServerSide)
	for _, ifc := range host.Ifaces() {
		e.clientStack.Bind(ifc)
		e.serverStack.Bind(ifc)
	}
	if tc.Kind == Multipath {
		e.mpServer = mptcp.NewServer(sim, e.serverStack, mptcp.ServerConfig{CC: tc.CC, Scheduler: tc.Scheduler})
		e.mpServer.OnConn = e.acceptMPTCP
	} else {
		e.serverStack.Accept = e.acceptTCP
	}
	for _, f := range rec.App.Flows {
		e.state[f.ID] = &flowState{spec: f}
	}
	// Start root flows; dependents start as their parents complete.
	for _, f := range rec.App.Flows {
		if f.DependsOn < 0 {
			e.scheduleStart(f.ID, f.Start)
		}
	}
	// Safety horizon: no replayed interaction should take this long.
	sim.RunUntil(10 * time.Minute)

	res := Result{Config: tc.Name, Condition: cond.Name, Completed: true}
	var first, last time.Duration
	firstSet := false
	for _, f := range rec.App.Flows {
		st := e.state[f.ID]
		if !st.done {
			res.Completed = false
			continue
		}
		if !firstSet || st.started < first {
			first = st.started
			firstSet = true
		}
		if st.ended > last {
			last = st.ended
		}
		res.Flows = append(res.Flows, FlowStat{
			ID: f.ID, Start: st.started, End: st.ended,
			Bytes: f.RequestBytes + f.ResponseBytes,
		})
	}
	if res.Completed {
		res.ResponseTime = last - first
	}
	return res
}

type flowState struct {
	spec    apps.Flow
	started time.Duration
	ended   time.Duration
	running bool
	done    bool
}

type engine struct {
	sim         *simnet.Sim
	host        *netem.Host
	rec         *Recording
	tc          TransportConfig
	clientStack *tcp.Stack
	serverStack *tcp.Stack
	mpServer    *mptcp.Server
	state       map[int]*flowState
}

func (e *engine) scheduleStart(flowID int, delay time.Duration) {
	e.sim.After(delay, func() { e.startFlow(flowID) })
}

func (e *engine) startFlow(flowID int) {
	st := e.state[flowID]
	if st.running || st.done {
		return
	}
	st.running = true
	st.started = e.sim.Now()
	if e.tc.Kind == Multipath {
		e.startMPTCPFlow(st)
	} else {
		e.startTCPFlow(st)
	}
}

// flowConnID names a flow's connection.
func flowConnID(id int) string { return fmt.Sprintf("app-f%d", id) }

func (e *engine) startTCPFlow(st *flowState) {
	iface := e.host.Iface(e.tc.Iface)
	if iface == nil {
		panic("replay: unknown iface " + e.tc.Iface)
	}
	spec := st.spec
	e.clientStack.Dial(iface, flowConnID(spec.ID), tcp.Config{Callbacks: tcp.Callbacks{
		OnEstablished: func(c *tcp.Conn) {
			c.Send(spec.RequestBytes)
		},
		OnData: func(c *tcp.Conn, total int64) {
			if total >= int64(spec.ResponseBytes) {
				e.completeFlow(spec.ID)
			}
		},
	}})
}

func (e *engine) acceptTCP(c *tcp.Conn) {
	id, ok := parseFlowConnID(c.Flow())
	if !ok {
		return
	}
	spec := e.state[id].spec
	c.SetCallbacks(tcp.Callbacks{
		OnData: func(c *tcp.Conn, total int64) {
			if total >= int64(spec.RequestBytes) {
				ex, ok := e.rec.Lookup(spec.ID, spec.RequestBytes)
				if !ok {
					return // unmatched request: ReplayShell would 404
				}
				e.sim.After(ex.Think, func() {
					c.Send(ex.ResponseBytes)
					c.Close()
				})
			}
		},
	})
}

func (e *engine) startMPTCPFlow(st *flowState) {
	spec := st.spec
	mptcp.Dial(e.sim, e.clientStack, e.host, mptcp.Config{
		ConnID:    flowConnID(spec.ID),
		Primary:   e.tc.Primary,
		CC:        e.tc.CC,
		Scheduler: e.tc.Scheduler,
	}, mptcp.Callbacks{
		OnEstablished: func(c *mptcp.Conn) { c.Send(spec.RequestBytes) },
		OnData: func(c *mptcp.Conn, total int64) {
			if total >= int64(spec.ResponseBytes) {
				e.completeFlow(spec.ID)
			}
		},
	})
}

func (e *engine) acceptMPTCP(c *mptcp.Conn) {
	id, ok := parseFlowConnID(c.ConnID())
	if !ok {
		return
	}
	spec := e.state[id].spec
	c.SetCallbacks(mptcp.Callbacks{
		OnData: func(c *mptcp.Conn, total int64) {
			if total >= int64(spec.RequestBytes) {
				ex, ok := e.rec.Lookup(spec.ID, spec.RequestBytes)
				if !ok {
					return
				}
				e.sim.After(ex.Think, func() {
					c.Send(ex.ResponseBytes)
					c.Close()
				})
			}
		},
	})
}

func (e *engine) completeFlow(id int) {
	st := e.state[id]
	if st.done {
		return
	}
	st.done = true
	st.ended = e.sim.Now()
	// Release dependents.
	for _, f := range e.rec.App.Flows {
		if f.DependsOn == id {
			e.scheduleStart(f.ID, f.Start)
		}
	}
}

func parseFlowConnID(s string) (int, bool) {
	var id int
	if _, err := fmt.Sscanf(s, "app-f%d", &id); err != nil {
		return 0, false
	}
	return id, true
}
