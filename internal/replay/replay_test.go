package replay

import (
	"testing"
	"time"

	"multinet/internal/apps"
	"multinet/internal/mptcp"
	"multinet/internal/phy"
)

// fastCond is a clean, fast symmetric condition for functional tests.
var fastCond = phy.Condition{
	Name: "fast",
	WiFi: phy.PathProfile{DownMbps: 20, UpMbps: 8, RTTms: 30},
	LTE:  phy.PathProfile{DownMbps: 15, UpMbps: 6, RTTms: 60},
}

// slowWiFiCond has much better LTE than WiFi.
var slowWiFiCond = phy.Condition{
	Name: "slowwifi",
	WiFi: phy.PathProfile{DownMbps: 1.2, UpMbps: 0.6, RTTms: 110},
	LTE:  phy.PathProfile{DownMbps: 10, UpMbps: 4, RTTms: 65},
}

func TestRecordingStoresAllPairs(t *testing.T) {
	rec := Record(apps.CNNLaunch)
	if rec.Pairs() != len(apps.CNNLaunch.Flows) {
		t.Fatalf("stored %d pairs, want %d", rec.Pairs(), len(apps.CNNLaunch.Flows))
	}
	f := apps.CNNLaunch.Flows[0]
	ex, ok := rec.Lookup(f.ID, f.RequestBytes)
	if !ok || ex.ResponseBytes != f.ResponseBytes {
		t.Fatal("lookup of recorded request failed")
	}
	if _, ok := rec.Lookup(999, 1); ok {
		t.Fatal("lookup of unknown request should fail")
	}
}

func TestReplayTCPCompletes(t *testing.T) {
	rec := Record(apps.CNNLaunch)
	res := Run(1, fastCond, rec, TransportConfig{Name: "WiFi-TCP", Kind: SinglePath, Iface: "wifi"})
	if !res.Completed {
		t.Fatal("replay did not complete")
	}
	if res.ResponseTime <= 0 {
		t.Fatal("bad response time")
	}
	if len(res.Flows) != len(apps.CNNLaunch.Flows) {
		t.Fatalf("flow stats = %d, want %d", len(res.Flows), len(apps.CNNLaunch.Flows))
	}
}

func TestReplayMPTCPCompletes(t *testing.T) {
	rec := Record(apps.CNNLaunch)
	res := Run(1, fastCond, rec, TransportConfig{
		Name: "MPTCP-Decoupled-WiFi", Kind: Multipath, Primary: "wifi",
	})
	if !res.Completed {
		t.Fatal("MPTCP replay did not complete")
	}
}

func TestAllStandardConfigsComplete(t *testing.T) {
	rec := Record(apps.DropboxClick)
	for _, tc := range StandardConfigs() {
		res := Run(2, fastCond, rec, tc)
		if !res.Completed {
			t.Fatalf("%s: replay incomplete", tc.Name)
		}
	}
}

func TestSinglePathNetworkChoiceMatters(t *testing.T) {
	// On a condition where LTE is much faster, LTE-TCP must beat
	// WiFi-TCP substantially (paper Fig. 18, conditions 3/4).
	rec := Record(apps.CNNLaunch)
	wifi := Run(3, slowWiFiCond, rec, TransportConfig{Name: "WiFi-TCP", Kind: SinglePath, Iface: "wifi"})
	lte := Run(3, slowWiFiCond, rec, TransportConfig{Name: "LTE-TCP", Kind: SinglePath, Iface: "lte"})
	if !wifi.Completed || !lte.Completed {
		t.Fatal("replays incomplete")
	}
	if float64(wifi.ResponseTime) < 1.5*float64(lte.ResponseTime) {
		t.Fatalf("WiFi-TCP %v should be >> LTE-TCP %v here", wifi.ResponseTime, lte.ResponseTime)
	}
}

func TestLongFlowAppBenefitsFromMPTCP(t *testing.T) {
	// Paper Section 5.2: with comparable paths, the Dropbox (long-flow)
	// replay over MPTCP beats the best single path.
	cond := phy.Condition{
		Name: "comparable",
		WiFi: phy.PathProfile{DownMbps: 6, UpMbps: 2.5, RTTms: 45},
		LTE:  phy.PathProfile{DownMbps: 5, UpMbps: 2, RTTms: 70},
	}
	rec := Record(apps.DropboxClick)
	best := time.Duration(1<<62 - 1)
	for _, name := range []string{"wifi", "lte"} {
		r := Run(4, cond, rec, TransportConfig{Name: name, Kind: SinglePath, Iface: name})
		if !r.Completed {
			t.Fatal("incomplete")
		}
		if r.ResponseTime < best {
			best = r.ResponseTime
		}
	}
	mp := Run(4, cond, rec, TransportConfig{
		Name: "MPTCP-Decoupled-WiFi", Kind: Multipath, Primary: "wifi",
	})
	if !mp.Completed {
		t.Fatal("MPTCP incomplete")
	}
	if mp.ResponseTime >= best {
		t.Fatalf("MPTCP %v not better than best single path %v on the long-flow app", mp.ResponseTime, best)
	}
}

func TestShortFlowAppGainsLittleFromMPTCP(t *testing.T) {
	// Paper Section 5.1: for the short-flow app, MPTCP on the right
	// primary is no better than simply using the right network.
	rec := Record(apps.CNNLaunch)
	lteTCP := Run(5, slowWiFiCond, rec, TransportConfig{Name: "LTE-TCP", Kind: SinglePath, Iface: "lte"})
	mp := Run(5, slowWiFiCond, rec, TransportConfig{
		Name: "MPTCP-Decoupled-LTE", Kind: Multipath, Primary: "lte",
	})
	if !lteTCP.Completed || !mp.Completed {
		t.Fatal("incomplete")
	}
	// MPTCP should not be more than ~15% better than the right single
	// path (it may well be slightly worse).
	if float64(mp.ResponseTime) < 0.85*float64(lteTCP.ResponseTime) {
		t.Fatalf("MPTCP %v unexpectedly much faster than LTE-TCP %v on short flows",
			mp.ResponseTime, lteTCP.ResponseTime)
	}
}

func TestDependentFlowsStartAfterParents(t *testing.T) {
	rec := Record(apps.CNNLaunch)
	res := Run(6, fastCond, rec, TransportConfig{Name: "WiFi-TCP", Kind: SinglePath, Iface: "wifi"})
	byID := map[int]FlowStat{}
	for _, f := range res.Flows {
		byID[f.ID] = f
	}
	for _, spec := range apps.CNNLaunch.Flows {
		if spec.DependsOn < 0 {
			continue
		}
		parent := byID[spec.DependsOn]
		child := byID[spec.ID]
		if child.Start < parent.End {
			t.Fatalf("flow %d started at %v before parent %d ended at %v",
				spec.ID, child.Start, spec.DependsOn, parent.End)
		}
	}
}

func TestReplayDeterministic(t *testing.T) {
	rec := Record(apps.IMDBClick)
	tc := TransportConfig{Name: "MPTCP-Coupled-WiFi", Kind: Multipath, Primary: "wifi", CC: 1}
	a := Run(7, fastCond, rec, tc)
	b := Run(7, fastCond, rec, tc)
	if a.ResponseTime != b.ResponseTime {
		t.Fatalf("non-deterministic replay: %v vs %v", a.ResponseTime, b.ResponseTime)
	}
}

func TestFlowStatRate(t *testing.T) {
	f := FlowStat{Start: 0, End: time.Second, Bytes: 125_000}
	if got := f.RateKbps(); got < 999 || got > 1001 {
		t.Fatalf("rate = %.1f kbit/s, want 1000", got)
	}
}

func TestSchedulerConfigsForShape(t *testing.T) {
	scheds := []string{"minsrtt", "holaware"}
	tcs := SchedulerConfigsFor(WiFiLTEPaths(), scheds)
	if want := 2 + len(scheds)*2; len(tcs) != want {
		t.Fatalf("configs = %d, want %d (N TCP + S*N MPTCP)", len(tcs), want)
	}
	if tcs[0].Name != "WiFi-TCP" || tcs[0].Kind != SinglePath ||
		tcs[1].Name != "LTE-TCP" || tcs[1].Kind != SinglePath {
		t.Fatalf("leading TCP configs wrong: %+v %+v", tcs[0], tcs[1])
	}
	want := []struct{ name, primary, sched string }{
		{"MPTCP-minsrtt-WiFi", "wifi", "minsrtt"},
		{"MPTCP-minsrtt-LTE", "lte", "minsrtt"},
		{"MPTCP-holaware-WiFi", "wifi", "holaware"},
		{"MPTCP-holaware-LTE", "lte", "holaware"},
	}
	for i, w := range want {
		tc := tcs[2+i]
		if tc.Name != w.name || tc.Primary != w.primary || tc.Scheduler != w.sched ||
			tc.Kind != Multipath || tc.CC != mptcp.Decoupled {
			t.Errorf("config %d = %+v, want %+v (decoupled CC)", 2+i, tc, w)
		}
	}
}

func TestSchedulerConfigsReplayComplete(t *testing.T) {
	// Every scheduler variant must drive a full replay to completion.
	rec := Record(apps.DropboxClick)
	for _, tc := range SchedulerConfigsFor(WiFiLTEPaths(), mptcp.SchedulerNames()) {
		if tc.Kind != Multipath {
			continue
		}
		if res := Run(3, fastCond, rec, tc); !res.Completed {
			t.Fatalf("%s: replay incomplete", tc.Name)
		}
	}
}

// TestConfigsMatchesDeprecatedWrappers pins the consolidation: the
// functional-options Configs must generate byte-for-byte the families
// the deprecated ConfigsFor/SchedulerConfigsFor names produced.
func TestConfigsMatchesDeprecatedWrappers(t *testing.T) {
	paths := append(WiFiLTEPaths(), PathName{Iface: "eth", Label: "Eth"})
	a := Configs(paths)
	b := ConfigsFor(paths)
	if len(a) != len(b) || len(a) != 9 {
		t.Fatalf("coupling family sizes: %d vs %d, want 9", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("config %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	scheds := mptcp.SchedulerNames()
	c := Configs(paths, WithSchedulers(scheds...))
	d := SchedulerConfigsFor(paths, scheds)
	if len(c) != len(d) || len(c) != len(paths)*(1+len(scheds)) {
		t.Fatalf("scheduler family sizes: %d vs %d", len(c), len(d))
	}
	for i := range c {
		if c[i] != d[i] {
			t.Fatalf("config %d: %+v vs %+v", i, c[i], d[i])
		}
	}
}

func TestConfigsWithCouplings(t *testing.T) {
	tcs := Configs(WiFiLTEPaths(), WithCouplings(mptcp.Decoupled))
	if len(tcs) != 4 {
		t.Fatalf("configs = %d, want 2 TCP + 2 MPTCP", len(tcs))
	}
	if tcs[2].Name != "MPTCP-Decoupled-WiFi" || tcs[2].CC != mptcp.Decoupled ||
		tcs[3].Name != "MPTCP-Decoupled-LTE" {
		t.Fatalf("coupling block = %+v %+v", tcs[2], tcs[3])
	}
}
