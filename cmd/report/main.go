// Command report runs every experiment in the reproduction — each
// table and figure of the paper plus the DESIGN.md ablations — and
// prints their outputs in paper order. Its output is the source for
// EXPERIMENTS.md.
//
// The experiment list comes from the engine registry (every harness in
// internal/experiments registers itself), so this command needs no
// hand-maintained table and automatically picks up new experiments.
//
// Usage:
//
//	report [-seed N] [-quick] [-par N] [-only name[,name...]] [-json] [-list] [-fluid]
//
// -quick runs the reduced test-sized sweeps (useful to smoke-test the
// pipeline; the recorded numbers in EXPERIMENTS.md use the full runs).
// -par sets the sweep worker-pool size (default GOMAXPROCS); results
// are bit-identical at any worker count. -only selects experiments by
// registry name (see -list). -json emits machine-readable results on
// stdout. Per-experiment timing always streams to stderr.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"multinet/internal/core"
	"multinet/internal/experiments" // importing registers every harness
	"multinet/internal/experiments/engine"
)

// scenarioBanner returns a printer that emits a one-time section
// header before the first scenario experiment (the ones that go
// beyond the paper's WiFi+LTE pair; see internal/experiments
// scenarios.go).
func scenarioBanner() func(e engine.Experiment, print func(string)) {
	done := false
	return func(e engine.Experiment, print func(string)) {
		if done || e.Meta.Section != "scenario" {
			return
		}
		done = true
		print("-------- scenario experiments (N-path conditions beyond the paper) --------")
	}
}

type jsonResult struct {
	Name    string  `json:"name"`
	Title   string  `json:"title"`
	Section string  `json:"section"`
	Seconds float64 `json:"seconds"`
	Output  string  `json:"output"`
}

func main() {
	seed := flag.Int64("seed", engine.DefaultSeed, "RNG seed")
	quick := flag.Bool("quick", false, "reduced sweeps")
	par := flag.Int("par", 0, "sweep worker-pool size (0 = GOMAXPROCS)")
	only := flag.String("only", "", "comma-separated experiment names to run (default: all)")
	asJSON := flag.Bool("json", false, "emit results as JSON on stdout")
	list := flag.Bool("list", false, "list registered experiments and exit")
	fluid := flag.Bool("fluid", false,
		"hybrid fluid/packet execution: advance steady TCP flows analytically")
	flag.Parse()

	if *fluid {
		core.SetFluidDefault(true)
	}

	if *list {
		banner := scenarioBanner()
		for _, e := range engine.All() {
			banner(e, func(s string) { fmt.Println(s) })
			fmt.Printf("%-20s %-22s section %s\n", e.Meta.Name, e.Meta.Title, e.Meta.Section)
		}
		return
	}

	o := engine.Options{Seed: *seed, Workers: *par}
	if *quick {
		o = experiments.Quick()
		o.Seed = *seed
		o.Workers = *par
	}

	todo, err := engine.Select(*only)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	var results []jsonResult
	total := time.Now()
	banner := scenarioBanner()
	for _, e := range todo {
		if !*asJSON {
			banner(e, func(s string) { fmt.Println(s) })
		}
		start := time.Now()
		out := e.Run(o).String()
		elapsed := time.Since(start)
		fmt.Fprintf(os.Stderr, "%-20s ran in %v\n", e.Meta.Name, elapsed.Round(time.Millisecond))
		if *asJSON {
			results = append(results, jsonResult{
				Name:    e.Meta.Name,
				Title:   e.Meta.Title,
				Section: e.Meta.Section,
				Seconds: elapsed.Seconds(),
				Output:  out,
			})
			continue
		}
		fmt.Printf("==================== %s (ran in %v) ====================\n%s\n",
			e.Meta.Title, elapsed.Round(time.Millisecond), out)
	}
	fmt.Fprintf(os.Stderr, "report complete in %v (%d experiments, %d workers)\n",
		time.Since(total).Round(time.Millisecond), len(todo), o.WorkerCount())
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			fmt.Fprintln(os.Stderr, "encoding results:", err)
			os.Exit(1)
		}
	}
}
