// Command report runs every experiment in the reproduction — each
// table and figure of the paper plus the DESIGN.md ablations — and
// prints their outputs in paper order. Its output is the source for
// EXPERIMENTS.md.
//
// Usage:
//
//	report [-seed N] [-quick]
//
// -quick runs the reduced test-sized sweeps (useful to smoke-test the
// pipeline; the recorded numbers in EXPERIMENTS.md use the full runs).
package main

import (
	"flag"
	"fmt"
	"time"

	"multinet/internal/experiments"
)

func main() {
	seed := flag.Int64("seed", experiments.DefaultSeed, "RNG seed")
	quick := flag.Bool("quick", false, "reduced sweeps")
	flag.Parse()

	o := experiments.Options{Seed: *seed}
	if *quick {
		o = experiments.Quick()
		o.Seed = *seed
	}

	type entry struct {
		name string
		run  func() fmt.Stringer
	}
	entries := []entry{
		{"Table 1", func() fmt.Stringer { return experiments.Table1(o) }},
		{"Figure 3", func() fmt.Stringer { return experiments.Figure3(o) }},
		{"Figure 4", func() fmt.Stringer { return experiments.Figure4(o) }},
		{"Table 2", func() fmt.Stringer { return experiments.Table2(o) }},
		{"Figure 6", func() fmt.Stringer { return experiments.Figure6(o) }},
		{"Figure 7", func() fmt.Stringer { return experiments.Figure7(o) }},
		{"Figure 8", func() fmt.Stringer { return experiments.Figure8(o) }},
		{"Figure 9", func() fmt.Stringer { return experiments.Figure9(o) }},
		{"Figure 10", func() fmt.Stringer { return experiments.Figure10(o) }},
		{"Figure 11", func() fmt.Stringer { return experiments.Figure11(o) }},
		{"Figure 12", func() fmt.Stringer { return experiments.Figure12(o) }},
		{"Figures 13/14", func() fmt.Stringer { return experiments.Coupling(o) }},
		{"Figure 15", func() fmt.Stringer { return experiments.Figure15(o) }},
		{"Figure 16", func() fmt.Stringer { return experiments.Figure16(o) }},
		{"Section 3.6.2 energy", func() fmt.Stringer { return experiments.EnergyBackup(o) }},
		{"Figure 17", func() fmt.Stringer { return experiments.Figure17(o) }},
		{"Figure 18", func() fmt.Stringer { return experiments.Figure18(o) }},
		{"Figure 19", func() fmt.Stringer { return experiments.Figure19(o) }},
		{"Figure 20", func() fmt.Stringer { return experiments.Figure20(o) }},
		{"Figure 21", func() fmt.Stringer { return experiments.Figure21(o) }},
		{"Ablation: late join", func() fmt.Stringer { return experiments.AblationJoinDelay(o) }},
		{"Ablation: scheduler", func() fmt.Stringer { return experiments.AblationScheduler(o) }},
		{"Ablation: tail time", func() fmt.Stringer { return experiments.AblationTailTime(o) }},
		{"Ablation: selector", func() fmt.Stringer { return experiments.AblationSelector(o) }},
	}

	total := time.Now()
	for _, e := range entries {
		start := time.Now()
		out := e.run()
		fmt.Printf("==================== %s (ran in %v) ====================\n%s\n",
			e.name, time.Since(start).Round(time.Millisecond), out)
	}
	fmt.Printf("report complete in %v\n", time.Since(total).Round(time.Millisecond))
}
