// Command tracegen exports the synthetic radio models as Mahimahi
// packet-delivery trace files, so the reproduction's link conditions
// can be used with a real Mahimahi installation (mm-link), and prints
// the achieved mean rate.
//
// Usage:
//
//	tracegen -location 16 -iface wifi -secs 60 > wifi16.trace
//	tracegen -mbps 8 -variability 0.4 -secs 30 > custom.trace
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"multinet/internal/mahitrace"
	"multinet/internal/phy"
	"multinet/internal/simnet"
)

func main() {
	seed := flag.Int64("seed", 2014, "RNG seed")
	location := flag.Int("location", 0, "paper Table 2 location ID (1-20); 0 = use -mbps")
	iface := flag.String("iface", "wifi", "which radio of the location: wifi or lte")
	mbps := flag.Float64("mbps", 8, "mean downlink rate when no location is given")
	variability := flag.Float64("variability", 0.3, "log-rate stddev when no location is given")
	secs := flag.Int("secs", 60, "trace duration in seconds")
	flag.Parse()

	var meanMbps, varb float64
	switch {
	case *location > 0:
		loc := phy.LocationByID(*location)
		p := loc.WiFi
		if *iface == "lte" {
			p = loc.LTE
		} else if *iface != "wifi" {
			fmt.Fprintln(os.Stderr, "tracegen: -iface must be wifi or lte")
			os.Exit(2)
		}
		meanMbps, varb = p.DownMbps, p.Variability
	default:
		meanMbps, varb = *mbps, *variability
	}

	sim := simnet.New(*seed)
	src := phy.NewARRateSource(sim, "tracegen", meanMbps, varb)
	tr := mahitrace.FromSource(src, time.Duration(*secs)*time.Second)
	if err := mahitrace.Write(os.Stdout, tr); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "tracegen: %d opportunities over %ds, mean %.2f Mbit/s\n",
		len(tr.Opportunities), *secs, tr.MeanMbps())
}
