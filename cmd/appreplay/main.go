// Command appreplay reproduces the paper's Sections 4-5: it records
// the modelled mobile-app traffic patterns (Figure 17) and replays the
// short-flow-dominated (CNN launch) and long-flow-dominated (Dropbox
// click) workloads over emulated WiFi+LTE conditions with all six
// transport configurations (Figures 18-21).
//
// Usage:
//
//	appreplay [-seed N] [-locations N] [-only fig]
//
// -only selects: fig17, fig18, fig19, fig20, fig21.
package main

import (
	"flag"
	"fmt"
	"os"

	"multinet/internal/experiments"
)

func main() {
	seed := flag.Int64("seed", experiments.DefaultSeed, "RNG seed")
	locations := flag.Int("locations", 0, "restrict oracle sweeps to first N conditions (0 = all 20)")
	only := flag.String("only", "", "run a single experiment")
	flag.Parse()

	o := experiments.Options{Seed: *seed, Locations: *locations}
	run := map[string]func() fmt.Stringer{
		"fig17": func() fmt.Stringer { return experiments.Figure17(o) },
		"fig18": func() fmt.Stringer { return experiments.Figure18(o) },
		"fig19": func() fmt.Stringer { return experiments.Figure19(o) },
		"fig20": func() fmt.Stringer { return experiments.Figure20(o) },
		"fig21": func() fmt.Stringer { return experiments.Figure21(o) },
	}
	order := []string{"fig17", "fig18", "fig19", "fig20", "fig21"}

	if *only != "" {
		f, ok := run[*only]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; choose one of %v\n", *only, order)
			os.Exit(2)
		}
		fmt.Println(f())
		return
	}
	for _, name := range order {
		fmt.Println(run[name]())
	}
}
