// Serve runs the online path-selection service: clients stream probe
// telemetry in, and ask "which path(s), MPTCP or not, which scheduler?"
// for each flow they are about to start — the operational form of the
// paper's adaptive-selection conclusion.
//
//	serve -addr :8080 -shards 64 -half-life 30s
//
//	curl -s localhost:8080/v1/telemetry -d '{"site":"cdn","path":"wifi","mbps":12.5,"rtt_ms":25}'
//	curl -s localhost:8080/v1/decide    -d '{"site":"cdn","flow_bytes":1048576}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"multinet/internal/selector"
	"multinet/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	shards := flag.Int("shards", 0, "estimate store shards (rounded up to a power of two; 0 = default)")
	halfLife := flag.Duration("half-life", 0, "estimate decay half-life (0 = default 30s)")
	gain := flag.Float64("gain", 0, "telemetry EWMA gain in (0,1] (0 = default 0.3)")
	staleAfter := flag.Duration("stale-after", 0, "silence after which decisions degrade to single-path with the stale-telemetry rationale (0 = default 8x half-life)")
	shortFlow := flag.Int("short-flow-bytes", 0, "flows at or below this stay single-path (0 = default)")
	maxDisparity := flag.Float64("max-disparity", 0, "throughput ratio beyond which MPTCP is skipped (0 = default)")
	holAware := flag.Float64("holaware-disparity", 0, "disparity at which MPTCP escalates to the HoL-aware scheduler (0 = never)")
	coupled := flag.Bool("coupled", false, "prefer coupled congestion control for MPTCP flows")
	drainGrace := flag.Duration("drain-grace", 2*time.Second,
		"time to advertise draining health before closing listeners on SIGTERM")
	shutdownTimeout := flag.Duration("shutdown-timeout", 10*time.Second,
		"maximum wait for in-flight requests after listeners close")
	flag.Parse()

	store := selector.NewStore(selector.StoreConfig{
		Shards:     *shards,
		HalfLife:   *halfLife,
		Gain:       *gain,
		StaleAfter: *staleAfter,
		Policy: selector.Selector{
			ShortFlowBytes:    *shortFlow,
			MaxDisparity:      *maxDisparity,
			HoLAwareDisparity: *holAware,
			PreferCoupled:     *coupled,
		},
	})
	srv := serve.New(serve.Config{Store: store})

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		// Request bodies are tiny JSON blobs: a slow-loris client must
		// not pin a connection through a deploy's drain window.
		ReadTimeout:  10 * time.Second,
		WriteTimeout: 10 * time.Second,
		IdleTimeout:  60 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("serve: listening on %s (%d shards)", *addr, store.ShardCount())

	select {
	case err := <-errc:
		log.Fatalf("serve: %v", err)
	case <-ctx.Done():
	}

	// Graceful degradation on SIGTERM: first advertise draining on
	// /v1/healthz so load balancers stop sending new work, keep serving
	// through the grace window, then close listeners and wait for
	// in-flight requests.
	srv.SetDraining(true)
	log.Printf("serve: draining (grace %v)", *drainGrace)
	time.Sleep(*drainGrace)

	shutdownCtx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("serve: shutdown: %v", err)
	}
	st := srv.StatsSnapshot()
	fmt.Printf("serve: handled %d decides, %d telemetry samples across %d sites\n",
		st.Decides, st.Telemetry, st.Sites)
}
