// Command bench runs the repository's benchmark suite outside `go
// test` and records the results as a machine-readable report — the
// repo's bench trajectory artifact.
//
// Three benchmark families run:
//
//   - scheduler micro-benchmarks (sched/*): the simnet timing-wheel
//     kernel alone — schedule/fire churn, cancel-heavy timer churn, and
//     scheduling against a deep pending set;
//   - kernel micro-benchmarks: TCP bulk transfers and MPTCP two-subflow
//     transfers over the simulated WiFi+LTE pair, the per-packet hot
//     path every experiment hammers;
//   - service benchmarks (serve/*): the online path-selection service's
//     decide and telemetry hot cores over the sharded estimate store,
//     allocs/op pinned at zero;
//   - registry experiments: every harness in the engine registry at the
//     quick (test-sized) sweep options, the same set cmd/report runs.
//
// -serve-load switches the binary into a closed-loop load generator
// over the service instead (queries/s plus an allocs/query assertion);
// see runServeLoad.
//
// Usage:
//
//	bench [-out BENCH_report.json] [-baseline BENCH_baseline.json]
//	      [-check] [-rebase] [-maxslow 1.15] [-count 5] [-benchtime 1s]
//	      [-only name[,name...]] [-skip-experiments]
//	      [-cpuprofile cpu.out] [-memprofile mem.out] [-diff compare.txt]
//
// -out writes the report (ns/op, B/op, allocs/op per benchmark).
// -baseline names the committed reference report. With -check, the run
// fails (exit 1) if any benchmark regresses against the baseline:
// allocs/op may not rise more than 0.25% above the baseline (exact for
// the small kernel benchmarks; the tolerance absorbs the GC-timing
// jitter on sync.Pool refills in the experiment sweeps), and
// ns/op may not exceed the baseline by more than the -maxslow factor.
// The ns/op gate arms only when the baseline was recorded on the same
// goos/goarch/CPU-count class as this run — a wall-clock floor from
// foreign hardware would only produce false failures. With -rebase,
// the baseline file is rewritten from this run's results (commit it to
// accept a new performance floor). -only selects benchmarks by name.
//
// Each benchmark runs -count times; the reported ns/op is the minimum
// (the robust noise-resistant estimator) and allocs/op the maximum, so
// the -check gate compares the machine's best speed and worst
// allocation behaviour.
//
// -cpuprofile / -memprofile write pprof profiles covering the selected
// benchmarks, for hunting the next hot spot without rebuilding the
// harness by hand. -diff writes a per-benchmark baseline-vs-run
// comparison table (the nightly workflow uploads it as an artifact).
//
// CI runs `bench -check` on every push and the nightly workflow uploads
// a baseline-vs-report comparison artifact; see .github/workflows/ and
// the "Benchmark trajectory" section of EXPERIMENTS.md.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"testing"
	"time"

	"multinet/internal/experiments" // importing registers every harness
	"multinet/internal/experiments/engine"
	"multinet/internal/mptcp"
	"multinet/internal/netem"
	"multinet/internal/simnet"
	"multinet/internal/tcp"
)

// Result is one benchmark measurement. EventsPerPacket and ElidedSegs
// are reported by the netem-driven transport benchmarks only: kernel
// events processed per packet carried (the figure fluid-advance mode
// drives below 1), and packets carried analytically per op.
type Result struct {
	Name     string  `json:"name"`
	Runs     int     `json:"runs"`
	NsPerOp  float64 `json:"ns_per_op"`
	BPerOp   int64   `json:"bytes_per_op"`
	AllocsOp int64   `json:"allocs_per_op"`

	EventsPerPacket float64 `json:"events_per_packet,omitempty"`
	ElidedSegs      int64   `json:"elided_segs,omitempty"`
}

// Report is the serialised benchmark trajectory artifact.
type Report struct {
	GoOS    string   `json:"goos"`
	GoArch  string   `json:"goarch"`
	NumCPU  int      `json:"num_cpu"`
	Results []Result `json:"results"`
}

// bench is a named benchmark body.
type bench struct {
	name string
	fn   func(b *testing.B)
}

// nopEvent is the no-op body for pure scheduler benchmarks.
func nopEvent(any) {}

// netemMetrics accumulates simulator-level counters across a
// benchmark's iterations: kernel events processed, packets carried
// (accepted onto any link, analytically or on the wire), and packets
// elided by fluid-advance mode.
type netemMetrics struct {
	events  uint64
	packets int64
	elided  int64
	ops     int64
}

// curMetrics, when non-nil, receives the counters of every transport
// benchmark iteration (the main loop points it at a fresh accumulator
// per benchmark).
var curMetrics *netemMetrics

func (m *netemMetrics) collect(sim *simnet.Sim, links ...*netem.FixedLink) {
	if m == nil {
		return
	}
	m.events += sim.Processed()
	for _, l := range links {
		st := l.Stats()
		m.packets += int64(st.Sent)
		m.elided += int64(st.Elided)
	}
	m.ops++
}

// schedFireChurn measures the schedule+fire cycle with 64 event chains
// in flight: each fired event schedules its successor, the ACK-clocked
// steady state of every transport benchmark below. b.N counts fired
// events.
func schedFireChurn(b *testing.B) {
	s := simnet.New(1)
	fired := 0
	var step func(any)
	step = func(any) {
		fired++
		if fired < b.N {
			s.AfterArg(731*time.Microsecond, step, nil)
		}
	}
	for i := 0; i < 64 && i < b.N; i++ {
		s.AfterArg(time.Duration(i+1)*time.Microsecond, step, nil)
	}
	b.ResetTimer()
	s.Run()
	if fired < b.N {
		b.Fatalf("fired %d events, want %d", fired, b.N)
	}
}

// schedCancelChurn measures the schedule+cancel cycle of a
// retransmission-timer workload: every op arms a timer ~200 ms out and
// stops it again, with a small set of live timers pending throughout.
func schedCancelChurn(b *testing.B) {
	s := simnet.New(1)
	for i := 0; i < 16; i++ {
		s.AfterArg(time.Duration(i+1)*time.Hour, nopEvent, nil)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.AfterArg(200*time.Millisecond, nopEvent, nil).Stop()
	}
}

// schedDeepPending measures schedule/fire cost with 64k long-lived
// timers pending while the measured chain schedules and fires through
// them — the depth at which a comparison-based queue pays O(log n) per
// event.
func schedDeepPending(b *testing.B) {
	s := simnet.New(1)
	// The deep set sits past any reachable horizon: the chain fires one
	// event per 5 µs, so even go-test's 1e9 iteration cap stays under
	// 84 min of virtual time, clear of the 2 h floor.
	const deep = 64 << 10
	for i := 0; i < deep; i++ {
		s.AfterArg(2*time.Hour+time.Duration(i)*time.Millisecond, nopEvent, nil)
	}
	fired := 0
	var step func(any)
	step = func(any) {
		fired++
		if fired < b.N {
			s.AfterArg(5*time.Microsecond, step, nil)
		}
	}
	s.AfterArg(time.Microsecond, step, nil)
	b.ResetTimer()
	s.RunUntil(time.Microsecond + time.Duration(b.N)*5*time.Microsecond)
	if fired < b.N {
		b.Fatalf("fired %d events, want %d", fired, b.N)
	}
}

// tcpDownload transfers size bytes server→client over one fixed-rate
// duplex interface — the plain-TCP kernel hot path. With fluid set the
// stacks opt into fluid-advance mode and the steady phase of the
// transfer is carried analytically.
func tcpDownload(b *testing.B, size int, loss float64, fluid bool) {
	for i := 0; i < b.N; i++ {
		sim := simnet.New(int64(i + 1))
		cfg := func(stream string) netem.LinkConfig {
			lc := netem.LinkConfig{
				PropDelay:  15 * time.Millisecond,
				LossProb:   loss,
				QueueLimit: 200,
			}
			if loss > 0 {
				// Seeding a PRNG stream costs ~10 µs; lossless links
				// never draw from it.
				lc.RNG = sim.RNG(stream)
			}
			return lc
		}
		up := netem.NewFixedLink(sim, 20, cfg("loss/up"))
		down := netem.NewFixedLink(sim, 20, cfg("loss/down"))
		iface := netem.NewIface(sim, "wifi", up, down)
		client := tcp.NewStack(sim, tcp.ClientSide)
		server := tcp.NewStack(sim, tcp.ServerSide)
		client.Bind(iface)
		server.Bind(iface)
		if fluid {
			tcp.EnableFluid(client, server)
		}
		var done bool
		server.Accept = func(c *tcp.Conn) {
			c.SetCallbacks(tcp.Callbacks{OnEstablished: func(c *tcp.Conn) {
				c.Send(size)
				c.Close()
			}})
		}
		client.Dial(iface, "bench", tcp.Config{Callbacks: tcp.Callbacks{
			OnData: func(c *tcp.Conn, total int64) { done = done || total >= int64(size) },
		}})
		sim.Run()
		if !done {
			b.Fatal("transfer incomplete")
		}
		curMetrics.collect(sim, up, down)
	}
	b.SetBytes(int64(size))
}

// mptcpDownload transfers size bytes over a two-subflow MPTCP
// connection (10 Mbit/s 15 ms WiFi + 8 Mbit/s 30 ms LTE).
func mptcpDownload(b *testing.B, size int, cc mptcp.CongestionMode) {
	for i := 0; i < b.N; i++ {
		sim := simnet.New(int64(i + 1))
		var links []*netem.FixedLink
		mk := func(name string, mbps float64, owd time.Duration) *netem.Iface {
			cfg := netem.LinkConfig{PropDelay: owd, QueueLimit: 150}
			up := netem.NewFixedLink(sim, mbps, cfg)
			down := netem.NewFixedLink(sim, mbps, cfg)
			links = append(links, up, down)
			return netem.NewIface(sim, name, up, down)
		}
		wifi := mk("wifi", 10, 15*time.Millisecond)
		lte := mk("lte", 8, 30*time.Millisecond)
		host := netem.NewHost("client")
		host.Attach(wifi)
		host.Attach(lte)
		client := tcp.NewStack(sim, tcp.ClientSide)
		server := tcp.NewStack(sim, tcp.ServerSide)
		for _, ifc := range []*netem.Iface{wifi, lte} {
			client.Bind(ifc)
			server.Bind(ifc)
		}
		srv := mptcp.NewServer(sim, server, mptcp.ServerConfig{CC: cc})
		srv.OnConn = func(c *mptcp.Conn) {
			c.Send(size)
			c.Close()
		}
		var done bool
		mptcp.Dial(sim, client, host, mptcp.Config{ConnID: "bench", Primary: "wifi", CC: cc},
			mptcp.Callbacks{OnData: func(c *mptcp.Conn, total int64) {
				done = done || total >= int64(size)
			}})
		sim.Run()
		if !done {
			b.Fatal("transfer incomplete")
		}
		curMetrics.collect(sim, links...)
	}
	b.SetBytes(int64(size))
}

// kernelBenchmarks is the fixed micro-benchmark set guarding the
// per-packet hot path.
func kernelBenchmarks() []bench {
	return []bench{
		{"sched/fire-churn", schedFireChurn},
		{"sched/cancel-churn", schedCancelChurn},
		{"sched/deep-pending", schedDeepPending},
		{"tcp/download-100KB", func(b *testing.B) { tcpDownload(b, 100<<10, 0, false) }},
		{"tcp/download-100KB-fluid", func(b *testing.B) { tcpDownload(b, 100<<10, 0, true) }},
		{"tcp/download-1MB", func(b *testing.B) { tcpDownload(b, 1<<20, 0, false) }},
		{"tcp/download-1MB-fluid", func(b *testing.B) { tcpDownload(b, 1<<20, 0, true) }},
		{"tcp/download-1MB-lossy", func(b *testing.B) { tcpDownload(b, 1<<20, 0.02, false) }},
		{"mptcp/download-1MB-decoupled", func(b *testing.B) { mptcpDownload(b, 1<<20, mptcp.Decoupled) }},
		{"mptcp/download-1MB-coupled", func(b *testing.B) { mptcpDownload(b, 1<<20, mptcp.Coupled) }},
		{"mptcp/download-10KB", func(b *testing.B) { mptcpDownload(b, 10<<10, mptcp.Decoupled) }},
	}
}

// experimentBenchmarks wraps every registered experiment at quick
// options, exactly the set cmd/report -quick runs.
func experimentBenchmarks() []bench {
	var out []bench
	for _, e := range engine.All() {
		e := e
		out = append(out, bench{
			name: "experiment/" + e.Meta.Name,
			fn: func(b *testing.B) {
				o := experiments.Quick()
				o.Workers = 1 // sequential: benchmark the kernel, not the pool
				for i := 0; i < b.N; i++ {
					_ = e.Run(o)
				}
			},
		})
	}
	return out
}

// envMatches reports whether the baseline was recorded on the same
// machine class as this run. ns/op floors are only meaningful on
// matching hardware; allocs/op are exact everywhere.
func envMatches(base, cur Report) bool {
	return base.GoOS == cur.GoOS && base.GoArch == cur.GoArch && base.NumCPU == cur.NumCPU
}

// compare checks cur against base, returning regression descriptions.
// gateNs disables the ns/op comparison (used when the baseline comes
// from different hardware, where a wall-clock floor is meaningless).
func compare(base, cur []Result, maxSlow float64, gateNs bool) []string {
	baseBy := make(map[string]Result, len(base))
	for _, r := range base {
		baseBy[r.Name] = r
	}
	var bad []string
	for _, r := range cur {
		b, ok := baseBy[r.Name]
		if !ok {
			continue // new benchmark: no baseline yet
		}
		// Allocation counts gate at 0.25% of the baseline, rounded
		// down: the transfer micro-benchmarks (≲1k allocs/op) gate
		// within a couple of allocs, while the experiment sweeps —
		// tens of thousands of allocs/op with sync.Pool refills
		// exposed to concurrent-GC timing — tolerate the ±tens-of-
		// allocs jitter a shared runner produces (observed up to
		// 0.19%). A real hot-path regression recurs per segment and
		// lands far beyond the tolerance; the zero-alloc invariant
		// itself is pinned by AllocsPerRun tests in internal/netem
		// and internal/tcp, which this tolerance cannot mask.
		if tol := b.AllocsOp / 400; r.AllocsOp > b.AllocsOp+tol {
			bad = append(bad, fmt.Sprintf("%s: allocs/op %d -> %d (>0.25%% above baseline)",
				r.Name, b.AllocsOp, r.AllocsOp))
		}
		if gateNs && b.NsPerOp > 0 && r.NsPerOp > b.NsPerOp*maxSlow {
			bad = append(bad, fmt.Sprintf("%s: ns/op %.0f -> %.0f (>%.0f%% slower)",
				r.Name, b.NsPerOp, r.NsPerOp, (maxSlow-1)*100))
		}
	}
	return bad
}

// writeDiff renders a per-benchmark comparison of base vs cur.
func writeDiff(path string, base, cur Report) error {
	baseBy := make(map[string]Result, len(base.Results))
	for _, r := range base.Results {
		baseBy[r.Name] = r
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "baseline %s/%s %d CPUs vs run %s/%s %d CPUs\n\n",
		base.GoOS, base.GoArch, base.NumCPU, cur.GoOS, cur.GoArch, cur.NumCPU)
	evpkt := func(r Result) string {
		if r.EventsPerPacket == 0 {
			return "-"
		}
		return fmt.Sprintf("%.2f", r.EventsPerPacket)
	}
	elided := func(r Result) string {
		if r.EventsPerPacket == 0 {
			return "-"
		}
		return fmt.Sprint(r.ElidedSegs)
	}
	fmt.Fprintf(&sb, "%-34s %14s %14s %8s %10s %10s %7s %7s %9s\n",
		"benchmark", "base ns/op", "ns/op", "delta", "base a/op", "a/op",
		"base e/p", "ev/pkt", "elided")
	for _, r := range cur.Results {
		b, ok := baseBy[r.Name]
		if !ok {
			fmt.Fprintf(&sb, "%-34s %14s %14.0f %8s %10s %10d %7s %7s %9s  (new)\n",
				r.Name, "-", r.NsPerOp, "-", "-", r.AllocsOp, "-", evpkt(r), elided(r))
			continue
		}
		delete(baseBy, r.Name)
		delta := "-"
		if b.NsPerOp > 0 {
			delta = fmt.Sprintf("%+.1f%%", (r.NsPerOp/b.NsPerOp-1)*100)
		}
		fmt.Fprintf(&sb, "%-34s %14.0f %14.0f %8s %10s %10d %7s %7s %9s\n",
			r.Name, b.NsPerOp, r.NsPerOp, delta, fmt.Sprint(b.AllocsOp), r.AllocsOp,
			evpkt(b), evpkt(r), elided(r))
	}
	// Baseline rows the run never produced (renamed, deleted, or
	// filtered out by -only) must not vanish silently: a reader of the
	// artifact would otherwise assume full coverage.
	for _, b := range base.Results {
		if _, gone := baseBy[b.Name]; gone {
			fmt.Fprintf(&sb, "%-34s %14.0f %14s %8s %10d %10s  (not run)\n",
				b.Name, b.NsPerOp, "-", "-", b.AllocsOp, "-")
		}
	}
	return os.WriteFile(path, []byte(sb.String()), 0o644)
}

func loadReport(path string) (Report, error) {
	var rep Report
	data, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	err = json.Unmarshal(data, &rep)
	return rep, err
}

func writeReport(path string, rep Report) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func main() {
	out := flag.String("out", "BENCH_report.json", "write the benchmark report here ('' to skip)")
	baseline := flag.String("baseline", "BENCH_baseline.json", "baseline report to compare against")
	check := flag.Bool("check", false, "exit non-zero on regression vs the baseline")
	rebase := flag.Bool("rebase", false, "rewrite the baseline from this run")
	maxSlow := flag.Float64("maxslow", 1.15, "ns/op regression factor tolerated by -check")
	only := flag.String("only", "", "comma-separated benchmark names to run (default: all)")
	skipExp := flag.Bool("skip-experiments", false, "run only the kernel micro-benchmarks")
	count := flag.Int("count", 5, "repetitions per benchmark (min ns/op, max allocs/op reported)")
	benchtime := flag.String("benchtime", "", "per-repetition benchmark time (go test -benchtime syntax)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile covering the selected benchmarks")
	memprofile := flag.String("memprofile", "", "write a heap profile taken after the selected benchmarks")
	diff := flag.String("diff", "", "write a baseline-vs-run comparison table here")
	serveLoad := flag.Duration("serve-load", 0,
		"run the path-selection service load generator for this duration and exit (asserts 0 allocs/query)")
	serveWorkers := flag.Int("serve-load-workers", 0, "serve-load worker goroutines (0 = GOMAXPROCS)")
	testing.Init()
	flag.Parse()
	if *serveLoad > 0 {
		os.Exit(runServeLoad(*serveLoad, *serveWorkers))
	}
	if *benchtime != "" {
		if err := flag.Lookup("test.benchtime").Value.Set(*benchtime); err != nil {
			fmt.Fprintln(os.Stderr, "bad -benchtime:", err)
			os.Exit(2)
		}
	}
	if *count < 1 {
		*count = 1
	}

	benches := append(kernelBenchmarks(), serveBenchmarks()...)
	if !*skipExp {
		benches = append(benches, experimentBenchmarks()...)
	}
	if *only != "" {
		want := map[string]bool{}
		for _, n := range strings.Split(*only, ",") {
			if n = strings.TrimSpace(n); n != "" {
				want[n] = true
			}
		}
		kept := benches[:0]
		for _, bm := range benches {
			if want[bm.name] {
				kept = append(kept, bm)
				delete(want, bm.name)
			}
		}
		if len(want) > 0 {
			names := make([]string, 0, len(benches))
			for _, bm := range benches {
				names = append(names, bm.name)
			}
			fmt.Fprintf(os.Stderr, "unknown benchmark(s) in -only; valid names: %s\n",
				strings.Join(names, ", "))
			os.Exit(2)
		}
		benches = kept
	}

	stopProfile := func() {}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "creating -cpuprofile:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "starting CPU profile:", err)
			os.Exit(1)
		}
		var once bool
		stopProfile = func() {
			if once {
				return
			}
			once = true
			pprof.StopCPUProfile()
			f.Close()
		}
		defer stopProfile()
	}
	// exit flushes the CPU profile before terminating: os.Exit skips
	// deferred calls, which would leave a truncated, unparseable profile
	// on exactly the runs (gate failures) where the profile matters.
	exit := func(code int) {
		stopProfile()
		os.Exit(code)
	}

	rep := Report{GoOS: runtime.GOOS, GoArch: runtime.GOARCH, NumCPU: runtime.NumCPU()}
	for _, bm := range benches {
		start := time.Now()
		var res Result
		curMetrics = &netemMetrics{}
		for k := 0; k < *count; k++ {
			r := testing.Benchmark(bm.fn)
			ns := float64(r.T.Nanoseconds()) / float64(r.N)
			if k == 0 || ns < res.NsPerOp {
				res.NsPerOp = ns
			}
			if k == 0 || r.AllocsPerOp() > res.AllocsOp {
				res.AllocsOp = r.AllocsPerOp()
				res.BPerOp = r.AllocedBytesPerOp()
			}
			res.Runs += r.N
		}
		res.Name = bm.name
		extra := ""
		if m := curMetrics; m.packets > 0 {
			res.EventsPerPacket = float64(m.events) / float64(m.packets)
			res.ElidedSegs = m.elided / m.ops
			extra = fmt.Sprintf("  %.2f ev/pkt %d elided", res.EventsPerPacket, res.ElidedSegs)
		}
		curMetrics = nil
		rep.Results = append(rep.Results, res)
		fmt.Fprintf(os.Stderr, "%-32s %10.0f ns/op %8d B/op %6d allocs/op  (n=%d, %v)%s\n",
			bm.name, res.NsPerOp, res.BPerOp, res.AllocsOp, res.Runs,
			time.Since(start).Round(time.Millisecond), extra)
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "creating -memprofile:", err)
			exit(1)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "writing heap profile:", err)
			exit(1)
		}
		f.Close()
	}

	if *out != "" {
		if err := writeReport(*out, rep); err != nil {
			fmt.Fprintln(os.Stderr, "writing report:", err)
			exit(1)
		}
		fmt.Fprintf(os.Stderr, "report written to %s (%d benchmarks)\n", *out, len(rep.Results))
	}

	if *diff != "" {
		base, err := loadReport(*baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "loading baseline %s for -diff: %v\n", *baseline, err)
			exit(1)
		}
		if err := writeDiff(*diff, base, rep); err != nil {
			fmt.Fprintln(os.Stderr, "writing -diff:", err)
			exit(1)
		}
		fmt.Fprintf(os.Stderr, "comparison written to %s\n", *diff)
	}

	if *rebase {
		if err := writeReport(*baseline, rep); err != nil {
			fmt.Fprintln(os.Stderr, "rewriting baseline:", err)
			exit(1)
		}
		fmt.Fprintf(os.Stderr, "baseline %s rewritten; commit it to accept the new floor\n", *baseline)
		return
	}

	if *check {
		base, err := loadReport(*baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "loading baseline %s: %v\n", *baseline, err)
			exit(1)
		}
		gateNs := envMatches(base, rep)
		if !gateNs {
			fmt.Fprintf(os.Stderr,
				"baseline %s was recorded on %s/%s (%d CPUs), this is %s/%s (%d CPUs): "+
					"gating allocs/op only; run -rebase on this machine class to arm the ns/op gate\n",
				*baseline, base.GoOS, base.GoArch, base.NumCPU, rep.GoOS, rep.GoArch, rep.NumCPU)
		}
		if bad := compare(base.Results, rep.Results, *maxSlow, gateNs); len(bad) > 0 {
			fmt.Fprintln(os.Stderr, "benchmark regressions vs", *baseline+":")
			for _, line := range bad {
				fmt.Fprintln(os.Stderr, "  "+line)
			}
			exit(1)
		}
		if gateNs {
			fmt.Fprintf(os.Stderr, "no regressions vs %s (allocs/op within 0.25%%, ns/op within %.0f%%)\n",
				*baseline, (*maxSlow-1)*100)
		} else {
			fmt.Fprintf(os.Stderr, "no allocs/op regressions vs %s\n", *baseline)
		}
	}
}
