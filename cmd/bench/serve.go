package main

// Benchmarks and the load-generator mode for the online path-selection
// service (internal/serve). The benchmarks drive the exported hot
// cores — DecideBytes/TelemetryBytes over pooled scratch — exactly as
// the HTTP handlers do, so the serve/* entries in the baseline gate
// the full parse → sharded-store → policy → render path, allocs/op
// pinned at zero.

import (
	"fmt"
	"net/http"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"multinet/internal/selector"
	"multinet/internal/serve"
)

// benchClock is the fixed instant the serve benchmarks decay against:
// one second past the telemetry, a typical probe-to-decide gap.
const benchClock = 2 * time.Second

// newLoadedServer builds a server with `sites` sites of warmed two-path
// telemetry and returns prebuilt decide request bodies, one per site.
// None of the seeded names need JSON unescaping, so the bodies survive
// in-place parsing and can be replayed without restoring.
func newLoadedServer(sites int) (*serve.Server, [][]byte) {
	store := selector.NewStore(selector.StoreConfig{})
	srv := serve.New(serve.Config{Store: store, Now: func() time.Duration { return benchClock }})
	sc := srv.GetScratch()
	defer srv.PutScratch(sc)
	reqs := make([][]byte, sites)
	for i := 0; i < sites; i++ {
		site := fmt.Sprintf("site-%04d", i)
		for _, tel := range []string{
			fmt.Sprintf(`{"site":%q,"path":"wifi","mbps":12.5,"rtt_ms":25}`, site),
			fmt.Sprintf(`{"site":%q,"path":"lte","mbps":10,"rtt_ms":45}`, site),
		} {
			if srv.TelemetryBytes([]byte(tel), sc) != http.StatusNoContent {
				panic("bench: seeding telemetry failed")
			}
		}
		reqs[i] = []byte(fmt.Sprintf(`{"site":%q,"flow_bytes":5242880}`, site))
	}
	return srv, reqs
}

// serveDecide measures the decide hot path against a single warm site.
func serveDecide(b *testing.B) {
	srv, reqs := newLoadedServer(1)
	sc := srv.GetScratch()
	defer srv.PutScratch(sc)
	if srv.DecideBytes(reqs[0], sc) != http.StatusOK {
		b.Fatal("warmup decide failed")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if srv.DecideBytes(reqs[0], sc) != http.StatusOK {
			b.Fatal("decide failed")
		}
	}
}

// serveDecideMultisite spreads decides over 1024 sites, exercising the
// shard hash and per-shard site maps the single-site benchmark keeps
// cache-resident.
func serveDecideMultisite(b *testing.B) {
	srv, reqs := newLoadedServer(1024)
	sc := srv.GetScratch()
	defer srv.PutScratch(sc)
	if srv.DecideBytes(reqs[0], sc) != http.StatusOK {
		b.Fatal("warmup decide failed")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if srv.DecideBytes(reqs[i&1023], sc) != http.StatusOK {
			b.Fatal("decide failed")
		}
	}
}

// serveTelemetry measures the steady-state ingest path: the site and
// path already exist, so every sample hits the in-place EWMA branch.
func serveTelemetry(b *testing.B) {
	srv, _ := newLoadedServer(1)
	sc := srv.GetScratch()
	defer srv.PutScratch(sc)
	req := []byte(`{"site":"site-0000","path":"wifi","mbps":12.5,"rtt_ms":25}`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if srv.TelemetryBytes(req, sc) != http.StatusNoContent {
			b.Fatal("telemetry failed")
		}
	}
}

// serveDecideParallel runs the decide path from GOMAXPROCS goroutines
// over distinct sites — the contention profile of the real service,
// where the sharded store is the only shared state.
func serveDecideParallel(b *testing.B) {
	srv, reqs := newLoadedServer(64)
	var next atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		sc := srv.GetScratch()
		defer srv.PutScratch(sc)
		req := reqs[int(next.Add(1))&63]
		for pb.Next() {
			if srv.DecideBytes(req, sc) != http.StatusOK {
				b.Fatal("decide failed")
			}
		}
	})
}

// serveBenchmarks is the service benchmark family (serve/*).
func serveBenchmarks() []bench {
	return []bench{
		{"serve/decide", serveDecide},
		{"serve/decide-multisite", serveDecideMultisite},
		{"serve/decide-parallel", serveDecideParallel},
		{"serve/telemetry", serveTelemetry},
	}
}

// runServeLoad is the `bench -serve-load` mode: a closed-loop load
// generator over the service hot cores. Workers hammer decide requests
// (with one telemetry sample folded in per eight decides, the paper's
// probe-amortisation ratio) across 256 sites for the given duration,
// then the run reports queries/s and allocations per query measured
// over the whole run via runtime.MemStats. It returns a non-zero exit
// code if the steady state allocates, holding the same zero-alloc
// contract as the serve/* benchmarks but under full concurrency.
func runServeLoad(d time.Duration, workers int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	const sites = 256
	srv, reqs := newLoadedServer(sites)
	tels := make([][]byte, sites)
	for i := range tels {
		tels[i] = []byte(fmt.Sprintf(`{"site":"site-%04d","path":"wifi","mbps":11.5,"rtt_ms":26}`, i))
	}

	// Warm every worker's scratch and every site before measuring.
	scratches := make([]*serve.Scratch, workers)
	for w := range scratches {
		scratches[w] = srv.GetScratch()
		for i := 0; i < sites; i++ {
			if srv.DecideBytes(reqs[i], scratches[w]) != http.StatusOK {
				fmt.Fprintln(os.Stderr, "serve-load: warmup decide failed")
				return 1
			}
		}
	}

	var queries atomic.Int64
	var stop atomic.Bool
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	start := time.Now()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sc := scratches[w]
			n := int64(0)
			for i := w; !stop.Load(); i++ {
				if i%8 == 7 {
					srv.TelemetryBytes(tels[i%sites], sc)
				} else {
					srv.DecideBytes(reqs[i%sites], sc)
				}
				n++
			}
			queries.Add(n)
		}(w)
	}
	time.Sleep(d)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)
	for _, sc := range scratches {
		srv.PutScratch(sc)
	}

	q := queries.Load()
	allocs := int64(m1.Mallocs - m0.Mallocs)
	perQuery := float64(allocs) / float64(q)
	st := srv.StatsSnapshot()
	fmt.Printf("serve-load: %d workers, %d sites, %v: %d queries (%.0f qps), %d decides, %d telemetry, %.4f allocs/query\n",
		workers, sites, elapsed.Round(time.Millisecond), q, float64(q)/elapsed.Seconds(),
		st.Decides, st.Telemetry, perQuery)
	// The runtime itself (GC workers, timers) allocates a handful of
	// objects per second; spread over millions of queries that is far
	// below 0.01/query, while a single stray allocation on the hot path
	// shows up as >= ~0.87 (7 decides in 8 queries).
	if perQuery > 0.01 {
		fmt.Fprintf(os.Stderr, "serve-load: steady state allocates %.4f/query, want 0\n", perQuery)
		return 1
	}
	fmt.Println("serve-load: zero-allocation steady state held")
	return 0
}
