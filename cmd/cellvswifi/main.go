// Command cellvswifi reproduces the paper's Section 2: it synthesises
// the crowd-sourced Cell vs WiFi measurement campaign and prints the
// regenerated Table 1 and the Figure 3/4 CDFs with their headline
// LTE-win fractions.
//
// Usage:
//
//	cellvswifi [-seed N] [-table1] [-fig3] [-fig4]
//
// With no figure flags, everything is printed.
package main

import (
	"flag"
	"fmt"
	"os"

	"multinet/internal/experiments"
)

func main() {
	seed := flag.Int64("seed", experiments.DefaultSeed, "campaign RNG seed")
	table1 := flag.Bool("table1", false, "print only Table 1")
	fig3 := flag.Bool("fig3", false, "print only Figure 3")
	fig4 := flag.Bool("fig4", false, "print only Figure 4")
	flag.Parse()

	o := experiments.Options{Seed: *seed}
	all := !*table1 && !*fig3 && !*fig4

	w := os.Stdout
	if all || *table1 {
		fmt.Fprintln(w, experiments.Table1(o))
	}
	if all || *fig3 {
		fmt.Fprintln(w, experiments.Figure3(o))
	}
	if all || *fig4 {
		fmt.Fprintln(w, experiments.Figure4(o))
	}
}
