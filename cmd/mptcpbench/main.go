// Command mptcpbench reproduces the paper's Section 3: the 20-location
// MPTCP measurement sweeps (Table 2, Figures 6-15) plus the Section
// 3.6 energy analysis (Figure 16).
//
// Usage:
//
//	mptcpbench [-seed N] [-trials N] [-locations N] [-only fig]
//
// -only selects a single experiment: table2, fig6, fig7, fig8, fig9,
// fig10, fig11, fig12, coupling, fig15, fig16, energy.
package main

import (
	"flag"
	"fmt"
	"os"

	"multinet/internal/experiments"
)

func main() {
	seed := flag.Int64("seed", experiments.DefaultSeed, "RNG seed")
	trials := flag.Int("trials", 0, "trials per measurement point (0 = default)")
	locations := flag.Int("locations", 0, "restrict to first N locations (0 = all 20)")
	only := flag.String("only", "", "run a single experiment")
	flag.Parse()

	o := experiments.Options{Seed: *seed, Trials: *trials, Locations: *locations}
	run := map[string]func() fmt.Stringer{
		"table2":   func() fmt.Stringer { return experiments.Table2(o) },
		"fig6":     func() fmt.Stringer { return experiments.Figure6(o) },
		"fig7":     func() fmt.Stringer { return experiments.Figure7(o) },
		"fig8":     func() fmt.Stringer { return experiments.Figure8(o) },
		"fig9":     func() fmt.Stringer { return experiments.Figure9(o) },
		"fig10":    func() fmt.Stringer { return experiments.Figure10(o) },
		"fig11":    func() fmt.Stringer { return experiments.Figure11(o) },
		"fig12":    func() fmt.Stringer { return experiments.Figure12(o) },
		"coupling": func() fmt.Stringer { return experiments.Coupling(o) },
		"fig15":    func() fmt.Stringer { return experiments.Figure15(o) },
		"fig16":    func() fmt.Stringer { return experiments.Figure16(o) },
		"energy":   func() fmt.Stringer { return experiments.EnergyBackup(o) },
	}
	order := []string{"table2", "fig6", "fig7", "fig8", "fig9", "fig10",
		"fig11", "fig12", "coupling", "fig15", "fig16", "energy"}

	if *only != "" {
		f, ok := run[*only]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; choose one of %v\n", *only, order)
			os.Exit(2)
		}
		fmt.Println(f())
		return
	}
	for _, name := range order {
		fmt.Println(run[name]())
	}
}
