// Command multinetlint runs the repository's custom static-analysis
// suite (internal/analysis): determinism, poolown, and hotpath.
//
// Usage:
//
//	go run ./cmd/multinetlint [flags] [packages]
//
// With no package patterns it analyzes ./.... It exits 0 when the
// suite is clean, 1 when any unsuppressed violation is found, and 2 on
// usage or load errors. //lint:allow-suppressed findings are counted
// on stderr (and included in -json output) so the exception budget
// stays visible.
//
// The suite is stdlib-only by design: the container image has no
// module proxy access, so the golang.org/x/tools unitchecker protocol
// (`go vet -vettool`) is not implemented. Run this command directly;
// CI does, next to staticcheck.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"multinet/internal/analysis"
)

func main() {
	var (
		jsonOut    = flag.Bool("json", false, "emit findings as JSON (an array of diagnostics, suppressed ones included)")
		outFile    = flag.String("out", "", "write the (JSON or text) report to this file as well as stdout")
		only       = flag.String("analyzers", "", "comma-separated analyzer names to run (default: all)")
		list       = flag.Bool("list", false, "list available analyzers and exit")
		chdir      = flag.String("C", ".", "module directory to run `go list` in")
		quietAllow = flag.Bool("q", false, "suppress the allowed-exception summary on stderr")
	)
	flag.Parse()

	all := analysis.DefaultAnalyzers()
	if *list {
		for _, a := range all {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := all
	if *only != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range all {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "multinetlint: unknown analyzer %q (have:", name)
				for _, a := range all {
					fmt.Fprintf(os.Stderr, " %s", a.Name)
				}
				fmt.Fprintln(os.Stderr, ")")
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader := analysis.NewLoader()
	pkgs, err := loader.LoadPatterns(*chdir, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "multinetlint: %v\n", err)
		os.Exit(2)
	}
	diags, err := analysis.RunAnalyzers(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "multinetlint: %v\n", err)
		os.Exit(2)
	}

	var report strings.Builder
	violations, allowed := 0, 0
	if *jsonOut {
		if diags == nil {
			diags = []analysis.Diagnostic{}
		}
		enc, err := json.MarshalIndent(diags, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "multinetlint: encoding report: %v\n", err)
			os.Exit(2)
		}
		report.Write(enc)
		report.WriteByte('\n')
	}
	for _, d := range diags {
		if d.Suppressed {
			allowed++
			continue
		}
		violations++
		if !*jsonOut {
			fmt.Fprintf(&report, "%s:%d:%d: %s: %s\n", d.File, d.Line, d.Col, d.Analyzer, d.Message)
		}
	}

	os.Stdout.WriteString(report.String())
	if *outFile != "" {
		if err := os.WriteFile(*outFile, []byte(report.String()), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "multinetlint: writing %s: %v\n", *outFile, err)
			os.Exit(2)
		}
	}
	if !*quietAllow {
		fmt.Fprintf(os.Stderr, "multinetlint: %d violation(s), %d allowed exception(s) across %d package(s)\n",
			violations, allowed, len(pkgs))
	}
	if violations > 0 {
		os.Exit(1)
	}
}
